#pragma once

#include <string>
#include <vector>

/// fpr-lint — project-invariant static analysis for the FPGA-routing repo.
///
/// The repo's load-bearing contracts (DESIGN.md §10) are not general C++
/// style rules, so no off-the-shelf linter checks them: results must be
/// bit-identical across platforms, standard libraries, thread counts and
/// runs, and misuse must throw ContractViolation instead of aborting or
/// being swallowed. fpr-lint walks `src/` and `bench/` and enforces those
/// invariants as named rules (rule_catalog()). Findings are suppressible
/// only inline, at the offending site:
///
///     // fpr-lint: allow(<rule>) <reason>
///
/// on the same line as the finding or on a comment-only line directly above
/// it. The reason is mandatory — a suppression without one does not
/// suppress and is itself reported — so every sanctioned exception is
/// documented where it lives, greppable, and reviewed with the code around
/// it.
///
/// Deliberately dependency-free (no clang tooling, no regex engine beyond
/// hand-rolled scanning): it builds in milliseconds on any toolchain, which
/// is what lets it gate every CI run and run as a ctest (`ctest -L lint`).
/// It is a lexical tool — it strips comments and string literals, tracks
/// declared names, and matches token patterns — not a compiler; the
/// clang-tidy baseline job (tools/lint/run_clang_tidy) covers the
/// semantic end of the spectrum.
namespace fpr::lint {

/// One rule violation (or documented exception, when `suppressed`).
struct Finding {
  std::string file;
  int line = 0;            // 1-based
  std::string rule;        // name from rule_catalog()
  std::string message;     // what was matched and what to use instead
  bool suppressed = false; // true: an inline allow(<rule>) with a reason covers it
  std::string suppress_reason;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Every rule fpr-lint knows, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

/// Rules owned by fpr-analyze (tools/analyze), the semantic sibling of this
/// tool. They share the `// fpr-lint: allow(<rule>) <reason>` suppression
/// protocol, so their names must be recognized here: otherwise a documented
/// dyadic-float exception in src/ would itself be flagged by fpr-lint as an
/// unknown-rule directive.
const std::vector<RuleInfo>& analyze_rule_catalog();

/// True iff `name` is a rule in rule_catalog() or analyze_rule_catalog()
/// (directives may legitimately reference either tool's rules).
bool is_known_rule(const std::string& name);

// ---------------------------------------------------------------------------
// Shared engine pieces, used by fpr-analyze as well as the lint rules.
// ---------------------------------------------------------------------------

/// One physical line after comment/string stripping: `code` has comments
/// and literal contents blanked out (rules match against it), `comment`
/// holds the concatenated comment text (suppression directives live there).
struct SourceLine {
  std::string code;
  std::string comment;
  bool code_blank = true;  // code is whitespace-only
};

/// Splits `content` into lines and strips comments/string literals,
/// tolerating raw strings and unterminated literals (reset at newline).
std::vector<SourceLine> strip_source(const std::string& content);

/// Applies the inline `// fpr-lint: allow(<rule>) <reason>` directives found
/// in `lines` to `findings` (marking matches suppressed). A directive covers
/// findings on its own line; one on a comment-only line covers the next line
/// with code. When `report_malformed` is set, reason-less and unknown-rule
/// directives are appended as `lint-directive` findings — exactly one tool
/// per tree should report them (fpr-lint does; fpr-analyze passes false).
void apply_directives(const std::string& filename, const std::vector<SourceLine>& lines,
                      bool report_malformed, std::vector<Finding>& findings);

struct Options {
  /// Restrict checking to these rules (empty = all). Unknown names are the
  /// caller's error — the CLI validates against rule_catalog() first.
  std::vector<std::string> only_rules;
};

/// Lints one translation unit given its text. `filename` is used for
/// reporting only; nothing is read from disk. Returns findings in line
/// order, suppressed ones included (callers filter on `suppressed`).
std::vector<Finding> lint_source(const std::string& filename, const std::string& content,
                                 const Options& options = {});

/// Reads and lints one file from disk. Returns false (and appends a
/// pseudo-finding on line 0) when the file cannot be read.
bool lint_file(const std::string& path, const Options& options, std::vector<Finding>& out);

/// Recursively collects the C++ sources (.cpp/.hpp/.h/.cc) under `path`
/// (or `path` itself when it is a file), sorted for deterministic reports.
std::vector<std::string> collect_sources(const std::string& path);

}  // namespace fpr::lint
