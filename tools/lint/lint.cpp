#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fpr::lint {

// ---------------------------------------------------------------------------
// Pass 1: strip comments and literals, extract suppression directives.
//
// Rules match against code only — a mention of assert() in a comment or a
// "steady_clock" inside a string literal is not a finding. Suppression
// directives live in the comments we strip, so both views of every line are
// kept side by side. Public (lint.hpp) because fpr-analyze runs its semantic
// rules over the same stripped view.
// ---------------------------------------------------------------------------

std::vector<SourceLine> strip_source(const std::string& content) {
  std::vector<SourceLine> lines(1);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  bool escaped = false;

  const auto current = [&lines]() -> SourceLine& { return lines.back(); };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string/char at end of line: malformed or macro trick;
      // reset so one bad line cannot blank the rest of the file.
      if (state == State::kString || state == State::kChar) state = State::kCode;
      lines.emplace_back();
      escaped = false;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal: find the delimiter up to the '('.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < content.size() && content[j] != '(') raw_delim += content[j++];
          state = State::kRawString;
          current().code += "\"\"";
          i = j;  // consume through '('
        } else if (c == '"') {
          state = State::kString;
          current().code += '"';
        } else if (c == '\'') {
          state = State::kChar;
          current().code += '\'';
        } else {
          current().code += c;
          if (!std::isspace(static_cast<unsigned char>(c))) current().code_blank = false;
        }
        break;
      case State::kLineComment:
        current().comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current().comment += c;
        }
        break;
      case State::kString:
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          state = State::kCode;
          current().code += '"';
        }
        break;
      case State::kChar:
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '\'') {
          state = State::kCode;
          current().code += '\'';
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (content.compare(i, closer.size(), closer) == 0) {
          state = State::kCode;
          i += closer.size() - 1;
        }
        break;
      }
    }
  }
  // code_blank is only updated in kCode; recompute defensively.
  for (auto& line : lines) {
    line.code_blank = std::all_of(line.code.begin(), line.code.end(), [](unsigned char ch) {
      return std::isspace(ch) != 0;
    });
  }
  return lines;
}

namespace {

// ---------------------------------------------------------------------------
// Small token helpers (hand-rolled; no <regex> — it is slow and its
// behavior varies across standard libraries, which would be ironic here).
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds whole-identifier occurrences of `word` in `code` starting at
/// `from`; returns npos when absent.
std::size_t find_word(const std::string& code, const std::string& word, std::size_t from = 0) {
  std::size_t pos = code.find(word, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = code.find(word, pos + 1);
  }
  return std::string::npos;
}

bool contains_word(const std::string& code, const std::string& word) {
  return find_word(code, word) != std::string::npos;
}

std::size_t skip_spaces(const std::string& s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  return pos;
}

/// Reads the identifier starting at `pos` (empty when none).
std::string read_ident(const std::string& s, std::size_t pos) {
  std::size_t end = pos;
  while (end < s.size() && ident_char(s[end])) ++end;
  if (end == pos || std::isdigit(static_cast<unsigned char>(s[pos]))) return {};
  return s.substr(pos, end - pos);
}

/// First identifier token in `expr` after stripping leading `*`, `&`, `(`.
std::string base_identifier(const std::string& expr) {
  std::size_t pos = 0;
  while (pos < expr.size() &&
         (std::isspace(static_cast<unsigned char>(expr[pos])) || expr[pos] == '*' ||
          expr[pos] == '&' || expr[pos] == '(')) {
    ++pos;
  }
  return read_ident(expr, pos);
}

// ---------------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------------

struct Directive {
  std::string rule;
  std::string reason;  // empty = malformed (does not suppress)
};

std::vector<Directive> parse_directives(const std::string& comment) {
  std::vector<Directive> out;
  const std::string key = "fpr-lint:";
  std::size_t pos = comment.find(key);
  while (pos != std::string::npos) {
    std::size_t p = skip_spaces(comment, pos + key.size());
    if (comment.compare(p, 6, "allow(") == 0) {
      p += 6;
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        Directive d;
        d.rule = comment.substr(p, close - p);
        std::size_t r = skip_spaces(comment, close + 1);
        d.reason = comment.substr(r);
        while (!d.reason.empty() &&
               std::isspace(static_cast<unsigned char>(d.reason.back()))) {
          d.reason.pop_back();
        }
        out.push_back(std::move(d));
      }
    }
    pos = comment.find(key, pos + key.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

struct FileContext {
  const std::string& filename;
  const std::vector<SourceLine>& lines;
  std::string all_code;                 // stripped code joined by '\n'
  std::vector<std::size_t> line_start;  // offset of each line in all_code
};

int line_of_offset(const FileContext& ctx, std::size_t offset) {
  auto it = std::upper_bound(ctx.line_start.begin(), ctx.line_start.end(), offset);
  return static_cast<int>(it - ctx.line_start.begin());  // 1-based
}

using RuleFn = void (*)(const FileContext&, std::vector<Finding>&);

void add(std::vector<Finding>& out, const FileContext& ctx, int line, const char* rule,
         std::string message) {
  out.push_back(Finding{ctx.filename, line, rule, std::move(message), false, {}});
}

/// rule: assert — the condition compiles out of NDEBUG builds and aborts
/// without context; production invariants use FPR_CHECK.
void rule_assert(const FileContext& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    std::size_t pos = 0;
    while ((pos = find_word(code, "assert", pos)) != std::string::npos) {
      const std::size_t after = skip_spaces(code, pos + 6);
      const bool is_call = after < code.size() && code[after] == '(';
      const bool is_static = pos >= 7 && code.compare(pos - 7, 7, "static_") == 0;
      // find_word rejects "static_assert" via left ident char; keep the
      // check for clarity if tokenization ever changes.
      if (is_call && !is_static) {
        add(out, ctx, static_cast<int>(i + 1), "assert",
            "assert() compiles out of Release builds and aborts without context; use "
            "FPR_CHECK(cond, msg) from core/contract.hpp");
      }
      pos += 6;
    }
  }
}

/// rule: nondet-random — std::*_distribution output is implementation-
/// defined (differs across libstdc++/libc++/MSVC); random_device/rand seed
/// from the environment. Either breaks cross-platform replay.
void rule_nondet_random(const FileContext& ctx, std::vector<Finding>& out) {
  static const char* kBanned[] = {
      "uniform_int_distribution", "uniform_real_distribution", "normal_distribution",
      "bernoulli_distribution",   "discrete_distribution",     "poisson_distribution",
      "exponential_distribution", "random_device",             "rand",
      "srand",
  };
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    for (const char* word : kBanned) {
      std::size_t pos = find_word(code, word);
      if (pos == std::string::npos) continue;
      // rand/srand only as calls, so e.g. a member named `rand` in a struct
      // declaration does not trip the rule.
      if (word[0] == 'r' || word[0] == 's') {
        const std::size_t after = skip_spaces(code, pos + std::string(word).size());
        if (after >= code.size() || code[after] != '(') continue;
      }
      add(out, ctx, static_cast<int>(i + 1), "nondet-random",
          std::string(word) +
              " is implementation-defined or environment-seeded; draw through core/rng.hpp "
              "(mix64/SplitMixRng/draw_below/draw_range/draw_unit/draw_gaussian)");
    }
  }
}

/// rule: wall-clock — results must never depend on the clock. Work budgets
/// (graph/budget.hpp) are the deterministic replacement for timeouts.
void rule_wall_clock(const FileContext& ctx, std::vector<Finding>& out) {
  static const char* kClockTypes[] = {"system_clock", "steady_clock", "high_resolution_clock"};
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    for (const char* word : kClockTypes) {
      if (contains_word(code, word)) {
        add(out, ctx, static_cast<int>(i + 1), "wall-clock",
            std::string(word) +
                ": deterministic code must not read clocks; use WorkBudget "
                "(graph/budget.hpp) for bounded effort, bench::Stopwatch for bench timing");
      }
    }
    for (const char* fn : {"gettimeofday", "clock_gettime"}) {
      if (contains_word(code, fn)) {
        add(out, ctx, static_cast<int>(i + 1), "wall-clock",
            std::string(fn) + ": deterministic code must not read clocks");
      }
    }
    // std::time(...) / time(nullptr): the C clock read.
    std::size_t pos = 0;
    while ((pos = find_word(code, "time", pos)) != std::string::npos) {
      const bool qualified = pos >= 5 && code.compare(pos - 5, 5, "std::") == 0;
      const std::size_t after = skip_spaces(code, pos + 4);
      const bool call = after < code.size() && code[after] == '(';
      if (call) {
        const std::size_t arg = skip_spaces(code, after + 1);
        const bool clock_read = qualified || code.compare(arg, 7, "nullptr") == 0 ||
                                code.compare(arg, 4, "NULL") == 0;
        if (clock_read) {
          add(out, ctx, static_cast<int>(i + 1), "wall-clock",
              "std::time() reads the wall clock; deterministic code derives timestamps from "
              "seeds or takes them as input");
        }
      }
      pos += 4;
    }
  }
}

/// rule: unordered-iter — iteration order of std::unordered_{map,set} is
/// unspecified and varies across standard libraries and across runs with
/// different allocation histories. Any loop over one is flagged; loops
/// whose effect is provably order-independent carry an inline allow() that
/// says why.
void rule_unordered_iter(const FileContext& ctx, std::vector<Finding>& out) {
  // Pass A: names. Aliases first (`using X = std::unordered_map<...>`),
  // then declared variables/members/parameters of unordered (or alias)
  // type.
  std::vector<std::string> unordered_types = {"std::unordered_map", "std::unordered_set"};
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const std::size_t using_pos = find_word(code, "using", 0);
    if (using_pos == std::string::npos) continue;
    const std::size_t eq = code.find('=', using_pos);
    if (eq == std::string::npos) continue;
    if (code.find("unordered_map", eq) == std::string::npos &&
        code.find("unordered_set", eq) == std::string::npos) {
      continue;
    }
    const std::string alias = read_ident(code, skip_spaces(code, using_pos + 5));
    if (!alias.empty()) unordered_types.push_back(alias);
  }

  std::vector<std::string> names;
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    for (const std::string& type : unordered_types) {
      std::size_t pos = find_word(code, type.substr(type.rfind(':') + 1));
      if (pos == std::string::npos) continue;
      if (type[0] != 's') {
        // Alias: require the token itself (no template args expected).
        pos = find_word(code, type);
        if (pos == std::string::npos) continue;
      }
      // Walk past the template argument list, if any (single-line only; a
      // multi-line declaration's name lands on a later line and is missed —
      // acceptable for a lexical tool, the iteration itself is still in
      // scope via the member/param name when declared on one line).
      std::size_t p = pos + read_ident(code, pos).size();
      p = skip_spaces(code, p);
      if (p < code.size() && code[p] == '<') {
        int depth = 0;
        while (p < code.size()) {
          if (code[p] == '<') ++depth;
          if (code[p] == '>' && --depth == 0) {
            ++p;
            break;
          }
          ++p;
        }
        if (depth != 0) continue;  // spans lines; give up on this decl
      }
      p = skip_spaces(code, p);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) p = skip_spaces(code, p + 1);
      const std::string name = read_ident(code, p);
      if (!name.empty() && name != "const") names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  if (names.empty()) return;

  // Pass B: iteration. Range-for over a tracked name, or a classic for
  // using name.begin()/cbegin().
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const std::size_t for_pos = find_word(code, "for");
    if (for_pos == std::string::npos) continue;
    const std::size_t open = code.find('(', for_pos);
    if (open == std::string::npos) continue;
    const std::size_t colon = code.find(':', open);
    bool flagged = false;
    if (colon != std::string::npos && code.compare(colon, 2, "::") != 0) {
      const std::string rhs = code.substr(colon + 1);
      const std::string base = base_identifier(rhs);
      // `name.at(k)` / `name[k]` iterate the MAPPED value, not the
      // unordered container itself — skip when the base is followed by
      // member access or indexing.
      const std::size_t base_pos = rhs.find(base);
      const std::size_t after_base =
          base_pos == std::string::npos ? rhs.size() : skip_spaces(rhs, base_pos + base.size());
      const bool indexes_into =
          after_base < rhs.size() && (rhs[after_base] == '.' || rhs[after_base] == '[');
      if (!indexes_into && std::binary_search(names.begin(), names.end(), base)) {
        add(out, ctx, static_cast<int>(i + 1), "unordered-iter",
            "range-for over unordered container '" + base +
                "': iteration order is unspecified; iterate a sorted copy or an index, or "
                "document order-independence with an inline allow()");
        flagged = true;
      }
    }
    if (!flagged) {
      for (const std::string& name : names) {
        if (code.find(name + ".begin()", open) != std::string::npos ||
            code.find(name + ".cbegin()", open) != std::string::npos) {
          add(out, ctx, static_cast<int>(i + 1), "unordered-iter",
              "iterator loop over unordered container '" + name +
                  "': iteration order is unspecified");
          break;
        }
      }
    }
  }
}

/// rule: pointer-key — ordered containers keyed on pointers order by
/// address, which varies run to run (ASLR, allocator history), leaking
/// nondeterminism into anything that iterates them.
void rule_pointer_key(const FileContext& ctx, std::vector<Finding>& out) {
  static const char* kOrdered[] = {"map", "set", "multimap", "multiset"};
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    for (const char* container : kOrdered) {
      const std::string token = std::string("std::") + container;
      std::size_t pos = code.find(token + "<");
      while (pos != std::string::npos) {
        if (pos == 0 || !ident_char(code[pos - 1])) {
          // First template argument, up to a top-level ',' or '>'.
          std::size_t p = pos + token.size() + 1;
          int depth = 0;
          std::string first_arg;
          while (p < code.size()) {
            const char c = code[p];
            if (c == '<') ++depth;
            if (c == '>') {
              if (depth == 0) break;
              --depth;
            }
            if (c == ',' && depth == 0) break;
            first_arg += c;
            ++p;
          }
          if (!first_arg.empty() && first_arg.find('*') != std::string::npos) {
            add(out, ctx, static_cast<int>(i + 1), "pointer-key",
                token + " keyed on a pointer orders by address — nondeterministic across "
                        "runs; key on a stable id instead");
          }
        }
        pos = code.find(token + "<", pos + 1);
      }
    }
    if (code.find("std::less<") != std::string::npos) {
      const std::size_t p = code.find("std::less<") + 10;
      std::size_t close = p;
      int depth = 1;
      while (close < code.size() && depth > 0) {
        if (code[close] == '<') ++depth;
        if (code[close] == '>') --depth;
        ++close;
      }
      if (code.substr(p, close - p).find('*') != std::string::npos) {
        add(out, ctx, static_cast<int>(i + 1), "pointer-key",
            "std::less over a pointer type orders by address — nondeterministic across runs");
      }
    }
  }
}

/// rule: naked-new — manual new/delete bypasses RAII; the repo's containers
/// and unique_ptr/make_unique cover every ownership pattern in use.
void rule_naked_new(const FileContext& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    std::size_t pos = 0;
    while ((pos = find_word(code, "new", pos)) != std::string::npos) {
      add(out, ctx, static_cast<int>(i + 1), "naked-new",
          "naked new-expression; use make_unique/make_shared or a container");
      pos += 3;
    }
    pos = 0;
    while ((pos = find_word(code, "delete", pos)) != std::string::npos) {
      // `= delete;` (deleted special member) and `= delete (` are fine.
      std::size_t before = pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(code[before - 1]))) --before;
      const bool deleted_fn = before > 0 && code[before - 1] == '=';
      if (!deleted_fn) {
        add(out, ctx, static_cast<int>(i + 1), "naked-new",
            "naked delete-expression; ownership belongs in a smart pointer or container");
      }
      pos += 6;
    }
  }
}

/// rule: catch-all — `catch (...)` that neither rethrows nor captures the
/// exception swallows ContractViolation, turning contract breaches into
/// silent wrong answers.
void rule_catch_all(const FileContext& ctx, std::vector<Finding>& out) {
  const std::string& text = ctx.all_code;
  std::size_t pos = 0;
  while ((pos = find_word(text, "catch", pos)) != std::string::npos) {
    std::size_t p = skip_spaces(text, pos + 5);
    pos += 5;
    if (p >= text.size() || text[p] != '(') continue;
    p = skip_spaces(text, p + 1);
    if (text.compare(p, 3, "...") != 0) continue;
    p = skip_spaces(text, p + 3);
    if (p >= text.size() || text[p] != ')') continue;
    // Balanced-brace scan of the handler body.
    std::size_t open = text.find('{', p);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t end = open;
    while (end < text.size()) {
      if (text[end] == '{') ++depth;
      if (text[end] == '}' && --depth == 0) break;
      ++end;
    }
    const std::string body = text.substr(open, end - open);
    const bool rethrows = body.find("throw;") != std::string::npos ||
                          contains_word(body, "rethrow_exception");
    const bool captures = contains_word(body, "current_exception");
    if (!rethrows && !captures) {
      add(out, ctx, line_of_offset(ctx, pos - 5), "catch-all",
          "catch (...) that neither rethrows nor captures current_exception swallows "
          "ContractViolation; catch specific types or rethrow");
    }
  }
}

const std::vector<std::pair<const char*, RuleFn>>& rule_table() {
  static const std::vector<std::pair<const char*, RuleFn>> table = {
      {"assert", rule_assert},
      {"nondet-random", rule_nondet_random},
      {"wall-clock", rule_wall_clock},
      {"unordered-iter", rule_unordered_iter},
      {"pointer-key", rule_pointer_key},
      {"naked-new", rule_naked_new},
      {"catch-all", rule_catch_all},
  };
  return table;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"assert", "assert() outside tests; use FPR_CHECK (always-on, throws with context)"},
      {"nondet-random",
       "std::*_distribution / random_device / rand: implementation-defined or "
       "environment-seeded randomness; use core/rng.hpp"},
      {"wall-clock",
       "clock reads (chrono clocks, std::time, gettimeofday) in deterministic code; results "
       "must never depend on the clock"},
      {"unordered-iter",
       "iteration over std::unordered_{map,set}: order is unspecified and leaks into any "
       "ordered output or non-commutative accumulation"},
      {"pointer-key", "ordered container or comparator keyed on a pointer (address order "
                      "varies across runs)"},
      {"naked-new", "naked new/delete; use make_unique/make_shared or a container"},
      {"catch-all", "catch (...) that swallows exceptions (including ContractViolation)"},
  };
  return catalog;
}

const std::vector<RuleInfo>& analyze_rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"layering",
       "include edge violating the committed module DAG (tools/analyze/layering.toml): "
       "cycle, layer inversion, frozen-header consumer, or uncovered file"},
      {"dyadic-float",
       "non-dyadic floating-point literal or division by a non-power-of-two constant in a "
       "determinism-critical module (bit-exact pricing arithmetic)"},
      {"global-state",
       "namespace-scope mutable variable or function-local static outside the allowlist "
       "(core/metrics counters, testhooks); hidden globals break replay"},
  };
  return catalog;
}

bool is_known_rule(const std::string& name) {
  const auto known = [&name](const std::vector<RuleInfo>& catalog) {
    return std::any_of(catalog.begin(), catalog.end(),
                       [&name](const RuleInfo& r) { return r.name == name; });
  };
  return known(rule_catalog()) || known(analyze_rule_catalog());
}

void apply_directives(const std::string& filename, const std::vector<SourceLine>& lines,
                      bool report_malformed, std::vector<Finding>& findings) {
  // A directive covers findings on its own line; a directive on a
  // comment-only line covers the next line that has code.
  struct Active {
    Directive directive;
    int line;  // the line findings must be on to be covered
  };
  std::vector<Active> active;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (Directive& d : parse_directives(lines[i].comment)) {
      int target = static_cast<int>(i + 1);
      if (lines[i].code_blank) {
        std::size_t j = i + 1;
        while (j < lines.size() && lines[j].code_blank) ++j;
        target = static_cast<int>(j + 1);
      }
      if (d.reason.empty()) {
        if (report_malformed) {
          findings.push_back(Finding{filename, static_cast<int>(i + 1), "lint-directive",
                                     "allow(" + d.rule +
                                         ") without a reason does not suppress; document why "
                                         "the exception is safe",
                                     false,
                                     {}});
        }
        continue;
      }
      if (!is_known_rule(d.rule)) {
        if (report_malformed) {
          findings.push_back(Finding{filename, static_cast<int>(i + 1), "lint-directive",
                                     "allow(" + d.rule + ") names an unknown rule", false, {}});
        }
        continue;
      }
      active.push_back(Active{std::move(d), target});
    }
  }
  for (Finding& f : findings) {
    for (const Active& a : active) {
      if (a.directive.rule == f.rule && a.line == f.line) {
        f.suppressed = true;
        f.suppress_reason = a.directive.reason;
        break;
      }
    }
  }
}

std::vector<Finding> lint_source(const std::string& filename, const std::string& content,
                                 const Options& options) {
  const std::vector<SourceLine> lines = strip_source(content);

  FileContext ctx{filename, lines, {}, {}};
  ctx.line_start.reserve(lines.size());
  for (const SourceLine& line : lines) {
    ctx.line_start.push_back(ctx.all_code.size());
    ctx.all_code += line.code;
    ctx.all_code += '\n';
  }

  std::vector<Finding> findings;
  for (const auto& [name, fn] : rule_table()) {
    if (!options.only_rules.empty() &&
        std::find(options.only_rules.begin(), options.only_rules.end(), name) ==
            options.only_rules.end()) {
      continue;
    }
    fn(ctx, findings);
  }

  apply_directives(filename, lines, /*report_malformed=*/true, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

bool lint_file(const std::string& path, const Options& options, std::vector<Finding>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.push_back(Finding{path, 0, "io-error", "cannot read file", false, {}});
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<Finding> findings = lint_source(path, buffer.str(), options);
  out.insert(out.end(), std::make_move_iterator(findings.begin()),
             std::make_move_iterator(findings.end()));
  return true;
}

std::vector<std::string> collect_sources(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    files.push_back(path);
    return files;
  }
  const auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
  };
  for (fs::recursive_directory_iterator it(path, ec), end; it != end && !ec;
       it.increment(ec)) {
    if (it->is_regular_file(ec) && is_source(it->path())) {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace fpr::lint
