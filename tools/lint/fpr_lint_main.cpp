// fpr-lint CLI — see tools/lint/lint.hpp for the rule catalog and
// suppression syntax, DESIGN.md §10 for the rationale.
//
// Usage:
//   fpr-lint [options] <path>...
//
//   <path>            file or directory (directories are walked recursively
//                     for .cpp/.hpp/.h/.cc, sorted)
//   --rule <name>     check only this rule (repeatable)
//   --list-rules      print the rule catalog and exit
//   --show-suppressed also print findings covered by an inline allow()
//   --report <file>   additionally write the findings to <file>
//   --json <file>     write the findings as JSON to <file>
//   --sarif <file>    write the findings as SARIF 2.1.0 to <file>
//
// Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "report.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: fpr-lint [--rule <name>]... [--list-rules] [--show-suppressed]\n"
         "                [--report <file>] [--json <file>] [--sarif <file>] <path>...\n";
  return code;
}

void print_finding(std::ostream& out, const fpr::lint::Finding& f) {
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  if (f.suppressed) out << " (suppressed: " << f.suppress_reason << ")";
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  fpr::lint::Options options;
  std::vector<std::string> paths;
  std::string report_path;
  std::string json_path;
  std::string sarif_path;
  bool show_suppressed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rule") {
      if (++i >= argc) return usage(std::cerr, 2);
      const std::string rule = argv[i];
      if (!fpr::lint::is_known_rule(rule)) {
        std::cerr << "fpr-lint: unknown rule '" << rule << "' (see --list-rules)\n";
        return 2;
      }
      options.only_rules.push_back(rule);
    } else if (arg == "--list-rules") {
      for (const auto& rule : fpr::lint::rule_catalog()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--report") {
      if (++i >= argc) return usage(std::cerr, 2);
      report_path = argv[i];
    } else if (arg == "--json") {
      if (++i >= argc) return usage(std::cerr, 2);
      json_path = argv[i];
    } else if (arg == "--sarif") {
      if (++i >= argc) return usage(std::cerr, 2);
      sarif_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fpr-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(std::cerr, 2);

  std::vector<fpr::lint::Finding> findings;
  std::size_t files = 0;
  bool io_error = false;
  for (const std::string& path : paths) {
    const std::vector<std::string> sources = fpr::lint::collect_sources(path);
    if (sources.empty()) {
      std::cerr << "fpr-lint: no sources under '" << path << "'\n";
      io_error = true;
      continue;
    }
    for (const std::string& file : sources) {
      if (!fpr::lint::lint_file(file, options, findings)) io_error = true;
      ++files;
    }
  }

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const auto& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (show_suppressed) print_finding(std::cout, f);
    } else {
      ++unsuppressed;
      print_finding(std::cout, f);
    }
  }

  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "fpr-lint: cannot write report to '" << report_path << "'\n";
      io_error = true;
    } else {
      for (const auto& f : findings) print_finding(report, f);
      report << "# " << files << " files, " << unsuppressed << " findings, " << suppressed
             << " suppressed\n";
    }
  }

  const fpr::lint::ReportInfo info{"fpr-lint", "1.0", fpr::lint::rule_catalog()};
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "fpr-lint: cannot write JSON to '" << json_path << "'\n";
      io_error = true;
    } else {
      fpr::lint::write_json(json, info, findings);
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::cerr << "fpr-lint: cannot write SARIF to '" << sarif_path << "'\n";
      io_error = true;
    } else {
      fpr::lint::write_sarif(sarif, info, findings);
    }
  }

  std::cerr << "fpr-lint: " << files << " files, " << unsuppressed << " findings, "
            << suppressed << " suppressed exceptions\n";
  if (io_error) return 2;
  return unsuppressed == 0 ? 0 : 1;
}
