#include "report.hpp"

#include <cstdio>

namespace fpr::lint {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& out, const ReportInfo& info,
                const std::vector<Finding>& findings) {
  out << "{\n  \"tool\": \"" << json_escape(info.tool) << "\",\n  \"version\": \""
      << json_escape(info.version) << "\",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\", \"suppressed\": " << (f.suppressed ? "true" : "false");
    if (f.suppressed) {
      out << ", \"suppress_reason\": \"" << json_escape(f.suppress_reason) << "\"";
    }
    out << "}";
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

void write_sarif(std::ostream& out, const ReportInfo& info,
                 const std::vector<Finding>& findings) {
  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \""
      << json_escape(info.tool)
      << "\",\n"
         "          \"version\": \""
      << json_escape(info.version)
      << "\",\n"
         "          \"rules\": [";
  bool first = true;
  for (const RuleInfo& r : info.rules) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "            {\"id\": \"" << json_escape(r.name)
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.summary) << "\"}}";
  }
  out << (first ? "]" : "\n          ]")
      << "\n"
         "        }\n"
         "      },\n"
         "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": " << (f.suppressed ? "\"note\"" : "\"error\"")
        << ", \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
        << "}}}]";
    if (f.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"inSource\", \"justification\": \""
          << json_escape(f.suppress_reason) << "\"}]";
    }
    out << "}";
  }
  out << (first ? "]" : "\n      ]")
      << "\n"
         "    }\n"
         "  ]\n"
         "}\n";
}

}  // namespace fpr::lint
