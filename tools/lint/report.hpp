#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

/// Machine-readable report writers shared by fpr-lint and fpr-analyze
/// (DESIGN.md §10): both gates emit the same JSON shape and the same
/// SARIF 2.1.0 subset, so CI has exactly one report/upload step for the
/// whole static-analysis layer and GitHub code scanning renders findings
/// from either tool as inline annotations.
namespace fpr::lint {

/// Identity of the emitting tool plus its rule catalog (SARIF requires the
/// rules to be declared up front so results can reference them by id).
struct ReportInfo {
  std::string tool;     // "fpr-lint" or "fpr-analyze"
  std::string version;  // informational only
  std::vector<RuleInfo> rules;
};

/// Escapes `s` for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

/// Findings as a stable JSON document: {"tool", "findings": [{file, line,
/// rule, message, suppressed, suppress_reason}]}. Sorted order is the
/// caller's responsibility (both CLIs emit file-then-line order).
void write_json(std::ostream& out, const ReportInfo& info,
                const std::vector<Finding>& findings);

/// Findings as SARIF 2.1.0 (the GitHub code-scanning ingestion format).
/// Suppressed findings are included with an `inSource` suppression object —
/// code scanning shows them as dismissed instead of silently dropping the
/// documented exceptions.
void write_sarif(std::ostream& out, const ReportInfo& info,
                 const std::vector<Finding>& findings);

}  // namespace fpr::lint
