#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace fpr::analyze {

namespace {

namespace fs = std::filesystem;
using lint::Finding;
using lint::SourceLine;

// ---------------------------------------------------------------------------
// Small token helpers (mirroring tools/lint/lint.cpp: hand-rolled, no
// <regex> — slow and implementation-varying, which a determinism gate can
// hardly justify using).
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_spaces(const std::string& s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  return pos;
}

std::size_t find_word(const std::string& code, const std::string& word, std::size_t from = 0) {
  std::size_t pos = code.find(word, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = code.find(word, pos + 1);
  }
  return std::string::npos;
}

bool contains_word(const std::string& code, const std::string& word) {
  return find_word(code, word) != std::string::npos;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Normalizes a repo-relative path: forward slashes, no "./" or "..".
std::string norm_path(const std::string& path) {
  return fs::path(path).lexically_normal().generic_string();
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool matches_any_prefix(const std::string& rel, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&rel](const std::string& p) { return starts_with(rel, p); });
}

// ---------------------------------------------------------------------------
// Manifest parsing. The format is a small TOML subset (see layering.toml):
// [module.<name>] / [frozen] / [include] / [dyadic] / [globals] sections
// with `key = ["a", "b"]` string-array entries (arrays may span lines).
// ---------------------------------------------------------------------------

std::vector<std::string> parse_string_array(const std::string& text) {
  // Collects every "..." item; anything between them (commas, brackets,
  // whitespace) is separator noise.
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t close = text.find('"', pos + 1);
    if (close == std::string::npos) break;
    out.push_back(text.substr(pos + 1, close - pos - 1));
    pos = close + 1;
  }
  return out;
}

/// Validates the module DAG: every dep names a module and the dependency
/// relation is acyclic. On success fills `reach` with the transitive
/// dependency set (module index -> reachable module indices, sorted).
bool check_module_dag(const Manifest& manifest, std::vector<std::vector<std::size_t>>& reach,
                      std::string& error) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < manifest.modules.size(); ++i) {
    if (!index.emplace(manifest.modules[i].name, i).second) {
      error = "duplicate module '" + manifest.modules[i].name + "'";
      return false;
    }
  }
  std::vector<std::vector<std::size_t>> deps(manifest.modules.size());
  for (std::size_t i = 0; i < manifest.modules.size(); ++i) {
    for (const std::string& dep : manifest.modules[i].deps) {
      const auto it = index.find(dep);
      if (it == index.end()) {
        error = "module '" + manifest.modules[i].name + "' depends on unknown module '" + dep +
                "'";
        return false;
      }
      deps[i].push_back(it->second);
    }
  }
  // Iterative three-color DFS for cycle detection + transitive closure.
  enum : unsigned char { kWhite, kGray, kBlack };
  std::vector<unsigned char> color(deps.size(), kWhite);
  reach.assign(deps.size(), {});
  // Process in reverse-postorder-free fashion: recurse via explicit stack.
  for (std::size_t start = 0; start < deps.size(); ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < deps[node].size()) {
        const std::size_t child = deps[node][next++];
        if (color[child] == kGray) {
          error = "module dependency cycle through '" + manifest.modules[child].name + "' and '" +
                  manifest.modules[node].name + "'";
          return false;
        }
        if (color[child] == kWhite) {
          color[child] = kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = kBlack;
        std::vector<std::size_t> r;
        for (const std::size_t child : deps[node]) {
          r.push_back(child);
          r.insert(r.end(), reach[child].begin(), reach[child].end());
        }
        std::sort(r.begin(), r.end());
        r.erase(std::unique(r.begin(), r.end()), r.end());
        reach[node] = std::move(r);
        stack.pop_back();
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-file context shared by the rules.
// ---------------------------------------------------------------------------

struct IncludeEdge {
  std::string target;  // as written inside the quotes
  int line = 0;        // 1-based
};

struct FileInfo {
  std::string rel;               // repo-root-relative path, forward slashes
  std::vector<SourceLine> lines;
  std::vector<IncludeEdge> includes;
  const Module* module = nullptr;
  std::vector<Finding> findings;
};

/// Extracts `#include "..."` directives. Detection uses the stripped view
/// (so a commented-out include is not an edge), but the target path is read
/// from the raw line — strip_source blanks string-literal contents, and the
/// include target is lexically a string literal. Conditional includes (#if
/// branches) all count: layering must hold for every build configuration.
std::vector<IncludeEdge> extract_includes(const std::vector<SourceLine>& lines,
                                          const std::string& content) {
  std::vector<std::string> raw;
  std::string current;
  for (const char c : content) {
    if (c == '\n') {
      raw.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  raw.push_back(std::move(current));

  std::vector<IncludeEdge> out;
  for (std::size_t i = 0; i < lines.size() && i < raw.size(); ++i) {
    const std::string& code = lines[i].code;
    std::size_t pos = skip_spaces(code, 0);
    if (pos >= code.size() || code[pos] != '#') continue;
    pos = skip_spaces(code, pos + 1);
    if (code.compare(pos, 7, "include") != 0) continue;
    const std::size_t open = raw[i].find('"');
    if (open == std::string::npos) continue;
    const std::size_t close = raw[i].find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back(
        IncludeEdge{raw[i].substr(open + 1, close - open - 1), static_cast<int>(i + 1)});
  }
  return out;
}

/// Resolves a quoted include against the including file's directory, then
/// the manifest include roots — the same order the build uses. Empty when
/// nothing exists.
std::string resolve_include(const fs::path& root, const std::string& includer_rel,
                            const std::string& target, const Manifest& manifest) {
  std::vector<std::string> candidates;
  const std::string dir = fs::path(includer_rel).parent_path().generic_string();
  candidates.push_back(norm_path(dir.empty() ? target : dir + "/" + target));
  for (const std::string& inc_root : manifest.include_roots) {
    candidates.push_back(norm_path(inc_root + "/" + target));
  }
  for (const std::string& cand : candidates) {
    std::error_code ec;
    if (fs::is_regular_file(root / cand, ec)) return cand;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Rule 1: layering.
// ---------------------------------------------------------------------------

void add_finding(FileInfo& file, int line, const char* rule, std::string message) {
  file.findings.push_back(Finding{file.rel, line, rule, std::move(message), false, {}});
}

void check_layering(const fs::path& root, const Manifest& manifest,
                    const std::vector<std::vector<std::size_t>>& reach,
                    std::map<std::string, FileInfo>& files) {
  std::map<const Module*, std::size_t> module_index;
  for (std::size_t i = 0; i < manifest.modules.size(); ++i) {
    module_index[&manifest.modules[i]] = i;
  }

  // Resolved edges between *scanned* files, for cycle detection.
  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;

  for (auto& [rel, file] : files) {
    if (file.module == nullptr) {
      add_finding(file, 1, "layering",
                  "file is not covered by any module in the layering manifest; add it to a "
                  "module (or a new one) in tools/analyze/layering.toml");
      continue;
    }
    const std::size_t src_idx = module_index.at(file.module);
    for (const IncludeEdge& inc : file.includes) {
      const std::string target = resolve_include(root, rel, inc.target, manifest);
      if (target.empty()) {
        add_finding(file, inc.line, "layering",
                    "cannot resolve include \"" + inc.target +
                        "\" against the file's directory or the manifest include roots");
        continue;
      }
      if (files.count(target) != 0) graph[rel].emplace_back(target, inc.line);

      // Frozen reference headers: only their pinned consumers may include
      // them, no matter what the module DAG would allow.
      for (const FrozenHeader& frozen : manifest.frozen) {
        if (target != frozen.header || rel == frozen.header) continue;
        if (std::find(frozen.consumers.begin(), frozen.consumers.end(), rel) ==
            frozen.consumers.end()) {
          add_finding(file, inc.line, "layering",
                      "\"" + target + "\" is a frozen reference header; only its pinned "
                      "consumers listed in layering.toml may include it");
        }
      }

      const Module* target_module = module_of(manifest, target);
      if (target_module == nullptr) {
        add_finding(file, inc.line, "layering",
                    "includes \"" + target + "\" which no manifest module covers");
        continue;
      }
      if (target_module == file.module) continue;
      const std::size_t dst_idx = module_index.at(target_module);
      if (!std::binary_search(reach[src_idx].begin(), reach[src_idx].end(), dst_idx)) {
        add_finding(file, inc.line, "layering",
                    "layer inversion: module '" + file.module->name + "' may not include \"" +
                        target + "\" (module '" + target_module->name +
                        "'); fix the dependency or amend the manifest DAG");
      }
    }
  }

  // File-level include cycles (three-color DFS over scanned files). The
  // module DAG alone cannot catch an intra-module header cycle.
  enum : unsigned char { kWhite, kGray, kBlack };
  std::map<std::string, unsigned char> color;
  for (const auto& [rel, file] : files) color[rel] = kWhite;
  for (const auto& [start, unused] : files) {
    (void)unused;
    if (color[start] != kWhite) continue;
    struct Frame {
      std::string node;
      std::size_t next = 0;
    };
    std::vector<Frame> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto git = graph.find(frame.node);
      const auto& edges = git == graph.end()
                              ? std::vector<std::pair<std::string, int>>{}
                              : git->second;
      if (frame.next < edges.size()) {
        const auto& [child, line] = edges[frame.next++];
        if (color[child] == kGray) {
          // Back edge: reconstruct the cycle from the DFS stack.
          std::string path;
          auto it = std::find_if(stack.begin(), stack.end(),
                                 [&child](const Frame& f) { return f.node == child; });
          for (; it != stack.end(); ++it) {
            if (!path.empty()) path += " -> ";
            path += it->node;
          }
          path += " -> " + child;
          add_finding(files.at(frame.node), line, "layering", "include cycle: " + path);
        } else if (color[child] == kWhite) {
          color[child] = kGray;
          stack.push_back(Frame{child, 0});
        }
      } else {
        color[frame.node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: dyadic-float. Decimal-string arithmetic keeps the check exact for
// literals of any length (no float round-trip in the tool that polices
// float exactness).
// ---------------------------------------------------------------------------

/// In-place long division of a decimal digit string by `d` (2..9); returns
/// the remainder and strips leading zeros from the quotient.
int div_string(std::string& digits, int d) {
  int rem = 0;
  for (char& c : digits) {
    const int cur = rem * 10 + (c - '0');
    c = static_cast<char>('0' + cur / d);
    rem = cur % d;
  }
  const std::size_t firstnz = digits.find_first_not_of('0');
  digits = firstnz == std::string::npos ? "0" : digits.substr(firstnz);
  return rem;
}

bool is_pow2_string(std::string digits) {
  if (digits == "0") return false;
  while (digits != "1") {
    if (div_string(digits, 2) != 0) return false;
  }
  return true;
}

struct NumLit {
  bool is_fp = false;
  bool dyadic = true;  // exactly m / 2^n for integers m, n >= 0
  bool pow2 = false;   // exactly 2^n (n may be negative)
  std::size_t length = 0;
  std::string text;
};

/// Parses the numeric literal starting at `pos` (caller guarantees a digit,
/// or '.' followed by a digit, with a non-identifier left boundary).
NumLit parse_literal(const std::string& code, std::size_t pos) {
  NumLit lit;
  const std::size_t start = pos;
  const auto digits_while = [&code, &pos](auto pred) {
    std::string out;
    while (pos < code.size() && (pred(code[pos]) || code[pos] == '\'')) {
      if (code[pos] != '\'') out += code[pos];
      ++pos;
    }
    return out;
  };
  const auto is_dec = [](char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; };
  const auto is_hex = [](char c) { return std::isxdigit(static_cast<unsigned char>(c)) != 0; };

  if (code.compare(pos, 2, "0x") == 0 || code.compare(pos, 2, "0X") == 0) {
    pos += 2;
    digits_while(is_hex);
    bool hex_float = false;
    if (pos < code.size() && code[pos] == '.') {
      ++pos;
      digits_while(is_hex);
      hex_float = true;
    }
    if (pos < code.size() && (code[pos] == 'p' || code[pos] == 'P')) {
      ++pos;
      if (pos < code.size() && (code[pos] == '+' || code[pos] == '-')) ++pos;
      digits_while(is_dec);
      hex_float = true;
    }
    while (pos < code.size() && ident_char(code[pos])) ++pos;  // suffixes
    // Hex mantissa + binary exponent: dyadic by construction. Power-of-two
    // detection is skipped (no hex-float divisors exist in this tree).
    lit.is_fp = hex_float;
    lit.dyadic = true;
    lit.pow2 = false;
    lit.length = pos - start;
    lit.text = code.substr(start, lit.length);
    return lit;
  }

  std::string int_part = digits_while(is_dec);
  std::string frac_part;
  bool has_dot = false;
  if (pos < code.size() && code[pos] == '.' &&
      !(pos + 1 < code.size() && code[pos + 1] == '.')) {
    has_dot = true;
    ++pos;
    frac_part = digits_while(is_dec);
  }
  long exp10 = 0;
  bool has_exp = false;
  if (pos < code.size() && (code[pos] == 'e' || code[pos] == 'E') &&
      (pos + 1 < code.size() &&
       (std::isdigit(static_cast<unsigned char>(code[pos + 1])) != 0 || code[pos + 1] == '+' ||
        code[pos + 1] == '-'))) {
    has_exp = true;
    ++pos;
    bool neg = false;
    if (code[pos] == '+' || code[pos] == '-') {
      neg = code[pos] == '-';
      ++pos;
    }
    const std::string exp_digits = digits_while(is_dec);
    exp10 = 0;
    for (const char c : exp_digits) {
      exp10 = std::min<long>(10000, exp10 * 10 + (c - '0'));
    }
    if (neg) exp10 = -exp10;
  }
  while (pos < code.size() && ident_char(code[pos])) ++pos;  // suffixes (f, L, u, ...)
  lit.length = pos - start;
  lit.text = code.substr(start, lit.length);
  lit.is_fp = has_dot || has_exp;

  std::string mantissa = int_part + frac_part;
  const std::size_t firstnz = mantissa.find_first_not_of('0');
  mantissa = firstnz == std::string::npos ? "0" : mantissa.substr(firstnz);
  long t = exp10 - static_cast<long>(frac_part.size());
  if (mantissa == "0") {
    lit.dyadic = true;  // zero
    lit.pow2 = false;
    return lit;
  }
  // Trailing decimal zeros shift into the exponent (0.50 == 0.5).
  while (t < 0 && mantissa.size() > 1 && mantissa.back() == '0') {
    mantissa.pop_back();
    ++t;
  }
  if (t >= 0) {
    lit.dyadic = true;
    lit.pow2 = t == 0 && is_pow2_string(mantissa);
    return lit;
  }
  // value = mantissa / 10^k = mantissa / (2^k * 5^k): dyadic iff 5^k
  // divides the mantissa; then a power of two iff the quotient is one.
  std::string m = mantissa;
  for (long k = t; k < 0; ++k) {
    if (div_string(m, 5) != 0) {
      lit.dyadic = false;
      lit.pow2 = false;
      return lit;
    }
  }
  lit.dyadic = true;
  lit.pow2 = is_pow2_string(m);
  return lit;
}

/// True when `code[pos]` starts a numeric literal (left boundary is not an
/// identifier character or '.', so `x2` or `a.5` members don't match).
bool literal_starts_at(const std::string& code, std::size_t pos) {
  const char c = code[pos];
  const bool starts = std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                      (c == '.' && pos + 1 < code.size() &&
                       std::isdigit(static_cast<unsigned char>(code[pos + 1])) != 0);
  if (!starts) return false;
  if (pos == 0) return true;
  const char prev = code[pos - 1];
  return !ident_char(prev) && prev != '.';
}

void check_dyadic(FileInfo& file) {
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    const int line = static_cast<int>(i + 1);
    bool line_has_fp = false;

    // Pass A: every floating-point literal must be dyadic.
    for (std::size_t pos = 0; pos < code.size();) {
      if (!literal_starts_at(code, pos)) {
        // Skip identifiers wholesale so `x2` cannot restart mid-token.
        if (ident_char(code[pos])) {
          while (pos < code.size() && ident_char(code[pos])) ++pos;
        } else {
          ++pos;
        }
        continue;
      }
      const NumLit lit = parse_literal(code, pos);
      if (lit.is_fp) line_has_fp = true;
      if (lit.is_fp && !lit.dyadic) {
        add_finding(file, line, "dyadic-float",
                    "non-dyadic floating-point literal " + lit.text +
                        " in a determinism-critical module; constants must be exactly m/2^n "
                        "(e.g. 0.25, 0.5, 4096.0) so accumulation is bit-exact");
      }
      pos += std::max<std::size_t>(1, lit.length);
    }
    const bool fp_context = line_has_fp || contains_word(code, "double") ||
                            contains_word(code, "float");

    // Pass B: division by a constant must be by a power of two.
    for (std::size_t pos = 0; pos < code.size(); ++pos) {
      if (code[pos] != '/') continue;
      std::size_t after = pos + 1;
      if (after < code.size() && code[after] == '=') ++after;  // x /= k
      after = skip_spaces(code, after);
      if (after >= code.size() || !literal_starts_at(code, after)) continue;
      const NumLit divisor = parse_literal(code, after);
      if (divisor.pow2) continue;
      if (!divisor.is_fp && !fp_context) continue;  // exact integer division
      add_finding(file, line, "dyadic-float",
                  "division by non-power-of-two constant " + divisor.text +
                      "; multiply by a dyadic reciprocal or restructure so the divisor is a "
                      "power of two (bit-exact across platforms)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: global-state. A brace-scope tracker distinguishes namespace scope
// (where any mutable variable is hidden global state) from function scope
// (where only static/thread_local persists) and type scope (members are the
// object's state, not the program's — out of scope here).
// ---------------------------------------------------------------------------

struct ScopeFrame {
  enum Kind { kNamespace, kType, kFunction } kind;
  bool allowed;  // inside an allowlisted namespace (e.g. testhooks)
};

/// Removes project annotation macros (FPR_GUARDED_BY(mu), FPR_CAPABILITY,
/// ...) so `std::map<K,V> g FPR_GUARDED_BY(mu);` is seen as the variable
/// declaration it is, not mistaken for a function declaration.
std::string strip_annotation_macros(const std::string& stmt) {
  std::string out;
  for (std::size_t pos = 0; pos < stmt.size();) {
    if (stmt.compare(pos, 4, "FPR_") == 0 && (pos == 0 || !ident_char(stmt[pos - 1]))) {
      std::size_t end = pos;
      while (end < stmt.size() && ident_char(stmt[end])) ++end;
      end = skip_spaces(stmt, end);
      if (end < stmt.size() && stmt[end] == '(') {
        int depth = 0;
        while (end < stmt.size()) {
          if (stmt[end] == '(') ++depth;
          if (stmt[end] == ')' && --depth == 0) {
            ++end;
            break;
          }
          ++end;
        }
      }
      pos = end;
      continue;
    }
    out += stmt[pos++];
  }
  return out;
}

/// Removes balanced template argument lists so a `const` inside
/// `shared_ptr<const T>` is not mistaken for a top-level cv-qualifier.
/// Unbalanced '<' (a comparison in an initializer) is left untouched.
std::string strip_template_args(const std::string& stmt) {
  std::string out;
  for (std::size_t pos = 0; pos < stmt.size();) {
    if (stmt[pos] == '<') {
      int depth = 0;
      std::size_t end = pos;
      while (end < stmt.size()) {
        if (stmt[end] == '<') ++depth;
        if (stmt[end] == '>' && --depth == 0) break;
        ++end;
      }
      if (end < stmt.size()) {
        pos = end + 1;
        continue;
      }
    }
    out += stmt[pos++];
  }
  return out;
}

/// The declared name of a variable statement: the token before '=' if any,
/// else the last identifier before an initializer ('{', '(') or array
/// brackets. Template arguments are already stripped by the caller.
std::string declared_name(const std::string& stmt) {
  std::string head = stmt;
  const std::size_t eq = head.find('=');
  if (eq != std::string::npos) head = head.substr(0, eq);
  std::string name;
  for (std::size_t pos = 0; pos < head.size();) {
    if (ident_char(head[pos]) && std::isdigit(static_cast<unsigned char>(head[pos])) == 0) {
      std::size_t end = pos;
      while (end < head.size() && ident_char(head[end])) ++end;
      name = head.substr(pos, end - pos);
      pos = end;
    } else if (head[pos] == '{' || head[pos] == '[' || head[pos] == '(') {
      break;  // initializer or array extent: the name precedes it
    } else {
      ++pos;
    }
  }
  return name;
}

bool namespace_name_allowed(const std::string& stmt,
                            const std::vector<std::string>& allow_namespaces) {
  const std::size_t pos = find_word(stmt, "namespace");
  if (pos == std::string::npos) return false;
  // `namespace a::b` — every component is checked.
  std::size_t p = skip_spaces(stmt, pos + 9);
  while (p < stmt.size()) {
    std::size_t end = p;
    while (end < stmt.size() && ident_char(stmt[end])) ++end;
    if (end == p) break;
    const std::string component = stmt.substr(p, end - p);
    if (std::find(allow_namespaces.begin(), allow_namespaces.end(), component) !=
        allow_namespaces.end()) {
      return true;
    }
    p = end;
    if (stmt.compare(p, 2, "::") == 0) {
      p += 2;
    } else {
      break;
    }
  }
  return false;
}

void check_globals(FileInfo& file, const Manifest& manifest) {
  // Build the scan text: stripped code with preprocessor lines (and their
  // backslash continuations) blanked — a brace inside a macro definition is
  // not a scope.
  std::string text;
  std::vector<std::size_t> line_start;
  bool in_preproc = false;
  for (const SourceLine& src_line : file.lines) {
    line_start.push_back(text.size());
    const std::string& code = src_line.code;
    const std::size_t first = skip_spaces(code, 0);
    const bool starts_preproc = first < code.size() && code[first] == '#';
    const bool skip = in_preproc || starts_preproc;
    const std::string kept = skip ? std::string() : code;
    in_preproc = (in_preproc || starts_preproc) && !code.empty() && code.back() == '\\';
    text += kept;
    text += '\n';
  }
  const auto line_of = [&line_start](std::size_t offset) {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<int>(it - line_start.begin());
  };

  std::vector<ScopeFrame> scopes;
  std::string stmt;
  std::size_t stmt_start = 0;
  int paren_depth = 0;

  const auto parent_allowed = [&scopes]() { return !scopes.empty() && scopes.back().allowed; };

  const auto analyze_stmt = [&](const std::string& raw, std::size_t start_offset) {
    const bool ns_scope = std::all_of(scopes.begin(), scopes.end(), [](const ScopeFrame& f) {
      return f.kind == ScopeFrame::kNamespace;
    });
    const bool fn_scope = !scopes.empty() && scopes.back().kind == ScopeFrame::kFunction;
    if (!ns_scope && !fn_scope) return;  // type scope: members are not globals
    if (parent_allowed()) return;        // allowlisted namespace (testhooks)

    const std::string body = trim(strip_template_args(strip_annotation_macros(raw)));
    if (body.empty() || body[0] == '#') return;
    const bool is_const = contains_word(body, "const") || contains_word(body, "constexpr");
    const bool is_static =
        contains_word(body, "static") || contains_word(body, "thread_local");

    if (fn_scope) {
      // Only static/thread_local persists beyond the call.
      std::size_t p = skip_spaces(body, 0);
      const bool leads = body.compare(p, 6, "static") == 0 ||
                         body.compare(p, 12, "thread_local") == 0;
      if (!leads || is_const) return;
      const std::string name = declared_name(body);
      add_finding(file, line_of(start_offset), "global-state",
                  "function-local static '" + (name.empty() ? body : name) +
                      "' is hidden mutable global state; move it onto core/metrics, a "
                      "testhooks namespace, or pass it explicitly");
      return;
    }

    // Namespace scope.
    static const char* kSkipLeads[] = {"using",  "typedef",   "template", "friend",
                                       "extern", "namespace", "class",    "struct",
                                       "union",  "enum",      "concept",  "static_assert"};
    for (const char* lead : kSkipLeads) {
      const std::size_t p = find_word(body, lead);
      if (p != std::string::npos && p <= skip_spaces(body, 0)) return;
    }
    if (is_const) return;
    // Function declaration/definition heuristic: a '(' before any '='
    // belongs to a parameter list, not an initializer.
    const std::size_t paren = body.find('(');
    const std::size_t eq = body.find('=');
    if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) {
      if (!is_static || eq == std::string::npos) return;
    }
    // A declaration needs a declarator: an initializer, or at least two
    // identifier tokens (type + name). A lone expression/label is neither.
    const std::string name = declared_name(body);
    if (name.empty()) return;
    if (eq == std::string::npos) {
      // Count top-level identifier-ish tokens.
      int tokens = 0;
      for (std::size_t p = 0; p < body.size();) {
        if (ident_char(body[p])) {
          ++tokens;
          while (p < body.size() && (ident_char(body[p]) || body[p] == ':')) ++p;
        } else if (body[p] == '<') {
          int depth = 0;
          while (p < body.size()) {
            if (body[p] == '<') ++depth;
            if (body[p] == '>' && --depth == 0) {
              ++p;
              break;
            }
            ++p;
          }
        } else if (body[p] == '{') {
          break;
        } else {
          ++p;
        }
      }
      if (tokens < 2) return;
    }
    add_finding(file, line_of(start_offset), "global-state",
                "namespace-scope mutable variable '" + name +
                    "'; hidden globals break speculate-then-validate replay — use "
                    "core/metrics counters, a testhooks namespace, or plumb the state "
                    "explicitly");
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(') {
      ++paren_depth;
      stmt += c;
    } else if (c == ')') {
      paren_depth = std::max(0, paren_depth - 1);
      stmt += c;
    } else if (c == '{' && paren_depth == 0) {
      const bool is_ns = contains_word(stmt, "namespace") || contains_word(stmt, "extern");
      const bool is_type = contains_word(stmt, "class") || contains_word(stmt, "struct") ||
                           contains_word(stmt, "union") || contains_word(stmt, "enum");
      const bool is_fn = stmt.find('(') != std::string::npos ||
                         contains_word(stmt, "do") || contains_word(stmt, "else") ||
                         contains_word(stmt, "try") || contains_word(stmt, "catch");
      if (is_ns) {
        scopes.push_back(ScopeFrame{
            ScopeFrame::kNamespace,
            parent_allowed() ||
                namespace_name_allowed(stmt, manifest.globals_allow_namespaces)});
      } else if (is_type) {
        scopes.push_back(ScopeFrame{ScopeFrame::kType, parent_allowed()});
      } else if (is_fn) {
        scopes.push_back(ScopeFrame{ScopeFrame::kFunction, parent_allowed()});
      } else {
        // Brace initializer (e.g. `std::atomic<bool> flag{false}`): part of
        // the statement, not a scope — swallow to the matching brace.
        int depth = 0;
        while (i < text.size()) {
          if (text[i] == '{') ++depth;
          if (text[i] == '}' && --depth == 0) break;
          stmt += text[i];
          ++i;
        }
        if (i < text.size()) stmt += '}';
        continue;
      }
      stmt.clear();
      paren_depth = 0;
    } else if (c == '}' && paren_depth == 0) {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
    } else if (c == ';' && paren_depth == 0) {
      if (trim(stmt).empty()) {
        stmt.clear();
        continue;
      }
      analyze_stmt(stmt, stmt_start);
      stmt.clear();
    } else {
      if (trim(stmt).empty() && !std::isspace(static_cast<unsigned char>(c))) stmt_start = i;
      stmt += c;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const std::vector<lint::RuleInfo>& rule_catalog() { return lint::analyze_rule_catalog(); }

const Module* module_of(const Manifest& manifest, const std::string& rel_path) {
  const Module* best = nullptr;
  std::size_t best_len = 0;
  for (const Module& module : manifest.modules) {
    for (const std::string& prefix : module.paths) {
      if (starts_with(rel_path, prefix) && prefix.size() >= best_len) {
        // Ties go to the earlier declaration (>= keeps the first because
        // later equal-length prefixes only win with strictly longer ones).
        if (prefix.size() > best_len || best == nullptr) {
          best = &module;
          best_len = prefix.size();
        }
      }
    }
  }
  return best;
}

bool parse_manifest(const std::string& text, Manifest& out, std::string& error) {
  out = Manifest{};
  std::istringstream in(text);
  std::string line;
  std::string section;       // "module", "frozen", "include", "dyadic", "globals"
  int line_no = 0;

  const auto fail = [&error, &line_no](const std::string& message) {
    error = "line " + std::to_string(line_no) + ": " + message;
    return false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos && line.find('"') == std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (line[0] == '[') {
      const std::size_t close = line.find(']');
      if (close == std::string::npos) return fail("unterminated section header");
      const std::string header = line.substr(1, close - 1);
      if (starts_with(header, "module.")) {
        section = "module";
        Module module;
        module.name = header.substr(7);
        if (module.name.empty()) return fail("empty module name");
        out.modules.push_back(std::move(module));
      } else if (header == "frozen" || header == "include" || header == "dyadic" ||
                 header == "globals") {
        section = header;
      } else {
        return fail("unknown section [" + header + "]");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = [\"...\"]");
    const std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    // Arrays may span lines: accumulate until the closing bracket.
    while (value.find(']') == std::string::npos && std::getline(in, line)) {
      ++line_no;
      value += " " + trim(line);
    }
    std::vector<std::string> items = parse_string_array(value);
    for (std::string& item : items) {
      const bool dir = !item.empty() && item.back() == '/';
      item = norm_path(item);
      if (dir && !item.empty() && item.back() != '/') item += '/';
    }

    if (section == "module") {
      if (out.modules.empty()) return fail("key outside a [module.*] section");
      if (key == "paths") {
        out.modules.back().paths = std::move(items);
      } else if (key == "deps") {
        // deps are module names, not paths — undo the normalization.
        out.modules.back().deps = parse_string_array(value);
      } else {
        return fail("unknown module key '" + key + "'");
      }
    } else if (section == "frozen") {
      // "header" = ["consumer", ...] — the key itself is a quoted path.
      const std::vector<std::string> header = parse_string_array(key);
      if (header.size() != 1) return fail("frozen entry needs one quoted header path");
      out.frozen.push_back(FrozenHeader{norm_path(header[0]), std::move(items)});
    } else if (section == "include") {
      if (key != "roots") return fail("unknown include key '" + key + "'");
      out.include_roots = std::move(items);
    } else if (section == "dyadic") {
      if (key != "paths") return fail("unknown dyadic key '" + key + "'");
      out.dyadic_paths = std::move(items);
    } else if (section == "globals") {
      if (key == "paths") {
        out.globals_paths = std::move(items);
      } else if (key == "allow_paths") {
        out.globals_allow_paths = std::move(items);
      } else if (key == "allow_namespaces") {
        out.globals_allow_namespaces = parse_string_array(value);
      } else {
        return fail("unknown globals key '" + key + "'");
      }
    } else {
      return fail("key before any section");
    }
  }

  if (out.modules.empty()) {
    error = "manifest declares no modules";
    return false;
  }
  std::vector<std::vector<std::size_t>> reach;
  return check_module_dag(out, reach, error);
}

bool load_manifest(const std::string& path, Manifest& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read manifest '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!parse_manifest(buffer.str(), out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

std::vector<Finding> analyze_tree(const std::string& root, const Manifest& manifest,
                                  const std::vector<std::string>& paths,
                                  const Options& options) {
  const fs::path root_path = fs::path(root).lexically_normal();
  const auto enabled = [&options](const char* rule) {
    return options.only_rules.empty() ||
           std::find(options.only_rules.begin(), options.only_rules.end(), rule) !=
               options.only_rules.end();
  };

  std::map<std::string, FileInfo> files;
  std::vector<Finding> io_errors;
  for (const std::string& path : paths) {
    const fs::path abs = root_path / path;
    for (const std::string& source : lint::collect_sources(abs.generic_string())) {
      const std::string rel =
          fs::path(source).lexically_normal().lexically_relative(root_path).generic_string();
      if (files.count(rel) != 0) continue;
      std::ifstream in(source, std::ios::binary);
      if (!in) {
        io_errors.push_back(Finding{rel, 0, "io-error", "cannot read file", false, {}});
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      FileInfo info;
      info.rel = rel;
      info.lines = lint::strip_source(buffer.str());
      info.includes = extract_includes(info.lines, buffer.str());
      info.module = module_of(manifest, rel);
      files.emplace(rel, std::move(info));
    }
  }

  std::vector<std::vector<std::size_t>> reach;
  std::string dag_error;
  if (!check_module_dag(manifest, reach, dag_error)) {
    // parse_manifest validates this already; belt and braces for callers
    // constructing Manifest by hand.
    io_errors.push_back(Finding{"<manifest>", 0, "layering", dag_error, false, {}});
  } else if (enabled("layering")) {
    check_layering(root_path, manifest, reach, files);
  }

  for (auto& [rel, file] : files) {
    if (enabled("dyadic-float") && matches_any_prefix(rel, manifest.dyadic_paths)) {
      check_dyadic(file);
    }
    if (enabled("global-state") && matches_any_prefix(rel, manifest.globals_paths) &&
        !matches_any_prefix(rel, manifest.globals_allow_paths)) {
      check_globals(file, manifest);
    }
  }

  std::vector<Finding> findings = std::move(io_errors);
  for (auto& [rel, file] : files) {
    // Same inline-suppression protocol as fpr-lint; malformed directives are
    // fpr-lint's to report (exactly once per tree).
    lint::apply_directives(rel, file.lines, /*report_malformed=*/false, file.findings);
    findings.insert(findings.end(), std::make_move_iterator(file.findings.begin()),
                    std::make_move_iterator(file.findings.end()));
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace fpr::analyze
