// fpr-analyze CLI — see tools/analyze/analyze.hpp for the rule catalog and
// tools/analyze/layering.toml for the manifest, DESIGN.md §10 for rationale.
//
// Usage:
//   fpr-analyze --manifest <file> [options] <path>...
//
//   <path>             file or directory, relative to --root (directories are
//                      walked recursively for .cpp/.hpp/.h/.cc, sorted)
//   --manifest <file>  layering manifest (required)
//   --root <dir>       repo root paths are relative to (default ".")
//   --rule <name>      check only this rule (repeatable)
//   --list-rules       print the rule catalog and exit
//   --show-suppressed  also print findings covered by an inline allow()
//   --baseline <file>  known findings (`file:rule` per line); matches are
//                      reported but do not fail the gate — only NEW findings do
//   --report <file>    write the text report to <file>
//   --json <file>      write the findings as JSON to <file>
//   --sarif <file>     write the findings as SARIF 2.1.0 to <file>
//
// Exit status: 0 = clean (or baselined), 1 = new unsuppressed findings,
// 2 = usage/configuration error (unreadable manifest, cyclic module DAG, ...).
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "report.hpp"

namespace {

constexpr const char* kVersion = "1.0";

int usage(std::ostream& out, int code) {
  out << "usage: fpr-analyze --manifest <file> [--root <dir>] [--rule <name>]...\n"
         "                   [--list-rules] [--show-suppressed] [--baseline <file>]\n"
         "                   [--report <file>] [--json <file>] [--sarif <file>] <path>...\n";
  return code;
}

void print_finding(std::ostream& out, const fpr::lint::Finding& f, bool baselined) {
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  if (f.suppressed) out << " (suppressed: " << f.suppress_reason << ")";
  if (baselined) out << " (baselined)";
  out << "\n";
}

/// Loads `file:rule` lines; '#' starts a comment, blank lines are ignored.
bool load_baseline(const std::string& path, std::set<std::string>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::size_t b = line.find_first_not_of(" \t\r");
    std::size_t e = line.find_last_not_of(" \t\r");
    if (b == std::string::npos) continue;
    out.insert(line.substr(b, e - b + 1));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fpr::analyze::Options options;
  std::vector<std::string> paths;
  std::string manifest_path;
  std::string root = ".";
  std::string baseline_path;
  std::string report_path;
  std::string json_path;
  std::string sarif_path;
  bool show_suppressed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&i, argc, argv]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--manifest") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      manifest_path = v;
    } else if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      root = v;
    } else if (arg == "--rule") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      const std::string rule = v;
      bool known = false;
      for (const auto& r : fpr::analyze::rule_catalog()) known = known || r.name == rule;
      if (!known) {
        std::cerr << "fpr-analyze: unknown rule '" << rule << "' (see --list-rules)\n";
        return 2;
      }
      options.only_rules.push_back(rule);
    } else if (arg == "--list-rules") {
      for (const auto& rule : fpr::analyze::rule_catalog()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      baseline_path = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      report_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      json_path = v;
    } else if (arg == "--sarif") {
      const char* v = next();
      if (v == nullptr) return usage(std::cerr, 2);
      sarif_path = v;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fpr-analyze: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (manifest_path.empty() || paths.empty()) return usage(std::cerr, 2);

  fpr::analyze::Manifest manifest;
  std::string error;
  if (!fpr::analyze::load_manifest(manifest_path, manifest, error)) {
    std::cerr << "fpr-analyze: " << error << "\n";
    return 2;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty() && !load_baseline(baseline_path, baseline)) {
    std::cerr << "fpr-analyze: cannot read baseline '" << baseline_path << "'\n";
    return 2;
  }

  const std::vector<fpr::lint::Finding> findings =
      fpr::analyze::analyze_tree(root, manifest, paths, options);

  std::size_t fresh = 0;
  std::size_t baselined = 0;
  std::size_t suppressed = 0;
  for (const auto& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (show_suppressed) print_finding(std::cout, f, false);
      continue;
    }
    const bool known = baseline.count(f.file + ":" + f.rule) != 0;
    if (known) {
      ++baselined;
    } else {
      ++fresh;
    }
    print_finding(std::cout, f, known);
  }

  bool io_error = false;
  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "fpr-analyze: cannot write report to '" << report_path << "'\n";
      io_error = true;
    } else {
      for (const auto& f : findings) {
        print_finding(report, f, !f.suppressed && baseline.count(f.file + ":" + f.rule) != 0);
      }
      report << "# " << fresh << " findings, " << baselined << " baselined, " << suppressed
             << " suppressed\n";
    }
  }
  const fpr::lint::ReportInfo info{"fpr-analyze", kVersion, fpr::analyze::rule_catalog()};
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "fpr-analyze: cannot write JSON to '" << json_path << "'\n";
      io_error = true;
    } else {
      fpr::lint::write_json(json, info, findings);
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::cerr << "fpr-analyze: cannot write SARIF to '" << sarif_path << "'\n";
      io_error = true;
    } else {
      fpr::lint::write_sarif(sarif, info, findings);
    }
  }

  std::cerr << "fpr-analyze: " << fresh << " findings, " << baselined << " baselined, "
            << suppressed << " suppressed exceptions\n";
  if (io_error) return 2;
  return fresh == 0 ? 0 : 1;
}
