#pragma once

#include <string>
#include <vector>

#include "lint.hpp"

/// fpr-analyze — semantic static analysis for the FPGA-routing repo
/// (DESIGN.md §10). Where fpr-lint is purely lexical (single-line token
/// rules), fpr-analyze is preprocessor- and declaration-aware: it extracts
/// the full include graph, tracks brace scopes, and parses numeric literal
/// values. Three gates, all driven by one committed manifest
/// (tools/analyze/layering.toml):
///
///   layering      the include graph must match the committed module DAG —
///                 no cycles, no layer inversions, and frozen reference
///                 headers (dijkstra_reference.hpp) only from their pinned
///                 consumers. This is what keeps the frozen differential
///                 baselines (PR 2/7) isolated from production code.
///   dyadic-float  in determinism-critical modules (congestion pricing,
///                 router, fault sampling) every floating-point literal must
///                 be dyadic (m/2^n) and every division by a constant must
///                 be by a power of two, so accumulation is bit-exact across
///                 platforms and backends (PR 8's convergence contract).
///   global-state  no namespace-scope mutable variable or function-local
///                 static outside the allowlist (core/metrics counters,
///                 testhooks namespaces): hidden globals are exactly what
///                 breaks speculate-then-validate replay (PR 6/9).
///
/// Findings reuse the fpr-lint machinery end to end: the same Finding
/// struct, the same stripped-source view, and the same inline
/// `// fpr-lint: allow(<rule>) <reason>` suppression protocol (reason
/// mandatory). Like fpr-lint, the library is dependency-free and builds
/// standalone so CI can gate on it before the project's own dependencies
/// exist.
namespace fpr::analyze {

/// One module of the layering manifest: a name, the path prefixes that
/// assign files to it (longest prefix wins across modules), and the modules
/// it may include (dependencies are transitive: if router may use core and
/// core may use graph, router may include graph headers).
struct Module {
  std::string name;
  std::vector<std::string> paths;
  std::vector<std::string> deps;
};

/// A frozen reference header and the only files allowed to include it.
struct FrozenHeader {
  std::string header;
  std::vector<std::string> consumers;
};

/// Parsed layering.toml (see that file for the concrete format). All paths
/// are repo-root-relative with forward slashes.
struct Manifest {
  std::vector<Module> modules;
  std::vector<FrozenHeader> frozen;
  /// Directories quoted includes resolve against (after the including
  /// file's own directory), mirroring the build's include dirs.
  std::vector<std::string> include_roots;
  /// Determinism-critical path prefixes the dyadic-float rule applies to.
  std::vector<std::string> dyadic_paths;
  /// Path prefixes the global-state rule applies to...
  std::vector<std::string> globals_paths;
  /// ...minus these (the sanctioned mutable-state homes, e.g. core/metrics).
  std::vector<std::string> globals_allow_paths;
  /// Namespaces whose contents are sanctioned mutable state (testhooks).
  std::vector<std::string> globals_allow_namespaces;
};

/// Parses manifest text. Returns false and sets `error` on syntax errors,
/// duplicate/unknown module names, or a cyclic module DAG — a broken
/// manifest is a configuration error, not a suppressible finding.
bool parse_manifest(const std::string& text, Manifest& out, std::string& error);

/// Reads and parses a manifest file.
bool load_manifest(const std::string& path, Manifest& out, std::string& error);

/// The three semantic rules, in reporting order (names are registered with
/// fpr::lint::is_known_rule so suppressions cross-validate in both tools).
const std::vector<lint::RuleInfo>& rule_catalog();

struct Options {
  /// Restrict checking to these rules (empty = all).
  std::vector<std::string> only_rules;
};

/// Longest-prefix module lookup for a repo-relative path; nullptr when no
/// module covers it.
const Module* module_of(const Manifest& manifest, const std::string& rel_path);

/// Analyzes the tree: collects C++ sources under each of `paths` (files or
/// directories, repo-root-relative), runs the three rules, and applies
/// inline suppressions. `root` anchors both the scan and every manifest
/// path. Findings come back sorted by (file, line, rule), suppressed ones
/// included — callers filter on `suppressed`, exactly like fpr-lint.
std::vector<lint::Finding> analyze_tree(const std::string& root, const Manifest& manifest,
                                        const std::vector<std::string>& paths,
                                        const Options& options = {});

}  // namespace fpr::analyze
