// Negotiated-congestion router bench: paper mode vs negotiated mode over
// the smallest Table 2/3 circuits — minimum channel width, passes at that
// width, route time per net, and the pattern-probe acceptance ratio (the
// fast path's quality measure). Every negotiated minimum-width witness is
// replayed through the negotiate feasibility oracle before it is reported,
// so a number in this table is also a verified solution.
//
// Writes a machine-readable record with --json <path>; the committed
// baseline is BENCH_negotiate.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "check/oracles.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"
#include "router/width_search.hpp"

namespace {

using namespace fpr;

struct BenchCase {
  std::string name;
  ArchSpec base;  // width 1: the search variable
  Circuit circuit;
  int paper_width_quoted = 0;  // the paper's IKMB column, for context
};

std::vector<BenchCase> bench_cases() {
  std::vector<BenchCase> cases;
  const auto add = [&cases](const CircuitProfile& p, bool xc4000, unsigned seed) {
    cases.push_back({p.name,
                     xc4000 ? ArchSpec::xc4000(p.rows, p.cols, 1)
                            : ArchSpec::xc3000(p.rows, p.cols, 1),
                     synthesize_circuit(p, seed), p.paper_ikmb});
  };
  add(xc3000_profiles()[0], false, 31);  // busc
  add(xc3000_profiles()[1], false, 31);  // dma
  add(xc4000_profiles()[2], true, 7);    // term1
  if (bench::full_mode()) {
    add(xc3000_profiles()[2], false, 31);  // bnre
    add(xc3000_profiles()[3], false, 31);  // dfsm
    add(xc4000_profiles()[0], true, 7);    // 9symml
  }
  return cases;
}

struct ModeRow {
  int min_width = -1;
  int passes = 0;
  double seconds_at_min = 0;
  long long pattern_attempts = 0;
  long long pattern_accepts = 0;
};

/// Minimum channel width in `mode`, then one timed re-route at that width
/// (the timed run is what the per-net cost is quoted from; the width search
/// itself probes many widths and would smear the timing).
ModeRow run_mode(const BenchCase& bc, RouterMode mode) {
  RouterOptions options;
  options.mode = mode;
  options.max_passes = 20;
  options.negotiate_passes = 20;
  WidthSearchOptions search;
  search.max_width = 30;

  ModeRow row;
  const auto found = find_min_channel_width(bc.base, bc.circuit, options, search);
  row.min_width = found.min_width;
  if (row.min_width < 0) return row;

  ArchSpec at_min = bc.base;
  at_min.channel_width = row.min_width;
  Device device(at_min);
  const bench::Stopwatch watch;
  const RoutingResult r = route_circuit(device, bc.circuit, options);
  row.seconds_at_min = watch.seconds();
  row.passes = r.passes;
  row.pattern_attempts = r.pattern_attempts;
  row.pattern_accepts = r.pattern_accepts;

  if (mode == RouterMode::kNegotiated) {
    const auto check = check::check_routing_feasibility(at_min, bc.circuit, r, options);
    if (!check.ok()) {
      std::fprintf(stderr, "FATAL: %s negotiated witness failed the oracle:\n%s\n",
                   bc.name.c_str(), check.message().c_str());
      std::exit(1);
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_output_path(argc, argv);
  bench::banner("Negotiated congestion vs paper mode: min width, passes, pattern fast path");
  bench::report_threads();
  std::printf("\n%-8s %6s | %5s %6s %9s | %5s %6s %9s %9s\n", "circuit", "paper*", "width",
              "passes", "us/net", "width", "passes", "us/net", "pat-acc");
  std::printf("%-8s %6s | %21s | %31s\n", "", "(quoted)", "paper mode", "negotiated mode");

  bench::Json rows = bench::Json::array();
  for (const BenchCase& bc : bench_cases()) {
    const ModeRow paper = run_mode(bc, RouterMode::kPaper);
    const ModeRow negotiated = run_mode(bc, RouterMode::kNegotiated);
    const double nets = static_cast<double>(bc.circuit.nets.size());
    const double accept_rate =
        negotiated.pattern_attempts > 0
            ? static_cast<double>(negotiated.pattern_accepts) /
                  static_cast<double>(negotiated.pattern_attempts)
            : 0.0;
    std::printf("%-8s %6d | %5d %6d %9.1f | %5d %6d %9.1f %8.0f%%\n", bc.name.c_str(),
                bc.paper_width_quoted, paper.min_width, paper.passes,
                paper.seconds_at_min * 1e6 / nets, negotiated.min_width, negotiated.passes,
                negotiated.seconds_at_min * 1e6 / nets, accept_rate * 100.0);

    bench::Json row = bench::Json::object();
    row.field("case", bc.name);
    row.field("nets", static_cast<int>(bc.circuit.nets.size()));
    row.field("paper_quoted_width", bc.paper_width_quoted);
    row.field("paper_min_width", paper.min_width);
    row.field("paper_passes", paper.passes);
    row.field("paper_us_per_net", paper.seconds_at_min * 1e6 / nets);
    row.field("negotiated_min_width", negotiated.min_width);
    row.field("negotiated_passes", negotiated.passes);
    row.field("negotiated_us_per_net", negotiated.seconds_at_min * 1e6 / nets);
    row.field("pattern_attempts", negotiated.pattern_attempts);
    row.field("pattern_accepts", negotiated.pattern_accepts);
    rows.element(row);
  }

  if (json_path != nullptr) {
    bench::Json doc = bench::Json::object();
    doc.field("bench", "negotiate_router");
    doc.field("timestamp", bench::iso_timestamp());
    doc.field("full_mode", bench::full_mode());
    doc.field("rows", rows);
    if (bench::write_json(json_path, doc)) {
      std::printf("\nwrote %s\n", json_path);
    } else {
      return 1;
    }
  }
  std::printf("\n(*) paper-quoted IKMB width, for context; measured widths are this repo's.\n");
  return 0;
}
