// Microbench of the shortest-path hot path: the CSR/arena/4-ary-heap engine
// versus the frozen pre-change engine (graph/dijkstra_reference.hpp), on
// repeated single-source runs over Table 1's grid substrates at the paper's
// congestion levels (none/low/medium), a random graph, and radius-bounded
// scoped runs.
//
// Both engines produce bit-identical dist arrays (checksummed here; pinned
// exhaustively by tests/graph/dijkstra_differential_test.cpp), so the
// timings compare identical work.
//
// Writes a machine-readable record (default BENCH_dijkstra.json, override
// with --json <path>) — the start of the repo's perf trajectory.

#include <cmath>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/rng.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dijkstra_reference.hpp"
#include "graph/grid.hpp"
#include "workload/congestion_model.hpp"

namespace {

using namespace fpr;

struct Case {
  std::string name;
  Graph graph;
  std::vector<NodeId> targets;  // non-empty => scoped dijkstra_within runs
};

struct Measurement {
  double ref_ns = 0;        // frozen engine, per run
  double new_ns = 0;        // current engine, reuse overload, per run
  double new_alloc_ns = 0;  // current engine, fresh tree per run
  long long runs = 0;
  double speedup = 0;  // ref_ns / new_ns
};

/// Times `body(i)` for adaptively many iterations (>= min_seconds of total
/// wall time after one warmup sweep) and returns ns per iteration.
double time_per_run(const std::function<void(int)>& body, int batch, double min_seconds,
                    long long& runs_out) {
  for (int i = 0; i < batch; ++i) body(i);  // warmup: touch arenas, caches
  long long runs = 0;
  double elapsed = 0;
  const bench::Stopwatch watch;
  while (elapsed < min_seconds) {
    for (int i = 0; i < batch; ++i) body(i);
    runs += batch;
    elapsed = watch.seconds();
  }
  runs_out = runs;
  return 1e9 * elapsed / static_cast<double>(runs);
}

Measurement measure_case(const Case& c, double min_seconds) {
  const Graph& g = c.graph;
  const NodeId n = g.node_count();
  const auto source_of = [n](int i) { return static_cast<NodeId>((i * 37) % n); };

  // Equal-work guard: the two engines must agree exactly on every source
  // the timing loop will visit.
  ShortestPathTree reused;
  for (int i = 0; i < 64; ++i) {
    const NodeId s = source_of(i);
    if (c.targets.empty()) {
      dijkstra(g, s, reused);
      const auto ref = reference::dijkstra(g, s);
      if (reused.dist != ref.dist) {
        std::fprintf(stderr, "FATAL: engines disagree on %s source %d\n", c.name.c_str(), s);
        std::exit(1);
      }
    } else {
      dijkstra_within(g, s, c.targets, reused);
      const auto ref = reference::dijkstra_within(g, s, c.targets);
      if (reused.dist != ref.dist) {
        std::fprintf(stderr, "FATAL: engines disagree on %s source %d\n", c.name.c_str(), s);
        std::exit(1);
      }
    }
  }

  // The pre-pass above asserted full bitwise equality; the timed bodies
  // only need a cheap data dependency so the runs cannot be optimized out.
  Measurement m;
  volatile double sink = 0;
  const int batch = 64;

  long long runs = 0;
  m.ref_ns = time_per_run(
      [&](int i) {
        const auto t = c.targets.empty()
                           ? reference::dijkstra(g, source_of(i))
                           : reference::dijkstra_within(g, source_of(i), c.targets);
        sink = sink + t.dist.back();
      },
      batch, min_seconds, runs);

  m.new_ns = time_per_run(
      [&](int i) {
        if (c.targets.empty()) {
          dijkstra(g, source_of(i), reused);
        } else {
          dijkstra_within(g, source_of(i), c.targets, reused);
        }
        sink = sink + reused.dist.back();
      },
      batch, min_seconds, m.runs);

  m.new_alloc_ns = time_per_run(
      [&](int i) {
        const auto t = c.targets.empty() ? dijkstra(g, source_of(i))
                                         : dijkstra_within(g, source_of(i), c.targets);
        sink = sink + t.dist.back();
      },
      batch, min_seconds, runs);

  m.speedup = m.ref_ns / m.new_ns;
  return m;
}

/// The paper's Table 1 substrate at a given congestion level: a unit-weight
/// grid with k pre-routed KMB nets whose tree edges were incremented
/// (src/workload/congestion_model). `nets_at_20x20` is the paper's k for a
/// 20x20 grid (10 = low, 20 = medium); it scales with area so larger grids
/// see the same edge load as the paper's at that level.
Graph congested_grid(int side, int nets_at_20x20, unsigned seed) {
  std::mt19937_64 rng(seed);
  const int k = nets_at_20x20 * side * side / 400;
  return make_congested_grid(side, side, k, rng).graph();
}

Graph random_graph(NodeId nodes, EdgeId extra, unsigned seed) {
  std::mt19937_64 rng(seed);
  Graph g(nodes);
  const auto weight = [&rng] { return static_cast<Weight>(draw_range(rng, 1, 10)); };
  for (NodeId i = 1; i < nodes; ++i) {
    const NodeId pred = static_cast<NodeId>(draw_range(rng, 0, i - 1));
    g.add_edge(i, pred, weight());
  }
  for (EdgeId added = 0; added < extra;) {
    const auto u = static_cast<NodeId>(draw_range(rng, 0, nodes - 1));
    const auto v = static_cast<NodeId>(draw_range(rng, 0, nodes - 1));
    if (u == v) continue;
    g.add_edge(u, v, weight());
    ++added;
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpr;
  bench::banner(
      "micro_dijkstra — repeated single-source shortest paths\n"
      "CSR/arena/4-ary-heap engine vs the frozen pre-change engine");

  const char* json_path = bench::json_output_path(argc, argv);
  const char* default_path = "BENCH_dijkstra.json";
  if (json_path == nullptr) json_path = default_path;

  // FPR_FULL=1 lengthens each timing window for a quieter measurement.
  const double min_seconds = bench::full_mode() ? 1.0 : 0.25;

  std::vector<Case> cases;
  {
    GridGraph g30(30, 30);
    cases.push_back({"grid30_uncongested", g30.graph(), {}});
    cases.push_back({"grid30_congested_low", congested_grid(30, 10, 1995), {}});
    cases.push_back({"grid30_congested_med", congested_grid(30, 20, 1995), {}});
    GridGraph g60(60, 60);
    cases.push_back({"grid60_uncongested", g60.graph(), {}});
    cases.push_back({"grid60_congested_med", congested_grid(60, 20, 1996), {}});
    cases.push_back({"random1500", random_graph(1500, 3000, 1995), {}});
    Graph g40 = congested_grid(40, 20, 1997);
    GridGraph coords(40, 40);
    std::vector<NodeId> targets;
    for (int i = 0; i < 8; ++i) targets.push_back(coords.node_at(3 + 2 * i, 5 + i));
    cases.push_back({"grid40_congested_scoped8", std::move(g40), targets});
  }

  const bench::Stopwatch watch;
  TextTable table({"Case", "V", "E", "old ns/run", "new ns/run", "new+alloc", "speedup"});
  bench::Json rows = bench::Json::array();
  double log_speedup_sum = 0;
  for (const Case& c : cases) {
    const Measurement m = measure_case(c, min_seconds);
    log_speedup_sum += std::log(m.speedup);
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", m.speedup);
    table.add_row({c.name, std::to_string(c.graph.node_count()),
                   std::to_string(c.graph.edge_count()),
                   std::to_string(static_cast<long long>(m.ref_ns)),
                   std::to_string(static_cast<long long>(m.new_ns)),
                   std::to_string(static_cast<long long>(m.new_alloc_ns)), speedup});
    rows.element(bench::Json::object()
                     .field("case", c.name)
                     .field("nodes", static_cast<long long>(c.graph.node_count()))
                     .field("edges", static_cast<long long>(c.graph.edge_count()))
                     .field("scoped", !c.targets.empty())
                     .field("runs", m.runs)
                     .field("ref_ns_per_run", m.ref_ns)
                     .field("new_ns_per_run", m.new_ns)
                     .field("new_alloc_ns_per_run", m.new_alloc_ns)
                     .field("speedup", m.speedup));
  }
  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(cases.size()));
  const double elapsed = watch.seconds();

  std::printf("%s", table.render().c_str());
  std::printf("\ngeomean speedup %.2fx  (single thread; both engines produce identical trees)\n",
              geomean);
  std::printf("[micro_dijkstra] total time %.1fs\n", elapsed);

  bench::Json doc = bench::Json::object();
  doc.field("schema", "fpr-bench-v1")
      .field("bench", "micro_dijkstra")
      .field("timestamp_utc", bench::iso_timestamp())
      .field("threads_available", default_thread_count())
      .field("min_seconds_per_measurement", min_seconds)
      .field("geomean_speedup", geomean)
      .field("cases", rows);
  bench::write_json(json_path, doc);
  return 0;
}
