// CPU-time microbenchmarks (google-benchmark) for every routing-tree
// construction, on the instance classes the paper quotes: "CPU times for
// IKMB, PFA and IDOM on random graphs with |V| = 50, |E| = 1000 and
// |N| = 5 are in the range of several dozen milliseconds on a Sun/4
// workstation" (Section 5). Also measured: 20x20 grid nets (the Table 1
// substrate) and a 4000-series device graph (the Tables 2-5 substrate).

#include <benchmark/benchmark.h>

#include <random>

#include "core/rng.hpp"
#include "core/route.hpp"
#include "experiments/tables23.hpp"
#include "graph/grid.hpp"
#include "netlist/profiles.hpp"

namespace fpr {
namespace {

/// The paper's random-graph class: |V| = 50, |E| = 1000, |N| = 5.
Graph paper_random_graph(unsigned seed) {
  std::mt19937_64 rng(seed);
  Graph g(50);
  const auto weight = [&rng] { return 1.0 + 9.0 * draw_unit(rng); };
  for (NodeId i = 1; i < 50; ++i) {
    const NodeId pred = static_cast<NodeId>(draw_range(rng, 0, i - 1));
    g.add_edge(i, pred, weight());
  }
  for (int e = 49; e < 1000; ++e) {
    NodeId u = static_cast<NodeId>(draw_range(rng, 0, 49));
    NodeId v = static_cast<NodeId>(draw_range(rng, 0, 49));
    if (u == v) v = (v + 1) % 50;
    g.add_edge(u, v, weight());
  }
  return g;
}

std::vector<NodeId> pick_net(NodeId nodes, int pins, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<NodeId> net;
  while (static_cast<int>(net.size()) < pins) {
    const auto v = static_cast<NodeId>(draw_range(rng, 0, nodes - 1));
    bool fresh = true;
    for (const NodeId u : net) fresh = fresh && u != v;
    if (fresh) net.push_back(v);
  }
  return net;
}

void BM_PaperRandomGraph(benchmark::State& state, Algorithm algo) {
  const Graph g = paper_random_graph(1);
  const auto terminals = pick_net(50, 5, 2);
  Net net;
  net.source = terminals[0];
  net.sinks.assign(terminals.begin() + 1, terminals.end());
  for (auto _ : state) {
    PathOracle oracle(g);
    benchmark::DoNotOptimize(route(g, net, algo, oracle));
  }
}

void BM_Grid20(benchmark::State& state, Algorithm algo) {
  const GridGraph grid(20, 20);
  const auto terminals = pick_net(400, 8, 3);
  Net net;
  net.source = terminals[0];
  net.sinks.assign(terminals.begin() + 1, terminals.end());
  for (auto _ : state) {
    PathOracle oracle(grid.graph());
    benchmark::DoNotOptimize(route(grid.graph(), net, algo, oracle));
  }
}

void BM_DeviceGraph(benchmark::State& state, Algorithm algo) {
  // term1-sized 4000-series device at W=8 (|V| ~ 1700).
  const Device device(ArchSpec::xc4000(10, 9, 8));
  Net net;
  net.source = device.block_node(1, 1);
  net.sinks = {device.block_node(7, 2), device.block_node(4, 8), device.block_node(8, 6)};
  RouteOptions options;
  options.candidates = CandidateStrategy::kCorridor;
  options.max_candidates = 48;
  for (auto _ : state) {
    PathOracle oracle(device.graph());
    if (algorithm_supports_scoped_paths(algo)) oracle.set_scope(net.terminals());
    benchmark::DoNotOptimize(route(device.graph(), net, algo, oracle, options));
  }
}

#define FPR_BENCH_ALGO(fn, algo) \
  BENCHMARK_CAPTURE(fn, algo, Algorithm::k##algo)->Unit(benchmark::kMillisecond)

FPR_BENCH_ALGO(BM_PaperRandomGraph, Kmb);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Zel);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Ikmb);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Izel);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Djka);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Dom);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Pfa);
FPR_BENCH_ALGO(BM_PaperRandomGraph, Idom);

FPR_BENCH_ALGO(BM_Grid20, Kmb);
FPR_BENCH_ALGO(BM_Grid20, Ikmb);
FPR_BENCH_ALGO(BM_Grid20, Pfa);
FPR_BENCH_ALGO(BM_Grid20, Idom);

FPR_BENCH_ALGO(BM_DeviceGraph, Kmb);
FPR_BENCH_ALGO(BM_DeviceGraph, Ikmb);
FPR_BENCH_ALGO(BM_DeviceGraph, Pfa);
FPR_BENCH_ALGO(BM_DeviceGraph, Idom);

}  // namespace
}  // namespace fpr

BENCHMARK_MAIN();
