// Regenerates Figures 10, 11 and 14: the worst-case families.
//  - Fig 10: PFA on the weighted-graph gadget -> ratio grows linearly in |N|.
//  - Fig 11: PFA on the grid staircase -> bounded by 2x; our SPT-extraction
//    assembly step defuses the published tightness (ratios hover just above
//    1 instead of approaching 2), documented in EXPERIMENTS.md.
//  - Fig 14: IDOM on the Set-Cover gadget -> ratio grows like log |N|.

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/figures.hpp"

int main() {
  using namespace fpr;
  bench::banner("Figures 10 / 11 / 14 — worst-case constructions");

  std::printf("%s\n",
              render_ratio_sweep("Fig. 10: PFA on the weighted gadget (Theta(N) x OPT)",
                                 run_fig10({2, 4, 8, 16, 32, 64}))
                  .c_str());

  std::printf(
      "%s(note: our PFA adds an SPT-extraction step over the folded union;\n"
      " it never hurts and empirically removes the 2x tightness of this\n"
      " family — ratios stay slightly above 1 instead of approaching 2)\n\n",
      render_ratio_sweep("Fig. 11: PFA on the grid staircase (bound: 2 x OPT)",
                         run_fig11({2, 4, 6, 8, 10, 12}))
          .c_str());

  std::printf("%s\n",
              render_ratio_sweep("Fig. 14: IDOM on the Set-Cover gadget (Omega(log N) x OPT)",
                                 run_fig14({1, 2, 3, 4, 5, 6}))
                  .c_str());

  std::printf(
      "Shapes reproduced: Fig 10 ratio ~ N/4 (linear); Fig 11 within the\n"
      "proven 2x bound; Fig 14 ratio ~ (levels+1)/2 (logarithmic in sinks).\n");
  return 0;
}
