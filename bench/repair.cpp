// Incremental ECO repair bench: single-wire fault events against routed
// Table 2/3 circuits, repair work (node expansions the cone re-route
// spends) versus the work a full from-scratch re-route of the degraded
// device costs — the number that justifies the repair engine. Each event's
// repaired state is replayed through the defect-aware feasibility oracle
// with the cumulative overlay installed, so every row is also a verified
// solution, and the bench FAILS if any event's repair work is not strictly
// below the full re-route's.
//
// Writes a machine-readable record with --json <path>; the committed
// baseline is BENCH_repair.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "check/oracles.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"
#include "router/repair.hpp"
#include "router/router.hpp"
#include "router/width_search.hpp"

namespace {

using namespace fpr;

struct BenchCase {
  std::string name;
  ArchSpec base;  // width 1; the run picks min width + 1 headroom
  Circuit circuit;
};

std::vector<BenchCase> bench_cases() {
  std::vector<BenchCase> cases;
  const auto add = [&cases](const CircuitProfile& p, bool xc4000, unsigned seed) {
    cases.push_back({p.name,
                     xc4000 ? ArchSpec::xc4000(p.rows, p.cols, 1)
                            : ArchSpec::xc3000(p.rows, p.cols, 1),
                     synthesize_circuit(p, seed)});
  };
  add(xc3000_profiles()[0], false, 31);  // busc
  add(xc3000_profiles()[1], false, 31);  // dma
  add(xc4000_profiles()[2], true, 7);    // term1
  if (bench::full_mode()) {
    add(xc3000_profiles()[2], false, 31);  // bnre
    add(xc3000_profiles()[3], false, 31);  // dfsm
  }
  return cases;
}

struct ModeRow {
  int width = 0;
  int events = 0;
  int cone_nets = 0;       // summed over events
  long long repair_work = 0;
  long long reroute_work = 0;  // full from-scratch re-route, summed
  double repair_seconds = 0;
  double reroute_seconds = 0;
  bool all_clean = true;   // every event's outcome.clean()
  bool strictly_cheaper = true;  // repair < re-route for EVERY event
};

constexpr int kEventsPerCase = 6;

/// Routes at min_width + 1, then applies kEventsPerCase single-wire fault
/// events (each kills the first committed wire of a different routed net)
/// through repair_route, comparing each event's work against a full
/// re-route of the same degraded device from scratch.
ModeRow run_mode(const BenchCase& bc, RouterMode mode) {
  RouterOptions options;
  options.mode = mode;
  options.max_passes = 20;
  options.negotiate_passes = 20;
  options.record_commits = true;
  WidthSearchOptions search;
  search.max_width = 30;

  ModeRow row;
  const auto found = find_min_channel_width(bc.base, bc.circuit, options, search);
  if (found.min_width < 0) {
    std::fprintf(stderr, "FATAL: %s did not route within the width search range\n",
                 bc.name.c_str());
    std::exit(1);
  }
  row.width = found.min_width + 1;  // headroom so single-wire repairs succeed

  ArchSpec at_width = bc.base;
  at_width.channel_width = row.width;
  Device device(at_width);
  Circuit circuit = bc.circuit;
  RoutingResult result = route_circuit(device, circuit, options);
  if (!result.success) {
    std::fprintf(stderr, "FATAL: %s failed to route at width %d\n", bc.name.c_str(), row.width);
    std::exit(1);
  }

  FaultEvent overlay;  // cumulative, for the oracle replay + re-route probes
  std::size_t victim = 0;
  for (int i = 0; i < kEventsPerCase; ++i) {
    // Next net (cycling) that still owns wires; kill its first wire.
    RepairEvent ev;
    for (std::size_t probe = 0; probe < result.nets.size(); ++probe) {
      const std::size_t n = (victim + probe) % result.nets.size();
      if (!result.commit_logs[n].wires.empty()) {
        ev.faults.dead_wires = {result.commit_logs[n].wires.front()};
        victim = n + 1;
        break;
      }
    }
    if (ev.faults.dead_wires.empty()) break;
    overlay.merge(ev.faults);

    const bench::Stopwatch repair_watch;
    const RepairOutcome out = repair_route(device, circuit, result, ev, options);
    row.repair_seconds += repair_watch.seconds();
    row.events += 1;
    row.cone_nets += out.cone_nets;
    row.repair_work += out.budget_used;
    row.all_clean = row.all_clean && out.clean();

    // The alternative a repair engine displaces: re-route the whole
    // circuit from scratch on the same degraded device.
    Device fresh(at_width);
    fresh.apply_fault_event(overlay);
    const bench::Stopwatch reroute_watch;
    const RoutingResult full = route_circuit(fresh, circuit, options);
    row.reroute_seconds += reroute_watch.seconds();
    row.reroute_work += full.work_used;
    if (out.budget_used >= full.work_used) row.strictly_cheaper = false;
  }

  const auto check =
      check::check_routing_feasibility(at_width, circuit, result, options, nullptr, &overlay);
  if (!check.ok()) {
    std::fprintf(stderr, "FATAL: %s repaired state failed the oracle:\n%s\n", bc.name.c_str(),
                 check.message().c_str());
    std::exit(1);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_output_path(argc, argv);
  bench::banner("Incremental repair vs full re-route: work per single-wire fault event");
  bench::report_threads();
  std::printf("\n%-8s %-10s %5s %6s %5s | %12s %12s %7s | %9s %9s\n", "circuit", "mode", "width",
              "events", "cone", "repair-work", "reroute-work", "ratio", "rep-ms", "rte-ms");

  bool all_strict = true;
  bench::Json rows = bench::Json::array();
  for (const BenchCase& bc : bench_cases()) {
    for (const RouterMode mode : {RouterMode::kPaper, RouterMode::kNegotiated}) {
      const char* mode_name = mode == RouterMode::kPaper ? "paper" : "negotiated";
      const ModeRow row = run_mode(bc, mode);
      const double ratio = row.reroute_work > 0 ? static_cast<double>(row.repair_work) /
                                                      static_cast<double>(row.reroute_work)
                                                : 0.0;
      std::printf("%-8s %-10s %5d %6d %5d | %12lld %12lld %6.1f%% | %9.1f %9.1f\n",
                  bc.name.c_str(), mode_name, row.width, row.events, row.cone_nets,
                  row.repair_work, row.reroute_work, ratio * 100.0, row.repair_seconds * 1e3,
                  row.reroute_seconds * 1e3);
      all_strict = all_strict && row.strictly_cheaper;

      bench::Json r = bench::Json::object();
      r.field("case", bc.name);
      r.field("mode", std::string(mode_name));
      r.field("width", row.width);
      r.field("events", row.events);
      r.field("cone_nets", row.cone_nets);
      r.field("repair_work", row.repair_work);
      r.field("reroute_work", row.reroute_work);
      r.field("work_ratio", ratio);
      r.field("repair_ms", row.repair_seconds * 1e3);
      r.field("reroute_ms", row.reroute_seconds * 1e3);
      r.field("all_clean", row.all_clean);
      r.field("strictly_cheaper", row.strictly_cheaper);
      rows.element(r);
    }
  }

  if (!all_strict) {
    std::fprintf(stderr,
                 "FATAL: a single-wire event's repair cost reached the full re-route cost\n");
    return 1;
  }
  if (json_path != nullptr) {
    bench::Json doc = bench::Json::object();
    doc.field("bench", "repair");
    doc.field("timestamp", bench::iso_timestamp());
    doc.field("full_mode", bench::full_mode());
    doc.field("events_per_case", kEventsPerCase);
    doc.field("rows", rows);
    if (bench::write_json(json_path, doc)) {
      std::printf("\nwrote %s\n", json_path);
    } else {
      return 1;
    }
  }
  std::printf("\nwork = deterministic Dijkstra node expansions (never wall-clock).\n");
  return 0;
}
