#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace fpr::bench {

/// FPR_FULL=1 enables the heaviest circuit sweeps.
inline bool full_mode() {
  const char* env = std::getenv("FPR_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace fpr::bench
