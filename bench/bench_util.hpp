#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/parallel.hpp"

namespace fpr::bench {

// ---------------------------------------------------------------------------
// Wall-clock access, confined.
//
// Measured results must never depend on the clock (fpr-lint rule
// `wall-clock`), but *timing a benchmark* is inherently a clock read. Every
// bench takes its timings through Stopwatch and its record timestamps
// through iso_timestamp(), so these two functions are the only suppressed
// clock reads outside src/core — a new clock read anywhere else is a lint
// finding, not a judgment call.
// ---------------------------------------------------------------------------

/// Monotonic elapsed-time measurement for bench reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(now()) {}

  /// Seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(now() - start_).count();
  }

  void restart() { start_ = now(); }

 private:
  // fpr-lint: allow(wall-clock) benches time themselves; timings are reported, never fed back into results
  static std::chrono::steady_clock::time_point now() { return std::chrono::steady_clock::now(); }

  // fpr-lint: allow(wall-clock) time_point member of the one sanctioned bench timer
  std::chrono::steady_clock::time_point start_;
};

/// UTC timestamp ("2026-08-06T12:00:00Z") stamped into perf-trajectory JSON
/// records so a committed measurement names when it was taken.
inline std::string iso_timestamp() {
  // fpr-lint: allow(wall-clock) records when a measurement was taken; not an input to any result
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  return buf;
}

/// Peak resident-set size of this process so far, in KiB (getrusage
/// ru_maxrss). A high-water mark, not a current reading — meaningful only
/// when the process has done exactly one measurable thing, which is why
/// bench/device_scale forks one child per case instead of sweeping in-line.
/// Returns 0 on platforms without the counter.
inline long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // macOS reports bytes
#else
  return usage.ru_maxrss;  // Linux reports KiB
#endif
#else
  return 0;
#endif
}

/// FPR_FULL=1 enables the heaviest circuit sweeps.
inline bool full_mode() {
  const char* env = std::getenv("FPR_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

/// Prints the worker count the circuit sweeps will fan out over
/// (FPR_THREADS override or hardware concurrency).
inline void report_threads() {
  std::printf("(threads: %d — set FPR_THREADS to override)\n", default_thread_count());
}

inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// Machine-readable output: every bench accepts `--json <path>` and, when
// given, writes its measurements as a JSON document so runs accumulate into
// a perf trajectory (e.g. BENCH_dijkstra.json) instead of evaporating in a
// terminal scrollback.
// ---------------------------------------------------------------------------

/// The value after a `--json` flag, or nullptr when absent. Exits with a
/// usage message on a dangling flag so a typo'd invocation cannot silently
/// drop the record.
inline const char* json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return nullptr;
}

/// Minimal ordered JSON object/array builder — enough for flat bench
/// records with nested row arrays; no external dependency.
class Json {
 public:
  static Json object() { return Json('{', '}'); }
  static Json array() { return Json('[', ']'); }

  // Object fields (key + value). Non-finite doubles render as null.
  Json& field(const std::string& key, double v) { return raw_field(key, number(v)); }
  Json& field(const std::string& key, long long v) { return raw_field(key, std::to_string(v)); }
  Json& field(const std::string& key, int v) { return raw_field(key, std::to_string(v)); }
  Json& field(const std::string& key, bool v) { return raw_field(key, v ? "true" : "false"); }
  Json& field(const std::string& key, const std::string& v) {
    return raw_field(key, quote(v));
  }
  Json& field(const std::string& key, const char* v) { return raw_field(key, quote(v)); }
  Json& field(const std::string& key, const Json& v) { return raw_field(key, v.dump()); }

  // Array elements.
  Json& element(const Json& v) { return raw_element(v.dump()); }
  Json& element(double v) { return raw_element(number(v)); }
  Json& element(const std::string& v) { return raw_element(quote(v)); }

  /// Renders with 2-space indentation and a trailing newline at top level.
  std::string dump() const {
    std::string out;
    out += open_;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += indent(parts_[i]);
    }
    if (!parts_.empty()) out += "\n";
    out += close_;
    return out;
  }

 private:
  Json(char open, char close) : open_(open), close_(close) {}

  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string indent(const std::string& body) {
    std::string out = "  ";
    for (const char c : body) {
      out += c;
      if (c == '\n') out += "  ";
    }
    return out;
  }

  Json& raw_field(const std::string& key, const std::string& rendered) {
    parts_.push_back(quote(key) + ": " + rendered);
    return *this;
  }

  Json& raw_element(std::string rendered) {
    parts_.push_back(std::move(rendered));
    return *this;
  }

  char open_, close_;
  std::vector<std::string> parts_;
};

/// Writes `json` to `path` (plus trailing newline); prints the destination
/// or a failure message. Returns success.
inline bool write_json(const char* path, const Json& json) {
  if (path == nullptr) return false;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return false;
  }
  const std::string text = json.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (ok) std::printf("(json record written to %s)\n", path);
  return ok;
}

}  // namespace fpr::bench
