#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.hpp"

namespace fpr::bench {

/// FPR_FULL=1 enables the heaviest circuit sweeps.
inline bool full_mode() {
  const char* env = std::getenv("FPR_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

/// Prints the worker count the circuit sweeps will fan out over
/// (FPR_THREADS override or hardware concurrency).
inline void report_threads() {
  std::printf("(threads: %d — set FPR_THREADS to override)\n", default_thread_count());
}

inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// Machine-readable output: every bench accepts `--json <path>` and, when
// given, writes its measurements as a JSON document so runs accumulate into
// a perf trajectory (e.g. BENCH_dijkstra.json) instead of evaporating in a
// terminal scrollback.
// ---------------------------------------------------------------------------

/// The value after a `--json` flag, or nullptr when absent. Exits with a
/// usage message on a dangling flag so a typo'd invocation cannot silently
/// drop the record.
inline const char* json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return nullptr;
}

/// Minimal ordered JSON object/array builder — enough for flat bench
/// records with nested row arrays; no external dependency.
class Json {
 public:
  static Json object() { return Json('{', '}'); }
  static Json array() { return Json('[', ']'); }

  // Object fields (key + value). Non-finite doubles render as null.
  Json& field(const std::string& key, double v) { return raw_field(key, number(v)); }
  Json& field(const std::string& key, long long v) { return raw_field(key, std::to_string(v)); }
  Json& field(const std::string& key, int v) { return raw_field(key, std::to_string(v)); }
  Json& field(const std::string& key, bool v) { return raw_field(key, v ? "true" : "false"); }
  Json& field(const std::string& key, const std::string& v) {
    return raw_field(key, quote(v));
  }
  Json& field(const std::string& key, const char* v) { return raw_field(key, quote(v)); }
  Json& field(const std::string& key, const Json& v) { return raw_field(key, v.dump()); }

  // Array elements.
  Json& element(const Json& v) { return raw_element(v.dump()); }
  Json& element(double v) { return raw_element(number(v)); }
  Json& element(const std::string& v) { return raw_element(quote(v)); }

  /// Renders with 2-space indentation and a trailing newline at top level.
  std::string dump() const {
    std::string out;
    out += open_;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += indent(parts_[i]);
    }
    if (!parts_.empty()) out += "\n";
    out += close_;
    return out;
  }

 private:
  Json(char open, char close) : open_(open), close_(close) {}

  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string indent(const std::string& body) {
    std::string out = "  ";
    for (const char c : body) {
      out += c;
      if (c == '\n') out += "  ";
    }
    return out;
  }

  Json& raw_field(const std::string& key, const std::string& rendered) {
    parts_.push_back(quote(key) + ": " + rendered);
    return *this;
  }

  Json& raw_element(std::string rendered) {
    parts_.push_back(std::move(rendered));
    return *this;
  }

  char open_, close_;
  std::vector<std::string> parts_;
};

/// Writes `json` to `path` (plus trailing newline); prints the destination
/// or a failure message. Returns success.
inline bool write_json(const char* path, const Json& json) {
  if (path == nullptr) return false;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return false;
  }
  const std::string text = json.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (ok) std::printf("(json record written to %s)\n", path);
  return ok;
}

}  // namespace fpr::bench
