#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/parallel.hpp"

namespace fpr::bench {

/// FPR_FULL=1 enables the heaviest circuit sweeps.
inline bool full_mode() {
  const char* env = std::getenv("FPR_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

/// Prints the worker count the circuit sweeps will fan out over
/// (FPR_THREADS override or hardware concurrency).
inline void report_threads() {
  std::printf("(threads: %d — set FPR_THREADS to override)\n", default_thread_count());
}

inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace fpr::bench
