// Radius/wirelength tradeoff study (Section 2's related-work argument):
// sweep BRBC's epsilon from pure-pathlength (0) to pure-wirelength (inf)
// and place PFA/IDOM on the same axes. The paper's point: at the
// optimal-pathlength end, BRBC degenerates to a shortest-paths tree, while
// PFA/IDOM achieve the same optimal radius with distinctly less wire.

#include <cstdio>
#include <random>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "arbor/brbc.hpp"
#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "core/route.hpp"
#include "workload/congestion_model.hpp"
#include "workload/random_nets.hpp"

int main() {
  using namespace fpr;
  bench::banner(
      "BRBC [14] vs PFA/IDOM — radius/wirelength tradeoff\n"
      "(20x20 grids, low congestion, 40 nets of 7 pins; ratios vs optimal)");

  const double epsilons[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 1e9};
  std::vector<RunningStat> brbc_wire(std::size(epsilons));
  std::vector<RunningStat> brbc_radius(std::size(epsilons));
  RunningStat pfa_wire, pfa_radius, idom_wire, idom_radius, kmb_wire;

  std::mt19937_64 rng(1995);
  for (int trial = 0; trial < 40; ++trial) {
    GridGraph grid = make_congested_grid(20, 20, 10, rng);
    const Net net = random_grid_net(grid, 7, rng);
    PathOracle oracle(grid.graph());
    const auto& spt = oracle.from(net.source);
    Weight opt_radius = 0;
    for (const NodeId s : net.sinks) opt_radius = std::max(opt_radius, spt.distance(s));
    const Weight kmb_cost = route(grid.graph(), net, Algorithm::kKmb, oracle).cost();
    kmb_wire.add(1.0);

    for (std::size_t i = 0; i < std::size(epsilons); ++i) {
      const auto tree = brbc(grid.graph(), net.terminals(), epsilons[i], oracle);
      brbc_wire[i].add(tree.cost() / kmb_cost);
      brbc_radius[i].add(tree.max_path_length(net.source, net.sinks) / opt_radius);
    }
    const auto p = route(grid.graph(), net, Algorithm::kPfa, oracle);
    pfa_wire.add(p.cost() / kmb_cost);
    pfa_radius.add(p.max_path_length(net.source, net.sinks) / opt_radius);
    const auto d = route(grid.graph(), net, Algorithm::kIdom, oracle);
    idom_wire.add(d.cost() / kmb_cost);
    idom_radius.add(d.max_path_length(net.source, net.sinks) / opt_radius);
  }

  TextTable table({"Construction", "Avg wirelength (x KMB)", "Avg max path (x optimal)"});
  for (std::size_t i = 0; i < std::size(epsilons); ++i) {
    const std::string label =
        epsilons[i] > 1e8 ? "BRBC eps=inf (KMB tree)" : "BRBC eps=" + format_fixed(epsilons[i]);
    table.add_row({label, format_fixed(brbc_wire[i].mean(), 3),
                   format_fixed(brbc_radius[i].mean(), 3)});
  }
  table.add_separator();
  table.add_row({"PFA", format_fixed(pfa_wire.mean(), 3), format_fixed(pfa_radius.mean(), 3)});
  table.add_row({"IDOM", format_fixed(idom_wire.mean(), 3), format_fixed(idom_radius.mean(), 3)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape: BRBC trades radius for wire along epsilon, but at\n"
      "optimal radius (eps=0) it needs more wire than PFA/IDOM, which sit\n"
      "at (optimal radius, near-KMB wirelength) — the Section 2 claim that\n"
      "motivates the paper's arborescence constructions.\n");
  return 0;
}
