// Regenerates Table 4: minimum channel width with the router driven by
// IKMB vs PFA vs IDOM on the 4000-series circuits. The arborescence
// algorithms buy optimal source-sink pathlengths at a channel-width
// premium; IDOM's premium is smaller than PFA's.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/table45.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const char* json_path = bench::json_output_path(argc, argv);
  const bool full = bench::full_mode();
  bench::banner("Table 4 — min channel width by tree algorithm (IKMB / PFA / IDOM)");
  bench::report_threads();

  std::vector<CircuitProfile> profiles = xc4000_profiles();
  if (!full) {
    // Three width searches per circuit: keep the default to the five
    // smaller circuits.
    std::erase_if(profiles, [](const CircuitProfile& p) {
      return p.name == "k2" || p.name == "alu4" || p.name == "vda" ||
             p.name == "example2";
    });
    std::printf("(default mode: 5 of 9 circuits; FPR_FULL=1 runs all nine)\n\n");
  }

  Table4Options options;
  options.seed = 1995;
  options.max_passes = 10;
  options.max_width = 24;

  const fpr::bench::Stopwatch watch;
  const auto result = run_table4(profiles, options);
  const double elapsed = watch.seconds();

  std::printf("%s", render_table4(result).c_str());
  std::printf("[table4] total time %.1fs (seed %u)\n", elapsed, options.seed);

  if (json_path != nullptr) {
    bench::Json rows = bench::Json::array();
    for (const Table4Row& row : result.rows) {
      rows.element(bench::Json::object()
                       .field("circuit", row.profile.name)
                       .field("ikmb_min_width", row.ikmb)
                       .field("pfa_min_width", row.pfa)
                       .field("idom_min_width", row.idom));
    }
    bench::Json doc = bench::Json::object();
    doc.field("schema", "fpr-bench-v1")
        .field("bench", "table4_algorithm_widths")
        .field("seed", static_cast<long long>(options.seed))
        .field("full_mode", full)
        .field("elapsed_seconds", elapsed)
        .field("rows", rows);
    bench::write_json(json_path, doc);
  }
  return 0;
}
