// Regenerates Table 4: minimum channel width with the router driven by
// IKMB vs PFA vs IDOM on the 4000-series circuits. The arborescence
// algorithms buy optimal source-sink pathlengths at a channel-width
// premium; IDOM's premium is smaller than PFA's.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/table45.hpp"

int main() {
  using namespace fpr;
  const bool full = bench::full_mode();
  bench::banner("Table 4 — min channel width by tree algorithm (IKMB / PFA / IDOM)");
  bench::report_threads();

  std::vector<CircuitProfile> profiles = xc4000_profiles();
  if (!full) {
    // Three width searches per circuit: keep the default to the five
    // smaller circuits.
    std::erase_if(profiles, [](const CircuitProfile& p) {
      return p.name == "k2" || p.name == "alu4" || p.name == "vda" ||
             p.name == "example2";
    });
    std::printf("(default mode: 5 of 9 circuits; FPR_FULL=1 runs all nine)\n\n");
  }

  Table4Options options;
  options.seed = 1995;
  options.max_passes = 10;
  options.max_width = 24;

  const auto start = std::chrono::steady_clock::now();
  const auto result = run_table4(profiles, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("%s", render_table4(result).c_str());
  std::printf("[table4] total time %.1fs (seed %u)\n", elapsed, options.seed);
  return 0;
}
