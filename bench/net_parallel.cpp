// Net-parallel router bench: wall-clock of route_circuit at worker counts
// 1/2/4/8 over spread-out synthetic circuits and the smallest Table 2/3
// profiles, with the determinism contract re-checked on every cell (the
// parallel result must match the serial reference field-for-field) and the
// wave scheduler's acceptance ratio reported — the accepted/speculated
// fraction is the mechanism's quality measure, independent of how many
// cores the host happens to have.
//
// Writes a machine-readable record (default BENCH_parallel_router.json,
// override with --json <path>).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

namespace {

using namespace fpr;

struct BenchCase {
  std::string name;
  ArchSpec arch;
  Circuit circuit;
};

Circuit quadrant_circuit(int n) {
  Circuit c;
  c.name = "quadrants";
  c.rows = c.cols = 2 * n;
  for (int q = 0; q < 4; ++q) {
    const int bx = (q % 2) * n;
    const int by = (q / 2) * n;
    for (int i = 0; i + 1 < n; ++i) {
      c.nets.push_back({{bx + i, by + i}, {{bx + i + 1, by + i}, {bx + i, by + i + 1}}});
      c.nets.push_back({{bx + n - 1 - i, by + i}, {{bx + n - 1 - i, by + i + 1}}});
    }
  }
  return c;
}

std::vector<BenchCase> bench_cases() {
  std::vector<BenchCase> cases;
  cases.push_back({"quadrants-16x16", ArchSpec::xc4000(16, 16, 5), quadrant_circuit(8)});
  {
    const CircuitProfile& busc = xc3000_profiles()[0];  // smallest Table 2
    cases.push_back({"busc-w" + std::to_string(busc.paper_ikmb),
                     ArchSpec::xc3000(busc.rows, busc.cols, busc.paper_ikmb),
                     synthesize_circuit(busc, 31)});
  }
  {
    const CircuitProfile& term1 = xc4000_profiles()[2];  // smallest Table 3
    cases.push_back({"term1-w" + std::to_string(term1.paper_ikmb),
                     ArchSpec::xc4000(term1.rows, term1.cols, term1.paper_ikmb),
                     synthesize_circuit(term1, 7)});
  }
  if (bench::full_mode()) {
    const CircuitProfile& k2 = xc4000_profiles()[5];  // largest Table 3
    cases.push_back({"k2-w" + std::to_string(k2.paper_ikmb),
                     ArchSpec::xc4000(k2.rows, k2.cols, k2.paper_ikmb),
                     synthesize_circuit(k2, 13)});
  }
  return cases;
}

bool identical(const RoutingResult& a, const RoutingResult& b) {
  if (a.success != b.success || a.passes != b.passes || a.failed_nets != b.failed_nets ||
      a.work_used != b.work_used || a.total_wirelength != b.total_wirelength ||
      a.net_order != b.net_order || a.nets.size() != b.nets.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    if (a.nets[i].status != b.nets[i].status || a.nets[i].edges != b.nets[i].edges ||
        a.nets[i].wirelength != b.nets[i].wirelength) {
      return false;
    }
  }
  return true;
}

struct Cell {
  int threads = 0;
  double seconds = 0;
  bool matches_serial = false;
  long long waves = 0;
  long long speculated = 0;
  long long accepted = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_output_path(argc, argv);
  bench::banner("Net-parallel router: wall-clock and determinism vs worker count");
  bench::report_threads();
  std::printf("(speedup needs real cores; acceptance ratio is meaningful on any host)\n\n");

  bench::Json rows = bench::Json::array();
  for (const BenchCase& bc : bench_cases()) {
    RouterOptions options;
    options.max_passes = 6;
    std::printf("%-18s %4d nets:\n", bc.name.c_str(), static_cast<int>(bc.circuit.nets.size()));

    RoutingResult serial;
    std::vector<Cell> cells;
    for (const int threads : {1, 2, 4, 8}) {
      options.threads = threads;
      counters().reset();
      Device device(bc.arch);
      const bench::Stopwatch watch;
      const RoutingResult r = route_circuit(device, bc.circuit, options);
      Cell cell;
      cell.threads = threads;
      cell.seconds = watch.seconds();
      cell.waves = static_cast<long long>(counters().parallel_waves.load());
      cell.speculated = static_cast<long long>(counters().nets_speculated.load());
      cell.accepted = static_cast<long long>(counters().nets_spec_accepted.load());
      if (threads == 1) serial = r;
      cell.matches_serial = threads == 1 || identical(serial, r);
      std::printf("  threads=%d  %7.3fs  success=%d  waves=%lld  accepted=%lld/%lld  %s\n",
                  threads, cell.seconds, r.success ? 1 : 0, cell.waves, cell.accepted,
                  cell.speculated, cell.matches_serial ? "identical" : "MISMATCH");
      if (!cell.matches_serial) {
        std::fprintf(stderr, "FATAL: %s threads=%d diverged from the serial reference\n",
                     bc.name.c_str(), threads);
        return 1;
      }
      cells.push_back(cell);
    }

    bench::Json row = bench::Json::object();
    row.field("case", bc.name);
    row.field("nets", static_cast<int>(bc.circuit.nets.size()));
    row.field("success", serial.success);
    row.field("passes", serial.passes);
    bench::Json cell_rows = bench::Json::array();
    for (const Cell& c : cells) {
      bench::Json jc = bench::Json::object();
      jc.field("threads", c.threads);
      jc.field("seconds", c.seconds);
      jc.field("identical_to_serial", c.matches_serial);
      jc.field("waves", c.waves);
      jc.field("speculated", c.speculated);
      jc.field("accepted", c.accepted);
      cell_rows.element(jc);
    }
    row.field("cells", cell_rows);
    rows.element(row);
  }

  if (json_path != nullptr) {
    bench::Json doc = bench::Json::object();
    doc.field("bench", "net_parallel_router");
    doc.field("timestamp", bench::iso_timestamp());
    doc.field("host_threads", default_thread_count());
    doc.field("full_mode", bench::full_mode());
    doc.field("rows", rows);
    if (bench::write_json(json_path, doc)) {
      std::printf("\nwrote %s\n", json_path);
    } else {
      return 1;
    }
  }
  std::printf("\nAll thread counts bit-identical to the serial reference.\n");
  return 0;
}
