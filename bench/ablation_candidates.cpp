// Ablation (DESIGN.md section 4): Steiner-candidate enumeration for the
// iterated constructions — the paper's full V-N scan vs the corridor
// filter, and the effect of the candidate cap. Reports solution quality
// (wirelength vs the full scan) and work (Dijkstra runs per net).

#include <cstdio>
#include <random>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "core/route.hpp"
#include "workload/congestion_model.hpp"
#include "workload/random_nets.hpp"

int main() {
  using namespace fpr;
  bench::banner(
      "Ablation — IGMST/IDOM Steiner-candidate strategies on 20x20 grids\n"
      "(50 nets, 8 pins, low congestion; quality vs the full V-N scan)");

  struct Config {
    const char* label;
    CandidateStrategy strategy;
    int cap;
    bool batched;
  };
  const Config configs[] = {
      {"all nodes (paper)", CandidateStrategy::kAllNodes, 0, false},
      {"all nodes, batched rounds", CandidateStrategy::kAllNodes, 0, true},
      {"corridor", CandidateStrategy::kCorridor, 0, false},
      {"corridor, cap 48", CandidateStrategy::kCorridor, 48, false},
      {"corridor, cap 16", CandidateStrategy::kCorridor, 16, false},
  };

  for (const Algorithm algo : {Algorithm::kIkmb, Algorithm::kIdom}) {
    TextTable table({"Candidates", "Avg wire% vs full scan", "Avg Dijkstra runs/net"});
    std::vector<RunningStat> wire(std::size(configs));
    std::vector<RunningStat> runs(std::size(configs));

    std::mt19937_64 rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
      GridGraph grid = make_congested_grid(20, 20, 10, rng);
      const Net net = random_grid_net(grid, 8, rng);
      Weight reference = 0;
      for (std::size_t i = 0; i < std::size(configs); ++i) {
        PathOracle oracle(grid.graph());
        RouteOptions options;
        options.candidates = configs[i].strategy;
        options.max_candidates = configs[i].cap;
        options.batched = configs[i].batched;
        const RoutingTree tree = route(grid.graph(), net, algo, oracle, options);
        if (i == 0) reference = tree.cost();
        wire[i].add(percent_vs(tree.cost(), reference));
        runs[i].add(static_cast<double>(oracle.dijkstra_runs()));
      }
    }
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      table.add_row({configs[i].label, format_fixed(wire[i].mean()),
                     format_fixed(runs[i].mean(), 1)});
    }
    std::printf("%s:\n%s\n", algorithm_name(algo).data(), table.render().c_str());
  }
  std::printf(
      "Takeaway: the corridor filter loses little quality while bounding the\n"
      "candidate set, which is what makes IKMB affordable on real device\n"
      "graphs (|V| > 5000).\n");
  return 0;
}
