// Regenerates Figure 4: one four-pin net routed four ways (KMB, IGMST,
// DJKA, IDOM) with the wirelength/pathlength relationships the figure
// illustrates — KMB pays extra wirelength AND extra pathlength, IGMST is
// the optimal Steiner tree, IDOM the optimal arborescence winning both
// metrics over KMB simultaneously.

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/figures.hpp"

int main() {
  using namespace fpr;
  bench::banner("Figure 4 — four solutions for one four-pin net");
  const Fig4Result result = run_fig4();
  std::printf("%s", render_fig4(result).c_str());
  return 0;
}
