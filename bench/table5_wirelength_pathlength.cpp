// Regenerates Table 5: at a fixed per-circuit channel width (the paper's
// Table 5 widths), the percent wirelength increase and percent maximum
// pathlength decrease of PFA and IDOM relative to IKMB. The tradeoff the
// paper highlights: ~10-20% more wire buys ~10% shorter critical paths,
// with IDOM dominating PFA on both sides.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/table45.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const char* json_path = bench::json_output_path(argc, argv);
  const bool full = bench::full_mode();
  bench::banner("Table 5 — wirelength vs max-pathlength tradeoff at fixed width");
  bench::report_threads();

  std::vector<CircuitProfile> profiles = xc4000_profiles();
  if (!full) {
    std::erase_if(profiles, [](const CircuitProfile& p) { return p.name == "k2"; });
    std::printf("(default mode: k2 skipped; FPR_FULL=1 runs all nine)\n\n");
  }

  Table5Options options;
  options.seed = 1995;
  options.max_passes = 12;
  // Paper widths from profiles; bump by +2 because our synthetic circuits
  // and device model are calibrated to smaller absolute widths, and Table 5
  // requires a width at which all three algorithms complete.
  for (const auto& p : profiles) options.widths.push_back(p.paper_table5_width + 2);

  const fpr::bench::Stopwatch watch;
  const auto result = run_table5(profiles, options);
  const double elapsed = watch.seconds();

  std::printf("%s", render_table5(result).c_str());
  std::printf("[table5] total time %.1fs (seed %u)\n", elapsed, options.seed);

  if (json_path != nullptr) {
    bench::Json rows = bench::Json::array();
    for (const Table5Row& row : result.rows) {
      rows.element(bench::Json::object()
                       .field("circuit", row.profile.name)
                       .field("width", row.width)
                       .field("all_routed", row.all_routed)
                       .field("pfa_wire_pct", row.pfa_wire_pct)
                       .field("idom_wire_pct", row.idom_wire_pct)
                       .field("pfa_path_pct", row.pfa_path_pct)
                       .field("idom_path_pct", row.idom_path_pct));
    }
    bench::Json doc = bench::Json::object();
    doc.field("schema", "fpr-bench-v1")
        .field("bench", "table5_tradeoff")
        .field("seed", static_cast<long long>(options.seed))
        .field("full_mode", full)
        .field("elapsed_seconds", elapsed)
        .field("avg_pfa_wire_pct", result.avg_pfa_wire)
        .field("avg_idom_wire_pct", result.avg_idom_wire)
        .field("avg_pfa_path_pct", result.avg_pfa_path)
        .field("avg_idom_path_pct", result.avg_idom_path)
        .field("rows", rows);
    bench::write_json(json_path, doc);
  }
  return 0;
}
