// Regenerates Table 5: at a fixed per-circuit channel width (the paper's
// Table 5 widths), the percent wirelength increase and percent maximum
// pathlength decrease of PFA and IDOM relative to IKMB. The tradeoff the
// paper highlights: ~10-20% more wire buys ~10% shorter critical paths,
// with IDOM dominating PFA on both sides.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/table45.hpp"

int main() {
  using namespace fpr;
  const bool full = bench::full_mode();
  bench::banner("Table 5 — wirelength vs max-pathlength tradeoff at fixed width");
  bench::report_threads();

  std::vector<CircuitProfile> profiles = xc4000_profiles();
  if (!full) {
    std::erase_if(profiles, [](const CircuitProfile& p) { return p.name == "k2"; });
    std::printf("(default mode: k2 skipped; FPR_FULL=1 runs all nine)\n\n");
  }

  Table5Options options;
  options.seed = 1995;
  options.max_passes = 12;
  // Paper widths from profiles; bump by +2 because our synthetic circuits
  // and device model are calibrated to smaller absolute widths, and Table 5
  // requires a width at which all three algorithms complete.
  for (const auto& p : profiles) options.widths.push_back(p.paper_table5_width + 2);

  const auto start = std::chrono::steady_clock::now();
  const auto result = run_table5(profiles, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("%s", render_table5(result).c_str());
  std::printf("[table5] total time %.1fs (seed %u)\n", elapsed, options.seed);
  return 0;
}
