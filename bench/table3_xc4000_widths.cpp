// Regenerates Table 3: minimum channel width on the Xilinx 4000-series
// architecture (Fs=3, Fc=W) for the nine benchmark-circuit profiles; our
// IKMB router vs the two-pin baseline (SEGA/GBP stand-in), published
// SEGA/GBP numbers quoted alongside. Profile-matched synthetic circuits.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/tables23.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const char* json_path = bench::json_output_path(argc, argv);
  const bool full = bench::full_mode();
  bench::banner("Table 3 — minimum channel width, Xilinx 4000-series (Fs=3, Fc=W)");
  bench::report_threads();

  std::vector<CircuitProfile> profiles = xc4000_profiles();
  if (!full) {
    // Drop the two heaviest (k2 22x20/404 nets; alu4 19x17/255 nets).
    std::erase_if(profiles, [](const CircuitProfile& p) {
      return p.name == "k2" || p.name == "alu4";
    });
    std::printf("(default mode: k2 and alu4 skipped; FPR_FULL=1 runs all nine)\n\n");
  }

  WidthExperimentOptions options;
  options.seed = 1995;
  options.max_passes = 12;
  options.max_width = 24;

  const fpr::bench::Stopwatch watch;
  const auto result = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  const double elapsed = watch.seconds();

  std::printf("%s", render_width_experiment(result).c_str());
  std::printf(
      "\nShape reproduced: IKMB needs less channel width than the two-pin\n"
      "baseline on every circuit (paper: SEGA +26%%, GBP +17%% vs our router).\n");
  std::printf("[table3] total time %.1fs (seed %u, max %d passes)\n", elapsed, options.seed,
              options.max_passes);

  if (json_path != nullptr) {
    bench::Json rows = bench::Json::array();
    for (const WidthRow& row : result.rows) {
      rows.element(bench::Json::object()
                       .field("circuit", row.profile.name)
                       .field("ours_min_width", row.ours)
                       .field("baseline_min_width", row.baseline));
    }
    bench::Json doc = bench::Json::object();
    doc.field("schema", "fpr-bench-v1")
        .field("bench", "table3_xc4000")
        .field("seed", static_cast<long long>(options.seed))
        .field("full_mode", full)
        .field("elapsed_seconds", elapsed)
        .field("rows", rows);
    bench::write_json(json_path, doc);
  }
  return 0;
}
