// Regenerates Table 2: minimum channel width on the Xilinx 3000-series
// architecture (Fs=6, Fc=ceil(0.6W)) for the five benchmark-circuit
// profiles, comparing our Steiner router (IKMB) against the in-framework
// two-pin-decomposition baseline (the CGE stand-in; published CGE numbers
// are quoted alongside). Circuits are profile-matched synthetics — see
// DESIGN.md section 2.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/tables23.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const char* json_path = bench::json_output_path(argc, argv);
  const bool full = bench::full_mode();
  bench::banner("Table 2 — minimum channel width, Xilinx 3000-series (Fs=6, Fc=0.6W)");
  bench::report_threads();

  std::vector<CircuitProfile> profiles = xc3000_profiles();
  if (!full) {
    // z03 (26x27, 608 nets) dominates runtime; keep the default sweep brisk.
    profiles.pop_back();
    std::printf("(default mode: largest circuit z03 skipped; FPR_FULL=1 runs all five)\n\n");
  }

  WidthExperimentOptions options;
  options.seed = 1995;
  options.max_passes = 12;
  options.max_width = 24;

  const fpr::bench::Stopwatch watch;
  const auto result = run_width_experiment(profiles, ArchFamily::kXc3000, options);
  const double elapsed = watch.seconds();

  std::printf("%s", render_width_experiment(result).c_str());
  std::printf(
      "\nShape reproduced: whole-net Steiner routing (IKMB) completes every\n"
      "circuit at smaller channel width than two-pin decomposition, the\n"
      "mechanism behind the paper's 22%% CGE gap (Fig. 15).\n");
  std::printf("[table2] total time %.1fs (seed %u, max %d passes)\n", elapsed, options.seed,
              options.max_passes);

  if (json_path != nullptr) {
    bench::Json rows = bench::Json::array();
    for (const WidthRow& row : result.rows) {
      rows.element(bench::Json::object()
                       .field("circuit", row.profile.name)
                       .field("ours_min_width", row.ours)
                       .field("baseline_min_width", row.baseline));
    }
    bench::Json doc = bench::Json::object();
    doc.field("schema", "fpr-bench-v1")
        .field("bench", "table2_xc3000")
        .field("seed", static_cast<long long>(options.seed))
        .field("full_mode", full)
        .field("elapsed_seconds", elapsed)
        .field("rows", rows);
    bench::write_json(json_path, doc);
  }
  return 0;
}
