// Device-scale sweep: build + route symmetrical arrays from 25x25 to
// 200x200 with the legacy per-element graph builder and the tile-template
// stamper (DESIGN.md §12), recording peak RSS, graph-build time, and route
// time per case. This is the committed evidence for the template builder's
// scaling claim (BENCH_device_scale.json): same routed bits, a fraction of
// the memory and build time.
//
// Each (builder, size) case runs in its OWN child process (this binary
// re-invoked with --child) so getrusage's ru_maxrss high-water mark
// measures exactly one build+route and nothing else — an in-line sweep
// would report every case at the footprint of the largest one. The parent
// only parses one RESULT line per child and aggregates.
//
// Route-phase memory is builder-independent by design: the tiled graph
// serves the Dijkstra engine directly from the template (no CSR snapshot),
// so the child's peak is build-dominated for legacy and search-arena-
// dominated for tiled.
//
// CI smoke mode: `device_scale --smoke <n> --max-rss-kb <k>` runs the
// tiled build+route at n x n in-process and fails (exit 1) if the route
// does not complete or the peak RSS exceeds the envelope.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fpga/device.hpp"
#include "fpga/tile_template.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

namespace {

using namespace fpr;

constexpr int kWidth = 12;  // a realistic XC4000-class channel width

/// Deterministic cross-array workload scaled to the device: corner-to-
/// corner, center fan-out, and spanning bus nets. Small enough that the
/// route phase finishes in seconds at 200x200, spread enough that every
/// quadrant's template cells get traversed.
Circuit scale_circuit(int n) {
  Circuit c;
  c.name = "scale-" + std::to_string(n);
  c.rows = n;
  c.cols = n;
  const int m = n / 2, q = n / 4;
  c.nets.push_back({{0, 0}, {{n - 1, n - 1}}});
  c.nets.push_back({{0, n - 1}, {{n - 1, 0}, {m, m}}});
  c.nets.push_back({{m, 0}, {{m, n - 1}}});
  c.nets.push_back({{0, m}, {{n - 1, m}}});
  c.nets.push_back({{q, q}, {{3 * q, q}, {q, 3 * q}, {3 * q, 3 * q}}, true});
  c.nets.push_back({{m, m}, {{m + 1, m}, {m, m + 1}, {m - 1, m - 1}}});
  c.nets.push_back({{1, 1}, {{q, m}}});
  c.nets.push_back({{n - 2, n - 2}, {{3 * q, m}}});
  return c;
}

/// FNV-1a over every routed net's edge list — one 64-bit word that differs
/// if any net's route differs by a single edge. Comparing the legacy and
/// tiled digests per size is the sweep's bit-identity check.
std::uint64_t route_digest(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(r.nets.size()));
  for (const NetRouteResult& net : r.nets) {
    mix(static_cast<std::uint64_t>(net.status));
    for (const EdgeId e : net.edges) mix(static_cast<std::uint64_t>(e));
  }
  return h;
}

struct CaseResult {
  double build_s = 0;      // device construction + route-ready adjacency
  double route_s = 0;
  long build_rss_kib = 0;  // peak RSS at the route-ready point
  long rss_kib = 0;        // peak RSS over the whole child (build + route)
  long long nodes = 0;
  long long edges = 0;
  std::uint64_t digest = 0;
  int routed_nets = 0;
  bool ok = false;
};

/// The measured body, run inside the child process: build, then route.
///
/// "Build" ends when the device is route-ready. For the legacy builder
/// that includes materializing the CSR snapshot — the Dijkstra engine
/// demands it on the first search, so it is part of the representation's
/// true footprint. The tiled build never makes one: the engine reads
/// adjacency straight out of the template, which is most of the memory win.
CaseResult run_case(bool tiled, int n) {
  CaseResult r;
  const ArchSpec spec = ArchSpec::xc4000(n, n, kWidth);
  const bench::Stopwatch build_watch;
  Device device(spec, tiled ? DeviceBuild::kAuto : DeviceBuild::kLegacy);
  if (!device.tiled()) (void)device.graph().csr();
  r.build_s = build_watch.seconds();
  r.build_rss_kib = bench::peak_rss_kib();
  if (device.tiled() != tiled) {
    std::fprintf(stderr, "error: requested %s build, got %s\n", tiled ? "tiled" : "legacy",
                 device.tiled() ? "tiled" : "legacy");
    return r;
  }
  r.nodes = device.graph().node_count();
  r.edges = device.graph().edge_count();

  RouterOptions options;
  options.threads = 1;  // one case per child; keep the child single-threaded
  const Circuit circuit = scale_circuit(n);
  const bench::Stopwatch route_watch;
  const RoutingResult routed = route_circuit(device, circuit, options);
  r.route_s = route_watch.seconds();
  r.digest = route_digest(routed);
  for (const NetRouteResult& net : routed.nets) r.routed_nets += net.routed() ? 1 : 0;
  r.rss_kib = bench::peak_rss_kib();
  r.ok = r.routed_nets == static_cast<int>(circuit.nets.size());
  return r;
}

/// Child mode: one case, one RESULT line on stdout, nothing else.
int child_main(const char* builder, int n) {
  const bool tiled = std::strcmp(builder, "tiled") == 0;
  const CaseResult r = run_case(tiled, n);
  std::printf("RESULT build_s=%.6f route_s=%.6f build_rss_kib=%ld rss_kib=%ld nodes=%lld "
              "edges=%lld digest=%016" PRIx64 " routed=%d ok=%d\n",
              r.build_s, r.route_s, r.build_rss_kib, r.rss_kib, r.nodes, r.edges, r.digest,
              r.routed_nets, r.ok ? 1 : 0);
  return r.ok ? 0 : 1;
}

/// Parent side: run one case in a fresh child via popen and parse its
/// RESULT line. Returns ok=false on spawn/parse/child failure.
CaseResult spawn_case(const char* self, const char* builder, int n) {
  CaseResult r;
  std::string cmd = std::string("\"") + self + "\" --child " + builder + " " + std::to_string(n);
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "error: cannot spawn %s\n", cmd.c_str());
    return r;
  }
  char line[512];
  int ok_flag = 0;
  bool parsed = false;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    if (std::sscanf(line,
                    "RESULT build_s=%lf route_s=%lf build_rss_kib=%ld rss_kib=%ld nodes=%lld "
                    "edges=%lld digest=%" SCNx64 " routed=%d ok=%d",
                    &r.build_s, &r.route_s, &r.build_rss_kib, &r.rss_kib, &r.nodes, &r.edges,
                    &r.digest, &r.routed_nets, &ok_flag) == 9) {
      parsed = true;
    }
  }
  const int status = pclose(pipe);
  r.ok = parsed && ok_flag == 1 && status == 0;
  return r;
}

int parse_int_flag(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--child") == 0) {
    return child_main(argv[2], std::atoi(argv[3]));
  }

  // CI smoke: tiled build+route of one large array, in-process, enforcing a
  // peak-memory envelope. Exercises the stamper + tiled Dijkstra end to end
  // on every push without the full sweep's runtime.
  if (has_flag(argc, argv, "--smoke")) {
    const int n = parse_int_flag(argc, argv, "--smoke", 120);
    const long max_rss = parse_int_flag(argc, argv, "--max-rss-kb", 0);
    const CaseResult r = run_case(/*tiled=*/true, n);
    std::printf("smoke %dx%d w=%d: build %.3fs route %.3fs peak-rss %ld KiB routed %d/8 %s\n", n,
                n, kWidth, r.build_s, r.route_s, r.rss_kib, r.routed_nets,
                r.ok ? "ok" : "FAILED");
    if (!r.ok) return 1;
    if (max_rss > 0 && r.rss_kib > max_rss) {
      std::fprintf(stderr, "error: peak RSS %ld KiB exceeds envelope %ld KiB\n", r.rss_kib,
                   max_rss);
      return 1;
    }
    return 0;
  }

  bench::banner(
      "device_scale — symmetrical-array build + route at increasing size\n"
      "legacy per-element builder vs tile-template stamper");
  const char* json_path = bench::json_output_path(argc, argv);
  if (json_path == nullptr) json_path = "BENCH_device_scale.json";

  const std::vector<int> sizes = {25, 50, 100, 150, 200};
  bench::Json rows = bench::Json::array();
  bool all_identical = true;
  bool all_ok = true;

  for (const int n : sizes) {
    const CaseResult legacy = spawn_case(argv[0], "legacy", n);
    const CaseResult tiled = spawn_case(argv[0], "tiled", n);
    all_ok = all_ok && legacy.ok && tiled.ok;
    const bool identical = legacy.ok && tiled.ok && legacy.digest == tiled.digest;
    all_identical = all_identical && identical;

    std::printf("%3dx%-3d w=%d  %lld nodes %lld edges\n", n, n, kWidth, tiled.nodes, tiled.edges);
    std::printf("    legacy: build %8.1f ms  route %8.1f ms  graph rss %9ld KiB  total %9ld KiB\n",
                legacy.build_s * 1e3, legacy.route_s * 1e3, legacy.build_rss_kib, legacy.rss_kib);
    std::printf("    tiled:  build %8.1f ms  route %8.1f ms  graph rss %9ld KiB  total %9ld KiB\n",
                tiled.build_s * 1e3, tiled.route_s * 1e3, tiled.build_rss_kib, tiled.rss_kib);
    std::printf(
        "    build speedup %.2fx  graph-rss ratio %.2fx  routes %s\n",
        tiled.build_s > 0 ? legacy.build_s / tiled.build_s : 0.0,
        tiled.build_rss_kib > 0 ? static_cast<double>(legacy.build_rss_kib) / tiled.build_rss_kib
                                : 0.0,
        identical ? "bit-identical" : "DIVERGED");

    bench::Json row = bench::Json::object();
    row.field("size", n)
        .field("width", kWidth)
        .field("nodes", tiled.nodes)
        .field("edges", tiled.edges)
        .field("legacy_build_ms", legacy.build_s * 1e3)
        .field("legacy_route_ms", legacy.route_s * 1e3)
        .field("legacy_graph_rss_kib", static_cast<long long>(legacy.build_rss_kib))
        .field("legacy_peak_rss_kib", static_cast<long long>(legacy.rss_kib))
        .field("tiled_build_ms", tiled.build_s * 1e3)
        .field("tiled_route_ms", tiled.route_s * 1e3)
        .field("tiled_graph_rss_kib", static_cast<long long>(tiled.build_rss_kib))
        .field("tiled_peak_rss_kib", static_cast<long long>(tiled.rss_kib))
        .field("build_speedup", tiled.build_s > 0 ? legacy.build_s / tiled.build_s : 0.0)
        .field("graph_rss_ratio",
               tiled.build_rss_kib > 0
                   ? static_cast<double>(legacy.build_rss_kib) / tiled.build_rss_kib
                   : 0.0)
        .field("route_bit_identical", identical);
    rows.element(row);
  }

  const TileTemplateStats stats = tile_template_stats();
  bench::Json doc = bench::Json::object();
  doc.field("bench", "device_scale")
      .field("timestamp", bench::iso_timestamp())
      .field("width", kWidth)
      .field("template_compile_failures", static_cast<long long>(stats.compile_failures))
      .field("all_routes_bit_identical", all_identical)
      .field("cases", rows);
  bench::write_json(json_path, doc);

  if (!all_ok || !all_identical) {
    std::fprintf(stderr, "error: %s\n", !all_ok ? "a case failed" : "route digests diverged");
    return 1;
  }
  return 0;
}
