// Fault-injection yield sweep: routability and minimum channel width versus
// defect rate on the XC3000/XC4000 benchmark suite. For each circuit and
// fault rate the sweep reports (a) the minimum width the DEFECTIVE device
// needs and (b) the routed fraction / degradation stats at the fault-free
// minimum width. Every cell's degraded routing is replayed through the
// fault-aware feasibility oracle before anything is printed.
//
// The --json record is committed as BENCH_faults.json and is byte-identical
// across runs, platforms, and FPR_THREADS (fixed seeds, node budgets
// instead of wall-clock, no timestamps in the document).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "check/oracles.hpp"
#include "experiments/fault_sweep.hpp"
#include "netlist/synth.hpp"

namespace {

/// Replays every cell's degraded RoutingResult against a fresh faulted
/// device; returns the number of oracle violations (0 = clean).
int verify_sweep(const fpr::FaultSweepResult& result, const fpr::FaultSweepOptions& options) {
  int violations = 0;
  for (const fpr::FaultSweepRow& row : result.rows) {
    if (row.fault_free_width <= 0) continue;
    const fpr::Circuit circuit = fpr::synthesize_circuit(row.profile, options.synth_seed);
    const fpr::ArchSpec arch =
        fpr::arch_for(row.profile, row.family).with_width(row.fault_free_width);
    fpr::RouterOptions router;
    router.max_passes = options.max_passes;
    router.node_budget = options.node_budget_per_probe;
    for (const fpr::FaultSweepCell& cell : row.cells) {
      const auto check = fpr::check::check_routing_feasibility(
          arch, circuit, cell.degraded, router, cell.faults.any() ? &cell.faults : nullptr);
      for (const auto& v : check.violations) {
        std::printf("ORACLE VIOLATION [%s @ %d/1000]: %s\n", row.profile.name.c_str(),
                    cell.permille, v.c_str());
        ++violations;
      }
    }
  }
  return violations;
}

fpr::bench::Json sweep_json(const fpr::FaultSweepResult& result, const char* family) {
  fpr::bench::Json rows = fpr::bench::Json::array();
  for (const fpr::FaultSweepRow& row : result.rows) {
    for (const fpr::FaultSweepCell& cell : row.cells) {
      rows.element(
          fpr::bench::Json::object()
              .field("family", family)
              .field("circuit", row.profile.name)
              .field("fault_permille", cell.permille)
              .field("fault_spec", cell.faults.describe())
              .field("search_status",
                     std::string(fpr::width_search_status_name(cell.status)))
              .field("min_width", cell.min_width)
              .field("probes", cell.probes)
              .field("probes_aborted", cell.probes_aborted)
              .field("fault_free_width", row.fault_free_width)
              .field("routed_fraction", cell.routed_fraction)
              .field("nets_blocked_by_fault", cell.nets_blocked_by_fault)
              .field("nets_rerouted_around_faults", cell.nets_rerouted_around_faults)
              .field("detour_wirelength_overhead",
                     static_cast<long long>(cell.detour_wirelength_overhead))
              .field("budget_exhausted", cell.degraded.budget_exhausted));
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpr;
  const char* json_path = bench::json_output_path(argc, argv);
  const bool full = bench::full_mode();
  bench::banner("Fault sweep — routability & min channel width vs defect rate");
  bench::report_threads();

  FaultSweepOptions options;
  // Bound pathological defect draws deterministically (node expansions, not
  // wall-clock), so the sweep's committed record is platform-independent.
  options.node_budget_per_probe = 40'000'000;

  const int per_family = full ? 0 : 2;  // 0 = all profiles
  if (!full) {
    std::printf("(default mode: 2 smallest circuits per family; FPR_FULL=1 runs all)\n\n");
  }
  const std::vector<CircuitProfile> xc3000 =
      smallest_profiles(xc3000_profiles(), per_family);
  const std::vector<CircuitProfile> xc4000 =
      smallest_profiles(xc4000_profiles(), per_family);

  const fpr::bench::Stopwatch watch;
  const FaultSweepResult r3000 = run_fault_sweep(xc3000, ArchFamily::kXc3000, options);
  const FaultSweepResult r4000 = run_fault_sweep(xc4000, ArchFamily::kXc4000, options);
  const double elapsed = watch.seconds();

  std::printf("XC3000 (Fs=6, Fc=0.6W)\n%s\n", render_fault_sweep(r3000).c_str());
  std::printf("XC4000 (Fs=3, Fc=W)\n%s\n", render_fault_sweep(r4000).c_str());

  const int violations = verify_sweep(r3000, options) + verify_sweep(r4000, options);
  std::printf("\nOracle replay over every degraded routing: %s\n",
              violations == 0 ? "clean" : "VIOLATIONS FOUND");
  std::printf(
      "Shape: yield (routed fraction at the pristine minimum width) falls\n"
      "monotonically-ish with defect rate, and the defective parts buy back\n"
      "routability with wider channels until clusters sever blocks outright.\n");
  std::printf("[fault_sweep] total time %.1fs (synth seed %u, fault seed %llu)\n", elapsed,
              options.synth_seed, static_cast<unsigned long long>(options.fault_seed));

  if (json_path != nullptr) {
    // Two per-family cell lists keep downstream plotting trivial (group by
    // circuit, x = fault_permille). Deliberately no timestamps or elapsed
    // time: the committed record must be byte-identical across runs.
    bench::Json doc = bench::Json::object();
    doc.field("schema", "fpr-bench-v1")
        .field("bench", "fault_sweep")
        .field("synth_seed", static_cast<long long>(options.synth_seed))
        .field("fault_seed", static_cast<long long>(options.fault_seed))
        .field("node_budget_per_probe",
               static_cast<long long>(options.node_budget_per_probe))
        .field("full_mode", full)
        .field("oracle_violations", violations)
        .field("cells_xc3000", sweep_json(r3000, "xc3000"))
        .field("cells_xc4000", sweep_json(r4000, "xc4000"));
    bench::write_json(json_path, doc);
  }
  return violations == 0 ? 0 : 1;
}
