// Regenerates Table 1: average wirelength % (w.r.t. KMB) and average maximum
// pathlength % (w.r.t. optimal) for the eight algorithms over 50 random nets
// per (congestion level, net size) on 20x20 grids.

#include <cstdio>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/route.hpp"
#include "experiments/table1.hpp"

int main(int argc, char** argv) {
  using namespace fpr;
  const char* json_path = bench::json_output_path(argc, argv);
  bench::banner(
      "Table 1 — Steiner/arborescence quality on congested 20x20 grids\n"
      "50 nets per (congestion, net size); wirelength vs KMB, max path vs OPT\n"
      "seed 1995, candidate strategy: all nodes (paper-faithful)");

  const fpr::bench::Stopwatch watch;
  const Table1Result result = run_table1();
  const double elapsed = watch.seconds();

  std::printf("%s", render_table1(result).c_str());

  std::printf("Paper-reported values (same layout):\n");
  const auto& paper = table1_paper_values();
  for (std::size_t level = 0; level < paper.size(); ++level) {
    std::printf("Congestion level %zu (paper):\n", level);
    TextTable table({"Algorithm", "5-pin Wire%", "5-pin MaxPath%", "8-pin Wire%",
                     "8-pin MaxPath%"});
    for (const auto& row : paper[level]) {
      table.add_row({row.algorithm, format_fixed(row.wire5), format_fixed(row.path5),
                     format_fixed(row.wire8), format_fixed(row.path8)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "Shape checks reproduced: IZEL<=IKMB<=ZEL<=KMB wirelength ordering;\n"
      "arborescence rows at 0.00 max-path overhead; DJKA/DOM pay the most\n"
      "wire; PFA/IDOM beat KMB's wirelength on uncongested grids and trade\n"
      "wire for optimal paths under congestion.\n");
  std::printf("[table1] total time %.1fs\n", elapsed);

  if (json_path != nullptr) {
    const auto algorithms = table1_algorithms();
    bench::Json blocks = bench::Json::array();
    for (const Table1Block& block : result.blocks) {
      bench::Json rows = bench::Json::array();
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        bench::Json cells = bench::Json::array();
        for (std::size_t s = 0; s < result.options.net_sizes.size(); ++s) {
          cells.element(bench::Json::object()
                            .field("net_size", result.options.net_sizes[s])
                            .field("wirelength_pct", block.cells[a][s].wirelength_pct)
                            .field("max_path_pct", block.cells[a][s].max_path_pct));
        }
        rows.element(bench::Json::object()
                         .field("algorithm", std::string(algorithm_name(algorithms[a])))
                         .field("cells", cells));
      }
      blocks.element(bench::Json::object()
                         .field("mean_edge_weight", block.measured_mean_edge_weight)
                         .field("rows", rows));
    }
    bench::Json doc = bench::Json::object();
    doc.field("schema", "fpr-bench-v1")
        .field("bench", "table1")
        .field("seed", static_cast<long long>(result.options.seed))
        .field("elapsed_seconds", elapsed)
        .field("blocks", blocks);
    bench::write_json(json_path, doc);
  }
  return 0;
}
