// Ablation (DESIGN.md section 4): the router's design choices on one
// mid-size circuit —
//   * move-to-front net re-ordering vs static order,
//   * congestion-aware edge weights vs pure wirelength,
//   * whole-net Steiner routing vs two-pin decomposition (the Fig. 15
//     mechanism behind Tables 2/3).
// Reports minimum channel width and passes-to-route for each variant.

#include <cstdio>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "experiments/tables23.hpp"
#include "netlist/synth.hpp"
#include "router/baseline.hpp"

int main() {
  using namespace fpr;
  bench::banner("Ablation — router design choices (circuit: dma profile, 3000-series)");

  // dma (16x18, 213 nets) on the tighter 3000-series fabric (Fc = 0.6W):
  // hard enough that the router's ordering and congestion machinery matter.
  const CircuitProfile& profile = xc3000_profiles()[1];
  const Circuit circuit = synthesize_circuit(profile, 1995);
  const ArchSpec base = arch_for(profile, ArchFamily::kXc3000);

  struct Variant {
    const char* label;
    RouterOptions options;
  };
  RouterOptions def;
  def.max_passes = 12;

  RouterOptions no_mtf = def;
  no_mtf.move_to_front = false;

  RouterOptions no_congestion = def;
  no_congestion.congestion_penalty = 0;

  RouterOptions two_pin = two_pin_baseline_options();
  two_pin.max_passes = 12;

  const Variant variants[] = {
      {"full router (IKMB, move-to-front, congestion)", def},
      {"no move-to-front", no_mtf},
      {"no congestion weighting", no_congestion},
      {"two-pin decomposition baseline", two_pin},
  };

  TextTable table(
      {"Variant", "Min width", "Passes at min width", "Physical wirelength (wire hops)"});
  WidthSearchOptions search;
  search.max_width = 24;
  for (const auto& variant : variants) {
    const fpr::bench::Stopwatch watch;
    const auto result = find_min_channel_width(base, circuit, variant.options, search);
    const double elapsed = watch.seconds();
    table.add_row({variant.label,
                   result.min_width > 0 ? std::to_string(result.min_width) : "unroutable",
                   std::to_string(result.at_min_width.passes),
                   std::to_string(result.at_min_width.total_physical_wirelength) + "  (" +
                       format_fixed(elapsed, 1) + "s)"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape: the full router needs the least width; dropping\n"
      "move-to-front or congestion weighting costs width or passes; two-pin\n"
      "decomposition costs the most width (the paper's core claim).\n");
  return 0;
}
