// End-to-end integration: the full pipeline profile -> synthesize -> save ->
// load -> device -> route, plus determinism guarantees across the stack.

#include <gtest/gtest.h>

#include <sstream>

#include "check/oracles.hpp"
#include "experiments/tables23.hpp"
#include "io/text_io.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

namespace fpr {
namespace {

TEST(EndToEndTest, RoutingIsDeterministic) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[2], 77);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 8);
  Device a(arch), b(arch);
  const RoutingResult ra = route_circuit(a, circuit, RouterOptions{});
  const RoutingResult rb = route_circuit(b, circuit, RouterOptions{});
  ASSERT_EQ(ra.success, rb.success);
  ASSERT_EQ(ra.nets.size(), rb.nets.size());
  for (std::size_t i = 0; i < ra.nets.size(); ++i) {
    EXPECT_EQ(ra.nets[i].edges, rb.nets[i].edges) << "net " << i;
  }
  EXPECT_DOUBLE_EQ(ra.total_wirelength, rb.total_wirelength);
}

TEST(EndToEndTest, SavedCircuitRoutesIdentically) {
  const Circuit original = synthesize_circuit(xc4000_profiles()[7], 13);
  std::stringstream buffer;
  write_circuit(buffer, original);
  const auto loaded = read_circuit(buffer);
  ASSERT_TRUE(loaded.has_value());

  const ArchSpec arch = ArchSpec::xc4000(original.rows, original.cols, 9);
  Device a(arch), b(arch);
  const RoutingResult ra = route_circuit(a, original, RouterOptions{});
  const RoutingResult rb = route_circuit(b, *loaded, RouterOptions{});
  ASSERT_EQ(ra.success, rb.success);
  EXPECT_EQ(ra.total_wire_nodes, rb.total_wire_nodes);
  EXPECT_DOUBLE_EQ(ra.total_wirelength, rb.total_wirelength);
}

TEST(EndToEndTest, DeviceIsReusableAcrossRuns) {
  // route_circuit resets the device per pass; back-to-back runs on ONE
  // device must match runs on fresh devices.
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[7], 21);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 9);
  Device shared(arch);
  const RoutingResult first = route_circuit(shared, circuit, RouterOptions{});
  const RoutingResult second = route_circuit(shared, circuit, RouterOptions{});
  ASSERT_EQ(first.success, second.success);
  EXPECT_DOUBLE_EQ(first.total_wirelength, second.total_wirelength);
}

TEST(EndToEndTest, WidthExperimentDeterministic) {
  CircuitProfile profile;
  profile.name = "det";
  profile.rows = profile.cols = 5;
  profile.nets_2_3 = 12;
  profile.nets_4_10 = 3;
  WidthExperimentOptions options;
  options.seed = 3;
  options.max_passes = 5;
  options.max_width = 10;
  options.run_baseline = false;
  const std::vector<CircuitProfile> profiles{profile};
  const auto a = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  const auto b = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  EXPECT_EQ(a.rows[0].ours, b.rows[0].ours);
}

TEST(EndToEndTest, AllAlgorithmsCompleteTheSameCircuit) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[7], 31);
  for (const Algorithm algo : {Algorithm::kKmb, Algorithm::kIkmb, Algorithm::kDjka,
                               Algorithm::kDom, Algorithm::kPfa, Algorithm::kIdom}) {
    Device device(ArchSpec::xc4000(circuit.rows, circuit.cols, 12));
    RouterOptions options;
    options.algorithm = algo;
    const RoutingResult r = route_circuit(device, circuit, options);
    EXPECT_TRUE(r.success) << algorithm_name(algo);
  }
}

// The full Table-1 algorithm suite against both device families the paper
// evaluates. Every cell of the matrix must (a) route the circuit and (b)
// survive the feasibility oracle's independent replay: legal edges,
// exclusive wire usage, channel capacity, and recomputed accounting.
TEST(EndToEndTest, EightAlgorithmDeviceFamilyMatrixIsFeasible) {
  struct FamilyCell {
    const char* name;
    ArchSpec arch;
    Circuit circuit;
  };
  // Small bespoke circuits keep the 16-cell matrix inside tier-1 wall-clock
  // (the published profiles take ~1 min through the iterated algorithms).
  CircuitProfile profile;
  profile.name = "matrix";
  profile.rows = profile.cols = 5;
  profile.nets_2_3 = 10;
  profile.nets_4_10 = 3;
  const Circuit xc3000_circuit = synthesize_circuit(profile, 47);
  const Circuit xc4000_circuit = synthesize_circuit(profile, 48);
  const std::vector<FamilyCell> families{
      {"XC3000", ArchSpec::xc3000(xc3000_circuit.rows, xc3000_circuit.cols, 12),
       xc3000_circuit},
      {"XC4000", ArchSpec::xc4000(xc4000_circuit.rows, xc4000_circuit.cols, 12),
       xc4000_circuit},
  };
  for (const FamilyCell& cell : families) {
    for (const Algorithm algo : table1_algorithms()) {
      Device device(cell.arch);
      RouterOptions options;
      options.algorithm = algo;
      const RoutingResult r = route_circuit(device, cell.circuit, options);
      EXPECT_TRUE(r.success) << cell.name << " x " << algorithm_name(algo);
      const check::CheckResult feasible =
          check::check_routing_feasibility(cell.arch, cell.circuit, r, options);
      EXPECT_TRUE(feasible.ok())
          << cell.name << " x " << algorithm_name(algo) << ": " << feasible.message();
    }
  }
}

// Same matrix through the two-pin decomposition baseline — the feasibility
// oracle's relaxed replay mode (paths may reconverge through shared block
// nodes) must hold there too.
TEST(EndToEndTest, MatrixRemainsFeasibleUnderTwoPinDecomposition) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[2], 53);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 12);
  for (const Algorithm algo : {Algorithm::kKmb, Algorithm::kIdom}) {
    Device device(arch);
    RouterOptions options;
    options.algorithm = algo;
    options.decompose_two_pin = true;
    const RoutingResult r = route_circuit(device, circuit, options);
    EXPECT_TRUE(r.success) << algorithm_name(algo);
    const check::CheckResult feasible =
        check::check_routing_feasibility(arch, circuit, r, options);
    EXPECT_TRUE(feasible.ok()) << algorithm_name(algo) << ": " << feasible.message();
  }
}

}  // namespace
}  // namespace fpr
