// End-to-end integration: the full pipeline profile -> synthesize -> save ->
// load -> device -> route, plus determinism guarantees across the stack.

#include <gtest/gtest.h>

#include <sstream>

#include "experiments/tables23.hpp"
#include "io/text_io.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

namespace fpr {
namespace {

TEST(EndToEndTest, RoutingIsDeterministic) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[2], 77);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 8);
  Device a(arch), b(arch);
  const RoutingResult ra = route_circuit(a, circuit, RouterOptions{});
  const RoutingResult rb = route_circuit(b, circuit, RouterOptions{});
  ASSERT_EQ(ra.success, rb.success);
  ASSERT_EQ(ra.nets.size(), rb.nets.size());
  for (std::size_t i = 0; i < ra.nets.size(); ++i) {
    EXPECT_EQ(ra.nets[i].edges, rb.nets[i].edges) << "net " << i;
  }
  EXPECT_DOUBLE_EQ(ra.total_wirelength, rb.total_wirelength);
}

TEST(EndToEndTest, SavedCircuitRoutesIdentically) {
  const Circuit original = synthesize_circuit(xc4000_profiles()[7], 13);
  std::stringstream buffer;
  write_circuit(buffer, original);
  const auto loaded = read_circuit(buffer);
  ASSERT_TRUE(loaded.has_value());

  const ArchSpec arch = ArchSpec::xc4000(original.rows, original.cols, 9);
  Device a(arch), b(arch);
  const RoutingResult ra = route_circuit(a, original, RouterOptions{});
  const RoutingResult rb = route_circuit(b, *loaded, RouterOptions{});
  ASSERT_EQ(ra.success, rb.success);
  EXPECT_EQ(ra.total_wire_nodes, rb.total_wire_nodes);
  EXPECT_DOUBLE_EQ(ra.total_wirelength, rb.total_wirelength);
}

TEST(EndToEndTest, DeviceIsReusableAcrossRuns) {
  // route_circuit resets the device per pass; back-to-back runs on ONE
  // device must match runs on fresh devices.
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[7], 21);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 9);
  Device shared(arch);
  const RoutingResult first = route_circuit(shared, circuit, RouterOptions{});
  const RoutingResult second = route_circuit(shared, circuit, RouterOptions{});
  ASSERT_EQ(first.success, second.success);
  EXPECT_DOUBLE_EQ(first.total_wirelength, second.total_wirelength);
}

TEST(EndToEndTest, WidthExperimentDeterministic) {
  CircuitProfile profile;
  profile.name = "det";
  profile.rows = profile.cols = 5;
  profile.nets_2_3 = 12;
  profile.nets_4_10 = 3;
  WidthExperimentOptions options;
  options.seed = 3;
  options.max_passes = 5;
  options.max_width = 10;
  options.run_baseline = false;
  const std::vector<CircuitProfile> profiles{profile};
  const auto a = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  const auto b = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  EXPECT_EQ(a.rows[0].ours, b.rows[0].ours);
}

TEST(EndToEndTest, AllAlgorithmsCompleteTheSameCircuit) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[7], 31);
  for (const Algorithm algo : {Algorithm::kKmb, Algorithm::kIkmb, Algorithm::kDjka,
                               Algorithm::kDom, Algorithm::kPfa, Algorithm::kIdom}) {
    Device device(ArchSpec::xc4000(circuit.rows, circuit.cols, 12));
    RouterOptions options;
    options.algorithm = algo;
    const RoutingResult r = route_circuit(device, circuit, options);
    EXPECT_TRUE(r.success) << algorithm_name(algo);
  }
}

}  // namespace
}  // namespace fpr
