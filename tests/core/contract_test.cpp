// Negative tests for FPR_CHECK: container misuse throws ContractViolation
// (always-on, unlike the assert()s it replaced) with a message naming the
// failed condition, the source location, and the offending values.

#include "core/contract.hpp"

#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "graph/graph.hpp"
#include "graph/grid.hpp"

namespace fpr {
namespace {

TEST(ContractTest, ViolationCarriesConditionLocationAndContext) {
  try {
    FPR_CHECK(1 == 2, "the answer is " << 42);
    FAIL() << "FPR_CHECK(false) did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("contract_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("the answer is 42"), std::string::npos) << what;
  }
}

TEST(ContractTest, ContractViolationIsALogicError) {
  // Catchable as std::logic_error so existing generic handlers keep working.
  EXPECT_THROW(FPR_CHECK(false, "x"), std::logic_error);
}

TEST(ContractTest, PassingCheckEvaluatesConditionOnce) {
  int calls = 0;
  const auto touch = [&]() {
    ++calls;
    return true;
  };
  FPR_CHECK(touch(), "never streamed");
  EXPECT_EQ(calls, 1);
}

TEST(ContractTest, GraphRejectsMisuse) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.add_nodes(-1), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 3, 1.0), ContractViolation);   // endpoint out of range
  EXPECT_THROW(g.add_edge(-1, 1, 1.0), ContractViolation);  // negative endpoint
  EXPECT_THROW(g.add_edge(1, 1, 1.0), ContractViolation);   // self-loop
  EXPECT_THROW(g.add_edge(0, 2, -0.5), ContractViolation);  // negative weight
  EXPECT_THROW(g.set_edge_weight(5, 1.0), ContractViolation);
  EXPECT_THROW(g.set_edge_weight(0, -1.0), ContractViolation);
  EXPECT_THROW(g.add_edge_weight(0, -2.0), ContractViolation);  // would go negative
  EXPECT_THROW(g.other_end(0, 2), ContractViolation);  // 2 not an endpoint of edge 0
  // The graph survives rejected calls: state is unchanged and usable.
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.edge_weight(0), 1.0);
}

TEST(ContractTest, DeviceRejectsMisuse) {
  EXPECT_THROW(Device(ArchSpec::xc4000(0, 3, 2)), ContractViolation);  // zero rows
  const Device device(ArchSpec::xc4000(3, 3, 2));
  EXPECT_THROW(device.block_node(3, 0), ContractViolation);
  EXPECT_THROW(device.block_node(0, -1), ContractViolation);
  EXPECT_THROW(device.wire_node(Device::Dir::kHorizontal, 0, 0, 2), ContractViolation);
  EXPECT_THROW(device.wire_ref(device.block_node(0, 0)), ContractViolation);
}

TEST(ContractTest, GridRejectsMisuse) {
  EXPECT_THROW(GridGraph(0, 4), ContractViolation);
  const GridGraph grid(3, 3);
  EXPECT_THROW(grid.horizontal_edge(2, 0), ContractViolation);
  EXPECT_THROW(grid.vertical_edge(0, 2), ContractViolation);
}

TEST(ContractTest, FaultSpecMisuseRejected) {
  Device device(ArchSpec::xc4000(3, 3, 2));
  FaultSpec bad;
  bad.wire_permille = 1001;  // above per-mille range
  EXPECT_FALSE(bad.valid());
  EXPECT_THROW(device.install_faults(bad), ContractViolation);
  EXPECT_FALSE(device.has_faults());
}

}  // namespace
}  // namespace fpr
