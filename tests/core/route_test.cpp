#include "core/route.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(RouteTest, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kKmb), "KMB");
  EXPECT_EQ(algorithm_name(Algorithm::kZel), "ZEL");
  EXPECT_EQ(algorithm_name(Algorithm::kIkmb), "IKMB");
  EXPECT_EQ(algorithm_name(Algorithm::kIzel), "IZEL");
  EXPECT_EQ(algorithm_name(Algorithm::kDjka), "DJKA");
  EXPECT_EQ(algorithm_name(Algorithm::kDom), "DOM");
  EXPECT_EQ(algorithm_name(Algorithm::kPfa), "PFA");
  EXPECT_EQ(algorithm_name(Algorithm::kIdom), "IDOM");
}

TEST(RouteTest, ArborescenceClassification) {
  EXPECT_FALSE(is_arborescence_algorithm(Algorithm::kKmb));
  EXPECT_FALSE(is_arborescence_algorithm(Algorithm::kIzel));
  EXPECT_TRUE(is_arborescence_algorithm(Algorithm::kDjka));
  EXPECT_TRUE(is_arborescence_algorithm(Algorithm::kDom));
  EXPECT_TRUE(is_arborescence_algorithm(Algorithm::kPfa));
  EXPECT_TRUE(is_arborescence_algorithm(Algorithm::kIdom));
  EXPECT_TRUE(is_arborescence_algorithm(Algorithm::kExactGsa));
}

TEST(RouteTest, Table1OrderMatchesPaper) {
  const auto algos = table1_algorithms();
  ASSERT_EQ(algos.size(), 8u);
  EXPECT_EQ(algos[0], Algorithm::kKmb);
  EXPECT_EQ(algos[3], Algorithm::kIzel);
  EXPECT_EQ(algos[4], Algorithm::kDjka);
  EXPECT_EQ(algos[7], Algorithm::kIdom);
}

TEST(RouteTest, EveryAlgorithmSpansARoutableNet) {
  GridGraph grid(8, 8);
  Net net;
  net.source = grid.node_at(1, 1);
  net.sinks = {grid.node_at(6, 2), grid.node_at(2, 6), grid.node_at(5, 5)};
  for (const Algorithm a :
       {Algorithm::kKmb, Algorithm::kZel, Algorithm::kIkmb, Algorithm::kIzel, Algorithm::kDjka,
        Algorithm::kDom, Algorithm::kPfa, Algorithm::kIdom, Algorithm::kExactGmst,
        Algorithm::kExactGsa}) {
    PathOracle oracle(grid.graph());
    const auto tree = route(grid.graph(), net, a, oracle);
    EXPECT_TRUE(tree.spans(net.terminals())) << algorithm_name(a);
  }
}

TEST(RouteTest, ArborescenceAlgorithmsDeliverShortestPaths) {
  GridGraph grid(8, 8);
  Net net;
  net.source = grid.node_at(0, 0);
  net.sinks = {grid.node_at(7, 3), grid.node_at(3, 7)};
  PathOracle oracle(grid.graph());
  const auto& spt = oracle.from(net.source);
  for (const Algorithm a :
       {Algorithm::kDjka, Algorithm::kDom, Algorithm::kPfa, Algorithm::kIdom,
        Algorithm::kExactGsa}) {
    const auto tree = route(grid.graph(), net, a, oracle);
    for (const NodeId s : net.sinks) {
      EXPECT_TRUE(weight_eq(tree.path_length(net.source, s), spt.distance(s)))
          << algorithm_name(a);
    }
  }
}

TEST(RouteTest, ExactSolversFallBackAboveTerminalLimit) {
  // 16 pins exceed the subset-DP limit of 14; route() must still succeed
  // via the iterated heuristics.
  GridGraph grid(10, 10);
  Net net;
  net.source = grid.node_at(0, 0);
  std::mt19937_64 rng(9);
  for (const NodeId v : testing::random_net(100, 16, rng)) {
    if (v != net.source) net.sinks.push_back(v);
  }
  const auto gmst_tree = route(grid.graph(), net, Algorithm::kExactGmst);
  EXPECT_TRUE(gmst_tree.spans(net.terminals()));
  const auto gsa_tree = route(grid.graph(), net, Algorithm::kExactGsa);
  EXPECT_TRUE(gsa_tree.spans(net.terminals()));
}

TEST(RouteTest, OptionsArePassedThrough) {
  GridGraph grid(8, 8);
  Net net;
  net.source = grid.node_at(0, 0);
  net.sinks = {grid.node_at(6, 1), grid.node_at(1, 6)};
  RouteOptions options;
  options.candidates = CandidateStrategy::kCorridor;
  options.max_candidates = 4;
  const auto tree = route(grid.graph(), net, Algorithm::kIkmb, options);
  EXPECT_TRUE(tree.spans(net.terminals()));
}

TEST(NetTest, TerminalsPutSourceFirst) {
  Net net;
  net.source = 7;
  net.sinks = {3, 9};
  const auto t = net.terminals();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 7);
  EXPECT_EQ(net.pin_count(), 3);
}

}  // namespace
}  // namespace fpr
