#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace fpr {
namespace {

TEST(ParallelTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1);
  EXPECT_GE(ThreadPool::shared().size(), 1);
}

TEST(ParallelTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, InlinePoolRunsInIndexOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelTest, SubmitDeliversThroughFuture) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto fut = pool.submit([&] { value.store(42); });
  fut.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ParallelTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(12,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 11);  // the other indices still ran
}

TEST(ParallelTest, NestedParallelForOnSamePoolCompletes) {
  // A harness task fanning a width search out on the same pool must not
  // deadlock: blocked waiters help drain the queue.
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ParallelTest, RunParallelCoversAllModes) {
  for (const int threads : {1, 2, 5}) {
    std::vector<std::atomic<int>> hits(50);
    run_parallel(threads, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " index " << i;
    }
  }
}

}  // namespace
}  // namespace fpr
