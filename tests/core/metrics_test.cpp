#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/route.hpp"
#include "graph/grid.hpp"

namespace fpr {
namespace {

TEST(MetricsTest, GlobalCountersTrackMeasurementsAndReset) {
  // counters() is process-global; reset first so the assertion holds under
  // any ctest -j interleaving (see TESTING.md).
  counters().reset();
  GridGraph grid(4, 4);
  Net net;
  net.source = grid.node_at(0, 0);
  net.sinks = {grid.node_at(2, 2)};
  PathOracle oracle(grid.graph());
  const auto tree = route(grid.graph(), net, Algorithm::kKmb, oracle);
  (void)measure(grid.graph(), net, tree, oracle);
  (void)measure(grid.graph(), net, tree, oracle);
  EXPECT_EQ(counters().trees_measured.load(), 2u);
  counters().reset();
  EXPECT_EQ(counters().trees_measured.load(), 0u);
}

TEST(MetricsTest, MeasuresWirelengthAndPaths) {
  GridGraph grid(6, 6);
  Net net;
  net.source = grid.node_at(0, 0);
  net.sinks = {grid.node_at(3, 1), grid.node_at(1, 3)};
  PathOracle oracle(grid.graph());
  const auto tree = route(grid.graph(), net, Algorithm::kIdom, oracle);
  const auto m = measure(grid.graph(), net, tree, oracle);
  EXPECT_TRUE(m.spans_net);
  EXPECT_TRUE(m.shortest_paths);
  EXPECT_DOUBLE_EQ(m.wirelength, 6);
  EXPECT_DOUBLE_EQ(m.max_pathlength, 4);
  EXPECT_DOUBLE_EQ(m.optimal_max_pathlength, 4);
}

TEST(MetricsTest, DetectsSuboptimalPathlengths) {
  // KMB on three collinear pins with the source in the middle is fine, but
  // with the source at one end a chain is produced whose far-sink path is
  // optimal; craft instead an instance where KMB's tree path is indirect.
  GridGraph grid(5, 5);
  Net net;
  net.source = grid.node_at(0, 0);
  net.sinks = {grid.node_at(4, 0), grid.node_at(2, 2)};
  PathOracle oracle(grid.graph());
  const auto tree = route(grid.graph(), net, Algorithm::kKmb, oracle);
  const auto m = measure(grid.graph(), net, tree, oracle);
  ASSERT_TRUE(m.spans_net);
  // Whatever tree KMB picks, the reported numbers must be self-consistent.
  EXPECT_GE(m.max_pathlength, m.optimal_max_pathlength - 1e-9);
  EXPECT_EQ(m.shortest_paths, weight_eq(m.max_pathlength, m.optimal_max_pathlength) &&
                                  m.max_pathlength <= m.optimal_max_pathlength + 1e-9);
}

TEST(MetricsTest, NonSpanningTreeReported) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  Net net;
  net.source = 0;
  net.sinks = {2};
  PathOracle oracle(g);
  const RoutingTree tree(g, {});
  const auto m = measure(g, net, tree, oracle);
  EXPECT_FALSE(m.spans_net);
  EXPECT_FALSE(m.shortest_paths);
  EXPECT_EQ(m.optimal_max_pathlength, kInfiniteWeight);
}

TEST(MetricsTest, OracleStatsSnapshotMatchesOracle) {
  GridGraph grid(4, 4);
  PathOracle oracle(grid.graph());
  oracle.from(0);
  oracle.from(0);
  const OracleStats s = oracle_stats(oracle);
  EXPECT_EQ(s.dijkstra_runs, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate, 0.5);
  const std::string line = format_oracle_stats(s);
  EXPECT_NE(line.find("1/2 hits"), std::string::npos);
  EXPECT_NE(line.find("50.0%"), std::string::npos);
}

TEST(MetricsTest, PercentConventionMatchesTable1) {
  // Positive = disimprovement, negative = improvement (Table 1 caption).
  EXPECT_DOUBLE_EQ(percent_vs(12, 10), 20.0);
  EXPECT_DOUBLE_EQ(percent_vs(9, 10), -10.0);
  EXPECT_DOUBLE_EQ(percent_vs(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(percent_vs(5, 0), 0.0);
}

}  // namespace
}  // namespace fpr
