#include "graph/routing_tree.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"

namespace fpr {
namespace {

class RoutingTreeTest : public ::testing::Test {
 protected:
  RoutingTreeTest() : grid_(4, 4) {}
  GridGraph grid_;
};

TEST_F(RoutingTreeTest, EmptyTree) {
  RoutingTree t(grid_.graph(), {});
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.is_tree());
  EXPECT_DOUBLE_EQ(t.cost(), 0);
  const std::vector<NodeId> one{grid_.node_at(0, 0)};
  EXPECT_TRUE(t.spans(one));  // single-terminal nets need no wiring
  const std::vector<NodeId> two{grid_.node_at(0, 0), grid_.node_at(1, 1)};
  EXPECT_FALSE(t.spans(two));
}

TEST_F(RoutingTreeTest, NonEmptyTreeMustContainLoneTerminal) {
  // Regression: spans() used to return true for ANY single-terminal query,
  // even when a non-empty tree did not touch that terminal — a wiring for
  // the wrong net passed as a routing of a lone pin.
  RoutingTree t(grid_.graph(), {grid_.horizontal_edge(0, 0)});
  const std::vector<NodeId> elsewhere{grid_.node_at(3, 3)};
  EXPECT_FALSE(t.spans(elsewhere));
  const std::vector<NodeId> touched{grid_.node_at(0, 0)};
  EXPECT_TRUE(t.spans(touched));
}

TEST_F(RoutingTreeTest, DedupesEdges) {
  const EdgeId e = grid_.horizontal_edge(0, 0);
  RoutingTree t(grid_.graph(), {e, e, e});
  EXPECT_EQ(t.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(t.cost(), 1);
}

TEST_F(RoutingTreeTest, PathCostAlongL) {
  // Route (0,0) -> (2,0) -> (2,2).
  const std::vector<EdgeId> edges{
      grid_.horizontal_edge(0, 0), grid_.horizontal_edge(1, 0),
      grid_.vertical_edge(2, 0),   grid_.vertical_edge(2, 1),
  };
  RoutingTree t(grid_.graph(), edges);
  EXPECT_TRUE(t.is_tree());
  EXPECT_DOUBLE_EQ(t.cost(), 4);
  EXPECT_DOUBLE_EQ(t.path_length(grid_.node_at(0, 0), grid_.node_at(2, 2)), 4);
  EXPECT_DOUBLE_EQ(t.path_length(grid_.node_at(2, 0), grid_.node_at(2, 2)), 2);
  EXPECT_DOUBLE_EQ(t.path_length(grid_.node_at(0, 0), grid_.node_at(0, 0)), 0);
}

TEST_F(RoutingTreeTest, CycleIsNotATree) {
  const std::vector<EdgeId> edges{
      grid_.horizontal_edge(0, 0), grid_.vertical_edge(1, 0),
      grid_.horizontal_edge(0, 1), grid_.vertical_edge(0, 0),
  };
  RoutingTree t(grid_.graph(), edges);
  EXPECT_FALSE(t.is_tree());
}

TEST_F(RoutingTreeTest, DisconnectedForestIsNotATree) {
  const std::vector<EdgeId> edges{grid_.horizontal_edge(0, 0), grid_.horizontal_edge(2, 3)};
  RoutingTree t(grid_.graph(), edges);
  EXPECT_FALSE(t.is_tree());
}

TEST_F(RoutingTreeTest, SpansChecksConnectivityNotJustPresence) {
  const std::vector<EdgeId> edges{grid_.horizontal_edge(0, 0), grid_.horizontal_edge(2, 3)};
  RoutingTree t(grid_.graph(), edges);
  const std::vector<NodeId> terminals{grid_.node_at(0, 0), grid_.node_at(2, 3)};
  EXPECT_FALSE(t.spans(terminals));  // both touched, not connected
}

TEST_F(RoutingTreeTest, MaxPathLength) {
  // Star from (1,1) to three neighbors.
  const std::vector<EdgeId> edges{
      grid_.horizontal_edge(0, 1),  // (0,1)-(1,1)
      grid_.horizontal_edge(1, 1),  // (1,1)-(2,1)
      grid_.vertical_edge(1, 1),    // (1,1)-(1,2)
      grid_.vertical_edge(1, 2),    // (1,2)-(1,3)
  };
  RoutingTree t(grid_.graph(), edges);
  const NodeId src = grid_.node_at(1, 1);
  const std::vector<NodeId> sinks{grid_.node_at(0, 1), grid_.node_at(2, 1), grid_.node_at(1, 3)};
  EXPECT_DOUBLE_EQ(t.max_path_length(src, sinks), 2);
}

TEST_F(RoutingTreeTest, MaxPathLengthUnreachedSinkIsInfinite) {
  RoutingTree t(grid_.graph(), {grid_.horizontal_edge(0, 0)});
  const std::vector<NodeId> sinks{grid_.node_at(3, 3)};
  EXPECT_EQ(t.max_path_length(grid_.node_at(0, 0), sinks), kInfiniteWeight);
}

TEST_F(RoutingTreeTest, PruneLeavesRemovesDanglingBranch) {
  // Path (0,0)-(1,0)-(2,0) plus dangling branch (1,0)-(1,1)-(1,2).
  const std::vector<EdgeId> edges{
      grid_.horizontal_edge(0, 0), grid_.horizontal_edge(1, 0),
      grid_.vertical_edge(1, 0),   grid_.vertical_edge(1, 1),
  };
  RoutingTree t(grid_.graph(), edges);
  const std::vector<NodeId> keep{grid_.node_at(0, 0), grid_.node_at(2, 0)};
  t.prune_leaves(keep);
  EXPECT_EQ(t.edges().size(), 2u);
  EXPECT_TRUE(t.spans(keep));
  EXPECT_FALSE(t.contains_node(grid_.node_at(1, 2)));
  EXPECT_FALSE(t.contains_node(grid_.node_at(1, 1)));
}

TEST_F(RoutingTreeTest, PruneKeepsInteriorSteinerNodes) {
  // Star centered at (1,1); the center is not in keep but has degree 3.
  const std::vector<EdgeId> edges{
      grid_.horizontal_edge(0, 1),
      grid_.horizontal_edge(1, 1),
      grid_.vertical_edge(1, 1),
  };
  RoutingTree t(grid_.graph(), edges);
  const std::vector<NodeId> keep{grid_.node_at(0, 1), grid_.node_at(2, 1), grid_.node_at(1, 2)};
  t.prune_leaves(keep);
  EXPECT_EQ(t.edges().size(), 3u);
  EXPECT_TRUE(t.contains_node(grid_.node_at(1, 1)));
}

TEST_F(RoutingTreeTest, PruneCascades) {
  // Chain (0,0)-(1,0)-(2,0)-(3,0); keep only (0,0): everything prunes away.
  const std::vector<EdgeId> edges{
      grid_.horizontal_edge(0, 0), grid_.horizontal_edge(1, 0), grid_.horizontal_edge(2, 0)};
  RoutingTree t(grid_.graph(), edges);
  const std::vector<NodeId> keep{grid_.node_at(0, 0)};
  t.prune_leaves(keep);
  EXPECT_TRUE(t.empty());
}

TEST_F(RoutingTreeTest, NodesSortedAndUnique) {
  const std::vector<EdgeId> edges{grid_.horizontal_edge(0, 0), grid_.vertical_edge(1, 0)};
  RoutingTree t(grid_.graph(), edges);
  const auto nodes = t.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
}

}  // namespace
}  // namespace fpr
