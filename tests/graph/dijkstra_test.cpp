#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include <random>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(DijkstraTest, SingleNode) {
  Graph g(1);
  const auto spt = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spt.distance(0), 0);
  EXPECT_TRUE(spt.reached(0));
}

TEST(DijkstraTest, SimplePath) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  const auto spt = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spt.distance(2), 5);
  EXPECT_EQ(spt.parent[2], 1);
  EXPECT_EQ(spt.parent[1], 0);
}

TEST(DijkstraTest, PrefersCheaperDetour) {
  Graph g(3);
  g.add_edge(0, 2, 10);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const auto spt = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spt.distance(2), 2);
  EXPECT_EQ(spt.parent[2], 1);
}

TEST(DijkstraTest, UnreachableNodeHasInfiniteDistance) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const auto spt = dijkstra(g, 0);
  EXPECT_FALSE(spt.reached(2));
  EXPECT_EQ(spt.distance(2), kInfiniteWeight);
  EXPECT_EQ(spt.parent[2], kInvalidNode);
}

TEST(DijkstraTest, SkipsRemovedEdges) {
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2, 1);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  g.remove_edge(direct);
  const auto spt = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spt.distance(2), 4);
}

TEST(DijkstraTest, SkipsRemovedNodes) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(0, 2, 3);
  g.add_edge(2, 3, 3);
  g.remove_node(1);
  const auto spt = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spt.distance(3), 6);
  EXPECT_FALSE(spt.reached(1));
}

TEST(DijkstraTest, InactiveSourceReachesNothing) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  g.remove_node(0);
  const auto spt = dijkstra(g, 0);
  EXPECT_FALSE(spt.reached(0));
  EXPECT_FALSE(spt.reached(1));
}

TEST(DijkstraTest, PathEdgesReconstructShortestPath) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 10);
  const auto spt = dijkstra(g, 0);
  const auto edges = spt.path_edges_to(3);
  ASSERT_EQ(edges.size(), 3u);
  Weight sum = 0;
  for (const EdgeId e : edges) sum += g.edge_weight(e);
  EXPECT_DOUBLE_EQ(sum, spt.distance(3));
  const auto nodes = spt.path_nodes_to(3);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes.front(), 0);
  EXPECT_EQ(nodes.back(), 3);
}

TEST(DijkstraTest, PathToUnreachableNodeIsEmpty) {
  // Regression: in Release builds the old assert compiled out and the
  // parent walk indexed with kInvalidNode (infinite loop / OOB read).
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  const auto spt = dijkstra(g, 0);
  ASSERT_FALSE(spt.reached(3));
  EXPECT_TRUE(spt.path_edges_to(3).empty());
  EXPECT_TRUE(spt.path_nodes_to(3).empty());
}

TEST(DijkstraTest, PathToInactiveNodeIsEmpty) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.remove_node(2);
  const auto spt = dijkstra(g, 0);
  ASSERT_FALSE(spt.reached(2));
  EXPECT_TRUE(spt.path_edges_to(2).empty());
  EXPECT_TRUE(spt.path_nodes_to(2).empty());
}

TEST(DijkstraTest, ReuseOverloadMatchesByValue) {
  GridGraph grid(8, 8);
  ShortestPathTree reused;
  for (NodeId src : {NodeId{0}, grid.node_at(3, 4), grid.node_at(7, 7)}) {
    dijkstra(grid.graph(), src, reused);
    const auto fresh = dijkstra(grid.graph(), src);
    EXPECT_EQ(reused.dist, fresh.dist);
    EXPECT_EQ(reused.parent, fresh.parent);
    EXPECT_EQ(reused.parent_edge, fresh.parent_edge);
    EXPECT_EQ(reused.settled, fresh.settled);
  }
}

TEST(DijkstraTest, GridDistancesAreManhattan) {
  GridGraph grid(6, 5);
  const auto spt = dijkstra(grid.graph(), grid.node_at(1, 1));
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 5; ++y) {
      EXPECT_DOUBLE_EQ(spt.distance(grid.node_at(x, y)), std::abs(x - 1) + std::abs(y - 1));
    }
  }
}

TEST(DijkstraTest, ZeroWeightEdges) {
  Graph g(3);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  const auto spt = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spt.distance(2), 0);
  EXPECT_TRUE(spt.reached(2));
}

// Property: triangle inequality and symmetry over random graphs.
class DijkstraPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DijkstraPropertyTest, SymmetricAndTriangle) {
  const auto g = testing::random_connected_graph(40, 60, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("dijkstra", GetParam()));
  const auto net = testing::random_net(40, 3, rng);
  const auto a = dijkstra(g, net[0]);
  const auto b = dijkstra(g, net[1]);
  const auto c = dijkstra(g, net[2]);
  EXPECT_TRUE(weight_eq(a.distance(net[1]), b.distance(net[0])));
  EXPECT_LE(a.distance(net[2]), a.distance(net[1]) + b.distance(net[2]) + 1e-9);
  EXPECT_LE(a.distance(net[1]), a.distance(net[2]) + c.distance(net[1]) + 1e-9);
}

TEST_P(DijkstraPropertyTest, ParentDistancesConsistent) {
  const auto g = testing::random_connected_graph(50, 80, GetParam());
  const auto spt = dijkstra(g, 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ASSERT_TRUE(spt.reached(v));
    const NodeId p = spt.parent[static_cast<std::size_t>(v)];
    const EdgeId e = spt.parent_edge[static_cast<std::size_t>(v)];
    ASSERT_NE(p, kInvalidNode);
    EXPECT_TRUE(weight_eq(spt.distance(v), spt.distance(p) + g.edge_weight(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace fpr
