#include "graph/distance_graph.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(DistanceGraphTest, WeightsAreShortestPathDistances) {
  GridGraph grid(5, 5);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(4, 0), grid.node_at(0, 4)};
  const DistanceGraph dg(net, oracle);
  EXPECT_DOUBLE_EQ(dg.weight(0, 1), 4);
  EXPECT_DOUBLE_EQ(dg.weight(0, 2), 4);
  EXPECT_DOUBLE_EQ(dg.weight(1, 2), 8);
  EXPECT_DOUBLE_EQ(dg.weight(1, 0), 4);  // symmetric
  EXPECT_DOUBLE_EQ(dg.weight(0, 0), 0);
  EXPECT_TRUE(dg.connected());
}

TEST(DistanceGraphTest, DisconnectedTerminalsDetected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 2};
  const DistanceGraph dg(net, oracle);
  EXPECT_FALSE(dg.connected());
  EXPECT_FALSE(dg.prim_mst().complete);
}

TEST(DistanceGraphTest, PrimMstSimple) {
  DistanceGraph dg(std::vector<NodeId>{10, 20, 30});
  dg.set_weight(0, 1, 1);
  dg.set_weight(1, 2, 2);
  dg.set_weight(0, 2, 9);
  const auto mst = dg.prim_mst();
  ASSERT_TRUE(mst.complete);
  EXPECT_DOUBLE_EQ(mst.cost, 3);
  EXPECT_EQ(mst.edges.size(), 2u);
}

TEST(DistanceGraphTest, PrimMstSingleTerminal) {
  DistanceGraph dg(std::vector<NodeId>{7});
  const auto mst = dg.prim_mst();
  EXPECT_TRUE(mst.complete);
  EXPECT_TRUE(mst.edges.empty());
  EXPECT_DOUBLE_EQ(mst.cost, 0);
}

TEST(DistanceGraphTest, PrimMatchesBruteForceOnSquare) {
  DistanceGraph dg(std::vector<NodeId>{0, 1, 2, 3});
  dg.set_weight(0, 1, 1);
  dg.set_weight(1, 2, 1);
  dg.set_weight(2, 3, 1);
  dg.set_weight(0, 3, 1);
  dg.set_weight(0, 2, 2);
  dg.set_weight(1, 3, 2);
  EXPECT_DOUBLE_EQ(dg.prim_mst().cost, 3);
}

TEST(DistanceGraphTest, ZeroedEdgeChangesMst) {
  // ZEL's contraction zeroes triple edges; MST must pick them up.
  DistanceGraph dg(std::vector<NodeId>{0, 1, 2});
  dg.set_weight(0, 1, 4);
  dg.set_weight(1, 2, 4);
  dg.set_weight(0, 2, 4);
  EXPECT_DOUBLE_EQ(dg.prim_mst().cost, 8);
  dg.set_weight(0, 1, 0);
  dg.set_weight(1, 2, 0);
  EXPECT_DOUBLE_EQ(dg.prim_mst().cost, 0);
}

TEST(DistanceGraphTest, TerminalAccessors) {
  const std::vector<NodeId> ids{5, 9, 2};
  DistanceGraph dg(ids);
  EXPECT_EQ(dg.size(), 3);
  EXPECT_EQ(dg.terminal(1), 9);
  EXPECT_EQ(dg.terminals().size(), 3u);
}

}  // namespace
}  // namespace fpr
