#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "graph/grid.hpp"
#include "graph/path_oracle.hpp"

namespace fpr {
namespace {

TEST(ScopedDijkstraTest, SettlesAllTargets) {
  GridGraph grid(30, 30);
  const NodeId src = grid.node_at(2, 2);
  const std::vector<NodeId> targets{grid.node_at(5, 4), grid.node_at(3, 7)};
  const auto t = dijkstra_within(grid.graph(), src, targets);
  for (const NodeId v : targets) {
    EXPECT_TRUE(t.knows(v));
    EXPECT_TRUE(t.reached(v));
  }
  // Distances of settled nodes match the complete run.
  const auto full = dijkstra(grid.graph(), src);
  for (NodeId v = 0; v < grid.graph().node_count(); ++v) {
    if (t.knows(v) && t.reached(v)) {
      EXPECT_DOUBLE_EQ(t.distance(v), full.distance(v));
    }
  }
}

TEST(ScopedDijkstraTest, StopsEarlyOnLargeGraphs) {
  GridGraph grid(40, 40);
  const std::vector<NodeId> targets{grid.node_at(1, 0), grid.node_at(0, 1)};
  const auto t = dijkstra_within(grid.graph(), grid.node_at(0, 0), targets);
  EXPECT_FALSE(t.complete());
  EXPECT_FALSE(t.knows(grid.node_at(39, 39)));
}

TEST(ScopedDijkstraTest, ExhaustionMarksComplete) {
  GridGraph grid(4, 4);
  // Farthest corner as target: the radius covers the whole component.
  const std::vector<NodeId> targets{grid.node_at(3, 3)};
  const auto t = dijkstra_within(grid.graph(), grid.node_at(0, 0), targets);
  EXPECT_TRUE(t.complete());
}

TEST(ScopedDijkstraTest, UnreachableTargetForcesFullExploration) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  const std::vector<NodeId> targets{3};
  const auto t = dijkstra_within(g, 0, targets);
  EXPECT_TRUE(t.complete());  // exhausted the component
  EXPECT_FALSE(t.reached(3));
  EXPECT_TRUE(t.knows(3));  // complete runs know unreachability for certain
}

TEST(ScopedDijkstraTest, InactiveTargetStillStopsEarly) {
  // Regression: a removed target used to sit in the pending set forever,
  // keeping the radius limit infinite and silently degrading every scoped
  // run to a full-graph Dijkstra.
  GridGraph grid(40, 40);
  const NodeId dead = grid.node_at(2, 2);
  grid.graph().remove_node(dead);
  const std::vector<NodeId> targets{grid.node_at(1, 0), grid.node_at(0, 1), dead};
  const auto t = dijkstra_within(grid.graph(), grid.node_at(0, 0), targets);
  EXPECT_EQ(t.inactive_targets, 1);
  EXPECT_FALSE(t.complete());  // still bounded: the live targets set the radius
  EXPECT_FALSE(t.knows(grid.node_at(39, 39)));
  for (const NodeId v : {grid.node_at(1, 0), grid.node_at(0, 1)}) {
    EXPECT_TRUE(t.knows(v));
    EXPECT_TRUE(t.reached(v));
  }
}

TEST(ScopedDijkstraTest, AllInactiveTargetsRunUnbounded) {
  // With no live target there is no radius to derive; the run is explicitly
  // unbounded and exhausts the component, like plain dijkstra().
  GridGraph grid(10, 10);
  const NodeId dead = grid.node_at(5, 5);
  grid.graph().remove_node(dead);
  const std::vector<NodeId> targets{dead};
  const auto t = dijkstra_within(grid.graph(), grid.node_at(0, 0), targets);
  EXPECT_EQ(t.inactive_targets, 1);
  EXPECT_TRUE(t.complete());
  EXPECT_FALSE(t.reached(dead));
  EXPECT_TRUE(t.reached(grid.node_at(9, 9)));
}

TEST(PathOracleScopeTest, ScopedDistanceMatchesUnscoped) {
  GridGraph grid(25, 25);
  PathOracle scoped(grid.graph());
  PathOracle full(grid.graph());
  const std::vector<NodeId> net{grid.node_at(3, 3), grid.node_at(6, 5), grid.node_at(4, 8)};
  scoped.set_scope(net);
  for (const NodeId a : net) {
    for (const NodeId b : net) {
      EXPECT_DOUBLE_EQ(scoped.distance(a, b), full.distance(a, b));
    }
  }
}

TEST(PathOracleScopeTest, OutOfScopeQueryUpgradesTransparently) {
  GridGraph grid(30, 30);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(1, 1), grid.node_at(3, 2)};
  oracle.set_scope(net);
  oracle.from(net[0]);  // bounded tree
  // Query far outside the bounded radius: must still be exact.
  EXPECT_DOUBLE_EQ(oracle.distance(net[0], grid.node_at(29, 29)), 28 + 28);
}

TEST(PathOracleScopeTest, UpgradePreservesHandedOutReferences) {
  // Regression: algorithms hold `from(source)` across distance() calls that
  // can upgrade a bounded tree to a complete one. The upgrade must happen
  // in place — same object, previously-unknown entries becoming valid —
  // or the held reference dangles (this crashed the Table 4 sweep).
  GridGraph grid(30, 30);
  PathOracle oracle(grid.graph());
  const NodeId src = grid.node_at(0, 0);
  const std::vector<NodeId> net{src, grid.node_at(2, 1)};
  oracle.set_scope(net);
  const ShortestPathTree& held = oracle.from(src);
  ASSERT_FALSE(held.complete());
  const NodeId far = grid.node_at(29, 29);
  ASSERT_FALSE(held.knows(far));
  const ShortestPathTree& upgraded = oracle.from_knowing(src, far);
  EXPECT_EQ(&held, &upgraded);  // same object, upgraded in place
  EXPECT_TRUE(held.complete());
  EXPECT_DOUBLE_EQ(held.distance(far), 58);
}

TEST(PathOracleScopeTest, PathBetweenHandlesBoundedTrees) {
  GridGraph grid(30, 30);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(2, 1)};
  oracle.set_scope(net);
  oracle.from(net[0]);
  const auto path = oracle.path_between(net[0], grid.node_at(25, 25));
  Weight cost = 0;
  for (const EdgeId e : path) cost += grid.graph().edge_weight(e);
  EXPECT_DOUBLE_EQ(cost, 50);
}

}  // namespace
}  // namespace fpr
