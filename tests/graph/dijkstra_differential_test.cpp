// Differential pinning of the CSR/arena Dijkstra engine against the frozen
// pre-change engine (graph/dijkstra_reference.hpp): over random graphs and
// grid graphs, with node/edge removals, restores and weight mutations
// interleaved, dist/parent/parent_edge must be BIT-identical for both
// unbounded and radius-bounded runs.
//
// The `settled` flags are pinned up to the one documented semantic upgrade:
// when a bounded run exhausts the component, the old engine could still
// label it stopped-early (if a superseded heap entry above the limit
// survived to the top of its lazy-deletion queue) while the new engine
// reports it complete. In that case the old settled set must cover every
// reached node, so the two answers agree on every query.

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "graph/dijkstra.hpp"
#include "graph/dijkstra_reference.hpp"
#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

/// Bitwise comparison via memcmp — EXPECT_EQ on double vectors would accept
/// -0.0 vs 0.0 and other value-equal-but-different encodings.
template <typename T>
void expect_bits_equal(const std::vector<T>& got, const std::vector<T>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  if (!got.empty()) {
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(T)), 0) << what;
  }
}

void expect_same_tree(const ShortestPathTree& got, const ShortestPathTree& want) {
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.inactive_targets, want.inactive_targets);
  expect_bits_equal(got.dist, want.dist, "dist");
  expect_bits_equal(got.parent, want.parent, "parent");
  expect_bits_equal(got.parent_edge, want.parent_edge, "parent_edge");

  if (want.complete()) {
    EXPECT_TRUE(got.complete());
  } else if (!got.complete()) {
    expect_bits_equal(got.settled, want.settled, "settled");
  } else {
    // Exhaustion upgrade: the new engine drained its heap, so the old
    // engine must have settled every node it ever reached — both trees
    // then answer every knows()/distance() query identically.
    for (NodeId v = 0; v < static_cast<NodeId>(want.dist.size()); ++v) {
      if (want.reached(v)) {
        EXPECT_TRUE(want.settled[static_cast<std::size_t>(v)] != 0)
            << "old engine stopped early without exhausting node " << v;
      }
    }
  }
}

/// One random mutation, mirrored on nothing — both engines read the same
/// graph, so mutations just need to hit every code path that feeds the
/// flat traversal-weight array.
void mutate(Graph& g, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> op(0, 5);
  std::uniform_int_distribution<NodeId> node(0, g.node_count() - 1);
  std::uniform_int_distribution<EdgeId> edge(0, g.edge_count() - 1);
  std::uniform_int_distribution<int> w(1, 10);
  switch (op(rng)) {
    case 0: g.remove_edge(edge(rng)); break;
    case 1: g.restore_edge(edge(rng)); break;
    case 2: g.remove_node(node(rng)); break;
    case 3: g.restore_node(node(rng)); break;
    case 4: g.set_edge_weight(edge(rng), w(rng)); break;
    case 5: g.add_edge_weight(edge(rng), 1); break;
  }
}

void compare_runs(const Graph& g, std::mt19937_64& rng) {
  std::uniform_int_distribution<NodeId> node(0, g.node_count() - 1);
  const NodeId source = node(rng);

  expect_same_tree(dijkstra(g, source), reference::dijkstra(g, source));

  // Scoped run with a random target set (possibly containing the source,
  // duplicates, and inactive nodes — all contract-relevant cases).
  std::uniform_int_distribution<int> tcount(1, 5);
  std::vector<NodeId> targets;
  for (int i = tcount(rng); i > 0; --i) targets.push_back(node(rng));
  if (tcount(rng) > 3) targets.push_back(targets.front());  // duplicate
  expect_same_tree(dijkstra_within(g, source, targets),
                   reference::dijkstra_within(g, source, targets));
}

class DijkstraDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DijkstraDifferentialTest, RandomGraphWithInterleavedMutations) {
  const unsigned seed = GetParam();
  std::mt19937_64 rng(testing::seeded_rng("dijkstra_differential/scoped", seed));
  std::uniform_int_distribution<NodeId> size(5, 80);
  const NodeId n = size(rng);
  std::uniform_int_distribution<EdgeId> extra(0, n * 2);
  Graph g = testing::random_connected_graph(n, extra(rng), seed);

  compare_runs(g, rng);
  for (int round = 0; round < 6; ++round) {
    for (int m = 0; m < 4; ++m) mutate(g, rng);
    compare_runs(g, rng);
  }
}

TEST_P(DijkstraDifferentialTest, GridGraphWithInterleavedMutations) {
  const unsigned seed = GetParam();
  std::mt19937_64 rng(testing::seeded_rng("dijkstra_differential/arena", seed));
  GridGraph grid(12 + static_cast<int>(seed % 5), 10 + static_cast<int>(seed % 7));
  Graph& g = grid.graph();

  compare_runs(g, rng);
  for (int round = 0; round < 5; ++round) {
    for (int m = 0; m < 6; ++m) mutate(g, rng);
    compare_runs(g, rng);
  }
}

// 100 random-graph instances + 100 grid instances, each compared at ~7
// mutation checkpoints for both unbounded and scoped runs.
INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraDifferentialTest, ::testing::Range(0u, 100u));

TEST(DijkstraDifferentialTest, InactiveSourceMatches) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.remove_node(0);
  expect_same_tree(dijkstra(g, 0), reference::dijkstra(g, 0));
  const std::vector<NodeId> targets{2};
  expect_same_tree(dijkstra_within(g, 0, targets), reference::dijkstra_within(g, 0, targets));
}

TEST(DijkstraDifferentialTest, EqualWeightParentTieBreakMatches) {
  // Diamond with equal-cost paths: the deterministic (dist, id) tie-break
  // must pick the same parent in both engines.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 3, 1);
  const auto got = dijkstra(g, 0);
  expect_same_tree(got, reference::dijkstra(g, 0));
  EXPECT_EQ(got.parent[3], 1);  // node 1 settles before node 2 at distance 1
}

}  // namespace
}  // namespace fpr
