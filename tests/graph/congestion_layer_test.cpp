// CongestionLayer unit contract (DESIGN.md §13): present/history pricing on
// wire nodes, bit-exact edge repricing (weight = base + cost(u)/2 +
// cost(v)/2), rip-up-everything begin_pass semantics, and backend
// equivalence — the same occupancy/history trajectory produces bit-equal
// edge weights on the tiled and the materialized graph representation.

#include <gtest/gtest.h>

#include <vector>

#include "fpga/device.hpp"
#include "graph/congestion_layer.hpp"

namespace fpr {
namespace {

class CongestionLayerTest : public ::testing::Test {
 protected:
  CongestionLayerTest() : device_(ArchSpec::xc4000(4, 4, 4)) {}

  NodeId wire(int k) const {
    const NodeId v = device_.block_count() + static_cast<NodeId>(k);
    EXPECT_TRUE(device_.is_wire(v));
    return v;
  }

  /// Every edge weight of the graph, by edge id — the layer's entire
  /// observable output stream.
  std::vector<Weight> all_weights() const {
    const Graph& g = device_.graph();
    std::vector<Weight> w(static_cast<std::size_t>(g.edge_count()));
    for (EdgeId e = 0; e < g.edge_count(); ++e) w[static_cast<std::size_t>(e)] = g.edge_weight(e);
    return w;
  }

  Device device_;
};

TEST_F(CongestionLayerTest, FreshLayerPricesNothing) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  const std::vector<Weight> base = all_weights();
  EXPECT_EQ(layer.total_overflow(), 0);
  EXPECT_TRUE(layer.occupied().empty());
  for (int k = 0; k < device_.wire_count(); ++k) {
    EXPECT_EQ(layer.occupancy(wire(k)), 0);
    EXPECT_EQ(layer.node_cost(wire(k)), 0.0);
    EXPECT_FALSE(layer.would_overflow(wire(k)));
  }
  // Block nodes are below the shared range and always free.
  EXPECT_EQ(layer.node_cost(0), 0.0);
  EXPECT_EQ(all_weights(), base);
}

TEST_F(CongestionLayerTest, PresentCostStepsWithOccupancy) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  const NodeId v = wire(3);

  layer.add_occupant(v);
  EXPECT_EQ(layer.occupancy(v), 1);
  EXPECT_TRUE(layer.would_overflow(v));  // capacity 1: one more would share
  EXPECT_EQ(layer.total_overflow(), 0);  // ... but nothing overflows yet
  EXPECT_EQ(layer.node_cost(v), 0.5);    // present_factor * (1 + 1 - 1)

  layer.add_occupant(v);
  EXPECT_EQ(layer.occupancy(v), 2);
  EXPECT_EQ(layer.total_overflow(), 1);
  EXPECT_EQ(layer.node_cost(v), 1.0);  // present_factor * (2 + 1 - 1)

  layer.remove_occupant(v);
  layer.remove_occupant(v);
  EXPECT_EQ(layer.total_overflow(), 0);
  EXPECT_EQ(layer.node_cost(v), 0.0);
}

TEST_F(CongestionLayerTest, RepriceWritesSplitNodeCostAndRestoresExactly) {
  Graph& g = device_.graph();
  CongestionLayer layer(g, device_.block_count());
  const std::vector<Weight> base = all_weights();
  const NodeId v = wire(5);

  layer.add_occupant(v);
  layer.add_occupant(v);
  std::vector<EdgeId> incident(g.incident_edges(v).begin(), g.incident_edges(v).end());
  ASSERT_FALSE(incident.empty());
  for (const EdgeId e : incident) {
    const NodeId u = g.other_end(e, v);
    EXPECT_EQ(g.edge_weight(e), base[static_cast<std::size_t>(e)] + layer.node_cost(u) / 2 +
                                    layer.node_cost(v) / 2)
        << "edge " << e;
  }

  // Removing both occupants restores every weight bit-exactly (dyadic
  // arithmetic: no accumulated rounding).
  layer.remove_occupant(v);
  layer.remove_occupant(v);
  EXPECT_EQ(all_weights(), base);
}

TEST_F(CongestionLayerTest, BeginPassClearsOccupancyButKeepsHistory) {
  Graph& g = device_.graph();
  CongestionLayer layer(g, device_.block_count());
  const std::vector<Weight> base = all_weights();
  const NodeId v = wire(2);

  layer.add_occupant(v);
  layer.add_occupant(v);
  layer.accrue_history(v, 0.25);
  layer.accrue_history(v, 0.25);
  EXPECT_EQ(layer.history(v), 0.5);
  EXPECT_EQ(layer.node_cost(v), 1.5);  // present 1.0 + history 0.5

  layer.begin_pass();
  EXPECT_EQ(layer.occupancy(v), 0);
  EXPECT_EQ(layer.total_overflow(), 0);
  EXPECT_TRUE(layer.occupied().empty());
  EXPECT_EQ(layer.history(v), 0.5);    // history never decays
  EXPECT_EQ(layer.node_cost(v), 0.5);  // history only

  // Incident weights now carry exactly the history term.
  std::vector<EdgeId> incident(g.incident_edges(v).begin(), g.incident_edges(v).end());
  for (const EdgeId e : incident) {
    const NodeId u = g.other_end(e, v);
    EXPECT_EQ(g.edge_weight(e), base[static_cast<std::size_t>(e)] + layer.node_cost(u) / 2 +
                                    layer.node_cost(v) / 2)
        << "edge " << e;
  }
}

TEST_F(CongestionLayerTest, OccupiedListIsAscendingAndExact) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  const std::vector<int> scrambled{7, 1, 11, 4, 1};  // 1 twice: still one entry
  for (const int k : scrambled) layer.add_occupant(wire(k));
  layer.remove_occupant(wire(4));  // back to zero: drops off the list
  const std::vector<NodeId> expected{wire(1), wire(7), wire(11)};
  EXPECT_EQ(layer.occupied(), expected);
}

TEST_F(CongestionLayerTest, PresentFactorAppliesToTheComingPass) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  layer.begin_pass();
  layer.set_present_factor(2.0);
  const NodeId v = wire(9);
  layer.add_occupant(v);
  layer.add_occupant(v);
  EXPECT_EQ(layer.node_cost(v), 4.0);  // 2.0 * (2 + 1 - 1)
}

TEST_F(CongestionLayerTest, TiledAndMaterializedBackendsAgreeBitExactly) {
  // Same device, same trajectory; one graph converted to the materialized
  // representation first. Every repriced weight and the aggregate mean must
  // be bit-equal — the layer goes through set_edge_weight, which keeps both
  // backends' weight streams in sync.
  // 8x8: above the tile-template sampling floor, so the stock device is
  // actually tiled and the differential is tiled-vs-materialized.
  const ArchSpec arch = ArchSpec::xc4000(8, 8, 4);
  Device tiled(arch);
  Device flat(arch);
  flat.graph().add_nodes(0);  // structural no-op: transparently materializes
  ASSERT_TRUE(tiled.graph().tiled());
  ASSERT_FALSE(flat.graph().tiled());

  CongestionLayer a(tiled.graph(), tiled.block_count());
  CongestionLayer b(flat.graph(), flat.block_count());
  const auto drive = [&](CongestionLayer& layer, const Device& device) {
    const NodeId first = device.block_count();
    for (int pass = 0; pass < 3; ++pass) {
      layer.begin_pass();
      layer.set_present_factor(0.5 * (1 << pass));
      for (int k = 0; k < device.wire_count(); k += 3) {
        layer.add_occupant(first + k);
        if (k % 6 == 0) layer.add_occupant(first + k);  // overflow some
      }
      for (int k = 0; k < device.wire_count(); k += 9) layer.remove_occupant(first + k);
      for (const NodeId v : layer.occupied()) {
        if (layer.would_overflow(v)) layer.accrue_history(v, 0.25);
      }
    }
  };
  drive(a, tiled);
  drive(b, flat);

  ASSERT_EQ(tiled.graph().edge_count(), flat.graph().edge_count());
  for (EdgeId e = 0; e < tiled.graph().edge_count(); ++e) {
    ASSERT_EQ(tiled.graph().edge_weight(e), flat.graph().edge_weight(e)) << "edge " << e;
  }
  EXPECT_EQ(tiled.graph().mean_active_edge_weight(), flat.graph().mean_active_edge_weight());
  EXPECT_EQ(a.total_overflow(), b.total_overflow());
  EXPECT_EQ(a.occupied(), b.occupied());
}

}  // namespace
}  // namespace fpr
