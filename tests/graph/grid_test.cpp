#include "graph/grid.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(GridTest, NodeAndEdgeCounts) {
  GridGraph grid(20, 20);
  EXPECT_EQ(grid.graph().node_count(), 400);
  // 19*20 horizontal + 20*19 vertical.
  EXPECT_EQ(grid.graph().edge_count(), 760);
}

TEST(GridTest, CoordinateRoundTrip) {
  GridGraph grid(7, 5);
  for (int x = 0; x < 7; ++x) {
    for (int y = 0; y < 5; ++y) {
      const auto [cx, cy] = grid.coord(grid.node_at(x, y));
      EXPECT_EQ(cx, x);
      EXPECT_EQ(cy, y);
    }
  }
}

TEST(GridTest, HorizontalEdgeConnectsNeighbors) {
  GridGraph grid(4, 3);
  const EdgeId e = grid.horizontal_edge(1, 2);
  const auto& ed = grid.graph().edge(e);
  EXPECT_EQ(std::minmax(ed.u, ed.v), std::minmax(grid.node_at(1, 2), grid.node_at(2, 2)));
}

TEST(GridTest, VerticalEdgeConnectsNeighbors) {
  GridGraph grid(4, 3);
  const EdgeId e = grid.vertical_edge(3, 1);
  const auto& ed = grid.graph().edge(e);
  EXPECT_EQ(std::minmax(ed.u, ed.v), std::minmax(grid.node_at(3, 1), grid.node_at(3, 2)));
}

TEST(GridTest, DefaultWeightIsOne) {
  GridGraph grid(3, 3);
  for (EdgeId e = 0; e < grid.graph().edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(grid.graph().edge_weight(e), 1.0);
  }
}

TEST(GridTest, CustomWeight) {
  GridGraph grid(2, 2, 2.5);
  for (EdgeId e = 0; e < grid.graph().edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(grid.graph().edge_weight(e), 2.5);
  }
}

TEST(GridTest, DegeneratePath) {
  GridGraph grid(5, 1);
  EXPECT_EQ(grid.graph().node_count(), 5);
  EXPECT_EQ(grid.graph().edge_count(), 4);
}

}  // namespace
}  // namespace fpr
