#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace fpr {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.component_count(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFindTest, UniteMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.component_count(), 3);
}

TEST(UnionFindTest, TransitiveUnions) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(2, 3));
  EXPECT_EQ(uf.component_count(), 2);
  uf.unite(2, 3);
  EXPECT_TRUE(uf.same(0, 4));
  EXPECT_EQ(uf.component_count(), 1);
}

TEST(UnionFindTest, RandomizedMatchesNaiveLabels) {
  std::mt19937_64 rng(7);
  const int n = 64;
  UnionFind uf(n);
  std::vector<int> label(static_cast<std::size_t>(n));
  std::iota(label.begin(), label.end(), 0);
  std::uniform_int_distribution<int> pick(0, n - 1);
  for (int step = 0; step < 200; ++step) {
    const int a = pick(rng);
    const int b = pick(rng);
    uf.unite(a, b);
    const int la = label[static_cast<std::size_t>(a)];
    const int lb = label[static_cast<std::size_t>(b)];
    if (la != lb) {
      for (auto& l : label) {
        if (l == lb) l = la;
      }
    }
    const int x = pick(rng);
    const int y = pick(rng);
    EXPECT_EQ(uf.same(x, y),
              label[static_cast<std::size_t>(x)] == label[static_cast<std::size_t>(y)]);
  }
}

}  // namespace
}  // namespace fpr
