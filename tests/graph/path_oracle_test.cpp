#include "graph/path_oracle.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"

namespace fpr {
namespace {

TEST(PathOracleTest, CachesSsspTrees) {
  GridGraph grid(4, 4);
  PathOracle oracle(grid.graph());
  EXPECT_EQ(oracle.dijkstra_runs(), 0u);
  oracle.from(0);
  oracle.from(0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  oracle.from(5);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
}

TEST(PathOracleTest, DistanceUsesEitherEndpointCache) {
  GridGraph grid(4, 4);
  PathOracle oracle(grid.graph());
  oracle.from(grid.node_at(3, 3));
  // Distance (0,0)->(3,3) should be served from the cached reverse tree.
  EXPECT_DOUBLE_EQ(oracle.distance(grid.node_at(0, 0), grid.node_at(3, 3)), 6);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
}

TEST(PathOracleTest, CachedReturnsNullBeforeCompute) {
  GridGraph grid(3, 3);
  PathOracle oracle(grid.graph());
  EXPECT_EQ(oracle.cached(0), nullptr);
  oracle.from(0);
  EXPECT_NE(oracle.cached(0), nullptr);
}

TEST(PathOracleTest, InvalidatesOnGraphMutation) {
  GridGraph grid(4, 1);
  PathOracle oracle(grid.graph());
  EXPECT_DOUBLE_EQ(oracle.distance(grid.node_at(0, 0), grid.node_at(3, 0)), 3);
  grid.graph().set_edge_weight(grid.horizontal_edge(1, 0), 5);
  EXPECT_DOUBLE_EQ(oracle.distance(grid.node_at(0, 0), grid.node_at(3, 0)), 7);
}

TEST(PathOracleTest, InvalidatesOnNodeRemoval) {
  GridGraph grid(3, 3);
  PathOracle oracle(grid.graph());
  EXPECT_DOUBLE_EQ(oracle.distance(grid.node_at(0, 0), grid.node_at(2, 0)), 2);
  grid.graph().remove_node(grid.node_at(1, 0));
  EXPECT_DOUBLE_EQ(oracle.distance(grid.node_at(0, 0), grid.node_at(2, 0)), 4);
}

TEST(PathOracleTest, CountsHitsAndMisses) {
  GridGraph grid(4, 4);
  PathOracle oracle(grid.graph());
  EXPECT_EQ(oracle.cache_hits(), 0u);
  EXPECT_EQ(oracle.cache_misses(), 0u);
  oracle.from(0);  // miss
  oracle.from(0);  // hit
  oracle.from(5);  // miss
  EXPECT_EQ(oracle.cache_misses(), 2u);
  EXPECT_EQ(oracle.cache_hits(), 1u);
  // Served from node 0's cached tree: a hit, no new run.
  EXPECT_DOUBLE_EQ(oracle.distance(0, grid.node_at(3, 3)), 6);
  EXPECT_EQ(oracle.cache_hits(), 2u);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
  EXPECT_DOUBLE_EQ(oracle.hit_rate(), 0.5);
}

TEST(PathOracleTest, PathBetweenCountsCacheHits) {
  GridGraph grid(4, 4);
  PathOracle oracle(grid.graph());
  oracle.from(0);
  const auto hits_before = oracle.cache_hits();
  const auto path = oracle.path_between(0, grid.node_at(3, 3));
  EXPECT_EQ(path.size(), 6u);
  EXPECT_EQ(oracle.cache_hits(), hits_before + 1);
}

TEST(PathOracleTest, UpgradeCountsAsMiss) {
  GridGraph grid(20, 20);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(1, 1)};
  oracle.set_scope(net);
  oracle.from(net[0]);  // bounded: miss
  ASSERT_FALSE(oracle.cached(net[0])->complete());
  oracle.from_knowing(net[0], grid.node_at(19, 19));  // hit + upgrade miss
  EXPECT_EQ(oracle.cache_misses(), 2u);
  EXPECT_EQ(oracle.cache_hits(), 1u);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
}

TEST(PathOracleTest, ClearResetsHitCounters) {
  GridGraph grid(3, 3);
  PathOracle oracle(grid.graph());
  oracle.from(0);
  oracle.from(0);
  oracle.clear();
  EXPECT_EQ(oracle.cache_hits(), 0u);
  EXPECT_EQ(oracle.cache_misses(), 0u);
}

TEST(PathOracleTest, ClearResetsRunCounter) {
  GridGraph grid(3, 3);
  PathOracle oracle(grid.graph());
  oracle.from(0);
  oracle.clear();
  EXPECT_EQ(oracle.dijkstra_runs(), 0u);
  EXPECT_EQ(oracle.cached(0), nullptr);
}

}  // namespace
}  // namespace fpr
