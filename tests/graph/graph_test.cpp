#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(GraphTest, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(GraphTest, ConstructorCreatesActiveNodes) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(g.node_active(v));
}

TEST(GraphTest, AddNodesReturnsFirstNewId) {
  Graph g(3);
  EXPECT_EQ(g.add_nodes(2), 3);
  EXPECT_EQ(g.node_count(), 5);
}

TEST(GraphTest, AddEdgeStoresEndpointsAndWeight) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 4.5);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 4.5);
  EXPECT_TRUE(g.edge_active(e));
}

TEST(GraphTest, OtherEndReturnsOppositeEndpoint) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1);
  EXPECT_EQ(g.other_end(e, 0), 1);
  EXPECT_EQ(g.other_end(e, 1), 0);
}

TEST(GraphTest, IncidentEdgesListsBothDirections) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 1);
  const EdgeId b = g.add_edge(1, 2, 1);
  const auto inc = g.incident_edges(1);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_EQ(inc[0], a);
  EXPECT_EQ(inc[1], b);
  EXPECT_EQ(g.incident_edges(0).size(), 1u);
}

TEST(GraphTest, RemoveEdgeMakesItUnusable) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1);
  g.remove_edge(e);
  EXPECT_FALSE(g.edge_active(e));
  EXPECT_FALSE(g.edge_usable(e));
  g.restore_edge(e);
  EXPECT_TRUE(g.edge_usable(e));
}

TEST(GraphTest, RemoveNodeMakesIncidentEdgesUnusable) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  const EdgeId e12 = g.add_edge(1, 2, 1);
  g.remove_node(1);
  EXPECT_FALSE(g.edge_usable(e01));
  EXPECT_FALSE(g.edge_usable(e12));
  EXPECT_TRUE(g.edge_active(e01));  // the edge itself was not touched
  g.restore_node(1);
  EXPECT_TRUE(g.edge_usable(e01));
}

TEST(GraphTest, WeightMutation) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 2.0);
  g.set_edge_weight(e, 5.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 5.0);
  g.add_edge_weight(e, 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 6.5);
}

TEST(GraphTest, RevisionBumpsOnEveryMutation) {
  Graph g(2);
  const auto r0 = g.revision();
  const EdgeId e = g.add_edge(0, 1, 1);
  const auto r1 = g.revision();
  EXPECT_GT(r1, r0);
  g.set_edge_weight(e, 2);
  EXPECT_GT(g.revision(), r1);
  const auto r2 = g.revision();
  g.remove_node(0);
  EXPECT_GT(g.revision(), r2);
}

TEST(GraphTest, ActiveEdgeCountSkipsRemovedElements) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const EdgeId e = g.add_edge(1, 2, 1);
  EXPECT_EQ(g.active_edge_count(), 2);
  g.remove_edge(e);
  EXPECT_EQ(g.active_edge_count(), 1);
  g.restore_edge(e);
  g.remove_node(2);
  EXPECT_EQ(g.active_edge_count(), 1);
}

TEST(GraphTest, MeanActiveEdgeWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId e = g.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 2.0);
  g.remove_edge(e);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 1.0);
}

TEST(GraphTest, MeanActiveEdgeWeightEmptyGraphIsZero) {
  Graph g(2);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 0.0);
}

TEST(WeightCompareTest, ExactEquality) {
  EXPECT_TRUE(weight_eq(1.0, 1.0));
  EXPECT_TRUE(weight_eq(kInfiniteWeight, kInfiniteWeight));
  EXPECT_FALSE(weight_eq(1.0, 2.0));
}

TEST(WeightCompareTest, ToleratesRoundoff) {
  const Weight a = 0.1 + 0.2;
  EXPECT_TRUE(weight_eq(a, 0.3));
  EXPECT_FALSE(weight_lt(a, 0.3));
  EXPECT_FALSE(weight_lt(0.3, a));
  EXPECT_TRUE(weight_lt(0.3, 0.31));
}

TEST(WeightCompareTest, ScalesWithMagnitude) {
  // Relative tolerance: at 1e12 the slack is ~1e3, so +1 matches, +1e4 not.
  EXPECT_TRUE(weight_eq(1e12, 1e12 + 1.0));
  EXPECT_FALSE(weight_eq(1e12, 1e12 + 1e4));
}

TEST(WeightCompareTest, InfinityNeverEqualsFinite) {
  EXPECT_FALSE(weight_eq(2.0, kInfiniteWeight));
  EXPECT_FALSE(weight_eq(kInfiniteWeight, 2.0));
  EXPECT_TRUE(weight_lt(2.0, kInfiniteWeight));
  EXPECT_FALSE(weight_lt(kInfiniteWeight, 2.0));
}

}  // namespace
}  // namespace fpr
