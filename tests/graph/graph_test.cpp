#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <random>

namespace fpr {
namespace {

/// Brute-force ground truth for the O(1) running counters.
EdgeId scan_active_edge_count(const Graph& g) {
  EdgeId n = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge_usable(e)) ++n;
  }
  return n;
}

Weight scan_mean_active_edge_weight(const Graph& g) {
  Weight sum = 0;
  EdgeId n = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge_usable(e)) {
      sum += g.edge_weight(e);
      ++n;
    }
  }
  return n == 0 ? Weight{0} : sum / static_cast<Weight>(n);
}

TEST(GraphTest, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(GraphTest, ConstructorCreatesActiveNodes) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(g.node_active(v));
}

TEST(GraphTest, AddNodesReturnsFirstNewId) {
  Graph g(3);
  EXPECT_EQ(g.add_nodes(2), 3);
  EXPECT_EQ(g.node_count(), 5);
}

TEST(GraphTest, AddEdgeStoresEndpointsAndWeight) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 4.5);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 4.5);
  EXPECT_TRUE(g.edge_active(e));
}

TEST(GraphTest, OtherEndReturnsOppositeEndpoint) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1);
  EXPECT_EQ(g.other_end(e, 0), 1);
  EXPECT_EQ(g.other_end(e, 1), 0);
}

TEST(GraphTest, IncidentEdgesListsBothDirections) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 1);
  const EdgeId b = g.add_edge(1, 2, 1);
  const auto inc = g.incident_edges(1);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_EQ(inc[0], a);
  EXPECT_EQ(inc[1], b);
  EXPECT_EQ(g.incident_edges(0).size(), 1u);
}

TEST(GraphTest, RemoveEdgeMakesItUnusable) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1);
  g.remove_edge(e);
  EXPECT_FALSE(g.edge_active(e));
  EXPECT_FALSE(g.edge_usable(e));
  g.restore_edge(e);
  EXPECT_TRUE(g.edge_usable(e));
}

TEST(GraphTest, RemoveNodeMakesIncidentEdgesUnusable) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  const EdgeId e12 = g.add_edge(1, 2, 1);
  g.remove_node(1);
  EXPECT_FALSE(g.edge_usable(e01));
  EXPECT_FALSE(g.edge_usable(e12));
  EXPECT_TRUE(g.edge_active(e01));  // the edge itself was not touched
  g.restore_node(1);
  EXPECT_TRUE(g.edge_usable(e01));
}

TEST(GraphTest, WeightMutation) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 2.0);
  g.set_edge_weight(e, 5.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 5.0);
  g.add_edge_weight(e, 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 6.5);
}

TEST(GraphTest, RevisionBumpsOnEveryMutation) {
  Graph g(2);
  const auto r0 = g.revision();
  const EdgeId e = g.add_edge(0, 1, 1);
  const auto r1 = g.revision();
  EXPECT_GT(r1, r0);
  g.set_edge_weight(e, 2);
  EXPECT_GT(g.revision(), r1);
  const auto r2 = g.revision();
  g.remove_node(0);
  EXPECT_GT(g.revision(), r2);
}

TEST(GraphTest, ActiveEdgeCountSkipsRemovedElements) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const EdgeId e = g.add_edge(1, 2, 1);
  EXPECT_EQ(g.active_edge_count(), 2);
  g.remove_edge(e);
  EXPECT_EQ(g.active_edge_count(), 1);
  g.restore_edge(e);
  g.remove_node(2);
  EXPECT_EQ(g.active_edge_count(), 1);
}

TEST(GraphTest, MeanActiveEdgeWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId e = g.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 2.0);
  g.remove_edge(e);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 1.0);
}

TEST(GraphTest, MeanActiveEdgeWeightEmptyGraphIsZero) {
  Graph g(2);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 0.0);
}

TEST(GraphTest, RunningCountersMatchBruteScanUnderRandomMutations) {
  // The O(1) counters must agree with a fresh O(E) scan after every kind of
  // mutation, including redundant removes/restores.
  std::mt19937_64 rng(20260806);
  Graph g(20);
  std::uniform_int_distribution<NodeId> node(0, 19);
  std::uniform_int_distribution<int> weight(1, 10);
  for (int i = 0; i < 40; ++i) {
    NodeId u = node(rng), v = node(rng);
    if (u == v) continue;
    g.add_edge(u, v, weight(rng));
  }
  ASSERT_GT(g.edge_count(), 0);
  std::uniform_int_distribution<EdgeId> edge(0, g.edge_count() - 1);
  std::uniform_int_distribution<int> op(0, 6);
  for (int step = 0; step < 300; ++step) {
    switch (op(rng)) {
      case 0: g.remove_edge(edge(rng)); break;
      case 1: g.restore_edge(edge(rng)); break;
      case 2: g.remove_node(node(rng)); break;
      case 3: g.restore_node(node(rng)); break;
      case 4: g.set_edge_weight(edge(rng), weight(rng)); break;
      case 5: g.add_edge_weight(edge(rng), 2); break;
      case 6: g.add_edge(node(rng) == 0 ? 1 : 0, node(rng) == 19 ? 18 : 19, weight(rng)); break;
    }
    ASSERT_EQ(g.active_edge_count(), scan_active_edge_count(g)) << "step " << step;
    ASSERT_TRUE(weight_eq(g.mean_active_edge_weight(), scan_mean_active_edge_weight(g)))
        << "step " << step << ": " << g.mean_active_edge_weight() << " vs "
        << scan_mean_active_edge_weight(g);
  }
}

TEST(GraphTest, RedundantRemovesDoNotSkewCounters) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  g.remove_node(1);
  g.remove_node(1);  // idempotent
  EXPECT_EQ(g.active_edge_count(), 0);
  g.restore_node(1);
  g.restore_node(1);  // idempotent
  EXPECT_EQ(g.active_edge_count(), 2);
  EXPECT_DOUBLE_EQ(g.mean_active_edge_weight(), 3.0);
  const EdgeId e = 0;
  g.remove_edge(e);
  g.remove_edge(e);  // idempotent
  EXPECT_EQ(g.active_edge_count(), 1);
  g.restore_edge(e);
  g.restore_edge(e);  // idempotent
  EXPECT_EQ(g.active_edge_count(), 2);
}

TEST(GraphTest, StructuralRevisionIgnoresWeightAndActivity) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 1);
  const auto s0 = g.structural_revision();
  const auto r0 = g.revision();
  g.set_edge_weight(e, 2);
  g.add_edge_weight(e, 1);
  g.remove_edge(e);
  g.restore_edge(e);
  g.remove_node(2);
  g.restore_node(2);
  EXPECT_EQ(g.structural_revision(), s0);  // topology untouched
  EXPECT_GT(g.revision(), r0);             // but the total revision moved
  g.add_edge(1, 2, 1);
  EXPECT_GT(g.structural_revision(), s0);
  g.add_nodes(1);
  EXPECT_GT(g.structural_revision(), s0 + 1);
}

TEST(GraphTest, CsrSnapshotMatchesIncidentListsAndSurvivesWeightMutation) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(0, 3, 4);
  const CsrAdjacency& csr = g.csr();
  const CsrAdjacency* built = &csr;
  ASSERT_EQ(csr.offsets.size(), 5u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto inc = g.incident_edges(v);
    const auto begin = static_cast<std::size_t>(csr.offsets[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(csr.offsets[static_cast<std::size_t>(v) + 1]);
    ASSERT_EQ(end - begin, inc.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      EXPECT_EQ(csr.edge_id[begin + i], inc[i]);  // insertion order preserved
      EXPECT_EQ(csr.neighbor[begin + i], g.other_end(inc[i], v));
    }
  }
  // Weight bumps and removals must not rebuild the snapshot; adding an edge
  // must.
  g.set_edge_weight(0, 9);
  g.remove_node(2);
  EXPECT_EQ(&g.csr(), built);
  const auto id_before = g.csr().edge_id;
  g.add_edge(1, 3, 1);
  EXPECT_NE(g.csr().edge_id, id_before);
  EXPECT_EQ(g.csr().edge_id.size(), id_before.size() + 2);
}

TEST(GraphTest, TraversalWeightsTrackUsability) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(g.traversal_weights()[static_cast<std::size_t>(e)], 2.5);
  g.remove_node(0);
  EXPECT_EQ(g.traversal_weights()[static_cast<std::size_t>(e)], kInfiniteWeight);
  g.restore_node(0);
  g.add_edge_weight(e, 0.5);
  EXPECT_DOUBLE_EQ(g.traversal_weights()[static_cast<std::size_t>(e)], 3.0);
  g.remove_edge(e);
  EXPECT_EQ(g.traversal_weights()[static_cast<std::size_t>(e)], kInfiniteWeight);
  g.set_edge_weight(e, 7.0);  // weight mutation while unusable
  g.restore_edge(e);
  EXPECT_DOUBLE_EQ(g.traversal_weights()[static_cast<std::size_t>(e)], 7.0);
}

TEST(GraphTest, CopyAndMoveKeepCountersAndRebuildCsr) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  g.remove_node(2);
  (void)g.csr();
  Graph copy = g;
  EXPECT_EQ(copy.active_edge_count(), 1);
  EXPECT_DOUBLE_EQ(copy.mean_active_edge_weight(), 2.0);
  EXPECT_EQ(copy.csr().edge_id.size(), 4u);
  Graph moved = std::move(copy);
  EXPECT_EQ(moved.active_edge_count(), 1);
  EXPECT_EQ(moved.csr().offsets.size(), 4u);
  moved.add_edge(0, 2, 1.0);  // structurally mutate the moved-to graph
  EXPECT_EQ(moved.csr().edge_id.size(), 6u);
  EXPECT_EQ(g.csr().edge_id.size(), 4u);  // source unaffected
}

TEST(WeightCompareTest, ExactEquality) {
  EXPECT_TRUE(weight_eq(1.0, 1.0));
  EXPECT_TRUE(weight_eq(kInfiniteWeight, kInfiniteWeight));
  EXPECT_FALSE(weight_eq(1.0, 2.0));
}

TEST(WeightCompareTest, ToleratesRoundoff) {
  const Weight a = 0.1 + 0.2;
  EXPECT_TRUE(weight_eq(a, 0.3));
  EXPECT_FALSE(weight_lt(a, 0.3));
  EXPECT_FALSE(weight_lt(0.3, a));
  EXPECT_TRUE(weight_lt(0.3, 0.31));
}

TEST(WeightCompareTest, ScalesWithMagnitude) {
  // Relative tolerance: at 1e12 the slack is ~1e3, so +1 matches, +1e4 not.
  EXPECT_TRUE(weight_eq(1e12, 1e12 + 1.0));
  EXPECT_FALSE(weight_eq(1e12, 1e12 + 1e4));
}

TEST(WeightCompareTest, InfinityNeverEqualsFinite) {
  EXPECT_FALSE(weight_eq(2.0, kInfiniteWeight));
  EXPECT_FALSE(weight_eq(kInfiniteWeight, 2.0));
  EXPECT_TRUE(weight_lt(2.0, kInfiniteWeight));
  EXPECT_FALSE(weight_lt(kInfiniteWeight, 2.0));
}

}  // namespace
}  // namespace fpr
