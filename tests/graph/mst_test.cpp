#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(MstTest, TriangleKeepsTwoLightestEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  const EdgeId heavy = g.add_edge(0, 2, 5);
  const auto mst = kruskal_mst(g);
  ASSERT_EQ(mst.size(), 2u);
  EXPECT_EQ(std::count(mst.begin(), mst.end(), heavy), 0);
  EXPECT_DOUBLE_EQ(edge_set_cost(g, mst), 3);
}

TEST(MstTest, SkipsInactiveEdges) {
  Graph g(3);
  const EdgeId cheap = g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 2);
  g.remove_edge(cheap);
  const auto mst = kruskal_mst(g);
  EXPECT_DOUBLE_EQ(edge_set_cost(g, mst), 5);
}

TEST(MstTest, DisconnectedGraphYieldsForest) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.size(), 2u);
}

TEST(MstTest, SubgraphRestrictsEdgePool) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 5);
  const EdgeId b = g.add_edge(1, 2, 5);
  g.add_edge(0, 2, 1);  // cheapest, but not offered
  const std::vector<EdgeId> pool{a, b, a};
  const auto mst = kruskal_mst_subgraph(g, pool);
  ASSERT_EQ(mst.size(), 2u);
  EXPECT_DOUBLE_EQ(edge_set_cost(g, mst), 10);
}

TEST(MstTest, EmptyPool) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  EXPECT_TRUE(kruskal_mst_subgraph(g, {}).empty());
}

TEST(MstTest, DeterministicTieBreakByEdgeId) {
  Graph g(3);
  const EdgeId first = g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 1);  // parallel duplicate, same weight
  const EdgeId c = g.add_edge(1, 2, 1);
  const auto mst = kruskal_mst(g);
  ASSERT_EQ(mst.size(), 2u);
  EXPECT_TRUE(std::count(mst.begin(), mst.end(), first) == 1);
  EXPECT_TRUE(std::count(mst.begin(), mst.end(), c) == 1);
}

// Property: MST cost matches a naive reference (all spanning trees not
// enumerable, but Kruskal-vs-Prim style cross-check: cost of MST is
// invariant under implementation).
class MstPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MstPropertyTest, SpansAndIsAcyclic) {
  const auto g = testing::random_connected_graph(30, 60, GetParam());
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.size(), 29u);  // connected: n-1 edges
  UnionFind uf(g.node_count());
  for (const EdgeId e : mst) {
    EXPECT_TRUE(uf.unite(g.edge(e).u, g.edge(e).v)) << "cycle in MST";
  }
  EXPECT_EQ(uf.component_count(), 1);
}

TEST_P(MstPropertyTest, CutProperty) {
  // For every MST edge, removing it splits the tree; the edge must be a
  // minimum-weight crossing edge of that cut.
  const auto g = testing::random_connected_graph(20, 40, GetParam());
  const auto mst = kruskal_mst(g);
  for (const EdgeId drop : mst) {
    UnionFind uf(g.node_count());
    for (const EdgeId e : mst) {
      if (e != drop) uf.unite(g.edge(e).u, g.edge(e).v);
    }
    Weight best_crossing = kInfiniteWeight;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (!uf.same(g.edge(e).u, g.edge(e).v)) {
        best_crossing = std::min(best_crossing, g.edge_weight(e));
      }
    }
    EXPECT_DOUBLE_EQ(g.edge_weight(drop), best_crossing);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstPropertyTest, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace fpr
