#include "analyze.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

// Fixture-driven proof that every fpr-analyze rule is live (fires on a
// minimal violating fixture tree), precise (does not fire on the adjacent
// non-violations), and suppressible (the suppressed twin reports only
// documented exceptions), mirroring tests/lint/lint_test.cpp. The final
// tests lock the real tree against the committed manifest: src/, tools/ and
// bench/ must stay at zero unsuppressed findings — the same gate CI runs.

namespace fpr::analyze {
namespace {

using lint::Finding;

Manifest load_fixture_manifest(const std::string& family) {
  Manifest manifest;
  std::string error;
  const std::string path =
      std::string(FPR_ANALYZE_FIXTURES) + "/" + family + "/manifest.toml";
  EXPECT_TRUE(load_manifest(path, manifest, error)) << error;
  return manifest;
}

std::vector<Finding> analyze_fixture(const std::string& family,
                                     const std::string& sub_path = ".") {
  const Manifest manifest = load_fixture_manifest(family);
  return analyze_tree(std::string(FPR_ANALYZE_FIXTURES) + "/" + family, manifest,
                      {sub_path});
}

std::vector<Finding> unsuppressed(const std::vector<Finding>& findings) {
  std::vector<Finding> out;
  std::copy_if(findings.begin(), findings.end(), std::back_inserter(out),
               [](const Finding& f) { return !f.suppressed; });
  return out;
}

bool has_finding(const std::vector<Finding>& findings, const std::string& file,
                 const std::string& rule, const std::string& message_part) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.file == file && f.rule == rule &&
           f.message.find(message_part) != std::string::npos;
  });
}

// --- catalog -------------------------------------------------------------

TEST(AnalyzeCatalog, ThreeRulesRegisteredWithLint) {
  const auto& catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog[0].name, "layering");
  EXPECT_EQ(catalog[1].name, "dyadic-float");
  EXPECT_EQ(catalog[2].name, "global-state");
  // Shared suppression protocol: fpr-lint must accept allow() directives
  // naming fpr-analyze rules, or suppressions in src/ would be flagged as
  // unknown-rule directives by the other tool.
  for (const auto& rule : catalog) {
    EXPECT_TRUE(lint::is_known_rule(rule.name)) << rule.name;
    EXPECT_FALSE(rule.summary.empty());
  }
}

// --- manifest parsing ----------------------------------------------------

TEST(AnalyzeManifest, ParsesModulesFrozenAndScopes) {
  Manifest manifest;
  std::string error;
  const std::string text =
      "[module.base]\n"
      "paths = [\"src/base/\"]\n"
      "deps = []\n"
      "[module.top]\n"
      "paths = [\n  \"src/top/\",\n  \"src/extra/\",\n]\n"  // multi-line array
      "deps = [\"base\"]\n"
      "[frozen]\n"
      "\"src/base/ref.hpp\" = [\"src/top/user.cpp\"]\n"
      "[include]\n"
      "roots = [\"src\"]\n"
      "[dyadic]\n"
      "paths = [\"src/top/\"]\n"
      "[globals]\n"
      "paths = [\"src/\"]\n"
      "allow_paths = [\"src/base/metrics.\"]\n"
      "allow_namespaces = [\"testhooks\"]\n";
  ASSERT_TRUE(parse_manifest(text, manifest, error)) << error;
  ASSERT_EQ(manifest.modules.size(), 2u);
  EXPECT_EQ(manifest.modules[1].paths.size(), 2u);
  ASSERT_EQ(manifest.frozen.size(), 1u);
  EXPECT_EQ(manifest.frozen[0].header, "src/base/ref.hpp");
  EXPECT_EQ(manifest.include_roots, std::vector<std::string>{"src"});
  EXPECT_EQ(manifest.dyadic_paths, std::vector<std::string>{"src/top/"});
  EXPECT_EQ(manifest.globals_allow_namespaces, std::vector<std::string>{"testhooks"});
}

TEST(AnalyzeManifest, RejectsUnknownDepDuplicateAndCycle) {
  Manifest manifest;
  std::string error;
  EXPECT_FALSE(parse_manifest("[module.a]\npaths = [\"a/\"]\ndeps = [\"ghost\"]\n",
                              manifest, error));
  EXPECT_NE(error.find("unknown module"), std::string::npos) << error;

  EXPECT_FALSE(parse_manifest(
      "[module.a]\npaths = [\"a/\"]\ndeps = []\n[module.a]\npaths = [\"b/\"]\ndeps = []\n",
      manifest, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  EXPECT_FALSE(parse_manifest(
      "[module.a]\npaths = [\"a/\"]\ndeps = [\"b\"]\n"
      "[module.b]\npaths = [\"b/\"]\ndeps = [\"a\"]\n",
      manifest, error));
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;

  EXPECT_FALSE(parse_manifest("", manifest, error));
  EXPECT_FALSE(parse_manifest("[mystery]\nkey = [\"x\"]\n", manifest, error));
}

TEST(AnalyzeManifest, ModuleOfPicksLongestPrefix) {
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(parse_manifest(
      "[module.core]\npaths = [\"src/core/\"]\ndeps = []\n"
      "[module.core_base]\npaths = [\"src/core/contract.hpp\"]\ndeps = []\n",
      manifest, error))
      << error;
  const Module* base = module_of(manifest, "src/core/contract.hpp");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->name, "core_base");
  const Module* core = module_of(manifest, "src/core/metrics.cpp");
  ASSERT_NE(core, nullptr);
  EXPECT_EQ(core->name, "core");
  EXPECT_EQ(module_of(manifest, "bench/other.cpp"), nullptr);
}

// --- layering ------------------------------------------------------------

TEST(AnalyzeLayering, FiresOnEveryViolationClass) {
  const auto findings = unsuppressed(analyze_fixture("layering_bad"));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(has_finding(findings, "base/inverted.cpp", "layering", "layer inversion"));
  EXPECT_TRUE(has_finding(findings, "top/rogue.cpp", "layering", "frozen reference header"));
  EXPECT_TRUE(has_finding(findings, "top/missing.cpp", "layering", "cannot resolve"));
  EXPECT_TRUE(has_finding(findings, "stray/orphan.cpp", "layering", "not covered"));
  const bool cycle = has_finding(findings, "top/cyc_x.hpp", "layering", "include cycle") ||
                     has_finding(findings, "top/cyc_y.hpp", "layering", "include cycle");
  EXPECT_TRUE(cycle);
}

TEST(AnalyzeLayering, CleanTreeIncludingPinnedFrozenConsumerIsClean) {
  const auto findings = analyze_fixture("layering_clean");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeLayering, SuppressionCoversTheEdgeAndKeepsTheReason) {
  const auto findings = analyze_fixture("layering_suppressed");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_FALSE(findings[0].suppress_reason.empty());
}

// --- dyadic-float --------------------------------------------------------

TEST(AnalyzeDyadic, FiresOnNonDyadicLiteralsAndNonPow2Divisors) {
  const auto findings = unsuppressed(analyze_fixture("dyadic", "src"));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(has_finding(findings, "src/dyadic_bad.cpp", "dyadic-float", "literal 0.1"));
  EXPECT_TRUE(has_finding(findings, "src/dyadic_bad.cpp", "dyadic-float", "literal 1e-3f"));
  EXPECT_TRUE(has_finding(findings, "src/dyadic_bad.cpp", "dyadic-float", "constant 3.0"));
  EXPECT_TRUE(has_finding(findings, "src/dyadic_bad.cpp", "dyadic-float", "constant 10"));
  EXPECT_TRUE(has_finding(findings, "src/dyadic_bad.cpp", "dyadic-float", "constant 100.0"));
  // Precision: the clean file (1.5, 4096.0, hex floats, x/2.0, integer /10
  // without FP context, comments mentioning 0.1) contributes nothing.
  for (const auto& f : findings) EXPECT_EQ(f.file, "src/dyadic_bad.cpp");
}

TEST(AnalyzeDyadic, SuppressionCoversTheDisplayOnlyConstant) {
  const auto all = analyze_fixture("dyadic", "src/dyadic_suppressed.cpp");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
  EXPECT_EQ(all[0].rule, "dyadic-float");
}

// --- global-state --------------------------------------------------------

TEST(AnalyzeGlobals, FiresOnNamespaceScopeAndFunctionLocalStatics) {
  const auto findings = unsuppressed(analyze_fixture("globals", "src"));
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(has_finding(findings, "src/globals_bad.cpp", "global-state", "'g_counter'"));
  EXPECT_TRUE(has_finding(findings, "src/globals_bad.cpp", "global-state", "'g_scratch'"));
  EXPECT_TRUE(has_finding(findings, "src/globals_bad.cpp", "global-state", "'g_flag'"));
  EXPECT_TRUE(has_finding(findings, "src/globals_bad.cpp", "global-state", "'calls'"));
  // Precision: constants, members, locals and the testhooks namespace in the
  // adjacent files contribute nothing.
  for (const auto& f : findings) EXPECT_EQ(f.file, "src/globals_bad.cpp");
}

TEST(AnalyzeGlobals, SuppressionCoversBothScopes) {
  const auto all = analyze_fixture("globals", "src/globals_suppressed.cpp");
  ASSERT_EQ(all.size(), 2u);
  for (const auto& f : all) {
    EXPECT_TRUE(f.suppressed);
    EXPECT_EQ(f.rule, "global-state");
    EXPECT_FALSE(f.suppress_reason.empty());
  }
}

// --- the real tree -------------------------------------------------------

TEST(AnalyzeTree, CommittedManifestParsesAndCoversRealModules) {
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(load_manifest(
      std::string(FPR_SOURCE_ROOT) + "/tools/analyze/layering.toml", manifest, error))
      << error;
  // The core split that makes the DAG acyclic: contract.hpp sits below
  // graph, metrics above.
  const Module* base = module_of(manifest, "src/core/contract.hpp");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->name, "core_base");
  const Module* core = module_of(manifest, "src/core/metrics.cpp");
  ASSERT_NE(core, nullptr);
  EXPECT_EQ(core->name, "core");
  ASSERT_EQ(manifest.frozen.size(), 1u);
  EXPECT_EQ(manifest.frozen[0].header, "src/graph/dijkstra_reference.hpp");
}

TEST(AnalyzeTree, SrcToolsAndBenchHaveNoUnsuppressedFindings) {
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(load_manifest(
      std::string(FPR_SOURCE_ROOT) + "/tools/analyze/layering.toml", manifest, error))
      << error;
  const auto findings =
      analyze_tree(FPR_SOURCE_ROOT, manifest, {"src", "tools", "bench"});
  std::string report;
  std::size_t count = 0;
  for (const auto& f : findings) {
    if (f.suppressed) continue;
    ++count;
    report += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message + "\n";
  }
  EXPECT_EQ(count, 0u) << "fpr-analyze must stay clean on the real tree "
                          "(fix the finding or add an inline allow() with a reason):\n"
                       << report;
  // Every suppression carries its mandatory reason.
  for (const auto& f : findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.suppress_reason.empty()) << f.file;
    }
  }
}

}  // namespace
}  // namespace fpr::analyze
