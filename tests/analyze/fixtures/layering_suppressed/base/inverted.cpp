// fpr-lint: allow(layering) transitional edge, tracked for removal in the cleanup issue
#include "top/widget.hpp"

int inverted() { return widget(); }
