#pragma once
inline int widget() { return 7; }
