#pragma once
#include "base/a.hpp"
// #include "base/frozen.hpp" — commented out, must NOT count as an edge
inline int widget() { return base_value(); }
