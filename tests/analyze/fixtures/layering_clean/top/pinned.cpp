#include "base/frozen.hpp"
#include "top/widget.hpp"

int pinned() { return frozen_reference() + widget(); }
