// VIOLATION: no module's paths cover stray/.
int orphan() { return -1; }
