#pragma once
inline int base_value() { return 1; }
