#pragma once
inline int frozen_reference() { return 42; }
