#include "top/widget.hpp"  // VIOLATION: base may not depend on top

int inverted() { return widget(); }
