#include "base/frozen.hpp"  // VIOLATION: not a pinned consumer

int rogue() { return frozen_reference(); }
