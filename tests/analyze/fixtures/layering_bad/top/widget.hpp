#pragma once
#include "base/a.hpp"  // fine: top -> base is in the DAG
inline int widget() { return base_value(); }
