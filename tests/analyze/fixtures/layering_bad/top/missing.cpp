#include "nowhere/gone.hpp"  // VIOLATION: unresolvable include

int missing() { return 0; }
