#include "base/frozen.hpp"  // fine: this file is the pinned consumer

int pinned() { return frozen_reference(); }
