#pragma once
#include "top/cyc_y.hpp"  // VIOLATION: x -> y -> x include cycle
inline int cyc_x() { return 1; }
