#pragma once
#include "top/cyc_x.hpp"  // VIOLATION: y -> x -> y include cycle
inline int cyc_y() { return 2; }
