// fpr-lint: allow(global-state) process-wide cache documented in the design notes
int g_cache_epoch = 0;

int epoch() {
  // fpr-lint: allow(global-state) memoized identity table, reset by tests via clear_epoch()
  static int table = 0;
  return table + g_cache_epoch;
}
