#include <vector>

int g_counter = 0;                 // VIOLATION: namespace-scope mutable
std::vector<int> g_scratch;        // VIOLATION: namespace-scope mutable

namespace impl {
bool g_flag{false};                // VIOLATION: nested namespace is still global
}

int bump() {
  static int calls = 0;            // VIOLATION: function-local static
  return ++calls + g_counter + static_cast<int>(g_scratch.size()) + (impl::g_flag ? 1 : 0);
}
