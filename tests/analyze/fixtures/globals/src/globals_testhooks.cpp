#include <atomic>

// The testhooks namespace is the sanctioned home for global knobs.
namespace testhooks {
std::atomic<int> g_fail_after{0};
std::atomic<bool> g_force_conflict{false};
}  // namespace testhooks

int knobs() { return testhooks::g_fail_after.load() + (testhooks::g_force_conflict.load() ? 1 : 0); }
