#include <array>
#include <string>

// Constants, types, functions and members are all fine.
const int kAnswer = 42;
constexpr double kHalf = 0.5;
static const std::array<int, 3> kTable = {1, 2, 3};

namespace impl {
constexpr char kName[] = "clean";
}

struct Widget {
  int mutable_member = 0;  // object state, not program state
  static int count(Widget w) { return w.mutable_member; }
};

int compute(int x);  // declaration, not a variable

int compute(int x) {
  int local = x + kAnswer;              // automatic storage is fine
  static const std::string kLabel = "w";  // function-local constant is fine
  for (int i = 0; i < 3; ++i) local += kTable[static_cast<std::size_t>(i)];
  return local + static_cast<int>(kLabel.size()) + static_cast<int>(kHalf) +
         static_cast<int>(sizeof(impl::kName));
}
