// Mentioning 0.1 or 3.3 in a comment is fine — only code counts.
double half() { return 0.5; }
double quarter() { return 0.25; }
double three_halves() { return 1.5; }        // 3/2: dyadic though not a power of two
double big() { return 4096.0; }
double tiny() { return 0x1.8p-3; }           // hex float: dyadic by construction
double halve(double v) { return v / 2.0; }
double shift(double v) { return v / 4096.0; }
double scale(double v) { return v / 0.25; }  // PoT reciprocal is fine too
unsigned guard(unsigned v) { return v / 10; }  // integer division, no FP context
int identifier_x2(int x2) { return x2; }     // digit inside an identifier
