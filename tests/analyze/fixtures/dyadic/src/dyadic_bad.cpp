double literal_tenth() { return 0.1; }            // VIOLATION: 1/10 is not m/2^n
float literal_milli() { return 1e-3f; }           // VIOLATION: 1/1000
double divide_by_three(double v) { return v / 3.0; }   // VIOLATION: non-PoT divisor
double divide_by_ten(double v) { return v / 10; }      // VIOLATION: int divisor, FP context
double scaled(double v) {
  v /= 100.0;  // VIOLATION: compound divide by non-PoT
  return v;
}
