// fpr-lint: allow(dyadic-float) display-only percentage, never enters routing cost
double percent(double v) { return v * 0.01; }
