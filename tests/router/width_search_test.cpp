#include "router/width_search.hpp"

#include <gtest/gtest.h>

#include "experiments/tables23.hpp"
#include "netlist/synth.hpp"

namespace fpr {
namespace {

Circuit crossing_circuit(int lanes) {
  Circuit c;
  c.rows = c.cols = 4;
  for (int i = 0; i < lanes; ++i) {
    c.nets.push_back({{0, i % 4}, {{3, (i + 1) % 4}}});
  }
  return c;
}

TEST(WidthSearchTest, FindsMinimalWidth) {
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  RouterOptions router;
  router.max_passes = 6;
  WidthSearchOptions search;
  search.max_width = 8;
  const auto result = find_min_channel_width(base, crossing_circuit(6), router, search);
  ASSERT_GT(result.min_width, 0);
  EXPECT_TRUE(result.at_min_width.success);

  // Verify minimality: one narrower must fail.
  if (result.min_width > search.min_width) {
    Device device(base.with_width(result.min_width - 1));
    EXPECT_FALSE(route_circuit(device, crossing_circuit(6), router).success);
  }
}

TEST(WidthSearchTest, UnroutableInRangeReturnsMinusOne) {
  // Five nets out of one block exceed the four adjacent wires of W=1;
  // cap the search at W=1 so no feasible width is in range.
  Circuit c;
  c.rows = c.cols = 2;
  for (int i = 0; i < 5; ++i) c.nets.push_back({{0, 0}, {{1, 1}}});
  RouterOptions router;
  router.max_passes = 3;
  WidthSearchOptions search;
  search.min_width = 1;
  search.max_width = 1;
  const auto result =
      find_min_channel_width(ArchSpec::xc4000(2, 2, 1), c, router, search);
  EXPECT_EQ(result.min_width, -1);
}

TEST(WidthSearchTest, AttemptTraceIsBinarySearchSized) {
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  RouterOptions router;
  router.max_passes = 4;
  WidthSearchOptions search;
  search.max_width = 16;
  const auto result = find_min_channel_width(base, crossing_circuit(4), router, search);
  ASSERT_GT(result.min_width, 0);
  // log2(16) + 1 probes at most, plus the initial max-width check.
  EXPECT_LE(result.attempts.size(), 6u);
}

TEST(WidthSearchTest, MonotoneOnSyntheticCircuit) {
  // The minimum width found must route, and every wider device must too.
  const auto& profile = xc4000_profiles()[2];  // term1
  const Circuit c = synthesize_circuit(profile, 21);
  RouterOptions router;
  router.max_passes = 5;
  WidthSearchOptions search;
  search.max_width = 16;
  const auto result =
      find_min_channel_width(arch_for(profile, ArchFamily::kXc4000), c, router, search);
  ASSERT_GT(result.min_width, 0);
  Device wider(arch_for(profile, ArchFamily::kXc4000).with_width(result.min_width + 2));
  EXPECT_TRUE(route_circuit(wider, c, router).success);
}

}  // namespace
}  // namespace fpr
