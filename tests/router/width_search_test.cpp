#include "router/width_search.hpp"

#include <gtest/gtest.h>

#include "experiments/tables23.hpp"
#include "netlist/synth.hpp"

namespace fpr {
namespace {

Circuit crossing_circuit(int lanes) {
  Circuit c;
  c.rows = c.cols = 4;
  for (int i = 0; i < lanes; ++i) {
    c.nets.push_back({{0, i % 4}, {{3, (i + 1) % 4}}});
  }
  return c;
}

TEST(WidthSearchTest, FindsMinimalWidth) {
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  RouterOptions router;
  router.max_passes = 6;
  WidthSearchOptions search;
  search.max_width = 8;
  const auto result = find_min_channel_width(base, crossing_circuit(6), router, search);
  ASSERT_GT(result.min_width, 0);
  EXPECT_TRUE(result.at_min_width.success);

  // Verify minimality: one narrower must fail.
  if (result.min_width > search.min_width) {
    Device device(base.with_width(result.min_width - 1));
    EXPECT_FALSE(route_circuit(device, crossing_circuit(6), router).success);
  }
}

TEST(WidthSearchTest, UnroutableInRangeReturnsMinusOne) {
  // Five nets out of one block exceed the four adjacent wires of W=1;
  // cap the search at W=1 so no feasible width is in range.
  Circuit c;
  c.rows = c.cols = 2;
  for (int i = 0; i < 5; ++i) c.nets.push_back({{0, 0}, {{1, 1}}});
  RouterOptions router;
  router.max_passes = 3;
  WidthSearchOptions search;
  search.min_width = 1;
  search.max_width = 1;
  const auto result =
      find_min_channel_width(ArchSpec::xc4000(2, 2, 1), c, router, search);
  EXPECT_EQ(result.min_width, -1);
}

TEST(WidthSearchTest, AttemptTraceIsBinarySearchSized) {
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  RouterOptions router;
  router.max_passes = 4;
  WidthSearchOptions search;
  search.max_width = 16;
  const auto result = find_min_channel_width(base, crossing_circuit(4), router, search);
  ASSERT_GT(result.min_width, 0);
  // log2(16) + 1 probes at most, plus the initial max-width check.
  EXPECT_LE(result.attempts.size(), 6u);
}

TEST(WidthSearchTest, DegenerateRangesAreGuarded) {
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  RouterOptions router;
  router.max_passes = 3;

  WidthSearchOptions inverted;
  inverted.min_width = 5;
  inverted.max_width = 2;
  auto r = find_min_channel_width(base, crossing_circuit(2), router, inverted);
  EXPECT_EQ(r.min_width, -1);
  EXPECT_TRUE(r.attempts.empty());  // no nonsensical widths probed

  WidthSearchOptions zero_max;
  zero_max.min_width = 1;
  zero_max.max_width = 0;
  r = find_min_channel_width(base, crossing_circuit(2), router, zero_max);
  EXPECT_EQ(r.min_width, -1);
  EXPECT_TRUE(r.attempts.empty());

  // min_width < 1 clamps to 1: same trace as an explicit min_width = 1.
  WidthSearchOptions negative;
  negative.min_width = -7;
  negative.max_width = 8;
  WidthSearchOptions one;
  one.min_width = 1;
  one.max_width = 8;
  const auto clamped = find_min_channel_width(base, crossing_circuit(2), router, negative);
  const auto reference = find_min_channel_width(base, crossing_circuit(2), router, one);
  EXPECT_EQ(clamped.min_width, reference.min_width);
  EXPECT_EQ(clamped.attempts, reference.attempts);
}

TEST(WidthSearchTest, ParallelMatchesSerialExactly) {
  // The speculative parallel search must reproduce the serial search
  // bit-identically: same min_width, same attempts trace (order included),
  // same per-net routing in the result at the minimum width.
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  struct Case {
    Circuit circuit;
    int max_width;
  };
  const std::vector<Case> cases{
      {crossing_circuit(6), 8},
      {crossing_circuit(4), 16},
      {crossing_circuit(3), 11},
  };
  RouterOptions router;
  router.max_passes = 5;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    WidthSearchOptions serial_opts;
    serial_opts.max_width = cases[ci].max_width;
    serial_opts.threads = 1;
    const auto serial = find_min_channel_width(base, cases[ci].circuit, router, serial_opts);
    for (const int threads : {2, 4, 8}) {
      WidthSearchOptions parallel_opts = serial_opts;
      parallel_opts.threads = threads;
      const auto parallel =
          find_min_channel_width(base, cases[ci].circuit, router, parallel_opts);
      SCOPED_TRACE("case " + std::to_string(ci) + " threads " + std::to_string(threads));
      EXPECT_EQ(parallel.min_width, serial.min_width);
      EXPECT_EQ(parallel.attempts, serial.attempts);
      EXPECT_EQ(parallel.at_min_width.success, serial.at_min_width.success);
      EXPECT_EQ(parallel.at_min_width.passes, serial.at_min_width.passes);
      EXPECT_EQ(parallel.at_min_width.total_wirelength, serial.at_min_width.total_wirelength);
      ASSERT_EQ(parallel.at_min_width.nets.size(), serial.at_min_width.nets.size());
      for (std::size_t n = 0; n < serial.at_min_width.nets.size(); ++n) {
        EXPECT_EQ(parallel.at_min_width.nets[n].routed(), serial.at_min_width.nets[n].routed());
        EXPECT_EQ(parallel.at_min_width.nets[n].edges, serial.at_min_width.nets[n].edges);
      }
    }
  }
}

TEST(WidthSearchTest, MonotoneOnSyntheticCircuit) {
  // The minimum width found must route, and every wider device must too.
  const auto& profile = xc4000_profiles()[2];  // term1
  const Circuit c = synthesize_circuit(profile, 21);
  RouterOptions router;
  router.max_passes = 5;
  WidthSearchOptions search;
  search.max_width = 16;
  const auto result =
      find_min_channel_width(arch_for(profile, ArchFamily::kXc4000), c, router, search);
  ASSERT_GT(result.min_width, 0);
  Device wider(arch_for(profile, ArchFamily::kXc4000).with_width(result.min_width + 2));
  EXPECT_TRUE(route_circuit(wider, c, router).success);
}

}  // namespace
}  // namespace fpr
