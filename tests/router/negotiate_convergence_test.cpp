// Convergence-regression tier for the negotiated-congestion router
// (DESIGN.md §13), pinned on Table 2/3 circuits at fixed synthesis seeds:
//  - the run converges (zero wire overflow) at the paper's minimum channel
//    width, in a pinned number of passes (everything is deterministic, so
//    the pins are exact — a drift in passes-to-converge is a behavior
//    change that must be reviewed, not absorbed);
//  - the overflow trend is monotone non-increasing and ends at zero;
//  - the minimum channel width the negotiated mode needs is no worse than
//    the paper mode's on the same circuit (any future regression must
//    update the pin with a documented delta).
// Numbers were measured on the seed implementation; see also
// bench/negotiate.cpp, which reports the full-table comparison.

#include <gtest/gtest.h>

#include "check/oracles.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"
#include "router/width_search.hpp"

namespace fpr {
namespace {

enum class ArchFamily3or4 { kXc3000, kXc4000 };

// The measured pins (seed implementation, fixed synthesis seeds below).
// These are EXACT: the negotiated loop is deterministic, so any drift is a
// behavior change to review and re-pin deliberately.
constexpr int kBuscPasses = 17;
constexpr int kDmaPasses = 5;
constexpr int kTerm1Passes = 2;
// Min-width pins: negotiation WINS a track on busc (7 vs 8) and pays one
// on term1 (6 vs 5) — the documented delta; see BENCH_negotiate.json for
// the full table.
constexpr int kBuscPaperWidth = 8;
constexpr int kBuscNegotiatedWidth = 7;
constexpr int kTerm1PaperWidth = 5;
constexpr int kTerm1NegotiatedWidth = 6;

RouterOptions negotiated_options() {
  RouterOptions o;
  o.mode = RouterMode::kNegotiated;
  o.negotiate_passes = 20;  // same feasibility threshold as the paper loop
  return o;
}

/// Shared body: route `profile` at its paper IKMB width in negotiated mode
/// and pin the convergence contract plus the exact passes-to-converge.
void expect_converges(const CircuitProfile& profile, ArchFamily3or4 family, unsigned seed,
                      int expected_passes) {
  const ArchSpec arch = family == ArchFamily3or4::kXc3000
                            ? ArchSpec::xc3000(profile.rows, profile.cols, profile.paper_ikmb)
                            : ArchSpec::xc4000(profile.rows, profile.cols, profile.paper_ikmb);
  const Circuit circuit = synthesize_circuit(profile, seed);
  const RouterOptions options = negotiated_options();
  Device device(arch);
  const RoutingResult r = route_circuit(device, circuit, options);

  EXPECT_TRUE(r.success) << profile.name << " failed to converge at width "
                         << profile.paper_ikmb;
  ASSERT_FALSE(r.overflow_trend.empty());
  EXPECT_EQ(r.overflow_trend.back(), 0) << "converged run must end at zero overflow";
  for (std::size_t i = 1; i < r.overflow_trend.size(); ++i) {
    EXPECT_LE(r.overflow_trend[i], r.overflow_trend[i - 1])
        << "overflow trend regressed at pass " << i + 1;
  }
  EXPECT_EQ(static_cast<int>(r.overflow_trend.size()), r.passes);
  EXPECT_EQ(r.passes, expected_passes)
      << profile.name << ": passes-to-converge drifted — review and re-pin";

  const auto check = check::check_routing_feasibility(arch, circuit, r, options);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST(NegotiateConvergenceTest, BuscConvergesAtPaperWidth) {
  const CircuitProfile& profile = xc3000_profiles()[0];
  ASSERT_EQ(profile.name, "busc");
  expect_converges(profile, ArchFamily3or4::kXc3000, 31, kBuscPasses);
}

TEST(NegotiateConvergenceTest, DmaConvergesAtPaperWidth) {
  const CircuitProfile& profile = xc3000_profiles()[1];
  ASSERT_EQ(profile.name, "dma");
  expect_converges(profile, ArchFamily3or4::kXc3000, 31, kDmaPasses);
}

TEST(NegotiateConvergenceTest, Term1ConvergesAtPaperWidth) {
  const CircuitProfile& profile = xc4000_profiles()[2];
  ASSERT_EQ(profile.name, "term1");
  expect_converges(profile, ArchFamily3or4::kXc4000, 7, kTerm1Passes);
}

TEST(NegotiateConvergenceTest, BuscMinWidthIsNoWorseThanPaperMode) {
  const CircuitProfile& profile = xc3000_profiles()[0];
  const ArchSpec base = ArchSpec::xc3000(profile.rows, profile.cols, 1);
  const Circuit circuit = synthesize_circuit(profile, 31);
  WidthSearchOptions search;
  search.max_width = 16;

  RouterOptions paper;
  paper.max_passes = 20;
  const int paper_width = find_min_channel_width(base, circuit, paper, search).min_width;

  const auto negotiated = find_min_channel_width(base, circuit, negotiated_options(), search);
  ASSERT_GT(negotiated.min_width, 0);
  ASSERT_GT(paper_width, 0);
  EXPECT_LE(negotiated.min_width, paper_width);
  // Exact pins: a change in either is a routing-quality change to review.
  EXPECT_EQ(paper_width, kBuscPaperWidth);
  EXPECT_EQ(negotiated.min_width, kBuscNegotiatedWidth);
  // The witness at the minimum width is a converged negotiated solution.
  EXPECT_TRUE(negotiated.at_min_width.success);
  ASSERT_FALSE(negotiated.at_min_width.overflow_trend.empty());
  EXPECT_EQ(negotiated.at_min_width.overflow_trend.back(), 0);
}

TEST(NegotiateConvergenceTest, Term1MinWidthDeltaIsPinned) {
  const CircuitProfile& profile = xc4000_profiles()[2];
  const ArchSpec base = ArchSpec::xc4000(profile.rows, profile.cols, 1);
  const Circuit circuit = synthesize_circuit(profile, 7);
  WidthSearchOptions search;
  search.max_width = 16;

  RouterOptions paper;
  paper.max_passes = 20;
  const int paper_width = find_min_channel_width(base, circuit, paper, search).min_width;

  const auto negotiated = find_min_channel_width(base, circuit, negotiated_options(), search);
  ASSERT_GT(negotiated.min_width, 0);
  ASSERT_GT(paper_width, 0);
  // Documented delta: on term1 the negotiated mode currently pays one
  // track over paper mode (it wins one on busc). A drift past the pinned
  // +1 is a real routing-quality regression.
  EXPECT_LE(negotiated.min_width, paper_width + 1);
  EXPECT_EQ(paper_width, kTerm1PaperWidth);
  EXPECT_EQ(negotiated.min_width, kTerm1NegotiatedWidth);
}

}  // namespace
}  // namespace fpr
