// Determinism contract of the net-parallel wave scheduler (DESIGN.md §11):
// route_circuit produces byte-identical results — per-net records, pass
// count, move-to-front order, work accounting, final device state — at
// every RouterOptions::threads value, across pristine, faulted, and
// budget-starved scenarios, with every cell replayed through the
// feasibility oracle. Plus engagement tests proving the speculation
// machinery actually runs (a determinism test against a scheduler that
// never engages would be vacuous).

#include <gtest/gtest.h>

#include <vector>

#include "check/oracles.hpp"
#include "core/metrics.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

namespace fpr {
namespace {

/// Field-by-field equality over everything the determinism contract
/// promises (RoutingResult has no operator==; spelling the fields out also
/// localizes a failure to the field that diverged).
void expect_identical(const RoutingResult& a, const RoutingResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.total_wire_nodes, b.total_wire_nodes);
  EXPECT_EQ(a.total_max_pathlength, b.total_max_pathlength);
  EXPECT_EQ(a.total_optimal_max_pathlength, b.total_optimal_max_pathlength);
  EXPECT_EQ(a.total_physical_wirelength, b.total_physical_wirelength);
  EXPECT_EQ(a.total_physical_max_path, b.total_physical_max_path);
  EXPECT_EQ(a.nets_rerouted_around_faults, b.nets_rerouted_around_faults);
  EXPECT_EQ(a.nets_blocked_by_fault, b.nets_blocked_by_fault);
  EXPECT_EQ(a.nets_aborted_budget, b.nets_aborted_budget);
  EXPECT_EQ(a.detour_wirelength_overhead, b.detour_wirelength_overhead);
  EXPECT_EQ(a.work_used, b.work_used);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  EXPECT_EQ(a.net_order, b.net_order);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].status, b.nets[i].status) << "net " << i;
    EXPECT_EQ(a.nets[i].retries, b.nets[i].retries) << "net " << i;
    EXPECT_EQ(a.nets[i].blocked_sink, b.nets[i].blocked_sink) << "net " << i;
    EXPECT_EQ(a.nets[i].edges, b.nets[i].edges) << "net " << i;
    EXPECT_EQ(a.nets[i].wirelength, b.nets[i].wirelength) << "net " << i;
    EXPECT_EQ(a.nets[i].max_pathlength, b.nets[i].max_pathlength) << "net " << i;
    EXPECT_EQ(a.nets[i].optimal_max_pathlength, b.nets[i].optimal_max_pathlength)
        << "net " << i;
    EXPECT_EQ(a.nets[i].physical_wirelength, b.nets[i].physical_wirelength) << "net " << i;
    EXPECT_EQ(a.nets[i].physical_max_path, b.nets[i].physical_max_path) << "net " << i;
    EXPECT_EQ(a.nets[i].wire_nodes_used, b.nets[i].wire_nodes_used) << "net " << i;
  }
}

/// Routes `circuit` at threads = 1, 2, 4, 8 on fresh devices and asserts
/// the full determinism contract between the serial reference and every
/// parallel run — including the final device state (wire consumption and
/// exact edge-weight distribution) — then replays the serial result
/// through the feasibility oracle.
void expect_thread_count_invariant(const ArchSpec& arch, const Circuit& circuit,
                                   const RouterOptions& base,
                                   const FaultSpec* faults = nullptr) {
  RouterOptions serial = base;
  serial.threads = 1;
  Device reference(arch);
  if (faults != nullptr) reference.install_faults(*faults);
  const RoutingResult expected = route_circuit(reference, circuit, serial);

  for (const int threads : {2, 4, 8}) {
    RouterOptions parallel = base;
    parallel.threads = threads;
    Device device(arch);
    if (faults != nullptr) device.install_faults(*faults);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const RoutingResult actual = route_circuit(device, circuit, parallel);
    expect_identical(expected, actual);
    EXPECT_EQ(device.used_wire_count(), reference.used_wire_count());
    // Bit-exact weights: the congestion-penalty commits happened in the
    // same order with the same values.
    EXPECT_EQ(device.graph().mean_active_edge_weight(),
              reference.graph().mean_active_edge_weight());
  }

  const auto check = check::check_routing_feasibility(arch, circuit, expected, serial, faults);
  EXPECT_TRUE(check.ok()) << check.message();
}

/// A circuit whose nets cluster in the four quadrants of the array —
/// spatially independent by construction, so the wave scheduler has real
/// parallelism to find.
Circuit quadrant_circuit(int n) {
  Circuit c;
  c.name = "quadrants";
  c.rows = c.cols = 2 * n;
  for (int q = 0; q < 4; ++q) {
    const int bx = (q % 2) * n;
    const int by = (q / 2) * n;
    for (int i = 0; i + 1 < n; ++i) {
      c.nets.push_back({{bx + i, by + i}, {{bx + i + 1, by + i}, {bx + i, by + i + 1}}});
      c.nets.push_back({{bx + n - 1 - i, by + i}, {{bx + n - 1 - i, by + i + 1}}});
    }
  }
  return c;
}

Circuit table_circuit(const CircuitProfile& profile, unsigned seed) {
  return synthesize_circuit(profile, seed);
}

TEST(ParallelRouteTest, QuadrantCircuitIsThreadCountInvariant) {
  const int n = 5;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  RouterOptions options;
  options.max_passes = 6;
  expect_thread_count_invariant(arch, quadrant_circuit(n), options);
}

TEST(ParallelRouteTest, SpeculationEngagesAndAddsUp) {
  const int n = 5;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  RouterOptions options;
  options.max_passes = 6;
  options.threads = 4;
  counters().reset();
  Device device(arch);
  const RoutingResult r = route_circuit(device, quadrant_circuit(n), options);
  EXPECT_TRUE(r.success);
  const auto waves = counters().parallel_waves.load();
  const auto speculated = counters().nets_speculated.load();
  const auto accepted = counters().nets_spec_accepted.load();
  const auto recomputed = counters().nets_spec_recomputed.load();
  EXPECT_GT(waves, 0u) << "wave scheduler never engaged: the determinism "
                          "tests in this suite would be vacuous";
  EXPECT_GT(speculated, 0u);
  EXPECT_EQ(accepted + recomputed, speculated);
  // Quadrant-disjoint nets validate cleanly nearly always; a scheduler that
  // recomputes everything is formally correct but useless.
  EXPECT_GT(accepted, 0u);
}

TEST(ParallelRouteTest, SerialThreadsNeverSpeculate) {
  counters().reset();
  RouterOptions options;
  options.threads = 1;
  Device device(ArchSpec::xc4000(6, 6, 4));
  route_circuit(device, quadrant_circuit(3), options);
  EXPECT_EQ(counters().parallel_waves.load(), 0u);
  EXPECT_EQ(counters().nets_speculated.load(), 0u);
}

TEST(ParallelRouteTest, Table2CircuitIsThreadCountInvariant) {
  // busc, the smallest Table 2 (3000-series) circuit, at the paper's CGE
  // width so congestion (and move-to-front reordering) is actually
  // exercised rather than everything routing in one clean pass.
  const CircuitProfile& profile = xc3000_profiles()[0];
  ASSERT_EQ(profile.name, "busc");
  const ArchSpec arch = ArchSpec::xc3000(profile.rows, profile.cols, profile.paper_ikmb);
  RouterOptions options;
  options.max_passes = 5;
  expect_thread_count_invariant(arch, table_circuit(profile, 31), options);
}

TEST(ParallelRouteTest, Table3CircuitIsThreadCountInvariant) {
  // term1, the smallest Table 3 (4000-series) circuit, at its paper width.
  const CircuitProfile& profile = xc4000_profiles()[2];
  ASSERT_EQ(profile.name, "term1");
  const ArchSpec arch = ArchSpec::xc4000(profile.rows, profile.cols, profile.paper_ikmb);
  RouterOptions options;
  options.max_passes = 5;
  expect_thread_count_invariant(arch, table_circuit(profile, 7), options);
}

TEST(ParallelRouteTest, FaultedRoutingIsThreadCountInvariant) {
  // Failed speculations are rejected whenever the fault-retry ladder could
  // follow (it mutates global weights); this scenario proves the rejection
  // path keeps retried-net records and detour statistics identical.
  const int n = 5;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  FaultSpec faults;
  faults.seed = 21;
  faults.wire_permille = 50;
  faults.switch_permille = 40;
  faults.pin_permille = 20;
  RouterOptions options;
  options.max_passes = 6;
  expect_thread_count_invariant(arch, quadrant_circuit(n), options, &faults);
}

TEST(ParallelRouteTest, BudgetAbortedRoutingIsThreadCountInvariant) {
  // A node budget disables speculation (speculative work must not depend on
  // attempt order), so the contract here is that the gate really does fall
  // back to the serial path: identical partial results and abort statuses.
  const int n = 4;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  RouterOptions options;
  options.max_passes = 4;
  options.node_budget = 800;  // expires mid-circuit
  counters().reset();
  expect_thread_count_invariant(arch, quadrant_circuit(n), options);
  EXPECT_EQ(counters().parallel_waves.load(), 0u);
}

TEST(ParallelRouteTest, DecomposedModeIsThreadCountInvariant) {
  // Two-pin decomposition commits mid-attempt, so it is gated out of wave
  // mode entirely; the contract is still bit-identity via serial fallback.
  const int n = 4;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 6);
  RouterOptions options;
  options.max_passes = 4;
  options.decompose_two_pin = true;
  counters().reset();
  expect_thread_count_invariant(arch, quadrant_circuit(n), options);
  EXPECT_EQ(counters().parallel_waves.load(), 0u);
}

TEST(ParallelRouteTest, ZeroMeansSharedPoolAndStaysIdentical) {
  // threads = 0 resolves to the shared pool (FPR_THREADS / hardware size,
  // whatever it is on this machine) — the result must still match serial.
  const int n = 4;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  const Circuit circuit = quadrant_circuit(n);
  RouterOptions serial;
  serial.max_passes = 5;
  serial.threads = 1;
  RouterOptions pooled = serial;
  pooled.threads = 0;
  Device a(arch);
  Device b(arch);
  const RoutingResult ra = route_circuit(a, circuit, serial);
  const RoutingResult rb = route_circuit(b, circuit, pooled);
  expect_identical(ra, rb);
}

}  // namespace
}  // namespace fpr
