// Pattern-route equivalence contract (DESIGN.md §13): an accepted L/Z
// corridor probe is a feasible source->sink path on the live graph whose
// recorded cost a full Dijkstra on the same snapshot can only match or
// beat (the corridor search relaxes the same weights over a subset of the
// graph); congested and fault-blocked corridors make the probe decline —
// never ship an unusable or over-capacity hop — so the negotiated loop
// falls back to the scoped engine.

#include <gtest/gtest.h>

#include <vector>

#include "fpga/device.hpp"
#include "graph/congestion_layer.hpp"
#include "graph/path_oracle.hpp"
#include "netlist/netlist.hpp"
#include "router/patterns.hpp"

namespace fpr {
namespace {

struct PinPair {
  PinRef a;
  PinRef b;
};

/// Straight, L, and (span >= 6) Z-shaped terminal pairs on an 8x8 array.
std::vector<PinPair> probe_pairs() {
  return {
      {{1, 1}, {6, 1}},  // horizontally aligned: straight corridor
      {{2, 0}, {2, 6}},  // vertically aligned
      {{1, 1}, {5, 4}},  // L bend
      {{6, 2}, {1, 5}},  // L bend, leftward
      {{0, 2}, {7, 3}},  // |dx| = 7: Z-h candidates engage
      {{2, 0}, {3, 7}},  // |dy| = 7: Z-v candidates engage
      {{2, 2}, {3, 3}},  // short diagonal
  };
}

Net pair_net(const Device& device, const PinPair& p) {
  CircuitNet net;
  net.source = p.a;
  net.sinks = {p.b};
  return to_graph_net(device, net);
}

/// Asserts `edges` is a chain from source to sink in the device graph and
/// returns its live-weight cost, summed in path order (the same
/// accumulation order the probe's relaxation used, so comparisons against
/// probe.cost are bit-exact).
Weight verify_path(const Device& device, const std::vector<EdgeId>& edges, NodeId source,
                   NodeId sink) {
  const Graph& g = device.graph();
  NodeId cur = source;
  Weight cost = 0;
  for (const EdgeId e : edges) {
    EXPECT_TRUE(g.edge_usable(e)) << "edge " << e;
    const Graph::Edge ed = g.edge(e);
    EXPECT_TRUE(ed.u == cur || ed.v == cur) << "edge " << e << " breaks the chain at " << cur;
    cur = ed.u == cur ? ed.v : ed.u;
    cost += g.edge_weight(e);
  }
  EXPECT_EQ(cur, sink);
  return cost;
}

class PatternRouteTest : public ::testing::Test {
 protected:
  PatternRouteTest() : device_(ArchSpec::xc4000(8, 8, 5)) {}
  Device device_;
};

TEST_F(PatternRouteTest, AcceptedProbeIsFeasibleAndNeverBeatsDijkstra) {
  Graph& g = device_.graph();
  CongestionLayer layer(g, device_.block_count());
  PathOracle oracle(g);
  int accepted = 0;
  for (const PinPair& p : probe_pairs()) {
    SCOPED_TRACE(testing::Message() << "(" << p.a.x << "," << p.a.y << ")->(" << p.b.x << ","
                                    << p.b.y << ")");
    WorkBudget budget;
    const Net net = pair_net(device_, p);
    ASSERT_EQ(net.sinks.size(), 1u);
    const PatternProbe probe = pattern_route(device_, layer, net.source, net.sinks[0], &budget);
    EXPECT_FALSE(probe.budget_aborted);
    if (!probe.accepted) continue;
    ++accepted;
    ASSERT_FALSE(probe.edges.empty());
    EXPECT_EQ(verify_path(device_, probe.edges, net.source, net.sinks[0]), probe.cost);
    for (const EdgeId e : probe.edges) {
      const Graph::Edge ed = g.edge(e);
      if (device_.is_wire(ed.u)) EXPECT_FALSE(layer.would_overflow(ed.u));
      if (device_.is_wire(ed.v)) EXPECT_FALSE(layer.would_overflow(ed.v));
    }
    // The equivalence pin: full Dijkstra on the same snapshot is never
    // worse than the corridor probe.
    EXPECT_LE(oracle.distance(net.source, net.sinks[0]), probe.cost);
    // The probe charged real work and stayed inside its declared read set.
    EXPECT_GT(probe.expansions, 0);
    EXPECT_FALSE(probe.probed_area.empty());
  }
  // On a pristine device every one of these corridors is free: a probe that
  // declines everything would make this suite vacuous.
  EXPECT_EQ(accepted, static_cast<int>(probe_pairs().size()));
}

TEST_F(PatternRouteTest, EquivalenceHoldsUnderPartialCongestion) {
  Graph& g = device_.graph();
  CongestionLayer layer(g, device_.block_count());
  // Occupy a scattered third of the wires: corridors now see real present
  // costs and some at-capacity prunes.
  for (int k = 0; k < device_.wire_count(); k += 3) {
    layer.add_occupant(device_.block_count() + k);
  }
  PathOracle oracle(g);
  int accepted = 0;
  for (const PinPair& p : probe_pairs()) {
    SCOPED_TRACE(testing::Message() << "(" << p.a.x << "," << p.a.y << ")->(" << p.b.x << ","
                                    << p.b.y << ")");
    WorkBudget budget;
    const Net net = pair_net(device_, p);
    const PatternProbe probe = pattern_route(device_, layer, net.source, net.sinks[0], &budget);
    if (!probe.accepted) continue;
    ++accepted;
    EXPECT_EQ(verify_path(device_, probe.edges, net.source, net.sinks[0]), probe.cost);
    for (const EdgeId e : probe.edges) {
      const Graph::Edge ed = g.edge(e);
      if (device_.is_wire(ed.u)) EXPECT_FALSE(layer.would_overflow(ed.u));
      if (device_.is_wire(ed.v)) EXPECT_FALSE(layer.would_overflow(ed.v));
    }
    EXPECT_LE(oracle.distance(net.source, net.sinks[0]), probe.cost);
  }
  EXPECT_GT(accepted, 0) << "every corridor congested away: weaken the occupancy pattern";
}

TEST_F(PatternRouteTest, ProbeIsDeterministic) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  for (const PinPair& p : probe_pairs()) {
    const Net net = pair_net(device_, p);
    WorkBudget b1, b2;
    const PatternProbe first = pattern_route(device_, layer, net.source, net.sinks[0], &b1);
    const PatternProbe second = pattern_route(device_, layer, net.source, net.sinks[0], &b2);
    EXPECT_EQ(first.accepted, second.accepted);
    EXPECT_EQ(first.edges, second.edges);
    EXPECT_EQ(first.cost, second.cost);
    EXPECT_EQ(first.expansions, second.expansions);
    EXPECT_EQ(b1.used, b2.used);
  }
}

TEST_F(PatternRouteTest, SaturatedCorridorsDeclineAndRecoverAfterRipUp) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  for (int k = 0; k < device_.wire_count(); ++k) {
    layer.add_occupant(device_.block_count() + k);
  }
  const Net net = pair_net(device_, {{1, 1}, {6, 1}});
  WorkBudget budget;
  const PatternProbe congested = pattern_route(device_, layer, net.source, net.sinks[0], &budget);
  EXPECT_FALSE(congested.accepted) << "probe shipped a path through at-capacity wires";
  EXPECT_FALSE(congested.budget_aborted);

  // Rip-up (begin_pass clears all occupancy) makes the same probe accept:
  // the decline above was congestion, not geometry.
  layer.begin_pass();
  WorkBudget fresh;
  EXPECT_TRUE(pattern_route(device_, layer, net.source, net.sinks[0], &fresh).accepted);
}

TEST_F(PatternRouteTest, FaultedCorridorsNeverShipUnusableHops) {
  // Regression scenario from the fault suite: heavy wire/switch defects.
  // Whatever the probe accepts must be entirely usable; at this defect
  // density at least one corridor pair must decline (fall back).
  FaultSpec faults;
  faults.seed = 5;
  faults.wire_permille = 850;
  faults.switch_permille = 500;
  device_.install_faults(faults);
  CongestionLayer layer(device_.graph(), device_.block_count());
  int declined = 0;
  for (const PinPair& p : probe_pairs()) {
    SCOPED_TRACE(testing::Message() << "(" << p.a.x << "," << p.a.y << ")->(" << p.b.x << ","
                                    << p.b.y << ")");
    WorkBudget budget;
    const Net net = pair_net(device_, p);
    const PatternProbe probe = pattern_route(device_, layer, net.source, net.sinks[0], &budget);
    if (!probe.accepted) {
      ++declined;
      continue;
    }
    EXPECT_EQ(verify_path(device_, probe.edges, net.source, net.sinks[0]), probe.cost);
  }
  EXPECT_GT(declined, 0) << "defect density too low to exercise the fallback path";
}

TEST_F(PatternRouteTest, ExhaustedBudgetAbortsInsteadOfAccepting) {
  CongestionLayer layer(device_.graph(), device_.block_count());
  const Net net = pair_net(device_, {{0, 2}, {7, 3}});
  WorkBudget tiny{1, 0};
  const PatternProbe probe = pattern_route(device_, layer, net.source, net.sinks[0], &tiny);
  EXPECT_FALSE(probe.accepted);
  EXPECT_TRUE(probe.budget_aborted);
  EXPECT_TRUE(tiny.exhausted());
}

}  // namespace
}  // namespace fpr
