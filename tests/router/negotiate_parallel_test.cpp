// Determinism and mode-boundary contract of the negotiated-congestion
// router (DESIGN.md §13): route_circuit in RouterMode::kNegotiated is
// bit-identical at every RouterOptions::threads value — per-net records,
// overflow trend, pattern-probe accounting, work accounting, final device
// state — across pristine, faulted, and budget-starved scenarios, with the
// serial reference replayed through the negotiated feasibility oracle. The
// boundary tests pin that paper-mode machinery (congestion relief,
// move-to-front) never engages in a negotiated run, and vice versa that
// negotiated counters stay silent in paper mode.

#include <gtest/gtest.h>

#include <vector>

#include "check/oracles.hpp"
#include "core/metrics.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

namespace fpr {
namespace {

RouterOptions negotiated_options() {
  RouterOptions o;
  o.mode = RouterMode::kNegotiated;
  o.negotiate_passes = 16;
  return o;
}

/// Field-by-field equality over the negotiated determinism contract —
/// everything parallel_route_test pins, plus the convergence trend and the
/// pattern-probe counters.
void expect_identical(const RoutingResult& a, const RoutingResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(a.overflow_trend, b.overflow_trend);
  EXPECT_EQ(a.pattern_attempts, b.pattern_attempts);
  EXPECT_EQ(a.pattern_accepts, b.pattern_accepts);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.total_wire_nodes, b.total_wire_nodes);
  EXPECT_EQ(a.total_max_pathlength, b.total_max_pathlength);
  EXPECT_EQ(a.total_optimal_max_pathlength, b.total_optimal_max_pathlength);
  EXPECT_EQ(a.total_physical_wirelength, b.total_physical_wirelength);
  EXPECT_EQ(a.total_physical_max_path, b.total_physical_max_path);
  EXPECT_EQ(a.nets_rerouted_around_faults, b.nets_rerouted_around_faults);
  EXPECT_EQ(a.nets_blocked_by_fault, b.nets_blocked_by_fault);
  EXPECT_EQ(a.nets_aborted_budget, b.nets_aborted_budget);
  EXPECT_EQ(a.detour_wirelength_overhead, b.detour_wirelength_overhead);
  EXPECT_EQ(a.work_used, b.work_used);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  EXPECT_EQ(a.net_order, b.net_order);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].status, b.nets[i].status) << "net " << i;
    EXPECT_EQ(a.nets[i].retries, b.nets[i].retries) << "net " << i;
    EXPECT_EQ(a.nets[i].edges, b.nets[i].edges) << "net " << i;
    EXPECT_EQ(a.nets[i].wirelength, b.nets[i].wirelength) << "net " << i;
    EXPECT_EQ(a.nets[i].max_pathlength, b.nets[i].max_pathlength) << "net " << i;
    EXPECT_EQ(a.nets[i].physical_wirelength, b.nets[i].physical_wirelength) << "net " << i;
    EXPECT_EQ(a.nets[i].physical_max_path, b.nets[i].physical_max_path) << "net " << i;
    EXPECT_EQ(a.nets[i].wire_nodes_used, b.nets[i].wire_nodes_used) << "net " << i;
  }
}

/// threads = 1 reference vs threads = 2, 4, 8 on fresh devices: full result
/// identity, final device identity (wire consumption + exact edge-weight
/// distribution), then an oracle replay of the serial result.
void expect_thread_count_invariant(const ArchSpec& arch, const Circuit& circuit,
                                   const RouterOptions& base,
                                   const FaultSpec* faults = nullptr) {
  RouterOptions serial = base;
  serial.threads = 1;
  Device reference(arch);
  if (faults != nullptr) reference.install_faults(*faults);
  const RoutingResult expected = route_circuit(reference, circuit, serial);

  for (const int threads : {2, 4, 8}) {
    RouterOptions parallel = base;
    parallel.threads = threads;
    Device device(arch);
    if (faults != nullptr) device.install_faults(*faults);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const RoutingResult actual = route_circuit(device, circuit, parallel);
    expect_identical(expected, actual);
    EXPECT_EQ(device.used_wire_count(), reference.used_wire_count());
    EXPECT_EQ(device.graph().mean_active_edge_weight(),
              reference.graph().mean_active_edge_weight());
  }

  const auto check = check::check_routing_feasibility(arch, circuit, expected, serial, faults);
  EXPECT_TRUE(check.ok()) << check.message();
}

/// Quadrant-clustered nets (spatially independent by construction), same
/// shape the paper-mode parallel suite uses.
Circuit quadrant_circuit(int n) {
  Circuit c;
  c.name = "quadrants";
  c.rows = c.cols = 2 * n;
  for (int q = 0; q < 4; ++q) {
    const int bx = (q % 2) * n;
    const int by = (q / 2) * n;
    for (int i = 0; i + 1 < n; ++i) {
      c.nets.push_back({{bx + i, by + i}, {{bx + i + 1, by + i}, {bx + i, by + i + 1}}});
      c.nets.push_back({{bx + n - 1 - i, by + i}, {{bx + n - 1 - i, by + i + 1}}});
    }
  }
  return c;
}

TEST(NegotiateParallelTest, QuadrantCircuitIsThreadCountInvariant) {
  const int n = 5;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  expect_thread_count_invariant(arch, quadrant_circuit(n), negotiated_options());
}

TEST(NegotiateParallelTest, Table2CircuitIsThreadCountInvariant) {
  // busc at its paper width: tight enough that negotiation actually
  // iterates (overflow in early passes) instead of converging in one.
  const CircuitProfile& profile = xc3000_profiles()[0];
  ASSERT_EQ(profile.name, "busc");
  const ArchSpec arch = ArchSpec::xc3000(profile.rows, profile.cols, profile.paper_ikmb);
  expect_thread_count_invariant(arch, synthesize_circuit(profile, 31), negotiated_options());
}

TEST(NegotiateParallelTest, FaultedRoutingIsThreadCountInvariant) {
  const int n = 5;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  FaultSpec faults;
  faults.seed = 21;
  faults.wire_permille = 50;
  faults.switch_permille = 40;
  faults.pin_permille = 20;
  expect_thread_count_invariant(arch, quadrant_circuit(n), negotiated_options(), &faults);
}

TEST(NegotiateParallelTest, BudgetAbortedRoutingIsThreadCountInvariant) {
  // A node budget gates speculation off; the contract is serial-path
  // fallback with identical partial results and abort statuses.
  const int n = 4;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  RouterOptions options = negotiated_options();
  options.node_budget = 800;  // expires mid-circuit
  counters().reset();
  expect_thread_count_invariant(arch, quadrant_circuit(n), options);
  EXPECT_EQ(counters().parallel_waves.load(), 0u);
}

TEST(NegotiateParallelTest, SpeculationEngagesAndPatternAccountingSurvivesReplay) {
  const int n = 5;
  const ArchSpec arch = ArchSpec::xc4000(2 * n, 2 * n, 5);
  RouterOptions options = negotiated_options();
  options.threads = 4;
  counters().reset();
  Device device(arch);
  const RoutingResult r = route_circuit(device, quadrant_circuit(n), options);
  EXPECT_TRUE(r.success);
  EXPECT_GT(counters().parallel_waves.load(), 0u)
      << "wave scheduler never engaged in negotiated mode: the determinism "
         "tests in this suite would be vacuous";
  EXPECT_GT(counters().nets_speculated.load(), 0u);
  EXPECT_EQ(counters().nets_spec_accepted.load() + counters().nets_spec_recomputed.load(),
            counters().nets_speculated.load());
  // The quadrant circuit is two-pin-heavy: pattern probes must both run and
  // land, and the replay-time accounting must agree with the result fields.
  EXPECT_GT(r.pattern_attempts, 0);
  EXPECT_GT(r.pattern_accepts, 0);
  EXPECT_LE(r.pattern_accepts, r.pattern_attempts);
  EXPECT_EQ(counters().pattern_attempts.load(), static_cast<std::uint64_t>(r.pattern_attempts));
  EXPECT_EQ(counters().pattern_accepts.load(), static_cast<std::uint64_t>(r.pattern_accepts));
}

// ---------------------------------------------------------------------------
// Mode-gating boundary: the paper mode's relief/reordering machinery and
// the negotiated mode's trend/pattern machinery are mutually exclusive.
// ---------------------------------------------------------------------------

TEST(NegotiateBoundaryTest, PaperMachineryNeverEngagesInNegotiatedMode) {
  // A faulted, congested run — exactly the conditions that drive paper-mode
  // congestion relief and move-to-front — must leave both counters at zero
  // when routed by negotiation.
  const CircuitProfile& profile = xc3000_profiles()[0];
  const ArchSpec arch = ArchSpec::xc3000(profile.rows, profile.cols, profile.paper_ikmb);
  FaultSpec faults;
  faults.seed = 9;
  faults.wire_permille = 30;
  faults.switch_permille = 20;
  counters().reset();
  Device device(arch);
  device.install_faults(faults);
  const RoutingResult r =
      route_circuit(device, synthesize_circuit(profile, 31), negotiated_options());
  EXPECT_EQ(counters().congestion_reliefs.load(), 0u)
      << "CongestionRelief engaged during a negotiated run";
  EXPECT_EQ(counters().move_to_front_reorders.load(), 0u)
      << "move-to-front reordering engaged during a negotiated run";
  // Negotiated machinery did engage (the gate is directional, not dead).
  EXPECT_GT(counters().negotiate_runs.load(), 0u);
  EXPECT_FALSE(r.overflow_trend.empty());
  for (const auto& net : r.nets) EXPECT_EQ(net.retries, 0);
}

TEST(NegotiateBoundaryTest, ReliefCountersAreLiveInPaperMode) {
  // Control for the test above: the same faulted scenario in paper mode
  // DOES build CongestionRelief guards — proving the zero assertion is
  // checking a live counter, not a never-incremented one.
  const CircuitProfile& profile = xc3000_profiles()[0];
  const ArchSpec arch = ArchSpec::xc3000(profile.rows, profile.cols, profile.paper_ikmb);
  FaultSpec faults;
  faults.seed = 9;
  faults.wire_permille = 30;
  faults.switch_permille = 20;
  counters().reset();
  Device device(arch);
  device.install_faults(faults);
  RouterOptions paper;
  paper.max_passes = 6;
  const RoutingResult r = route_circuit(device, synthesize_circuit(profile, 31), paper);
  EXPECT_GT(counters().congestion_reliefs.load(), 0u);
  // And the negotiated result surface stays silent in paper mode.
  EXPECT_TRUE(r.overflow_trend.empty());
  EXPECT_EQ(r.pattern_attempts, 0);
  EXPECT_EQ(r.pattern_accepts, 0);
  EXPECT_EQ(counters().negotiate_runs.load(), 0u);
  EXPECT_EQ(counters().pattern_attempts.load(), 0u);
}

}  // namespace
}  // namespace fpr
