// Mixed critical/non-critical routing (Section 2): arborescences for the
// timing-critical nets, wirelength-minimal Steiner trees for the rest, in
// one router run.

#include <gtest/gtest.h>

#include "io/text_io.hpp"
#include "netlist/synth.hpp"
#include "router/router.hpp"

#include <sstream>

namespace fpr {
namespace {

TEST(MixedRoutingTest, SynthMarksLargestFanoutsCritical) {
  SynthOptions options;
  options.critical_fraction = 0.2;
  const Circuit c = synthesize_circuit(xc4000_profiles()[2], 3, options);
  int critical = 0;
  int max_noncritical_pins = 0, min_critical_pins = 1 << 20;
  for (const auto& net : c.nets) {
    if (net.critical) {
      ++critical;
      min_critical_pins = std::min(min_critical_pins, net.pin_count());
    } else {
      max_noncritical_pins = std::max(max_noncritical_pins, net.pin_count());
    }
  }
  EXPECT_EQ(critical, static_cast<int>(0.2 * c.nets.size()));
  // Big-first marking: every critical net at least as big as any other.
  EXPECT_GE(min_critical_pins, max_noncritical_pins);
}

TEST(MixedRoutingTest, CriticalNetsGetOptimalPathlengths) {
  SynthOptions synth;
  synth.critical_fraction = 0.25;
  const Circuit c = synthesize_circuit(xc4000_profiles()[2], 5, synth);
  Device device(ArchSpec::xc4000(c.rows, c.cols, 10));
  RouterOptions options;  // IKMB for plain nets, IDOM for critical ones
  const RoutingResult r = route_circuit(device, c, options);
  ASSERT_TRUE(r.success);
  int checked = 0;
  for (std::size_t i = 0; i < c.nets.size(); ++i) {
    if (!c.nets[i].critical || !r.nets[i].routed()) continue;
    EXPECT_TRUE(weight_eq(r.nets[i].max_pathlength, r.nets[i].optimal_max_pathlength))
        << "critical net " << i;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(MixedRoutingTest, MixedUsesLessWireThanAllCritical) {
  SynthOptions synth;
  synth.critical_fraction = 0.25;
  const Circuit c = synthesize_circuit(xc4000_profiles()[2], 5, synth);
  const ArchSpec arch = ArchSpec::xc4000(c.rows, c.cols, 10);

  Device mixed_device(arch);
  const RoutingResult mixed = route_circuit(mixed_device, c, RouterOptions{});

  RouterOptions all_critical;
  all_critical.algorithm = Algorithm::kIdom;  // arborescences for everything
  Device arb_device(arch);
  const RoutingResult arbs = route_circuit(arb_device, c, all_critical);

  ASSERT_TRUE(mixed.success);
  ASSERT_TRUE(arbs.success);
  EXPECT_LE(mixed.total_physical_wirelength, arbs.total_physical_wirelength);
}

TEST(MixedRoutingTest, CriticalityRoundTripsThroughTextIo) {
  SynthOptions synth;
  synth.critical_fraction = 0.3;
  const Circuit original = synthesize_circuit(xc4000_profiles()[7], 9, synth);
  std::stringstream buffer;
  write_circuit(buffer, original);
  const auto back = read_circuit(buffer);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->nets.size(), original.nets.size());
  for (std::size_t i = 0; i < original.nets.size(); ++i) {
    EXPECT_EQ(back->nets[i].critical, original.nets[i].critical) << i;
  }
}

}  // namespace
}  // namespace fpr
