// Defect-aware routing and deterministic work budgets: NetStatus
// classification, graceful degradation under injected faults, budget-abort
// consistency, and the width-search status paths that used to collapse
// into a silent min_width == -1.

#include <gtest/gtest.h>

#include <vector>

#include "check/oracles.hpp"
#include "router/router.hpp"
#include "router/width_search.hpp"

namespace fpr {
namespace {

Circuit small_circuit() {
  Circuit c;
  c.name = "fault-unit";
  c.rows = 4;
  c.cols = 4;
  c.nets.push_back({{0, 0}, {{3, 3}}});
  c.nets.push_back({{0, 3}, {{3, 0}, {2, 2}}});
  c.nets.push_back({{1, 1}, {{2, 1}, {1, 2}, {3, 2}}});
  c.nets.push_back({{0, 1}, {{0, 2}}});
  return c;
}

FaultSpec moderate_faults(std::uint64_t seed = 21) {
  FaultSpec spec;
  spec.seed = seed;
  spec.wire_permille = 60;
  spec.switch_permille = 40;
  spec.pin_permille = 20;
  return spec;
}

/// Field-by-field equality over everything the determinism contract
/// promises (RoutingResult has no operator==; spelling the fields out also
/// localizes a failure to the field that diverged).
void expect_identical(const RoutingResult& a, const RoutingResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.total_wire_nodes, b.total_wire_nodes);
  EXPECT_EQ(a.nets_rerouted_around_faults, b.nets_rerouted_around_faults);
  EXPECT_EQ(a.nets_blocked_by_fault, b.nets_blocked_by_fault);
  EXPECT_EQ(a.nets_aborted_budget, b.nets_aborted_budget);
  EXPECT_EQ(a.detour_wirelength_overhead, b.detour_wirelength_overhead);
  EXPECT_EQ(a.work_used, b.work_used);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].status, b.nets[i].status) << "net " << i;
    EXPECT_EQ(a.nets[i].retries, b.nets[i].retries) << "net " << i;
    EXPECT_EQ(a.nets[i].blocked_sink, b.nets[i].blocked_sink) << "net " << i;
    EXPECT_EQ(a.nets[i].edges, b.nets[i].edges) << "net " << i;
  }
}

TEST(FaultRoutingTest, NetStatusNamesAreStable) {
  EXPECT_EQ(net_status_name(NetStatus::kRouted), "routed");
  EXPECT_EQ(net_status_name(NetStatus::kFailedCongestion), "congestion");
  EXPECT_EQ(net_status_name(NetStatus::kBlockedByFault), "fault");
  EXPECT_EQ(net_status_name(NetStatus::kAbortedBudget), "budget");
}

TEST(FaultRoutingTest, RoutesAroundInjectedFaultsOracleClean) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 5);
  const Circuit circuit = small_circuit();
  Device device(arch);
  device.install_faults(moderate_faults());
  RouterOptions options;
  const RoutingResult r = route_circuit(device, circuit, options);

  // The widened channel leaves room to detour: everything still routes.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.nets_blocked_by_fault, 0);
  EXPECT_EQ(r.nets_aborted_budget, 0);

  // The defect-aware oracle replays the device with the same faults and
  // asserts no routed net occupies a dead wire or crosses a dead edge.
  const FaultSpec faults = moderate_faults();
  const auto check = check::check_routing_feasibility(arch, circuit, r, options, &faults);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST(FaultRoutingTest, TotalWireOutageClassifiesNetsAsBlocked) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 3);
  const Circuit circuit = small_circuit();
  Device device(arch);
  FaultSpec everything;
  everything.seed = 1;
  everything.wire_permille = 1000;  // every wire segment stuck open
  device.install_faults(everything);
  RouterOptions options;
  options.max_passes = 3;
  const RoutingResult r = route_circuit(device, circuit, options);

  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.routed_fraction(), 0.0);
  EXPECT_EQ(r.nets_blocked_by_fault, static_cast<int>(circuit.nets.size()));
  for (const auto& net : r.nets) {
    EXPECT_EQ(net.status, NetStatus::kBlockedByFault);
    EXPECT_NE(net.blocked_sink, kInvalidNode);  // the probe names a culprit
    EXPECT_TRUE(net.edges.empty());
  }
  // Nothing half-committed leaks into the device.
  EXPECT_EQ(device.used_wire_count(), 0);

  const auto check =
      check::check_routing_feasibility(arch, circuit, r, options, &everything);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST(FaultRoutingTest, DecomposedModeRollsBackPartialCommitsUnderFaults) {
  // Two-pin decomposition commits sink-by-sink; a mid-net fault blockage
  // must roll the committed prefix back (CommitLog), never leaking wires.
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 3);
  const Circuit circuit = small_circuit();
  Device device(arch);
  const FaultSpec faults = moderate_faults(33);
  device.install_faults(faults);
  RouterOptions options;
  options.decompose_two_pin = true;
  options.max_passes = 4;
  const RoutingResult r = route_circuit(device, circuit, options);

  // Whatever routed must be consistent; whatever failed must leave nothing.
  const auto check = check::check_routing_feasibility(arch, circuit, r, options, &faults);
  EXPECT_TRUE(check.ok()) << check.message();
  int expected_wires = 0;
  for (const auto& net : r.nets) expected_wires += net.wire_nodes_used;
  EXPECT_EQ(device.used_wire_count(), expected_wires);
}

TEST(FaultRoutingTest, FaultRetriesNeverFireOnPristineDevices) {
  // With no faults installed the retry ladder is inert: results are
  // identical whether retries are enabled or not (zero behavior change).
  const Circuit circuit = small_circuit();
  RouterOptions with_retries;
  with_retries.fault_retries = 2;
  RouterOptions without;
  without.fault_retries = 0;
  Device a(ArchSpec::xc4000(4, 4, 4));
  Device b(ArchSpec::xc4000(4, 4, 4));
  const RoutingResult ra = route_circuit(a, circuit, with_retries);
  const RoutingResult rb = route_circuit(b, circuit, without);
  expect_identical(ra, rb);
  for (const auto& net : ra.nets) EXPECT_EQ(net.retries, 0);
}

TEST(FaultRoutingTest, BudgetAbortIsDeterministicAndConsistent) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 4);
  const Circuit circuit = small_circuit();
  RouterOptions options;
  options.node_budget = 60;  // a handful of heap pops: expires mid-circuit

  Device d1(arch);
  const RoutingResult r1 = route_circuit(d1, circuit, options);
  EXPECT_TRUE(r1.budget_exhausted);
  EXPECT_LE(r1.work_used, options.node_budget);
  EXPECT_GT(r1.nets_aborted_budget, 0);
  for (const auto& net : r1.nets) {
    // A budget abort never misclassifies: every net either routed before
    // the budget died or is marked kAbortedBudget.
    EXPECT_TRUE(net.status == NetStatus::kRouted || net.status == NetStatus::kAbortedBudget);
  }
  // The partial result is still a consistent (oracle-clean) solution.
  const auto check = check::check_routing_feasibility(arch, circuit, r1, options);
  EXPECT_TRUE(check.ok()) << check.message();

  // Node expansions, not wall-clock: bit-identical on every run.
  Device d2(arch);
  expect_identical(r1, route_circuit(d2, circuit, options));
}

TEST(FaultRoutingTest, AmpleBudgetMatchesUnlimited) {
  const Circuit circuit = small_circuit();
  RouterOptions unlimited;  // node_budget = 0
  RouterOptions ample;
  ample.node_budget = 100'000'000;
  Device a(ArchSpec::xc4000(4, 4, 4));
  Device b(ArchSpec::xc4000(4, 4, 4));
  const RoutingResult ru = route_circuit(a, circuit, unlimited);
  const RoutingResult rb = route_circuit(b, circuit, ample);
  EXPECT_FALSE(rb.budget_exhausted);
  EXPECT_GT(rb.work_used, 0);
  expect_identical(ru, rb);
}

// Regression for budget-shaped measurement: measure() used to read the
// per-net oracle's cached source tree, which a tight work budget can have
// truncated mid-routing (budget-aborted partial trees stay cached, see
// path_oracle.hpp) — so nets that ROUTED were recorded with an infinite
// optimal_max_pathlength, violating optimal <= actual. Measurement now
// runs post-hoc on complete, unbudgeted trees. The seed/budget pair below
// is calibrated: on the pre-fix router it reports optimal == infinity for
// a routed net at every fault seed in 1..40.
TEST(FaultRoutingTest, RoutedNetsMeasureFiniteOptimalUnderTightBudget) {
  Device device(ArchSpec::xc4000(4, 4, 5));
  device.install_faults(moderate_faults(1));
  RouterOptions options;
  options.node_budget = 700;
  const RoutingResult result = route_circuit(device, small_circuit(), options);
  bool any_routed = false;
  for (const NetRouteResult& net : result.nets) {
    if (!net.routed()) continue;
    any_routed = true;
    // A routed net's optimal bound is a real path length: finite, and a
    // lower bound on the maximum source-sink path the tree realized.
    EXPECT_LT(net.optimal_max_pathlength, kInfiniteWeight / 2);
    EXPECT_GE(net.max_pathlength, net.optimal_max_pathlength - 1e-9);
  }
  EXPECT_TRUE(any_routed);
}

TEST(WidthSearchStatusTest, EmptyRange) {
  WidthSearchOptions search;
  search.max_width = 0;
  const WidthSearchResult r =
      find_min_channel_width(ArchSpec::xc4000(4, 4, 1), small_circuit(), RouterOptions{}, search);
  EXPECT_EQ(r.status, WidthSearchStatus::kEmptyRange);
  EXPECT_EQ(r.min_width, -1);
  EXPECT_TRUE(r.attempts.empty());
  EXPECT_EQ(width_search_status_name(r.status), "empty-range");
}

TEST(WidthSearchStatusTest, Found) {
  const WidthSearchResult r =
      find_min_channel_width(ArchSpec::xc4000(4, 4, 1), small_circuit(), RouterOptions{});
  EXPECT_EQ(r.status, WidthSearchStatus::kFound);
  EXPECT_GT(r.min_width, 0);
  EXPECT_TRUE(r.at_min_width.success);
}

TEST(WidthSearchStatusTest, Unroutable) {
  // Five nets out of one source block cannot route at W=1 (only four
  // adjacent wire segments exist), and max_width pins the search there.
  Circuit c;
  c.rows = c.cols = 4;
  for (int i = 0; i < 5; ++i) c.nets.push_back({{1, 1}, {{3, (i * 7) % 4}}});
  RouterOptions router;
  router.max_passes = 3;
  WidthSearchOptions search;
  search.min_width = 1;
  search.max_width = 1;
  const WidthSearchResult r =
      find_min_channel_width(ArchSpec::xc4000(4, 4, 1), c, router, search);
  EXPECT_EQ(r.status, WidthSearchStatus::kUnroutable);
  EXPECT_EQ(r.min_width, -1);
  ASSERT_FALSE(r.attempts.empty());
  EXPECT_FALSE(r.attempts.front().success);
  EXPECT_FALSE(r.attempts.front().budget_aborted);  // genuinely infeasible
}

TEST(WidthSearchStatusTest, BudgetExhausted) {
  RouterOptions router;
  WidthSearchOptions search;
  search.max_width = 6;
  search.node_budget_per_probe = 5;  // expires before any probe decides
  const WidthSearchResult r =
      find_min_channel_width(ArchSpec::xc4000(4, 4, 1), small_circuit(), router, search);
  EXPECT_EQ(r.status, WidthSearchStatus::kBudgetExhausted);
  EXPECT_EQ(r.min_width, -1);
  ASSERT_FALSE(r.attempts.empty());
  EXPECT_TRUE(r.attempts.front().budget_aborted);
  EXPECT_EQ(width_search_status_name(r.status), "budget");
}

// A found width is not always a certainty: when a narrower probe dies on
// its per-probe budget, the search treats it as failing (the safe
// direction) and keeps the wider answer — but the result must SAY so.
// undecided_probes surfaces exactly those budget-aborted attempts, so a
// kFound result with undecided_probes > 0 reads "min_width is an upper
// bound". Calibrated: 32 center-crossing nets on an 8x8 array route at
// width 3, the width-2 probe grinds through rip-up passes until the
// 55k-expansion budget kills it, and the max-width probe decides with
// room to spare.
TEST(WidthSearchStatusTest, FoundWithBudgetUndecidedProbesIsFlagged) {
  Circuit c;
  c.name = "crossings";
  c.rows = 8;
  c.cols = 8;
  for (int i = 0; i < 8; ++i) {
    c.nets.push_back({{0, i}, {{7, 7 - i}}});
    c.nets.push_back({{i, 0}, {{7 - i, 7}}});
    c.nets.push_back({{0, i}, {{7, i}}});
    c.nets.push_back({{i, 0}, {{i, 7}}});
  }
  RouterOptions router;
  router.max_passes = 20;
  WidthSearchOptions search;
  search.min_width = 1;
  search.max_width = 6;
  search.node_budget_per_probe = 55'000;
  const WidthSearchResult r =
      find_min_channel_width(ArchSpec::xc4000(8, 8, 1), c, router, search);
  ASSERT_EQ(r.status, WidthSearchStatus::kFound);
  EXPECT_EQ(r.min_width, 3);
  EXPECT_EQ(r.undecided_probes, 1);
  int aborted = 0;
  for (const WidthProbe& probe : r.attempts) {
    if (probe.budget_aborted) {
      ++aborted;
      EXPECT_FALSE(probe.success);
      EXPECT_LT(probe.width, r.min_width);  // only narrower widths undecided
    }
  }
  EXPECT_EQ(r.undecided_probes, aborted);

  // The flag inherits the serial-replay contract: bit-identical pooled.
  WidthSearchOptions pooled = search;
  pooled.threads = 4;
  const WidthSearchResult p =
      find_min_channel_width(ArchSpec::xc4000(8, 8, 1), c, router, pooled);
  EXPECT_EQ(p.status, r.status);
  EXPECT_EQ(p.min_width, r.min_width);
  EXPECT_EQ(p.undecided_probes, r.undecided_probes);
  EXPECT_EQ(p.attempts, r.attempts);
  expect_identical(p.at_min_width, r.at_min_width);
}

TEST(WidthSearchStatusTest, FaultedSearchIsThreadCountInvariant) {
  // Same fault seed, FPR_THREADS-style pool of 1 vs 4: the memoized
  // serial-replay contract promises bit-identical traces and results.
  const ArchSpec base = ArchSpec::xc4000(4, 4, 1);
  const Circuit circuit = small_circuit();
  RouterOptions router;
  router.max_passes = 6;
  WidthSearchOptions serial;
  serial.max_width = 10;
  serial.faults = moderate_faults();
  serial.node_budget_per_probe = 2'000'000;
  WidthSearchOptions pooled = serial;
  serial.threads = 1;
  pooled.threads = 4;

  const WidthSearchResult a = find_min_channel_width(base, circuit, router, serial);
  const WidthSearchResult b = find_min_channel_width(base, circuit, router, pooled);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.min_width, b.min_width);
  EXPECT_EQ(a.attempts, b.attempts);
  expect_identical(a.at_min_width, b.at_min_width);

  // The found width really does route the defective part, defect-cleanly.
  ASSERT_EQ(a.status, WidthSearchStatus::kFound);
  const FaultSpec faults = moderate_faults();
  const auto check = check::check_routing_feasibility(
      base.with_width(a.min_width), circuit, a.at_min_width, router, &faults);
  EXPECT_TRUE(check.ok()) << check.message();
}

}  // namespace
}  // namespace fpr
