// Incremental ECO repair (router/repair, router/journal): cone edge cases
// from DESIGN.md §14 — zero-touch events are byte-stable no-ops, killing a
// net's only paths degrades it to kBlockedByFault without touching the
// complement, overlapping deltas rip each cone net exactly once — plus
// event/outcome/journal serialization round-trips, journal replay
// reconstruction, and thread-count invariance of the repaired state.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "core/metrics.hpp"
#include "fpga/device.hpp"
#include "router/journal.hpp"
#include "router/repair.hpp"
#include "router/router.hpp"

namespace fpr {
namespace {

Circuit small_circuit() {
  Circuit c;
  c.name = "repair-unit";
  c.rows = 4;
  c.cols = 4;
  c.nets.push_back({{0, 0}, {{3, 3}}});
  c.nets.push_back({{0, 3}, {{3, 0}, {2, 2}}});
  c.nets.push_back({{1, 1}, {{2, 1}, {1, 2}, {3, 2}}});
  c.nets.push_back({{0, 1}, {{0, 2}}});
  return c;
}

RouterOptions repair_options() {
  RouterOptions options;
  options.record_commits = true;
  return options;
}

/// Field-by-field equality over everything the determinism contract
/// promises (same helper as fault_routing_test.cpp; spelling the fields
/// out localizes a failure to the field that diverged).
void expect_identical(const RoutingResult& a, const RoutingResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.total_wire_nodes, b.total_wire_nodes);
  EXPECT_EQ(a.nets_rerouted_around_faults, b.nets_rerouted_around_faults);
  EXPECT_EQ(a.nets_blocked_by_fault, b.nets_blocked_by_fault);
  EXPECT_EQ(a.nets_aborted_budget, b.nets_aborted_budget);
  EXPECT_EQ(a.detour_wirelength_overhead, b.detour_wirelength_overhead);
  EXPECT_EQ(a.work_used, b.work_used);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i], b.nets[i]) << "net " << i;
  }
  EXPECT_EQ(a.net_order, b.net_order);
  ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size());
  for (std::size_t i = 0; i < a.commit_logs.size(); ++i) {
    EXPECT_EQ(a.commit_logs[i], b.commit_logs[i]) << "commit log " << i;
  }
}

/// A wire segment no routed net committed and no event killed — the kind a
/// zero-touch event targets. Scans wire node ids from the top (the widened
/// channel guarantees spares).
NodeId find_unused_wire(const Device& device, const RoutingResult& result) {
  std::vector<NodeId> used;
  for (const NetCommitLog& log : result.commit_logs) {
    used.insert(used.end(), log.wires.begin(), log.wires.end());
  }
  std::sort(used.begin(), used.end());
  const NodeId first_wire = device.graph().node_count() - device.wire_count();
  for (NodeId v = device.graph().node_count(); v-- > first_wire;) {
    if (!std::binary_search(used.begin(), used.end(), v) && device.graph().node_active(v)) {
      return v;
    }
  }
  return kInvalidNode;
}

class RepairTest : public ::testing::Test {
 protected:
  // Tests below assert exact counter deltas, so start from zero.
  void SetUp() override { counters().reset(); }
};

TEST_F(RepairTest, RepairEventSerializationRoundTrips) {
  RepairEvent ev;
  ev.faults.dead_wires = {40, 12, 12};  // normalize() sorts + dedups
  ev.faults.dead_edges = {7};
  ev.changed.push_back({2, CircuitNet{{0, 1}, {{3, 2}}}});
  ev.added.push_back(CircuitNet{{0, 0}, {{2, 2}}, true});
  ev.removed = {5};
  ev.budget = 50'000;
  ev.faults.normalize();

  const std::string line = ev.describe();
  const auto parsed = RepairEvent::parse(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(*parsed, ev);

  // Empty categories are omitted, and an all-empty event still round-trips.
  RepairEvent none;
  const auto reparsed = RepairEvent::parse(none.describe());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed->empty());

  // Garbage is rejected, not misparsed.
  EXPECT_FALSE(RepairEvent::parse("outcome cone=1").has_value());
  EXPECT_FALSE(RepairEvent::parse("repair wires=1,,2").has_value());
  EXPECT_FALSE(RepairEvent::parse("repair changed=x@0.0:1.1").has_value());
}

TEST_F(RepairTest, RepairOutcomeSerializationRoundTrips) {
  RepairOutcome out;
  out.cone_nets = 3;
  out.repaired = 2;
  out.degraded = 1;
  out.aborted = 0;
  out.budget_used = 1234;
  out.detour_overhead = 4;
  EXPECT_FALSE(out.clean());
  const auto parsed = RepairOutcome::parse(out.describe());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, out);
  EXPECT_TRUE(RepairOutcome{}.clean());
  EXPECT_FALSE(RepairOutcome::parse("repair wires=1").has_value());
}

TEST_F(RepairTest, DeviceEventOverlaySurvivesReset) {
  Device device(ArchSpec::xc4000(4, 4, 4));
  const NodeId wire = device.wire_node(Device::Dir::kHorizontal, 1, 1, 0);
  FaultEvent ev;
  ev.dead_wires = {wire};
  device.apply_fault_event(ev);
  EXPECT_FALSE(device.graph().node_active(wire));
  EXPECT_TRUE(device.event_wire_faulted(wire));

  // reset() re-applies the overlay: the element stays dead forever.
  device.reset();
  EXPECT_FALSE(device.graph().node_active(wire));
  EXPECT_TRUE(device.has_fault_events());

  // clear_fault_events() is the only way back.
  device.clear_fault_events();
  device.reset();
  EXPECT_TRUE(device.graph().node_active(wire));
  EXPECT_FALSE(device.has_fault_events());
}

TEST_F(RepairTest, ZeroTouchEventIsByteStableNoOp) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 6);
  Circuit circuit = small_circuit();
  Device device(arch);
  const RouterOptions options = repair_options();
  RoutingResult result = route_circuit(device, circuit, options);
  ASSERT_TRUE(result.success);

  const NodeId spare = find_unused_wire(device, result);
  ASSERT_NE(spare, kInvalidNode);
  RepairEvent ev;
  ev.faults.dead_wires = {spare};

  // An unused wire has no owner and (in paper mode) its tile siblings may
  // still belong to nets — the cone contract says sibling OWNERS re-route.
  // Pick a spare whose whole tile is unowned so the cone is empty; the
  // widened channel always leaves such a tile on this circuit.
  const RoutingResult before = result;
  const Circuit circuit_before = circuit;
  const auto cone = repair_cone(device, result, ev.faults);
  if (!cone.empty()) GTEST_SKIP() << "no fully spare tile at this width";

  const RepairOutcome out = repair_route(device, circuit, result, ev, options);
  EXPECT_EQ(out.cone_nets, 0);
  EXPECT_EQ(out.repaired, 0);
  EXPECT_EQ(out.budget_used, 0);
  EXPECT_TRUE(out.clean());
  expect_identical(before, result);
  EXPECT_EQ(circuit_before.nets, circuit.nets);
  EXPECT_EQ(counters().repair_nets_ripped.load(), 0u);
  // The overlay is live even though no net moved.
  EXPECT_FALSE(device.graph().node_active(spare));
}

TEST_F(RepairTest, OnlyPathKilledDegradesToBlockedComplementUntouched) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 5);
  Circuit circuit = small_circuit();
  Device device(arch);
  const RouterOptions options = repair_options();
  RoutingResult result = route_circuit(device, circuit, options);
  ASSERT_TRUE(result.success);

  // Kill every wire adjacent to net 0's sink block (3, 3): with all of its
  // connection-block tracks dead there is no path at all.
  const NodeId sink_block = device.block_node(3, 3);
  RepairEvent ev;
  for (const NodeId v : device.graph().csr().neighbors_of(sink_block)) {
    if (device.is_wire(v)) ev.faults.dead_wires.push_back(v);
  }
  ev.faults.normalize();
  ASSERT_FALSE(ev.faults.dead_wires.empty());

  const RoutingResult before = result;
  const auto cone = repair_cone(device, result, ev.faults);
  ASSERT_TRUE(std::binary_search(cone.begin(), cone.end(), std::size_t{0}));

  const RepairOutcome out = repair_route(device, circuit, result, ev, options);
  EXPECT_EQ(out.cone_nets, static_cast<int>(cone.size()));
  EXPECT_EQ(out.degraded, 1);
  EXPECT_EQ(out.aborted, 0);
  EXPECT_EQ(out.repaired, out.cone_nets - 1);

  // The walled-off net is classified, not silently dropped.
  EXPECT_EQ(result.nets[0].status, NetStatus::kBlockedByFault);
  EXPECT_TRUE(result.nets[0].edges.empty());
  EXPECT_NE(result.nets[0].blocked_sink, kInvalidNode);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failed_nets, 1);
  EXPECT_EQ(result.nets_blocked_by_fault, 1);

  // Every net outside the cone is byte-stable, record and commit log both.
  for (std::size_t i = 0; i < result.nets.size(); ++i) {
    if (std::binary_search(cone.begin(), cone.end(), i)) continue;
    EXPECT_EQ(result.nets[i], before.nets[i]) << "net " << i;
    EXPECT_EQ(result.commit_logs[i], before.commit_logs[i]) << "net " << i;
  }

  // The degraded state replays clean through the defect-aware oracle with
  // the event overlay installed.
  const auto check =
      check::check_routing_feasibility(arch, circuit, result, options, nullptr, &ev.faults);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST_F(RepairTest, OverlappingDeltasRipEachConeNetOnce) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 6);
  Circuit circuit = small_circuit();
  Device device(arch);
  const RouterOptions options = repair_options();
  RoutingResult result = route_circuit(device, circuit, options);
  ASSERT_TRUE(result.success);
  ASSERT_FALSE(result.commit_logs[1].wires.empty());

  // One event where the same nets appear through multiple delta categories:
  // net 1 is hit by a dead wire AND has a changed pin set; net 3 is hit by
  // the same fault's sibling expansion (if adjacent) AND removed. The cone
  // is the union — each member ripped exactly once.
  RepairEvent ev;
  ev.faults.dead_wires = {result.commit_logs[1].wires.front()};
  ev.changed.push_back({1, CircuitNet{{0, 3}, {{3, 0}}}});
  ev.removed = {3};

  const RepairOutcome out = repair_route(device, circuit, result, ev, options);
  EXPECT_GE(out.cone_nets, 2);
  EXPECT_EQ(counters().repair_nets_ripped.load(), static_cast<std::uint64_t>(out.cone_nets));
  EXPECT_EQ(counters().repair_events.load(), 1u);

  // The changed net re-routed against its new pin set; the removed net
  // degenerated in place (index stability: still slot 3, zero wires).
  EXPECT_EQ(circuit.nets[1].sinks.size(), 1u);
  EXPECT_EQ(result.nets[1].status, NetStatus::kRouted);
  EXPECT_TRUE(circuit.nets[3].sinks.empty());
  EXPECT_EQ(result.nets[3].status, NetStatus::kRouted);
  EXPECT_EQ(result.nets[3].wire_nodes_used, 0);
  EXPECT_TRUE(result.commit_logs[3].wires.empty());
  EXPECT_EQ(circuit.nets.size(), 4u);

  const auto check =
      check::check_routing_feasibility(arch, circuit, result, options, nullptr, &ev.faults);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST_F(RepairTest, AddedNetsRouteAndExtendTheResultVector) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 6);
  Circuit circuit = small_circuit();
  Device device(arch);
  const RouterOptions options = repair_options();
  RoutingResult result = route_circuit(device, circuit, options);
  ASSERT_TRUE(result.success);

  RepairEvent ev;
  ev.added.push_back(CircuitNet{{2, 0}, {{0, 2}, {2, 3}}});
  ev.added.push_back(CircuitNet{{3, 1}, {{1, 3}}, true});

  const RepairOutcome out = repair_route(device, circuit, result, ev, options);
  EXPECT_EQ(out.cone_nets, 2);
  EXPECT_EQ(out.repaired, 2);
  EXPECT_TRUE(out.clean());
  ASSERT_EQ(circuit.nets.size(), 6u);
  ASSERT_EQ(result.nets.size(), 6u);
  ASSERT_EQ(result.commit_logs.size(), 6u);
  EXPECT_EQ(result.nets[4].status, NetStatus::kRouted);
  EXPECT_EQ(result.nets[5].status, NetStatus::kRouted);
  EXPECT_TRUE(result.success);

  const auto check = check::check_routing_feasibility(arch, circuit, result, options);
  EXPECT_TRUE(check.ok()) << check.message();
}

TEST_F(RepairTest, RepairIsThreadCountInvariant) {
  // The seed route runs net-parallel at 1/2/4/8 threads; repair re-routes
  // serially. The full post-repair state must be bit-identical everywhere.
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 5);
  RepairEvent ev;

  std::vector<RoutingResult> results;
  std::vector<RepairOutcome> outcomes;
  for (const int threads : {1, 2, 4, 8}) {
    Circuit circuit = small_circuit();
    Device device(arch);
    RouterOptions options = repair_options();
    options.threads = threads;
    RoutingResult result = route_circuit(device, circuit, options);
    if (ev.faults.empty()) {
      // Derive the event once, from the serial baseline: kill the first
      // committed wire of net 0 and change net 3's sink.
      ev.faults.dead_wires = {result.commit_logs[0].wires.front()};
      ev.faults.normalize();
      ev.changed.push_back({3, CircuitNet{{0, 1}, {{3, 1}}}});
      ev.budget = 200'000;
    }
    outcomes.push_back(repair_route(device, circuit, result, ev, options));
    results.push_back(std::move(result));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(outcomes[0], outcomes[i]) << "threads variant " << i;
    expect_identical(results[0], results[i]);
  }
}

TEST_F(RepairTest, JournalSerializationAndFileRoundTrip) {
  RepairJournal journal;
  JournalEntry first;
  first.event.faults.dead_wires = {17, 80};
  first.event.budget = 9'000;
  first.outcome.cone_nets = first.outcome.repaired = 2;
  first.outcome.budget_used = 812;
  journal.append(first.event, first.outcome);
  JournalEntry second;
  second.event.removed = {1};
  second.outcome.cone_nets = 1;
  second.outcome.repaired = 1;
  journal.append(second.event, second.outcome);

  const auto parsed = RepairJournal::parse(journal.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, journal);

  const std::string path = ::testing::TempDir() + "repair_journal_roundtrip.fpr";
  ASSERT_TRUE(journal.save(path));
  const auto loaded = RepairJournal::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, journal);
  std::remove(path.c_str());

  // A truncated journal (event line without its outcome) is rejected.
  std::string text = journal.serialize();
  text.resize(text.rfind("outcome"));
  EXPECT_FALSE(RepairJournal::parse(text).has_value());
  EXPECT_FALSE(RepairJournal::parse("not a journal\n").has_value());
}

TEST_F(RepairTest, JournalReplayReconstructsExactState) {
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 5);
  const Circuit seed = small_circuit();
  const RouterOptions options = repair_options();

  // Live service: route, then two events, journaling each outcome.
  Device device(arch);
  Circuit circuit = seed;
  RoutingResult result = route_circuit(device, circuit, options);
  ASSERT_TRUE(result.success);
  RepairJournal journal;
  {
    JournalEntry e;
    e.event.faults.dead_wires = {result.commit_logs[2].wires.front()};
    e.event.faults.normalize();
    e.outcome = repair_route(device, circuit, result, e.event, options);
    journal.append(e.event, e.outcome);
  }
  {
    JournalEntry e;
    e.event.added.push_back(CircuitNet{{2, 0}, {{1, 3}}});
    e.event.removed = {0};
    e.outcome = repair_route(device, circuit, result, e.event, options);
    journal.append(e.event, e.outcome);
  }

  // (seed circuit + journal) on a fresh device == the live state, bit for
  // bit — the checkpoint/replay guarantee. The journal text itself is the
  // checkpoint, so replay goes through serialize/parse first.
  const auto reparsed = RepairJournal::parse(journal.serialize());
  ASSERT_TRUE(reparsed.has_value());
  Device fresh(arch);
  const JournalReplayResult replay = replay_journal(fresh, seed, options, *reparsed);
  EXPECT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.circuit.nets, circuit.nets);
  expect_identical(replay.result, result);
  ASSERT_EQ(replay.outcomes.size(), 2u);
  EXPECT_EQ(replay.outcomes[0], journal.entries()[0].outcome);
  EXPECT_EQ(replay.outcomes[1], journal.entries()[1].outcome);
}

TEST_F(RepairTest, RepairOracleCleanOnDeterministicScenario) {
  // End-to-end: the kRepair oracle (cone re-derivation, byte-stability,
  // rip-up arithmetic, feasibility, journal replay) accepts a healthy
  // engine on a multi-event scenario in both router modes.
  const ArchSpec arch = ArchSpec::xc4000(4, 4, 5);
  const Circuit seed = small_circuit();

  for (const bool negotiated : {false, true}) {
    RouterOptions options;
    options.mode = negotiated ? RouterMode::kNegotiated : RouterMode::kPaper;

    // Derive events against a probe route so wire ids name real resources.
    RouterOptions probe_options = options;
    probe_options.record_commits = true;
    Device probe(arch);
    Circuit probe_circuit = seed;
    const RoutingResult probe_route = route_circuit(probe, probe_circuit, probe_options);
    ASSERT_TRUE(probe_route.success);

    std::vector<RepairEvent> events(3);
    events[0].faults.dead_wires = {probe_route.commit_logs[0].wires.front(),
                                   probe_route.commit_logs[1].wires.back()};
    events[0].faults.normalize();
    events[1].changed.push_back({2, CircuitNet{{1, 1}, {{3, 2}}}});
    events[1].added.push_back(CircuitNet{{0, 2}, {{2, 0}}});
    events[2].removed = {1};
    events[2].budget = 500'000;

    const auto check = check::check_repair(arch, seed, options, nullptr, events);
    EXPECT_TRUE(check.ok()) << (negotiated ? "negotiated: " : "paper: ") << check.message();
  }
}

}  // namespace
}  // namespace fpr
