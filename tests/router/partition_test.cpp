// Properties of the net-parallel scheduler's spatial bisection tree
// (router/partition.hpp): leaves tile the device area disjointly, every
// box is assigned to exactly one node — the lowest that contains it — and
// cutline-crossing boxes land at the lowest common branch of their
// corners' leaves.

#include "router/partition.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace fpr {
namespace {

TEST(TileRectTest, EmptinessAndInclude) {
  TileRect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_FALSE(r.intersects(r));       // empty rects intersect nothing
  EXPECT_TRUE((TileRect{0, 0, 5, 5}.contains(r)));  // ...but sit inside everything
  r.include(3, 4);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r, (TileRect{3, 4, 3, 4}));
  r.include(1, 7);
  EXPECT_EQ(r, (TileRect{1, 4, 3, 7}));
}

TEST(TileRectTest, IntersectionAndClipping) {
  const TileRect a{0, 0, 4, 4};
  const TileRect b{4, 4, 8, 8};  // inclusive coords: corner overlap at (4,4)
  const TileRect c{5, 0, 8, 3};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_EQ(a.clipped(b), (TileRect{4, 4, 4, 4}));
  EXPECT_TRUE(a.clipped(c).empty());
  EXPECT_EQ(a.expanded(2), (TileRect{-2, -2, 6, 6}));
  EXPECT_TRUE(TileRect{}.expanded(3).empty());
}

TEST(PartitionTreeTest, LeavesTileTheBoundsDisjointly) {
  const TileRect bounds{0, 0, 33, 25};
  const PartitionTree tree = PartitionTree::build(bounds);
  ASSERT_GT(tree.size(), 1);
  const std::vector<int> leaves = tree.leaves();
  long long area = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const TileRect& r = tree.node(leaves[i]).region;
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(bounds.contains(r));
    area += static_cast<long long>(r.width()) * r.height();
    for (std::size_t j = i + 1; j < leaves.size(); ++j) {
      EXPECT_FALSE(r.intersects(tree.node(leaves[j]).region))
          << "leaves " << leaves[i] << " and " << leaves[j] << " overlap";
    }
  }
  // Disjoint + contained + areas summing to the whole: an exact tiling.
  EXPECT_EQ(area, static_cast<long long>(bounds.width()) * bounds.height());
}

TEST(PartitionTreeTest, ChildrenExactlySplitTheirParent) {
  const PartitionTree tree = PartitionTree::build(TileRect{0, 0, 40, 17});
  for (int id = 0; id < tree.size(); ++id) {
    if (tree.is_leaf(id)) continue;
    const auto& n = tree.node(id);
    const TileRect& lo = tree.node(n.low).region;
    const TileRect& hi = tree.node(n.high).region;
    EXPECT_FALSE(lo.intersects(hi));
    EXPECT_TRUE(n.region.contains(lo));
    EXPECT_TRUE(n.region.contains(hi));
    EXPECT_EQ(static_cast<long long>(lo.width()) * lo.height() +
                  static_cast<long long>(hi.width()) * hi.height(),
              static_cast<long long>(n.region.width()) * n.region.height());
    EXPECT_EQ(tree.node(n.low).parent, id);
    EXPECT_EQ(tree.node(n.high).parent, id);
    EXPECT_EQ(tree.node(n.low).depth, n.depth + 1);
  }
}

TEST(PartitionTreeTest, AssignReturnsLowestContainingNode) {
  const TileRect bounds{0, 0, 50, 50};
  const PartitionTree tree = PartitionTree::build(bounds);
  SplitMixRng rng(91);
  for (int trial = 0; trial < 200; ++trial) {
    TileRect box;
    box.include(static_cast<int>(rng.below(51)), static_cast<int>(rng.below(51)));
    box.include(static_cast<int>(rng.below(51)), static_cast<int>(rng.below(51)));
    const int id = tree.assign(box);
    ASSERT_GE(id, 0);
    EXPECT_TRUE(tree.node(id).region.contains(box));
    // Lowest: neither child (if any) contains the box.
    if (!tree.is_leaf(id)) {
      EXPECT_FALSE(tree.node(tree.node(id).low).region.contains(box));
      EXPECT_FALSE(tree.node(tree.node(id).high).region.contains(box));
    }
  }
}

TEST(PartitionTreeTest, CrossingBoxLandsAtLowestCommonBranchOfItsCorners) {
  const TileRect bounds{0, 0, 63, 63};
  const PartitionTree tree = PartitionTree::build(bounds);
  SplitMixRng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const int x0 = static_cast<int>(rng.below(64));
    const int y0 = static_cast<int>(rng.below(64));
    const int x1 = static_cast<int>(rng.below(64));
    const int y1 = static_cast<int>(rng.below(64));
    TileRect box;
    box.include(x0, y0);
    box.include(x1, y1);
    // Ancestor chain of a corner's leaf (as point-sized boxes).
    const auto chain_of = [&](int x, int y) {
      std::vector<int> chain;
      TileRect pt;
      pt.include(x, y);
      for (int id = tree.assign(pt); id >= 0; id = tree.node(id).parent) chain.push_back(id);
      return chain;  // leaf-to-root
    };
    // LCA over all four corners = deepest node on every corner's chain.
    const std::vector<std::vector<int>> chains{
        chain_of(box.x0, box.y0), chain_of(box.x1, box.y0),
        chain_of(box.x0, box.y1), chain_of(box.x1, box.y1)};
    int lca = tree.root();
    for (const int candidate : chains[0]) {
      bool on_all = true;
      for (const auto& chain : chains) {
        bool found = false;
        for (const int id : chain) found = found || id == candidate;
        on_all = on_all && found;
      }
      if (on_all) {
        lca = candidate;  // chains run leaf-to-root: first common hit is deepest
        break;
      }
    }
    EXPECT_EQ(tree.assign(box), lca) << "box [" << box.x0 << "," << box.y0 << ".." << box.x1
                                     << "," << box.y1 << "]";
  }
}

TEST(PartitionTreeTest, IndependenceIsRegionDisjointness) {
  const PartitionTree tree = PartitionTree::build(TileRect{0, 0, 31, 31});
  const std::vector<int> leaves = tree.leaves();
  ASSERT_GE(leaves.size(), 2u);
  // Distinct leaves are always independent; no node is independent of
  // itself or of its own ancestors.
  EXPECT_TRUE(tree.independent(leaves.front(), leaves.back()));
  for (const int leaf : leaves) {
    EXPECT_FALSE(tree.independent(leaf, leaf));
    for (int id = tree.node(leaf).parent; id >= 0; id = tree.node(id).parent) {
      EXPECT_FALSE(tree.independent(leaf, id));
      EXPECT_FALSE(tree.independent(id, leaf));
    }
  }
}

TEST(PartitionTreeTest, DegenerateBoundsMakeSingleLeaf) {
  const PartitionTree tiny = PartitionTree::build(TileRect{0, 0, 3, 3});
  EXPECT_EQ(tiny.size(), 1);
  EXPECT_TRUE(tiny.is_leaf(tiny.root()));
  EXPECT_EQ(tiny.assign(TileRect{1, 1, 2, 2}), tiny.root());
  const PartitionTree empty = PartitionTree::build(TileRect{});
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.assign(TileRect{}), -1);
}

TEST(PartitionTreeTest, MaxDepthCapsSplitting) {
  PartitionTree::Options options;
  options.leaf_span = 1;
  options.max_depth = 3;
  const PartitionTree tree = PartitionTree::build(TileRect{0, 0, 100, 100}, options);
  for (int id = 0; id < tree.size(); ++id) {
    EXPECT_LE(tree.node(id).depth, 3);
  }
  EXPECT_LE(tree.size(), 15);  // a depth-3 binary tree
}

}  // namespace
}  // namespace fpr
