#include "router/router.hpp"

#include <gtest/gtest.h>

#include <set>

#include "router/baseline.hpp"

namespace fpr {
namespace {

Circuit small_circuit() {
  Circuit c;
  c.name = "unit";
  c.rows = 4;
  c.cols = 4;
  c.nets.push_back({{0, 0}, {{3, 3}}});
  c.nets.push_back({{0, 3}, {{3, 0}, {2, 2}}});
  c.nets.push_back({{1, 1}, {{2, 1}, {1, 2}, {3, 2}}});
  c.nets.push_back({{0, 1}, {{0, 2}}});
  return c;
}

TEST(RouterTest, RoutesSmallCircuit) {
  Device device(ArchSpec::xc4000(4, 4, 4));
  const RoutingResult r = route_circuit(device, small_circuit(), RouterOptions{});
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.failed_nets, 0);
  EXPECT_GT(r.total_wirelength, 0);
  EXPECT_EQ(r.nets.size(), 4u);
  for (const auto& net : r.nets) {
    EXPECT_TRUE(net.routed());
    EXPECT_FALSE(net.edges.empty());
  }
}

TEST(RouterTest, RoutedNetsAreWireDisjoint) {
  Device device(ArchSpec::xc4000(4, 4, 4));
  const RoutingResult r = route_circuit(device, small_circuit(), RouterOptions{});
  ASSERT_TRUE(r.success);
  std::set<NodeId> used;
  for (const auto& net : r.nets) {
    std::set<NodeId> own;
    for (const EdgeId e : net.edges) {
      const auto& ed = device.graph().edge(e);
      for (const NodeId v : {ed.u, ed.v}) {
        if (device.is_wire(v)) own.insert(v);
      }
    }
    for (const NodeId v : own) {
      EXPECT_TRUE(used.insert(v).second) << "wire " << v << " shared between nets";
    }
  }
}

TEST(RouterTest, FailsAtTinyChannelWidth) {
  // Five nets sourced at one block: at W=1 the block has only four adjacent
  // wire segments, so at most four disjoint nets can leave it.
  Device device(ArchSpec::xc4000(4, 4, 1));
  Circuit c;
  c.rows = c.cols = 4;
  for (int i = 0; i < 5; ++i) c.nets.push_back({{1, 1}, {{3, (i * 7) % 4}}});
  RouterOptions options;
  options.max_passes = 4;
  const RoutingResult r = route_circuit(device, c, options);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.failed_nets, 0);
}

TEST(RouterTest, PathlengthMetricsAreConsistent) {
  Device device(ArchSpec::xc4000(5, 5, 4));
  Circuit c;
  c.rows = c.cols = 5;
  c.nets.push_back({{0, 0}, {{4, 4}, {4, 0}, {0, 4}}});
  c.nets.push_back({{2, 2}, {{0, 1}, {3, 4}}});
  for (const Algorithm algo : {Algorithm::kIkmb, Algorithm::kPfa, Algorithm::kIdom}) {
    Device fresh(ArchSpec::xc4000(5, 5, 4));
    RouterOptions options;
    options.algorithm = algo;
    const RoutingResult r = route_circuit(fresh, c, options);
    ASSERT_TRUE(r.success) << algorithm_name(algo);
    for (const auto& net : r.nets) {
      EXPECT_GE(net.max_pathlength, net.optimal_max_pathlength - 1e-9);
      if (is_arborescence_algorithm(algo)) {
        EXPECT_TRUE(weight_eq(net.max_pathlength, net.optimal_max_pathlength))
            << algorithm_name(algo);
      }
    }
  }
}

TEST(RouterTest, TwoPinBaselineUsesMoreWire) {
  Circuit c;
  c.rows = c.cols = 5;
  // High-fanout nets: decomposition duplicates the trunk.
  c.nets.push_back({{0, 0}, {{4, 0}, {4, 1}, {4, 2}, {4, 3}}});
  c.nets.push_back({{0, 4}, {{4, 4}, {3, 4}, {3, 3}}});
  Device steiner_device(ArchSpec::xc4000(5, 5, 6));
  const RoutingResult steiner = route_circuit(steiner_device, c, RouterOptions{});
  Device baseline_device(ArchSpec::xc4000(5, 5, 6));
  const RoutingResult baseline =
      route_circuit(baseline_device, c, two_pin_baseline_options());
  ASSERT_TRUE(steiner.success);
  ASSERT_TRUE(baseline.success);
  EXPECT_GT(baseline.total_wire_nodes, steiner.total_wire_nodes);
}

TEST(RouterTest, MoveToFrontRecoversFromBadOrder) {
  // A circuit that fits only if the big net routes before the fillers; the
  // initial order (fillers first at equal pin count) may fail pass 1, and
  // move-to-front must then converge.
  Circuit c;
  c.rows = c.cols = 3;
  c.nets.push_back({{0, 0}, {{2, 0}}});
  c.nets.push_back({{0, 1}, {{2, 1}}});
  c.nets.push_back({{0, 2}, {{2, 2}}});
  c.nets.push_back({{1, 0}, {{1, 2}}});
  Device device(ArchSpec::xc4000(3, 3, 2));
  RouterOptions options;
  options.max_passes = 6;
  const RoutingResult r = route_circuit(device, c, options);
  EXPECT_TRUE(r.success);
}

TEST(RouterTest, StallDetectionStopsEarly) {
  // Unroutable instance: five nets out of one block at W=1 (four adjacent
  // wires). Stall detection must cut the pass budget short.
  Circuit c;
  c.rows = c.cols = 3;
  for (int i = 0; i < 5; ++i) c.nets.push_back({{1, 1}, {{2, 2}}});
  Device device(ArchSpec::xc4000(3, 3, 1));
  RouterOptions options;
  options.max_passes = 20;
  options.stall_passes = 2;
  const RoutingResult r = route_circuit(device, c, options);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.passes, 20);
}

TEST(RouterTest, TrivialSameBlockNetAlwaysRoutes) {
  Circuit c;
  c.rows = c.cols = 2;
  c.nets.push_back({{0, 0}, {{0, 0}}});  // all pins on one block
  Device device(ArchSpec::xc4000(2, 2, 1));
  const RoutingResult r = route_circuit(device, c, RouterOptions{});
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.nets[0].routed());
  EXPECT_TRUE(r.nets[0].edges.empty());
}

TEST(RouterTest, FailedDecomposedNetRollsBackItsWires) {
  // At W=1 a block has exactly four adjacent wire segments, so two-pin
  // decomposition of a five-sink net must fail on a later sink after the
  // earlier connections already consumed wires. The failed net's partial
  // commit must be rolled back: the device ends exactly as before the net
  // was attempted.
  Device device(ArchSpec::xc4000(4, 4, 1));
  Circuit c;
  c.rows = c.cols = 4;
  c.nets.push_back({{1, 1}, {{3, 3}, {0, 3}, {3, 0}, {2, 2}, {0, 0}}});
  RouterOptions options;
  options.decompose_two_pin = true;
  options.max_passes = 1;
  const Weight base_weight = device.graph().mean_active_edge_weight();
  const RoutingResult r = route_circuit(device, c, options);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.nets[0].routed());
  EXPECT_EQ(device.used_wire_count(), 0);  // every consumed wire reclaimed
  // Congestion penalties charged by the partial commit are undone too.
  EXPECT_DOUBLE_EQ(device.graph().mean_active_edge_weight(), base_weight);
}

TEST(RouterTest, DecomposedWireAccountingMatchesDevice) {
  // Invariant across a mixed success/failure pass: the wires the device
  // holds consumed are exactly the ones the routed nets account for —
  // failed nets contribute nothing (no partial-commit leak).
  Device device(ArchSpec::xc4000(4, 4, 1));
  Circuit c;
  c.rows = c.cols = 4;
  c.nets.push_back({{0, 0}, {{0, 1}}});
  c.nets.push_back({{1, 1}, {{3, 3}, {0, 3}, {3, 0}, {2, 2}, {0, 2}}});
  c.nets.push_back({{3, 1}, {{2, 3}}});
  RouterOptions options;
  options.decompose_two_pin = true;
  options.max_passes = 2;
  const RoutingResult r = route_circuit(device, c, options);
  EXPECT_FALSE(r.success);
  int accounted = 0;
  for (const auto& net : r.nets) {
    if (net.routed()) accounted += net.wire_nodes_used;
  }
  EXPECT_EQ(device.used_wire_count(), accounted);
}

TEST(RouterTest, CongestionPenaltyRaisesRemainingWeights) {
  Device device(ArchSpec::xc4000(4, 4, 3));
  Circuit c;
  c.rows = c.cols = 4;
  c.nets.push_back({{0, 0}, {{3, 3}}});
  RouterOptions options;
  options.congestion_penalty = 0.5;
  const Weight before = device.graph().mean_active_edge_weight();
  const RoutingResult r = route_circuit(device, c, options);
  ASSERT_TRUE(r.success);
  EXPECT_GT(device.graph().mean_active_edge_weight(), before);
}

}  // namespace
}  // namespace fpr
