#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"

namespace fpr {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
}

TEST(RunningStatTest, MeanMinMax) {
  RunningStat s;
  for (const double x : {4.0, -2.0, 7.0, 3.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStatTest, VarianceMatchesTextbook) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, NegativeAfterPositiveUpdatesMin) {
  RunningStat s;
  s.add(5.0);
  s.add(-1.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  // All lines equally wide.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

TEST(TextTableTest, SeparatorInsertsRule) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + separator + bottom = 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(FormatFixedTest, PrecisionAndNegativeZero) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.0001, 2), "0.00");  // no "-0.00"
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace fpr
