#include "io/text_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/grid.hpp"
#include "netlist/synth.hpp"
#include "steiner/kmb.hpp"

namespace fpr {
namespace {

TEST(TextIoTest, GraphRoundTrip) {
  Graph g(4);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 0.25);
  std::stringstream buffer;
  write_graph(buffer, g);
  const auto back = read_graph(buffer);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->node_count(), 4);
  ASSERT_EQ(back->edge_count(), 3);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(back->edge(e).u, g.edge(e).u);
    EXPECT_EQ(back->edge(e).v, g.edge(e).v);
    EXPECT_DOUBLE_EQ(back->edge_weight(e), g.edge_weight(e));
  }
}

TEST(TextIoTest, GraphRejectsMalformedInput) {
  const char* bad[] = {
      "",                       // empty
      "graph 2",                // truncated header
      "graph 2 1\ne 0 5 1.0",   // endpoint out of range
      "graph 2 1\ne 0 0 1.0",   // self loop
      "graph 2 1\ne 0 1 -2.0",  // negative weight
      "nope 2 0",               // wrong tag
  };
  for (const char* text : bad) {
    std::stringstream buffer(text);
    EXPECT_FALSE(read_graph(buffer).has_value()) << text;
  }
}

TEST(TextIoTest, CircuitRoundTrip) {
  const Circuit original = synthesize_circuit(xc4000_profiles()[2], 5);
  std::stringstream buffer;
  write_circuit(buffer, original);
  const auto back = read_circuit(buffer);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, original.name);
  EXPECT_EQ(back->rows, original.rows);
  EXPECT_EQ(back->cols, original.cols);
  ASSERT_EQ(back->nets.size(), original.nets.size());
  for (std::size_t i = 0; i < original.nets.size(); ++i) {
    EXPECT_EQ(back->nets[i].source, original.nets[i].source);
    EXPECT_EQ(back->nets[i].sinks, original.nets[i].sinks);
  }
}

TEST(TextIoTest, CircuitRejectsOffArrayPins) {
  std::stringstream buffer("circuit t 2 2 1\nnet 2 0 0 5 0\n");
  EXPECT_FALSE(read_circuit(buffer).has_value());
}

TEST(TextIoTest, CircuitRejectsSinglePinNets) {
  std::stringstream buffer("circuit t 2 2 1\nnet 1 0 0\n");
  EXPECT_FALSE(read_circuit(buffer).has_value());
}

TEST(TextIoTest, NameWithSpacesIsEscaped) {
  Circuit c;
  c.name = "my circuit";
  c.rows = c.cols = 2;
  c.nets.push_back({{0, 0}, {{1, 1}}});
  std::stringstream buffer;
  write_circuit(buffer, c);
  const auto back = read_circuit(buffer);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "my_circuit");
}

TEST(TextIoTest, RoutingTreeRoundTrip) {
  GridGraph grid(6, 6);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(5, 3), grid.node_at(2, 5)};
  const RoutingTree tree = kmb(grid.graph(), net);
  std::stringstream buffer;
  write_routing_tree(buffer, tree);
  const auto back = read_routing_tree(buffer, grid.graph());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->edges(), tree.edges());
  EXPECT_DOUBLE_EQ(back->cost(), tree.cost());
}

TEST(TextIoTest, RoutingTreeRejectsBadEdgeIds) {
  GridGraph grid(3, 3);
  std::stringstream buffer("tree 1\n99999\n");
  EXPECT_FALSE(read_routing_tree(buffer, grid.graph()).has_value());
}

TEST(TextIoTest, FileRoundTrip) {
  const Circuit original = synthesize_circuit(xc3000_profiles()[0], 9);
  const std::string path = ::testing::TempDir() + "/fpr_io_test_circuit.net";
  ASSERT_TRUE(save_circuit(path, original));
  const auto back = load_circuit(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nets.size(), original.nets.size());
  EXPECT_FALSE(load_circuit(path + ".does-not-exist").has_value());
}

}  // namespace
}  // namespace fpr
