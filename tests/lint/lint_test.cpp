#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

// Fixture-driven proof that every fpr-lint rule is live (fires on a minimal
// violating file), precise (does not fire on the adjacent non-violations in
// the same fixture), and suppressible (the _suppressed twin reports only
// documented exceptions). The final test locks the real tree: src/ and
// bench/ must stay clean, which is the same gate CI enforces.

namespace fpr::lint {
namespace {

std::vector<Finding> lint_fixture(const std::string& name) {
  std::vector<Finding> findings;
  const std::string path = std::string(FPR_LINT_FIXTURES) + "/" + name;
  EXPECT_TRUE(lint_file(path, Options{}, findings)) << "unreadable fixture " << path;
  return findings;
}

std::vector<Finding> unsuppressed(const std::vector<Finding>& findings) {
  std::vector<Finding> out;
  std::copy_if(findings.begin(), findings.end(), std::back_inserter(out),
               [](const Finding& f) { return !f.suppressed; });
  return out;
}

TEST(LintCatalog, SevenRulesAllKnown) {
  const auto& catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 7u);
  for (const auto& rule : catalog) {
    EXPECT_TRUE(is_known_rule(rule.name));
    EXPECT_FALSE(rule.summary.empty());
  }
  EXPECT_FALSE(is_known_rule("no-such-rule"));
}

TEST(LintFixtures, AssertFiresOnceAndOnlyOnTheCall) {
  const auto findings = unsuppressed(lint_fixture("assert_bad.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "assert");
  EXPECT_EQ(findings[0].line, 8);
}

TEST(LintFixtures, AssertSuppressedVariantIsClean) {
  const auto findings = lint_fixture("assert_suppressed.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_FALSE(findings[0].suppress_reason.empty());
}

TEST(LintFixtures, NondetRandomFlagsDistributionNotMemberNamedRand) {
  const auto findings = unsuppressed(lint_fixture("nondet_random_bad.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-random");
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintFixtures, NondetRandomSuppressedViaLineAboveDirective) {
  const auto findings = lint_fixture("nondet_random_suppressed.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(LintFixtures, WallClockFlagsClockReadNotIdentifierNamedTime) {
  const auto findings = unsuppressed(lint_fixture("wall_clock_bad.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintFixtures, WallClockSuppressedVariantIsClean) {
  EXPECT_TRUE(unsuppressed(lint_fixture("wall_clock_suppressed.cpp")).empty());
}

TEST(LintFixtures, UnorderedIterFlagsRangeForNotLookupOrMappedValue) {
  const auto findings = unsuppressed(lint_fixture("unordered_iter_bad.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 12);
}

TEST(LintFixtures, UnorderedIterSuppressedVariantIsClean) {
  const auto findings = lint_fixture("unordered_iter_suppressed.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(LintFixtures, PointerKeyFlagsPointerKeyedMapOnly) {
  const auto findings = unsuppressed(lint_fixture("pointer_key_bad.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "pointer-key");
  EXPECT_EQ(findings[0].line, 8);
}

TEST(LintFixtures, PointerKeySuppressedVariantIsClean) {
  EXPECT_TRUE(unsuppressed(lint_fixture("pointer_key_suppressed.cpp")).empty());
}

TEST(LintFixtures, NakedNewFlagsNewAndDeleteNotDeletedFunctions) {
  const auto findings = unsuppressed(lint_fixture("naked_new_bad.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "naked-new");
  EXPECT_EQ(findings[0].line, 11);
  EXPECT_EQ(findings[1].line, 12);
}

TEST(LintFixtures, NakedNewSuppressedVariantIsClean) {
  const auto findings = lint_fixture("naked_new_suppressed.cpp");
  ASSERT_EQ(findings.size(), 2u);
  for (const auto& f : findings) EXPECT_TRUE(f.suppressed);
}

TEST(LintFixtures, CatchAllFlagsSwallowingHandlerOnly) {
  const auto findings = unsuppressed(lint_fixture("catch_all_bad.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "catch-all");
  EXPECT_EQ(findings[0].line, 10);
}

TEST(LintFixtures, CatchAllSuppressedVariantIsClean) {
  EXPECT_TRUE(unsuppressed(lint_fixture("catch_all_suppressed.cpp")).empty());
}

TEST(LintFixtures, MalformedDirectivesDoNotSuppressAndAreReported) {
  const auto findings = unsuppressed(lint_fixture("malformed_directive.cpp"));
  // Two live assert findings plus two lint-directive findings (missing
  // reason; unknown rule name).
  ASSERT_EQ(findings.size(), 4u);
  const auto count = [&findings](const std::string& rule) {
    return std::count_if(findings.begin(), findings.end(),
                         [&rule](const Finding& f) { return f.rule == rule; });
  };
  EXPECT_EQ(count("assert"), 2);
  EXPECT_EQ(count("lint-directive"), 2);
}

TEST(LintEngine, CommentsAndStringsAreNotCode) {
  const std::string source =
      "// assert(1) in a line comment\n"
      "/* std::uniform_int_distribution in a block comment */\n"
      "const char* s = \"delete everything\";\n"
      "const char* r = R\"(catch (...) { })\";\n";
  EXPECT_TRUE(unsuppressed(lint_source("mem.cpp", source)).empty());
}

TEST(LintEngine, OnlyRulesRestrictsChecking) {
  const std::string source = "void f() { assert(1); int* p = new int; delete p; }\n";
  Options only_assert;
  only_assert.only_rules = {"assert"};
  const auto findings = unsuppressed(lint_source("mem.cpp", source, only_assert));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "assert");
}

TEST(LintEngine, UsingAliasOfUnorderedContainerIsTracked) {
  const std::string source =
      "using NodeSet = std::unordered_set<int>;\n"
      "int f(const NodeSet& live) {\n"
      "  int sum = 0;\n"
      "  for (int v : live) sum += v;\n"
      "  return sum;\n"
      "}\n";
  const auto findings = unsuppressed(lint_source("mem.cpp", source));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintEngine, CollectSourcesIsSortedAndFiltered) {
  const auto sources = collect_sources(std::string(FPR_LINT_FIXTURES));
  ASSERT_FALSE(sources.empty());
  EXPECT_TRUE(std::is_sorted(sources.begin(), sources.end()));
  for (const auto& path : sources) {
    EXPECT_NE(path.find(".cpp"), std::string::npos) << path;
  }
}

// The gate itself: the real tree must be clean. Any new violation in src/
// or bench/ fails this test locally before CI ever sees it.
TEST(LintTree, SrcAndBenchHaveNoUnsuppressedFindings) {
  for (const char* dir : {"/src", "/bench"}) {
    const auto sources = collect_sources(std::string(FPR_SOURCE_ROOT) + dir);
    ASSERT_FALSE(sources.empty()) << dir;
    for (const auto& path : sources) {
      std::vector<Finding> findings;
      ASSERT_TRUE(lint_file(path, Options{}, findings)) << path;
      for (const auto& f : findings) {
        EXPECT_TRUE(f.suppressed) << f.file << ":" << f.line << " [" << f.rule << "] "
                                  << f.message;
      }
    }
  }
}

}  // namespace
}  // namespace fpr::lint
