#!/usr/bin/env bash
# Exercises tools/lint/run_clang_tidy's gating logic without a real
# clang-tidy: a stub binary emits one canned finding, and the wrapper's
# skip / unseeded / clean / new-finding / update-baseline paths are checked
# against it. Registered as a ctest with label `lint`.
set -u

ROOT="${1:?usage: run_clang_tidy_test.sh <repo-root>}"
WRAPPER="$ROOT/tools/lint/run_clang_tidy"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# A stub clang-tidy: answers --version, and for a file argument prints one
# finding in clang-tidy's output format against that file.
STUB="$WORK/clang-tidy-stub"
cat > "$STUB" <<'EOF'
#!/usr/bin/env bash
if [ "${1:-}" = "--version" ]; then
  echo "stub clang-tidy version 0.0"
  exit 0
fi
# last argument is the file under analysis
for last; do :; done
echo "$last:10:5: warning: stub finding [bugprone-stub-check]"
EOF
chmod +x "$STUB"

# Minimal build tree: one compile_commands.json entry for a real project
# file (content only matters for cache hashing).
BUILD="$WORK/build"
mkdir -p "$BUILD"
TARGET="$ROOT/src/core/contract.hpp"
[ -f "$TARGET" ] || fail "expected $TARGET to exist"
cat > "$BUILD/compile_commands.json" <<EOF
[{"directory": "$BUILD", "command": "c++ -c $TARGET", "file": "$TARGET"}]
EOF

BASELINE="$WORK/baseline.txt"
run() { # run <expected-exit> <args...>
  local expect="$1"
  shift
  OUTPUT="$(FPR_TIDY_BASELINE="$BASELINE" CLANG_TIDY="${STUB_OVERRIDE:-$STUB}" \
            python3 "$WRAPPER" --build-dir "$BUILD" "$@" 2>&1)"
  local got=$?
  if [ "$got" != "$expect" ]; then
    echo "$OUTPUT" >&2
    fail "expected exit $expect, got $got (args: $*)"
  fi
}

# 1. Tool missing: skip cleanly; --require turns that into a hard failure.
STUB_OVERRIDE="$WORK/no-such-tool" run 0
echo "$OUTPUT" | grep -q "SKIPPED" || fail "missing tool should print SKIPPED"
STUB_OVERRIDE="$WORK/no-such-tool" run 3 --require

# 2. UNSEEDED baseline: report findings, do not gate.
echo "UNSEEDED" > "$BASELINE"
run 0
echo "$OUTPUT" | grep -q "UNSEEDED" || fail "unseeded baseline should be reported"
echo "$OUTPUT" | grep -q "src/core/contract.hpp:bugprone-stub-check" \
  || fail "unseeded run should list the stub finding"

# 3. Seeded-empty baseline: the stub finding is NEW, gate fails.
: > "$BASELINE"
rm -rf "$BUILD/tidy-cache"
run 1
echo "$OUTPUT" | grep -q "NEW findings" || fail "new finding should be reported"

# 4. --update-baseline captures it (to the redirected path only).
rm -rf "$BUILD/tidy-cache"
run 0 --update-baseline
grep -q "src/core/contract.hpp:bugprone-stub-check" "$BASELINE" \
  || fail "update-baseline should record the finding"

# 5. With the finding baselined the gate is clean — and served from cache
#    (the cache survives from the previous run; the stub would also answer).
run 0
echo "$OUTPUT" | grep -q "clean" || fail "baselined finding should pass the gate"

echo "PASS: run_clang_tidy wrapper logic"
