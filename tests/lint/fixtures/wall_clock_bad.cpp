// Fixture: must trigger exactly one `wall-clock` finding (line 7).
// The word "time" as a plain identifier or member must NOT trigger.
#include <chrono>

double f() {
  const double time = 1.0;  // identifier named time: fine
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return time;
}
