// Fixture: same violations as naked_new_bad.cpp, documented inline.
void f() {
  int* p = new int(7);  // fpr-lint: allow(naked-new) fixture: placement-style arena idiom
  delete p;             // fpr-lint: allow(naked-new) fixture: paired with the arena new above
}
