// Fixture: must trigger exactly two `naked-new` findings (lines 9 and 10).
// Deleted special members and make_unique must NOT trigger.
#include <memory>

struct NoCopy {
  NoCopy(const NoCopy&) = delete;             // deleted function: fine
  NoCopy& operator=(const NoCopy&) = delete;  // deleted function: fine
};

void f() {
  int* p = new int(7);
  delete p;
  auto q = std::make_unique<int>(7);  // RAII: fine
  (void)q;
}
