// Fixture: same violation as nondet_random_bad.cpp, suppressed on the
// comment-only line directly above the finding.
#include <random>

int f() {
  std::mt19937_64 rng(42);
  // fpr-lint: allow(nondet-random) fixture demonstrating the line-above directive form
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(rng);
}
