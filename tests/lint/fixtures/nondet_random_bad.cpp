// Fixture: must trigger exactly one `nondet-random` finding (line 7).
// A member *named* rand that is never called must NOT trigger.
#include <random>

int f() {
  std::mt19937_64 rng(42);  // engine itself is fully specified: fine
  std::uniform_int_distribution<int> dist(0, 9);
  struct S {
    int rand;
  } s{3};
  return dist(rng) + s.rand;
}
