// Fixture: same violation as assert_bad.cpp, covered by an inline allow().
#include <cassert>

void f(int x) {
  assert(x > 0);  // fpr-lint: allow(assert) fixture demonstrating a documented exception
}
