// Fixture: must trigger exactly one `catch-all` finding (the swallowing
// handler). Handlers that rethrow or capture must NOT trigger.
#include <exception>

int f();

int swallow() {
  try {
    return f();
  } catch (...) {
    return -1;
  }
}

int rethrow() {
  try {
    return f();
  } catch (...) {
    throw;  // rethrow: fine
  }
}

std::exception_ptr capture() {
  try {
    (void)f();
    return nullptr;
  } catch (...) {
    return std::current_exception();  // capture: fine
  }
}
