// Fixture: same violation as wall_clock_bad.cpp, covered inline.
#include <chrono>

double f() {
  const auto t0 = std::chrono::steady_clock::now();  // fpr-lint: allow(wall-clock) fixture: timing is reported, never fed back
  (void)t0;
  return 0.0;
}
