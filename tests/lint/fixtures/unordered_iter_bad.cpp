// Fixture: must trigger exactly one `unordered-iter` finding (line 12).
// Lookup (.at/[]/count) and iterating the MAPPED value must NOT trigger.
#include <unordered_map>
#include <vector>

int f() {
  std::unordered_map<int, std::vector<int>> buckets;
  buckets[0] = {1, 2, 3};
  int sum = 0;
  for (int v : buckets.at(0)) sum += v;  // iterates the mapped vector: fine
  if (buckets.count(1) != 0) ++sum;      // membership test: fine
  for (const auto& [k, vs] : buckets) sum += k + static_cast<int>(vs.size());
  return sum;
}
