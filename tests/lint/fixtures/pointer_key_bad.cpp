// Fixture: must trigger exactly one `pointer-key` finding (line 8).
// Ordered containers keyed on value types must NOT trigger.
#include <map>
#include <set>
#include <string>

void f() {
  std::map<int*, int> by_address;
  std::map<std::string, int> by_name;  // value key: fine
  std::set<int> ids;                   // value key: fine
  (void)by_address;
  (void)by_name;
  (void)ids;
}
