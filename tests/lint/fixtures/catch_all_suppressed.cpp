// Fixture: same violation as catch_all_bad.cpp, documented inline.
int f();

int swallow() {
  try {
    return f();
    // fpr-lint: allow(catch-all) fixture: boundary where any failure maps to a sentinel
  } catch (...) {
    return -1;
  }
}
