// Fixture: same violation as unordered_iter_bad.cpp, documented inline.
#include <unordered_map>

int f() {
  std::unordered_map<int, int> counts{{1, 2}, {3, 4}};
  int sum = 0;
  // fpr-lint: allow(unordered-iter) commutative sum: order cannot affect the result
  for (const auto& [k, v] : counts) sum += k + v;
  return sum;
}
