// Fixture: a reason-less allow() must NOT suppress, and must itself be
// reported as a `lint-directive` finding; same for an unknown rule name.
#include <cassert>

void f(int x) {
  assert(x > 0);  // fpr-lint: allow(assert)
  assert(x < 9);  // fpr-lint: allow(no-such-rule) reason present but rule unknown
}
