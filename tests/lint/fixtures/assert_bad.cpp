// Fixture: must trigger exactly one `assert` finding (line 8).
// static_assert and the word in comments/strings must NOT trigger.
#include <cassert>

static_assert(sizeof(int) >= 4, "static_assert is fine");

void f(int x) {
  assert(x > 0);
  const char* s = "assert(in a string) is fine";
  (void)s;
}
