// Fixture: same violation as pointer_key_bad.cpp, documented inline.
#include <map>

void f() {
  std::map<int*, int> by_address;  // fpr-lint: allow(pointer-key) fixture: never iterated, lookup only
  (void)by_address;
}
