#include "netlist/synth.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(SynthTest, RealizesExactProfile) {
  for (const auto& profile : xc4000_profiles()) {
    const Circuit c = synthesize_circuit(profile, 42);
    EXPECT_EQ(c.rows, profile.rows);
    EXPECT_EQ(c.cols, profile.cols);
    EXPECT_EQ(static_cast<int>(c.nets.size()), profile.total_nets());
    const auto h = c.histogram();
    EXPECT_EQ(h.pins_2_3, profile.nets_2_3) << profile.name;
    EXPECT_EQ(h.pins_4_10, profile.nets_4_10) << profile.name;
    EXPECT_EQ(h.pins_over_10, profile.nets_over_10) << profile.name;
    EXPECT_TRUE(c.well_formed()) << profile.name;
  }
}

TEST(SynthTest, DeterministicPerSeed) {
  const auto& profile = xc4000_profiles()[2];
  const Circuit a = synthesize_circuit(profile, 7);
  const Circuit b = synthesize_circuit(profile, 7);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].source, b.nets[i].source);
    EXPECT_EQ(a.nets[i].sinks, b.nets[i].sinks);
  }
}

TEST(SynthTest, DifferentSeedsDiffer) {
  const auto& profile = xc4000_profiles()[2];
  const Circuit a = synthesize_circuit(profile, 7);
  const Circuit b = synthesize_circuit(profile, 8);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.nets.size() && !any_difference; ++i) {
    any_difference = !(a.nets[i].source == b.nets[i].source);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SynthTest, PinsOfANetAreDistinctBlocks) {
  const Circuit c = synthesize_circuit(xc4000_profiles()[0], 11);
  for (const auto& net : c.nets) {
    std::vector<PinRef> pins{net.source};
    pins.insert(pins.end(), net.sinks.begin(), net.sinks.end());
    for (std::size_t i = 0; i < pins.size(); ++i) {
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        EXPECT_FALSE(pins[i] == pins[j]);
      }
    }
  }
}

TEST(SynthTest, LocalityKeepsNetsClustered) {
  // With the default locality, the mean net bounding-box semi-perimeter
  // should be well under a uniform placement's.
  const auto& profile = xc4000_profiles()[5];  // k2, 22x20
  const Circuit local = synthesize_circuit(profile, 3);
  SynthOptions uniform;
  uniform.locality_sigma = 10.0;  // effectively uniform
  const Circuit spread = synthesize_circuit(profile, 3, uniform);

  const auto mean_span = [](const Circuit& c) {
    double total = 0;
    for (const auto& net : c.nets) {
      int min_x = net.source.x, max_x = net.source.x;
      int min_y = net.source.y, max_y = net.source.y;
      for (const auto& p : net.sinks) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
      total += (max_x - min_x) + (max_y - min_y);
    }
    return total / static_cast<double>(c.nets.size());
  };
  EXPECT_LT(mean_span(local), 0.7 * mean_span(spread));
}

TEST(SynthTest, BigNetsComeFirst) {
  const Circuit c = synthesize_circuit(xc4000_profiles()[0], 5);
  for (std::size_t i = 1; i < c.nets.size(); ++i) {
    EXPECT_GE(c.nets[i - 1].pin_count(), c.nets[i].pin_count());
  }
}

}  // namespace
}  // namespace fpr
