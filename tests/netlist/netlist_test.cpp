#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

Circuit tiny_circuit() {
  Circuit c;
  c.name = "tiny";
  c.rows = 4;
  c.cols = 4;
  c.nets.push_back({{0, 0}, {{1, 1}, {2, 2}}});                        // 3 pins
  c.nets.push_back({{3, 3}, {{0, 3}}});                                // 2 pins
  c.nets.push_back({{1, 0}, {{2, 0}, {3, 0}, {0, 1}, {1, 2}}});        // 5 pins
  return c;
}

TEST(NetlistTest, HistogramBuckets) {
  Circuit c = tiny_circuit();
  for (int i = 0; i < 11; ++i) c.nets[2].sinks.push_back({i % 4, i / 4});
  const auto h = c.histogram();
  EXPECT_EQ(h.pins_2_3, 2);
  EXPECT_EQ(h.pins_4_10, 0);
  EXPECT_EQ(h.pins_over_10, 1);
}

TEST(NetlistTest, WellFormedChecks) {
  Circuit c = tiny_circuit();
  EXPECT_TRUE(c.well_formed());
  c.nets.push_back({{0, 0}, {}});  // no sinks
  EXPECT_FALSE(c.well_formed());
  c.nets.pop_back();
  c.nets.push_back({{4, 0}, {{0, 0}}});  // source off array
  EXPECT_FALSE(c.well_formed());
}

TEST(NetlistTest, ToGraphNetMapsBlocks) {
  const Device device(ArchSpec::xc4000(4, 4, 2));
  const CircuitNet net{{0, 0}, {{1, 1}, {2, 2}}};
  const Net g = to_graph_net(device, net);
  EXPECT_EQ(g.source, device.block_node(0, 0));
  ASSERT_EQ(g.sinks.size(), 2u);
  EXPECT_EQ(g.sinks[0], device.block_node(1, 1));
}

TEST(NetlistTest, ToGraphNetDedupesAndDropsSelfSinks) {
  const Device device(ArchSpec::xc4000(4, 4, 2));
  const CircuitNet net{{0, 0}, {{1, 1}, {1, 1}, {0, 0}}};
  const Net g = to_graph_net(device, net);
  EXPECT_EQ(g.sinks.size(), 1u);
}

}  // namespace
}  // namespace fpr
