#include "netlist/profiles.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(ProfilesTest, Xc3000MatchesTable2) {
  const auto& profiles = xc3000_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  // Table 2 totals: 1744 nets = 1268 + 352 + 124; CGE 55, ours 45.
  int nets = 0, n23 = 0, n410 = 0, nover = 0, cge = 0, ours = 0;
  for (const auto& p : profiles) {
    nets += p.total_nets();
    n23 += p.nets_2_3;
    n410 += p.nets_4_10;
    nover += p.nets_over_10;
    cge += p.paper_cge;
    ours += p.paper_ikmb;
  }
  EXPECT_EQ(nets, 1744);
  EXPECT_EQ(n23, 1268);
  EXPECT_EQ(n410, 352);
  EXPECT_EQ(nover, 124);
  EXPECT_EQ(cge, 55);
  EXPECT_EQ(ours, 45);

  EXPECT_EQ(profiles[0].name, "busc");
  EXPECT_EQ(profiles[0].rows, 12);
  EXPECT_EQ(profiles[0].cols, 13);
  EXPECT_EQ(profiles[4].name, "z03");
  EXPECT_EQ(profiles[4].total_nets(), 608);
}

TEST(ProfilesTest, Xc4000MatchesTable3) {
  const auto& profiles = xc4000_profiles();
  ASSERT_EQ(profiles.size(), 9u);
  // Table 3 totals: 1710 nets = 1154 + 454 + 102; SEGA 118, GBP 110, ours 94.
  int nets = 0, n23 = 0, n410 = 0, nover = 0, sega = 0, gbp = 0, ours = 0;
  for (const auto& p : profiles) {
    nets += p.total_nets();
    n23 += p.nets_2_3;
    n410 += p.nets_4_10;
    nover += p.nets_over_10;
    sega += p.paper_sega;
    gbp += p.paper_gbp;
    ours += p.paper_ikmb;
  }
  EXPECT_EQ(nets, 1710);
  EXPECT_EQ(n23, 1154);
  EXPECT_EQ(n410, 454);
  EXPECT_EQ(nover, 102);
  EXPECT_EQ(sega, 118);
  EXPECT_EQ(gbp, 110);
  EXPECT_EQ(ours, 94);
}

TEST(ProfilesTest, Table4WidthsMatchPaper) {
  // Table 4 totals: IKMB 94, PFA 110, IDOM 106.
  int ikmb = 0, pfa = 0, idom = 0;
  for (const auto& p : xc4000_profiles()) {
    ikmb += p.paper_ikmb;
    pfa += p.paper_pfa;
    idom += p.paper_idom;
    // Table 5's fixed width accommodates all three algorithms.
    EXPECT_GE(p.paper_table5_width, p.paper_ikmb);
    EXPECT_GE(p.paper_table5_width, std::max(p.paper_pfa, p.paper_idom) - 1);
  }
  EXPECT_EQ(ikmb, 94);
  EXPECT_EQ(pfa, 110);
  EXPECT_EQ(idom, 106);
}

}  // namespace
}  // namespace fpr
