#include "workload/congestion_model.hpp"

#include <gtest/gtest.h>

#include "analysis/stats.hpp"

namespace fpr {
namespace {

TEST(CongestionTest, LevelsMatchPaperParameters) {
  EXPECT_EQ(congestion_none().pre_routed_nets, 0);
  EXPECT_DOUBLE_EQ(congestion_none().paper_mean_weight, 1.00);
  EXPECT_EQ(congestion_low().pre_routed_nets, 10);
  EXPECT_DOUBLE_EQ(congestion_low().paper_mean_weight, 1.28);
  EXPECT_EQ(congestion_medium().pre_routed_nets, 20);
  EXPECT_DOUBLE_EQ(congestion_medium().paper_mean_weight, 1.55);
}

TEST(CongestionTest, NoCongestionKeepsUnitWeights) {
  std::mt19937_64 rng(5);
  const GridGraph grid = make_congested_grid(20, 20, 0, rng);
  EXPECT_DOUBLE_EQ(grid.graph().mean_active_edge_weight(), 1.0);
}

TEST(CongestionTest, WeightsOnlyIncrease) {
  std::mt19937_64 rng(6);
  const GridGraph grid = make_congested_grid(20, 20, 15, rng);
  for (EdgeId e = 0; e < grid.graph().edge_count(); ++e) {
    EXPECT_GE(grid.graph().edge_weight(e), 1.0);
  }
  EXPECT_GT(grid.graph().mean_active_edge_weight(), 1.0);
}

TEST(CongestionTest, MeanWeightsReproducePaperLevels) {
  // The paper reports w-bar = 1.28 at k=10 and 1.55 at k=20 on 20x20 grids.
  // Average over many generated graphs and allow a modest tolerance (the
  // exact value depends on KMB tie-breaking).
  for (const auto& level : {congestion_low(), congestion_medium()}) {
    std::mt19937_64 rng(7);
    RunningStat stat;
    for (int i = 0; i < 40; ++i) {
      const GridGraph grid = make_congested_grid(20, 20, level.pre_routed_nets, rng);
      stat.add(grid.graph().mean_active_edge_weight());
    }
    EXPECT_NEAR(stat.mean(), level.paper_mean_weight, 0.12)
        << "k=" << level.pre_routed_nets;
  }
}

TEST(CongestionTest, DeterministicPerRngState) {
  std::mt19937_64 a(11), b(11);
  const GridGraph ga = make_congested_grid(10, 10, 8, a);
  const GridGraph gb = make_congested_grid(10, 10, 8, b);
  for (EdgeId e = 0; e < ga.graph().edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(ga.graph().edge_weight(e), gb.graph().edge_weight(e));
  }
}

}  // namespace
}  // namespace fpr
