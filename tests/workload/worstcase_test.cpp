#include "workload/worstcase.hpp"

#include <gtest/gtest.h>

#include "arbor/exact_gsa.hpp"
#include "arbor/idom.hpp"
#include "arbor/pfa.hpp"
#include "core/route.hpp"

namespace fpr {
namespace {

TEST(Fig10Test, OptimalCostMatchesExactSolver) {
  for (const int pairs : {1, 2, 3}) {
    const auto inst = pfa_weighted_worst_case(pairs);
    const auto opt = exact_gsa(inst.graph, inst.net.terminals());
    ASSERT_TRUE(opt.has_value()) << pairs;
    EXPECT_TRUE(weight_eq(opt->cost(), inst.optimal_cost)) << pairs;
  }
}

TEST(Fig10Test, PfaRatioGrowsLinearly) {
  double prev_ratio = 0;
  for (const int pairs : {2, 4, 8, 16}) {
    const auto inst = pfa_weighted_worst_case(pairs);
    PathOracle oracle(inst.graph);
    const auto tree = pfa(inst.graph, inst.net.terminals(), oracle);
    ASSERT_TRUE(tree.spans(inst.net.terminals()));
    const double ratio = tree.cost() / inst.optimal_cost;
    EXPECT_GT(ratio, prev_ratio);
    // The gadget forces ~pairs/2 unit decoy paths against the unit optimum,
    // but any Theta(pairs) growth demonstrates the figure; be tolerant.
    EXPECT_GE(ratio, 0.4 * pairs);
    prev_ratio = ratio;
  }
}

TEST(Fig10Test, PfaStillDeliversOptimalPathlengths) {
  // Even on its worst case, PFA must keep the GSA feasibility invariant.
  const auto inst = pfa_weighted_worst_case(4);
  PathOracle oracle(inst.graph);
  const auto tree = pfa(inst.graph, inst.net.terminals(), oracle);
  const auto& spt = oracle.from(inst.net.source);
  for (const NodeId s : inst.net.sinks) {
    EXPECT_TRUE(weight_eq(tree.path_length(inst.net.source, s), spt.distance(s)));
  }
}

TEST(Fig10Test, IdomEscapesThePfaTrap) {
  // Section 4.2's motivation: IDOM "optimally solves these particular
  // worst-case examples" — it can adopt the hub as a Steiner node.
  const auto inst = pfa_weighted_worst_case(4);
  PathOracle oracle(inst.graph);
  const auto tree = idom(inst.graph, inst.net.terminals(), oracle);
  ASSERT_TRUE(tree.spans(inst.net.terminals()));
  EXPECT_TRUE(weight_eq(tree.cost(), inst.optimal_cost));
}

TEST(Fig11Test, StaircaseGeometry) {
  const auto inst = pfa_staircase(4);
  EXPECT_EQ(inst.grid.width(), 5);
  EXPECT_EQ(inst.grid.height(), 9);
  // p_i = (i, 2*(4-i)) for i = 0..4; none coincides with the origin source.
  EXPECT_EQ(inst.net.sinks.size(), 5u);
}

TEST(Fig11Test, SinksArePairwiseIncomparable) {
  const auto inst = pfa_staircase(5);
  PathOracle oracle(inst.grid.graph());
  for (const NodeId a : inst.net.sinks) {
    for (const NodeId b : inst.net.sinks) {
      if (a == b) continue;
      // No sink lies on a shortest source path of another.
      EXPECT_FALSE(weight_eq(oracle.from(inst.net.source).distance(a),
                             oracle.from(inst.net.source).distance(b) + oracle.distance(b, a)));
    }
  }
}

TEST(Fig11Test, PfaStaysWithinTwiceOptimalAndIsSometimesSuboptimal) {
  // The paper cites this family as RSA's 2x-tight example. Our PFA appends
  // an SPT-extraction step over the folded-path union, which provably never
  // hurts and empirically defuses the published tightness: measured ratios
  // fluctuate slightly above 1 instead of approaching 2 (see DESIGN.md /
  // EXPERIMENTS.md). This test pins the proven bound and the fact that the
  // family still produces strictly suboptimal PFA trees.
  bool any_suboptimal = false;
  for (const int steps : {2, 4, 7, 9}) {
    const auto inst = pfa_staircase(steps);
    PathOracle oracle(inst.grid.graph());
    const auto tree = pfa(inst.grid.graph(), inst.net.terminals(), oracle);
    const auto opt = exact_gsa(inst.grid.graph(), inst.net.terminals(), oracle);
    ASSERT_TRUE(opt.has_value());
    const double ratio = tree.cost() / opt->cost();
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, 2.0 + 1e-9);  // PFA's grid performance bound
    if (ratio > 1.0 + 1e-9) any_suboptimal = true;
  }
  EXPECT_TRUE(any_suboptimal);
}

TEST(Fig14Test, OptimalCostMatchesExactSolver) {
  for (const int levels : {1, 2}) {
    const auto inst = idom_set_cover_worst_case(levels);  // 4 resp. 8 sinks
    const auto opt = exact_gsa(inst.graph, inst.net.terminals());
    ASSERT_TRUE(opt.has_value()) << levels;
    EXPECT_TRUE(weight_eq(opt->cost(), inst.optimal_cost)) << levels;
  }
}

TEST(Fig14Test, IdomRatioGrowsLogarithmically) {
  std::vector<double> ratios;
  for (const int levels : {2, 3, 4}) {
    const auto inst = idom_set_cover_worst_case(levels);
    PathOracle oracle(inst.graph);
    const auto tree = idom(inst.graph, inst.net.terminals(), oracle);
    ASSERT_TRUE(tree.spans(inst.net.terminals()));
    ratios.push_back(tree.cost() / inst.optimal_cost);
  }
  // Ratio grows with levels (log of the sink count) and exceeds 1.
  EXPECT_GT(ratios[0], 1.0);
  EXPECT_GT(ratios[1], ratios[0]);
  EXPECT_GT(ratios[2], ratios[1]);
}

TEST(Fig14Test, IdomKeepsPathlengthsOptimalOnTheGadget) {
  const auto inst = idom_set_cover_worst_case(3);
  PathOracle oracle(inst.graph);
  const auto tree = idom(inst.graph, inst.net.terminals(), oracle);
  const auto& spt = oracle.from(inst.net.source);
  for (const NodeId s : inst.net.sinks) {
    EXPECT_TRUE(weight_eq(tree.path_length(inst.net.source, s), spt.distance(s)));
  }
}

}  // namespace
}  // namespace fpr
