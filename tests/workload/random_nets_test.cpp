#include "workload/random_nets.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fpr {
namespace {

TEST(RandomNetsTest, PinsAreDistinct) {
  GridGraph grid(20, 20);
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Net net = random_grid_net(grid, 8, rng);
    std::set<NodeId> pins{net.source};
    for (const NodeId s : net.sinks) {
      EXPECT_TRUE(pins.insert(s).second);
    }
    EXPECT_EQ(net.pin_count(), 8);
  }
}

TEST(RandomNetsTest, RangedPinCountStaysInRange) {
  GridGraph grid(10, 10);
  std::mt19937_64 rng(2);
  std::set<int> seen;
  for (int trial = 0; trial < 200; ++trial) {
    const Net net = random_grid_net(grid, 2, 5, rng);
    EXPECT_GE(net.pin_count(), 2);
    EXPECT_LE(net.pin_count(), 5);
    seen.insert(net.pin_count());
  }
  EXPECT_EQ(seen.size(), 4u);  // all sizes drawn over 200 trials
}

TEST(RandomNetsTest, DeterministicPerSeed) {
  GridGraph grid(12, 12);
  std::mt19937_64 a(9), b(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Net na = random_grid_net(grid, 5, a);
    const Net nb = random_grid_net(grid, 5, b);
    EXPECT_EQ(na.source, nb.source);
    EXPECT_EQ(na.sinks, nb.sinks);
  }
}

TEST(RandomNetsTest, CoversTheGrid) {
  GridGraph grid(5, 5);
  std::mt19937_64 rng(3);
  std::set<NodeId> seen;
  for (int trial = 0; trial < 300; ++trial) {
    const Net net = random_grid_net(grid, 3, rng);
    seen.insert(net.source);
    seen.insert(net.sinks.begin(), net.sinks.end());
  }
  EXPECT_EQ(seen.size(), 25u);  // uniform sampling touches every node
}

}  // namespace
}  // namespace fpr
