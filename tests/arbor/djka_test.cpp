#include "arbor/djka.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(DjkaTest, SingleSinkIsShortestPath) {
  GridGraph grid(6, 6);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(5, 2)};
  const auto tree = djka(grid.graph(), net);
  EXPECT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 7);
  EXPECT_DOUBLE_EQ(tree.path_length(net[0], net[1]), 7);
}

TEST(DjkaTest, PrunesNonSinkBranches) {
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(2, 0), grid.node_at(0, 2)};
  const auto tree = djka(grid.graph(), net);
  EXPECT_TRUE(tree.spans(net));
  EXPECT_TRUE(tree.is_tree());
  // Two straight arms of length 2; the SPT contains nothing else after
  // restriction to source-sink paths.
  EXPECT_DOUBLE_EQ(tree.cost(), 4);
}

TEST(DjkaTest, AllSinkPathsAreShortest) {
  GridGraph grid(8, 8);
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const auto net = testing::random_net(64, 6, rng);
    PathOracle oracle(grid.graph());
    const auto tree = djka(grid.graph(), net, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])));
    }
  }
}

TEST(DjkaTest, UnreachableSinkNotSpanned) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const std::vector<NodeId> net{0, 1, 2};
  const auto tree = djka(g, net);
  EXPECT_FALSE(tree.spans(net));
  // The reachable sink is still wired.
  EXPECT_DOUBLE_EQ(tree.path_length(0, 1), 1);
}

TEST(DjkaTest, EmptyAndSingletonNets) {
  GridGraph grid(3, 3);
  EXPECT_TRUE(djka(grid.graph(), std::vector<NodeId>{}).empty());
  EXPECT_TRUE(djka(grid.graph(), std::vector<NodeId>{4}).empty());
}

TEST(DjkaTest, DuplicateSinksAreHandled) {
  GridGraph grid(4, 4);
  const std::vector<NodeId> net{0, 3, 3, 3};
  const auto tree = djka(grid.graph(), net);
  EXPECT_DOUBLE_EQ(tree.cost(), 3);
}

}  // namespace
}  // namespace fpr
