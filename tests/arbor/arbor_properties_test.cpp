// Family-wide arborescence properties, the invariants Table 1's "Max Path
// (w.r.t. OPT) = 0.00" rows rest on: every construction yields optimal
// source-sink pathlengths; wirelength ordering IDOM <= DOM and
// PFA/IDOM >= exact GSA >= exact GMST.

#include <gtest/gtest.h>

#include "arbor/djka.hpp"
#include "arbor/dom.hpp"
#include "arbor/exact_gsa.hpp"
#include "arbor/idom.hpp"
#include "arbor/pfa.hpp"
#include "graph/grid.hpp"
#include "steiner/exact_gmst.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

struct Case {
  unsigned seed;
  int pins;
};

class ArborFamilyTest : public ::testing::TestWithParam<Case> {};

TEST_P(ArborFamilyTest, AllConstructionsGiveOptimalPathlengths) {
  const auto [seed, pins] = GetParam();
  const auto g = testing::random_connected_graph(30, 50, seed);
  std::mt19937_64 rng(testing::seeded_rng("arbor_properties/distance", seed));
  const auto net = testing::random_net(30, pins, rng);
  PathOracle oracle(g);
  const auto& spt = oracle.from(net[0]);

  const auto a = djka(g, net, oracle);
  const auto b = dom(g, net, oracle);
  const auto c = pfa(g, net, oracle);
  const auto d = idom(g, net, oracle);
  for (const auto* tree : {&a, &b, &c, &d}) {
    ASSERT_TRUE(tree->spans(net));
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree->path_length(net[0], net[i]), spt.distance(net[i])));
    }
  }
}

TEST_P(ArborFamilyTest, WirelengthOrdering) {
  const auto [seed, pins] = GetParam();
  const auto g = testing::random_connected_graph(30, 50, seed);
  std::mt19937_64 rng(testing::seeded_rng("arbor_properties/cost", seed));
  const auto net = testing::random_net(30, pins, rng);
  PathOracle oracle(g);

  const auto base_dom = dom(g, net, oracle);
  const auto iter_dom = idom(g, net, oracle);
  EXPECT_LE(iter_dom.cost(), base_dom.cost() + 1e-9);

  const auto opt_gsa = exact_gsa(g, net, oracle);
  ASSERT_TRUE(opt_gsa.has_value());
  for (const auto* tree : {&base_dom, &iter_dom}) {
    EXPECT_GE(tree->cost(), opt_gsa->cost() - 1e-9);
  }
  EXPECT_GE(pfa(g, net, oracle).cost(), opt_gsa->cost() - 1e-9);

  const auto opt_gmst = exact_gmst(g, net, oracle);
  ASSERT_TRUE(opt_gmst.has_value());
  EXPECT_GE(opt_gsa->cost(), opt_gmst->cost() - 1e-9);
}

TEST_P(ArborFamilyTest, GridInstances) {
  const auto [seed, pins] = GetParam();
  GridGraph grid(10, 10);
  std::mt19937_64 rng(testing::seeded_rng("arbor_properties/iterated", seed));
  const auto net = testing::random_net(100, pins, rng);
  PathOracle oracle(grid.graph());
  const auto& spt = oracle.from(net[0]);

  const auto p = pfa(grid.graph(), net, oracle);
  const auto i = idom(grid.graph(), net, oracle);
  for (const auto* tree : {&p, &i}) {
    ASSERT_TRUE(tree->spans(net));
    for (std::size_t s = 1; s < net.size(); ++s) {
      EXPECT_TRUE(weight_eq(tree->path_length(net[0], net[s]), spt.distance(net[s])));
    }
    // On a grid, wirelength is at least the distance to the farthest sink.
    Weight radius = 0;
    for (std::size_t s = 1; s < net.size(); ++s) {
      radius = std::max(radius, spt.distance(net[s]));
    }
    EXPECT_GE(tree->cost(), radius - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArborFamilyTest,
                         ::testing::Values(Case{1, 3}, Case{2, 3}, Case{3, 4}, Case{4, 4},
                                           Case{5, 5}, Case{6, 5}, Case{7, 6}, Case{8, 6},
                                           Case{9, 4}, Case{10, 5}, Case{11, 6}, Case{12, 3}));

TEST(ArborCongestionTest, ShortestPathsFollowCongestedMetric) {
  // Congest a corridor; arborescence must deliver shortest paths in the new
  // metric, not the rectilinear one (Fig. 3).
  GridGraph grid(7, 7);
  for (int x = 0; x < 6; ++x) {
    grid.graph().set_edge_weight(grid.horizontal_edge(x, 0), 3.0);
  }
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(6, 0), grid.node_at(3, 2)};
  const auto tree = pfa(grid.graph(), net, oracle);
  ASSERT_TRUE(tree.spans(net));
  const auto& spt = oracle.from(net[0]);
  // Detour through row 1 is cheaper than the congested row 0: 1+6+1 = 8 < 18.
  EXPECT_DOUBLE_EQ(spt.distance(grid.node_at(6, 0)), 8);
  EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[1]), 8));
}

}  // namespace
}  // namespace fpr
