#include "arbor/brbc.hpp"

#include <gtest/gtest.h>

#include "arbor/idom.hpp"
#include "steiner/kmb.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(BrbcTest, EpsilonZeroGivesOptimalPathlengths) {
  GridGraph grid(9, 9);
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const auto net = testing::random_net(81, 5, rng);
    PathOracle oracle(grid.graph());
    const auto tree = brbc(grid.graph(), net, 0.0, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])));
    }
  }
}

TEST(BrbcTest, HugeEpsilonKeepsKmbCost) {
  GridGraph grid(9, 9);
  std::mt19937_64 rng(18);
  const auto net = testing::random_net(81, 5, rng);
  PathOracle oracle(grid.graph());
  const auto base = kmb(grid.graph(), net, oracle);
  const auto tree = brbc(grid.graph(), net, 1e9, oracle);
  ASSERT_TRUE(tree.spans(net));
  // No shortcut ever fires; the result is the KMB tree restricted to
  // source-sink paths, which cannot cost more.
  EXPECT_LE(tree.cost(), base.cost() + 1e-9);
}

TEST(BrbcTest, RadiusBoundHolds) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    const auto g = testing::random_connected_graph(35, 60, seed);
    std::mt19937_64 rng(testing::seeded_rng("brbc/radius", seed));
    const auto net = testing::random_net(35, 6, rng);
    for (const double epsilon : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      PathOracle oracle(g);
      const auto tree = brbc(g, net, epsilon, oracle);
      ASSERT_TRUE(tree.spans(net)) << "seed " << seed;
      const auto& spt = oracle.from(net[0]);
      for (std::size_t i = 1; i < net.size(); ++i) {
        EXPECT_LE(tree.path_length(net[0], net[i]),
                  (1.0 + epsilon) * spt.distance(net[i]) + 1e-9)
            << "seed " << seed << " eps " << epsilon;
      }
    }
  }
}

TEST(BrbcTest, CostBoundHolds) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    const auto g = testing::random_connected_graph(30, 50, seed);
    std::mt19937_64 rng(testing::seeded_rng("brbc/cost", seed));
    const auto net = testing::random_net(30, 5, rng);
    PathOracle oracle(g);
    const Weight base_cost = kmb(g, net, oracle).cost();
    for (const double epsilon : {0.5, 1.0, 2.0}) {
      const auto tree = brbc(g, net, epsilon, oracle);
      EXPECT_LE(tree.cost(), (1.0 + 2.0 / epsilon) * base_cost + 1e-9);
    }
  }
}

TEST(BrbcTest, PaperClaimIdomDominatesAtEpsilonZero) {
  // Section 2's argument for the new arborescences: at the pure-pathlength
  // end, BRBC degenerates to a shortest-paths tree, while IDOM achieves the
  // same optimal pathlengths with no more (usually less) wirelength.
  int idom_wins_or_ties = 0;
  const int trials = 10;
  for (unsigned seed = 0; seed < trials; ++seed) {
    const auto g = testing::random_connected_graph(30, 50, seed + 100);
    std::mt19937_64 rng(testing::seeded_rng("brbc/tradeoff", seed));
    const auto net = testing::random_net(30, 5, rng);
    PathOracle oracle(g);
    const auto spt_tree = brbc(g, net, 0.0, oracle);
    const auto idom_tree = idom(g, net, oracle);
    ASSERT_TRUE(idom_tree.spans(net));
    if (idom_tree.cost() <= spt_tree.cost() + 1e-9) ++idom_wins_or_ties;
  }
  EXPECT_GE(idom_wins_or_ties, trials - 1);  // dominance, allowing one fluke
}

TEST(BrbcTest, DegenerateNets) {
  GridGraph grid(4, 4);
  EXPECT_TRUE(brbc(grid.graph(), std::vector<NodeId>{}, 1.0).empty());
  EXPECT_TRUE(brbc(grid.graph(), std::vector<NodeId>{3}, 1.0).empty());
  const std::vector<NodeId> pair{0, 15};
  EXPECT_DOUBLE_EQ(brbc(grid.graph(), pair, 1.0).cost(), 6);
}

TEST(BrbcTest, UnroutableNetReported) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const std::vector<NodeId> net{0, 2};
  EXPECT_FALSE(brbc(g, net, 1.0).spans(net));
}

}  // namespace
}  // namespace fpr
