#include "arbor/dominance.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

class DominanceGridTest : public ::testing::Test {
 protected:
  DominanceGridTest() : grid_(6, 6), oracle_(grid_.graph()), source_(grid_.node_at(0, 0)) {}
  GridGraph grid_;
  PathOracle oracle_;
  NodeId source_;
};

TEST_F(DominanceGridTest, MatchesRectilinearDominanceOnUnitGrid) {
  // On an uncongested grid rooted at the origin, p dominates s iff s lies in
  // p's lower-left quadrant (the Manhattan-plane definition of Fig. 7).
  const NodeId p = grid_.node_at(3, 2);
  EXPECT_TRUE(dominates(oracle_, source_, p, grid_.node_at(1, 1)));
  EXPECT_TRUE(dominates(oracle_, source_, p, grid_.node_at(3, 0)));
  EXPECT_TRUE(dominates(oracle_, source_, p, grid_.node_at(0, 2)));
  EXPECT_FALSE(dominates(oracle_, source_, p, grid_.node_at(4, 0)));
  EXPECT_FALSE(dominates(oracle_, source_, p, grid_.node_at(1, 3)));
}

TEST_F(DominanceGridTest, ReflexiveAndSourceCases) {
  const NodeId p = grid_.node_at(2, 4);
  EXPECT_TRUE(dominates(oracle_, source_, p, p));
  EXPECT_TRUE(dominates(oracle_, source_, p, source_));   // everything sits above n0
  EXPECT_FALSE(dominates(oracle_, source_, source_, p));  // n0 dominates only itself
}

TEST_F(DominanceGridTest, MaxDomIsTheMeetOfQuadrants) {
  const NodeId p = grid_.node_at(3, 1);
  const NodeId q = grid_.node_at(1, 3);
  const NodeId m = max_dom(grid_.graph(), oracle_, source_, p, q);
  EXPECT_EQ(m, grid_.node_at(1, 1));
}

TEST_F(DominanceGridTest, MaxDomWhenOneDominatesTheOther) {
  const NodeId p = grid_.node_at(4, 4);
  const NodeId q = grid_.node_at(2, 2);
  // q is in p's quadrant, so the farthest commonly-dominated node is q.
  EXPECT_EQ(max_dom(grid_.graph(), oracle_, source_, p, q), q);
}

TEST_F(DominanceGridTest, MaxDomOfOppositeArmsIsSource) {
  const NodeId p = grid_.node_at(5, 0);
  const NodeId q = grid_.node_at(0, 5);
  EXPECT_EQ(max_dom(grid_.graph(), oracle_, source_, p, q), source_);
}

TEST_F(DominanceGridTest, MaxDomWithinRestrictsToCandidates) {
  const NodeId p = grid_.node_at(3, 1);
  const NodeId q = grid_.node_at(1, 3);
  const std::vector<NodeId> only_source{source_};
  EXPECT_EQ(max_dom_within(oracle_, source_, p, q, only_source), source_);
  const std::vector<NodeId> with_meet{source_, grid_.node_at(1, 1), grid_.node_at(1, 0)};
  EXPECT_EQ(max_dom_within(oracle_, source_, p, q, with_meet), grid_.node_at(1, 1));
}

TEST(DominanceDetourTest, FollowsGraphMetricNotGeometry) {
  // Congest the straight corridor so the shortest path detours; dominance
  // must follow the *graph* metric (Fig. 3 motivation).
  GridGraph grid(5, 3);
  for (int x = 0; x < 4; ++x) grid.graph().set_edge_weight(grid.horizontal_edge(x, 0), 10);
  PathOracle oracle(grid.graph());
  const NodeId source = grid.node_at(0, 0);
  const NodeId p = grid.node_at(4, 0);
  // d(src, p) = 1 + 4 + 1 = 6 via row 1; the row-1 node (2,1) lies on it.
  EXPECT_TRUE(dominates(oracle, source, p, grid.node_at(2, 1)));
  // The geometric in-between (2,0) is NOT on any shortest path now.
  EXPECT_FALSE(dominates(oracle, source, p, grid.node_at(2, 0)));
}

TEST(DominanceUnreachableTest, MaxDomInvalidWhenDisconnected) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  // 2, 3 unreachable from 0.
  PathOracle oracle(g);
  EXPECT_EQ(max_dom(g, oracle, 0, 2, 3), kInvalidNode);
  EXPECT_FALSE(dominates(oracle, 0, 2, 1));
}

TEST(DominanceZeroWeightTest, ZeroEdgesCreateMutualDominance) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 0);
  PathOracle oracle(g);
  EXPECT_TRUE(dominates(oracle, 0, 1, 2));
  EXPECT_TRUE(dominates(oracle, 0, 2, 1));
}

class DominancePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DominancePropertyTest, DefinitionHoldsOnRandomGraphs) {
  const auto g = testing::random_connected_graph(30, 45, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("dominance", GetParam()));
  const auto picks = testing::random_net(30, 3, rng);
  PathOracle oracle(g);
  const NodeId n0 = picks[0], p = picks[1], s = picks[2];
  const bool dom = dominates(oracle, n0, p, s);
  const Weight lhs = oracle.from(n0).distance(p);
  const Weight rhs = oracle.from(n0).distance(s) + oracle.from(p).distance(s);
  EXPECT_EQ(dom, weight_eq(lhs, rhs));
  EXPECT_LE(lhs, rhs + 1e-9);  // triangle inequality: dominance is the tight case
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominancePropertyTest, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace fpr
