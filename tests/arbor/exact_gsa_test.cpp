#include "arbor/exact_gsa.hpp"

#include <gtest/gtest.h>

#include "arbor/idom.hpp"
#include "arbor/pfa.hpp"
#include "graph/grid.hpp"
#include "steiner/exact_gmst.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(ExactGsaTest, TwoSinksWithMeet) {
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(3, 1), grid.node_at(1, 3)};
  const auto tree = exact_gsa(grid.graph(), net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->cost(), 6);
  EXPECT_TRUE(tree->spans(net));
}

TEST(ExactGsaTest, SingleSinkIsShortestPath) {
  GridGraph grid(6, 6);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(5, 4)};
  const auto tree = exact_gsa(grid.graph(), net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->cost(), 9);
}

TEST(ExactGsaTest, PathlengthConstraintCanCostWirelength) {
  // A graph where the optimal Steiner tree violates shortest paths:
  // source 0, sinks 3 and 4 reachable directly (cost 2 each) or via a
  // shared detour that is longer per sink but cheaper in total.
  Graph g(5);
  g.add_edge(0, 3, 2.0);
  g.add_edge(0, 4, 2.0);
  g.add_edge(0, 1, 1.8);  // shared trunk
  g.add_edge(1, 3, 0.3);
  g.add_edge(1, 4, 0.3);
  const std::vector<NodeId> net{0, 3, 4};
  const auto gsa = exact_gsa(g, net);
  const auto gmst = exact_gmst(g, net);
  ASSERT_TRUE(gsa.has_value());
  ASSERT_TRUE(gmst.has_value());
  // GMST takes the trunk (1.8 + 0.3 + 0.3 = 2.4); GSA must keep both sinks
  // at distance 2 and pays 4.0.
  EXPECT_DOUBLE_EQ(gmst->cost(), 2.4);
  EXPECT_DOUBLE_EQ(gsa->cost(), 4.0);
  EXPECT_TRUE(weight_eq(gsa->path_length(0, 3), 2.0));
  EXPECT_TRUE(weight_eq(gsa->path_length(0, 4), 2.0));
}

TEST(ExactGsaTest, UnreachableSinkReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const std::vector<NodeId> net{0, 2};
  EXPECT_FALSE(exact_gsa(g, net).has_value());
}

TEST(ExactGsaTest, TerminalLimit) {
  GridGraph grid(4, 4);
  std::vector<NodeId> net;
  for (NodeId v = 0; v < 8; ++v) net.push_back(v);
  EXPECT_FALSE(exact_gsa(grid.graph(), net, 3).has_value());
}

class ExactGsaPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExactGsaPropertyTest, SandwichedBetweenGmstAndHeuristics) {
  const auto g = testing::random_connected_graph(25, 40, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("exact_gsa/brute", GetParam()));
  const auto net = testing::random_net(25, 5, rng);
  PathOracle oracle(g);
  const auto gsa = exact_gsa(g, net, oracle);
  ASSERT_TRUE(gsa.has_value());
  ASSERT_TRUE(gsa->spans(net));

  // Lower bound: unconstrained Steiner optimum.
  const auto gmst = exact_gmst(g, net, oracle);
  ASSERT_TRUE(gmst.has_value());
  EXPECT_GE(gsa->cost(), gmst->cost() - 1e-9);

  // Upper bounds: every arborescence heuristic.
  const auto p = pfa(g, net, oracle);
  const auto i = idom(g, net, oracle);
  EXPECT_LE(gsa->cost(), p.cost() + 1e-9);
  EXPECT_LE(gsa->cost(), i.cost() + 1e-9);
}

TEST_P(ExactGsaPropertyTest, EverySinkAtGraphDistance) {
  const auto g = testing::random_connected_graph(25, 40, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("exact_gsa/bound", GetParam()));
  const auto net = testing::random_net(25, 4, rng);
  PathOracle oracle(g);
  const auto gsa = exact_gsa(g, net, oracle);
  ASSERT_TRUE(gsa.has_value());
  const auto& spt = oracle.from(net[0]);
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_TRUE(weight_eq(gsa->path_length(net[0], net[i]), spt.distance(net[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactGsaPropertyTest, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace fpr
