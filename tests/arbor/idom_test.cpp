#include "arbor/idom.hpp"

#include <gtest/gtest.h>

#include "arbor/dom.hpp"
#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(IdomTest, AdoptsSteinerMeetPoint) {
  // Two sinks sharing a meet at (1,1): DOM alone cannot fold (neither sink
  // dominates the other), IDOM adopts the meet and saves two units.
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(3, 1), grid.node_at(1, 3)};
  PathOracle oracle(grid.graph());
  const auto base = dom(grid.graph(), net, oracle);
  const auto iterated = idom(grid.graph(), net, oracle);
  ASSERT_TRUE(iterated.spans(net));
  // DOM routes both sinks from the source; the two SPT paths happen to share
  // one prefix edge, so the base costs 7 (8 without sharing).
  EXPECT_DOUBLE_EQ(base.cost(), 7);
  EXPECT_DOUBLE_EQ(iterated.cost(), 6);
  EXPECT_DOUBLE_EQ(iterated.path_length(net[0], net[1]), 4);
  EXPECT_DOUBLE_EQ(iterated.path_length(net[0], net[2]), 4);
}

TEST(IdomTest, NeverWorseThanDom) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const auto g = testing::random_connected_graph(30, 50, seed);
    std::mt19937_64 rng(testing::seeded_rng("idom", seed));
    const auto net = testing::random_net(30, 5, rng);
    PathOracle oracle(g);
    const auto base = dom(g, net, oracle);
    const auto iterated = idom(g, net, oracle);
    ASSERT_TRUE(iterated.spans(net));
    EXPECT_LE(iterated.cost(), base.cost() + 1e-9);
  }
}

TEST(IdomTest, PathlengthsAlwaysOptimal) {
  GridGraph grid(8, 8);
  std::mt19937_64 rng(51);
  for (int trial = 0; trial < 8; ++trial) {
    const auto net = testing::random_net(64, 5, rng);
    PathOracle oracle(grid.graph());
    const auto tree = idom(grid.graph(), net, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])))
          << "sink " << net[i];
    }
  }
}

TEST(IdomTest, MaxIterationsLimitsAdoption) {
  GridGraph grid(7, 7);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(5, 1), grid.node_at(1, 5),
                                grid.node_at(4, 4)};
  PathOracle oracle(grid.graph());
  IdomOptions capped;
  capped.max_iterations = 1;
  const auto limited = idom(grid.graph(), net, oracle, capped);
  const auto full = idom(grid.graph(), net, oracle);
  ASSERT_TRUE(limited.spans(net));
  EXPECT_LE(full.cost(), limited.cost() + 1e-9);
}

TEST(IdomTest, CorridorCandidatesFindGridMeets) {
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(3, 1), grid.node_at(1, 3)};
  PathOracle oracle(grid.graph());
  IdomOptions options;
  options.candidates = CandidateStrategy::kCorridor;
  const auto tree = idom(grid.graph(), net, oracle, options);
  EXPECT_DOUBLE_EQ(tree.cost(), 6);  // the meet lies on terminal shortest paths
}

TEST(IdomTest, DegenerateNets) {
  GridGraph grid(4, 4);
  EXPECT_TRUE(idom(grid.graph(), std::vector<NodeId>{}).empty());
  EXPECT_TRUE(idom(grid.graph(), std::vector<NodeId>{3}).empty());
  const std::vector<NodeId> pair{0, 15};
  EXPECT_DOUBLE_EQ(idom(grid.graph(), pair).cost(), 6);
}

TEST(IdomTest, UnroutableNetReturnsNonSpanning) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const std::vector<NodeId> net{0, 2};
  EXPECT_FALSE(idom(g, net).spans(net));
}

}  // namespace
}  // namespace fpr
