#include "arbor/dom.hpp"

#include <gtest/gtest.h>

#include "arbor/djka.hpp"
#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(DomTest, ChainOfDominatingSinksSharesOneRun) {
  // Sinks along one row: each dominates the previous, so DOM builds a single
  // straight run instead of separate source paths.
  GridGraph grid(8, 3);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(3, 0), grid.node_at(5, 0),
                                grid.node_at(7, 0)};
  const auto tree = dom(grid.graph(), net);
  ASSERT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 7);
}

TEST(DomTest, PathlengthsAlwaysOptimal) {
  GridGraph grid(8, 8);
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto net = testing::random_net(64, 5, rng);
    PathOracle oracle(grid.graph());
    const auto tree = dom(grid.graph(), net, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])))
          << "sink " << net[i];
    }
  }
}

TEST(DomTest, NeverWorseThanDjkaOnAlignedSinks) {
  // When sinks dominate one another, DOM folds paths that DJKA may not.
  GridGraph grid(10, 10);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(4, 4), grid.node_at(8, 8)};
  const auto d = dom(grid.graph(), net);
  ASSERT_TRUE(d.spans(net));
  EXPECT_DOUBLE_EQ(d.cost(), 16);  // one monotone staircase through both sinks
}

TEST(DomTest, IndependentArmsCostFullDistance) {
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(2, 2), grid.node_at(2, 0), grid.node_at(0, 2),
                                grid.node_at(4, 2), grid.node_at(2, 4)};
  const auto tree = dom(grid.graph(), net);
  ASSERT_TRUE(tree.spans(net));
  // No sink dominates another (opposite arms): four separate spokes.
  EXPECT_DOUBLE_EQ(tree.cost(), 8);
}

TEST(DomTest, WorksOnWeightedRandomGraphs) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const auto g = testing::random_connected_graph(40, 70, seed);
    std::mt19937_64 rng(testing::seeded_rng("dom", seed));
    const auto net = testing::random_net(40, 6, rng);
    PathOracle oracle(g);
    const auto tree = dom(g, net, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])));
    }
  }
}

TEST(DomTest, ZeroWeightMutualDominanceStillSpans) {
  // Two sinks joined by a zero edge at equal distance: naive "connect to
  // nearest dominated" could produce a disconnected two-cycle; the
  // construction must recover.
  Graph g(4);
  g.add_edge(0, 1, 2);  // source 0 -> hub 1
  g.add_edge(1, 2, 1);  // sink 2
  g.add_edge(1, 3, 1);  // sink 3
  g.add_edge(2, 3, 0);  // zero edge: 2 and 3 dominate each other
  const std::vector<NodeId> net{0, 2, 3};
  PathOracle oracle(g);
  const auto tree = dom(g, net, oracle);
  ASSERT_TRUE(tree.spans(net));
  EXPECT_TRUE(weight_eq(tree.path_length(0, 2), 3));
  EXPECT_TRUE(weight_eq(tree.path_length(0, 3), 3));
}

TEST(DomTest, UnreachableSinkLeavesRestRouted) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const std::vector<NodeId> net{0, 2, 3};
  const auto tree = dom(g, net);
  EXPECT_FALSE(tree.spans(net));
  EXPECT_TRUE(weight_eq(tree.path_length(0, 2), 2));
}

}  // namespace
}  // namespace fpr
