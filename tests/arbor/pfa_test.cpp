#include "arbor/pfa.hpp"

#include <gtest/gtest.h>

#include "arbor/djka.hpp"
#include "arbor/dom.hpp"
#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(PfaTest, FoldsTwoSinksThroughTheirMeet) {
  // Sinks at (3,1) and (1,3): MaxDom is (1,1); folding shares the trunk
  // from the source to (1,1). Total = 2 (trunk) + 2 + 2 = 6, versus 4+4=8
  // unfolded.
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(3, 1), grid.node_at(1, 3)};
  const auto tree = pfa(grid.graph(), net);
  ASSERT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 6);
  EXPECT_TRUE(tree.contains_node(grid.node_at(1, 1)));
  // Pathlengths stay optimal.
  EXPECT_DOUBLE_EQ(tree.path_length(net[0], net[1]), 4);
  EXPECT_DOUBLE_EQ(tree.path_length(net[0], net[2]), 4);
}

TEST(PfaTest, BeatsDjkaWirelengthOnFoldableInstances) {
  GridGraph grid(7, 7);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(5, 2), grid.node_at(2, 5),
                                grid.node_at(4, 4)};
  PathOracle oracle(grid.graph());
  const auto folded = pfa(grid.graph(), net, oracle);
  const auto plain = djka(grid.graph(), net, oracle);
  ASSERT_TRUE(folded.spans(net));
  EXPECT_LE(folded.cost(), plain.cost() + 1e-9);
}

TEST(PfaTest, PathlengthsAlwaysOptimalOnRandomGrids) {
  GridGraph grid(9, 9);
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const auto net = testing::random_net(81, 6, rng);
    PathOracle oracle(grid.graph());
    const auto tree = pfa(grid.graph(), net, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])));
    }
  }
}

TEST(PfaTest, PathlengthsOptimalOnWeightedRandomGraphs) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const auto g = testing::random_connected_graph(35, 60, seed);
    std::mt19937_64 rng(testing::seeded_rng("pfa", seed));
    const auto net = testing::random_net(35, 5, rng);
    PathOracle oracle(g);
    const auto tree = pfa(g, net, oracle);
    ASSERT_TRUE(tree.spans(net));
    const auto& spt = oracle.from(net[0]);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_TRUE(weight_eq(tree.path_length(net[0], net[i]), spt.distance(net[i])));
    }
  }
}

TEST(PfaTest, TwoPinNetIsShortestPath) {
  GridGraph grid(6, 6);
  const std::vector<NodeId> net{grid.node_at(1, 1), grid.node_at(4, 5)};
  const auto tree = pfa(grid.graph(), net);
  EXPECT_DOUBLE_EQ(tree.cost(), 7);
}

TEST(PfaTest, EmptySingletonAndDuplicateNets) {
  GridGraph grid(4, 4);
  EXPECT_TRUE(pfa(grid.graph(), std::vector<NodeId>{}).empty());
  EXPECT_TRUE(pfa(grid.graph(), std::vector<NodeId>{5}).empty());
  const std::vector<NodeId> dup{0, 3, 3};
  EXPECT_DOUBLE_EQ(pfa(grid.graph(), dup).cost(), 3);
}

TEST(PfaTest, UnreachableSinkNotSpannedButOthersRouted) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const std::vector<NodeId> net{0, 2, 3};
  const auto tree = pfa(g, net);
  EXPECT_FALSE(tree.spans(net));
  EXPECT_TRUE(weight_eq(tree.path_length(0, 2), 2));
}

TEST(PfaTest, MatchesDomWhenNoGoodSteinerExists) {
  // Opposite arms: no folding possible, both reduce to star of spokes.
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(2, 2), grid.node_at(0, 2), grid.node_at(4, 2)};
  const auto p = pfa(grid.graph(), net);
  const auto d = dom(grid.graph(), net);
  EXPECT_DOUBLE_EQ(p.cost(), 4);
  EXPECT_DOUBLE_EQ(d.cost(), 4);
}

}  // namespace
}  // namespace fpr
