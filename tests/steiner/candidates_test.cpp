#include "steiner/candidates.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/grid.hpp"

namespace fpr {
namespace {

TEST(CandidatesTest, AllNodesExcludesTerminals) {
  GridGraph grid(4, 4);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> terminals{0, 5, 10};
  const auto c =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kAllNodes);
  EXPECT_EQ(c.size(), 13u);
  for (const NodeId t : terminals) {
    EXPECT_EQ(std::find(c.begin(), c.end(), t), c.end());
  }
}

TEST(CandidatesTest, AllNodesExcludesInactiveNodes) {
  GridGraph grid(3, 3);
  grid.graph().remove_node(4);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> terminals{0};
  const auto c =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kAllNodes);
  EXPECT_EQ(std::find(c.begin(), c.end(), 4), c.end());
}

TEST(CandidatesTest, CorridorIsSubsetOfAllNodes) {
  GridGraph grid(10, 10);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> terminals{grid.node_at(1, 1), grid.node_at(3, 2),
                                      grid.node_at(2, 4)};
  const auto corridor =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kCorridor);
  const auto all =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kAllNodes);
  EXPECT_LT(corridor.size(), all.size());
  for (const NodeId v : corridor) {
    EXPECT_NE(std::find(all.begin(), all.end(), v), all.end());
  }
}

TEST(CandidatesTest, CorridorCoversPathNodes) {
  GridGraph grid(8, 1);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> terminals{grid.node_at(0, 0), grid.node_at(7, 0)};
  const auto corridor =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kCorridor);
  // The whole interior of the path lies on the shortest path.
  EXPECT_EQ(corridor.size(), 6u);
}

TEST(CandidatesTest, MaxCandidatesCaps) {
  GridGraph grid(10, 10);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> terminals{0};
  const auto c =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kAllNodes, 7);
  EXPECT_EQ(c.size(), 7u);
}

TEST(CandidatesTest, DeterministicOutput) {
  GridGraph grid(9, 9);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> terminals{3, 40, 77};
  const auto a =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kCorridor);
  const auto b =
      steiner_candidates(grid.graph(), terminals, oracle, CandidateStrategy::kCorridor);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fpr
