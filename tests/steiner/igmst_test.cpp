#include "steiner/igmst.hpp"

#include <gtest/gtest.h>

#include "steiner/kmb.hpp"
#include "steiner/zelikovsky.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

Graph star_instance() {
  Graph g(5);  // 0..3 terminals, 4 hub
  for (NodeId t = 0; t < 4; ++t) g.add_edge(4, t, 1.0);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b, 1.9);
  }
  return g;
}

TEST(IgmstTest, IkmbAdoptsTheHub) {
  const Graph g = star_instance();
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 1, 2, 3};
  const auto tree = ikmb(g, net, oracle);
  ASSERT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 4.0);
  EXPECT_TRUE(tree.contains_node(4));
}

TEST(IgmstTest, CandidateEvaluationHitsTheOracleCache) {
  // The whole point of PathOracle (the paper's "factor out common
  // computations such as shortest paths"): evaluating many Steiner
  // candidates against one terminal set must be served mostly from cached
  // SSSP trees, not fresh Dijkstra runs.
  const Graph g = testing::random_connected_graph(30, 50, 7);
  PathOracle oracle(g);
  std::mt19937_64 rng(7);
  const auto net = testing::random_net(30, 4, rng);
  const auto tree = ikmb(g, net, oracle);
  ASSERT_TRUE(tree.spans(net));
  EXPECT_GT(oracle.cache_hits(), 0u);
  EXPECT_GT(oracle.hit_rate(), 0.5);  // candidates vastly outnumber sources
  EXPECT_LT(oracle.dijkstra_runs(), oracle.cache_hits() + oracle.cache_misses());
}

TEST(IgmstTest, GreedyStepsMatchWalkthrough) {
  // An instance needing two Steiner points, adopted one per iteration:
  // two hubs, each serving a terminal triple, joined by a bridge.
  //   terminals 0,1 near hub 6;   terminals 2,3 near hub 7;
  //   bridge 6-7; direct terminal-terminal edges are expensive.
  Graph g(8);
  g.add_edge(6, 0, 1.0);
  g.add_edge(6, 1, 1.0);
  g.add_edge(7, 2, 1.0);
  g.add_edge(7, 3, 1.0);
  g.add_edge(6, 7, 1.0);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b, 2.9);
  }
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 1, 2, 3};
  // Intra-pair distance is 2.0 through a hub; cross-pair 2.9 direct.
  // KMB's distance-graph MST: two intra-pair edges + one cross = 6.9.
  const auto plain = kmb(g, net, oracle);
  EXPECT_DOUBLE_EQ(plain.cost(), 6.9);

  // One iteration adopts a hub; KMB's re-MST over the expanded paths then
  // pulls in the second hub for free, so a single round already reaches 5.
  IgmstOptions one_round;
  one_round.max_iterations = 1;
  const auto partial = ikmb(g, net, oracle, one_round);
  EXPECT_LT(partial.cost(), plain.cost());

  const auto full = ikmb(g, net, oracle);
  EXPECT_DOUBLE_EQ(full.cost(), 5.0);  // both hubs + bridge
  EXPECT_TRUE(full.contains_node(6));
  EXPECT_TRUE(full.contains_node(7));
  EXPECT_LE(full.cost(), partial.cost());
}

TEST(IgmstTest, ReturnsHeuristicSolutionWhenNoCandidateHelps) {
  GridGraph grid(5, 1);  // a path: no Steiner point can ever help
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(4, 0)};
  PathOracle oracle(grid.graph());
  const auto h = kmb(grid.graph(), net, oracle);
  const auto it = ikmb(grid.graph(), net, oracle);
  EXPECT_DOUBLE_EQ(it.cost(), h.cost());
}

TEST(IgmstTest, UnroutableNetReturnsNonSpanningTree) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  const std::vector<NodeId> net{0, 3};
  PathOracle oracle(g);
  EXPECT_FALSE(ikmb(g, net, oracle).spans(net));
}

TEST(IgmstTest, WorksWithCustomHeuristic) {
  // Plug an arbitrary conforming heuristic (plain KMB wrapped) into the
  // template to confirm the template is heuristic-agnostic.
  const Graph g = star_instance();
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 1, 2, 3};
  int calls = 0;
  const GmstHeuristic counted = [&calls](const Graph& gg, std::span<const NodeId> nn,
                                         PathOracle& oo) {
    ++calls;
    return kmb(gg, nn, oo);
  };
  const auto tree = igmst(g, net, counted, oracle);
  EXPECT_DOUBLE_EQ(tree.cost(), 4.0);
  EXPECT_GT(calls, 1);
}

TEST(IgmstTest, CorridorStrategyStillFindsHub) {
  const Graph g = star_instance();
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 1, 2, 3};
  IgmstOptions options;
  options.candidates = CandidateStrategy::kCorridor;
  const auto tree = ikmb(g, net, oracle, options);
  // The hub neighbors every terminal, so the corridor contains it.
  EXPECT_DOUBLE_EQ(tree.cost(), 4.0);
}

TEST(IgmstTest, MaxCandidatesCapRespected) {
  GridGraph grid(8, 8);
  PathOracle oracle(grid.graph());
  std::mt19937_64 rng(5);
  const auto net = testing::random_net(64, 5, rng);
  IgmstOptions options;
  options.max_candidates = 3;
  const auto tree = ikmb(grid.graph(), net, oracle, options);
  EXPECT_TRUE(tree.spans(net));  // quality may drop; validity must not
}

class IgmstPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(IgmstPropertyTest, NeverWorseThanUnderlyingHeuristic) {
  const auto g = testing::random_connected_graph(30, 50, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("igmst/kmb_base", GetParam()));
  const auto net = testing::random_net(30, 5, rng);
  PathOracle oracle(g);
  const auto plain_kmb = kmb(g, net, oracle);
  const auto iter_kmb = ikmb(g, net, oracle);
  ASSERT_TRUE(iter_kmb.spans(net));
  EXPECT_LE(iter_kmb.cost(), plain_kmb.cost() + 1e-9);

  const auto plain_zel = zelikovsky(g, net, oracle);
  const auto iter_zel = izel(g, net, oracle);
  ASSERT_TRUE(iter_zel.spans(net));
  EXPECT_LE(iter_zel.cost(), plain_zel.cost() + 1e-9);
}

TEST_P(IgmstPropertyTest, OutputIsSteinerTreeWithTerminalLeaves) {
  const auto g = testing::random_connected_graph(25, 40, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("igmst/zel_base", GetParam()));
  const auto net = testing::random_net(25, 4, rng);
  PathOracle oracle(g);
  const auto tree = ikmb(g, net, oracle);
  ASSERT_TRUE(tree.spans(net));
  ASSERT_TRUE(tree.is_tree());
  for (const NodeId v : tree.nodes()) {
    int degree = 0;
    for (const EdgeId e : tree.edges()) {
      if (g.edge(e).u == v || g.edge(e).v == v) ++degree;
    }
    if (degree == 1) {
      EXPECT_NE(std::find(net.begin(), net.end(), v), net.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IgmstPropertyTest, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace fpr
