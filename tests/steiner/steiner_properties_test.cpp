// Cross-algorithm properties over the whole Steiner family, swept with
// parameterized seeds: approximation-bound chains and the quality ordering
// the paper reports (IZEL <= IKMB, iterated <= plain, everything >= OPT).

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "steiner/exact_gmst.hpp"
#include "steiner/igmst.hpp"
#include "steiner/kmb.hpp"
#include "steiner/zelikovsky.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

struct Case {
  unsigned seed;
  int pins;
};

class SteinerFamilyTest : public ::testing::TestWithParam<Case> {};

TEST_P(SteinerFamilyTest, BoundChainOnRandomGraphs) {
  const auto [seed, pins] = GetParam();
  const auto g = testing::random_connected_graph(22, 30, seed);
  std::mt19937_64 rng(testing::seeded_rng("steiner_properties/kmb", seed));
  const auto net = testing::random_net(22, pins, rng);
  PathOracle oracle(g);

  const auto opt = exact_gmst(g, net, oracle);
  ASSERT_TRUE(opt.has_value());
  const Weight opt_cost = opt->cost();

  const auto k = kmb(g, net, oracle);
  const auto z = zelikovsky(g, net, oracle);
  const auto ik = ikmb(g, net, oracle);
  const auto iz = izel(g, net, oracle);

  for (const auto* tree : {&k, &z, &ik, &iz}) {
    ASSERT_TRUE(tree->spans(net));
    EXPECT_GE(tree->cost(), opt_cost - 1e-9);  // nothing beats the exact DP
  }
  EXPECT_LE(k.cost(), 2.0 * opt_cost + 1e-9);
  EXPECT_LE(ik.cost(), 2.0 * opt_cost + 1e-9);
  EXPECT_LE(z.cost(), (11.0 / 6.0) * opt_cost + 1e-9);
  EXPECT_LE(iz.cost(), (11.0 / 6.0) * opt_cost + 1e-9);
  // Iteration never hurts.
  EXPECT_LE(ik.cost(), k.cost() + 1e-9);
  EXPECT_LE(iz.cost(), z.cost() + 1e-9);
}

TEST_P(SteinerFamilyTest, GridInstancesStaySane) {
  const auto [seed, pins] = GetParam();
  GridGraph grid(9, 9);
  std::mt19937_64 rng(testing::seeded_rng("steiner_properties/zel", seed));
  const auto net = testing::random_net(81, pins, rng);
  PathOracle oracle(grid.graph());
  const auto ik = ikmb(grid.graph(), net, oracle);
  ASSERT_TRUE(ik.spans(net));
  ASSERT_TRUE(ik.is_tree());
  // Rectilinear lower bound: half the bounding-box semi-perimeter is weak
  // but must hold on a unit grid.
  int min_x = 9, max_x = 0, min_y = 9, max_y = 0;
  for (const NodeId v : net) {
    const auto [x, y] = grid.coord(v);
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  EXPECT_GE(ik.cost(), static_cast<Weight>((max_x - min_x) + (max_y - min_y)) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SteinerFamilyTest,
                         ::testing::Values(Case{1, 3}, Case{2, 3}, Case{3, 4}, Case{4, 4},
                                           Case{5, 4}, Case{6, 5}, Case{7, 5}, Case{8, 5},
                                           Case{9, 6}, Case{10, 6}, Case{11, 4}, Case{12, 5}));

TEST(SteinerCongestionTest, AlgorithmsAdaptToWeightChanges) {
  // Route the same net before and after congesting the direct corridor:
  // costs must not decrease, and the congested route must avoid the heavy
  // edges when a detour is cheaper.
  GridGraph grid(7, 7);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(0, 3), grid.node_at(6, 3), grid.node_at(3, 6)};
  // Snapshot the cost before mutating weights: RoutingTree::cost() reads the
  // live graph.
  const Weight before = ikmb(grid.graph(), net, oracle).cost();
  for (int x = 0; x < 6; ++x) {
    grid.graph().set_edge_weight(grid.horizontal_edge(x, 3), 4.0);
  }
  const auto after = ikmb(grid.graph(), net, oracle);
  ASSERT_TRUE(after.spans(net));
  EXPECT_GT(after.cost(), before);
  // Paths are still measured in the congested metric.
  EXPECT_LE(after.cost(), 3 * 4.0 + before);
}

}  // namespace
}  // namespace fpr
