#include <gtest/gtest.h>

#include "steiner/igmst.hpp"
#include "steiner/kmb.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

IgmstOptions batched_options() {
  IgmstOptions options;
  options.batched = true;
  return options;
}

TEST(IgmstBatchedTest, StillFindsTheHub) {
  Graph g(5);
  for (NodeId t = 0; t < 4; ++t) g.add_edge(4, t, 1.0);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b, 1.9);
  }
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 1, 2, 3};
  const auto tree = ikmb(g, net, oracle, batched_options());
  ASSERT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 4.0);
}

TEST(IgmstBatchedTest, NeverWorseThanPlainHeuristic) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    const auto g = testing::random_connected_graph(30, 50, seed);
    std::mt19937_64 rng(testing::seeded_rng("igmst_batched/equivalence", seed));
    const auto net = testing::random_net(30, 6, rng);
    PathOracle oracle(g);
    const auto plain = kmb(g, net, oracle);
    const auto batched = ikmb(g, net, oracle, batched_options());
    ASSERT_TRUE(batched.spans(net));
    ASSERT_TRUE(batched.is_tree());
    EXPECT_LE(batched.cost(), plain.cost() + 1e-9);
  }
}

TEST(IgmstBatchedTest, QualityCloseToSequential) {
  // The batch's non-interference re-check keeps quality near the one-at-a-
  // time template; allow a small regression, never an improvement beyond
  // noise is fine either way.
  double batched_total = 0, sequential_total = 0;
  for (unsigned seed = 0; seed < 12; ++seed) {
    const auto g = testing::random_connected_graph(30, 50, seed + 500);
    std::mt19937_64 rng(testing::seeded_rng("igmst_batched/monotonic", seed));
    const auto net = testing::random_net(30, 6, rng);
    PathOracle oracle(g);
    sequential_total += ikmb(g, net, oracle).cost();
    batched_total += ikmb(g, net, oracle, batched_options()).cost();
  }
  EXPECT_LE(batched_total, sequential_total * 1.03);
}

TEST(IgmstBatchedTest, AdoptsMultiplePointsInOneRound) {
  // Two independent hubs: the batch adopts both in a single round (the
  // sequential variant needs two rounds). Observed via the evaluation
  // count: batched = 2 rounds (work + empty confirm), sequential = 3.
  Graph g(8);
  g.add_edge(6, 0, 1.0);
  g.add_edge(6, 1, 1.0);
  g.add_edge(7, 2, 1.0);
  g.add_edge(7, 3, 1.0);
  g.add_edge(6, 7, 1.0);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b, 2.9);
  }
  PathOracle oracle(g);
  const std::vector<NodeId> net{0, 1, 2, 3};
  const auto tree = ikmb(g, net, oracle, batched_options());
  EXPECT_DOUBLE_EQ(tree.cost(), 5.0);
  EXPECT_TRUE(tree.contains_node(6));
  EXPECT_TRUE(tree.contains_node(7));
}

TEST(IgmstBatchedTest, GridNetsStayValid) {
  GridGraph grid(10, 10);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const auto net = testing::random_net(100, 7, rng);
    PathOracle oracle(grid.graph());
    const auto tree = ikmb(grid.graph(), net, oracle, batched_options());
    ASSERT_TRUE(tree.spans(net));
    ASSERT_TRUE(tree.is_tree());
  }
}

}  // namespace
}  // namespace fpr
