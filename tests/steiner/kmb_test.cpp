#include "steiner/kmb.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(KmbTest, TwoPinNetIsShortestPath) {
  GridGraph grid(6, 6);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(4, 3)};
  const auto tree = kmb(grid.graph(), net);
  EXPECT_TRUE(tree.spans(net));
  EXPECT_TRUE(tree.is_tree());
  EXPECT_DOUBLE_EQ(tree.cost(), 7);
}

TEST(KmbTest, SingleTerminalNeedsNoWire) {
  GridGraph grid(3, 3);
  const std::vector<NodeId> net{grid.node_at(1, 1)};
  const auto tree = kmb(grid.graph(), net);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.spans(net));
}

TEST(KmbTest, CollinearTerminalsShareWire) {
  GridGraph grid(7, 3);
  const std::vector<NodeId> net{grid.node_at(0, 1), grid.node_at(3, 1), grid.node_at(6, 1)};
  const auto tree = kmb(grid.graph(), net);
  EXPECT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 6);  // single straight run, no duplication
}

TEST(KmbTest, LeavesAreAlwaysTerminals) {
  GridGraph grid(8, 8);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto net = testing::random_net(64, 5, rng);
    const auto tree = kmb(grid.graph(), net);
    ASSERT_TRUE(tree.spans(net));
    ASSERT_TRUE(tree.is_tree());
    // Count degrees; leaves must be net pins.
    for (const NodeId v : tree.nodes()) {
      int degree = 0;
      for (const EdgeId e : tree.edges()) {
        if (grid.graph().edge(e).u == v || grid.graph().edge(e).v == v) ++degree;
      }
      if (degree == 1) {
        EXPECT_NE(std::find(net.begin(), net.end(), v), net.end())
            << "non-terminal leaf " << v;
      }
    }
  }
}

TEST(KmbTest, DisconnectedNetReportsNonSpanning) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  const std::vector<NodeId> net{0, 2};
  const auto tree = kmb(g, net);
  EXPECT_FALSE(tree.spans(net));
}

TEST(KmbTest, DuplicatePinsAreDeduped) {
  GridGraph grid(4, 4);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(3, 0), grid.node_at(0, 0)};
  const auto tree = kmb(grid.graph(), net);
  EXPECT_DOUBLE_EQ(tree.cost(), 3);
}

TEST(KmbTest, RespectsCongestionWeights) {
  // Heavier middle column pushes the route around it.
  GridGraph grid(5, 3);
  for (int y = 0; y < 2; ++y) grid.graph().set_edge_weight(grid.vertical_edge(2, y), 10);
  for (int y = 0; y < 3; ++y) {
    grid.graph().set_edge_weight(grid.horizontal_edge(1, y), y == 0 ? 1 : 10);
    grid.graph().set_edge_weight(grid.horizontal_edge(2, y), y == 0 ? 1 : 10);
  }
  const std::vector<NodeId> net{grid.node_at(0, 1), grid.node_at(4, 1)};
  const auto tree = kmb(grid.graph(), net);
  ASSERT_TRUE(tree.spans(net));
  // Detour through row 0: down, across (cheap row), up = 2 + 4 = 6 total.
  EXPECT_DOUBLE_EQ(tree.cost(), 6);
}

TEST(KmbTest, SharedOracleAvoidsRecomputation) {
  GridGraph grid(6, 6);
  PathOracle oracle(grid.graph());
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(5, 5), grid.node_at(0, 5)};
  kmb(grid.graph(), net, oracle);
  const auto runs = oracle.dijkstra_runs();
  kmb(grid.graph(), net, oracle);
  EXPECT_EQ(oracle.dijkstra_runs(), runs);  // second run fully served by cache
}

class KmbBoundTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(KmbBoundTest, WithinTwiceOptimal) {
  const auto g = testing::random_connected_graph(12, 14, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("kmb", GetParam()));
  const auto net = testing::random_net(12, 4, rng);
  const auto tree = kmb(g, net);
  ASSERT_TRUE(tree.spans(net));
  const Weight opt = testing::brute_force_gmst_cost(g, net);
  EXPECT_GE(tree.cost(), opt - 1e-9);
  EXPECT_LE(tree.cost(), 2.0 * opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmbBoundTest, ::testing::Range(0u, 15u));

}  // namespace
}  // namespace fpr
