#include "steiner/exact_gmst.hpp"

#include <gtest/gtest.h>

#include "graph/grid.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

TEST(ExactGmstTest, TwoPinNetIsShortestPath) {
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(4, 2)};
  const auto tree = exact_gmst(grid.graph(), net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->cost(), 6);
  EXPECT_TRUE(tree->spans(net));
}

TEST(ExactGmstTest, RectilinearSteinerPointOnGrid) {
  // Three corners of a rectangle: optimal Steiner tree uses the corner /
  // interior meeting point; cost = half-perimeter + distance to third pin.
  GridGraph grid(5, 5);
  const std::vector<NodeId> net{grid.node_at(0, 0), grid.node_at(4, 0), grid.node_at(2, 3)};
  const auto tree = exact_gmst(grid.graph(), net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->cost(), 7);  // trunk of 4 + stem of 3
}

TEST(ExactGmstTest, FindsHubOnStarInstance) {
  Graph g(5);
  for (NodeId t = 0; t < 4; ++t) g.add_edge(4, t, 1.0);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b, 1.9);
  }
  const std::vector<NodeId> net{0, 1, 2, 3};
  const auto tree = exact_gmst(g, net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_DOUBLE_EQ(tree->cost(), 4.0);
}

TEST(ExactGmstTest, SingleTerminal) {
  GridGraph grid(3, 3);
  const std::vector<NodeId> net{grid.node_at(1, 1)};
  const auto tree = exact_gmst(grid.graph(), net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->empty());
}

TEST(ExactGmstTest, DisconnectedReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const std::vector<NodeId> net{0, 2};
  EXPECT_FALSE(exact_gmst(g, net).has_value());
}

TEST(ExactGmstTest, TerminalLimitReturnsNullopt) {
  GridGraph grid(4, 4);
  std::vector<NodeId> net;
  for (NodeId v = 0; v < 6; ++v) net.push_back(v);
  EXPECT_FALSE(exact_gmst(grid.graph(), net, 5).has_value());
}

class ExactGmstPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExactGmstPropertyTest, MatchesBruteForce) {
  const auto g = testing::random_connected_graph(11, 12, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("exact_gmst/brute", GetParam()));
  const auto net = testing::random_net(11, 4, rng);
  const auto tree = exact_gmst(g, net);
  ASSERT_TRUE(tree.has_value());
  ASSERT_TRUE(tree->spans(net));
  const Weight brute = testing::brute_force_gmst_cost(g, net);
  EXPECT_TRUE(weight_eq(tree->cost(), brute))
      << "dp=" << tree->cost() << " brute=" << brute;
}

TEST_P(ExactGmstPropertyTest, ReconstructionCostMatchesDpValueOnGrids) {
  GridGraph grid(6, 6);
  std::mt19937_64 rng(testing::seeded_rng("exact_gmst/bound", GetParam()));
  const auto net = testing::random_net(36, 5, rng);
  const auto tree = exact_gmst(grid.graph(), net);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->spans(net));
  EXPECT_TRUE(tree->is_tree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactGmstPropertyTest, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace fpr
