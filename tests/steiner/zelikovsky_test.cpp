#include "steiner/zelikovsky.hpp"

#include <gtest/gtest.h>

#include "steiner/kmb.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

/// Star instance where the MST over terminals costs 3 * 1.9 = 5.7 but the
/// Steiner star through the hub costs 4. KMB misses the hub; ZEL's triple
/// contraction finds it.
Graph star_instance() {
  Graph g(5);  // 0..3 terminals, 4 hub
  for (NodeId t = 0; t < 4; ++t) g.add_edge(4, t, 1.0);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b, 1.9);
  }
  return g;
}

TEST(ZelikovskyTest, FindsHubSteinerPoint) {
  const Graph g = star_instance();
  const std::vector<NodeId> net{0, 1, 2, 3};
  const auto kmb_tree = kmb(g, net);
  const auto zel_tree = zelikovsky(g, net);
  ASSERT_TRUE(zel_tree.spans(net));
  EXPECT_DOUBLE_EQ(kmb_tree.cost(), 5.7);
  EXPECT_DOUBLE_EQ(zel_tree.cost(), 4.0);
  EXPECT_TRUE(zel_tree.contains_node(4));
}

TEST(ZelikovskyTest, FallsBackToKmbForTwoPins) {
  const Graph g = star_instance();
  const std::vector<NodeId> net{0, 1};
  const auto tree = zelikovsky(g, net);
  ASSERT_TRUE(tree.spans(net));
  EXPECT_DOUBLE_EQ(tree.cost(), 1.9);
}

TEST(ZelikovskyTest, SingleAndEmptyNets) {
  const Graph g = star_instance();
  EXPECT_TRUE(zelikovsky(g, std::vector<NodeId>{2}).empty());
  EXPECT_TRUE(zelikovsky(g, std::vector<NodeId>{}).empty());
}

TEST(ZelikovskyTest, DisconnectedNetReportsNonSpanning) {
  Graph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  // 3, 4 isolated.
  const std::vector<NodeId> net{0, 2, 4};
  EXPECT_FALSE(zelikovsky(g, net).spans(net));
}

TEST(ZelikovskyTest, NeverWorseThanKmbOnGrids) {
  GridGraph grid(10, 10);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const auto net = testing::random_net(100, 6, rng);
    const auto k = kmb(grid.graph(), net);
    const auto z = zelikovsky(grid.graph(), net);
    ASSERT_TRUE(z.spans(net));
    ASSERT_TRUE(z.is_tree());
    // ZEL only contracts on strictly positive win, so it should not lose to
    // KMB; allow exact ties.
    EXPECT_LE(z.cost(), k.cost() + 1e-9);
  }
}

class ZelBoundTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZelBoundTest, WithinElevenSixthsOptimal) {
  const auto g = testing::random_connected_graph(12, 14, GetParam());
  std::mt19937_64 rng(testing::seeded_rng("zelikovsky", GetParam()));
  const auto net = testing::random_net(12, 5, rng);
  const auto tree = zelikovsky(g, net);
  ASSERT_TRUE(tree.spans(net));
  const Weight opt = testing::brute_force_gmst_cost(g, net);
  EXPECT_GE(tree.cost(), opt - 1e-9);
  EXPECT_LE(tree.cost(), (11.0 / 6.0) * opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZelBoundTest, ::testing::Range(0u, 15u));

}  // namespace
}  // namespace fpr
