#include "fpga/device.hpp"

#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"

namespace fpr {
namespace {

TEST(DeviceTest, NodeCounts) {
  // 3x4 array, W=2: blocks 12, hwires (3+1)*4*2 = 32, vwires (4+1)*3*2 = 30.
  const Device device(ArchSpec::xc4000(3, 4, 2));
  EXPECT_EQ(device.block_count(), 12);
  EXPECT_EQ(device.wire_count(), 62);
  EXPECT_EQ(device.graph().node_count(), 74);
}

TEST(DeviceTest, BlockAndWireClassification) {
  const Device device(ArchSpec::xc4000(3, 3, 2));
  EXPECT_TRUE(device.is_block(device.block_node(0, 0)));
  EXPECT_TRUE(device.is_block(device.block_node(2, 2)));
  const NodeId w = device.wire_node(Device::Dir::kHorizontal, 0, 0, 0);
  EXPECT_TRUE(device.is_wire(w));
  EXPECT_FALSE(device.is_block(w));
}

TEST(DeviceTest, WireRefRoundTrip) {
  const Device device(ArchSpec::xc4000(4, 5, 3));
  for (const auto dir : {Device::Dir::kHorizontal, Device::Dir::kVertical}) {
    const int max_x = dir == Device::Dir::kHorizontal ? 4 : 5;
    const int max_y = dir == Device::Dir::kHorizontal ? 4 : 3;
    for (int x = 0; x <= max_x; ++x) {
      for (int y = 0; y <= max_y; ++y) {
        for (int t = 0; t < 3; ++t) {
          const NodeId v = device.wire_node(dir, x, y, t);
          const auto ref = device.wire_ref(v);
          EXPECT_EQ(ref.dir, dir);
          EXPECT_EQ(ref.x, x);
          EXPECT_EQ(ref.y, y);
          EXPECT_EQ(ref.track, t);
        }
      }
    }
  }
}

TEST(DeviceTest, TileSiblingsShareChannelTile) {
  const Device device(ArchSpec::xc4000(3, 3, 4));
  const NodeId w = device.wire_node(Device::Dir::kVertical, 1, 2, 1);
  const auto siblings = device.tile_siblings(w);
  ASSERT_EQ(siblings.size(), 3u);
  for (const NodeId s : siblings) {
    const auto ref = device.wire_ref(s);
    EXPECT_EQ(ref.dir, Device::Dir::kVertical);
    EXPECT_EQ(ref.x, 1);
    EXPECT_EQ(ref.y, 2);
    EXPECT_NE(ref.track, 1);
  }
}

TEST(DeviceTest, BlocksAreMutuallyReachable) {
  const Device device(ArchSpec::xc4000(4, 4, 2));
  const auto spt = dijkstra(device.graph(), device.block_node(0, 0));
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      EXPECT_TRUE(spt.reached(device.block_node(x, y))) << x << "," << y;
    }
  }
}

TEST(DeviceTest, DistanceGrowsWithManhattanSeparation) {
  const Device device(ArchSpec::xc4000(6, 6, 3));
  const auto spt = dijkstra(device.graph(), device.block_node(0, 0));
  const Weight near = spt.distance(device.block_node(1, 0));
  const Weight far = spt.distance(device.block_node(5, 5));
  EXPECT_LT(near, far);
  // A block-to-adjacent-block route needs pin->wire->pin at minimum.
  EXPECT_GE(near, 2.0);
}

TEST(DeviceTest, Xc3000HasRicherSwitchboxes) {
  const Device d4(ArchSpec::xc4000(4, 4, 4));
  ArchSpec a3 = ArchSpec::xc3000(4, 4, 4);
  const Device d3(a3);
  // Same array and width: the augmented pattern (Fs=6) must add edges.
  EXPECT_GT(d3.graph().edge_count() - 16 * 4 * a3.fc(),
            d4.graph().edge_count() - 16 * 4 * 4);
}

TEST(DeviceTest, FcControlsPinFanout) {
  const Device narrow(ArchSpec::xc3000(3, 3, 5));  // Fc = 3
  const Device wide(ArchSpec::xc4000(3, 3, 5));    // Fc = 5
  const auto count_pin_edges = [](const Device& d, NodeId b) {
    return static_cast<int>(d.graph().incident_edges(b).size());
  };
  EXPECT_EQ(count_pin_edges(narrow, narrow.block_node(1, 1)), 4 * 3);
  EXPECT_EQ(count_pin_edges(wide, wide.block_node(1, 1)), 4 * 5);
}

TEST(DeviceTest, ResetRestoresEverything) {
  Device device(ArchSpec::xc4000(3, 3, 2));
  Graph& g = device.graph();
  const NodeId w = device.wire_node(Device::Dir::kHorizontal, 1, 1, 0);
  g.remove_node(w);
  g.remove_edge(0);
  g.add_edge_weight(5, 2.5);
  EXPECT_EQ(device.used_wire_count(), 1);
  device.reset();
  EXPECT_EQ(device.used_wire_count(), 0);
  EXPECT_TRUE(g.node_active(w));
  EXPECT_TRUE(g.edge_active(0));
  EXPECT_DOUBLE_EQ(g.edge_weight(5), 1.0);
}

TEST(DeviceTest, RemovingAllTilesOfAChannelCutsRoutes) {
  // Consume every wire of the vertical channel column between x=1 and x=2
  // plus the horizontal channels' tiles at x=1; the device splits.
  Device device(ArchSpec::xc4000(2, 3, 1));
  Graph& g = device.graph();
  for (int y = 0; y < 2; ++y) g.remove_node(device.wire_node(Device::Dir::kVertical, 2, y, 0));
  for (int y = 0; y <= 2; ++y) {
    g.remove_node(device.wire_node(Device::Dir::kHorizontal, 1, y, 0));
  }
  const auto spt = dijkstra(g, device.block_node(0, 0));
  EXPECT_TRUE(spt.reached(device.block_node(1, 0)));
  EXPECT_FALSE(spt.reached(device.block_node(2, 0)));
}

}  // namespace
}  // namespace fpr
