#include "fpga/device3d.hpp"

#include <gtest/gtest.h>

#include "arbor/idom.hpp"
#include "core/route.hpp"
#include "graph/dijkstra.hpp"

namespace fpr {
namespace {

Arch3dSpec small_spec(int layers, int via_spacing = 1) {
  Arch3dSpec spec;
  spec.layer = ArchSpec::xc4000(4, 4, 2);
  spec.layers = layers;
  spec.via_spacing = via_spacing;
  return spec;
}

TEST(Device3dTest, NodeCountsScaleWithLayers) {
  const Device3d one(small_spec(1));
  const Device3d three(small_spec(3));
  EXPECT_EQ(three.graph().node_count(), 3 * one.graph().node_count());
  EXPECT_EQ(three.block_count(), 3 * 16);
  EXPECT_EQ(one.via_count(), 0);
  EXPECT_GT(three.via_count(), 0);
}

TEST(Device3dTest, LayerAndKindClassification) {
  const Device3d device(small_spec(2));
  const NodeId b0 = device.block_node(0, 1, 2);
  const NodeId b1 = device.block_node(1, 1, 2);
  EXPECT_EQ(device.layer_of(b0), 0);
  EXPECT_EQ(device.layer_of(b1), 1);
  EXPECT_TRUE(device.is_block(b0));
  const NodeId w = device.wire_node(1, Device3d::Dir::kVertical, 2, 1, 0);
  EXPECT_TRUE(device.is_wire(w));
  EXPECT_EQ(device.layer_of(w), 1);
}

TEST(Device3dTest, CrossLayerReachability) {
  const Device3d device(small_spec(3));
  const auto spt = dijkstra(device.graph(), device.block_node(0, 0, 0));
  for (int layer = 0; layer < 3; ++layer) {
    EXPECT_TRUE(spt.reached(device.block_node(layer, 3, 3))) << layer;
  }
  // Crossing layers costs at least one via.
  EXPECT_GT(spt.distance(device.block_node(2, 0, 0)),
            spt.distance(device.block_node(0, 0, 0)));
}

TEST(Device3dTest, SparserViasLengthenCrossLayerRoutes) {
  const Device3d dense(small_spec(2, 1));
  const Device3d sparse(small_spec(2, 4));
  EXPECT_GT(dense.via_count(), sparse.via_count());
  const auto d_spt = dijkstra(dense.graph(), dense.block_node(0, 0, 0));
  const auto s_spt = dijkstra(sparse.graph(), sparse.block_node(0, 0, 0));
  EXPECT_LE(d_spt.distance(dense.block_node(1, 3, 3)),
            s_spt.distance(sparse.block_node(1, 3, 3)) + 1e-9);
}

TEST(Device3dTest, SteinerRoutingWorksAcrossLayers) {
  // The Section 6 claim: the graph algorithms generalize to 3-D unchanged.
  const Device3d device(small_spec(3));
  Net net;
  net.source = device.block_node(0, 0, 0);
  net.sinks = {device.block_node(1, 3, 2), device.block_node(2, 1, 3),
               device.block_node(0, 3, 3)};
  PathOracle oracle(device.graph());
  const auto tree = route(device.graph(), net, Algorithm::kIkmb, oracle);
  EXPECT_TRUE(tree.spans(net.terminals()));
  EXPECT_TRUE(tree.is_tree());
}

TEST(Device3dTest, ArborescenceInvariantHoldsInThreeDimensions) {
  const Device3d device(small_spec(2));
  Net net;
  net.source = device.block_node(0, 1, 1);
  net.sinks = {device.block_node(1, 3, 3), device.block_node(1, 0, 2),
               device.block_node(0, 2, 3)};
  PathOracle oracle(device.graph());
  const auto tree = idom(device.graph(), net.terminals(), oracle);
  ASSERT_TRUE(tree.spans(net.terminals()));
  const auto& spt = oracle.from(net.source);
  for (const NodeId s : net.sinks) {
    EXPECT_TRUE(weight_eq(tree.path_length(net.source, s), spt.distance(s)));
  }
}

TEST(Device3dTest, ViaWeightModelsInterLayerDelay) {
  Arch3dSpec costly = small_spec(2);
  costly.via_weight = 10.0;
  const Device3d cheap(small_spec(2));
  const Device3d expensive(costly);
  const auto c = dijkstra(cheap.graph(), cheap.block_node(0, 0, 0));
  const auto e = dijkstra(expensive.graph(), expensive.block_node(0, 0, 0));
  EXPECT_LT(c.distance(cheap.block_node(1, 0, 0)),
            e.distance(expensive.block_node(1, 0, 0)));
}

}  // namespace
}  // namespace fpr
