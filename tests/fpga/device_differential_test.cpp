// Differential suite for the tile-template builder (DESIGN.md §12): the
// stamped graph must be BIT-identical to the legacy per-element builder —
// same node ids, same edge ids in the same emission order, same weights,
// same CSR layout — across arch families, sizes, widths, and fault specs.
// Any divergence is a compile-time template bug, and these tests are the
// contract that keeps the legacy builder around as the executable spec
// (the same role dijkstra_reference.hpp plays for the search engine).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/device3d.hpp"
#include "fpga/faults.hpp"
#include "fpga/tile_template.hpp"
#include "graph/dijkstra.hpp"
#include "router/router.hpp"

namespace fpr {
namespace {

/// Full structural + state byte-compare of two graphs: counts, per-edge
/// endpoints/weight/activity, per-node activity and incident order, and the
/// CSR snapshot vector-by-vector. EXPECT (not ASSERT) on the scalar counts
/// so one failing family reports everything that diverged.
void expect_graphs_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    const Graph::Edge ea = a.edge(e);
    const Graph::Edge eb = b.edge(e);
    ASSERT_EQ(ea.u, eb.u) << "edge " << e;
    ASSERT_EQ(ea.v, eb.v) << "edge " << e;
    ASSERT_EQ(ea.weight, eb.weight) << "edge " << e;
    ASSERT_EQ(ea.active, eb.active) << "edge " << e;
  }
  for (NodeId v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.node_active(v), b.node_active(v)) << "node " << v;
    const auto ia = a.incident_edges(v);
    const auto ib = b.incident_edges(v);
    ASSERT_EQ(std::vector<EdgeId>(ia.begin(), ia.end()),
              std::vector<EdgeId>(ib.begin(), ib.end()))
        << "node " << v;
  }
  const CsrAdjacency& ca = a.csr();
  const CsrAdjacency& cb = b.csr();
  EXPECT_EQ(ca.offsets, cb.offsets);
  EXPECT_EQ(ca.neighbor, cb.neighbor);
  EXPECT_EQ(ca.edge_id, cb.edge_id);
  EXPECT_EQ(ca.weight, cb.weight);
  EXPECT_EQ(ca.slot, cb.slot);
}

/// Device-level differential: the stamped device must also agree on the
/// derived id arithmetic (node_tile) the partition tree depends on.
void expect_devices_identical(const Device& legacy, const Device& stamped) {
  expect_graphs_identical(legacy.graph(), stamped.graph());
  ASSERT_EQ(legacy.block_count(), stamped.block_count());
  for (NodeId v = 0; v < legacy.graph().node_count(); ++v) {
    const Device::TilePos ta = legacy.node_tile(v);
    const Device::TilePos tb = stamped.node_tile(v);
    ASSERT_EQ(ta.x, tb.x) << "node " << v;
    ASSERT_EQ(ta.y, tb.y) << "node " << v;
  }
}

FaultSpec stress_faults(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.wire_permille = 45;
  spec.switch_permille = 30;
  spec.pin_permille = 15;
  spec.clusters = 1;
  spec.cluster_radius = 1;
  return spec;
}

Circuit medium_circuit(int rows, int cols) {
  Circuit c;
  c.name = "differential";
  c.rows = rows;
  c.cols = cols;
  c.nets.push_back({{0, 0}, {{cols - 1, rows - 1}}});
  c.nets.push_back({{0, rows - 1}, {{cols - 1, 0}, {cols / 2, rows / 2}}});
  c.nets.push_back({{1, 1}, {{cols - 2, 1}, {1, rows - 2}, {cols - 2, rows - 2}}, true});
  c.nets.push_back({{cols / 2, 0}, {{cols / 2, rows - 1}}});
  c.nets.push_back({{2, rows / 2}, {{cols - 3, rows / 2}, {cols / 2, 1}}});
  return c;
}

void expect_routing_identical(const RoutingResult& a, const RoutingResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.total_wire_nodes, b.total_wire_nodes);
  EXPECT_EQ(a.work_used, b.work_used);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].status, b.nets[i].status) << "net " << i;
    EXPECT_EQ(a.nets[i].edges, b.nets[i].edges) << "net " << i;
  }
}

// ---------------------------------------------------------------------------
// Engagement: the template path must actually be in play at tiled sizes and
// must transparently fall back below the sampling floor.

TEST(DeviceDifferentialTest, TemplateEngagesAtScaleAndFallsBackBelowFloor) {
  const Device small(ArchSpec::xc4000(4, 4, 4));
  EXPECT_FALSE(small.tiled());  // below the 7x7 sampling floor: legacy build

  const TileTemplateStats before = tile_template_stats();
  const Device big(ArchSpec::xc4000(9, 9, 4));
  const TileTemplateStats after = tile_template_stats();
  EXPECT_TRUE(big.tiled());
  EXPECT_EQ(after.compile_failures, before.compile_failures);
  EXPECT_GE(after.instantiations, before.instantiations + 1);
}

TEST(DeviceDifferentialTest, TemplateCompiledOncePerFamilyAcrossSizes) {
  // Same (pattern, width, fc) family at three sizes: at most one compile,
  // three instantiations — the width-search reuse property (every probe at
  // one width re-stamps the cached template instead of re-learning it).
  const TileTemplateStats before = tile_template_stats();
  const Device a(ArchSpec::xc4000(7, 7, 6));
  const Device b(ArchSpec::xc4000(10, 8, 6));
  const Device c(ArchSpec::xc4000(13, 13, 6));
  const TileTemplateStats after = tile_template_stats();
  EXPECT_TRUE(a.tiled());
  EXPECT_TRUE(b.tiled());
  EXPECT_TRUE(c.tiled());
  EXPECT_LE(after.compiles, before.compiles + 1);
  EXPECT_GE(after.cache_hits, before.cache_hits + 2);
  EXPECT_GE(after.instantiations, before.instantiations + 3);
}

// ---------------------------------------------------------------------------
// Structural bit-identity, 2-D.

TEST(DeviceDifferentialTest, StampedMatchesLegacyXc4000) {
  for (const auto& [rows, cols, width] :
       std::vector<std::tuple<int, int, int>>{{7, 7, 4}, {9, 8, 6}, {12, 12, 5}}) {
    SCOPED_TRACE(testing::Message() << rows << "x" << cols << " w=" << width);
    const ArchSpec spec = ArchSpec::xc4000(rows, cols, width);
    const Device legacy(spec, DeviceBuild::kLegacy);
    const Device stamped(spec);
    ASSERT_TRUE(stamped.tiled());
    ASSERT_FALSE(legacy.tiled());
    expect_devices_identical(legacy, stamped);
  }
}

TEST(DeviceDifferentialTest, StampedMatchesLegacyXc3000) {
  for (const auto& [rows, cols, width] :
       std::vector<std::tuple<int, int, int>>{{7, 9, 5}, {11, 7, 8}}) {
    SCOPED_TRACE(testing::Message() << rows << "x" << cols << " w=" << width);
    const ArchSpec spec = ArchSpec::xc3000(rows, cols, width);
    const Device legacy(spec, DeviceBuild::kLegacy);
    const Device stamped(spec);
    ASSERT_TRUE(stamped.tiled());
    expect_devices_identical(legacy, stamped);
  }
}

// ---------------------------------------------------------------------------
// Structural bit-identity, 3-D (layers, via spacing, via weights — the
// hwire role's x-period becomes via_spacing, the hardest template case).

TEST(DeviceDifferentialTest, StampedMatchesLegacy3d) {
  std::vector<Arch3dSpec> cases;
  cases.push_back({ArchSpec::xc4000(7, 8, 4), 2, 1, 1.0});
  cases.push_back({ArchSpec::xc4000(8, 15, 4), 2, 3, 1.5});
  cases.push_back({ArchSpec::xc3000(7, 14, 5), 3, 2, 2.0});
  for (const Arch3dSpec& spec : cases) {
    SCOPED_TRACE(testing::Message()
                 << spec.layer.rows << "x" << spec.layer.cols << " w=" << spec.layer.channel_width
                 << " layers=" << spec.layers << " via_spacing=" << spec.via_spacing);
    const Device3d legacy(spec, DeviceBuild::kLegacy);
    const Device3d stamped(spec);
    ASSERT_TRUE(stamped.tiled());
    ASSERT_FALSE(legacy.tiled());
    EXPECT_EQ(legacy.via_count(), stamped.via_count());
    expect_graphs_identical(legacy.graph(), stamped.graph());
  }
}

// ---------------------------------------------------------------------------
// Fault-injection invariance: sampling is per-element id hashing, and the
// template preserves every id, so the drawn defect set must be identical —
// and so must the post-install graph state.

TEST(DeviceDifferentialTest, FaultDrawsIdenticalAcrossBuilders) {
  const ArchSpec spec = ArchSpec::xc4000(10, 10, 6);
  Device legacy(spec, DeviceBuild::kLegacy);
  Device stamped(spec);
  ASSERT_TRUE(stamped.tiled());

  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const FaultSpec fs = stress_faults(seed);
    const FaultModel ma = FaultModel::draw(legacy, fs);
    const FaultModel mb = FaultModel::draw(stamped, fs);
    ASSERT_EQ(std::vector<NodeId>(ma.dead_wires().begin(), ma.dead_wires().end()),
              std::vector<NodeId>(mb.dead_wires().begin(), mb.dead_wires().end()));
    ASSERT_EQ(std::vector<EdgeId>(ma.dead_edges().begin(), ma.dead_edges().end()),
              std::vector<EdgeId>(mb.dead_edges().begin(), mb.dead_edges().end()));

    legacy.install_faults(fs);
    stamped.install_faults(fs);
    expect_graphs_identical(legacy.graph(), stamped.graph());
  }
}

// ---------------------------------------------------------------------------
// Behavioral bit-identity: shortest-path trees and full routed circuits.

TEST(DeviceDifferentialTest, DijkstraTreesIdenticalAcrossBuilders) {
  const ArchSpec spec = ArchSpec::xc3000(9, 9, 6);
  Device legacy(spec, DeviceBuild::kLegacy);
  Device stamped(spec);
  ASSERT_TRUE(stamped.tiled());
  legacy.install_faults(stress_faults(7));
  stamped.install_faults(stress_faults(7));

  for (const NodeId source : {NodeId{0}, legacy.block_node(4, 4), legacy.block_node(8, 0)}) {
    const ShortestPathTree ta = dijkstra(legacy.graph(), source);
    const ShortestPathTree tb = dijkstra(stamped.graph(), source);
    ASSERT_EQ(ta.dist, tb.dist) << "source " << source;
    ASSERT_EQ(ta.parent, tb.parent) << "source " << source;
    ASSERT_EQ(ta.parent_edge, tb.parent_edge) << "source " << source;
  }
}

TEST(DeviceDifferentialTest, RoutingBitIdenticalAcrossBuilders) {
  const ArchSpec spec = ArchSpec::xc4000(9, 9, 6);
  const Circuit circuit = medium_circuit(9, 9);
  RouterOptions options;

  Device legacy(spec, DeviceBuild::kLegacy);
  Device stamped(spec);
  ASSERT_TRUE(stamped.tiled());
  expect_routing_identical(route_circuit(legacy, circuit, options),
                           route_circuit(stamped, circuit, options));
  expect_graphs_identical(legacy.graph(), stamped.graph());

  // And again under injected faults (exercises retries + reset interplay).
  legacy.reset();
  stamped.reset();
  legacy.install_faults(stress_faults(5));
  stamped.install_faults(stress_faults(5));
  expect_routing_identical(route_circuit(legacy, circuit, options),
                           route_circuit(stamped, circuit, options));
  expect_graphs_identical(legacy.graph(), stamped.graph());
}

// ---------------------------------------------------------------------------
// reset() fast path: O(touched) replay must land on exactly the state the
// historical full-scan reinit produced — including the re-applied faults.

TEST(DeviceDifferentialTest, ResetFastPathMatchesFreshDeviceWithFaults) {
  for (const bool tiled : {false, true}) {
    SCOPED_TRACE(tiled ? "tiled" : "legacy");
    const ArchSpec spec = ArchSpec::xc4000(9, 9, 5);
    Device mutated(spec, tiled ? DeviceBuild::kAuto : DeviceBuild::kLegacy);
    ASSERT_EQ(mutated.tiled(), tiled);
    mutated.install_faults(stress_faults(11));

    // Route a circuit: removes wires, bumps congestion weights, removes
    // edges — a realistic touched set, not a synthetic one.
    RouterOptions options;
    (void)route_circuit(mutated, medium_circuit(9, 9), options);
    mutated.reset();

    Device fresh(spec, tiled ? DeviceBuild::kAuto : DeviceBuild::kLegacy);
    fresh.install_faults(stress_faults(11));
    expect_graphs_identical(fresh.graph(), mutated.graph());
    EXPECT_EQ(fresh.used_wire_count(), mutated.used_wire_count());
  }
}

TEST(DeviceDifferentialTest, RepeatedResetRouteCyclesAreDeterministic) {
  const ArchSpec spec = ArchSpec::xc3000(8, 8, 6);
  Device device(spec);
  device.install_faults(stress_faults(23));
  RouterOptions options;
  const RoutingResult first = route_circuit(device, medium_circuit(8, 8), options);
  for (int cycle = 0; cycle < 3; ++cycle) {
    device.reset();
    expect_routing_identical(first, route_circuit(device, medium_circuit(8, 8), options));
  }
}

// ---------------------------------------------------------------------------
// tile_siblings: the allocation-free callback form must visit exactly the
// vector overload's siblings, in the same ascending order.

TEST(DeviceDifferentialTest, TileSiblingCallbackMatchesVectorOverload) {
  const Device device(ArchSpec::xc4000(8, 8, 5));
  ASSERT_TRUE(device.tiled());
  for (NodeId wire = device.block_count(); wire < device.graph().node_count();
       wire += 37) {  // stride keeps the sweep cheap but hits both wire roles
    std::vector<NodeId> via_callback;
    device.for_each_tile_sibling(wire, [&](NodeId v) { via_callback.push_back(v); });
    ASSERT_EQ(via_callback, device.tile_siblings(wire)) << "wire " << wire;
  }
}

// ---------------------------------------------------------------------------
// Mutation model on a tiled graph: structural edits transparently
// materialize; state edits stay in the compact representation.

TEST(DeviceDifferentialTest, StateMutationsKeepTiledRepresentation) {
  const ArchSpec spec = ArchSpec::xc4000(8, 8, 4);
  Device legacy(spec, DeviceBuild::kLegacy);
  Device stamped(spec);
  ASSERT_TRUE(stamped.tiled());

  // The router's whole mutation vocabulary, applied to both builds.
  const auto mutate = [](Graph& g) {
    g.set_edge_weight(3, 2.5);
    g.add_edge_weight(10, 0.25);
    g.remove_edge(4);
    g.remove_node(g.node_count() / 2);
    g.remove_edge(7);
    g.restore_edge(4);
    g.restore_node(g.node_count() / 2);
  };
  mutate(legacy.graph());
  mutate(stamped.graph());
  EXPECT_TRUE(stamped.graph().tiled());  // state edits never materialize
  expect_graphs_identical(legacy.graph(), stamped.graph());
}

TEST(DeviceDifferentialTest, StructuralMutationMaterializesInPlace) {
  const ArchSpec spec = ArchSpec::xc4000(7, 7, 4);
  Device legacy(spec, DeviceBuild::kLegacy);
  Device stamped(spec);
  ASSERT_TRUE(stamped.tiled());

  // Pre-materialization state edits must survive the conversion.
  legacy.graph().set_edge_weight(2, 9.0);
  stamped.graph().set_edge_weight(2, 9.0);
  legacy.graph().remove_node(5);
  stamped.graph().remove_node(5);

  const EdgeId ea = legacy.graph().add_edge(0, 1, 4.0);
  const EdgeId eb = stamped.graph().add_edge(0, 1, 4.0);
  EXPECT_EQ(ea, eb);
  EXPECT_FALSE(stamped.graph().tiled());  // structural edit: materialized
  expect_graphs_identical(legacy.graph(), stamped.graph());
}

}  // namespace
}  // namespace fpr
