// Fault-injection layer: FaultSpec serialization round-trips, FaultModel
// draw determinism and category targeting, and Device fault persistence
// across reset() (the property rip-up-and-reroute depends on).

#include "fpga/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/contract.hpp"
#include "core/rng.hpp"
#include "fpga/device.hpp"

namespace fpr {
namespace {

FaultSpec sample_spec() {
  FaultSpec spec;
  spec.seed = 7;
  spec.wire_permille = 25;
  spec.switch_permille = 10;
  spec.pin_permille = 5;
  spec.clusters = 1;
  spec.cluster_radius = 2;
  return spec;
}

TEST(FaultSpecTest, DescribeMatchesReplayFormat) {
  EXPECT_EQ(sample_spec().describe(),
            "faults seed=7 wires=25 switches=10 pins=5 clusters=1 radius=2");
}

TEST(FaultSpecTest, DescribeParseRoundTrip) {
  const FaultSpec spec = sample_spec();
  const auto parsed = FaultSpec::parse(spec.describe());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);

  // Defaulted fields survive a partial line.
  const auto sparse = FaultSpec::parse("faults seed=3 wires=100");
  ASSERT_TRUE(sparse.has_value());
  EXPECT_EQ(sparse->seed, 3u);
  EXPECT_EQ(sparse->wire_permille, 100);
  EXPECT_EQ(sparse->switch_permille, 0);
  EXPECT_EQ(sparse->cluster_radius, 1);
}

TEST(FaultSpecTest, ParseIgnoresUnknownKeysForForwardCompat) {
  const auto parsed = FaultSpec::parse("faults seed=5 wires=10 vias=99 future=x");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 5u);
  EXPECT_EQ(parsed->wire_permille, 10);
}

TEST(FaultSpecTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(FaultSpec::parse("").has_value());
  EXPECT_FALSE(FaultSpec::parse("circuit seed=1").has_value());        // wrong tag
  EXPECT_FALSE(FaultSpec::parse("faults seed").has_value());           // no '='
  EXPECT_FALSE(FaultSpec::parse("faults wires=abc").has_value());      // non-numeric
  EXPECT_FALSE(FaultSpec::parse("faults wires=-3").has_value());       // negative
  EXPECT_FALSE(FaultSpec::parse("faults wires=1001").has_value());     // above 1000
  EXPECT_FALSE(FaultSpec::parse("faults seed=99999999999999999999").has_value());  // overflow
}

TEST(FaultSpecTest, ValidityAndAny) {
  FaultSpec spec;
  EXPECT_TRUE(spec.valid());
  EXPECT_FALSE(spec.any());  // all-zero spec injects nothing
  spec.pin_permille = 1;
  EXPECT_TRUE(spec.any());
  spec.pin_permille = 1001;
  EXPECT_FALSE(spec.valid());
}

TEST(FaultModelTest, DrawIsDeterministic) {
  const Device device(ArchSpec::xc4000(6, 6, 4));
  const FaultSpec spec = sample_spec();
  const FaultModel a = FaultModel::draw(device, spec);
  const FaultModel b = FaultModel::draw(device, spec);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(std::equal(a.dead_wires().begin(), a.dead_wires().end(),
                         b.dead_wires().begin(), b.dead_wires().end()));
  EXPECT_TRUE(std::equal(a.dead_edges().begin(), a.dead_edges().end(),
                         b.dead_edges().begin(), b.dead_edges().end()));

  FaultSpec other = spec;
  other.seed = 8;
  const FaultModel c = FaultModel::draw(device, other);
  EXPECT_FALSE(std::equal(a.dead_wires().begin(), a.dead_wires().end(),
                          c.dead_wires().begin(), c.dead_wires().end()) &&
               std::equal(a.dead_edges().begin(), a.dead_edges().end(),
                          c.dead_edges().begin(), c.dead_edges().end()));
}

TEST(FaultModelTest, WireFaultsNeverHitBlockNodes) {
  const Device device(ArchSpec::xc3000(5, 7, 3));
  FaultSpec spec;
  spec.seed = 11;
  spec.wire_permille = 500;  // dense draw to exercise the whole id range
  spec.clusters = 2;
  const FaultModel model = FaultModel::draw(device, spec);
  ASSERT_FALSE(model.empty());
  for (const NodeId v : model.dead_wires()) {
    EXPECT_TRUE(device.is_wire(v)) << "fault hit non-wire node " << v;
  }
  // Membership queries agree with the materialized lists.
  EXPECT_TRUE(model.wire_faulted(model.dead_wires().front()));
  EXPECT_FALSE(model.wire_faulted(device.block_node(0, 0)));
}

TEST(FaultModelTest, CategoriesTargetTheRightEdgeKind) {
  const Device device(ArchSpec::xc4000(5, 5, 3));
  FaultSpec pins_only;
  pins_only.seed = 2;
  pins_only.pin_permille = 200;
  const FaultModel pin_model = FaultModel::draw(device, pins_only);
  for (const EdgeId e : pin_model.dead_edges()) {
    EXPECT_TRUE(device.is_connection_edge(e)) << "pin fault hit edge " << e;
  }
  FaultSpec switches_only;
  switches_only.seed = 2;
  switches_only.switch_permille = 200;
  const FaultModel switch_model = FaultModel::draw(device, switches_only);
  for (const EdgeId e : switch_model.dead_edges()) {
    EXPECT_TRUE(device.is_switch_edge(e)) << "switch fault hit edge " << e;
  }
}

TEST(FaultModelTest, CategoryStreamsAreIndependent) {
  // Raising the switch rate must not change which wires die: the knobs
  // sample from separate salted hash streams.
  const Device device(ArchSpec::xc4000(6, 6, 4));
  FaultSpec a;
  a.seed = 9;
  a.wire_permille = 80;
  FaultSpec b = a;
  b.switch_permille = 300;
  const FaultModel ma = FaultModel::draw(device, a);
  const FaultModel mb = FaultModel::draw(device, b);
  EXPECT_TRUE(std::equal(ma.dead_wires().begin(), ma.dead_wires().end(),
                         mb.dead_wires().begin(), mb.dead_wires().end()));
  EXPECT_GT(mb.dead_edges().size(), ma.dead_edges().size());
}

TEST(FaultModelTest, ClusterKillsChebyshevNeighborhoodOnly) {
  const Device device(ArchSpec::xc4000(8, 8, 3));
  FaultSpec spec;
  spec.seed = 13;
  spec.clusters = 1;
  spec.cluster_radius = 1;
  const FaultModel model = FaultModel::draw(device, spec);
  ASSERT_FALSE(model.dead_wires().empty());

  // Recompute the hashed cluster center the way draw() does and confirm
  // every dead wire's channel tile lies inside the Chebyshev ball.
  const std::uint64_t stream = mix64(spec.seed ^ salt64("faults.clusters"));
  const int cx = static_cast<int>(mix64(stream, 0) % 8);
  const int cy = static_cast<int>(mix64(stream, 1) % 8);
  for (const NodeId v : model.dead_wires()) {
    const Device::WireRef ref = device.wire_ref(v);
    EXPECT_LE(std::max(std::abs(ref.x - cx), std::abs(ref.y - cy)), spec.cluster_radius)
        << "wire " << v << " at (" << ref.x << "," << ref.y << ") outside cluster ("
        << cx << "," << cy << ")";
  }
}

TEST(DeviceFaultTest, InstallFaultsDeactivatesAndResetPreserves) {
  Device device(ArchSpec::xc4000(6, 6, 4));
  const int total_edges = device.graph().edge_count();
  device.install_faults(sample_spec());
  ASSERT_TRUE(device.has_faults());
  const FaultModel* model = device.faults();
  ASSERT_NE(model, nullptr);
  ASSERT_FALSE(model->empty());

  const auto faults_applied = [&]() {
    for (const NodeId v : model->dead_wires()) {
      if (device.graph().node_active(v)) return false;
    }
    for (const EdgeId e : model->dead_edges()) {
      if (device.graph().edge_active(e)) return false;
    }
    return true;
  };
  EXPECT_TRUE(faults_applied());

  // reset() restores routing state but re-applies the defects — and is
  // idempotent: a second reset changes nothing.
  device.graph().remove_node(device.wire_node(Device::Dir::kHorizontal, 0, 0, 0));
  device.reset();
  EXPECT_TRUE(faults_applied());
  const int used_after_one = device.used_wire_count();
  device.reset();
  EXPECT_TRUE(faults_applied());
  EXPECT_EQ(device.used_wire_count(), used_after_one);

  // Dead wires are defects, not occupancy: a freshly reset faulted device
  // has no USED wires.
  EXPECT_EQ(device.used_wire_count(), 0);

  device.clear_faults();
  EXPECT_FALSE(device.has_faults());
  EXPECT_EQ(device.graph().active_edge_count(), total_edges);
  for (NodeId v = 0; v < device.graph().node_count(); ++v) {
    EXPECT_TRUE(device.graph().node_active(v));
  }
}

TEST(DeviceFaultTest, ResetWithoutFaultsIsIdempotent) {
  Device device(ArchSpec::xc3000(4, 4, 3));
  const int total_edges = device.graph().edge_count();
  device.graph().remove_node(device.wire_node(Device::Dir::kVertical, 0, 0, 0));
  device.graph().add_edge_weight(0, 2.0);
  device.reset();
  device.reset();
  EXPECT_EQ(device.graph().active_edge_count(), total_edges);
  EXPECT_EQ(device.graph().edge_weight(0), 1.0);
  EXPECT_EQ(device.used_wire_count(), 0);
}

TEST(DeviceFaultTest, CopiedDeviceSharesTheFaultModel) {
  // Width probes copy the device; the copy must carry the same defect set
  // without re-sampling it.
  Device device(ArchSpec::xc4000(5, 5, 3));
  device.install_faults(sample_spec());
  const Device copy(device);
  ASSERT_TRUE(copy.has_faults());
  EXPECT_EQ(copy.faults(), device.faults());  // shared, not re-drawn
}

}  // namespace
}  // namespace fpr
