// Parameterized structural properties of the device builder across array
// sizes, channel widths and architecture families — the invariants every
// width-search experiment silently relies on.

#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "graph/dijkstra.hpp"

namespace fpr {
namespace {

struct SweepCase {
  int rows, cols, width;
  bool xc3000;
};

class DeviceSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static ArchSpec arch(const SweepCase& c) {
    return c.xc3000 ? ArchSpec::xc3000(c.rows, c.cols, c.width)
                    : ArchSpec::xc4000(c.rows, c.cols, c.width);
  }
};

TEST_P(DeviceSweepTest, NodeCountFormula) {
  const auto& c = GetParam();
  const Device device(arch(c));
  const int expected_wires =
      (c.rows + 1) * c.cols * c.width + (c.cols + 1) * c.rows * c.width;
  EXPECT_EQ(device.block_count(), c.rows * c.cols);
  EXPECT_EQ(device.wire_count(), expected_wires);
}

TEST_P(DeviceSweepTest, EveryBlockPinFanoutIsFourFc) {
  const auto& c = GetParam();
  const ArchSpec spec = arch(c);
  const Device device(spec);
  for (int y = 0; y < c.rows; ++y) {
    for (int x = 0; x < c.cols; ++x) {
      EXPECT_EQ(device.graph().incident_edges(device.block_node(x, y)).size(),
                static_cast<std::size_t>(4 * spec.fc()));
    }
  }
}

TEST_P(DeviceSweepTest, InteriorWireFanoutRespectsFs) {
  // A wire segment meets two switch blocks; at each interior one it can
  // reach Fs other wires, plus its connection-block pin edges.
  const auto& c = GetParam();
  const ArchSpec spec = arch(c);
  const Device device(spec);
  const Graph& g = device.graph();
  int max_wire_degree = 0;
  for (NodeId v = device.block_count(); v < g.node_count(); ++v) {
    int wire_neighbors = 0;
    for (const EdgeId e : g.incident_edges(v)) {
      if (device.is_wire(g.other_end(e, v))) ++wire_neighbors;
    }
    max_wire_degree = std::max(max_wire_degree, wire_neighbors);
  }
  // Augmented (Fs=6) pattern additionally receives shifted-track edges from
  // each side, so the per-end bound is 2*Fs; the disjoint pattern is exact.
  EXPECT_LE(max_wire_degree, 2 * 2 * spec.fs());
  EXPECT_GE(max_wire_degree, spec.fs());
}

TEST_P(DeviceSweepTest, FullyConnected) {
  const auto& c = GetParam();
  const Device device(arch(c));
  const auto spt = dijkstra(device.graph(), device.block_node(0, 0));
  for (NodeId v = 0; v < device.graph().node_count(); ++v) {
    EXPECT_TRUE(spt.reached(v)) << "node " << v;
  }
}

TEST_P(DeviceSweepTest, WireRefRoundTripsEveryWire) {
  const auto& c = GetParam();
  const Device device(arch(c));
  for (NodeId v = device.block_count(); v < device.graph().node_count(); ++v) {
    const auto ref = device.wire_ref(v);
    EXPECT_EQ(device.wire_node(ref.dir, ref.x, ref.y, ref.track), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DeviceSweepTest,
                         ::testing::Values(SweepCase{2, 2, 1, false}, SweepCase{3, 5, 2, false},
                                           SweepCase{5, 3, 4, true}, SweepCase{4, 4, 7, true},
                                           SweepCase{6, 7, 3, false}, SweepCase{7, 6, 5, true},
                                           SweepCase{1, 8, 2, false}, SweepCase{8, 1, 2, true}));

}  // namespace
}  // namespace fpr
