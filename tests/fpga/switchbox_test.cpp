#include "fpga/switchbox.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(SwitchboxTest, DisjointPairsTrackToTrack) {
  const auto pairs = switchbox_track_pairs(SwitchPattern::kDisjoint, 4);
  ASSERT_EQ(pairs.size(), 4u);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(pairs[static_cast<std::size_t>(t)], std::make_pair(t, t));
  }
}

TEST(SwitchboxTest, AugmentedAddsShiftedTrack) {
  const auto pairs = switchbox_track_pairs(SwitchPattern::kAugmented, 3);
  // (0,0) (0,1) (1,1) (1,2) (2,2) (2,0)
  ASSERT_EQ(pairs.size(), 6u);
  int straight = 0, shifted = 0;
  for (const auto& [a, b] : pairs) {
    if (a == b) ++straight;
    if (b == (a + 1) % 3) ++shifted;
  }
  EXPECT_EQ(straight, 3);
  EXPECT_EQ(shifted, 3 + 0);  // the (t, t+1) pairs; straight pairs don't match
}

TEST(SwitchboxTest, AugmentedWidthOneDegeneratesToDisjoint) {
  const auto pairs = switchbox_track_pairs(SwitchPattern::kAugmented, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 0));
}

TEST(SwitchboxTest, FlexibilityMatchesFsDefinition) {
  // Fs counts, per incoming wire end, the outgoing wires it can reach across
  // the three other sides: pattern pairs per side-pair times 3, divided by
  // the W wires on the incoming side.
  for (const int w : {2, 3, 5, 8}) {
    const auto disjoint = switchbox_track_pairs(SwitchPattern::kDisjoint, w);
    EXPECT_EQ(static_cast<int>(disjoint.size()) * 3 / w, 3) << "W=" << w;
    const auto augmented = switchbox_track_pairs(SwitchPattern::kAugmented, w);
    EXPECT_EQ(static_cast<int>(augmented.size()) * 3 / w, 6) << "W=" << w;
  }
}

}  // namespace
}  // namespace fpr
