#include "fpga/arch.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(ArchTest, Xc3000Preset) {
  const ArchSpec spec = ArchSpec::xc3000(12, 13, 10);
  EXPECT_EQ(spec.rows, 12);
  EXPECT_EQ(spec.cols, 13);
  EXPECT_EQ(spec.channel_width, 10);
  EXPECT_EQ(spec.fs(), 6);
  EXPECT_EQ(spec.fc(), 6);  // ceil(0.6 * 10)
  EXPECT_TRUE(spec.valid());
}

TEST(ArchTest, Xc4000Preset) {
  const ArchSpec spec = ArchSpec::xc4000(19, 17, 15);
  EXPECT_EQ(spec.fs(), 3);
  EXPECT_EQ(spec.fc(), 15);  // Fc = W
}

TEST(ArchTest, FcCeilingRule) {
  // Table 2: Fc = ceil(0.6 W).
  EXPECT_EQ(ArchSpec::xc3000(4, 4, 7).fc(), 5);   // 4.2 -> 5
  EXPECT_EQ(ArchSpec::xc3000(4, 4, 5).fc(), 3);   // 3.0 -> 3
  EXPECT_EQ(ArchSpec::xc3000(4, 4, 9).fc(), 6);   // 5.4 -> 6
  EXPECT_EQ(ArchSpec::xc3000(4, 4, 1).fc(), 1);
}

TEST(ArchTest, WithWidthRederivesFc) {
  const ArchSpec spec = ArchSpec::xc3000(12, 13, 10);
  const ArchSpec wider = spec.with_width(20);
  EXPECT_EQ(wider.channel_width, 20);
  EXPECT_EQ(wider.fc(), 12);
  EXPECT_EQ(wider.fs(), 6);
  EXPECT_EQ(wider.rows, 12);
}

TEST(ArchTest, InvalidSpecs) {
  EXPECT_FALSE(ArchSpec{}.valid());
  EXPECT_FALSE(ArchSpec::xc4000(0, 5, 3).valid());
  EXPECT_FALSE(ArchSpec::xc4000(5, 5, 0).valid());
}

TEST(ArchTest, Describe) {
  const std::string s = ArchSpec::xc4000(10, 9, 8).describe();
  EXPECT_NE(s.find("10x9"), std::string::npos);
  EXPECT_NE(s.find("W=8"), std::string::npos);
  EXPECT_NE(s.find("Fs=3"), std::string::npos);
}

}  // namespace
}  // namespace fpr
