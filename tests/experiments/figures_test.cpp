#include "experiments/figures.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

TEST(Fig4Test, FindsAnInstanceWithTheFigureShape) {
  const Fig4Result r = run_fig4();
  ASSERT_GT(r.kmb_wire, 0) << "search failed to find a Figure-4-shaped instance";
  // IGMST strictly beats KMB and is optimal.
  EXPECT_LT(r.ikmb_wire, r.kmb_wire);
  EXPECT_DOUBLE_EQ(r.ikmb_wire, r.opt_steiner_wire);
  // IDOM strictly beats DJKA and is the optimal arborescence.
  EXPECT_LT(r.idom_wire, r.djka_wire);
  EXPECT_DOUBLE_EQ(r.idom_wire, r.opt_arb_wire);
  // Arborescences reach every sink at graph distance.
  EXPECT_DOUBLE_EQ(r.djka_max_path, r.optimal_max_path);
  EXPECT_DOUBLE_EQ(r.idom_max_path, r.optimal_max_path);
  // KMB's pathlength is strictly suboptimal on this instance, so IDOM wins
  // both metrics simultaneously — the Fig. 4(d) observation.
  EXPECT_GT(r.kmb_max_path, r.optimal_max_path);
  EXPECT_GT(r.kmb_wire_overhead_pct, 0);
  EXPECT_GT(r.idom_path_improvement_pct, 0);
}

TEST(Fig4Test, RenderMentionsPaperPercentages) {
  const std::string text = render_fig4(run_fig4());
  EXPECT_NE(text.find("12.5%"), std::string::npos);
  EXPECT_NE(text.find("IDOM"), std::string::npos);
}

TEST(FigureSweepsTest, Fig10RatiosGrow) {
  const auto points = run_fig10({2, 4, 8});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].ratio, points[1].ratio);
  EXPECT_LT(points[1].ratio, points[2].ratio);
}

TEST(FigureSweepsTest, Fig11RatiosBoundedByTwo) {
  const auto points = run_fig11({2, 4});
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_GE(p.ratio, 1.0 - 1e-9);
    EXPECT_LE(p.ratio, 2.0 + 1e-9);
  }
}

TEST(FigureSweepsTest, Fig14RatiosGrow) {
  const auto points = run_fig14({2, 3});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].ratio, 1.0);
  EXPECT_LT(points[0].ratio, points[1].ratio);
  EXPECT_EQ(points[0].n, 8);  // 2^(levels+1) sinks
}

TEST(FigureSweepsTest, RenderProducesTable) {
  const std::string text = render_ratio_sweep("Fig 10", run_fig10({2}));
  EXPECT_NE(text.find("Fig 10"), std::string::npos);
  EXPECT_NE(text.find("ratio"), std::string::npos);
}

}  // namespace
}  // namespace fpr
