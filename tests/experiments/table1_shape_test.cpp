// Medium-size Table 1 integration: reproduces the paper's qualitative
// findings (orderings and the congestion crossover) with enough nets for
// the averages to be stable, on the real 20x20 substrate. Kept below bench
// scale so the test stays in CI time.

#include <gtest/gtest.h>

#include "experiments/table1.hpp"

namespace fpr {
namespace {

class Table1ShapeTest : public ::testing::Test {
 protected:
  static const Table1Result& result() {
    static const Table1Result r = [] {
      Table1Options options;
      options.nets_per_config = 12;
      options.net_sizes = {5};
      options.seed = 77;
      return run_table1(options);
    }();
    return r;
  }
  // Algorithm row indices in table1_algorithms() order.
  static constexpr int kKmb = 0, kZel = 1, kIkmb = 2, kIzel = 3, kDjka = 4, kDom = 5,
                       kPfa = 6, kIdom = 7;
};

TEST_F(Table1ShapeTest, SteinerFamilyBeatsKmb) {
  for (const auto& block : result().blocks) {
    EXPECT_LT(block.cells[kZel][0].wirelength_pct, 0);
    EXPECT_LT(block.cells[kIkmb][0].wirelength_pct, 0);
    EXPECT_LT(block.cells[kIzel][0].wirelength_pct, 0);
  }
}

TEST_F(Table1ShapeTest, IteratedBeatsPlain) {
  for (const auto& block : result().blocks) {
    EXPECT_LE(block.cells[kIkmb][0].wirelength_pct,
              block.cells[kKmb][0].wirelength_pct + 1e-9);
    EXPECT_LE(block.cells[kIzel][0].wirelength_pct,
              block.cells[kZel][0].wirelength_pct + 1e-9);
  }
}

TEST_F(Table1ShapeTest, ArborescenceWirelengthOrdering) {
  // Paper: IDOM <= PFA <= DOM <= DJKA, consistently across levels.
  for (const auto& block : result().blocks) {
    EXPECT_LE(block.cells[kIdom][0].wirelength_pct,
              block.cells[kPfa][0].wirelength_pct + 0.5);
    EXPECT_LE(block.cells[kPfa][0].wirelength_pct,
              block.cells[kDom][0].wirelength_pct + 1e-9);
    EXPECT_LE(block.cells[kDom][0].wirelength_pct,
              block.cells[kDjka][0].wirelength_pct + 1e-9);
  }
}

TEST_F(Table1ShapeTest, PfaIdomBeatKmbWithoutCongestion) {
  // The paper's "rather surprising" observation: on uncongested grids the
  // arborescences use LESS wirelength than KMB despite also optimizing
  // delay.
  const auto& uncongested = result().blocks[0];
  EXPECT_LT(uncongested.cells[kPfa][0].wirelength_pct, 0);
  EXPECT_LT(uncongested.cells[kIdom][0].wirelength_pct, 0);
}

TEST_F(Table1ShapeTest, CongestionCrossover) {
  // Under medium congestion the shortest-path constraint starts to cost
  // wirelength: PFA/IDOM flip from negative to positive vs KMB.
  const auto& medium = result().blocks[2];
  EXPECT_GT(medium.cells[kPfa][0].wirelength_pct, 0);
  EXPECT_GT(medium.cells[kIdom][0].wirelength_pct, 0);
}

TEST_F(Table1ShapeTest, KmbMaxPathSuboptimal) {
  for (const auto& block : result().blocks) {
    EXPECT_GT(block.cells[kKmb][0].max_path_pct, 5.0);
    for (const int arb : {kDjka, kDom, kPfa, kIdom}) {
      EXPECT_NEAR(block.cells[arb][0].max_path_pct, 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace fpr
