// The fault-injection yield sweep: deterministic across runs and thread
// counts, internally consistent, and every degraded cell oracle-clean —
// the properties that let BENCH_faults.json be a committed artifact.

#include "experiments/fault_sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/oracles.hpp"
#include "netlist/synth.hpp"

namespace fpr {
namespace {

/// A tiny synthetic profile so the sweep stays unit-test sized (the real
/// bench sweeps the Tables 2/3 suite).
std::vector<CircuitProfile> tiny_profiles() {
  CircuitProfile small;
  small.name = "tiny-a";
  small.rows = 5;
  small.cols = 5;
  small.nets_2_3 = 6;
  small.nets_4_10 = 2;
  CircuitProfile smaller;
  smaller.name = "tiny-b";
  smaller.rows = 4;
  smaller.cols = 4;
  smaller.nets_2_3 = 5;
  return {small, smaller};
}

FaultSweepOptions tiny_options() {
  FaultSweepOptions options;
  options.fault_permilles = {0, 40};
  options.max_passes = 8;
  options.max_width = 12;
  options.node_budget_per_probe = 5'000'000;
  return options;
}

void expect_equal_sweeps(const FaultSweepResult& a, const FaultSweepResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].fault_free_width, b.rows[i].fault_free_width);
    ASSERT_EQ(a.rows[i].cells.size(), b.rows[i].cells.size());
    for (std::size_t j = 0; j < a.rows[i].cells.size(); ++j) {
      const FaultSweepCell& x = a.rows[i].cells[j];
      const FaultSweepCell& y = b.rows[i].cells[j];
      EXPECT_EQ(x.faults, y.faults);
      EXPECT_EQ(x.status, y.status);
      EXPECT_EQ(x.min_width, y.min_width);
      EXPECT_EQ(x.probes, y.probes);
      EXPECT_EQ(x.probes_aborted, y.probes_aborted);
      EXPECT_EQ(x.routed_fraction, y.routed_fraction);
      EXPECT_EQ(x.nets_blocked_by_fault, y.nets_blocked_by_fault);
      EXPECT_EQ(x.nets_rerouted_around_faults, y.nets_rerouted_around_faults);
      EXPECT_EQ(x.detour_wirelength_overhead, y.detour_wirelength_overhead);
      EXPECT_EQ(x.degraded.total_wirelength, y.degraded.total_wirelength);
      EXPECT_EQ(x.degraded.work_used, y.degraded.work_used);
    }
  }
}

TEST(FaultSweepTest, SmallestProfilesSortsByAreaAndTruncates) {
  const std::vector<CircuitProfile> profiles = tiny_profiles();
  const std::vector<CircuitProfile> picked = smallest_profiles(profiles, 1);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].name, "tiny-b");  // 4x4 < 5x5
  EXPECT_EQ(smallest_profiles(profiles, 0).size(), 2u);   // 0 = keep all
  EXPECT_EQ(smallest_profiles(profiles, 10).size(), 2u);  // cap > size
}

TEST(FaultSweepTest, SweepIsDeterministicAcrossRunsAndThreadCounts) {
  const std::vector<CircuitProfile> profiles = tiny_profiles();
  FaultSweepOptions serial = tiny_options();
  serial.threads = 1;
  FaultSweepOptions pooled = tiny_options();
  pooled.threads = 4;
  const FaultSweepResult a = run_fault_sweep(profiles, ArchFamily::kXc4000, serial);
  const FaultSweepResult b = run_fault_sweep(profiles, ArchFamily::kXc4000, pooled);
  const FaultSweepResult c = run_fault_sweep(profiles, ArchFamily::kXc4000, serial);
  expect_equal_sweeps(a, b);
  expect_equal_sweeps(a, c);
}

TEST(FaultSweepTest, CellsAreInternallyConsistentAndOracleClean) {
  const std::vector<CircuitProfile> profiles = tiny_profiles();
  const FaultSweepOptions options = tiny_options();
  const FaultSweepResult result = run_fault_sweep(profiles, ArchFamily::kXc4000, options);
  ASSERT_EQ(result.rows.size(), profiles.size());

  for (const FaultSweepRow& row : result.rows) {
    ASSERT_EQ(row.cells.size(), options.fault_permilles.size());
    // The rate-0 cell defines the yield baseline.
    EXPECT_FALSE(row.cells[0].faults.any());
    EXPECT_EQ(row.cells[0].min_width, row.fault_free_width);
    ASSERT_GT(row.fault_free_width, 0);
    EXPECT_EQ(row.cells[0].routed_fraction, 1.0);

    const Circuit circuit = synthesize_circuit(row.profile, options.synth_seed);
    const ArchSpec arch = arch_for(row.profile, row.family).with_width(row.fault_free_width);
    RouterOptions router;
    router.max_passes = options.max_passes;
    router.node_budget = options.node_budget_per_probe;
    for (const FaultSweepCell& cell : row.cells) {
      // Defective parts never need a NARROWER channel than pristine ones.
      if (cell.status == WidthSearchStatus::kFound) {
        EXPECT_GE(cell.min_width, row.fault_free_width) << row.profile.name;
      }
      const auto check = check::check_routing_feasibility(
          arch, circuit, cell.degraded, router, cell.faults.any() ? &cell.faults : nullptr);
      EXPECT_TRUE(check.ok()) << row.profile.name << " @ " << cell.permille << ": "
                              << check.message();
    }
  }
}

TEST(FaultSweepTest, RenderListsEveryCell) {
  const std::vector<CircuitProfile> profiles = tiny_profiles();
  FaultSweepOptions options = tiny_options();
  options.threads = 1;
  const FaultSweepResult result = run_fault_sweep(profiles, ArchFamily::kXc4000, options);
  const std::string table = render_fault_sweep(result);
  EXPECT_NE(table.find("tiny-a"), std::string::npos);
  EXPECT_NE(table.find("tiny-b"), std::string::npos);
  EXPECT_NE(table.find("0/1000"), std::string::npos);
  EXPECT_NE(table.find("40/1000"), std::string::npos);
}

}  // namespace
}  // namespace fpr
