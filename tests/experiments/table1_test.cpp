// Integration test of the Table 1 driver on a reduced configuration (the
// full 50-net 20x20 sweep lives in bench/table1_steiner_arborescence).

#include "experiments/table1.hpp"

#include <gtest/gtest.h>

namespace fpr {
namespace {

Table1Options small_config() {
  Table1Options options;
  options.grid_width = 10;
  options.grid_height = 10;
  options.nets_per_config = 4;
  options.net_sizes = {5};
  options.levels = {congestion_none(), congestion_low()};
  options.seed = 3;
  return options;
}

TEST(Table1Test, StructureMatchesConfiguration) {
  const auto result = run_table1(small_config());
  ASSERT_EQ(result.blocks.size(), 2u);
  for (const auto& block : result.blocks) {
    ASSERT_EQ(block.cells.size(), 8u);          // eight algorithms
    ASSERT_EQ(block.cells[0].size(), 1u);       // one net size
  }
}

TEST(Table1Test, KmbRowIsTheZeroReference) {
  const auto result = run_table1(small_config());
  for (const auto& block : result.blocks) {
    EXPECT_DOUBLE_EQ(block.cells[0][0].wirelength_pct, 0.0);  // KMB vs itself
  }
}

TEST(Table1Test, ArborescenceRowsHaveZeroPathOverhead) {
  const auto result = run_table1(small_config());
  const auto algorithms = table1_algorithms();
  for (const auto& block : result.blocks) {
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      if (is_arborescence_algorithm(algorithms[a])) {
        EXPECT_NEAR(block.cells[a][0].max_path_pct, 0.0, 1e-9)
            << algorithm_name(algorithms[a]);
      } else {
        EXPECT_GE(block.cells[a][0].max_path_pct, -1e-9);
      }
    }
  }
}

TEST(Table1Test, IteratedRowsNeverWorseThanPlain) {
  const auto result = run_table1(small_config());
  for (const auto& block : result.blocks) {
    // Order: KMB, ZEL, IKMB, IZEL, ...
    EXPECT_LE(block.cells[2][0].wirelength_pct, block.cells[0][0].wirelength_pct + 1e-9);
    EXPECT_LE(block.cells[3][0].wirelength_pct, block.cells[1][0].wirelength_pct + 1e-9);
  }
}

TEST(Table1Test, CongestionRaisesMeasuredMeanWeight) {
  const auto result = run_table1(small_config());
  EXPECT_DOUBLE_EQ(result.blocks[0].measured_mean_edge_weight, 1.0);
  EXPECT_GT(result.blocks[1].measured_mean_edge_weight, 1.0);
}

TEST(Table1Test, DeterministicPerSeed) {
  const auto a = run_table1(small_config());
  const auto b = run_table1(small_config());
  EXPECT_DOUBLE_EQ(a.blocks[1].cells[4][0].wirelength_pct,
                   b.blocks[1].cells[4][0].wirelength_pct);
}

TEST(Table1Test, RenderContainsAllAlgorithmRows) {
  const auto result = run_table1(small_config());
  const std::string text = render_table1(result);
  for (const Algorithm a : table1_algorithms()) {
    EXPECT_NE(text.find(algorithm_name(a)), std::string::npos);
  }
  EXPECT_NE(text.find("Congestion: none"), std::string::npos);
}

TEST(Table1Test, PaperValuesTableIsComplete) {
  const auto& paper = table1_paper_values();
  ASSERT_EQ(paper.size(), 3u);
  for (const auto& level : paper) {
    ASSERT_EQ(level.size(), 8u);
    EXPECT_STREQ(level[0].algorithm, "KMB");
    EXPECT_STREQ(level[7].algorithm, "IDOM");
    // Arborescence rows report optimal pathlength in the paper.
    for (int i = 4; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(level[static_cast<std::size_t>(i)].path5, 0.0);
      EXPECT_DOUBLE_EQ(level[static_cast<std::size_t>(i)].path8, 0.0);
    }
  }
}

}  // namespace
}  // namespace fpr
