// Integration tests of the circuit width experiments on a scaled-down
// profile (the paper-profile sweeps live in the bench binaries).

#include <gtest/gtest.h>

#include "experiments/table45.hpp"
#include "experiments/tables23.hpp"

namespace fpr {
namespace {

CircuitProfile toy_profile() {
  CircuitProfile p;
  p.name = "toy";
  p.rows = 6;
  p.cols = 6;
  p.nets_2_3 = 18;
  p.nets_4_10 = 5;
  p.nets_over_10 = 0;
  p.paper_cge = 5;
  p.paper_sega = 5;
  p.paper_gbp = 5;
  p.paper_ikmb = 4;
  p.paper_pfa = 5;
  p.paper_idom = 5;
  p.paper_table5_width = 6;
  return p;
}

TEST(WidthExperimentTest, OursBeatsTwoPinBaseline) {
  WidthExperimentOptions options;
  options.seed = 11;
  options.max_passes = 6;
  options.max_width = 12;
  const std::vector<CircuitProfile> profiles{toy_profile()};
  const auto result = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  ASSERT_EQ(result.rows.size(), 1u);
  const auto& row = result.rows[0];
  ASSERT_GT(row.ours, 0);
  ASSERT_GT(row.baseline, 0);
  // The paper's central routing claim: whole-net Steiner routing needs no
  // more channel width than 2-pin decomposition (strictly less on average).
  EXPECT_LE(row.ours, row.baseline);
  EXPECT_TRUE(row.ours_at_min.success);
}

TEST(WidthExperimentTest, BothFamiliesRoute) {
  WidthExperimentOptions options;
  options.seed = 11;
  options.max_passes = 5;
  options.max_width = 12;
  options.run_baseline = false;
  const std::vector<CircuitProfile> profiles{toy_profile()};
  for (const auto family : {ArchFamily::kXc3000, ArchFamily::kXc4000}) {
    const auto result = run_width_experiment(profiles, family, options);
    EXPECT_GT(result.rows[0].ours, 0);
  }
}

TEST(WidthExperimentTest, RenderQuotesPaperAndMeasured) {
  WidthExperimentOptions options;
  options.seed = 11;
  options.max_passes = 4;
  options.max_width = 10;
  const std::vector<CircuitProfile> profiles{toy_profile()};
  const auto result = run_width_experiment(profiles, ArchFamily::kXc4000, options);
  const std::string text = render_width_experiment(result);
  EXPECT_NE(text.find("toy"), std::string::npos);
  EXPECT_NE(text.find("SEGA(paper)"), std::string::npos);
  EXPECT_NE(text.find("2-pin baseline"), std::string::npos);
}

TEST(Table4Test, ArborescenceWidthsAtLeastIkmb) {
  Table4Options options;
  options.seed = 13;
  options.max_passes = 5;
  options.max_width = 12;
  const std::vector<CircuitProfile> profiles{toy_profile()};
  const auto result = run_table4(profiles, options);
  ASSERT_EQ(result.rows.size(), 1u);
  const auto& row = result.rows[0];
  ASSERT_GT(row.ikmb, 0);
  ASSERT_GT(row.pfa, 0);
  ASSERT_GT(row.idom, 0);
  // Table 4's shape: PFA/IDOM pay a width premium (or tie) vs IKMB, and
  // IDOM is never worse than PFA by more than rounding.
  EXPECT_GE(row.pfa, row.ikmb);
  EXPECT_GE(row.idom, row.ikmb);
}

TEST(Table5Test, DeltasHaveTheRightSigns) {
  Table5Options options;
  options.seed = 13;
  options.max_passes = 6;
  options.widths = {7};
  const std::vector<CircuitProfile> profiles{toy_profile()};
  const auto result = run_table5(profiles, options);
  ASSERT_EQ(result.rows.size(), 1u);
  const auto& row = result.rows[0];
  ASSERT_TRUE(row.all_routed);
  // PFA/IDOM buy shorter max paths (<= 0) with extra wirelength (>= 0).
  EXPECT_GE(row.pfa_wire_pct, -1e-9);
  EXPECT_GE(row.idom_wire_pct, -1e-9);
  EXPECT_LE(row.pfa_path_pct, 1e-9);
  EXPECT_LE(row.idom_path_pct, 1e-9);
}

TEST(WidthExperimentTest, ParallelSweepMatchesSerial) {
  // The circuit sweep must produce identical rows however it is scheduled:
  // serial, or fanned out over a pool (with nested parallel width probes).
  CircuitProfile small = toy_profile();
  small.name = "toy-small";
  small.rows = small.cols = 5;
  small.nets_2_3 = 12;
  small.nets_4_10 = 3;
  const std::vector<CircuitProfile> profiles{toy_profile(), small};

  WidthExperimentOptions serial;
  serial.seed = 11;
  serial.max_passes = 4;
  serial.max_width = 10;
  serial.threads = 1;
  WidthExperimentOptions parallel = serial;
  parallel.threads = 4;

  const auto a = run_width_experiment(profiles, ArchFamily::kXc4000, serial);
  const auto b = run_width_experiment(profiles, ArchFamily::kXc4000, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].ours, b.rows[i].ours) << i;
    EXPECT_EQ(a.rows[i].baseline, b.rows[i].baseline) << i;
    EXPECT_EQ(a.rows[i].ours_at_min.total_wirelength,
              b.rows[i].ours_at_min.total_wirelength)
        << i;
  }
  EXPECT_EQ(render_width_experiment(a), render_width_experiment(b));
}

TEST(Table4Test, ParallelSweepMatchesSerial) {
  CircuitProfile small = toy_profile();
  small.name = "toy-small";
  small.rows = small.cols = 5;
  small.nets_2_3 = 12;
  small.nets_4_10 = 3;
  const std::vector<CircuitProfile> profiles{toy_profile(), small};

  Table4Options serial;
  serial.seed = 13;
  serial.max_passes = 4;
  serial.max_width = 10;
  serial.threads = 1;
  Table4Options parallel = serial;
  parallel.threads = 4;

  const auto a = run_table4(profiles, serial);
  const auto b = run_table4(profiles, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].ikmb, b.rows[i].ikmb) << i;
    EXPECT_EQ(a.rows[i].pfa, b.rows[i].pfa) << i;
    EXPECT_EQ(a.rows[i].idom, b.rows[i].idom) << i;
  }
}

TEST(Table5Test, ParallelSweepMatchesSerial) {
  CircuitProfile small = toy_profile();
  small.name = "toy-small";
  small.rows = small.cols = 5;
  small.nets_2_3 = 12;
  small.nets_4_10 = 3;
  const std::vector<CircuitProfile> profiles{toy_profile(), small};

  Table5Options serial;
  serial.seed = 13;
  serial.max_passes = 4;
  serial.widths = {7, 7};
  serial.threads = 1;
  Table5Options parallel = serial;
  parallel.threads = 4;

  const auto a = run_table5(profiles, serial);
  const auto b = run_table5(profiles, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(render_table5(a), render_table5(b));
  EXPECT_DOUBLE_EQ(a.avg_pfa_wire, b.avg_pfa_wire);
  EXPECT_DOUBLE_EQ(a.avg_idom_path, b.avg_idom_path);
}

TEST(Table5Test, RenderIncludesAverages) {
  Table5Options options;
  options.seed = 13;
  options.max_passes = 4;
  options.widths = {7};
  const std::vector<CircuitProfile> profiles{toy_profile()};
  const std::string text = render_table5(run_table5(profiles, options));
  EXPECT_NE(text.find("Measured averages"), std::string::npos);
  EXPECT_NE(text.find("paper"), std::string::npos);
}

}  // namespace
}  // namespace fpr
