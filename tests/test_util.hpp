#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "check/generate.hpp"
#include "graph/graph.hpp"
#include "graph/grid.hpp"
#include "graph/mst.hpp"

namespace fpr::testing {

/// The one seed-derivation scheme shared by every suite: a per-suite FNV
/// salt mixed with the case index through splitmix64. Replaces the ad-hoc
/// `seed * 7 + 13`-style formulas that used to be copy-pasted per suite —
/// two suites iterating the same indices no longer correlate, and a seed
/// printed in a failure message names its suite unambiguously.
constexpr std::uint64_t seeded_rng(std::string_view suite, std::uint64_t index) {
  return check::mix64(check::salt64(suite), index);
}

/// Random connected weighted graph: a random spanning tree plus extra
/// random edges, integral weights in [1, max_weight]. Deterministic per
/// seed.
inline Graph random_connected_graph(NodeId nodes, EdgeId extra_edges, unsigned seed,
                                    int max_weight = 10) {
  std::mt19937_64 rng(seed);
  Graph g(nodes);
  std::uniform_int_distribution<int> weight_dist(1, max_weight);
  // Random spanning tree: attach each node i > 0 to a uniform predecessor.
  for (NodeId i = 1; i < nodes; ++i) {
    std::uniform_int_distribution<NodeId> pred(0, i - 1);
    g.add_edge(i, pred(rng), weight_dist(rng));
  }
  std::uniform_int_distribution<NodeId> any(0, nodes - 1);
  EdgeId added = 0;
  while (added < extra_edges) {
    const NodeId u = any(rng);
    const NodeId v = any(rng);
    if (u == v) continue;
    g.add_edge(u, v, weight_dist(rng));
    ++added;
  }
  return g;
}

/// k distinct random node ids in [0, nodes).
inline std::vector<NodeId> random_net(NodeId nodes, int pins, std::mt19937_64& rng) {
  std::vector<NodeId> net;
  std::uniform_int_distribution<NodeId> any(0, nodes - 1);
  while (static_cast<int>(net.size()) < pins) {
    const NodeId v = any(rng);
    bool fresh = true;
    for (const NodeId u : net) fresh = fresh && (u != v);
    if (fresh) net.push_back(v);
  }
  return net;
}

/// Brute-force graph minimal Steiner tree for tiny instances: the optimal
/// tree spans N plus some Steiner set S and is an MST of the subgraph
/// induced by N + S, so minimizing MST cost over all S is exact.
/// O(2^(V-|N|)) — keep V small.
inline Weight brute_force_gmst_cost(const Graph& g, const std::vector<NodeId>& net) {
  std::vector<NodeId> others;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.node_active(v) && std::find(net.begin(), net.end(), v) == net.end()) {
      others.push_back(v);
    }
  }
  Weight best = kInfiniteWeight;
  const std::uint64_t limit = 1ull << others.size();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    std::vector<char> in_set(static_cast<std::size_t>(g.node_count()), 0);
    for (const NodeId t : net) in_set[static_cast<std::size_t>(t)] = 1;
    std::size_t node_total = net.size();
    for (std::size_t i = 0; i < others.size(); ++i) {
      if (mask & (1ull << i)) {
        in_set[static_cast<std::size_t>(others[i])] = 1;
        ++node_total;
      }
    }
    // MST of the induced subgraph; must span every chosen node.
    std::vector<EdgeId> pool;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (g.edge_usable(e) && in_set[static_cast<std::size_t>(g.edge(e).u)] &&
          in_set[static_cast<std::size_t>(g.edge(e).v)]) {
        pool.push_back(e);
      }
    }
    const auto mst = kruskal_mst_subgraph(g, pool);
    if (mst.size() + 1 != node_total) continue;  // induced subgraph disconnected
    best = std::min(best, edge_set_cost(g, mst));
  }
  return best;
}

}  // namespace fpr::testing
