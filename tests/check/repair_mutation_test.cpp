// Repair mutation smoke test: plant the seeded cone bug
// (testhooks::repair_skip_cone_neighbor makes repair_cone skip the
// congestion-neighbor expansion round, so nets owning a tile sibling of a
// dead wire keep their stale routes instead of re-routing under the
// post-event landscape) and prove the repair fuzz oracle catches it with a
// minimized, replayable repro — plus a pinned direct regression and a
// control run that exonerates the oracle itself. The repaired state stays
// electrically legal under this bug, so only the kRepair cone-contract
// re-derivation (which deliberately does NOT call repair_cone) can see it.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "check/fuzz.hpp"
#include "core/metrics.hpp"
#include "router/repair.hpp"

namespace fpr::check {
namespace {

class RepairMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    counters().reset();
    testhooks::repair_skip_cone_neighbor.store(true);
  }
  void TearDown() override { testhooks::repair_skip_cone_neighbor.store(false); }
};

// The minimized case the fuzz run below first caught, pinned verbatim: an
// ECO event kills a committed wire whose channel tile also carries another
// net, and the skipped expansion round leaves that sibling owner out of the
// cone. Kept as a direct regression so the bug-catch does not depend on
// re-running the whole fuzz loop.
constexpr const char* kPinnedRepro =
    "circuit family=xc4000 rows=4 cols=5 width=2 nets=1,0,0 synth_seed=1737231601 "
    "algo=ZEL decompose=0 repair_events=2 repair_seed=4762824867115632430";

TEST_F(RepairMutationTest, OracleCatchesSkippedConeNeighborOnPinnedCase) {
  const auto verdict = run_case(Oracle::kRepair, kPinnedRepro);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(verdict->ok())
      << "seeded cone-neighbor skip shipped a repair the oracle waved through";

  // Same case, hook off: clean — the failure above is the injected fault,
  // not the oracle or the case itself.
  testhooks::repair_skip_cone_neighbor.store(false);
  const auto control = run_case(Oracle::kRepair, kPinnedRepro);
  ASSERT_TRUE(control.has_value());
  EXPECT_TRUE(control->ok()) << control->message();
}

TEST_F(RepairMutationTest, FuzzOracleCatchesSkippedConeNeighbor) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "repair-mutation-failures";
  std::filesystem::remove_all(dir);

  FuzzOptions options;
  options.seed = 1;
  options.iterations = 150;
  options.oracles = {Oracle::kRepair};
  options.max_failures = 1;  // first catch is enough for the smoke test
  options.failure_dir = dir.string();
  options.log = nullptr;
  const FuzzReport report = fuzz(options);

  ASSERT_FALSE(report.clean())
      << "skipped cone-neighbor expansion survived 150 repair-oracle iterations";
  const FuzzFailure& f = report.failures.front();
  EXPECT_FALSE(f.repro.empty());
  EXPECT_FALSE(f.message.empty());

  // The minimized repro parses, still fails, and is still a repair case —
  // the shrinker must not have dropped the event dimension the bug needs.
  const auto minimized = CircuitCase::parse(f.repro);
  ASSERT_TRUE(minimized.has_value()) << f.repro;
  EXPECT_GT(minimized->repair_events, 0) << f.repro;
  const auto rerun = run_case(Oracle::kRepair, f.repro);
  ASSERT_TRUE(rerun.has_value());
  EXPECT_FALSE(rerun->ok()) << "minimized repro no longer fails: " << f.repro;

  // ...and was persisted as a self-contained file that replays.
  ASSERT_FALSE(f.file.empty());
  EXPECT_TRUE(std::filesystem::exists(f.file));
  std::ostringstream log;
  const auto replayed = replay_file(f.file, log);
  ASSERT_TRUE(replayed.has_value()) << log.str();
  EXPECT_FALSE(replayed->ok());

  std::filesystem::remove_all(dir);
}

TEST_F(RepairMutationTest, SameSeedIsCleanWithoutTheMutation) {
  // Control: the exact fuzz run above passes once the hook is off, pinning
  // the failures on the injected fault rather than the oracle or the
  // repair generator.
  testhooks::repair_skip_cone_neighbor.store(false);
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 150;
  options.oracles = {Oracle::kRepair};
  options.log = nullptr;
  EXPECT_TRUE(fuzz(options).clean());
}

}  // namespace
}  // namespace fpr::check
