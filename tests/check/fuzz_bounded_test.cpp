// Bounded tier-1 slice of the fuzzer (src/check/fuzz.hpp): a fixed-seed,
// fixed-iteration run of every oracle must come back clean, and the
// case/replay plumbing must round-trip. The unbounded version of this is
// the fuzz_fpr binary (nightly CI / local soak) — see TESTING.md.

#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/oracles.hpp"
#include "core/metrics.hpp"

namespace fpr::check {
namespace {

class FuzzBoundedTest : public ::testing::Test {
 protected:
  void SetUp() override { counters().reset(); }
};

TEST_F(FuzzBoundedTest, AllOraclesCleanAtFixedSeed) {
  FuzzOptions options;
  options.seed = 20260806;
  options.iterations = 60;  // per oracle; bounded for ctest wall-clock
  options.log = nullptr;
  const FuzzReport report = fuzz(options);
  const long expected = 60 * static_cast<long>(all_oracles().size());
  EXPECT_EQ(report.iterations, expected);
  EXPECT_TRUE(report.clean());
  for (const FuzzFailure& f : report.failures) {
    ADD_FAILURE() << oracle_name(f.oracle) << " seed " << f.case_seed << ": " << f.message
                  << "\n  " << f.repro;
  }
  EXPECT_EQ(counters().fuzz_cases.load(), static_cast<unsigned long>(expected));
  EXPECT_GE(counters().checks_run.load(), static_cast<unsigned long>(expected));
  EXPECT_EQ(counters().check_violations.load(), 0u);
}

TEST_F(FuzzBoundedTest, OracleSelectionRestrictsTheRun) {
  FuzzOptions options;
  options.seed = 5;
  options.iterations = 10;
  options.oracles = {Oracle::kTreeValidity};
  options.log = nullptr;
  const FuzzReport report = fuzz(options);
  EXPECT_EQ(report.iterations, 10);
  EXPECT_TRUE(report.clean());
}

TEST_F(FuzzBoundedTest, OracleNamesRoundTrip) {
  for (const Oracle o : all_oracles()) {
    const auto parsed = parse_oracle(oracle_name(o));
    ASSERT_TRUE(parsed.has_value()) << oracle_name(o);
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_FALSE(parse_oracle("no-such-oracle").has_value());
}

TEST_F(FuzzBoundedTest, RunCaseExecutesADescribedCase) {
  const TreeCase c = generate_tree_case(99, 9, std::array<Algorithm, 1>{Algorithm::kKmb});
  const auto result = run_case(Oracle::kApproxBound, c.describe());
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->message();
  EXPECT_FALSE(run_case(Oracle::kApproxBound, "not a case line").has_value());
}

TEST_F(FuzzBoundedTest, RunCaseExecutesACircuitCase) {
  const CircuitCase c = generate_circuit_case(4);
  const auto result = run_case(Oracle::kFeasibility, c.describe());
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->message();
}

TEST_F(FuzzBoundedTest, ReplayFileRoundTrip) {
  const TreeCase c = generate_tree_case(12, 9, std::array<Algorithm, 1>{Algorithm::kIdom});
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "roundtrip.repro";
  {
    std::ofstream out(path);
    out << "oracle: validity\n"
        << "case: " << c.describe() << "\n";
  }
  std::ostringstream log;
  const auto result = replay_file(path.string(), log);
  ASSERT_TRUE(result.has_value()) << log.str();
  EXPECT_TRUE(result->ok()) << result->message();
  EXPECT_NE(log.str().find("PASS"), std::string::npos) << log.str();
}

TEST_F(FuzzBoundedTest, ReplayRejectsMalformedFiles) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "malformed.repro";
  {
    std::ofstream out(path);
    out << "neither oracle nor case\n";
  }
  std::ostringstream log;
  EXPECT_FALSE(replay_file(path.string(), log).has_value());
  EXPECT_FALSE(replay_file("/nonexistent/file.repro", log).has_value());
}

}  // namespace
}  // namespace fpr::check
