// Unit tests for the invariant oracles (src/check/oracles.hpp): each oracle
// must accept production output and reject hand-corrupted instances.

#include "check/oracles.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "graph/grid.hpp"
#include "netlist/synth.hpp"
#include "test_util.hpp"

namespace fpr {
namespace {

using check::check_approximation_bound;
using check::check_iterated_monotonicity;
using check::check_routing_feasibility;
using check::check_tree_validity;
using check::CheckResult;

// Every check suite resets the global metrics counters so assertions about
// them hold regardless of which tests ran earlier in the same process or
// how ctest -j interleaves suites.
class OraclesTest : public ::testing::Test {
 protected:
  void SetUp() override { counters().reset(); }
};

TEST_F(OraclesTest, ValidityAcceptsEveryAlgorithmsOutput) {
  const Graph g = testing::random_connected_graph(24, 30, 901);
  PathOracle oracle(g);
  std::mt19937_64 rng(testing::seeded_rng("oracles_validity", 0));
  const auto pins = testing::random_net(24, 5, rng);
  Net net;
  net.source = pins[0];
  net.sinks.assign(pins.begin() + 1, pins.end());
  for (const Algorithm algo : table1_algorithms()) {
    const RoutingTree tree = route(g, net, algo, oracle);
    const CheckResult r = check_tree_validity(g, pins, tree);
    EXPECT_TRUE(r.ok()) << algorithm_name(algo) << ": " << r.message();
  }
  EXPECT_GE(counters().checks_run.load(), 8u);
  EXPECT_EQ(counters().check_violations.load(), 0u);
}

TEST_F(OraclesTest, ValidityRejectsDisconnectedEdgeSet) {
  GridGraph grid(4, 4);
  const std::vector<EdgeId> edges{grid.horizontal_edge(0, 0), grid.horizontal_edge(2, 3)};
  const RoutingTree t(grid.graph(), edges);
  const std::vector<NodeId> terminals{grid.node_at(0, 0), grid.node_at(3, 3)};
  const CheckResult r = check_tree_validity(grid.graph(), terminals, t);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(counters().check_violations.load(), 1u);
}

TEST_F(OraclesTest, ValidityRejectsCycle) {
  GridGraph grid(4, 4);
  const std::vector<EdgeId> edges{
      grid.horizontal_edge(0, 0), grid.vertical_edge(1, 0),
      grid.horizontal_edge(0, 1), grid.vertical_edge(0, 0),
  };
  const RoutingTree t(grid.graph(), edges);
  const std::vector<NodeId> terminals{grid.node_at(0, 0), grid.node_at(1, 1)};
  EXPECT_FALSE(check_tree_validity(grid.graph(), terminals, t).ok());
}

TEST_F(OraclesTest, ValidityRejectsTreeMissingATerminal) {
  GridGraph grid(4, 4);
  const RoutingTree t(grid.graph(), {grid.horizontal_edge(0, 0)});
  const std::vector<NodeId> terminals{grid.node_at(0, 0), grid.node_at(3, 3)};
  EXPECT_FALSE(check_tree_validity(grid.graph(), terminals, t).ok());
}

TEST_F(OraclesTest, ValidityRejectsNonEmptyTreeMissingLoneTerminal) {
  // Regression companion to RoutingTree::spans(): a non-empty tree that
  // does not touch its single terminal is NOT a routing of that terminal.
  GridGraph grid(4, 4);
  const RoutingTree t(grid.graph(), {grid.horizontal_edge(0, 0)});
  const std::vector<NodeId> lone{grid.node_at(3, 3)};
  EXPECT_FALSE(check_tree_validity(grid.graph(), lone, t).ok());
}

TEST_F(OraclesTest, ValidityAcceptsEmptyTreeForLoneTerminal) {
  GridGraph grid(4, 4);
  const RoutingTree t(grid.graph(), {});
  const std::vector<NodeId> lone{grid.node_at(2, 2)};
  const CheckResult r = check_tree_validity(grid.graph(), lone, t);
  EXPECT_TRUE(r.ok()) << r.message();
}

TEST_F(OraclesTest, ApproximationBoundHoldsOnRandomInstances) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const Graph g = testing::random_connected_graph(12, 14, 700 + seed);
    std::mt19937_64 rng(testing::seeded_rng("oracles_bound", seed));
    const auto pins = testing::random_net(12, 4, rng);
    Net net;
    net.source = pins[0];
    net.sinks.assign(pins.begin() + 1, pins.end());
    for (const Algorithm algo : table1_algorithms()) {
      const CheckResult r = check_approximation_bound(g, net, algo);
      EXPECT_TRUE(r.ok()) << "seed " << seed << " " << algorithm_name(algo) << ": "
                          << r.message();
    }
  }
}

TEST_F(OraclesTest, ApproximationBoundSkipsOversizedNets) {
  const Graph g = testing::random_connected_graph(30, 20, 42);
  std::mt19937_64 rng(testing::seeded_rng("oracles_bound_skip", 0));
  const auto pins = testing::random_net(30, 12, rng);
  Net net;
  net.source = pins[0];
  net.sinks.assign(pins.begin() + 1, pins.end());
  // 12 terminals > the 9-terminal exact-DP ceiling: skipped, reported ok.
  EXPECT_TRUE(check_approximation_bound(g, net, Algorithm::kKmb).ok());
}

TEST_F(OraclesTest, MonotonicityHoldsOnRandomInstances) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const Graph g = testing::random_connected_graph(16, 20, 330 + seed);
    std::mt19937_64 rng(testing::seeded_rng("oracles_mono", seed));
    const auto pins = testing::random_net(16, 5, rng);
    Net net;
    net.source = pins[0];
    net.sinks.assign(pins.begin() + 1, pins.end());
    const CheckResult r = check_iterated_monotonicity(g, net);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.message();
  }
}

TEST_F(OraclesTest, FeasibilityAcceptsRouterOutput) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[2], 19);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 9);
  Device device(arch);
  const RouterOptions options;
  const RoutingResult result = route_circuit(device, circuit, options);
  const CheckResult r = check_routing_feasibility(arch, circuit, result, options);
  EXPECT_TRUE(r.ok()) << r.message();
}

TEST_F(OraclesTest, FeasibilityRejectsTamperedTotals) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[2], 19);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 9);
  Device device(arch);
  const RouterOptions options;
  RoutingResult result = route_circuit(device, circuit, options);
  result.total_wire_nodes += 1;
  EXPECT_FALSE(check_routing_feasibility(arch, circuit, result, options).ok());
}

TEST_F(OraclesTest, FeasibilityRejectsEmptiedNet) {
  const Circuit circuit = synthesize_circuit(xc4000_profiles()[2], 19);
  const ArchSpec arch = ArchSpec::xc4000(circuit.rows, circuit.cols, 9);
  Device device(arch);
  const RouterOptions options;
  RoutingResult result = route_circuit(device, circuit, options);
  ASSERT_TRUE(result.success);
  // A net claiming "routed" with no edges no longer spans its pins.
  for (auto& net : result.nets) {
    if (net.routed() && !net.edges.empty()) {
      net.edges.clear();
      break;
    }
  }
  EXPECT_FALSE(check_routing_feasibility(arch, circuit, result, options).ok());
}

TEST_F(OraclesTest, CountersAreResettable) {
  GridGraph grid(3, 3);
  const RoutingTree t(grid.graph(), {grid.horizontal_edge(0, 0)});
  const std::vector<NodeId> terminals{grid.node_at(0, 0), grid.node_at(1, 0)};
  ASSERT_TRUE(check_tree_validity(grid.graph(), terminals, t).ok());
  EXPECT_GT(counters().checks_run.load(), 0u);
  counters().reset();
  EXPECT_EQ(counters().checks_run.load(), 0u);
  EXPECT_EQ(counters().check_violations.load(), 0u);
  EXPECT_EQ(counters().fuzz_cases.load(), 0u);
  EXPECT_EQ(counters().shrink_steps.load(), 0u);
  EXPECT_EQ(counters().trees_measured.load(), 0u);
}

}  // namespace
}  // namespace fpr
