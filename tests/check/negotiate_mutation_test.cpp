// Negotiated-mode mutation smoke test: plant the seeded history-update bug
// (testhooks::negotiate_break_history_update skips odd-id wires from both
// the end-of-pass overflow tally and the history accrual, so the loop
// believes a pass with shared odd-id wires converged and ships a solution
// violating wire exclusivity) and prove the negotiate fuzz oracle catches
// it with a minimized, replayable repro — plus a deterministic direct
// check on a congested circuit, and a control run that exonerates the
// oracle itself.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "check/fuzz.hpp"
#include "core/metrics.hpp"
#include "router/negotiate.hpp"

namespace fpr::check {
namespace {

class NegotiateMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    counters().reset();
    testhooks::negotiate_break_history_update.store(true);
  }
  void TearDown() override { testhooks::negotiate_break_history_update.store(false); }
};

// The minimized case the fuzz run below first caught, pinned verbatim: a
// tiny congested 2x3 array where the broken end-of-pass sweep believes a
// pass with shared odd-id wires converged. Kept as a direct regression so
// the bug-catch does not depend on re-running the whole fuzz loop.
constexpr const char* kPinnedRepro =
    "circuit family=xc3000 rows=2 cols=3 width=4 nets=3,1,1 synth_seed=4268943187 "
    "algo=DJKA decompose=0 threads=2 mode=negotiated";

TEST_F(NegotiateMutationTest, OracleCatchesBrokenHistoryUpdateOnPinnedCase) {
  const auto verdict = run_case(Oracle::kNegotiate, kPinnedRepro);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(verdict->ok())
      << "seeded history-update bug shipped a solution the oracle waved through";

  // Same case, hook off: clean — the failure above is the injected fault,
  // not the oracle or the case itself.
  testhooks::negotiate_break_history_update.store(false);
  const auto control = run_case(Oracle::kNegotiate, kPinnedRepro);
  ASSERT_TRUE(control.has_value());
  EXPECT_TRUE(control->ok()) << control->message();
}

TEST_F(NegotiateMutationTest, FuzzOracleCatchesBrokenHistoryUpdate) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "negotiate-mutation-failures";
  std::filesystem::remove_all(dir);

  FuzzOptions options;
  options.seed = 1;
  options.iterations = 150;
  options.oracles = {Oracle::kNegotiate};
  options.max_failures = 1;  // first catch is enough for the smoke test
  options.failure_dir = dir.string();
  options.log = nullptr;
  const FuzzReport report = fuzz(options);

  ASSERT_FALSE(report.clean())
      << "broken history update survived 150 negotiate-oracle iterations";
  const FuzzFailure& f = report.failures.front();
  EXPECT_FALSE(f.repro.empty());
  EXPECT_FALSE(f.message.empty());

  // The minimized repro parses, still fails, and is a negotiated case —
  // the shrinker's mode move (drop to paper mode) must NOT have fired,
  // since the planted bug lives inside the negotiation loop.
  const auto minimized = CircuitCase::parse(f.repro);
  ASSERT_TRUE(minimized.has_value()) << f.repro;
  EXPECT_TRUE(minimized->negotiated) << f.repro;
  const auto rerun = run_case(Oracle::kNegotiate, f.repro);
  ASSERT_TRUE(rerun.has_value());
  EXPECT_FALSE(rerun->ok()) << "minimized repro no longer fails: " << f.repro;

  // ...and was persisted as a self-contained file that replays.
  ASSERT_FALSE(f.file.empty());
  EXPECT_TRUE(std::filesystem::exists(f.file));
  std::ostringstream log;
  const auto replayed = replay_file(f.file, log);
  ASSERT_TRUE(replayed.has_value()) << log.str();
  EXPECT_FALSE(replayed->ok());

  std::filesystem::remove_all(dir);
}

TEST_F(NegotiateMutationTest, SameSeedIsCleanWithoutTheMutation) {
  // Control: the exact fuzz run above passes once the hook is off, pinning
  // the failures on the injected fault rather than the oracle or the
  // negotiated generator.
  testhooks::negotiate_break_history_update.store(false);
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 150;
  options.oracles = {Oracle::kNegotiate};
  options.log = nullptr;
  EXPECT_TRUE(fuzz(options).clean());
}

}  // namespace
}  // namespace fpr::check
