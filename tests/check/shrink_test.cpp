// Generator determinism + repro round-trips + greedy shrinking
// (src/check/generate.hpp, src/check/shrink.hpp).

#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "check/generate.hpp"
#include "core/metrics.hpp"

namespace fpr::check {
namespace {

class ShrinkTest : public ::testing::Test {
 protected:
  void SetUp() override { counters().reset(); }
};

constexpr std::array<Algorithm, 2> kTwoAlgorithms{Algorithm::kKmb, Algorithm::kIdom};

TEST_F(ShrinkTest, TreeCaseGenerationIsDeterministic) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TreeCase a = generate_tree_case(seed, 9, kTwoAlgorithms);
    const TreeCase b = generate_tree_case(seed, 9, kTwoAlgorithms);
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
  }
}

TEST_F(ShrinkTest, TreeCaseDescribeParseRoundTrip) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TreeCase c = generate_tree_case(seed, 9, kTwoAlgorithms);
    const auto parsed = TreeCase::parse(c.describe());
    ASSERT_TRUE(parsed.has_value()) << c.describe();
    EXPECT_EQ(parsed->describe(), c.describe());
  }
}

TEST_F(ShrinkTest, CircuitCaseDescribeParseRoundTrip) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const CircuitCase c = generate_circuit_case(seed);
    const auto parsed = CircuitCase::parse(c.describe());
    ASSERT_TRUE(parsed.has_value()) << c.describe();
    EXPECT_EQ(parsed->describe(), c.describe());
  }
}

TEST_F(ShrinkTest, GeneratedTerminalsAreDistinctAndInRange) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const TreeCase c = generate_tree_case(seed, 9, kTwoAlgorithms);
    const std::set<NodeId> unique(c.terminals.begin(), c.terminals.end());
    EXPECT_EQ(unique.size(), c.terminals.size()) << c.describe();
    EXPECT_GE(c.terminals.size(), 2u);
    EXPECT_LE(c.terminals.size(), 9u);
    for (const NodeId t : c.terminals) {
      EXPECT_GE(t, 0) << c.describe();
      EXPECT_LT(t, static_cast<NodeId>(c.node_count())) << c.describe();
    }
  }
}

TEST_F(ShrinkTest, MaterializedGraphMatchesCaseDescription) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const TreeCase c = generate_tree_case(seed, 9, kTwoAlgorithms);
    const Graph g = c.materialize();
    EXPECT_EQ(g.node_count(), static_cast<NodeId>(c.node_count())) << c.describe();
    // Re-materialization is bitwise repeatable.
    const Graph h = c.materialize();
    ASSERT_EQ(g.edge_count(), h.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(g.edge(e).u, h.edge(e).u);
      EXPECT_EQ(g.edge(e).v, h.edge(e).v);
      EXPECT_DOUBLE_EQ(g.edge(e).weight, h.edge(e).weight);
    }
  }
}

TEST_F(ShrinkTest, ShrinkDrivesTreeCaseToMinimum) {
  // An always-failing predicate lets the shrinker go as far as its candidate
  // moves allow: two terminals and a minimal substrate.
  const TreeCase start = generate_tree_case(7, 9, kTwoAlgorithms);
  const TreeCase shrunk = shrink_tree_case(start, [](const TreeCase&) { return true; });
  EXPECT_EQ(shrunk.terminals.size(), 2u) << shrunk.describe();
  if (shrunk.substrate == TreeCase::Substrate::kRandomGraph) {
    EXPECT_LE(shrunk.nodes, 3) << shrunk.describe();
    EXPECT_EQ(shrunk.extra_edges, 0) << shrunk.describe();
  } else {
    EXPECT_LE(shrunk.grid_width, 2) << shrunk.describe();
    EXPECT_LE(shrunk.grid_height, 2) << shrunk.describe();
  }
  EXPECT_EQ(shrunk.max_weight, 1) << shrunk.describe();
  EXPECT_GT(counters().shrink_steps.load(), 0u);
}

TEST_F(ShrinkTest, ShrunkCaseStillSatisfiesPredicate) {
  // Predicate: the case still has at least 3 terminals. The shrinker must
  // stop right at the boundary, never return a passing case.
  const auto at_least_three = [](const TreeCase& c) { return c.terminals.size() >= 3; };
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    TreeCase start = generate_tree_case(seed, 9, kTwoAlgorithms);
    if (!at_least_three(start)) continue;
    const TreeCase shrunk = shrink_tree_case(start, at_least_three);
    EXPECT_TRUE(at_least_three(shrunk)) << shrunk.describe();
    EXPECT_EQ(shrunk.terminals.size(), 3u) << shrunk.describe();
  }
}

TEST_F(ShrinkTest, ShrunkTerminalsStayValid) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const TreeCase start = generate_tree_case(seed, 9, kTwoAlgorithms);
    const TreeCase shrunk = shrink_tree_case(start, [](const TreeCase&) { return true; });
    const std::set<NodeId> unique(shrunk.terminals.begin(), shrunk.terminals.end());
    EXPECT_EQ(unique.size(), shrunk.terminals.size()) << shrunk.describe();
    for (const NodeId t : shrunk.terminals) {
      EXPECT_GE(t, 0) << shrunk.describe();
      EXPECT_LT(t, static_cast<NodeId>(shrunk.node_count())) << shrunk.describe();
    }
  }
}

TEST_F(ShrinkTest, ShrinkDrivesCircuitCaseToMinimum) {
  const CircuitCase start = generate_circuit_case(11);
  const CircuitCase shrunk =
      shrink_circuit_case(start, [](const CircuitCase&) { return true; });
  EXPECT_EQ(shrunk.rows, 2) << shrunk.describe();
  EXPECT_EQ(shrunk.cols, 2) << shrunk.describe();
  EXPECT_EQ(shrunk.width, 2) << shrunk.describe();
  EXPECT_EQ(shrunk.nets_over_10, 0) << shrunk.describe();
  EXPECT_EQ(shrunk.nets_4_10, 0) << shrunk.describe();
  EXPECT_GE(shrunk.nets_2_3 + shrunk.nets_4_10 + shrunk.nets_over_10, 1) << shrunk.describe();
}

TEST_F(ShrinkTest, ShrinkIsIdentityOnPassingCase) {
  const TreeCase start = generate_tree_case(3, 9, kTwoAlgorithms);
  const TreeCase same = shrink_tree_case(start, [](const TreeCase&) { return false; });
  EXPECT_EQ(same.describe(), start.describe());
  EXPECT_EQ(counters().shrink_steps.load(), 0u);
}

}  // namespace
}  // namespace fpr::check
