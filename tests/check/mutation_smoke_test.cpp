// Mutation smoke test: deliberately break KMB's spanning-tree selection
// (testhooks::kmb_invert_mst_selection makes it pick the MAXIMUM spanning
// tree of the distance graph) and prove the approximation-bound oracle
// catches the 2x-OPT violation quickly, with a minimized repro.
//
// The mutated output is still a structurally valid routing tree, so this
// also demonstrates the oracles have disjoint power: validity alone would
// wave the broken algorithm through.

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "core/metrics.hpp"
#include "steiner/kmb.hpp"

namespace fpr::check {
namespace {

class MutationSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    counters().reset();
    testhooks::kmb_invert_mst_selection.store(true);
  }
  void TearDown() override { testhooks::kmb_invert_mst_selection.store(false); }
};

TEST_F(MutationSmokeTest, ApproxOracleCatchesBrokenKmbWithin200Iterations) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "mutation-fuzz-failures";
  std::filesystem::remove_all(dir);

  FuzzOptions options;
  options.seed = 1;
  options.iterations = 200;
  options.oracles = {Oracle::kApproxBound};
  // Targeted fuzzing: the fault lives in KMB's spanning-tree selection, so
  // restrict generation to the two constructions that run that code path.
  options.algorithms = {Algorithm::kKmb, Algorithm::kZel};
  options.max_failures = 1;  // first catch is enough for the smoke test
  options.failure_dir = dir.string();
  options.log = nullptr;
  const FuzzReport report = fuzz(options);

  ASSERT_FALSE(report.clean()) << "broken KMB survived 200 approx-oracle iterations";
  const FuzzFailure& f = report.failures.front();
  EXPECT_LT(f.iteration, 200);
  EXPECT_FALSE(f.repro.empty());
  EXPECT_FALSE(f.message.empty());

  // The minimized repro is a parsable case that still fails the oracle.
  const auto minimized = TreeCase::parse(f.repro);
  ASSERT_TRUE(minimized.has_value()) << f.repro;
  const auto rerun = run_case(Oracle::kApproxBound, f.repro);
  ASSERT_TRUE(rerun.has_value());
  EXPECT_FALSE(rerun->ok()) << "minimized repro no longer fails: " << f.repro;

  // ...and it was persisted as a self-contained file that replays.
  ASSERT_FALSE(f.file.empty());
  EXPECT_TRUE(std::filesystem::exists(f.file));
  std::ostringstream log;
  const auto replayed = replay_file(f.file, log);
  ASSERT_TRUE(replayed.has_value()) << log.str();
  EXPECT_FALSE(replayed->ok());

  std::filesystem::remove_all(dir);
}

TEST_F(MutationSmokeTest, MutatedTreeIsStillStructurallyValid) {
  // The fault is subtle by design: the validity oracle alone cannot see it.
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 60;
  options.oracles = {Oracle::kTreeValidity};
  options.log = nullptr;
  EXPECT_TRUE(fuzz(options).clean());
}

TEST_F(MutationSmokeTest, SameSeedIsCleanWithoutTheMutation) {
  // Control: the exact run of the first test passes once the hook is off,
  // pinning the failures on the injected fault rather than the oracle.
  testhooks::kmb_invert_mst_selection.store(false);
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 200;
  options.oracles = {Oracle::kApproxBound};
  options.algorithms = {Algorithm::kKmb, Algorithm::kZel};
  options.log = nullptr;
  EXPECT_TRUE(fuzz(options).clean());
}

}  // namespace
}  // namespace fpr::check
