#pragma once

#include <random>

#include "netlist/netlist.hpp"
#include "netlist/profiles.hpp"

namespace fpr {

/// Knobs for the synthetic circuit generator.
struct SynthOptions {
  /// Std-dev of the Gaussian pin scatter around each net's cluster center,
  /// as a fraction of the smaller array dimension. Small values give local
  /// nets (realistic placements cluster connected logic); large values
  /// approach uniform placement.
  double locality_sigma = 0.22;

  /// Upper bound on pins for the "over 10" bucket.
  int max_pins = 18;

  /// Fraction of nets flagged timing-critical (largest fanouts first — the
  /// paper's first-approximation rule that long-path nets are the critical
  /// ones). 0 disables.
  double critical_fraction = 0.0;
};

/// Realizes a placed circuit with exactly the profile's array size and
/// per-bucket net counts. Pin counts are drawn uniformly inside each bucket;
/// pins of one net are placed on distinct blocks clustered around a random
/// center (locality-aware placement). Deterministic per seed.
///
/// This is the repo's stand-in for the paper's industry benchmark circuits
/// (see DESIGN.md section 2): it feeds the router the same array geometry
/// and net-size distribution, which is what the channel-width experiments
/// consume.
Circuit synthesize_circuit(const CircuitProfile& profile, unsigned seed,
                           const SynthOptions& options = {});

}  // namespace fpr
