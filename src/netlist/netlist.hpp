#pragma once

#include <string>
#include <vector>

#include "core/net.hpp"
#include "fpga/device.hpp"

namespace fpr {

/// A logic-block position on the FPGA array.
struct PinRef {
  int x = 0;
  int y = 0;
  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// One multi-terminal net of a placed circuit: a driving block and the
/// blocks it fans out to. `critical` marks timing-critical nets (Section 2:
/// "nets may be classified as either critical or non-critical based on
/// timing information from the higher-level design stages"); the router can
/// route them with an arborescence construction while the rest use the
/// Steiner heuristic.
struct CircuitNet {
  PinRef source;
  std::vector<PinRef> sinks;
  bool critical = false;

  int pin_count() const { return 1 + static_cast<int>(sinks.size()); }

  friend bool operator==(const CircuitNet&, const CircuitNet&) = default;
};

/// A placed circuit: nets over a rows x cols logic-block array. Placement
/// (which block each pin occupies) is already folded into the PinRefs, as
/// the paper assumes ("partitioning, technology mapping, and placement have
/// already been performed", Section 2).
struct Circuit {
  std::string name;
  int rows = 0;
  int cols = 0;
  std::vector<CircuitNet> nets;

  /// Net-size histogram in the buckets of Tables 2/3.
  struct Histogram {
    int pins_2_3 = 0;
    int pins_4_10 = 0;
    int pins_over_10 = 0;
  };
  Histogram histogram() const;

  /// True when every pin lies on the array and every net has >= 2 pins.
  bool well_formed() const;
};

/// Maps a circuit net onto a device's routing graph (block nodes), skipping
/// duplicate sink blocks and sinks equal to the source block.
Net to_graph_net(const Device& device, const CircuitNet& net);

}  // namespace fpr
