#include "netlist/netlist.hpp"

#include <algorithm>

namespace fpr {

Circuit::Histogram Circuit::histogram() const {
  Histogram h;
  for (const auto& net : nets) {
    const int pins = net.pin_count();
    if (pins <= 3) {
      ++h.pins_2_3;
    } else if (pins <= 10) {
      ++h.pins_4_10;
    } else {
      ++h.pins_over_10;
    }
  }
  return h;
}

bool Circuit::well_formed() const {
  const auto on_array = [&](const PinRef& p) {
    return p.x >= 0 && p.x < cols && p.y >= 0 && p.y < rows;
  };
  for (const auto& net : nets) {
    if (net.sinks.empty()) return false;
    if (!on_array(net.source)) return false;
    if (!std::all_of(net.sinks.begin(), net.sinks.end(), on_array)) return false;
  }
  return true;
}

Net to_graph_net(const Device& device, const CircuitNet& net) {
  Net g;
  g.source = device.block_node(net.source.x, net.source.y);
  for (const PinRef& p : net.sinks) {
    const NodeId v = device.block_node(p.x, p.y);
    if (v != g.source && std::find(g.sinks.begin(), g.sinks.end(), v) == g.sinks.end()) {
      g.sinks.push_back(v);
    }
  }
  return g;
}

}  // namespace fpr
