#include "netlist/synth.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"

namespace fpr {

namespace {

int clamp_to(int v, int lo, int hi) { return std::max(lo, std::min(hi, v)); }

/// Places `pins` distinct blocks clustered around a random center. All draws
/// go through core/rng.hpp so the placement is identical on every platform
/// and standard library (std::*_distribution is implementation-defined).
std::vector<PinRef> place_net(int rows, int cols, int pins, double sigma_frac,
                              std::mt19937_64& rng) {
  const double sigma = std::max(1.5, sigma_frac * std::min(rows, cols));

  const int center_x = draw_range(rng, 0, cols - 1);
  const int center_y = draw_range(rng, 0, rows - 1);
  std::vector<PinRef> placed;
  placed.reserve(static_cast<std::size_t>(pins));
  int attempts = 0;
  const int max_attempts = pins * 50;
  while (static_cast<int>(placed.size()) < pins && attempts < max_attempts) {
    ++attempts;
    PinRef p;
    p.x = clamp_to(center_x + static_cast<int>(std::lround(sigma * draw_gaussian(rng))), 0,
                   cols - 1);
    p.y = clamp_to(center_y + static_cast<int>(std::lround(sigma * draw_gaussian(rng))), 0,
                   rows - 1);
    if (std::find(placed.begin(), placed.end(), p) == placed.end()) placed.push_back(p);
  }
  // Dense nets on small arrays can exhaust the cluster; fall back to uniform
  // placement for the remainder.
  while (static_cast<int>(placed.size()) < pins) {
    PinRef p{draw_range(rng, 0, cols - 1), draw_range(rng, 0, rows - 1)};
    if (std::find(placed.begin(), placed.end(), p) == placed.end()) placed.push_back(p);
  }
  return placed;
}

}  // namespace

Circuit synthesize_circuit(const CircuitProfile& profile, unsigned seed,
                           const SynthOptions& options) {
  std::mt19937_64 rng(seed);
  Circuit circuit;
  circuit.name = profile.name;
  circuit.rows = profile.rows;
  circuit.cols = profile.cols;
  circuit.nets.reserve(static_cast<std::size_t>(profile.total_nets()));

  struct Bucket {
    int count, min_pins, max_pins;
  };
  const int blocks = profile.rows * profile.cols;
  const int over_cap = std::min(options.max_pins, std::max(12, blocks / 4));
  const Bucket buckets[3] = {
      {profile.nets_2_3, 2, 3},
      {profile.nets_4_10, 4, 10},
      {profile.nets_over_10, 11, over_cap},
  };
  for (const auto& bucket : buckets) {
    for (int i = 0; i < bucket.count; ++i) {
      const int pins = std::min(draw_range(rng, bucket.min_pins, bucket.max_pins), blocks);
      auto placed = place_net(profile.rows, profile.cols, pins, options.locality_sigma, rng);
      CircuitNet net;
      net.source = placed.front();
      net.sinks.assign(placed.begin() + 1, placed.end());
      circuit.nets.push_back(std::move(net));
    }
  }
  // Route big nets first within the initial order: large fanout nets are the
  // hardest to place late, matching common router practice.
  std::stable_sort(circuit.nets.begin(), circuit.nets.end(),
                   [](const CircuitNet& a, const CircuitNet& b) {
                     return a.pin_count() > b.pin_count();
                   });
  if (options.critical_fraction > 0) {
    const auto critical_count = static_cast<std::size_t>(
        options.critical_fraction * static_cast<double>(circuit.nets.size()));
    for (std::size_t i = 0; i < critical_count && i < circuit.nets.size(); ++i) {
      circuit.nets[i].critical = true;  // big-first order: largest fanouts
    }
  }
  return circuit;
}

}  // namespace fpr
