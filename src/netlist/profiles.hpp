#pragma once

#include <string>
#include <vector>

namespace fpr {

/// Statistical profile of one benchmark circuit from the paper's Tables 2/3:
/// the FPGA array size, the net count per pin-count bucket, and the channel
/// widths the paper reports for the published routers and for its own
/// router. The synthetic-circuit generator (synth.hpp) realizes a placed
/// circuit with exactly this profile — our substitute for the original
/// (unavailable) MCNC netlists/placements; see DESIGN.md section 2.
struct CircuitProfile {
  std::string name;
  int rows = 0;
  int cols = 0;
  int nets_2_3 = 0;
  int nets_4_10 = 0;
  int nets_over_10 = 0;

  // Paper-reported minimum channel widths (-1 = not reported).
  int paper_cge = -1;        // Table 2 (3000-series)
  int paper_sega = -1;       // Tables 3/4 (4000-series)
  int paper_gbp = -1;        // Tables 3/4
  int paper_ikmb = -1;       // "Our Router" column / Table 4 IKMB
  int paper_pfa = -1;        // Table 4
  int paper_idom = -1;       // Table 4
  int paper_table5_width = -1;  // the fixed width used by Table 5

  int total_nets() const { return nets_2_3 + nets_4_10 + nets_over_10; }
};

/// The five 3000-series circuits of Table 2 (busc ... z03).
const std::vector<CircuitProfile>& xc3000_profiles();

/// The nine 4000-series circuits of Tables 3/4/5 (alu4 ... alu2).
const std::vector<CircuitProfile>& xc4000_profiles();

}  // namespace fpr
