#include "netlist/profiles.hpp"

namespace fpr {

namespace {

CircuitProfile xc3000(std::string name, int rows, int cols, int n23, int n410, int nover,
                      int cge, int ours) {
  CircuitProfile p;
  p.name = std::move(name);
  p.rows = rows;
  p.cols = cols;
  p.nets_2_3 = n23;
  p.nets_4_10 = n410;
  p.nets_over_10 = nover;
  p.paper_cge = cge;
  p.paper_ikmb = ours;
  return p;
}

CircuitProfile xc4000(std::string name, int rows, int cols, int n23, int n410, int nover,
                      int sega, int gbp, int ikmb, int pfa, int idom, int t5w) {
  CircuitProfile p;
  p.name = std::move(name);
  p.rows = rows;
  p.cols = cols;
  p.nets_2_3 = n23;
  p.nets_4_10 = n410;
  p.nets_over_10 = nover;
  p.paper_sega = sega;
  p.paper_gbp = gbp;
  p.paper_ikmb = ikmb;
  p.paper_pfa = pfa;
  p.paper_idom = idom;
  p.paper_table5_width = t5w;
  return p;
}

}  // namespace

const std::vector<CircuitProfile>& xc3000_profiles() {
  // Table 2: name, FPGA size, #2-3 pin, #4-10 pin, #over-10 pin, CGE width,
  // paper's router width.
  static const std::vector<CircuitProfile> kProfiles{
      xc3000("busc", 12, 13, 115, 28, 8, 10, 7),
      xc3000("dma", 16, 18, 139, 52, 22, 10, 9),
      xc3000("bnre", 21, 22, 255, 70, 27, 12, 9),
      xc3000("dfsm", 22, 23, 361, 26, 33, 10, 9),
      xc3000("z03", 26, 27, 398, 176, 34, 13, 11),
  };
  return kProfiles;
}

const std::vector<CircuitProfile>& xc4000_profiles() {
  // Tables 3/4/5: SEGA, GBP, then the paper's IKMB/PFA/IDOM widths and the
  // common width Table 5 fixes per circuit.
  static const std::vector<CircuitProfile> kProfiles{
      xc4000("alu4", 19, 17, 165, 69, 21, 15, 14, 11, 14, 13, 14),
      xc4000("apex7", 12, 10, 83, 30, 2, 13, 11, 10, 11, 11, 11),
      xc4000("term1", 10, 9, 65, 21, 2, 10, 10, 8, 9, 9, 9),
      xc4000("example2", 14, 12, 171, 25, 9, 17, 13, 11, 13, 13, 13),
      xc4000("too_large", 14, 14, 128, 46, 12, 12, 12, 10, 12, 12, 12),
      xc4000("k2", 22, 20, 241, 146, 17, 17, 17, 15, 17, 17, 17),
      xc4000("vda", 17, 16, 132, 80, 13, 13, 13, 12, 14, 13, 14),
      xc4000("9symml", 11, 10, 60, 11, 8, 10, 9, 8, 9, 8, 9),
      xc4000("alu2", 15, 13, 109, 26, 18, 11, 11, 9, 11, 10, 11),
  };
  return kProfiles;
}

}  // namespace fpr
