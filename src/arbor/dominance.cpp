#include "arbor/dominance.hpp"

namespace fpr {

bool dominates(PathOracle& oracle, NodeId source, NodeId p, NodeId s) {
  const auto& from_source = oracle.from(source);
  if (!from_source.reached(p) || !from_source.reached(s)) return false;
  const Weight sp = oracle.from(p).distance(s);  // d(s, p), undirected
  return weight_eq(from_source.distance(p), from_source.distance(s) + sp);
}

namespace {

/// Shared scan: the farthest-from-source node among `count` candidates
/// produced by a generator, dominated by both p and q.
template <typename NextNode>
NodeId max_dom_scan(PathOracle& oracle, NodeId source, NodeId p, NodeId q, NodeId count,
                    NextNode&& node_of) {
  const auto& from_source = oracle.from(source);
  if (!from_source.reached(p) || !from_source.reached(q)) return kInvalidNode;
  const auto& from_p = oracle.from(p);
  const auto& from_q = oracle.from(q);
  const Weight dp = from_source.distance(p);
  const Weight dq = from_source.distance(q);

  NodeId best = kInvalidNode;
  Weight best_dist = -1;
  for (NodeId i = 0; i < count; ++i) {
    const NodeId v = node_of(i);
    if (v == kInvalidNode || !from_source.reached(v)) continue;
    const Weight dv = from_source.distance(v);
    if (dv <= best_dist) continue;  // cannot beat the incumbent
    if (weight_eq(dp, dv + from_p.distance(v)) && weight_eq(dq, dv + from_q.distance(v))) {
      best = v;
      best_dist = dv;
    }
  }
  return best;
}

}  // namespace

NodeId max_dom(const Graph& g, PathOracle& oracle, NodeId source, NodeId p, NodeId q) {
  return max_dom_scan(oracle, source, p, q, g.node_count(),
                      [&](NodeId i) { return g.node_active(i) ? i : kInvalidNode; });
}

NodeId max_dom_within(PathOracle& oracle, NodeId source, NodeId p, NodeId q,
                      std::span<const NodeId> candidates) {
  return max_dom_scan(oracle, source, p, q, static_cast<NodeId>(candidates.size()),
                      [&](NodeId i) { return candidates[static_cast<std::size_t>(i)]; });
}

}  // namespace fpr
