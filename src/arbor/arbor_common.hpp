#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// Shortest-paths tree over a subgraph given as an edge set (sparse maps:
/// only nodes touched by the edges appear).
struct SubgraphSpt {
  std::unordered_map<NodeId, Weight> dist;
  std::unordered_map<NodeId, EdgeId> parent_edge;
  std::unordered_map<NodeId, NodeId> parent;

  bool reached(NodeId v) const { return dist.count(v) > 0; }
};

/// Dijkstra restricted to the given edge subset of g.
SubgraphSpt dijkstra_on_edges(const Graph& g, NodeId source, std::span<const EdgeId> edges);

/// Shared tail of every arborescence construction in this library
/// (DJKA / DOM / PFA / IDOM): given a set of union edges that is supposed to
/// contain a shortest source->sink path for every sink, build the final
/// shortest-paths tree.
///
/// Runs Dijkstra restricted to the union subgraph; if any sink ends up
/// unreached or at a distance worse than the true graph distance (possible
/// only in degenerate zero-weight-cycle unions), the true shortest path is
/// spliced in and the SPT recomputed. The result is the union of the
/// subgraph-SPT paths to the sinks — a tree in which every source-sink path
/// length equals minpath_G (the GSA feasibility condition), or a
/// non-spanning tree when some sink is unreachable in G itself.
RoutingTree arborescence_from_union(const Graph& g, NodeId source, std::span<const NodeId> sinks,
                                    std::vector<EdgeId> union_edges, PathOracle& oracle);

/// Deduped terminal list with `source` guaranteed first; the remaining
/// entries are the distinct sinks.
std::vector<NodeId> canonical_terminals(NodeId source, std::span<const NodeId> net);

}  // namespace fpr
