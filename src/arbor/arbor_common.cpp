#include "arbor/arbor_common.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace fpr {

SubgraphSpt dijkstra_on_edges(const Graph& g, NodeId source, std::span<const EdgeId> edges) {
  std::unordered_map<NodeId, std::vector<EdgeId>> adj;
  for (const EdgeId e : edges) {
    const auto& ed = g.edge(e);
    adj[ed.u].push_back(e);
    adj[ed.v].push_back(e);
  }

  SubgraphSpt spt;
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  spt.dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    const auto du = spt.dist.find(u);
    if (du == spt.dist.end() || d > du->second) continue;
    const auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (const EdgeId e : it->second) {
      const NodeId v = g.other_end(e, u);
      const Weight nd = d + g.edge_weight(e);
      const auto dv = spt.dist.find(v);
      if (dv == spt.dist.end() || nd < dv->second) {
        spt.dist[v] = nd;
        spt.parent[v] = u;
        spt.parent_edge[v] = e;
        heap.emplace(nd, v);
      }
    }
  }
  return spt;
}

std::vector<NodeId> canonical_terminals(NodeId source, std::span<const NodeId> net) {
  std::vector<NodeId> sinks;
  sinks.reserve(net.size());
  for (const NodeId v : net) {
    if (v != source) sinks.push_back(v);
  }
  std::sort(sinks.begin(), sinks.end());
  sinks.erase(std::unique(sinks.begin(), sinks.end()), sinks.end());
  std::vector<NodeId> terminals{source};
  terminals.insert(terminals.end(), sinks.begin(), sinks.end());
  return terminals;
}

RoutingTree arborescence_from_union(const Graph& g, NodeId source, std::span<const NodeId> sinks,
                                    std::vector<EdgeId> union_edges, PathOracle& oracle) {
  const auto& truth = oracle.from(source);

  SubgraphSpt spt = dijkstra_on_edges(g, source, union_edges);
  bool patched = false;
  for (const NodeId s : sinks) {
    if (!truth.reached(s)) continue;  // unreachable in G itself: nothing to do
    const auto it = spt.dist.find(s);
    if (it == spt.dist.end() || weight_lt(truth.distance(s), it->second)) {
      // Degenerate union (see header): splice in a true shortest path.
      const auto fix = truth.path_edges_to(s);
      union_edges.insert(union_edges.end(), fix.begin(), fix.end());
      patched = true;
    }
  }
  if (patched) spt = dijkstra_on_edges(g, source, union_edges);

  std::vector<EdgeId> tree_edges;
  for (const NodeId s : sinks) {
    if (spt.dist.find(s) == spt.dist.end()) continue;  // genuinely unreachable
    NodeId v = s;
    while (v != source) {
      tree_edges.push_back(spt.parent_edge.at(v));
      v = spt.parent.at(v);
    }
  }
  return RoutingTree(g, std::move(tree_edges));
}

}  // namespace fpr
