#include "arbor/idom.hpp"

#include <vector>

#include "arbor/arbor_common.hpp"
#include "arbor/dom.hpp"

namespace fpr {

RoutingTree idom(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                 const IdomOptions& options) {
  if (net.empty()) return RoutingTree(g, {});
  const std::vector<NodeId> terminals = canonical_terminals(net[0], net);

  RoutingTree best = dom(g, terminals, oracle);
  if (!best.spans(terminals)) return best;
  Weight best_cost = best.cost();

  std::vector<NodeId> span_set = terminals;  // N + S, source kept first
  int iterations = 0;
  while (options.max_iterations == 0 || iterations < options.max_iterations) {
    ++iterations;
    // Pre-warm terminal trees so candidate evaluations are cache-served
    // (see the matching comment in igmst.cpp).
    for (const NodeId v : span_set) oracle.from(v);
    const std::vector<NodeId> candidates =
        steiner_candidates(g, span_set, oracle, options.candidates, options.max_candidates);

    NodeId best_t = kInvalidNode;
    Weight best_t_cost = best_cost;
    RoutingTree best_t_tree(g, {});
    std::vector<NodeId> trial = span_set;
    trial.push_back(kInvalidNode);  // slot for the candidate under test
    for (const NodeId t : candidates) {
      trial.back() = t;
      RoutingTree tree = dom(g, trial, oracle);
      if (!tree.spans(terminals)) continue;
      const Weight c = tree.cost();
      if (weight_lt(c, best_t_cost)) {
        best_t_cost = c;
        best_t = t;
        best_t_tree = std::move(tree);
      }
    }
    if (best_t == kInvalidNode) break;
    span_set.push_back(best_t);
    best = std::move(best_t_tree);
    best_cost = best_t_cost;
  }

  // Branches that end at adopted Steiner nodes are pure overhead once the
  // real sinks are spanned; trimming them never disturbs the sinks' paths.
  best.prune_leaves(terminals);
  return best;
}

RoutingTree idom(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return idom(g, net, oracle);
}

}  // namespace fpr
