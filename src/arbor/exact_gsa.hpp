#pragma once

#include <optional>
#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// Exact Graph Steiner Arborescence solver for small nets.
///
/// Every feasible GSA solution uses only "tight" edges — edges (u, v) with
/// d(n0, v) = d(n0, u) + w(u, v) — because every tree edge lies on some
/// source-to-sink path that must be shortest. The problem therefore reduces
/// to a minimum directed Steiner tree rooted at the source on the tight-edge
/// DAG, solved here by the subset dynamic program (O(3^k V + 2^k E log V)).
///
/// Used as the wirelength-optimality reference for PFA/IDOM in the tests and
/// the Figure 4 / 10 / 11 experiments. Returns nullopt when the net has more
/// than `max_terminals` distinct pins or some sink is unreachable.
///
/// net[0] is the source; the remaining entries are sinks.
std::optional<RoutingTree> exact_gsa(const Graph& g, std::span<const NodeId> net,
                                     PathOracle& oracle, int max_terminals = 14);

std::optional<RoutingTree> exact_gsa(const Graph& g, std::span<const NodeId> net,
                                     int max_terminals = 14);

}  // namespace fpr
