#pragma once

#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// The DOM spanning-arborescence heuristic (Section 4.2): the PFA heuristic
/// restricted so that merge points come from the net itself. Each sink is
/// connected by a shortest path to the closest source/sink that it
/// dominates, and the final tree is the shortest-paths tree over the union
/// of those paths. Every source-sink path in the result has optimal length.
///
/// net[0] is the source; the remaining entries are sinks.
RoutingTree dom(const Graph& g, std::span<const NodeId> net, PathOracle& oracle);

RoutingTree dom(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
