#include "arbor/pfa.hpp"

#include <algorithm>
#include <vector>

#include "arbor/arbor_common.hpp"
#include "arbor/dominance.hpp"
#include "core/contract.hpp"

namespace fpr {

RoutingTree pfa(const Graph& g, std::span<const NodeId> net, PathOracle& oracle) {
  if (net.empty()) return RoutingTree(g, {});
  const std::vector<NodeId> terminals = canonical_terminals(net[0], net);
  const NodeId source = terminals[0];
  const auto& from_source = oracle.from(source);

  // Unreachable sinks cannot participate in folding; they are simply not
  // spanned (callers detect this via RoutingTree::spans()).
  std::vector<NodeId> active;
  for (const NodeId t : terminals) {
    if (from_source.reached(t)) active.push_back(t);
  }

  struct Merge {
    NodeId meet, p, q;
  };
  std::vector<Merge> merges;
  merges.reserve(active.size());

  // Fold until one representative remains. Each iteration removes one node,
  // and any pair involving the source merges into the source itself, so
  // progress is guaranteed.
  while (active.size() > 1) {
    NodeId best_m = kInvalidNode;
    Weight best_dist = -1;
    std::size_t best_i = 0, best_j = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const NodeId m = max_dom(g, oracle, source, active[i], active[j]);
        if (m == kInvalidNode) continue;
        const Weight dm = from_source.distance(m);
        if (dm > best_dist || (dm == best_dist && m < best_m)) {
          best_dist = dm;
          best_m = m;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_m == kInvalidNode && oracle.budget_exhausted()) {
      // A truncated SSSP (the oracle's work budget ran out mid-fold) can
      // leave a reachable pair without a common settled dominator. Stop
      // folding: the assembly below ships what was merged so far, the
      // result does not span, and the caller classifies kAbortedBudget.
      break;
    }
    FPR_CHECK(best_m != kInvalidNode,
              "PFA merge selection found no meeting node — reachable nodes always share the "
              "source as a MaxDom");
    merges.push_back(Merge{best_m, active[best_i], active[best_j]});
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_j));
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_i));
    active.push_back(best_m);
  }

  // RSA-style assembly [32]: connect every MaxDom meeting point to the pair
  // it replaced, by shortest paths. Each connected node sits "above" its
  // meet (the meet is dominated by both pair members), so path costs
  // telescope and every source-sink distance stays shortest. The merge
  // hierarchy bottoms out at the source, so the union is connected by
  // construction.
  std::vector<EdgeId> union_edges;
  for (const auto& merge : merges) {
    for (const NodeId endpoint : {merge.p, merge.q}) {
      if (endpoint == merge.meet) continue;
      const auto path = oracle.path_between(merge.meet, endpoint);
      union_edges.insert(union_edges.end(), path.begin(), path.end());
    }
  }
  if (!active.empty() && active.front() != source) {
    // Lone representative left over (happens only when the source was
    // unreachable-degenerate); tie it to the source directly.
    const auto path = oracle.path_between(source, active.front());
    union_edges.insert(union_edges.end(), path.begin(), path.end());
  }

  return arborescence_from_union(g, source, std::span(terminals).subspan(1),
                                 std::move(union_edges), oracle);
}

RoutingTree pfa(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return pfa(g, net, oracle);
}

}  // namespace fpr
