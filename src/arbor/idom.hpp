#pragma once

#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"
#include "steiner/candidates.hpp"

namespace fpr {

struct IdomOptions {
  CandidateStrategy candidates = CandidateStrategy::kAllNodes;
  int max_candidates = 0;  // 0 = unlimited
  int max_iterations = 0;  // 0 = run until no candidate improves
};

/// The Iterated Dominance heuristic (Section 4.2, Figure 12) — the paper's
/// second GSA contribution.
///
/// Greedily grows a Steiner set S: at each step adopt the node t maximizing
/// DeltaDOM(G, N, S + {t}) = cost(DOM(G, N + S)) - cost(DOM(G, N + S + {t}))
/// while positive, then return DOM(G, N + S). Candidate nodes are treated as
/// extra sinks inside DOM, so the result keeps optimal source-sink
/// pathlengths for the real sinks; cost(IDOM) <= cost(DOM) on every input.
///
/// The paper conjectures an O(log N) performance ratio; Figure 14's
/// Set-Cover gadget (see workload/worstcase.hpp) realizes the matching
/// lower bound.
///
/// net[0] is the source; the remaining entries are sinks.
RoutingTree idom(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                 const IdomOptions& options = {});

RoutingTree idom(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
