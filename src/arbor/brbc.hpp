#pragma once

#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// The Bounded-Radius Bounded-Cost construction of Cong, Kahng, Robins,
/// Sarrafzadeh and Wong [14] — the prior radius/wirelength tradeoff method
/// the paper positions PFA/IDOM against (Section 2): "with the tradeoff
/// parameter tuned completely towards pathlength minimization, [BRBC]
/// produces the same shortest-paths tree as would Dijkstra's algorithm",
/// i.e. it cannot deliver a shortest-paths tree *with minimized wirelength*.
///
/// Graph Steiner variant: start from the KMB tree, walk its depth-first
/// tour from the source accumulating traversed length, and whenever the
/// accumulation exceeds epsilon * d_G(source, v) at a tour node v, splice
/// the true shortest source-v path into the subgraph and reset. The result
/// is the shortest-paths tree over the augmented subgraph, restricted to
/// source-sink paths.
///
/// Guarantees: pathlength to every sink <= (1 + epsilon) * d_G(source,
/// sink); cost <= (1 + 2/epsilon) * cost(KMB tree). epsilon = 0 forces
/// optimal pathlengths (an SPT, generally costlier than PFA/IDOM);
/// epsilon -> infinity returns the KMB tree restricted to source-sink
/// paths.
///
/// net[0] is the source; the remaining entries are sinks.
RoutingTree brbc(const Graph& g, std::span<const NodeId> net, double epsilon,
                 PathOracle& oracle);

RoutingTree brbc(const Graph& g, std::span<const NodeId> net, double epsilon);

}  // namespace fpr
