#include "arbor/djka.hpp"

#include "arbor/arbor_common.hpp"

namespace fpr {

RoutingTree djka(const Graph& g, std::span<const NodeId> net, PathOracle& oracle) {
  if (net.empty()) return RoutingTree(g, {});
  const std::vector<NodeId> terminals = canonical_terminals(net[0], net);
  const NodeId source = terminals[0];
  const auto& spt = oracle.from(source);

  std::vector<EdgeId> edges;
  for (std::size_t i = 1; i < terminals.size(); ++i) {
    if (!spt.reached(terminals[i])) continue;
    const auto path = spt.path_edges_to(terminals[i]);
    edges.insert(edges.end(), path.begin(), path.end());
  }
  // Paths within one SPT can only share prefixes, so the union is already a
  // tree whose leaves are sinks; RoutingTree dedupes the shared prefixes.
  return RoutingTree(g, std::move(edges));
}

RoutingTree djka(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return djka(g, net, oracle);
}

}  // namespace fpr
