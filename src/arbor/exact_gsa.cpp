#include "arbor/exact_gsa.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "arbor/arbor_common.hpp"
#include "core/contract.hpp"

namespace fpr {

namespace {

struct Choice {
  enum class Kind : std::uint8_t { kNone, kLeaf, kMerge, kEdge };
  Kind kind = Kind::kNone;
  std::uint32_t sub = 0;       // kMerge: one side of the split
  NodeId child = kInvalidNode;  // kEdge: tree hangs below this neighbor
  EdgeId edge = kInvalidEdge;   // kEdge
};

/// Directed tight edge u -> v (the tree grows away from the source).
struct TightEdge {
  NodeId v;
  EdgeId id;
  Weight w;
};

}  // namespace

std::optional<RoutingTree> exact_gsa(const Graph& g, std::span<const NodeId> net,
                                     PathOracle& oracle, int max_terminals) {
  if (net.empty()) return RoutingTree(g, {});
  const std::vector<NodeId> terminals = canonical_terminals(net[0], net);
  const NodeId source = terminals[0];
  const int k = static_cast<int>(terminals.size()) - 1;  // sinks only
  if (k > max_terminals) return std::nullopt;
  if (k == 0) return RoutingTree(g, {});

  const auto& dist = oracle.from(source);
  for (const NodeId t : terminals) {
    if (!dist.reached(t)) return std::nullopt;
  }

  // Tight-edge adjacency, indexed by the parent endpoint u: edge u -> v is
  // usable by an arborescence iff d(v) = d(u) + w.
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<TightEdge>> out(n);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!g.edge_usable(e)) continue;
    const auto& ed = g.edge(e);
    if (!dist.reached(ed.u) || !dist.reached(ed.v)) continue;
    const Weight w = ed.weight;
    if (weight_eq(dist.distance(ed.v), dist.distance(ed.u) + w)) {
      out[static_cast<std::size_t>(ed.u)].push_back(TightEdge{ed.v, e, w});
    }
    if (weight_eq(dist.distance(ed.u), dist.distance(ed.v) + w)) {
      out[static_cast<std::size_t>(ed.v)].push_back(TightEdge{ed.u, e, w});
    }
  }
  // Reverse adjacency for the relaxation dp[mask][u] <- dp[mask][v] + w(u->v).
  std::vector<std::vector<TightEdge>> in(n);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const auto& te : out[static_cast<std::size_t>(u)]) {
      in[static_cast<std::size_t>(te.v)].push_back(TightEdge{u, te.id, te.w});
    }
  }

  const std::uint32_t full = (1u << k) - 1;
  std::vector<std::vector<Weight>> dp(full + 1, std::vector<Weight>(n, kInfiniteWeight));
  std::vector<std::vector<Choice>> choice(full + 1, std::vector<Choice>(n));
  for (int i = 0; i < k; ++i) {
    const auto s = static_cast<std::size_t>(terminals[static_cast<std::size_t>(i) + 1]);
    dp[1u << i][s] = 0;
    choice[1u << i][s].kind = Choice::Kind::kLeaf;
  }

  using Entry = std::pair<Weight, NodeId>;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    auto& row = dp[mask];
    auto& ch = choice[mask];
    for (std::uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      const std::uint32_t rest = mask ^ sub;
      if (sub > rest) continue;
      const auto& a = dp[sub];
      const auto& b = dp[rest];
      for (std::size_t v = 0; v < n; ++v) {
        const Weight c = a[v] + b[v];
        if (c < row[v]) {
          row[v] = c;
          ch[v] = Choice{Choice::Kind::kMerge, sub, kInvalidNode, kInvalidEdge};
        }
      }
    }
    // Grow the rooted tree upward (toward the source) along tight edges.
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (std::size_t v = 0; v < n; ++v) {
      if (row[v] < kInfiniteWeight) heap.emplace(row[v], static_cast<NodeId>(v));
    }
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > row[static_cast<std::size_t>(v)]) continue;
      for (const auto& te : in[static_cast<std::size_t>(v)]) {
        const Weight nd = d + te.w;
        auto& du = row[static_cast<std::size_t>(te.v)];
        if (nd < du) {
          du = nd;
          choice[mask][static_cast<std::size_t>(te.v)] =
              Choice{Choice::Kind::kEdge, 0, v, te.id};
          heap.emplace(nd, te.v);
        }
      }
    }
  }

  if (dp[full][static_cast<std::size_t>(source)] >= kInfiniteWeight) return std::nullopt;

  std::vector<EdgeId> edges;
  std::vector<std::pair<std::uint32_t, NodeId>> stack{{full, source}};
  while (!stack.empty()) {
    const auto [mask, v] = stack.back();
    stack.pop_back();
    const Choice& c = choice[mask][static_cast<std::size_t>(v)];
    switch (c.kind) {
      case Choice::Kind::kLeaf:
        break;
      case Choice::Kind::kMerge:
        stack.emplace_back(c.sub, v);
        stack.emplace_back(mask ^ c.sub, v);
        break;
      case Choice::Kind::kEdge:
        edges.push_back(c.edge);
        stack.emplace_back(mask, c.child);
        break;
      case Choice::Kind::kNone:
        FPR_CHECK(false, "exact GSA reconstruction reached an unset dp cell (mask " << mask
                             << ", node " << v << ")");
        break;
    }
  }
  return RoutingTree(g, std::move(edges));
}

std::optional<RoutingTree> exact_gsa(const Graph& g, std::span<const NodeId> net,
                                     int max_terminals) {
  PathOracle oracle(g);
  return exact_gsa(g, net, oracle, max_terminals);
}

}  // namespace fpr
