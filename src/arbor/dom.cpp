#include "arbor/dom.hpp"

#include <vector>

#include "arbor/arbor_common.hpp"

namespace fpr {

RoutingTree dom(const Graph& g, std::span<const NodeId> net, PathOracle& oracle) {
  if (net.empty()) return RoutingTree(g, {});
  const std::vector<NodeId> terminals = canonical_terminals(net[0], net);
  const NodeId source = terminals[0];
  const auto& from_source = oracle.from(source);

  std::vector<EdgeId> union_edges;
  for (std::size_t i = 1; i < terminals.size(); ++i) {
    const NodeId s = terminals[i];
    if (!from_source.reached(s)) continue;
    const Weight ds = from_source.distance(s);

    // The closest terminal that s dominates, i.e. a u with
    // d(n0, s) = d(n0, u) + d(u, s) minimizing d(u, s). The source itself
    // always qualifies (at d(n0, s)), so `best` is always found. Ties prefer
    // the u nearer the source, which avoids zero-length mutual-domination
    // cycles when the graph has zero-weight edges.
    NodeId best = kInvalidNode;
    Weight best_gap = kInfiniteWeight;
    Weight best_du = kInfiniteWeight;
    for (const NodeId u : terminals) {
      if (u == s || !from_source.reached(u)) continue;
      const Weight du = from_source.distance(u);
      const Weight gap = oracle.distance(u, s);
      if (!weight_eq(ds, du + gap)) continue;  // s does not dominate u
      if (weight_lt(gap, best_gap) || (weight_eq(gap, best_gap) && weight_lt(du, best_du))) {
        best = u;
        best_gap = gap;
        best_du = du;
      }
    }
    const auto path = oracle.path_between(best, s);
    union_edges.insert(union_edges.end(), path.begin(), path.end());
  }

  return arborescence_from_union(g, source, std::span(terminals).subspan(1),
                                 std::move(union_edges), oracle);
}

RoutingTree dom(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return dom(g, net, oracle);
}

}  // namespace fpr
