#include "arbor/brbc.hpp"

#include <unordered_map>
#include <vector>

#include "arbor/arbor_common.hpp"
#include "steiner/kmb.hpp"

namespace fpr {

RoutingTree brbc(const Graph& g, std::span<const NodeId> net, double epsilon,
                 PathOracle& oracle) {
  if (net.empty()) return RoutingTree(g, {});
  const std::vector<NodeId> terminals = canonical_terminals(net[0], net);
  const NodeId source = terminals[0];

  RoutingTree base = kmb(g, terminals, oracle);
  if (!base.spans(terminals)) return base;
  if (base.empty()) return base;

  const auto& truth = oracle.from(source);

  // Adjacency of the base tree for the depth-first tour.
  std::unordered_map<NodeId, std::vector<std::pair<EdgeId, NodeId>>> adj;
  for (const EdgeId e : base.edges()) {
    const auto& ed = g.edge(e);
    adj[ed.u].emplace_back(e, ed.v);
    adj[ed.v].emplace_back(e, ed.u);
  }

  // Iterative DFS tour from the source: every tree edge is traversed twice
  // (down and back up). `reach` is a running upper bound on the current
  // subgraph's source distance to the tour position (distance of the last
  // splice point plus tour length walked since); whenever it would exceed
  // (1 + epsilon) * d_G(source, v) at a node v, the true shortest
  // source-v path is spliced in, which resets the bound to d_G(source, v).
  // Every node therefore ends with subgraph distance <= (1 + epsilon) *
  // optimal by construction.
  std::vector<EdgeId> union_edges = base.edges();
  Weight reach = 0;
  std::unordered_map<NodeId, std::size_t> next_child;
  std::vector<NodeId> stack{source};
  std::unordered_map<NodeId, NodeId> dfs_parent{{source, kInvalidNode}};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    auto& cursor = next_child[v];
    const auto& children = adj[v];
    if (cursor >= children.size()) {
      stack.pop_back();
      if (!stack.empty()) {
        // Walk back up to the parent.
        for (const auto& [e, u] : children) {
          if (u == stack.back()) {
            reach += g.edge_weight(e);
            break;
          }
        }
      }
      continue;
    }
    const auto [e, u] = children[cursor++];
    if (dfs_parent.count(u) > 0) continue;  // already visited (the parent)
    dfs_parent[u] = v;
    reach += g.edge_weight(e);
    stack.push_back(u);
    if (truth.reached(u) && reach > (1.0 + epsilon) * truth.distance(u)) {
      const auto shortcut = truth.path_edges_to(u);
      union_edges.insert(union_edges.end(), shortcut.begin(), shortcut.end());
      reach = truth.distance(u);
    }
  }

  // Shortest-paths tree over the augmented subgraph, restricted to
  // source-sink paths. Unlike the arborescence constructions, NO optimality
  // patching: the whole point of epsilon > 0 is to allow bounded slack.
  const SubgraphSpt spt = dijkstra_on_edges(g, source, union_edges);
  std::vector<EdgeId> tree_edges;
  for (std::size_t i = 1; i < terminals.size(); ++i) {
    NodeId v = terminals[i];
    if (!spt.reached(v)) continue;
    while (v != source) {
      tree_edges.push_back(spt.parent_edge.at(v));
      v = spt.parent.at(v);
    }
  }
  return RoutingTree(g, std::move(tree_edges));
}

RoutingTree brbc(const Graph& g, std::span<const NodeId> net, double epsilon) {
  PathOracle oracle(g);
  return brbc(g, net, epsilon, oracle);
}

}  // namespace fpr
