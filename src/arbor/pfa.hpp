#pragma once

#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// The Path-Folding Arborescence heuristic (Section 4.1, Figure 9) — the
/// graph generalization of the RSA construction of Rao et al. [32].
///
/// Maintains an active set initialized to the net; repeatedly picks the pair
/// {p, q} whose MaxDom(p, q) lies farthest from the source and replaces the
/// pair with that merge point. The final tree connects every meeting point
/// to the pair it replaced by shortest paths (the RSA assembly rule, which
/// keeps the union connected even with zero-weight edges) and extracts the
/// shortest-paths tree of the union, so every source-sink pathlength is
/// optimal while folded paths share wire.
///
/// Worst cases: Theta(|N|) x optimal on arbitrary weighted graphs (Fig. 10)
/// and 2x optimal on grids (Fig. 11); both are exercised in the tests and
/// the fig10_11_14 bench.
///
/// net[0] is the source; the remaining entries are sinks.
RoutingTree pfa(const Graph& g, std::span<const NodeId> net, PathOracle& oracle);

RoutingTree pfa(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
