#pragma once

#include <span>

#include "graph/path_oracle.hpp"

namespace fpr {

/// Definition 4.1: p dominates s (w.r.t. source n0) iff
///   minpath(n0, p) = minpath(n0, s) + minpath(s, p),
/// i.e. some shortest path from the source to p passes through s.
///
/// Implementation detail: the test reads d(s, p) from p's SSSP tree (the
/// graph is undirected), so callers only ever need Dijkstra runs from the
/// source and from p — never from arbitrary probe nodes s.
bool dominates(PathOracle& oracle, NodeId source, NodeId p, NodeId s);

/// MaxDom(p, q): among all active graph nodes dominated by both p and q,
/// the one farthest from the source (maximal minpath(n0, v)); ties broken
/// by smaller node id. Always well-defined when p and q are reachable
/// (the source dominates itself and is dominated by everything reachable);
/// returns kInvalidNode if p or q is unreachable from the source.
NodeId max_dom(const Graph& g, PathOracle& oracle, NodeId source, NodeId p, NodeId q);

/// MaxDom restricted to a candidate node set (the DOM heuristic constrains
/// MaxDom to the net N rather than all of V).
NodeId max_dom_within(PathOracle& oracle, NodeId source, NodeId p, NodeId q,
                      std::span<const NodeId> candidates);

}  // namespace fpr
