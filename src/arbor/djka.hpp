#pragma once

#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// DJKA (Section 5): Dijkstra's shortest-paths tree algorithm adapted to the
/// GSA problem — compute the SPT rooted at the source, then delete every
/// edge not contained in some source-to-sink path. The simplest
/// arborescence baseline: optimal pathlengths, no wirelength sharing beyond
/// what the SPT happens to provide.
///
/// net[0] is the source; the remaining entries are sinks.
RoutingTree djka(const Graph& g, std::span<const NodeId> net, PathOracle& oracle);

RoutingTree djka(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
