#include "steiner/zelikovsky.hpp"

#include <algorithm>
#include <vector>

#include "graph/distance_graph.hpp"
#include "steiner/kmb.hpp"

namespace fpr {

namespace {

struct Triple {
  int a, b, c;        // terminal indices in the distance graph
  NodeId meeting;     // v_z: the node minimizing the summed distances
  Weight dist_sum;    // dist_z
};

/// The 1-median of a terminal triple over all active graph nodes.
/// Deterministic: smallest node id wins ties.
std::pair<NodeId, Weight> triple_median(const Graph& g, PathOracle& oracle, NodeId ta, NodeId tb,
                                        NodeId tc) {
  const auto& da = oracle.from(ta);
  const auto& db = oracle.from(tb);
  const auto& dc = oracle.from(tc);
  NodeId best = kInvalidNode;
  Weight best_sum = kInfiniteWeight;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!g.node_active(v)) continue;
    const Weight sum = da.distance(v) + db.distance(v) + dc.distance(v);
    if (sum < best_sum) {
      best_sum = sum;
      best = v;
    }
  }
  return {best, best_sum};
}

}  // namespace

RoutingTree zelikovsky(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                       ZelMemo* memo) {
  if (memo != nullptr && memo->revision != g.revision()) {
    memo->medians.clear();
    memo->revision = g.revision();
  }
  std::vector<NodeId> terminals(net.begin(), net.end());
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()), terminals.end());
  if (terminals.size() < 3) return kmb(g, terminals, oracle);

  DistanceGraph dg(terminals, oracle);
  if (!dg.connected()) return RoutingTree(g, {});
  const int k = dg.size();

  std::vector<Triple> triples;
  triples.reserve(static_cast<std::size_t>(k) * k * k / 6);
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      for (int c = b + 1; c < k; ++c) {
        std::pair<NodeId, Weight> median;
        if (memo != nullptr) {
          const std::array<NodeId, 3> key{dg.terminal(a), dg.terminal(b), dg.terminal(c)};
          auto [it, fresh] = memo->medians.try_emplace(key);
          if (fresh) {
            it->second = triple_median(g, oracle, key[0], key[1], key[2]);
          }
          median = it->second;
        } else {
          median = triple_median(g, oracle, dg.terminal(a), dg.terminal(b), dg.terminal(c));
        }
        if (median.first != kInvalidNode) {
          triples.push_back(Triple{a, b, c, median.first, median.second});
        }
      }
    }
  }

  std::vector<NodeId> steiner_nodes;
  while (true) {
    const Weight base = dg.prim_mst().cost;
    Weight best_win = 0;
    const Triple* best = nullptr;
    for (const auto& z : triples) {
      // Contract G' around z: zero two of the triple's three edges.
      DistanceGraph contracted = dg;
      contracted.set_weight(z.a, z.b, 0);
      contracted.set_weight(z.b, z.c, 0);
      const Weight win = base - contracted.prim_mst().cost - z.dist_sum;
      if (win > best_win + kWeightTolerance) {
        best_win = win;
        best = &z;
      }
    }
    if (best == nullptr) break;
    dg.set_weight(best->a, best->b, 0);
    dg.set_weight(best->b, best->c, 0);
    steiner_nodes.push_back(best->meeting);
  }

  std::vector<NodeId> span_set = terminals;
  span_set.insert(span_set.end(), steiner_nodes.begin(), steiner_nodes.end());
  RoutingTree tree = kmb(g, span_set, oracle);
  tree.prune_leaves(terminals);
  return tree;
}

RoutingTree zelikovsky(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return zelikovsky(g, net, oracle);
}

}  // namespace fpr
