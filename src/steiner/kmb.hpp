#pragma once

#include <atomic>
#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

namespace testhooks {
/// Test-only fault injection for the fuzz harness's mutation smoke test
/// (tests/check/mutation_smoke_test.cpp): when set, KMB picks the MAXIMUM
/// spanning tree of the distance graph instead of the minimum. The result
/// is still a valid spanning tree of the net — it passes every structural
/// oracle — but its cost blows through the 2*OPT bound, which is exactly
/// what the approximation-bound oracle must detect. Never set outside tests.
/// Atomic (not FPR_GUARDED_BY a mutex) because parallel-sweep workers read
/// it concurrently with the test writer; relaxed ordering suffices since the
/// flag carries no associated data.
extern std::atomic<bool> kmb_invert_mst_selection;
}  // namespace testhooks

/// The graph Steiner tree heuristic of Kou, Markowsky and Berman [26]
/// (paper Appendix 8.1). Performance ratio 2*(1 - 1/L), L = max leaves in
/// any optimal solution.
///
/// Steps: (1) build the complete distance graph over the net, (2) MST it and
/// expand each MST edge into the corresponding shortest path, (3) MST the
/// resulting subgraph, (4) prune pendant non-terminal leaves.
///
/// If the terminals are not mutually connected in the usable part of the
/// graph, the returned tree does not span the net (callers check spans()).
RoutingTree kmb(const Graph& g, std::span<const NodeId> net, PathOracle& oracle);

/// Convenience overload with a private oracle.
RoutingTree kmb(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
