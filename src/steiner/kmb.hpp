#pragma once

#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// The graph Steiner tree heuristic of Kou, Markowsky and Berman [26]
/// (paper Appendix 8.1). Performance ratio 2*(1 - 1/L), L = max leaves in
/// any optimal solution.
///
/// Steps: (1) build the complete distance graph over the net, (2) MST it and
/// expand each MST edge into the corresponding shortest path, (3) MST the
/// resulting subgraph, (4) prune pendant non-terminal leaves.
///
/// If the terminals are not mutually connected in the usable part of the
/// graph, the returned tree does not span the net (callers check spans()).
RoutingTree kmb(const Graph& g, std::span<const NodeId> net, PathOracle& oracle);

/// Convenience overload with a private oracle.
RoutingTree kmb(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
