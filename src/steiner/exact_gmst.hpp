#pragma once

#include <optional>
#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// Exact graph minimal Steiner tree via the Dreyfus-Wagner / Erickson subset
/// dynamic program: dp[mask][v] = cheapest tree containing v and every
/// terminal in mask, with subset merges plus a Dijkstra relaxation per mask.
/// O(3^k V + 2^k E log V) time, O(2^k V) space.
///
/// Used as the optimality reference the paper normalizes against (Table 1's
/// "OPT" pathlength column is handled separately; this solver validates the
/// 2x / 11/6 approximation bounds of KMB/ZEL/IKMB/IZEL in the tests and
/// labels the optimal Steiner trees in the Figure 4 experiment).
///
/// Returns nullopt when the net has more than `max_terminals` distinct pins
/// or is not connected in the usable part of the graph.
std::optional<RoutingTree> exact_gmst(const Graph& g, std::span<const NodeId> net,
                                      PathOracle& oracle, int max_terminals = 14);

std::optional<RoutingTree> exact_gmst(const Graph& g, std::span<const NodeId> net,
                                      int max_terminals = 14);

}  // namespace fpr
