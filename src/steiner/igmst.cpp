#include "steiner/igmst.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "steiner/kmb.hpp"
#include "steiner/zelikovsky.hpp"

namespace fpr {

namespace {

/// One sequential round: adopt the single best candidate (Fig. 5's loop
/// body). Returns true if a candidate was adopted.
bool adopt_best_candidate(const Graph& g, const std::vector<NodeId>& terminals,
                          const GmstHeuristic& heuristic, PathOracle& oracle,
                          std::span<const NodeId> candidates, std::vector<NodeId>& span_set,
                          RoutingTree& best, Weight& best_cost) {
  NodeId best_t = kInvalidNode;
  Weight best_t_cost = best_cost;
  RoutingTree best_t_tree(g, {});
  std::vector<NodeId> trial = span_set;
  trial.push_back(kInvalidNode);  // slot for the candidate under test
  for (const NodeId t : candidates) {
    trial.back() = t;
    RoutingTree tree = heuristic(g, trial, oracle);
    if (!tree.spans(terminals)) continue;
    const Weight c = tree.cost();
    if (weight_lt(c, best_t_cost)) {
      best_t_cost = c;
      best_t = t;
      best_t_tree = std::move(tree);
    }
  }
  if (best_t == kInvalidNode) return false;
  span_set.push_back(best_t);
  best = std::move(best_t_tree);
  best_cost = best_t_cost;
  return true;
}

/// One batched round: score every candidate once against the current
/// solution, then sweep them in decreasing-savings order, adopting each iff
/// a single re-evaluation confirms it still improves on the batch so far.
/// Returns true if any candidate was adopted.
bool adopt_candidate_batch(const Graph& g, const std::vector<NodeId>& terminals,
                           const GmstHeuristic& heuristic, PathOracle& oracle,
                           std::span<const NodeId> candidates, std::vector<NodeId>& span_set,
                           RoutingTree& best, Weight& best_cost) {
  struct Scored {
    NodeId node;
    Weight cost;
  };
  std::vector<Scored> scored;
  std::vector<NodeId> trial = span_set;
  trial.push_back(kInvalidNode);
  for (const NodeId t : candidates) {
    trial.back() = t;
    const RoutingTree tree = heuristic(g, trial, oracle);
    if (!tree.spans(terminals)) continue;
    const Weight c = tree.cost();
    if (weight_lt(c, best_cost)) scored.push_back(Scored{t, c});
  }
  if (scored.empty()) return false;
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) { return a.cost < b.cost; });

  bool adopted_any = false;
  for (const auto& [t, unused_score] : scored) {
    (void)unused_score;
    std::vector<NodeId> with_t = span_set;
    with_t.push_back(t);
    RoutingTree tree = heuristic(g, with_t, oracle);
    if (!tree.spans(terminals)) continue;
    const Weight c = tree.cost();
    if (!weight_lt(c, best_cost)) continue;  // interferes with the batch
    span_set = std::move(with_t);
    best = std::move(tree);
    best_cost = c;
    adopted_any = true;
  }
  return adopted_any;
}

}  // namespace

RoutingTree igmst(const Graph& g, std::span<const NodeId> net, const GmstHeuristic& heuristic,
                  PathOracle& oracle, const IgmstOptions& options) {
  std::vector<NodeId> terminals(net.begin(), net.end());
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()), terminals.end());

  RoutingTree best = heuristic(g, terminals, oracle);
  if (!best.spans(terminals)) return best;  // unroutable: report H's attempt
  Weight best_cost = best.cost();

  std::vector<NodeId> span_set = terminals;  // N + S
  int iterations = 0;
  while (options.max_iterations == 0 || iterations < options.max_iterations) {
    ++iterations;
    // Pre-warm every terminal's SSSP tree so each candidate evaluation is
    // served entirely from the cache (otherwise pairs between a candidate
    // and the one terminal the distance-graph construction never rooted at
    // trigger a Dijkstra from the candidate — one per evaluation).
    for (const NodeId v : span_set) oracle.from(v);
    const std::vector<NodeId> candidates =
        steiner_candidates(g, span_set, oracle, options.candidates, options.max_candidates);

    const bool adopted =
        options.batched
            ? adopt_candidate_batch(g, terminals, heuristic, oracle, candidates, span_set,
                                    best, best_cost)
            : adopt_best_candidate(g, terminals, heuristic, oracle, candidates, span_set,
                                   best, best_cost);
    if (!adopted) break;  // no candidate has positive savings
  }

  best.prune_leaves(terminals);
  return best;
}

RoutingTree ikmb(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                 const IgmstOptions& options) {
  return igmst(
      g, net,
      [](const Graph& gg, std::span<const NodeId> nn, PathOracle& oo) { return kmb(gg, nn, oo); },
      oracle, options);
}

RoutingTree izel(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                 const IgmstOptions& options) {
  // One median memo shared across all of this IZEL run's ZEL evaluations:
  // candidate evaluations mostly re-ask for the same terminal triples.
  auto memo = std::make_shared<ZelMemo>();
  return igmst(
      g, net,
      [memo](const Graph& gg, std::span<const NodeId> nn, PathOracle& oo) {
        return zelikovsky(gg, nn, oo, memo.get());
      },
      oracle, options);
}

}  // namespace fpr
