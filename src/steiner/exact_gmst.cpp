#include "steiner/exact_gmst.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/contract.hpp"

namespace fpr {

namespace {

/// Backpointer for reconstructing the optimal tree.
struct Choice {
  enum class Kind : std::uint8_t { kNone, kRoot, kMerge, kEdge };
  Kind kind = Kind::kNone;
  std::uint32_t sub = 0;    // for kMerge: one side of the split
  NodeId from = kInvalidNode;  // for kEdge: the relaxing neighbor
  EdgeId edge = kInvalidEdge;  // for kEdge
};

}  // namespace

std::optional<RoutingTree> exact_gmst(const Graph& g, std::span<const NodeId> net,
                                      PathOracle& /*oracle*/, int max_terminals) {
  std::vector<NodeId> terminals(net.begin(), net.end());
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()), terminals.end());
  const int k = static_cast<int>(terminals.size());
  if (k > max_terminals) return std::nullopt;
  if (k < 2) return RoutingTree(g, {});
  for (const NodeId t : terminals) {
    if (!g.node_active(t)) return std::nullopt;
  }

  const auto n = static_cast<std::size_t>(g.node_count());
  const std::uint32_t full = (1u << k) - 1;
  std::vector<std::vector<Weight>> dp(full + 1, std::vector<Weight>(n, kInfiniteWeight));
  std::vector<std::vector<Choice>> choice(full + 1, std::vector<Choice>(n));

  for (int i = 0; i < k; ++i) {
    const auto t = static_cast<std::size_t>(terminals[static_cast<std::size_t>(i)]);
    dp[1u << i][t] = 0;
    choice[1u << i][t].kind = Choice::Kind::kRoot;
  }

  using Entry = std::pair<Weight, NodeId>;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    auto& row = dp[mask];
    auto& ch = choice[mask];
    // Merge two complementary sub-trees meeting at v. Enumerating sub < rest
    // (canonical split) halves the work.
    for (std::uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      const std::uint32_t rest = mask ^ sub;
      if (sub > rest) continue;
      const auto& a = dp[sub];
      const auto& b = dp[rest];
      for (std::size_t v = 0; v < n; ++v) {
        const Weight c = a[v] + b[v];
        if (c < row[v]) {
          row[v] = c;
          ch[v] = Choice{Choice::Kind::kMerge, sub, kInvalidNode, kInvalidEdge};
        }
      }
    }
    // Dijkstra relaxation: grow the tree for this mask along graph edges.
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (std::size_t v = 0; v < n; ++v) {
      if (row[v] < kInfiniteWeight) heap.emplace(row[v], static_cast<NodeId>(v));
    }
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > row[static_cast<std::size_t>(u)]) continue;
      for (const EdgeId e : g.incident_edges(u)) {
        if (!g.edge_usable(e)) continue;
        const NodeId v = g.other_end(e, u);
        const Weight nd = d + g.edge_weight(e);
        auto& dv = row[static_cast<std::size_t>(v)];
        if (nd < dv) {
          dv = nd;
          ch[static_cast<std::size_t>(v)] = Choice{Choice::Kind::kEdge, 0, u, e};
          heap.emplace(nd, v);
        }
      }
    }
  }

  const auto root = static_cast<std::size_t>(terminals[0]);
  if (dp[full][root] >= kInfiniteWeight) return std::nullopt;

  // Reconstruct edges by walking the backpointers.
  std::vector<EdgeId> edges;
  std::vector<std::pair<std::uint32_t, NodeId>> stack{{full, terminals[0]}};
  while (!stack.empty()) {
    const auto [mask, v] = stack.back();
    stack.pop_back();
    const Choice& c = choice[mask][static_cast<std::size_t>(v)];
    switch (c.kind) {
      case Choice::Kind::kRoot:
        break;
      case Choice::Kind::kMerge:
        stack.emplace_back(c.sub, v);
        stack.emplace_back(mask ^ c.sub, v);
        break;
      case Choice::Kind::kEdge:
        edges.push_back(c.edge);
        stack.emplace_back(mask, c.from);
        break;
      case Choice::Kind::kNone:
        FPR_CHECK(false, "exact GMST reconstruction reached an unset dp cell (mask "
                             << mask << ", node " << v << ")");
        break;
    }
  }

  RoutingTree tree(g, std::move(edges));
  tree.prune_leaves(terminals);
  return tree;
}

std::optional<RoutingTree> exact_gmst(const Graph& g, std::span<const NodeId> net,
                                      int max_terminals) {
  PathOracle oracle(g);
  return exact_gmst(g, net, oracle, max_terminals);
}

}  // namespace fpr
