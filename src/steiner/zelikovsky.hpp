#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <utility>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"

namespace fpr {

/// Memo for triple 1-medians, the dominant cost inside ZEL. IZEL evaluates
/// ZEL once per Steiner candidate over nearly the same terminal set, and
/// triples not involving the candidate recur verbatim; the memo is keyed by
/// the triple's node ids and self-invalidates on graph revision changes.
struct ZelMemo {
  std::uint64_t revision = 0;
  std::map<std::array<NodeId, 3>, std::pair<NodeId, Weight>> medians;
};

/// Zelikovsky's 11/6-approximation for the graph Steiner tree problem [39]
/// (paper Appendix 8.2).
///
/// Repeatedly picks the terminal triple whose contraction (zeroing two of
/// its distance-graph edges) plus best meeting point v_z yields the largest
/// positive win = MST(G') - MST(G'[z]) - dist_z, collects the meeting points
/// as Steiner nodes, and finishes with KMB over N plus those nodes.
///
/// Note: the paper's pseudo-code (Fig. 18) says "Find v which *maximizes*
/// sum dist"; per [39] and the surrounding prose this is a typo for
/// *minimizes* — the meeting point of a triple is its 1-median. We minimize.
RoutingTree zelikovsky(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                       ZelMemo* memo = nullptr);

RoutingTree zelikovsky(const Graph& g, std::span<const NodeId> net);

}  // namespace fpr
