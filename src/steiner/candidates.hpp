#pragma once

#include <span>
#include <vector>

#include "graph/path_oracle.hpp"

namespace fpr {

/// How the iterated constructions (IGMST, IDOM) enumerate Steiner-candidate
/// nodes.
///
/// The paper's template scans all of V - N (kAllNodes); on real device
/// routing graphs (|V| > 5000, Section 2) that is wasteful, and the paper
/// points at "factoring out common computations" for speed. kCorridor
/// restricts candidates to the union of nodes lying on shortest paths
/// between terminal pairs, plus their immediate neighbors — the region where
/// a useful Steiner point can live in practice. The ablation bench
/// quantifies the quality/speed trade.
enum class CandidateStrategy {
  kAllNodes,
  kCorridor,
};

/// Candidate Steiner nodes for the given terminal set, excluding the
/// terminals themselves, sorted ascending. `max_candidates` == 0 means
/// unlimited; otherwise the list is evenly subsampled down to the cap.
std::vector<NodeId> steiner_candidates(const Graph& g, std::span<const NodeId> terminals,
                                       PathOracle& oracle, CandidateStrategy strategy,
                                       int max_candidates = 0);

}  // namespace fpr
