#pragma once

#include <functional>
#include <span>

#include "graph/path_oracle.hpp"
#include "graph/routing_tree.hpp"
#include "steiner/candidates.hpp"

namespace fpr {

/// A graph Steiner tree heuristic usable inside the IGMST template: maps
/// (graph, terminal set, shared path oracle) to a spanning tree of the set.
using GmstHeuristic =
    std::function<RoutingTree(const Graph&, std::span<const NodeId>, PathOracle&)>;

struct IgmstOptions {
  CandidateStrategy candidates = CandidateStrategy::kAllNodes;
  int max_candidates = 0;  // 0 = unlimited
  int max_iterations = 0;  // 0 = run until no candidate improves

  /// Batched Steiner-point adoption (Section 3): "rather than adding
  /// Steiner points one at a time, they may be added in batches based on a
  /// non-interference criterion ... In practice, the number of such rounds
  /// tends to be very small (<= 3 for typical instances)."
  /// Each round scans all candidates ONCE, then walks them in decreasing
  /// savings order, adopting a candidate iff a single re-evaluation shows
  /// it still improves on the batch adopted so far (the non-interference
  /// check). Cuts full candidate scans from |S| to #rounds.
  bool batched = false;
};

/// The paper's core Section 3 contribution: the Iterated Graph Minimal
/// Steiner Tree template (Fig. 5).
///
/// Starting from S = {}, repeatedly find the node t maximizing the savings
/// DeltaH(G, N, S + {t}) = cost(H(G, N + S)) - cost(H(G, N + S + {t})) and
/// keep it while the savings are positive; return H(G, N + S).
///
/// The performance bound is never worse than H's own: with no improving
/// candidate the output equals H's. Cost(IGMST_H) <= cost(H) on every input
/// (property-tested).
RoutingTree igmst(const Graph& g, std::span<const NodeId> net, const GmstHeuristic& heuristic,
                  PathOracle& oracle, const IgmstOptions& options = {});

/// IGMST instantiated with KMB — the "IKMB" algorithm used by the paper's
/// FPGA router for Tables 2-5. Performance bound 2*(1 - 1/L).
RoutingTree ikmb(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                 const IgmstOptions& options = {});

/// IGMST instantiated with Zelikovsky — "IZEL", performance bound 11/6.
RoutingTree izel(const Graph& g, std::span<const NodeId> net, PathOracle& oracle,
                 const IgmstOptions& options = {});

}  // namespace fpr
