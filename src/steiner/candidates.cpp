#include "steiner/candidates.hpp"

#include <algorithm>
#include <unordered_set>

namespace fpr {

namespace {

std::vector<NodeId> subsample(std::vector<NodeId> nodes, int max_candidates) {
  if (max_candidates <= 0 || static_cast<int>(nodes.size()) <= max_candidates) return nodes;
  std::vector<NodeId> picked;
  picked.reserve(static_cast<std::size_t>(max_candidates));
  const double stride = static_cast<double>(nodes.size()) / max_candidates;
  for (int i = 0; i < max_candidates; ++i) {
    picked.push_back(nodes[static_cast<std::size_t>(i * stride)]);
  }
  return picked;
}

}  // namespace

std::vector<NodeId> steiner_candidates(const Graph& g, std::span<const NodeId> terminals,
                                       PathOracle& oracle, CandidateStrategy strategy,
                                       int max_candidates) {
  const std::unordered_set<NodeId> terminal_set(terminals.begin(), terminals.end());
  std::vector<NodeId> nodes;

  switch (strategy) {
    case CandidateStrategy::kAllNodes: {
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (g.node_active(v) && terminal_set.count(v) == 0) nodes.push_back(v);
      }
      break;
    }
    case CandidateStrategy::kCorridor: {
      std::unordered_set<NodeId> corridor;
      for (std::size_t i = 0; i < terminals.size(); ++i) {
        const auto& spt = oracle.from(terminals[i]);
        for (std::size_t j = i + 1; j < terminals.size(); ++j) {
          if (!spt.reached(terminals[j])) continue;
          for (const NodeId v : spt.path_nodes_to(terminals[j])) {
            corridor.insert(v);
            for (const EdgeId e : g.incident_edges(v)) {
              if (g.edge_usable(e)) corridor.insert(g.other_end(e, v));
            }
          }
        }
      }
      // fpr-lint: allow(unordered-iter) order-independent: membership filter only, and nodes is sorted on the next line
      for (const NodeId v : corridor) {
        if (g.node_active(v) && terminal_set.count(v) == 0) nodes.push_back(v);
      }
      std::sort(nodes.begin(), nodes.end());
      break;
    }
  }
  return subsample(std::move(nodes), max_candidates);
}

}  // namespace fpr
