#include "steiner/kmb.hpp"

#include <algorithm>
#include <vector>

#include "graph/distance_graph.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"

namespace fpr {

namespace testhooks {
std::atomic<bool> kmb_invert_mst_selection{false};
}  // namespace testhooks

namespace {

std::vector<NodeId> dedupe(std::span<const NodeId> net) {
  std::vector<NodeId> t(net.begin(), net.end());
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

/// Fault injection (see testhooks::kmb_invert_mst_selection): maximum
/// spanning forest of the subgraph induced by `edges` — Kruskal on
/// (-weight, id), mirroring kruskal_mst_subgraph's determinism.
std::vector<EdgeId> max_spanning_subgraph(const Graph& g, std::span<const EdgeId> edges) {
  std::vector<EdgeId> pool(edges.begin(), edges.end());
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::stable_sort(pool.begin(), pool.end(), [&](EdgeId a, EdgeId b) {
    return weight_lt(g.edge(b).weight, g.edge(a).weight);
  });
  UnionFind uf(g.node_count());
  std::vector<EdgeId> kept;
  for (const EdgeId e : pool) {
    if (!g.edge_usable(e)) continue;
    if (uf.unite(g.edge(e).u, g.edge(e).v)) kept.push_back(e);
  }
  return kept;
}

/// Fault injection (see testhooks::kmb_invert_mst_selection): the maximum
/// spanning tree of the distance graph, built by Prim on negated keys.
DistanceGraph::Mst max_spanning_tree(const DistanceGraph& dg) {
  DistanceGraph inverted(std::vector<NodeId>(dg.terminals().begin(), dg.terminals().end()));
  for (int i = 0; i < dg.size(); ++i) {
    for (int j = i + 1; j < dg.size(); ++j) {
      inverted.set_weight(i, j, -dg.weight(i, j));
    }
  }
  DistanceGraph::Mst mst = inverted.prim_mst();
  mst.cost = 0;
  for (const auto& [i, j] : mst.edges) mst.cost += dg.weight(i, j);
  mst.complete = mst.complete && dg.connected();
  return mst;
}

}  // namespace

RoutingTree kmb(const Graph& g, std::span<const NodeId> net, PathOracle& oracle) {
  const std::vector<NodeId> terminals = dedupe(net);
  if (terminals.size() < 2) return RoutingTree(g, {});

  const DistanceGraph dg(terminals, oracle);
  const auto mst = testhooks::kmb_invert_mst_selection.load(std::memory_order_relaxed)
                       ? max_spanning_tree(dg)
                       : dg.prim_mst();
  if (!mst.complete) return RoutingTree(g, {});  // net is not routable

  // Expand distance-graph MST edges into real shortest paths, reusing
  // whichever endpoint's SSSP tree the oracle already has.
  std::vector<EdgeId> expanded;
  for (const auto& [i, j] : mst.edges) {
    const auto path = oracle.path_between(dg.terminal(i), dg.terminal(j));
    expanded.insert(expanded.end(), path.begin(), path.end());
  }

  // Re-MST the expanded subgraph (overlapping paths can create cycles whose
  // heaviest edges should be dropped), then prune non-terminal leaves. The
  // fault hook inverts this selection too — otherwise the repair pass
  // reclaims most of the damage done in the first selection.
  const bool inverted = testhooks::kmb_invert_mst_selection.load(std::memory_order_relaxed);
  RoutingTree tree(g, inverted ? max_spanning_subgraph(g, expanded)
                               : kruskal_mst_subgraph(g, expanded));
  // The fault hook keeps the dangling non-terminal branches the inverted
  // selection leaves behind: still a structurally valid tree, pure cost.
  if (!inverted) tree.prune_leaves(terminals);
  return tree;
}

RoutingTree kmb(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return kmb(g, net, oracle);
}

}  // namespace fpr
