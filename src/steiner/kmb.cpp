#include "steiner/kmb.hpp"

#include <algorithm>
#include <vector>

#include "graph/distance_graph.hpp"
#include "graph/mst.hpp"

namespace fpr {

namespace {

std::vector<NodeId> dedupe(std::span<const NodeId> net) {
  std::vector<NodeId> t(net.begin(), net.end());
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

}  // namespace

RoutingTree kmb(const Graph& g, std::span<const NodeId> net, PathOracle& oracle) {
  const std::vector<NodeId> terminals = dedupe(net);
  if (terminals.size() < 2) return RoutingTree(g, {});

  const DistanceGraph dg(terminals, oracle);
  const auto mst = dg.prim_mst();
  if (!mst.complete) return RoutingTree(g, {});  // net is not routable

  // Expand distance-graph MST edges into real shortest paths, reusing
  // whichever endpoint's SSSP tree the oracle already has.
  std::vector<EdgeId> expanded;
  for (const auto& [i, j] : mst.edges) {
    const auto path = oracle.path_between(dg.terminal(i), dg.terminal(j));
    expanded.insert(expanded.end(), path.begin(), path.end());
  }

  // Re-MST the expanded subgraph (overlapping paths can create cycles whose
  // heaviest edges should be dropped), then prune non-terminal leaves.
  RoutingTree tree(g, kruskal_mst_subgraph(g, expanded));
  tree.prune_leaves(terminals);
  return tree;
}

RoutingTree kmb(const Graph& g, std::span<const NodeId> net) {
  PathOracle oracle(g);
  return kmb(g, net, oracle);
}

}  // namespace fpr
