#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "check/check.hpp"
#include "check/generate.hpp"

namespace fpr::check {

/// The invariant oracles the fuzzer can drive (see oracles.hpp).
enum class Oracle {
  kTreeValidity,  // structural validity of every construction's output
  kApproxBound,   // heuristic cost vs the exact solver's optimum
  kMonotonic,     // iterated constructions never worse than their base
  kFeasibility,   // RoutingResult replay on a fresh device
  kFaults,        // feasibility replay on a fault-injected device: routed
                  // nets avoid defects, degradation stats are consistent
  kNegotiate,     // feasibility replay of negotiated-mode runs: all shared
                  // checks plus the convergence contract (monotone overflow
                  // trend, zero final overflow on success, no paper-mode
                  // retry machinery engaged)
  kRepair,        // incremental ECO repair: route, apply derived fault/net
                  // events through repair_route, re-derive the cone and the
                  // rip-up arithmetic from scratch, check untouched-net
                  // byte-stability, final-state feasibility on the mutated
                  // device, and journal replay bit-identity
};

std::string_view oracle_name(Oracle o);
std::optional<Oracle> parse_oracle(std::string_view name);
std::span<const Oracle> all_oracles();

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iterations = 1000;          // per oracle
  std::vector<Oracle> oracles;    // empty = all
  bool shrink = true;             // minimize failing cases before reporting
  int max_terminals = 9;          // approximation oracle's exact-DP ceiling
  /// Restricts which constructions cases are generated for (empty = the
  /// oracle's default set). Targeted fuzzing of one suspect algorithm.
  std::vector<Algorithm> algorithms;
  int max_failures = 10;          // stop an oracle after this many failures
  std::string failure_dir;        // persist repro files here ("" = don't)
  std::ostream* log = nullptr;    // progress + failure reporting ("" = silent)
};

struct FuzzFailure {
  Oracle oracle = Oracle::kTreeValidity;
  std::uint64_t case_seed = 0;  // regenerates the ORIGINAL (unshrunk) case
  int iteration = 0;
  std::string message;  // the oracle's violations on the minimized case
  std::string repro;    // minimized case line (TreeCase/CircuitCase::parse format)
  std::string file;     // persisted repro path ("" when not persisted)
};

struct FuzzReport {
  long iterations = 0;  // total oracle invocations across all oracles
  std::vector<FuzzFailure> failures;

  bool clean() const { return failures.empty(); }
};

/// Runs `options.iterations` generated cases through each selected oracle.
/// Deterministic: the case at (seed, oracle, iteration) is always the same.
/// Failures are shrunk to minimal repros and, when failure_dir is set,
/// persisted one file per failure (self-contained: the file's `case:` line
/// replays via replay_file / `fuzz_fpr --replay`).
FuzzReport fuzz(const FuzzOptions& options);

/// Re-runs the oracle recorded in a persisted repro file. Returns the
/// oracle's verdict (violations empty = the case no longer fails), or
/// nullopt if the file cannot be parsed.
std::optional<CheckResult> replay_file(const std::string& path, std::ostream& log);

/// Re-runs one oracle on an explicit case line (the `case:` payload).
std::optional<CheckResult> run_case(Oracle oracle, const std::string& case_line,
                                    int max_terminals = 9);

}  // namespace fpr::check
