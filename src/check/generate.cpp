#include "check/generate.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "graph/grid.hpp"
#include "netlist/profiles.hpp"
#include "netlist/synth.hpp"

namespace fpr::check {

namespace {

constexpr std::array<Algorithm, 10> kAllAlgorithms{
    Algorithm::kKmb,  Algorithm::kZel, Algorithm::kIkmb,      Algorithm::kIzel,
    Algorithm::kDjka, Algorithm::kDom, Algorithm::kPfa,       Algorithm::kIdom,
    Algorithm::kExactGmst,             Algorithm::kExactGsa,
};

/// Splits "key=value" tokens of a case line into (key, value) pairs.
std::vector<std::pair<std::string, std::string>> tokenize(const std::string& line) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(token, "");
    } else {
      out.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  return out;
}

std::vector<NodeId> parse_id_list(const std::string& text) {
  std::vector<NodeId> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<NodeId>(std::stol(item)));
  }
  return out;
}

std::string format_id_list(std::span<const NodeId> ids) {
  std::string out;
  for (const NodeId v : ids) {
    if (!out.empty()) out += ',';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

std::optional<Algorithm> algorithm_from_name(std::string_view name) {
  for (const Algorithm a : kAllAlgorithms) {
    if (algorithm_name(a) == name) return a;
  }
  return std::nullopt;
}

Graph TreeCase::materialize() const {
  Rng rng(graph_seed);
  if (substrate == Substrate::kGrid) {
    GridGraph grid(grid_width, grid_height);
    Graph g = grid.graph();
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      g.set_edge_weight(e, static_cast<Weight>(1 + rng.below(static_cast<std::uint64_t>(max_weight))));
    }
    return g;
  }
  // Random connected graph: spanning tree plus extra random edges (the
  // same shape tests/test_util.hpp builds, regenerated platform-portably).
  Graph g(static_cast<NodeId>(nodes));
  for (NodeId i = 1; i < static_cast<NodeId>(nodes); ++i) {
    const NodeId pred = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(i)));
    g.add_edge(i, pred, static_cast<Weight>(1 + rng.below(static_cast<std::uint64_t>(max_weight))));
  }
  for (int k = 0; k < extra_edges; ++k) {
    NodeId u = 0, v = 0;
    do {
      u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
      v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (u == v);
    g.add_edge(u, v, static_cast<Weight>(1 + rng.below(static_cast<std::uint64_t>(max_weight))));
  }
  return g;
}

Net TreeCase::net() const {
  Net n;
  if (terminals.empty()) return n;
  n.source = terminals[0];
  n.sinks.assign(terminals.begin() + 1, terminals.end());
  return n;
}

std::string TreeCase::describe() const {
  std::ostringstream os;
  os << "tree substrate=" << (substrate == Substrate::kGrid ? "grid" : "random")
     << " graph_seed=" << graph_seed << " nodes=" << nodes << " extra=" << extra_edges
     << " grid=" << grid_width << "x" << grid_height << " max_weight=" << max_weight
     << " algo=" << algorithm_name(algorithm) << " terminals=" << format_id_list(terminals);
  return os.str();
}

std::optional<TreeCase> TreeCase::parse(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty() || tokens[0].first != "tree") return std::nullopt;
  TreeCase c;
  for (const auto& [key, value] : tokens) {
    if (key == "substrate") {
      c.substrate = value == "grid" ? Substrate::kGrid : Substrate::kRandomGraph;
    } else if (key == "graph_seed") {
      c.graph_seed = std::stoull(value);
    } else if (key == "nodes") {
      c.nodes = std::stoi(value);
    } else if (key == "extra") {
      c.extra_edges = std::stoi(value);
    } else if (key == "grid") {
      const auto x = value.find('x');
      if (x == std::string::npos) return std::nullopt;
      c.grid_width = std::stoi(value.substr(0, x));
      c.grid_height = std::stoi(value.substr(x + 1));
    } else if (key == "max_weight") {
      c.max_weight = std::stoi(value);
    } else if (key == "algo") {
      const auto a = algorithm_from_name(value);
      if (!a) return std::nullopt;
      c.algorithm = *a;
    } else if (key == "terminals") {
      c.terminals = parse_id_list(value);
    }
  }
  if (c.terminals.empty() || c.node_count() <= 0) return std::nullopt;
  for (const NodeId t : c.terminals) {
    if (t < 0 || t >= static_cast<NodeId>(c.node_count())) return std::nullopt;
  }
  return c;
}

ArchSpec CircuitCase::arch() const {
  return family == Family::kXc3000 ? ArchSpec::xc3000(rows, cols, width)
                                   : ArchSpec::xc4000(rows, cols, width);
}

Circuit CircuitCase::circuit() const {
  CircuitProfile profile;
  profile.name = "fuzz";
  profile.rows = rows;
  profile.cols = cols;
  profile.nets_2_3 = nets_2_3;
  profile.nets_4_10 = nets_4_10;
  profile.nets_over_10 = nets_over_10;
  return synthesize_circuit(profile, static_cast<unsigned>(synth_seed & 0xffffffffull));
}

RouterOptions CircuitCase::router_options() const {
  RouterOptions o;
  o.algorithm = algorithm;
  o.decompose_two_pin = decompose_two_pin;
  // Bound fuzz wall-clock: an instance the router cannot finish in 8 passes
  // is reported as a (valid) failure outcome, which the oracle still checks.
  o.max_passes = 8;
  o.node_budget = node_budget;
  o.threads = threads;
  if (negotiated) {
    o.mode = RouterMode::kNegotiated;
    // Negotiated mode routes whole nets only; a parsed line carrying both
    // knobs routes negotiated (the mode key is the later, more specific
    // intent). Same wall-clock bound rationale as max_passes above.
    o.decompose_two_pin = false;
    o.negotiate_passes = 8;
  }
  return o;
}

std::string CircuitCase::describe() const {
  std::ostringstream os;
  os << "circuit family=" << (family == Family::kXc3000 ? "xc3000" : "xc4000")
     << " rows=" << rows << " cols=" << cols << " width=" << width << " nets=" << nets_2_3
     << "," << nets_4_10 << "," << nets_over_10 << " synth_seed=" << synth_seed
     << " algo=" << algorithm_name(algorithm) << " decompose=" << (decompose_two_pin ? 1 : 0);
  if (threads != 1) os << " threads=" << threads;
  // Non-default fields are emitted only when set so historical repro lines
  // round-trip byte-identically. The fault/budget keys were parsed but
  // never emitted before this block existed — a fault-oracle repro line
  // silently dropped its defect distribution on persist.
  const FaultSpec defaults{};
  if (faults.seed != defaults.seed) os << " fault_seed=" << faults.seed;
  if (faults.wire_permille != 0) os << " fault_wires=" << faults.wire_permille;
  if (faults.switch_permille != 0) os << " fault_switches=" << faults.switch_permille;
  if (faults.pin_permille != 0) os << " fault_pins=" << faults.pin_permille;
  if (faults.clusters != 0) os << " fault_clusters=" << faults.clusters;
  if (faults.cluster_radius != defaults.cluster_radius) {
    os << " fault_radius=" << faults.cluster_radius;
  }
  if (node_budget != 0) os << " budget=" << node_budget;
  if (negotiated) os << " mode=negotiated";
  if (repair_events != 0) {
    os << " repair_events=" << repair_events << " repair_seed=" << repair_seed;
  }
  if (repair_budget != 0) os << " repair_budget=" << repair_budget;
  return os.str();
}

std::optional<CircuitCase> CircuitCase::parse(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty() || tokens[0].first != "circuit") return std::nullopt;
  CircuitCase c;
  for (const auto& [key, value] : tokens) {
    if (key == "family") {
      c.family = value == "xc3000" ? Family::kXc3000 : Family::kXc4000;
    } else if (key == "rows") {
      c.rows = std::stoi(value);
    } else if (key == "cols") {
      c.cols = std::stoi(value);
    } else if (key == "width") {
      c.width = std::stoi(value);
    } else if (key == "nets") {
      const auto counts = parse_id_list(value);
      if (counts.size() != 3) return std::nullopt;
      c.nets_2_3 = counts[0];
      c.nets_4_10 = counts[1];
      c.nets_over_10 = counts[2];
    } else if (key == "synth_seed") {
      c.synth_seed = std::stoull(value);
    } else if (key == "algo") {
      const auto a = algorithm_from_name(value);
      if (!a) return std::nullopt;
      c.algorithm = *a;
    } else if (key == "decompose") {
      c.decompose_two_pin = value == "1";
    } else if (key == "fault_seed") {
      c.faults.seed = std::stoull(value);
    } else if (key == "fault_wires") {
      c.faults.wire_permille = std::stoi(value);
    } else if (key == "fault_switches") {
      c.faults.switch_permille = std::stoi(value);
    } else if (key == "fault_pins") {
      c.faults.pin_permille = std::stoi(value);
    } else if (key == "fault_clusters") {
      c.faults.clusters = std::stoi(value);
    } else if (key == "fault_radius") {
      c.faults.cluster_radius = std::stoi(value);
    } else if (key == "budget") {
      c.node_budget = std::stoll(value);
    } else if (key == "threads") {
      c.threads = std::stoi(value);
    } else if (key == "mode") {
      if (value != "negotiated" && value != "paper") return std::nullopt;
      c.negotiated = value == "negotiated";
    } else if (key == "repair_events") {
      c.repair_events = std::stoi(value);
    } else if (key == "repair_seed") {
      c.repair_seed = std::stoull(value);
    } else if (key == "repair_budget") {
      c.repair_budget = std::stoll(value);
    }
  }
  if (c.rows < 1 || c.cols < 1 || c.width < 1) return std::nullopt;
  if (!c.faults.valid() || c.node_budget < 0 || c.threads < 0) return std::nullopt;
  if (c.repair_events < 0 || c.repair_budget < 0) return std::nullopt;
  return c;
}

TreeCase generate_tree_case(std::uint64_t case_seed, int max_terminals,
                            std::span<const Algorithm> algorithms) {
  Rng rng(case_seed);
  TreeCase c;
  c.substrate = rng.below(2) == 0 ? TreeCase::Substrate::kRandomGraph
                                  : TreeCase::Substrate::kGrid;
  c.graph_seed = rng.next();
  c.nodes = rng.range(8, 36);
  c.extra_edges = rng.range(0, c.nodes);
  c.grid_width = rng.range(3, 9);
  c.grid_height = rng.range(3, 8);
  c.max_weight = rng.range(1, 12);
  c.algorithm = algorithms[rng.below(algorithms.size())];

  const int node_count = c.node_count();
  const int k = rng.range(2, std::min(max_terminals, node_count));
  while (static_cast<int>(c.terminals.size()) < k) {
    const NodeId v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(node_count)));
    if (std::find(c.terminals.begin(), c.terminals.end(), v) == c.terminals.end()) {
      c.terminals.push_back(v);
    }
  }
  return c;
}

CircuitCase generate_circuit_case(std::uint64_t case_seed) {
  Rng rng(case_seed);
  CircuitCase c;
  c.family = rng.below(2) == 0 ? CircuitCase::Family::kXc3000 : CircuitCase::Family::kXc4000;
  c.rows = rng.range(3, 5);
  c.cols = rng.range(3, 5);
  c.width = rng.range(6, 10);
  c.nets_2_3 = rng.range(3, 9);
  c.nets_4_10 = rng.range(0, 3);
  c.nets_over_10 = rng.range(0, 1);
  c.synth_seed = rng.below(0xffffffffull);
  c.algorithm = table1_algorithms()[rng.below(table1_algorithms().size())];
  c.decompose_two_pin = rng.below(8) == 0;
  // A quarter of cases route through the net-parallel wave scheduler so the
  // feasibility oracle continuously cross-checks its serial-equivalence
  // contract. Appended last: earlier draws (and thus every pre-existing
  // field of a given seed) are unchanged.
  c.threads = rng.below(4) == 0 ? rng.range(2, 4) : 1;
  // One case in eight is promoted to a large array (>= the tile-template
  // sampling floor of 7x7) so every oracle continuously cross-checks the
  // stamped builder, not just the legacy path the small grids take. Width
  // drops and net counts stay small to keep the case budget-friendly; the
  // override redraws are appended last like `threads` above.
  if (rng.below(8) == 0) {
    c.rows = rng.range(12, 16);
    c.cols = rng.range(12, 16);
    c.width = rng.range(5, 7);
    c.nets_4_10 = rng.range(0, 1);
    c.nets_over_10 = 0;
  }
  // A quarter of cases route in negotiated mode, so the general feasibility
  // oracle continuously replays both congestion strategies (the dedicated
  // negotiate oracle adds the contention-heavy distribution on top).
  // Appended last like the draws above.
  if (rng.below(4) == 0) {
    c.negotiated = true;
    c.decompose_two_pin = false;  // negotiated mode routes whole nets only
  }
  return c;
}

CircuitCase generate_fault_circuit_case(std::uint64_t case_seed) {
  CircuitCase c = generate_circuit_case(case_seed);
  Rng rng(mix64(case_seed, salt64("fault-case")));
  c.faults.seed = rng.next();
  // Moderate rates: high enough that most cases carry real defects, low
  // enough that many still route (both branches of the oracle exercised).
  c.faults.wire_permille = rng.range(0, 60);
  c.faults.switch_permille = rng.range(0, 60);
  c.faults.pin_permille = rng.range(0, 40);
  c.faults.clusters = rng.below(4) == 0 ? 1 : 0;
  c.faults.cluster_radius = 1;
  // Occasionally strangle the router mid-circuit: the oracle must hold for
  // partial budget-aborted results too.
  if (rng.below(4) == 0) c.node_budget = 20'000 + 1000 * rng.range(0, 40);
  return c;
}

CircuitCase generate_negotiated_circuit_case(std::uint64_t case_seed) {
  CircuitCase c = generate_circuit_case(case_seed);
  Rng rng(mix64(case_seed, salt64("negotiate-case")));
  c.negotiated = true;
  c.decompose_two_pin = false;  // negotiated mode routes whole nets only
  // Narrower channels than the base draw (6-10): negotiation is only
  // interesting when early passes actually share wires, and a roomy channel
  // converges on pass 1 without ever pricing anything.
  c.width = rng.range(4, 7);
  if (rng.below(4) == 0) {
    // Lighter fault rates than the fault generator: the negotiated loop has
    // no retry ladder, so heavily shredded devices mostly measure the
    // fault-blocked classifier instead of the negotiation contract.
    c.faults.seed = rng.next();
    c.faults.wire_permille = rng.range(0, 40);
    c.faults.switch_permille = rng.range(0, 40);
  }
  if (rng.below(8) == 0) c.node_budget = 20'000 + 1000 * rng.range(0, 40);
  return c;
}

CircuitCase generate_repair_circuit_case(std::uint64_t case_seed) {
  CircuitCase c = generate_circuit_case(case_seed);
  Rng rng(mix64(case_seed, salt64("repair-case")));
  c.repair_seed = rng.next();
  c.repair_events = rng.range(1, 4);
  if (rng.below(4) == 0) {
    // A slice layers the events on top of an installed defect distribution:
    // repair must compose with spec faults (retry ladders engaged, overlay
    // and distribution both avoided). Lighter rates than the fault
    // generator so most seeds still route before the first event.
    c.faults.seed = rng.next();
    c.faults.wire_permille = rng.range(0, 40);
    c.faults.switch_permille = rng.range(0, 30);
  }
  // A slice strangles individual events: budget aborts must degrade
  // gracefully (kAbortedBudget cone nets, byte-stable rest) and replay
  // bit-identically.
  if (rng.below(4) == 0) c.repair_budget = 2'000 + 1000 * rng.range(0, 20);
  return c;
}

}  // namespace fpr::check
