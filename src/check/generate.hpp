#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/route.hpp"
#include "fpga/arch.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

namespace fpr::check {

/// splitmix64 finalizer — the single deterministic seed-mixing scheme shared
/// by the fuzzer and (via tests/test_util.hpp) every test suite. Unlike
/// std::uniform_int_distribution its output is identical on every platform,
/// which is what makes persisted repro seeds portable.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) { return mix64(a ^ mix64(b)); }

/// FNV-1a over a string — stable per-suite salt for seeded test RNGs.
constexpr std::uint64_t salt64(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Tiny self-contained deterministic generator (xorshift-free splitmix64
/// stream). Good enough for fuzzing; NOT a crypto RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() { return mix64(state_++); }

  /// Uniform-ish value in [0, bound); bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform-ish value in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

/// A graph + net instance for the tree-level oracles (validity, bound,
/// monotonicity). Everything needed to rebuild the instance exactly is in
/// the fields, so a persisted case line IS the repro: the graph is
/// re-materialized from graph_seed, and the shrinker mutates the fields
/// directly.
struct TreeCase {
  enum class Substrate { kRandomGraph, kGrid };

  Substrate substrate = Substrate::kRandomGraph;
  std::uint64_t graph_seed = 0;
  int nodes = 0;        // random-graph substrate
  int extra_edges = 0;  // random-graph substrate: edges beyond the spanning tree
  int grid_width = 0;   // grid substrate
  int grid_height = 0;  // grid substrate
  int max_weight = 10;  // integral edge weights in [1, max_weight]
  std::vector<NodeId> terminals;  // terminals[0] is the source
  Algorithm algorithm = Algorithm::kKmb;

  int node_count() const {
    return substrate == Substrate::kRandomGraph ? nodes : grid_width * grid_height;
  }

  /// Rebuilds the exact graph this case describes.
  Graph materialize() const;

  Net net() const;

  /// One-line key=value serialization (the persisted repro format).
  std::string describe() const;
  static std::optional<TreeCase> parse(const std::string& line);
};

/// An FPGA instance + circuit + router configuration for the feasibility
/// oracle. The circuit is re-synthesized deterministically from the fields.
struct CircuitCase {
  enum class Family { kXc3000, kXc4000 };

  Family family = Family::kXc4000;
  int rows = 4;
  int cols = 4;
  int width = 8;
  int nets_2_3 = 6;
  int nets_4_10 = 2;
  int nets_over_10 = 0;
  std::uint64_t synth_seed = 0;
  Algorithm algorithm = Algorithm::kIkmb;
  bool decompose_two_pin = false;

  ArchSpec arch() const;
  Circuit circuit() const;
  RouterOptions router_options() const;

  std::string describe() const;
  static std::optional<CircuitCase> parse(const std::string& line);
};

/// Deterministic case generators: the same case_seed always yields the same
/// instance. `algorithms` restricts which constructions are sampled.
TreeCase generate_tree_case(std::uint64_t case_seed, int max_terminals,
                            std::span<const Algorithm> algorithms);
CircuitCase generate_circuit_case(std::uint64_t case_seed);

/// Inverse of algorithm_name() over every Algorithm (heuristics + exact).
std::optional<Algorithm> algorithm_from_name(std::string_view name);

}  // namespace fpr::check
