#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "core/route.hpp"
#include "fpga/arch.hpp"
#include "fpga/faults.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

namespace fpr::check {

// The deterministic seed-mixing scheme lives in core/rng.hpp so the fault
// model (fpga layer) samples from the exact same splitmix64 streams as the
// fuzzer and the test suites; these aliases keep the historical
// fpr::check:: spelling working.
using fpr::mix64;
using fpr::salt64;
using Rng = fpr::SplitMixRng;

/// A graph + net instance for the tree-level oracles (validity, bound,
/// monotonicity). Everything needed to rebuild the instance exactly is in
/// the fields, so a persisted case line IS the repro: the graph is
/// re-materialized from graph_seed, and the shrinker mutates the fields
/// directly.
struct TreeCase {
  enum class Substrate { kRandomGraph, kGrid };

  Substrate substrate = Substrate::kRandomGraph;
  std::uint64_t graph_seed = 0;
  int nodes = 0;        // random-graph substrate
  int extra_edges = 0;  // random-graph substrate: edges beyond the spanning tree
  int grid_width = 0;   // grid substrate
  int grid_height = 0;  // grid substrate
  int max_weight = 10;  // integral edge weights in [1, max_weight]
  std::vector<NodeId> terminals;  // terminals[0] is the source
  Algorithm algorithm = Algorithm::kKmb;

  int node_count() const {
    return substrate == Substrate::kRandomGraph ? nodes : grid_width * grid_height;
  }

  /// Rebuilds the exact graph this case describes.
  Graph materialize() const;

  Net net() const;

  /// One-line key=value serialization (the persisted repro format).
  std::string describe() const;
  static std::optional<TreeCase> parse(const std::string& line);
};

/// An FPGA instance + circuit + router configuration for the feasibility
/// oracle. The circuit is re-synthesized deterministically from the fields.
struct CircuitCase {
  enum class Family { kXc3000, kXc4000 };

  Family family = Family::kXc4000;
  int rows = 4;
  int cols = 4;
  int width = 8;
  int nets_2_3 = 6;
  int nets_4_10 = 2;
  int nets_over_10 = 0;
  std::uint64_t synth_seed = 0;
  Algorithm algorithm = Algorithm::kIkmb;
  bool decompose_two_pin = false;

  /// Defect distribution installed on the probe device before routing
  /// (faults.any() == false leaves the device pristine) and work budget for
  /// the router (0 = unlimited) — the fault-oracle dimensions. Serialized
  /// only when non-default, so pre-fault repro lines parse unchanged.
  FaultSpec faults{};
  long long node_budget = 0;

  /// RouterOptions::threads for the probe (1 = serial). Drawn > 1 for a
  /// slice of cases so the fuzzer exercises the net-parallel wave scheduler
  /// against the same oracles; the router's determinism contract makes the
  /// outcome identical either way, so repro lines stay thread-agnostic.
  /// Serialized only when non-default.
  int threads = 1;

  /// Route in RouterMode::kNegotiated instead of paper mode. Negotiated
  /// probes route whole nets (router_options() forces decompose off) and
  /// the feasibility oracle applies the convergence-contract checks on top
  /// of the shared ones. Serialized only when set ("mode=negotiated").
  bool negotiated = false;

  /// Repair-oracle dimensions: how many ECO events to derive (from
  /// repair_seed, deterministically, against the initially routed state —
  /// see derive_repair_events in fuzz.cpp) and apply through repair_route,
  /// and the per-event work budget (0 = unlimited). repair_events == 0
  /// means the case is not a repair case. Serialized only when non-default.
  int repair_events = 0;
  std::uint64_t repair_seed = 0;
  long long repair_budget = 0;

  ArchSpec arch() const;
  Circuit circuit() const;
  RouterOptions router_options() const;

  std::string describe() const;
  static std::optional<CircuitCase> parse(const std::string& line);
};

/// Deterministic case generators: the same case_seed always yields the same
/// instance. `algorithms` restricts which constructions are sampled.
TreeCase generate_tree_case(std::uint64_t case_seed, int max_terminals,
                            std::span<const Algorithm> algorithms);
CircuitCase generate_circuit_case(std::uint64_t case_seed);

/// A circuit case with a sampled defect distribution (and sometimes a work
/// budget) layered on top of generate_circuit_case — the fault oracle's
/// generator.
CircuitCase generate_fault_circuit_case(std::uint64_t case_seed);

/// A negotiated-mode circuit case: generate_circuit_case re-targeted at the
/// negotiation loop (narrower channels so passes actually contend, a slice
/// with faults, a slice with a work budget) — the negotiate oracle's
/// generator.
CircuitCase generate_negotiated_circuit_case(std::uint64_t case_seed);

/// A repair circuit case: generate_circuit_case plus 1-4 derived ECO events
/// (a slice with spec faults underneath, a slice with per-event budgets) —
/// the repair oracle's generator. Inherits the base draw's mode mix, so
/// repair is continuously fuzzed in both paper and negotiated modes.
CircuitCase generate_repair_circuit_case(std::uint64_t case_seed);

/// Inverse of algorithm_name() over every Algorithm (heuristics + exact).
std::optional<Algorithm> algorithm_from_name(std::string_view name);

}  // namespace fpr::check
