#pragma once

#include <span>

#include <vector>

#include "check/check.hpp"
#include "core/route.hpp"
#include "fpga/arch.hpp"
#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "router/repair.hpp"
#include "router/router.hpp"

namespace fpr::check {

/// Invariant oracles: each one re-derives a guarantee of the paper (or of
/// this implementation's containers) FROM SCRATCH and compares it against
/// what the production code reports. None of them trusts the incremental
/// bookkeeping it is checking — the validity oracle builds its own adjacency
/// from the raw edge list, the feasibility oracle replays a RoutingResult
/// against a freshly built device, the bound oracle runs the exact solver.
///
/// Every oracle bumps counters().checks_run, and counters().check_violations
/// when it fails, so harnesses can assert they actually executed.

/// Routing-tree structural validity: every edge usable in g, connected,
/// acyclic (|V| == |E| + 1), spans `terminals` (terminals[0] is the source),
/// and the container's incremental answers — cost(), path_length(),
/// is_tree(), spans() — match values recomputed from the raw edge set.
CheckResult check_tree_validity(const Graph& g, std::span<const NodeId> terminals,
                                const RoutingTree& tree);

/// Approximation-bound oracle (nets with at most `max_terminals` distinct
/// pins; larger nets are skipped, reported as ok):
///  - KMB/IKMB cost <= 2 * OPT and ZEL/IZEL cost <= 11/6 * OPT, with OPT
///    from the exact GMST subset DP (and cost >= OPT, which also cross-
///    checks the exact solver);
///  - DJKA/DOM/PFA/IDOM: every sink is reached at exact graph distance (the
///    arborescence guarantee), and cost >= the exact GSA optimum.
CheckResult check_approximation_bound(const Graph& g, const Net& net, Algorithm algorithm,
                                      int max_terminals = 9);

/// Iterated-construction monotonicity (Section 3: IGMST's bound is never
/// worse than its base heuristic's): cost(IKMB) <= cost(KMB),
/// cost(IZEL) <= cost(ZEL), cost(IDOM) <= cost(DOM) on the same instance.
CheckResult check_iterated_monotonicity(const Graph& g, const Net& net);

/// Router feasibility oracle: replays `result` against a FRESH device built
/// from `arch` (no state shared with the router that produced it):
///  - success implies every multi-pin net routed;
///  - each routed net's edge set exists in the device graph, connects the
///    net's source block to every sink block, and (whole-net algorithms)
///    forms a structurally valid tree;
///  - wire capacity: no wire node is used by two different nets, and no
///    channel tile uses more tracks than the architecture has;
///  - accounting: per-net wire_nodes_used / physical_wirelength /
///    physical_max_path and the result's totals match recomputed values;
///  - status consistency: NetStatus::kRouted iff the net holds a route,
///    and the degradation counters (nets_blocked_by_fault,
///    nets_aborted_budget, nets_rerouted_around_faults, budget_exhausted)
///    match the per-net statuses they summarize.
///
/// When `faults` is given, the replay device gets the same defect set
/// installed, and the oracle additionally asserts that no routed net
/// occupies a faulted wire segment or traverses a dead switch/pin edge —
/// the core guarantee of defect-aware routing. `events` extends the same
/// guarantee to a live fault-event overlay (Device::apply_fault_event):
/// pass the cumulative overlay when checking a repaired result.
CheckResult check_routing_feasibility(const ArchSpec& arch, const Circuit& circuit,
                                      const RoutingResult& result,
                                      const RouterOptions& options,
                                      const FaultSpec* faults = nullptr,
                                      const FaultEvent* events = nullptr);

/// Incremental-repair oracle (the kRepair fuzz dimension). Routes `seed`
/// from scratch (record_commits forced on, `faults` installed when given),
/// applies `events` one at a time through repair_route, and re-derives
/// every repair guarantee independently:
///  - cone contract: the oracle recomputes each event's affected cone
///    (direct hits + tile-sibling expansion + net-delta members) with its
///    own code — never repair_cone — and the reported cone_nets, and the
///    repaired/degraded/aborted split, must match;
///  - byte-stability: every net outside the oracle's cone keeps a
///    bit-identical record and commit log across the event;
///  - rip-up arithmetic: after all events, every edge weight must equal
///    its pristine base plus congestion_penalty times the recorded
///    applications, and wire activity/ownership must match the commit
///    logs plus the dead sets — recomputed from scratch;
///  - feasibility: the final state passes check_routing_feasibility with
///    the cumulative event overlay (repaired state is feasibility-
///    equivalent to a from-scratch route on the mutated device);
///  - replay: the (event, outcome) journal round-trips through its text
///    form and replay_journal reconstructs the exact final state
///    (bit-identical records, commit logs, net order) with matching
///    outcomes.
CheckResult check_repair(const ArchSpec& arch, const Circuit& seed,
                         const RouterOptions& options, const FaultSpec* faults,
                         const std::vector<RepairEvent>& events);

}  // namespace fpr::check
