#pragma once

#include <span>

#include "check/check.hpp"
#include "core/route.hpp"
#include "fpga/arch.hpp"
#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "router/router.hpp"

namespace fpr::check {

/// Invariant oracles: each one re-derives a guarantee of the paper (or of
/// this implementation's containers) FROM SCRATCH and compares it against
/// what the production code reports. None of them trusts the incremental
/// bookkeeping it is checking — the validity oracle builds its own adjacency
/// from the raw edge list, the feasibility oracle replays a RoutingResult
/// against a freshly built device, the bound oracle runs the exact solver.
///
/// Every oracle bumps counters().checks_run, and counters().check_violations
/// when it fails, so harnesses can assert they actually executed.

/// Routing-tree structural validity: every edge usable in g, connected,
/// acyclic (|V| == |E| + 1), spans `terminals` (terminals[0] is the source),
/// and the container's incremental answers — cost(), path_length(),
/// is_tree(), spans() — match values recomputed from the raw edge set.
CheckResult check_tree_validity(const Graph& g, std::span<const NodeId> terminals,
                                const RoutingTree& tree);

/// Approximation-bound oracle (nets with at most `max_terminals` distinct
/// pins; larger nets are skipped, reported as ok):
///  - KMB/IKMB cost <= 2 * OPT and ZEL/IZEL cost <= 11/6 * OPT, with OPT
///    from the exact GMST subset DP (and cost >= OPT, which also cross-
///    checks the exact solver);
///  - DJKA/DOM/PFA/IDOM: every sink is reached at exact graph distance (the
///    arborescence guarantee), and cost >= the exact GSA optimum.
CheckResult check_approximation_bound(const Graph& g, const Net& net, Algorithm algorithm,
                                      int max_terminals = 9);

/// Iterated-construction monotonicity (Section 3: IGMST's bound is never
/// worse than its base heuristic's): cost(IKMB) <= cost(KMB),
/// cost(IZEL) <= cost(ZEL), cost(IDOM) <= cost(DOM) on the same instance.
CheckResult check_iterated_monotonicity(const Graph& g, const Net& net);

/// Router feasibility oracle: replays `result` against a FRESH device built
/// from `arch` (no state shared with the router that produced it):
///  - success implies every multi-pin net routed;
///  - each routed net's edge set exists in the device graph, connects the
///    net's source block to every sink block, and (whole-net algorithms)
///    forms a structurally valid tree;
///  - wire capacity: no wire node is used by two different nets, and no
///    channel tile uses more tracks than the architecture has;
///  - accounting: per-net wire_nodes_used / physical_wirelength /
///    physical_max_path and the result's totals match recomputed values;
///  - status consistency: NetStatus::kRouted iff the net holds a route,
///    and the degradation counters (nets_blocked_by_fault,
///    nets_aborted_budget, nets_rerouted_around_faults, budget_exhausted)
///    match the per-net statuses they summarize.
///
/// When `faults` is given, the replay device gets the same defect set
/// installed, and the oracle additionally asserts that no routed net
/// occupies a faulted wire segment or traverses a dead switch/pin edge —
/// the core guarantee of defect-aware routing.
CheckResult check_routing_feasibility(const ArchSpec& arch, const Circuit& circuit,
                                      const RoutingResult& result,
                                      const RouterOptions& options,
                                      const FaultSpec* faults = nullptr);

}  // namespace fpr::check
