#include "check/fuzz.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "check/oracles.hpp"
#include "check/shrink.hpp"
#include "core/metrics.hpp"

namespace fpr::check {

namespace {

constexpr std::array<Oracle, 7> kOracles{
    Oracle::kTreeValidity,
    Oracle::kApproxBound,
    Oracle::kMonotonic,
    Oracle::kFeasibility,
    Oracle::kFaults,
    Oracle::kNegotiate,
    Oracle::kRepair,
};

/// Validity fuzzes every construction including the exact solvers (whose
/// output must be structurally sound too); the bound and monotonicity
/// oracles compare the eight heuristics against the exact references.
constexpr std::array<Algorithm, 10> kValidityAlgorithms{
    Algorithm::kKmb,  Algorithm::kZel, Algorithm::kIkmb,      Algorithm::kIzel,
    Algorithm::kDjka, Algorithm::kDom, Algorithm::kPfa,       Algorithm::kIdom,
    Algorithm::kExactGmst,             Algorithm::kExactGsa,
};
constexpr std::array<Algorithm, 8> kHeuristicAlgorithms{
    Algorithm::kKmb,  Algorithm::kZel, Algorithm::kIkmb, Algorithm::kIzel,
    Algorithm::kDjka, Algorithm::kDom, Algorithm::kPfa,  Algorithm::kIdom,
};

CheckResult run_tree_oracle(Oracle oracle, const TreeCase& c, int max_terminals) {
  const Graph g = c.materialize();
  const Net net = c.net();
  switch (oracle) {
    case Oracle::kTreeValidity: {
      PathOracle paths(g);
      const RoutingTree tree = route(g, net, c.algorithm, paths);
      const std::vector<NodeId> terminals = net.terminals();
      return check_tree_validity(g, terminals, tree);
    }
    case Oracle::kApproxBound:
      return check_approximation_bound(g, net, c.algorithm, max_terminals);
    case Oracle::kMonotonic:
      return check_iterated_monotonicity(g, net);
    case Oracle::kFeasibility:
    case Oracle::kFaults:
    case Oracle::kNegotiate:
    case Oracle::kRepair:
      break;  // not tree-level oracles
  }
  CheckResult r;
  r.fail("internal: tree case routed to a non-tree oracle");
  return r;
}

/// Derives the repair case's ECO event list from the initially routed
/// state, deterministically from repair_seed. The draws skew toward killing
/// wires real nets committed (nonempty cones), with slices for untouched
/// wires (the no-op path), net removals, pin changes, and new nets.
std::vector<RepairEvent> derive_repair_events(const Device& device, const Circuit& circuit,
                                              const RoutingResult& seed_route,
                                              const CircuitCase& c) {
  Rng rng(c.repair_seed);
  std::vector<NodeId> used;
  for (const NetCommitLog& log : seed_route.commit_logs) {
    used.insert(used.end(), log.wires.begin(), log.wires.end());
  }
  std::sort(used.begin(), used.end());
  const Graph& g = device.graph();
  const NodeId first_wire = g.node_count() - device.wire_count();
  const auto random_pin = [&]() {
    return PinRef{rng.range(0, c.cols - 1), rng.range(0, c.rows - 1)};
  };

  std::vector<RepairEvent> events;
  for (int k = 0; k < c.repair_events; ++k) {
    RepairEvent ev;
    ev.budget = c.repair_budget;
    const std::uint64_t draw = rng.below(8);
    if (draw < 4 && !used.empty()) {
      // Kill one or two wires the seed route committed somewhere.
      const int kills = 1 + static_cast<int>(rng.below(2));
      for (int j = 0; j < kills; ++j) {
        ev.faults.dead_wires.push_back(used[rng.below(used.size())]);
      }
      ev.faults.normalize();
    } else if (draw == 4 && device.wire_count() > 0) {
      // Kill a random wire node — often one no net touches (no-op cones).
      ev.faults.dead_wires.push_back(
          first_wire + static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(device.wire_count()))));
    } else if (draw == 5 && !circuit.nets.empty()) {
      ev.removed.push_back(static_cast<int>(rng.below(circuit.nets.size())));
    } else if (draw == 6 && !circuit.nets.empty()) {
      const int idx = static_cast<int>(rng.below(circuit.nets.size()));
      CircuitNet net = circuit.nets[static_cast<std::size_t>(idx)];
      net.sinks.push_back(random_pin());
      ev.changed.emplace_back(idx, std::move(net));
    } else {
      CircuitNet net;
      net.source = random_pin();
      const int sinks = rng.range(1, 2);
      for (int s = 0; s < sinks; ++s) net.sinks.push_back(random_pin());
      ev.added.push_back(std::move(net));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

CheckResult run_repair_oracle(const CircuitCase& c) {
  const ArchSpec arch = c.arch();
  const Circuit circuit = c.circuit();
  const RouterOptions options = c.router_options();
  // Preliminary route purely to derive the events (the router is
  // deterministic, so check_repair's own seed route is identical).
  Device device(arch);
  if (c.faults.any()) device.install_faults(c.faults);
  RouterOptions probe_options = options;
  probe_options.record_commits = true;
  const RoutingResult seed_route = route_circuit(device, circuit, probe_options);
  const std::vector<RepairEvent> events = derive_repair_events(device, circuit, seed_route, c);
  return check_repair(arch, circuit, options, c.faults.any() ? &c.faults : nullptr, events);
}

CheckResult run_circuit_oracle(Oracle oracle, const CircuitCase& c) {
  if (oracle == Oracle::kRepair) return run_repair_oracle(c);
  const ArchSpec arch = c.arch();
  const Circuit circuit = c.circuit();
  const RouterOptions options = c.router_options();
  Device device(arch);
  if (c.faults.any()) device.install_faults(c.faults);
  const RoutingResult result = route_circuit(device, circuit, options);
  return check_routing_feasibility(arch, circuit, result, options,
                                   c.faults.any() ? &c.faults : nullptr);
}

bool is_circuit_oracle(Oracle o) {
  return o == Oracle::kFeasibility || o == Oracle::kFaults || o == Oracle::kNegotiate ||
         o == Oracle::kRepair;
}

void persist_failure(FuzzFailure& f, const FuzzOptions& options) {
  if (options.failure_dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.failure_dir, ec);
  std::ostringstream name;
  name << oracle_name(f.oracle) << "-seed" << f.case_seed << ".repro";
  const fs::path path = fs::path(options.failure_dir) / name.str();
  std::ofstream out(path);
  if (!out) return;
  out << "# fpr fuzz repro — replay with: fuzz_fpr --replay " << path.string() << "\n"
      << "oracle: " << oracle_name(f.oracle) << "\n"
      << "case_seed: " << f.case_seed << "\n"
      << "violations: " << f.message << "\n"
      << "case: " << f.repro << "\n";
  f.file = path.string();
}

}  // namespace

std::string_view oracle_name(Oracle o) {
  switch (o) {
    case Oracle::kTreeValidity: return "validity";
    case Oracle::kApproxBound: return "approx";
    case Oracle::kMonotonic: return "monotonic";
    case Oracle::kFeasibility: return "feasibility";
    case Oracle::kFaults: return "faults";
    case Oracle::kNegotiate: return "negotiate";
    case Oracle::kRepair: return "repair";
  }
  return "?";
}

std::optional<Oracle> parse_oracle(std::string_view name) {
  for (const Oracle o : kOracles) {
    if (oracle_name(o) == name) return o;
  }
  return std::nullopt;
}

std::span<const Oracle> all_oracles() { return kOracles; }

std::optional<CheckResult> run_case(Oracle oracle, const std::string& case_line,
                                    int max_terminals) {
  if (is_circuit_oracle(oracle)) {
    const auto c = CircuitCase::parse(case_line);
    if (!c) return std::nullopt;
    return run_circuit_oracle(oracle, *c);
  }
  const auto c = TreeCase::parse(case_line);
  if (!c) return std::nullopt;
  return run_tree_oracle(oracle, *c, max_terminals);
}

FuzzReport fuzz(const FuzzOptions& options) {
  FuzzReport report;
  const std::vector<Oracle> oracles =
      options.oracles.empty() ? std::vector<Oracle>(kOracles.begin(), kOracles.end())
                              : options.oracles;

  for (const Oracle oracle : oracles) {
    int oracle_failures = 0;
    int oracle_iterations = 0;
    for (int i = 0; i < options.iterations; ++i) {
      ++oracle_iterations;
      const std::uint64_t case_seed =
          mix64(mix64(options.seed, static_cast<std::uint64_t>(oracle) + 1),
                static_cast<std::uint64_t>(i));
      counters().fuzz_cases.fetch_add(1, std::memory_order_relaxed);

      CheckResult result;
      std::string case_line;
      if (is_circuit_oracle(oracle)) {
        CircuitCase c = oracle == Oracle::kFaults      ? generate_fault_circuit_case(case_seed)
                        : oracle == Oracle::kNegotiate ? generate_negotiated_circuit_case(case_seed)
                        : oracle == Oracle::kRepair    ? generate_repair_circuit_case(case_seed)
                                                       : generate_circuit_case(case_seed);
        if (!options.algorithms.empty()) {
          c.algorithm = options.algorithms[mix64(case_seed, 0x5eed) % options.algorithms.size()];
        }
        result = run_circuit_oracle(oracle, c);
        if (!result.ok()) {
          if (options.shrink) {
            c = shrink_circuit_case(c, [oracle](const CircuitCase& cand) {
              return !run_circuit_oracle(oracle, cand).ok();
            });
          }
          result = run_circuit_oracle(oracle, c);
          case_line = c.describe();
        }
      } else {
        const std::span<const Algorithm> algorithms =
            !options.algorithms.empty() ? std::span<const Algorithm>(options.algorithms)
            : oracle == Oracle::kTreeValidity
                ? std::span<const Algorithm>(kValidityAlgorithms)
                : std::span<const Algorithm>(kHeuristicAlgorithms);
        TreeCase c = generate_tree_case(case_seed, options.max_terminals, algorithms);
        result = run_tree_oracle(oracle, c, options.max_terminals);
        if (!result.ok()) {
          if (options.shrink) {
            c = shrink_tree_case(c, [&](const TreeCase& cand) {
              return !run_tree_oracle(oracle, cand, options.max_terminals).ok();
            });
          }
          result = run_tree_oracle(oracle, c, options.max_terminals);
          case_line = c.describe();
        }
      }

      ++report.iterations;
      if (result.ok()) continue;

      FuzzFailure f;
      f.oracle = oracle;
      f.case_seed = case_seed;
      f.iteration = i;
      f.message = result.message();
      f.repro = case_line;
      persist_failure(f, options);
      if (options.log != nullptr) {
        *options.log << "FAIL [" << oracle_name(oracle) << "] iteration " << i << " case_seed "
                     << case_seed << "\n  minimized: " << f.repro
                     << "\n  violations: " << f.message << "\n";
        if (!f.file.empty()) {
          *options.log << "  persisted: " << f.file << "\n";
        }
      }
      report.failures.push_back(std::move(f));
      if (++oracle_failures >= options.max_failures) {
        if (options.log != nullptr) {
          *options.log << "[" << oracle_name(oracle) << "] stopping after " << oracle_failures
                       << " failures\n";
        }
        break;
      }
    }
    if (options.log != nullptr) {
      *options.log << "[" << oracle_name(oracle) << "] " << oracle_iterations << " iterations, "
                   << oracle_failures << " failure(s)\n";
    }
  }
  return report;
}

std::optional<CheckResult> replay_file(const std::string& path, std::ostream& log) {
  std::ifstream in(path);
  if (!in) {
    log << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::optional<Oracle> oracle;
  std::string case_line;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("oracle: ", 0) == 0) {
      oracle = parse_oracle(line.substr(8));
    } else if (line.rfind("case: ", 0) == 0) {
      case_line = line.substr(6);
    }
  }
  if (!oracle || case_line.empty()) {
    log << "no oracle/case recorded in " << path << "\n";
    return std::nullopt;
  }
  const auto result = run_case(*oracle, case_line);
  if (!result) {
    log << "unparsable case line in " << path << ": " << case_line << "\n";
    return std::nullopt;
  }
  log << "[" << oracle_name(*oracle) << "] " << case_line << "\n";
  if (result->ok()) {
    log << "PASS: the case no longer violates the oracle\n";
  } else {
    log << "FAIL: " << result->message() << "\n";
  }
  return result;
}

}  // namespace fpr::check
