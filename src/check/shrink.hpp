#pragma once

#include <functional>

#include "check/generate.hpp"

namespace fpr::check {

/// Greedy test-case shrinking: repeatedly tries size-reducing mutations
/// (drop terminals, shrink the graph/grid, drop extra edges, drop nets,
/// shrink the array) and keeps a mutation iff `still_fails` confirms the
/// smaller case still violates the oracle, until no mutation sticks or the
/// re-run budget is exhausted. The returned case is the minimized repro;
/// every accepted mutation bumps counters().shrink_steps.
TreeCase shrink_tree_case(TreeCase failing, const std::function<bool(const TreeCase&)>& still_fails,
                          int max_reruns = 400);

CircuitCase shrink_circuit_case(CircuitCase failing,
                                const std::function<bool(const CircuitCase&)>& still_fails,
                                int max_reruns = 200);

}  // namespace fpr::check
