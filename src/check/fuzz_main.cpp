// fuzz_fpr — unbounded property-fuzzing driver over the src/check oracles.
//
// The bounded tier-1 versions of these runs live in tests/check/; this
// binary is the nightly-CI / local soak entry point. See TESTING.md.
//
//   fuzz_fpr --iters 5000 --seed 42                 # all oracles
//   fuzz_fpr --oracle approx --iters 20000          # one oracle, deep
//   fuzz_fpr --replay fuzz-failures/approx-seed<N>.repro
//
// Exit codes: 0 clean, 1 at least one oracle violation, 2 usage error.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: fuzz_fpr [--seed N] [--iters N] [--oracle NAME]... [--algo NAME]...\n"
        "                [--failures DIR] [--max-terminals K] [--no-shrink] [--quiet]\n"
        "       fuzz_fpr --replay FILE\n"
        "       fuzz_fpr --list\n"
        "\n"
        "oracles:";
  for (const auto o : fpr::check::all_oracles()) os << " " << fpr::check::oracle_name(o);
  os << "\n\ndefaults: --seed 1 --iters 1000 --failures fuzz-failures, all oracles,\n"
        "shrinking on. A failing case is minimized and persisted as a .repro file\n"
        "that replays byte-identically via --replay.\n";
}

}  // namespace

int main(int argc, char** argv) {
  fpr::check::FuzzOptions options;
  options.failure_dir = "fuzz-failures";
  options.log = &std::cout;
  std::string replay_path;

  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      options.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--iters") {
      options.iterations = std::atoi(need_value(i));
    } else if (arg == "--oracle") {
      const std::string name = need_value(i);
      if (name == "all") {
        options.oracles.clear();
      } else if (const auto o = fpr::check::parse_oracle(name)) {
        options.oracles.push_back(*o);
      } else {
        std::cerr << "unknown oracle '" << name << "'\n";
        usage(std::cerr);
        return 2;
      }
    } else if (arg == "--algo") {
      const std::string name = need_value(i);
      if (const auto a = fpr::check::algorithm_from_name(name)) {
        options.algorithms.push_back(*a);
      } else {
        std::cerr << "unknown algorithm '" << name << "'\n";
        return 2;
      }
    } else if (arg == "--failures") {
      options.failure_dir = need_value(i);
    } else if (arg == "--max-terminals") {
      options.max_terminals = std::atoi(need_value(i));
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--quiet") {
      options.log = nullptr;
    } else if (arg == "--replay") {
      replay_path = need_value(i);
    } else if (arg == "--list") {
      usage(std::cout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (!replay_path.empty()) {
    const auto result = fpr::check::replay_file(replay_path, std::cout);
    if (!result) return 2;
    return result->ok() ? 0 : 1;
  }

  if (options.iterations <= 0) {
    std::cerr << "--iters must be positive\n";
    return 2;
  }
  const auto report = fpr::check::fuzz(options);
  std::cout << report.iterations << " oracle invocations, " << report.failures.size()
            << " failure(s)\n";
  return report.clean() ? 0 : 1;
}
