#include "check/oracles.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arbor/exact_gsa.hpp"
#include "core/metrics.hpp"
#include "router/journal.hpp"
#include "steiner/exact_gmst.hpp"

namespace fpr::check {

std::string CheckResult::message() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

namespace {

/// Every oracle funnels its result through here so the global counters see
/// each invocation exactly once.
CheckResult finish(CheckResult r) {
  counters().checks_run.fetch_add(1, std::memory_order_relaxed);
  if (!r.ok()) counters().check_violations.fetch_add(1, std::memory_order_relaxed);
  return r;
}

std::vector<NodeId> dedupe(std::span<const NodeId> net) {
  std::vector<NodeId> t(net.begin(), net.end());
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

/// Adjacency rebuilt from the raw edge list — the independent ground truth
/// the validity oracle compares the container against.
using Adjacency = std::unordered_map<NodeId, std::vector<std::pair<EdgeId, NodeId>>>;

Adjacency build_adjacency(const Graph& g, std::span<const EdgeId> edges) {
  Adjacency adj;
  for (const EdgeId e : edges) {
    const auto& ed = g.edge(e);
    adj[ed.u].emplace_back(e, ed.v);
    adj[ed.v].emplace_back(e, ed.u);
  }
  return adj;
}

/// Weighted distances from `from` over `adj` (BFS; on a tree the unique
/// path is found regardless of visit order, and on a non-tree the first
/// arrival gives SOME path, which is all the decomposed mode needs).
std::unordered_map<NodeId, Weight> distances_in(const Adjacency& adj, const Graph& g,
                                                NodeId from) {
  std::unordered_map<NodeId, Weight> dist;
  if (adj.find(from) == adj.end()) return dist;
  dist[from] = 0;
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& [e, v] : adj.at(u)) {
      if (dist.emplace(v, dist[u] + g.edge_weight(e)).second) frontier.push_back(v);
    }
  }
  return dist;
}

bool all_terminals_reachable(const Graph& g, const Net& net) {
  PathOracle oracle(g);
  const auto& spt = oracle.from(net.source);
  return std::all_of(net.sinks.begin(), net.sinks.end(),
                     [&](NodeId s) { return spt.reached(s); });
}

}  // namespace

CheckResult check_tree_validity(const Graph& g, std::span<const NodeId> terminals,
                                const RoutingTree& tree) {
  CheckResult r;
  const auto& edges = tree.edges();

  bool edges_ok = true;
  for (const EdgeId e : edges) {
    if (e < 0 || e >= g.edge_count()) {
      std::ostringstream os;
      os << "edge id " << e << " out of range (edge_count " << g.edge_count() << ")";
      r.fail(os.str());
      edges_ok = false;
    }
  }
  if (!edges_ok) return finish(std::move(r));

  for (const EdgeId e : edges) {
    if (!g.edge_usable(e)) {
      std::ostringstream os;
      os << "edge " << e << " is not usable (inactive edge or endpoint)";
      r.fail(os.str());
    }
  }
  if (std::unordered_set<EdgeId>(edges.begin(), edges.end()).size() != edges.size()) {
    r.fail("edge set contains duplicates (container failed to dedupe)");
  }

  const Adjacency adj = build_adjacency(g, edges);

  // Structure: a connected edge set with |V| == |E| + 1 is a tree.
  bool structurally_tree = true;
  if (!edges.empty()) {
    if (adj.size() != edges.size() + 1) {
      std::ostringstream os;
      os << "touches " << adj.size() << " nodes with " << edges.size()
         << " edges (tree needs exactly edges + 1): cycle or disconnection";
      r.fail(os.str());
      structurally_tree = false;
    }
    const auto reach = distances_in(adj, g, adj.begin()->first);
    if (reach.size() != adj.size()) {
      std::ostringstream os;
      os << "edge set is disconnected (" << reach.size() << " of " << adj.size()
         << " touched nodes reachable)";
      r.fail(os.str());
      structurally_tree = false;
    }
  }

  // Spanning: every terminal touched (a lone terminal tolerates an empty
  // tree), mutually connected via the structure check above.
  bool spans = true;
  if (terminals.size() == 1) {
    spans = edges.empty() || adj.count(terminals[0]) > 0;
  } else {
    for (const NodeId t : terminals) spans = spans && adj.count(t) > 0;
  }
  if (!spans) r.fail("tree does not span its terminals");

  // Container bookkeeping vs. scratch recomputation.
  Weight cost = 0;
  for (const EdgeId e : edges) cost += g.edge_weight(e);
  if (!weight_eq(tree.cost(), cost)) {
    std::ostringstream os;
    os << "cost() reports " << tree.cost() << ", recomputed " << cost;
    r.fail(os.str());
  }
  if (tree.is_tree() != structurally_tree) {
    r.fail("is_tree() disagrees with scratch recomputation");
  }
  if (tree.spans(terminals) != (spans && structurally_tree)) {
    // spans() only needs terminal connectivity, so on a valid tree the
    // verdicts must coincide; report a disagreement only when the structure
    // is otherwise sound (a cyclic edge set can legitimately differ).
    if (structurally_tree) r.fail("spans() disagrees with scratch recomputation");
  }

  if (structurally_tree && spans && !terminals.empty()) {
    const auto dist = distances_in(adj, g, terminals[0]);
    Weight worst = 0;
    for (std::size_t i = 1; i < terminals.size(); ++i) {
      const auto it = dist.find(terminals[i]);
      if (it == dist.end()) continue;  // disconnection already reported
      worst = std::max(worst, it->second);
      const Weight reported = tree.path_length(terminals[0], terminals[i]);
      if (!weight_eq(reported, it->second)) {
        std::ostringstream os;
        os << "path_length to terminal " << terminals[i] << " reports " << reported
           << ", recomputed " << it->second;
        r.fail(os.str());
      }
    }
    const Weight reported_max =
        tree.max_path_length(terminals[0], terminals.subspan(1));
    if (terminals.size() >= 2 && !weight_eq(reported_max, worst)) {
      std::ostringstream os;
      os << "max_path_length reports " << reported_max << ", recomputed " << worst;
      r.fail(os.str());
    }
  }
  return finish(std::move(r));
}

CheckResult check_approximation_bound(const Graph& g, const Net& net, Algorithm algorithm,
                                      int max_terminals) {
  CheckResult r;
  const std::vector<NodeId> terminals = net.terminals();
  const std::vector<NodeId> distinct = dedupe(terminals);
  if (distinct.size() < 2 || static_cast<int>(distinct.size()) > max_terminals) {
    return finish(std::move(r));  // out of the oracle's scope
  }
  if (!all_terminals_reachable(g, net)) return finish(std::move(r));  // unroutable net

  PathOracle oracle(g);
  const RoutingTree tree = route(g, net, algorithm, oracle);
  r.merge(check_tree_validity(g, terminals, tree));
  if (!r.ok()) return finish(std::move(r));
  const Weight cost = tree.cost();

  if (is_arborescence_algorithm(algorithm)) {
    // The arborescence guarantee: every sink at exact graph distance.
    for (const NodeId s : net.sinks) {
      const Weight in_tree = tree.path_length(net.source, s);
      const Weight shortest = oracle.distance(net.source, s);
      if (!weight_eq(in_tree, shortest)) {
        std::ostringstream os;
        os << algorithm_name(algorithm) << " tree path to sink " << s << " costs " << in_tree
           << ", graph shortest path is " << shortest;
        r.fail(os.str());
      }
    }
    if (const auto opt = exact_gsa(g, terminals, oracle, max_terminals)) {
      if (weight_lt(cost, opt->cost())) {
        std::ostringstream os;
        os << algorithm_name(algorithm) << " cost " << cost
           << " beats the exact GSA optimum " << opt->cost() << " (exact solver broken?)";
        r.fail(os.str());
      }
    }
    return finish(std::move(r));
  }

  const auto opt = exact_gmst(g, distinct, oracle, max_terminals);
  if (!opt) {
    r.fail("exact GMST solver declined a connected in-scope net");
    return finish(std::move(r));
  }
  r.merge(check_tree_validity(g, distinct, *opt));
  const Weight opt_cost = opt->cost();
  const double factor =
      (algorithm == Algorithm::kZel || algorithm == Algorithm::kIzel) ? 11.0 / 6.0 : 2.0;
  if (weight_lt(factor * opt_cost, cost)) {
    std::ostringstream os;
    os << algorithm_name(algorithm) << " cost " << cost << " exceeds " << factor << " * OPT ("
       << opt_cost << ") — approximation bound violated";
    r.fail(os.str());
  }
  if (weight_lt(cost, opt_cost)) {
    std::ostringstream os;
    os << algorithm_name(algorithm) << " cost " << cost << " beats the exact optimum "
       << opt_cost << " (exact solver broken?)";
    r.fail(os.str());
  }
  return finish(std::move(r));
}

CheckResult check_iterated_monotonicity(const Graph& g, const Net& net) {
  CheckResult r;
  const std::vector<NodeId> distinct = dedupe(net.terminals());
  if (distinct.size() < 2) return finish(std::move(r));
  if (!all_terminals_reachable(g, net)) return finish(std::move(r));

  const std::pair<Algorithm, Algorithm> pairs[] = {
      {Algorithm::kKmb, Algorithm::kIkmb},
      {Algorithm::kZel, Algorithm::kIzel},
      {Algorithm::kDom, Algorithm::kIdom},
  };
  for (const auto& [base_algo, iterated_algo] : pairs) {
    PathOracle oracle(g);
    const RoutingTree base = route(g, net, base_algo, oracle);
    const RoutingTree iterated = route(g, net, iterated_algo, oracle);
    if (!base.spans(distinct) || !iterated.spans(distinct)) {
      std::ostringstream os;
      os << algorithm_name(base_algo) << "/" << algorithm_name(iterated_algo)
         << " failed to span a routable net";
      r.fail(os.str());
      continue;
    }
    if (weight_lt(base.cost(), iterated.cost())) {
      std::ostringstream os;
      os << algorithm_name(iterated_algo) << " cost " << iterated.cost() << " exceeds its base "
         << algorithm_name(base_algo) << " cost " << base.cost()
         << " — iterated construction is not monotone";
      r.fail(os.str());
    }
  }
  return finish(std::move(r));
}

CheckResult check_routing_feasibility(const ArchSpec& arch, const Circuit& circuit,
                                      const RoutingResult& result,
                                      const RouterOptions& options,
                                      const FaultSpec* faults,
                                      const FaultEvent* events) {
  CheckResult r;
  if (result.nets.size() != circuit.nets.size()) {
    std::ostringstream os;
    os << "result records " << result.nets.size() << " nets, circuit has "
       << circuit.nets.size();
    r.fail(os.str());
    return finish(std::move(r));
  }

  Device device(arch);
  if (faults != nullptr && faults->any()) device.install_faults(*faults);
  if (events != nullptr && !events->empty()) device.apply_fault_event(*events);
  const FaultModel* fault_model = device.faults();
  const bool any_events = events != nullptr && !events->empty();
  const Graph& g = device.graph();
  std::unordered_map<NodeId, std::size_t> wire_owner;  // wire node -> net index
  std::map<std::tuple<int, int, int>, int> tile_tracks_used;  // (dir, x, y) -> wires
  long total_wires = 0;
  long total_physical_wirelength = 0;
  long total_physical_max_path = 0;

  for (std::size_t i = 0; i < result.nets.size(); ++i) {
    const NetRouteResult& nr = result.nets[i];
    const Net net = to_graph_net(device, circuit.nets[i]);
    std::ostringstream where;
    where << "net " << i << ": ";

    if (net.sinks.empty()) {  // all pins on one block
      if (!nr.routed()) r.fail(where.str() + "single-block net not marked routed");
      if (!nr.edges.empty()) r.fail(where.str() + "single-block net holds edges");
      continue;
    }
    if (!nr.routed()) {
      if (result.success) r.fail(where.str() + "unrouted although result.success");
      continue;
    }

    bool edges_ok = true;
    for (const EdgeId e : nr.edges) {
      if (e < 0 || e >= g.edge_count()) {
        std::ostringstream os;
        os << where.str() << "edge id " << e << " outside the device graph";
        r.fail(os.str());
        edges_ok = false;
      }
    }
    if (!edges_ok) continue;

    // Defect avoidance: a routed net must not touch any injected fault —
    // neither the installed distribution nor the live event overlay. (Tree
    // validity below also rejects unusable edges, but these messages name
    // the defect explicitly.)
    if (fault_model != nullptr || any_events) {
      for (const EdgeId e : nr.edges) {
        if ((fault_model != nullptr && fault_model->edge_faulted(e)) ||
            (any_events && events->edge_faulted(e))) {
          std::ostringstream os;
          os << where.str() << "route traverses faulted edge " << e;
          r.fail(os.str());
        }
        for (const NodeId v : {g.edge(e).u, g.edge(e).v}) {
          if (device.is_wire(v) && ((fault_model != nullptr && fault_model->wire_faulted(v)) ||
                                    (any_events && events->wire_faulted(v)))) {
            std::ostringstream os;
            os << where.str() << "route occupies faulted wire node " << v;
            r.fail(os.str());
          }
        }
      }
    }

    const std::vector<NodeId> terminals = net.terminals();
    const RoutingTree tree(g, nr.edges);
    if (options.decompose_two_pin) {
      // The baseline's union of two-pin paths need not be a tree; only
      // pin connectivity is promised.
      if (!tree.spans(terminals)) r.fail(where.str() + "source and sinks not connected");
    } else {
      CheckResult validity = check_tree_validity(g, terminals, tree);
      for (auto& v : validity.violations) r.fail(where.str() + v);
    }

    // Wire exclusivity + channel capacity, replayed on the fresh device.
    int wires = 0;
    for (const NodeId v : tree.nodes()) {
      if (!device.is_wire(v)) continue;
      ++wires;
      const auto [it, fresh] = wire_owner.emplace(v, i);
      if (!fresh && it->second != i) {
        std::ostringstream os;
        os << where.str() << "wire node " << v << " already consumed by net " << it->second;
        r.fail(os.str());
        continue;
      }
      const Device::WireRef ref = device.wire_ref(v);
      if (ref.track < 0 || ref.track >= arch.channel_width) {
        std::ostringstream os;
        os << where.str() << "wire node " << v << " decodes to track " << ref.track
           << " outside channel width " << arch.channel_width;
        r.fail(os.str());
      }
      if (fresh) {
        int& used = tile_tracks_used[{static_cast<int>(ref.dir), ref.x, ref.y}];
        if (++used > arch.channel_width) {
          std::ostringstream os;
          os << where.str() << "channel tile (" << ref.x << ", " << ref.y << ") uses " << used
             << " tracks, capacity " << arch.channel_width;
          r.fail(os.str());
        }
      }
    }

    if (wires != nr.wire_nodes_used) {
      std::ostringstream os;
      os << where.str() << "wire_nodes_used records " << nr.wire_nodes_used << ", replay found "
         << wires;
      r.fail(os.str());
    }
    if (static_cast<int>(nr.edges.size()) != nr.physical_wirelength) {
      std::ostringstream os;
      os << where.str() << "physical_wirelength records " << nr.physical_wirelength << " for "
         << nr.edges.size() << " edges";
      r.fail(os.str());
    }
    const int replay_max_path = tree.max_path_edge_count(net.source, net.sinks);
    if (replay_max_path < 0) {
      r.fail(where.str() + "some sink unreachable inside the committed edge set");
    } else if (options.decompose_two_pin ? replay_max_path > nr.physical_max_path
                                         : replay_max_path != nr.physical_max_path) {
      // Decomposed unions can offer hop shortcuts through shared block
      // nodes, so the replayed BFS bound may only be tighter, never looser.
      std::ostringstream os;
      os << where.str() << "physical_max_path records " << nr.physical_max_path
         << ", replay found " << replay_max_path;
      r.fail(os.str());
    }
    total_wires += wires;
    total_physical_wirelength += nr.physical_wirelength;
    total_physical_max_path += nr.physical_max_path;
  }

  if (result.success && result.failed_nets != 0) {
    r.fail("result.success with nonzero failed_nets");
  }

  // Degradation-statistics consistency: the summary counters must be exact
  // recounts of the per-net statuses, and budget aborts imply the run-level
  // budget_exhausted flag (and vice versa).
  int blocked = 0;
  int aborted = 0;
  int rerouted = 0;
  for (const NetRouteResult& nr : result.nets) {
    blocked += nr.status == NetStatus::kBlockedByFault ? 1 : 0;
    aborted += nr.status == NetStatus::kAbortedBudget ? 1 : 0;
    rerouted += nr.routed() && nr.retries > 0 ? 1 : 0;
  }
  if (blocked != result.nets_blocked_by_fault) {
    std::ostringstream os;
    os << "nets_blocked_by_fault records " << result.nets_blocked_by_fault << ", statuses say "
       << blocked;
    r.fail(os.str());
  }
  if (aborted != result.nets_aborted_budget) {
    std::ostringstream os;
    os << "nets_aborted_budget records " << result.nets_aborted_budget << ", statuses say "
       << aborted;
    r.fail(os.str());
  }
  if (rerouted != result.nets_rerouted_around_faults) {
    std::ostringstream os;
    os << "nets_rerouted_around_faults records " << result.nets_rerouted_around_faults
       << ", statuses say " << rerouted;
    r.fail(os.str());
  }
  if (result.budget_exhausted != (aborted > 0)) {
    std::ostringstream os;
    os << "budget_exhausted=" << result.budget_exhausted << " inconsistent with " << aborted
       << " kAbortedBudget nets";
    r.fail(os.str());
  }
  if (blocked > 0 && (faults == nullptr || !faults->any()) && !any_events) {
    r.fail("kBlockedByFault nets reported on a device with no installed faults");
  }

  // Mode contracts. Negotiated runs carry the convergence record (DESIGN.md
  // §13) and never engage paper-mode retry machinery; paper runs must not
  // leak negotiated-mode fields.
  if (options.mode == RouterMode::kNegotiated) {
    if (result.overflow_trend.empty()) {
      r.fail("negotiated run with an empty overflow_trend");
    } else {
      if (static_cast<int>(result.overflow_trend.size()) != result.passes) {
        std::ostringstream os;
        os << "overflow_trend has " << result.overflow_trend.size() << " entries for "
           << result.passes << " passes";
        r.fail(os.str());
      }
      for (std::size_t i = 1; i < result.overflow_trend.size(); ++i) {
        if (result.overflow_trend[i] > result.overflow_trend[i - 1]) {
          std::ostringstream os;
          os << "overflow_trend not monotone non-increasing at pass " << i + 1 << " ("
             << result.overflow_trend[i - 1] << " -> " << result.overflow_trend[i] << ")";
          r.fail(os.str());
          break;
        }
      }
      if (result.overflow_trend.back() < 0) {
        r.fail("overflow_trend ends negative");
      }
      if (result.success && result.overflow_trend.back() != 0) {
        std::ostringstream os;
        os << "result.success although the overflow trend ends at "
           << result.overflow_trend.back();
        r.fail(os.str());
      }
    }
    if (result.pattern_accepts > result.pattern_attempts || result.pattern_attempts < 0) {
      std::ostringstream os;
      os << "pattern accounting inconsistent: " << result.pattern_accepts << " accepts of "
         << result.pattern_attempts << " attempts";
      r.fail(os.str());
    }
    if (rerouted != 0) {
      r.fail("negotiated mode reports fault-retry reroutes (paper-mode machinery)");
    }
    for (std::size_t i = 0; i < result.nets.size(); ++i) {
      if (result.nets[i].retries != 0) {
        std::ostringstream os;
        os << "net " << i << ": nonzero retries in negotiated mode";
        r.fail(os.str());
        break;
      }
    }
  } else {
    if (!result.overflow_trend.empty()) {
      r.fail("paper-mode run carries a negotiated overflow_trend");
    }
    if (result.pattern_attempts != 0 || result.pattern_accepts != 0) {
      r.fail("paper-mode run carries pattern-probe counts");
    }
  }

  if (total_wires != result.total_wire_nodes) {
    std::ostringstream os;
    os << "total_wire_nodes records " << result.total_wire_nodes << ", replay found "
       << total_wires;
    r.fail(os.str());
  }
  if (total_physical_wirelength != result.total_physical_wirelength) {
    std::ostringstream os;
    os << "total_physical_wirelength records " << result.total_physical_wirelength
       << ", replay found " << total_physical_wirelength;
    r.fail(os.str());
  }
  if (total_physical_max_path != result.total_physical_max_path) {
    std::ostringstream os;
    os << "total_physical_max_path records " << result.total_physical_max_path
       << ", replay found " << total_physical_max_path;
    r.fail(os.str());
  }
  return finish(std::move(r));
}

CheckResult check_repair(const ArchSpec& arch, const Circuit& seed,
                         const RouterOptions& options, const FaultSpec* faults,
                         const std::vector<RepairEvent>& events) {
  CheckResult r;
  RouterOptions opts = options;
  opts.record_commits = true;

  Device device(arch);
  if (faults != nullptr && faults->any()) device.install_faults(*faults);
  Circuit circuit = seed;
  RoutingResult result = route_circuit(device, circuit, opts);

  FaultEvent cumulative;
  RepairJournal journal;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const RepairEvent& event = events[k];
    std::ostringstream where;
    where << "event " << k << ": ";

    // Independent cone re-derivation against the PRE-event state. This is
    // deliberately NOT a call into repair_cone: a cone bug in production
    // code must disagree with this recomputation, not cancel against it.
    std::vector<char> expected_cone(result.nets.size() + event.added.size(), 0);
    for (std::size_t i = 0; i < result.nets.size(); ++i) {
      for (const NodeId w : result.commit_logs[i].wires) {
        if (event.faults.wire_faulted(w)) {
          expected_cone[i] = 1;
          break;
        }
      }
      if (expected_cone[i] == 0 && !event.faults.dead_edges.empty()) {
        for (const EdgeId e : result.nets[i].edges) {
          if (event.faults.edge_faulted(e)) {
            expected_cone[i] = 1;
            break;
          }
        }
      }
    }
    if (!event.faults.dead_wires.empty()) {
      std::unordered_map<NodeId, std::size_t> owner;
      for (std::size_t i = 0; i < result.commit_logs.size(); ++i) {
        for (const NodeId w : result.commit_logs[i].wires) owner.emplace(w, i);
      }
      for (const NodeId w : event.faults.dead_wires) {
        if (!device.is_wire(w)) continue;
        device.for_each_tile_sibling(w, [&](NodeId s) {
          const auto it = owner.find(s);
          if (it != owner.end()) expected_cone[it->second] = 1;
        });
      }
    }
    for (const auto& [idx, net] : event.changed) {
      if (idx >= 0 && static_cast<std::size_t>(idx) < expected_cone.size()) {
        expected_cone[static_cast<std::size_t>(idx)] = 1;
      }
    }
    for (const int idx : event.removed) {
      if (idx >= 0 && static_cast<std::size_t>(idx) < expected_cone.size()) {
        expected_cone[static_cast<std::size_t>(idx)] = 1;
      }
    }
    for (std::size_t a = 0; a < event.added.size(); ++a) {
      expected_cone[result.nets.size() + a] = 1;
    }

    const RoutingResult before = result;  // snapshot for byte-stability

    const RepairOutcome outcome = repair_route(device, circuit, result, event, opts);
    journal.append(event, outcome);
    cumulative.merge(event.faults);

    int expected_count = 0;
    for (const char flag : expected_cone) expected_count += flag;
    if (outcome.cone_nets != expected_count) {
      std::ostringstream os;
      os << where.str() << "cone_nets reports " << outcome.cone_nets
         << ", oracle re-derived " << expected_count;
      r.fail(os.str());
    }
    if (outcome.repaired + outcome.degraded + outcome.aborted != outcome.cone_nets) {
      std::ostringstream os;
      os << where.str() << "repaired+degraded+aborted = "
         << outcome.repaired + outcome.degraded + outcome.aborted << " does not partition cone "
         << outcome.cone_nets;
      r.fail(os.str());
    }

    // Byte-stability of the cone complement: an event must not perturb any
    // net it did not claim to touch.
    for (std::size_t i = 0; i < before.nets.size(); ++i) {
      if (expected_cone[i] != 0) continue;
      if (!(result.nets[i] == before.nets[i])) {
        std::ostringstream os;
        os << where.str() << "net " << i << " outside the cone changed its record";
        r.fail(os.str());
      }
      if (!(result.commit_logs[i] == before.commit_logs[i])) {
        std::ostringstream os;
        os << where.str() << "net " << i << " outside the cone changed its commit log";
        r.fail(os.str());
      }
    }
    if (!r.ok()) break;  // later events would re-report consequences of this one
  }

  // Final-state feasibility on the mutated device: the repaired result must
  // pass everything a from-scratch route of the final circuit would.
  {
    CheckResult feas = check_routing_feasibility(arch, circuit, result, opts, faults,
                                                 cumulative.empty() ? nullptr : &cumulative);
    for (auto& v : feas.violations) r.fail("final state: " + v);
  }

  // Rip-up arithmetic from scratch: every edge weight equals its pristine
  // base plus congestion_penalty per recorded application, and every wire's
  // activity/ownership matches the commit logs plus the dead sets.
  {
    const Graph& g = device.graph();
    Device pristine(arch);
    std::vector<int> applications(static_cast<std::size_t>(g.edge_count()), 0);
    std::vector<std::int32_t> owner(static_cast<std::size_t>(g.node_count()), -1);
    for (std::size_t i = 0; i < result.commit_logs.size(); ++i) {
      const NetCommitLog& log = result.commit_logs[i];
      if (!result.nets[i].routed() && !(log.wires.empty() && log.penalized.empty())) {
        std::ostringstream os;
        os << "net " << i << ": unrouted net holds a non-empty commit log";
        r.fail(os.str());
      }
      for (const EdgeId e : log.penalized) ++applications[static_cast<std::size_t>(e)];
      for (const NodeId w : log.wires) {
        if (owner[static_cast<std::size_t>(w)] >= 0) {
          std::ostringstream os;
          os << "wire node " << w << " appears in the commit logs of nets "
             << owner[static_cast<std::size_t>(w)] << " and " << i;
          r.fail(os.str());
        }
        owner[static_cast<std::size_t>(w)] = static_cast<std::int32_t>(i);
      }
    }
    int weight_mismatches = 0;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Weight expected = pristine.graph().edge_weight(e) +
                              opts.congestion_penalty * applications[static_cast<std::size_t>(e)];
      if (!weight_eq(g.edge_weight(e), expected) && ++weight_mismatches <= 3) {
        std::ostringstream os;
        os << "edge " << e << " weight " << g.edge_weight(e) << ", re-derived " << expected
           << " (base + penalty x " << applications[static_cast<std::size_t>(e)] << ")";
        r.fail(os.str());
      }
    }
    const FaultModel* fault_model = device.faults();
    int activity_mismatches = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!device.is_wire(v)) continue;
      const bool expect_dead = owner[static_cast<std::size_t>(v)] >= 0 ||
                               (fault_model != nullptr && fault_model->wire_faulted(v)) ||
                               cumulative.wire_faulted(v);
      if (g.node_active(v) == expect_dead && ++activity_mismatches <= 3) {
        std::ostringstream os;
        os << "wire node " << v << (expect_dead ? " active" : " inactive")
           << " although the commit logs and dead sets say otherwise";
        r.fail(os.str());
      }
    }
  }

  // Journal determinism: text round-trip, then full replay from the seed —
  // (seed circuit + journal) must reconstruct this exact routed state.
  {
    const auto parsed = RepairJournal::parse(journal.serialize());
    if (!parsed.has_value() || !(*parsed == journal)) {
      r.fail("journal serialize/parse round-trip diverged");
    }
    Device replay_device(arch);
    if (faults != nullptr && faults->any()) replay_device.install_faults(*faults);
    const JournalReplayResult replay = replay_journal(replay_device, seed, options, journal);
    if (!replay.ok) {
      r.fail("journal replay: " + replay.error);
    }
    if (replay.circuit.nets != circuit.nets) {
      r.fail("journal replay reconstructed a different circuit");
    }
    if (replay.result.nets.size() != result.nets.size() ||
        replay.result.commit_logs.size() != result.commit_logs.size()) {
      r.fail("journal replay reconstructed a different net count");
    } else {
      for (std::size_t i = 0; i < result.nets.size(); ++i) {
        if (!(replay.result.nets[i] == result.nets[i]) ||
            !(replay.result.commit_logs[i] == result.commit_logs[i])) {
          std::ostringstream os;
          os << "journal replay diverged at net " << i << " (record or commit log)";
          r.fail(os.str());
          break;
        }
      }
      if (replay.result.net_order != result.net_order) {
        r.fail("journal replay reconstructed a different net order");
      }
    }
  }
  return finish(std::move(r));
}

}  // namespace fpr::check
