#include "check/shrink.hpp"

#include <algorithm>

#include "core/metrics.hpp"

namespace fpr::check {

namespace {

/// Re-fits the terminal list to the case's (possibly shrunken) node space:
/// random-graph ids are folded modulo the node count, grid ids are re-mapped
/// through their OLD coordinates clamped into the new grid. Returns false
/// when fewer than two distinct terminals survive.
bool refit_terminals(TreeCase& c, int old_width) {
  const int node_count = c.node_count();
  if (node_count < 2) return false;
  std::vector<NodeId> fitted;
  for (NodeId t : c.terminals) {
    if (c.substrate == TreeCase::Substrate::kGrid) {
      const int x = std::min(static_cast<int>(t) % old_width, c.grid_width - 1);
      const int y = std::min(static_cast<int>(t) / old_width, c.grid_height - 1);
      t = static_cast<NodeId>(y * c.grid_width + x);
    } else {
      t = static_cast<NodeId>(t % node_count);
    }
    if (std::find(fitted.begin(), fitted.end(), t) == fitted.end()) fitted.push_back(t);
  }
  if (fitted.size() < 2) return false;
  c.terminals = std::move(fitted);
  return true;
}

/// All one-step shrink candidates of `c`, most aggressive first.
std::vector<TreeCase> tree_candidates(const TreeCase& c) {
  std::vector<TreeCase> out;
  const auto push = [&](TreeCase candidate, int old_width) {
    if (refit_terminals(candidate, old_width)) out.push_back(std::move(candidate));
  };

  // Canonicalize terminals to the lowest node ids first: dimension shrinks
  // re-fit terminals through their old coordinates, and high-id terminals
  // collide under that re-fit, blocking further substrate reduction.
  {
    std::vector<NodeId> low(c.terminals.size());
    for (std::size_t i = 0; i < low.size(); ++i) low[i] = static_cast<NodeId>(i);
    if (low != c.terminals && static_cast<int>(low.size()) <= c.node_count()) {
      TreeCase canonical = c;
      canonical.terminals = std::move(low);
      push(std::move(canonical), c.grid_width);
    }
  }

  if (c.terminals.size() > 2) {
    TreeCase two = c;
    two.terminals.resize(2);
    push(std::move(two), c.grid_width);
    TreeCase half = c;
    half.terminals.resize(std::max<std::size_t>(2, c.terminals.size() / 2));
    push(std::move(half), c.grid_width);
    for (std::size_t i = c.terminals.size(); i-- > 0;) {
      TreeCase drop = c;
      drop.terminals.erase(drop.terminals.begin() + static_cast<std::ptrdiff_t>(i));
      push(std::move(drop), c.grid_width);
    }
  }

  if (c.substrate == TreeCase::Substrate::kRandomGraph) {
    if (c.nodes > 2) {
      TreeCase halved = c;
      halved.nodes = std::max(2, c.nodes / 2);
      push(std::move(halved), c.grid_width);
      TreeCase dec = c;
      dec.nodes = c.nodes - 1;
      push(std::move(dec), c.grid_width);
    }
    if (c.extra_edges > 0) {
      TreeCase none = c;
      none.extra_edges = 0;
      push(std::move(none), c.grid_width);
      TreeCase halved = c;
      halved.extra_edges = c.extra_edges / 2;
      push(std::move(halved), c.grid_width);
    }
  } else {
    if (c.grid_width > 2) {
      TreeCase narrower = c;
      narrower.grid_width = c.grid_width - 1;
      push(std::move(narrower), c.grid_width);
    }
    if (c.grid_height > 2) {
      TreeCase shorter = c;
      shorter.grid_height = c.grid_height - 1;
      push(std::move(shorter), c.grid_width);
    }
  }
  if (c.max_weight > 1) {
    TreeCase flatter = c;
    flatter.max_weight = std::max(1, c.max_weight / 2);
    push(std::move(flatter), c.grid_width);
  }
  return out;
}

std::vector<CircuitCase> circuit_candidates(const CircuitCase& c) {
  std::vector<CircuitCase> out;
  const auto push = [&](CircuitCase candidate) {
    if (candidate.rows >= 2 && candidate.cols >= 2 && candidate.width >= 2 &&
        candidate.nets_2_3 + candidate.nets_4_10 + candidate.nets_over_10 >= 1) {
      out.push_back(std::move(candidate));
    }
  };
  if (c.nets_over_10 > 0) {
    CircuitCase m = c;
    m.nets_over_10 = 0;
    push(std::move(m));
  }
  if (c.nets_4_10 > 0) {
    CircuitCase m = c;
    m.nets_4_10 = 0;
    push(std::move(m));
    m = c;
    m.nets_4_10 = c.nets_4_10 - 1;
    push(std::move(m));
  }
  if (c.nets_2_3 > 0) {
    CircuitCase m = c;
    m.nets_2_3 = std::max(0, c.nets_2_3 / 2);
    push(std::move(m));
    m = c;
    m.nets_2_3 = c.nets_2_3 - 1;
    push(std::move(m));
  }
  if (c.rows > 2) {
    CircuitCase m = c;
    m.rows = c.rows - 1;
    push(std::move(m));
  }
  if (c.cols > 2) {
    CircuitCase m = c;
    m.cols = c.cols - 1;
    push(std::move(m));
  }
  if (c.width > 2) {
    CircuitCase m = c;
    m.width = c.width - 1;
    push(std::move(m));
  }
  // Fault-dimension moves: drop whole defect categories first (most
  // aggressive), then halve rates; lift the budget last. A case that still
  // fails with a category zeroed pins the bug to the remaining knobs.
  const auto with_faults = [&](auto mutate) {
    CircuitCase m = c;
    mutate(m);
    push(std::move(m));
  };
  if (c.faults.wire_permille > 0) {
    with_faults([](CircuitCase& m) { m.faults.wire_permille = 0; });
    with_faults([](CircuitCase& m) { m.faults.wire_permille /= 2; });
  }
  if (c.faults.switch_permille > 0) {
    with_faults([](CircuitCase& m) { m.faults.switch_permille = 0; });
    with_faults([](CircuitCase& m) { m.faults.switch_permille /= 2; });
  }
  if (c.faults.pin_permille > 0) {
    with_faults([](CircuitCase& m) { m.faults.pin_permille = 0; });
    with_faults([](CircuitCase& m) { m.faults.pin_permille /= 2; });
  }
  if (c.faults.clusters > 0) {
    with_faults([](CircuitCase& m) { m.faults.clusters = 0; });
  }
  if (c.node_budget > 0) {
    with_faults([](CircuitCase& m) { m.node_budget = 0; });  // 0 = unlimited
  }
  if (c.negotiated) {
    // Mode move: a failure that persists in paper mode exonerates the
    // negotiation loop and pins the bug below the mode dispatch.
    with_faults([](CircuitCase& m) { m.negotiated = false; });
  }
  // Repair-dimension moves: drop trailing events (the derivation consumes
  // its rng stream per event, so a shorter list is a strict prefix of the
  // same events), then lift the per-event budget.
  if (c.repair_events > 1) {
    with_faults([](CircuitCase& m) { m.repair_events = 1; });
    with_faults([](CircuitCase& m) { m.repair_events /= 2; });
    with_faults([](CircuitCase& m) { m.repair_events -= 1; });
  }
  if (c.repair_budget > 0) {
    with_faults([](CircuitCase& m) { m.repair_budget = 0; });  // 0 = unlimited
  }
  return out;
}

/// The shared greedy loop: accept the first candidate that still fails,
/// restart from it; stop at a fixpoint or when the re-run budget runs out.
template <typename Case, typename Candidates, typename Fails>
Case greedy_shrink(Case current, const Candidates& candidates_of, const Fails& still_fails,
                   int max_reruns) {
  int reruns = 0;
  bool improved = true;
  while (improved && reruns < max_reruns) {
    improved = false;
    for (const Case& candidate : candidates_of(current)) {
      if (reruns >= max_reruns) break;
      ++reruns;
      if (still_fails(candidate)) {
        current = candidate;
        counters().shrink_steps.fetch_add(1, std::memory_order_relaxed);
        improved = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace

TreeCase shrink_tree_case(TreeCase failing, const std::function<bool(const TreeCase&)>& still_fails,
                          int max_reruns) {
  return greedy_shrink(std::move(failing), tree_candidates, still_fails, max_reruns);
}

CircuitCase shrink_circuit_case(CircuitCase failing,
                                const std::function<bool(const CircuitCase&)>& still_fails,
                                int max_reruns) {
  return greedy_shrink(std::move(failing), circuit_candidates, still_fails, max_reruns);
}

}  // namespace fpr::check
