#pragma once

#include <string>
#include <vector>

namespace fpr::check {

/// Outcome of one oracle invocation: empty = the invariant held.
/// Oracles accumulate every violation they can see (not just the first) so
/// a fuzz failure report names everything wrong with the instance at once.
struct CheckResult {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void fail(std::string what) { violations.push_back(std::move(what)); }
  void merge(const CheckResult& other) {
    violations.insert(violations.end(), other.violations.begin(), other.violations.end());
  }

  /// All violations joined with "; " (empty string when ok).
  std::string message() const;
};

}  // namespace fpr::check
