#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fpr {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto print_rule = [&] {
    for (const std::size_t w : widths) out << "+" << std::string(w + 2, '-');
    out << "+\n";
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
  return out.str();
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  // Normalize negative zero for table readability.
  if (s.find_first_not_of("-0.") == std::string::npos && s.front() == '-') s.erase(0, 1);
  return s;
}

}  // namespace fpr
