#pragma once

#include <cmath>
#include <cstdint>

namespace fpr {

/// Streaming mean/min/max/stddev accumulator (Welford), used by the
/// experiment drivers to aggregate per-net percentages exactly the way
/// Table 1 averages them.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  std::int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const { return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1); }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace fpr
