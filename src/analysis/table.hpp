#pragma once

#include <string>
#include <vector>

namespace fpr {

/// Fixed-width ASCII table renderer shared by every bench binary, so all
/// reproduced tables print in one consistent format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next row.
  void add_separator();

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Fixed-precision double ("12.34"); trims "-0.00" to "0.00".
std::string format_fixed(double value, int precision = 2);

}  // namespace fpr
