#include "analysis/stats.hpp"

// RunningStat is header-only; this translation unit anchors the library.
