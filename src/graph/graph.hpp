#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace fpr {

/// Weighted undirected graph with removable (deactivatable) nodes and edges
/// and mutable edge weights.
///
/// This is the routing-graph substrate of the paper (Section 2, Figure 2):
/// the FPGA router commits wire segments to nets by deactivating their nodes,
/// and models congestion by raising edge weights, so both operations are
/// first-class and O(1). Deactivated elements keep their ids; traversals
/// (Dijkstra, MST, ...) skip them.
///
/// Every mutation bumps `revision()`, which shortest-path caches use for
/// invalidation.
class Graph {
 public:
  struct Edge {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    Weight weight = 0;
    bool active = true;
  };

  Graph() = default;
  explicit Graph(NodeId node_count);

  /// Appends `count` fresh nodes; returns the id of the first one.
  NodeId add_nodes(NodeId count);

  /// Adds an undirected edge {u, v} with weight w >= 0; returns its id.
  EdgeId add_edge(NodeId u, NodeId v, Weight w);

  NodeId node_count() const { return static_cast<NodeId>(incident_.size()); }
  EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  Weight edge_weight(EdgeId e) const { return edge(e).weight; }

  /// The endpoint of `e` that is not `from`.
  NodeId other_end(EdgeId e, NodeId from) const {
    const Edge& ed = edge(e);
    assert(ed.u == from || ed.v == from);
    return ed.u == from ? ed.v : ed.u;
  }

  /// All edges ever attached to `v` (including inactive ones; filter with
  /// edge_usable()).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    return incident_[static_cast<std::size_t>(v)];
  }

  bool node_active(NodeId v) const { return node_active_[static_cast<std::size_t>(v)]; }
  bool edge_active(EdgeId e) const { return edge(e).active; }

  /// An edge is traversable iff it and both endpoints are active.
  bool edge_usable(EdgeId e) const {
    const Edge& ed = edge(e);
    return ed.active && node_active(ed.u) && node_active(ed.v);
  }

  void set_edge_weight(EdgeId e, Weight w);
  void add_edge_weight(EdgeId e, Weight delta);
  void remove_edge(EdgeId e);
  void restore_edge(EdgeId e);
  void remove_node(NodeId v);
  void restore_node(NodeId v);

  /// Monotone counter incremented on every mutation; used by PathOracle.
  std::uint64_t revision() const { return revision_; }

  /// Number of currently usable edges.
  EdgeId active_edge_count() const;

  /// Mean weight over usable edges (the paper reports the average
  /// routing-graph edge weight per congestion level in Table 1).
  Weight mean_active_edge_weight() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  std::vector<char> node_active_;
  std::uint64_t revision_ = 0;
};

}  // namespace fpr
