#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "core/contract.hpp"
#include "graph/types.hpp"

namespace fpr {

/// Flat compressed-sparse-row snapshot of a Graph's adjacency, the classic
/// routing-resource-graph layout (PathFinder/VPR): one contiguous offsets
/// array plus parallel neighbor/edge-id arrays, so the Dijkstra inner loop
/// walks cache-line-sized runs instead of chasing per-node vectors.
///
/// Within a node's slice, entries appear in edge-insertion order — the same
/// order Graph::incident_edges() yields — which the deterministic-parent
/// guarantee of dijkstra() depends on (see DESIGN.md §8).
///
/// `weight` mirrors Graph::traversal_weights() per slot (the edge's weight,
/// or kInfiniteWeight while unusable) and is updated in place by the weight
/// and activity mutators, so congestion bumps never force a rebuild and the
/// relaxation loop reads its cost from the same contiguous stream it reads
/// the neighbor from.
struct CsrAdjacency {
  std::vector<EdgeId> offsets;   // node_count() + 1 entries
  std::vector<NodeId> neighbor;  // 2 * edge_count() entries
  std::vector<EdgeId> edge_id;   // parallel to neighbor
  std::vector<Weight> weight;    // parallel to neighbor; traversal weight
  std::vector<EdgeId> slot;      // slot[2e], slot[2e+1]: edge e's positions

  std::span<const NodeId> neighbors_of(NodeId v) const {
    const auto b = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
    return {neighbor.data() + b, e - b};
  }
};

/// Weighted undirected graph with removable (deactivatable) nodes and edges
/// and mutable edge weights.
///
/// This is the routing-graph substrate of the paper (Section 2, Figure 2):
/// the FPGA router commits wire segments to nets by deactivating their nodes,
/// and models congestion by raising edge weights, so both operations are
/// first-class and O(1) (node removal/restore is O(degree) to keep the
/// usable-edge counters and flat traversal weights exact). Deactivated
/// elements keep their ids; traversals (Dijkstra, MST, ...) skip them.
///
/// Two monotone revision counters drive caching:
///  - revision() bumps on EVERY mutation and invalidates anything derived
///    from weights or activity (PathOracle's shortest-path trees);
///  - structural_revision() bumps only when the topology itself grows
///    (add_nodes/add_edge). The CSR adjacency snapshot (csr()) depends only
///    on topology, so the router's per-edge congestion bumps and node
///    removals update the flat traversal_weights() array in place without
///    ever forcing a CSR rebuild.
class Graph {
 public:
  struct Edge {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    Weight weight = 0;
    bool active = true;
  };

  Graph() = default;
  explicit Graph(NodeId node_count);

  // The CSR cache carries a mutex, so the compiler-generated special members
  // are unavailable; copies/moves transfer the logical graph and leave the
  // destination's snapshot to be rebuilt lazily.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Appends `count` fresh nodes; returns the id of the first one.
  NodeId add_nodes(NodeId count);

  /// Adds an undirected edge {u, v} with weight w >= 0; returns its id.
  EdgeId add_edge(NodeId u, NodeId v, Weight w);

  NodeId node_count() const { return static_cast<NodeId>(incident_.size()); }
  EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  Weight edge_weight(EdgeId e) const { return edge(e).weight; }

  /// The endpoint of `e` that is not `from`.
  NodeId other_end(EdgeId e, NodeId from) const {
    const Edge& ed = edge(e);
    FPR_CHECK(ed.u == from || ed.v == from,
              "other_end: node " << from << " is not an endpoint of edge " << e << " {" << ed.u
                                 << ", " << ed.v << "}");
    return ed.u == from ? ed.v : ed.u;
  }

  /// All edges ever attached to `v` (including inactive ones; filter with
  /// edge_usable()).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    return incident_[static_cast<std::size_t>(v)];
  }

  bool node_active(NodeId v) const { return node_active_[static_cast<std::size_t>(v)]; }
  bool edge_active(EdgeId e) const { return edge(e).active; }

  /// An edge is traversable iff it and both endpoints are active.
  bool edge_usable(EdgeId e) const {
    const Edge& ed = edge(e);
    return ed.active && node_active(ed.u) && node_active(ed.v);
  }

  void set_edge_weight(EdgeId e, Weight w);
  void add_edge_weight(EdgeId e, Weight delta);
  void remove_edge(EdgeId e);
  void restore_edge(EdgeId e);
  void remove_node(NodeId v);
  void restore_node(NodeId v);

  /// Monotone counter incremented on every mutation; used by PathOracle.
  std::uint64_t revision() const { return revision_; }

  /// Monotone counter incremented only by add_nodes/add_edge — the part of
  /// revision() the CSR snapshot depends on.
  std::uint64_t structural_revision() const { return structural_revision_; }

  /// The flat adjacency snapshot, rebuilt lazily when structural_revision()
  /// has moved since the last build. Safe to call from concurrent readers
  /// (the rebuild is mutex-guarded); mutating the graph concurrently with
  /// any reader is undefined, exactly as before.
  const CsrAdjacency& csr() const;

  /// Per-edge traversal cost, maintained in place on every mutation:
  /// weight(e) while edge_usable(e), kInfiniteWeight otherwise. Relaxing
  /// through this array folds the usability test into the ordinary
  /// `dist + w < best` comparison (inf never improves a distance), which is
  /// what keeps the Dijkstra inner loop branch-light.
  std::span<const Weight> traversal_weights() const { return traversal_weight_; }

  /// Number of currently usable edges. O(1): maintained as a running
  /// counter by every mutator.
  EdgeId active_edge_count() const { return usable_edges_; }

  /// Mean weight over usable edges (the paper reports the average
  /// routing-graph edge weight per congestion level in Table 1). O(1) from
  /// a running sum; exact whenever weights and congestion deltas are
  /// dyadic rationals (integers, halves, ...) summing below 2^53, which
  /// every workload in this repo satisfies.
  Weight mean_active_edge_weight() const {
    return usable_edges_ == 0 ? Weight{0} : usable_weight_sum_ / static_cast<Weight>(usable_edges_);
  }

 private:
  void copy_logical_state(const Graph& other);
  /// Transitions edge `e` into/out of the usable set, updating the running
  /// counters and flat traversal weight. `usable_now` must be the post-
  /// mutation usability.
  void sync_edge_usability(EdgeId e, bool usable_now);
  /// Mirrors a traversal-weight change into the CSR snapshot's per-slot
  /// weight stream, when a snapshot is currently built. Writes csr_ without
  /// csr_mu_: mutators run under the documented writer-exclusivity contract
  /// (no concurrent readers), which the analysis cannot express.
  void sync_csr_weight(EdgeId e, Weight w) FPR_NO_THREAD_SAFETY_ANALYSIS;
  /// Rebuilds the CSR snapshot under csr_mu_ if it is stale at `want`.
  void rebuild_csr(std::uint64_t want) const FPR_EXCLUDES(csr_mu_);
  /// Reads csr_ without csr_mu_ — safe once csr_structural_ was
  /// acquire-loaded equal to structural_revision(): the builder
  /// release-stores that value only after the snapshot is complete, and a
  /// current snapshot is never written again (release/acquire publication,
  /// which guarded_by cannot express).
  const CsrAdjacency& published_csr() const FPR_NO_THREAD_SAFETY_ANALYSIS { return csr_; }

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  std::vector<char> node_active_;
  std::uint64_t revision_ = 0;
  std::uint64_t structural_revision_ = 0;

  // Running aggregates over the usable-edge set (kept exact by
  // sync_edge_usability / the weight mutators).
  EdgeId usable_edges_ = 0;
  Weight usable_weight_sum_ = 0;
  std::vector<Weight> traversal_weight_;  // weight or kInfiniteWeight, per edge

  // Lazily built CSR snapshot. csr_structural_ is the structural revision
  // the snapshot was built at (kCsrStale = never built).
  static constexpr std::uint64_t kCsrStale = ~std::uint64_t{0};
  mutable Mutex csr_mu_;
  mutable std::atomic<std::uint64_t> csr_structural_{kCsrStale};
  mutable CsrAdjacency csr_ FPR_GUARDED_BY(csr_mu_);
};

}  // namespace fpr
