#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "core/contract.hpp"
#include "graph/tiled_topology.hpp"
#include "graph/types.hpp"

namespace fpr {

/// Flat compressed-sparse-row snapshot of a Graph's adjacency, the classic
/// routing-resource-graph layout (PathFinder/VPR): one contiguous offsets
/// array plus parallel neighbor/edge-id arrays, so the Dijkstra inner loop
/// walks cache-line-sized runs instead of chasing per-node vectors.
///
/// Within a node's slice, entries appear in edge-insertion order — the same
/// order Graph::incident_edges() yields — which the deterministic-parent
/// guarantee of dijkstra() depends on (see DESIGN.md §8).
///
/// `weight` mirrors the per-edge traversal cost per slot (the edge's weight,
/// or kInfiniteWeight while unusable) and is updated in place by the weight
/// and activity mutators, so congestion bumps never force a rebuild and the
/// relaxation loop reads its cost from the same contiguous stream it reads
/// the neighbor from.
struct CsrAdjacency {
  std::vector<EdgeId> offsets;   // node_count() + 1 entries
  std::vector<NodeId> neighbor;  // 2 * edge_count() entries
  std::vector<EdgeId> edge_id;   // parallel to neighbor
  std::vector<Weight> weight;    // parallel to neighbor; traversal weight
  std::vector<EdgeId> slot;      // slot[2e], slot[2e+1]: edge e's positions

  std::span<const NodeId> neighbors_of(NodeId v) const {
    const auto b = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
    return {neighbor.data() + b, e - b};
  }
};

/// Weighted undirected graph with removable (deactivatable) nodes and edges
/// and mutable edge weights.
///
/// This is the routing-graph substrate of the paper (Section 2, Figure 2):
/// the FPGA router commits wire segments to nets by deactivating their nodes,
/// and models congestion by raising edge weights, so both operations are
/// first-class and O(1) (node removal/restore is O(degree) to keep the
/// usable-edge counters exact). Deactivated elements keep their ids;
/// traversals (Dijkstra, MST, ...) skip them.
///
/// Two representations share this interface (DESIGN.md §12):
///
///  - *Materialized* (the default): adjacency stored explicitly — an edge
///    table, per-node incident lists, and a flat traversal-weight array.
///    This is what add_nodes/add_edge incrementally grow.
///  - *Tiled* (from_tiled()): topology is a shared immutable TiledTopology
///    and adjacency is synthesized arithmetically on demand. Only mutable
///    state is stored per element — true edge weights, edge/node activity —
///    about 14 bytes/edge instead of ~90, which is what lets device sizes
///    scale 10–100×. The logical graph (ids, order, weights, mutation
///    semantics, aggregate trajectories) is bit-identical to the
///    materialized equivalent; the device differential suite pins this.
///    A tiled graph's structure is fixed; calling add_nodes/add_edge first
///    materializes it (transparently, preserving all ids and state).
///
/// Two monotone revision counters drive caching:
///  - revision() bumps on EVERY mutation and invalidates anything derived
///    from weights or activity (PathOracle's shortest-path trees);
///  - structural_revision() bumps only when the topology itself grows
///    (add_nodes/add_edge). The CSR adjacency snapshot (csr()) depends only
///    on topology, so the router's per-edge congestion bumps and node
///    removals update the flat weight streams in place without ever forcing
///    a CSR rebuild.
class Graph {
 public:
  struct Edge {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    Weight weight = 0;
    bool active = true;
  };

  Graph() = default;
  explicit Graph(NodeId node_count);

  /// Builds a tiled-representation graph over `topo` (see class comment):
  /// every node/edge active, every edge at its slot's base weight. Requires
  /// the template convention that each edge's first-emitted endpoint is the
  /// smaller id (true of every device builder; verified by the stamping
  /// pass together with id ranges and two-endpoints-per-edge).
  static Graph from_tiled(std::shared_ptr<const TiledTopology> topo);

  // The CSR cache carries a mutex, so the compiler-generated special members
  // are unavailable; copies/moves transfer the logical graph and leave the
  // destination's snapshot to be rebuilt lazily.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Appends `count` fresh nodes; returns the id of the first one.
  NodeId add_nodes(NodeId count);

  /// Adds an undirected edge {u, v} with weight w >= 0; returns its id.
  EdgeId add_edge(NodeId u, NodeId v, Weight w);

  NodeId node_count() const { return static_cast<NodeId>(node_active_.size()); }
  EdgeId edge_count() const {
    return topo_ != nullptr ? topo_->edge_count : static_cast<EdgeId>(edges_.size());
  }

  /// The tile template this graph synthesizes its adjacency from, or
  /// nullptr for a materialized graph. The Dijkstra engine keys its
  /// traversal backend on this.
  const TiledTopology* tiled_topology() const { return topo_.get(); }
  bool tiled() const { return topo_ != nullptr; }

  /// Raw state arrays for the tiled traversal backend (dijkstra.cpp):
  /// weights are true per-edge weights; activity is one byte per element.
  /// Valid only while tiled(); pointers are invalidated by materialization.
  struct TiledView {
    const TiledTopology* topo = nullptr;
    const Weight* weight = nullptr;
    const char* edge_active = nullptr;
    const char* node_active = nullptr;
  };
  TiledView tiled_view() const {
    FPR_CHECK(topo_ != nullptr, "tiled_view() on a materialized graph");
    return TiledView{topo_.get(), tiled_weight_.data(), tiled_edge_active_.data(),
                     node_active_.data()};
  }

  /// Edge record. Returned by value: a tiled graph synthesizes it (u is
  /// always the smaller endpoint, matching every device builder's emission
  /// order); a materialized graph reads its edge table.
  Edge edge(EdgeId e) const {
    if (topo_ != nullptr) return tiled_edge(e);
    return edges_[static_cast<std::size_t>(e)];
  }

  Weight edge_weight(EdgeId e) const {
    return topo_ != nullptr ? tiled_weight_[static_cast<std::size_t>(e)]
                            : edges_[static_cast<std::size_t>(e)].weight;
  }

  /// The endpoint of `e` that is not `from`.
  NodeId other_end(EdgeId e, NodeId from) const {
    const Edge ed = edge(e);
    FPR_CHECK(ed.u == from || ed.v == from,
              "other_end: node " << from << " is not an endpoint of edge " << e << " {" << ed.u
                                 << ", " << ed.v << "}");
    return ed.u == from ? ed.v : ed.u;
  }

  /// All edges ever attached to `v` (including inactive ones; filter with
  /// edge_usable()). On a tiled graph the span points into a thread-local
  /// scratch buffer synthesized per call — it stays valid until this
  /// thread's next incident_edges() call on any tiled graph, which every
  /// current caller satisfies (no caller holds a span across another call).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    if (topo_ != nullptr) return tiled_incident_edges(v);
    return incident_[static_cast<std::size_t>(v)];
  }

  bool node_active(NodeId v) const { return node_active_[static_cast<std::size_t>(v)]; }
  bool edge_active(EdgeId e) const {
    return topo_ != nullptr ? tiled_edge_active_[static_cast<std::size_t>(e)] != 0
                            : edges_[static_cast<std::size_t>(e)].active;
  }

  /// An edge is traversable iff it and both endpoints are active.
  bool edge_usable(EdgeId e) const {
    if (topo_ != nullptr) return tiled_edge_usable(e);
    const Edge& ed = edges_[static_cast<std::size_t>(e)];
    return ed.active && node_active(ed.u) && node_active(ed.v);
  }

  void set_edge_weight(EdgeId e, Weight w);
  void add_edge_weight(EdgeId e, Weight delta);
  void remove_edge(EdgeId e);
  void restore_edge(EdgeId e);
  void remove_node(NodeId v);
  void restore_node(NodeId v);

  /// Monotone counter incremented on every mutation; used by PathOracle.
  std::uint64_t revision() const { return revision_; }

  /// Monotone counter incremented only by add_nodes/add_edge — the part of
  /// revision() the CSR snapshot depends on.
  std::uint64_t structural_revision() const { return structural_revision_; }

  /// The flat adjacency snapshot, rebuilt lazily when structural_revision()
  /// has moved since the last build. Safe to call from concurrent readers
  /// (the rebuild is mutex-guarded); mutating the graph concurrently with
  /// any reader is undefined, exactly as before. A tiled graph stamps the
  /// snapshot from its template tile-row-at-a-time into exactly
  /// preallocated arrays — byte-identical to the materialized rebuild —
  /// and keeps it weight-synced afterwards; the tiled Dijkstra backend
  /// never needs it, so large tiled devices typically never pay for one.
  const CsrAdjacency& csr() const;

  /// Per-edge traversal cost, maintained in place on every mutation:
  /// weight(e) while edge_usable(e), kInfiniteWeight otherwise. Relaxing
  /// through this array folds the usability test into the ordinary
  /// `dist + w < best` comparison (inf never improves a distance), which is
  /// what keeps the materialized Dijkstra inner loop branch-light. Only
  /// materialized graphs carry this array; the tiled backend reads activity
  /// bytes instead.
  std::span<const Weight> traversal_weights() const {
    FPR_CHECK(topo_ == nullptr,
              "traversal_weights() on a tiled graph — read csr().weight or the tiled_view() "
              "arrays instead");
    return traversal_weight_;
  }

  /// Number of currently usable edges. O(1): maintained as a running
  /// counter by every mutator.
  EdgeId active_edge_count() const { return usable_edges_; }

  /// Mean weight over usable edges (the paper reports the average
  /// routing-graph edge weight per congestion level in Table 1). O(1) from
  /// a running sum; exact whenever weights and congestion deltas are
  /// dyadic rationals (integers, halves, ...) summing below 2^53, which
  /// every workload in this repo satisfies.
  Weight mean_active_edge_weight() const {
    return usable_edges_ == 0 ? Weight{0} : usable_weight_sum_ / static_cast<Weight>(usable_edges_);
  }

  // -------------------------------------------------------------------------
  // Touch tracking (Device::reset() fast path).
  //
  // When enabled, every mutator records the element it touched (deduplicated
  // by a dirty bit), so a reset can restore base state in O(touched) instead
  // of scanning the whole graph. Tracking starts from the pristine
  // just-built state; replaying the touched lists in ascending id order
  // performs exactly the mutation sequence a full ascending scan would.
  // -------------------------------------------------------------------------

  /// Starts recording touched nodes/edges. Must be called on a graph whose
  /// state is the base state the eventual reset should restore.
  void enable_touch_tracking();
  bool touch_tracking() const { return track_touched_; }
  /// Touched ids since the last clear, in first-touch order (callers sort).
  std::span<const NodeId> touched_nodes() const { return touched_nodes_; }
  std::span<const EdgeId> touched_edges() const { return touched_edges_; }
  void clear_touched();

 private:
  void copy_logical_state(const Graph& other);
  /// Converts a tiled graph to the materialized representation in place,
  /// preserving every id, order and state bit. Called by the structural
  /// mutators; O(V + E).
  void materialize();
  /// Transitions edge `e` into/out of the usable set, updating the running
  /// counters and flat traversal weight. `usable_now` must be the post-
  /// mutation usability. Materialized representation only.
  void sync_edge_usability(EdgeId e, bool usable_now);
  /// Mirrors a traversal-weight change into the CSR snapshot's per-slot
  /// weight stream, when a snapshot is currently built. Writes csr_ without
  /// csr_mu_: mutators run under the documented writer-exclusivity contract
  /// (no concurrent readers), which the analysis cannot express.
  void sync_csr_weight(EdgeId e, Weight w) FPR_NO_THREAD_SAFETY_ANALYSIS;
  /// Rebuilds the CSR snapshot under csr_mu_ if it is stale at `want`.
  void rebuild_csr(std::uint64_t want) const FPR_EXCLUDES(csr_mu_);
  void rebuild_csr_materialized() const FPR_REQUIRES(csr_mu_);
  void rebuild_csr_tiled() const FPR_REQUIRES(csr_mu_);
  /// Reads csr_ without csr_mu_ — safe once csr_structural_ was
  /// acquire-loaded equal to structural_revision(): the builder
  /// release-stores that value only after the snapshot is complete, and a
  /// current snapshot is never written again (release/acquire publication,
  /// which guarded_by cannot express).
  const CsrAdjacency& published_csr() const FPR_NO_THREAD_SAFETY_ANALYSIS { return csr_; }

  // Tiled-representation helpers (topo_ != nullptr).
  Edge tiled_edge(EdgeId e) const;
  /// The endpoint of `e` other than its recorded smaller endpoint, found by
  /// scanning that endpoint's synthesized pattern (O(degree)).
  NodeId tiled_upper_end(EdgeId e) const;
  bool tiled_edge_usable(EdgeId e) const;
  std::span<const EdgeId> tiled_incident_edges(NodeId v) const;

  void mark_node_touched(NodeId v) {
    if (track_touched_ && !node_dirty_[static_cast<std::size_t>(v)]) {
      node_dirty_[static_cast<std::size_t>(v)] = 1;
      touched_nodes_.push_back(v);
    }
  }
  void mark_edge_touched(EdgeId e) {
    if (track_touched_ && !edge_dirty_[static_cast<std::size_t>(e)]) {
      edge_dirty_[static_cast<std::size_t>(e)] = 1;
      touched_edges_.push_back(e);
    }
  }

  // Materialized representation.
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  std::vector<Weight> traversal_weight_;  // weight or kInfiniteWeight, per edge

  // Tiled representation: shared immutable template + per-element mutable
  // state only. tiled_lower_end_ caches each edge's smaller endpoint so
  // edge decode is O(degree of one endpoint) instead of a search.
  std::shared_ptr<const TiledTopology> topo_;
  std::vector<Weight> tiled_weight_;       // true weight per edge
  std::vector<char> tiled_edge_active_;    // 1 byte per edge
  std::vector<NodeId> tiled_lower_end_;    // smaller endpoint per edge

  // Shared between representations.
  std::vector<char> node_active_;
  std::uint64_t revision_ = 0;
  std::uint64_t structural_revision_ = 0;

  // Running aggregates over the usable-edge set (kept exact by the
  // mutators; the tiled mutators update them in the same ascending-edge
  // order the materialized ones do, so the floating-point trajectories
  // match bit for bit).
  EdgeId usable_edges_ = 0;
  Weight usable_weight_sum_ = 0;

  // Touch tracking (see section comment above).
  bool track_touched_ = false;
  std::vector<char> node_dirty_;
  std::vector<char> edge_dirty_;
  std::vector<NodeId> touched_nodes_;
  std::vector<EdgeId> touched_edges_;

  // Lazily built CSR snapshot. csr_structural_ is the structural revision
  // the snapshot was built at (kCsrStale = never built).
  static constexpr std::uint64_t kCsrStale = ~std::uint64_t{0};
  mutable Mutex csr_mu_;
  mutable std::atomic<std::uint64_t> csr_structural_{kCsrStale};
  mutable CsrAdjacency csr_ FPR_GUARDED_BY(csr_mu_);
};

}  // namespace fpr
