#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

namespace fpr {

std::vector<EdgeId> ShortestPathTree::path_edges_to(NodeId v) const {
  std::vector<EdgeId> edges;
  while (v != source) {
    const auto e = parent_edge[static_cast<std::size_t>(v)];
    assert(e != kInvalidEdge && "path requested to an unreachable node");
    edges.push_back(e);
    v = parent[static_cast<std::size_t>(v)];
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

std::vector<NodeId> ShortestPathTree::path_nodes_to(NodeId v) const {
  std::vector<NodeId> nodes{v};
  while (v != source) {
    assert(parent[static_cast<std::size_t>(v)] != kInvalidNode);
    v = parent[static_cast<std::size_t>(v)];
    nodes.push_back(v);
  }
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

namespace {

/// Shared core: runs Dijkstra, optionally stopping once all `targets` are
/// settled and the frontier has moved past the derived radius.
ShortestPathTree dijkstra_impl(const Graph& g, NodeId source, std::span<const NodeId> targets,
                               double radius_factor, Weight slack) {
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, kInfiniteWeight);
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, kInvalidEdge);
  if (!g.node_active(source)) return t;

  std::vector<char> pending(targets.empty() ? 0 : n, 0);
  NodeId pending_count = 0;
  for (const NodeId v : targets) {
    if (!g.node_active(v)) {
      // A removed target can never be settled; counting it would keep
      // pending_count above zero forever, the radius limit infinite, and
      // silently degrade every scoped run to a full-graph Dijkstra.
      ++t.inactive_targets;
      continue;
    }
    auto& flag = pending[static_cast<std::size_t>(v)];
    if (flag == 0 && v != source) {
      flag = 1;
      ++pending_count;
    }
  }
  // With every target inactive (or coincident with the source) there is no
  // settle event to derive a radius from: run explicitly unbounded, exactly
  // like a plain dijkstra() call.

  using Entry = std::pair<Weight, NodeId>;  // (dist, node); node breaks ties
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  t.dist[static_cast<std::size_t>(source)] = 0;
  heap.emplace(0, source);

  std::vector<char> done(n, 0);
  Weight limit = kInfiniteWeight;  // becomes finite once all targets settle
  bool stopped_early = false;
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    if (d > limit) {
      stopped_early = true;
      break;
    }
    heap.pop();
    auto& du = done[static_cast<std::size_t>(u)];
    if (du) continue;
    du = 1;
    if (pending_count > 0 && pending[static_cast<std::size_t>(u)]) {
      pending[static_cast<std::size_t>(u)] = 0;
      if (--pending_count == 0) {
        limit = radius_factor * d + slack;
      }
    }
    for (const EdgeId e : g.incident_edges(u)) {
      if (!g.edge_usable(e)) continue;
      const NodeId v = g.other_end(e, u);
      const Weight nd = d + g.edge_weight(e);
      auto& dv = t.dist[static_cast<std::size_t>(v)];
      // Strict improvement only: with the min-heap popping smaller node ids
      // first among equal keys, this yields a deterministic parent forest.
      if (nd < dv) {
        dv = nd;
        t.parent[static_cast<std::size_t>(v)] = u;
        t.parent_edge[static_cast<std::size_t>(v)] = e;
        heap.emplace(nd, v);
      }
    }
  }
  if (stopped_early) {
    t.settled = std::move(done);
  }
  return t;
}

}  // namespace

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  return dijkstra_impl(g, source, {}, 0, 0);
}

ShortestPathTree dijkstra_within(const Graph& g, NodeId source, std::span<const NodeId> targets,
                                 double radius_factor, Weight slack) {
  return dijkstra_impl(g, source, targets, radius_factor, slack);
}

}  // namespace fpr
