#include "graph/dijkstra.hpp"

#include <algorithm>

#include "graph/dijkstra_arena.hpp"

namespace fpr {

std::vector<EdgeId> ShortestPathTree::path_edges_to(NodeId v) const {
  if (!reached(v)) return {};  // unreachable: empty path, never an invalid walk
  std::vector<EdgeId> edges;
  while (v != source) {
    const auto e = parent_edge[static_cast<std::size_t>(v)];
    edges.push_back(e);
    v = parent[static_cast<std::size_t>(v)];
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

std::vector<NodeId> ShortestPathTree::path_nodes_to(NodeId v) const {
  if (!reached(v)) return {};
  std::vector<NodeId> nodes{v};
  while (v != source) {
    v = parent[static_cast<std::size_t>(v)];
    nodes.push_back(v);
  }
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

namespace {

// fpr-lint: allow(global-state) test-only observer hook, thread-local so concurrent searches stay independent; nullptr in production
thread_local SearchFootprintObserver* t_footprint_observer = nullptr;

/// Reports the finished run's labeled set to this thread's observer (if
/// any). Must run before the arena's next begin_run invalidates the list.
void notify_footprint(const DijkstraArena& arena) {
  if (t_footprint_observer != nullptr) t_footprint_observer->on_search(arena.touched_nodes());
}

/// Copies the arena's epoch-valid labels into the caller-visible tree.
/// resize() keeps existing capacity, so reusing one tree object across runs
/// allocates nothing once it has seen the largest graph.
///
/// On a stopped-early run the settled set is derived rather than tracked:
/// nodes settle in strictly increasing (dist, node id) order, and when the
/// search breaks, (stop_d, stop_node) is the minimum entry still in the
/// heap — so a touched node is settled iff its label is lexicographically
/// below that entry. This keeps per-node "done" bookkeeping out of the hot
/// loop entirely.
void export_tree(const DijkstraArena& arena, NodeId node_count, bool stopped_early,
                 Weight stop_d, NodeId stop_node, ShortestPathTree& out) {
  arena.export_labels(node_count, out.dist, out.parent, out.parent_edge);
  if (stopped_early) {
    out.settled.resize(static_cast<std::size_t>(node_count));
    for (NodeId v = 0; v < node_count; ++v) {
      const Weight dv = out.dist[static_cast<std::size_t>(v)];
      out.settled[static_cast<std::size_t>(v)] =
          static_cast<char>(dv < stop_d || (dv == stop_d && v < stop_node));
    }
  } else {
    out.settled.clear();
  }
}

/// Shared core: Dijkstra over the graph's CSR snapshot with this thread's
/// arena, optionally stopping once all `targets` are settled and the
/// frontier has moved past the derived radius.
///
/// Determinism contract (pinned by dijkstra_differential_test): settle
/// order is the successive minimum of (tentative distance, node id), and
/// within a settled node edges relax in CSR order == incident-list order,
/// so dist/parent/parent_edge are bit-identical to the historical engine.
/// One deliberate divergence: when the search exhausts the component, the
/// result is always marked complete, where the old engine could still
/// report stopped-early if a superseded heap entry above the limit survived
/// to the top (see dijkstra_reference.hpp).
void dijkstra_impl(const Graph& g, NodeId source, std::span<const NodeId> targets,
                   double radius_factor, Weight slack, ShortestPathTree& out,
                   WorkBudget* budget) {
  const NodeId node_count = g.node_count();
  out.source = source;
  out.inactive_targets = 0;
  out.budget_aborted = false;
  DijkstraArena& arena = DijkstraArena::thread_local_instance();
  arena.begin_run(node_count);
  if (!g.node_active(source)) {
    // Everything untouched: exports as all-infinite, like the old engine
    // (which also skipped the target scan, leaving inactive_targets at 0).
    export_tree(arena, node_count, false, 0, kInvalidNode, out);
    notify_footprint(arena);
    return;
  }
  if (budget != nullptr && budget->exhausted()) {
    // A request whose budget is already spent performs no expansions at
    // all: every label stays infinite and nothing is settled (stop point
    // (0, kInvalidNode) marks no label as final — no distance of 0 exists
    // because even the source was never relaxed).
    out.budget_aborted = true;
    export_tree(arena, node_count, true, 0, kInvalidNode, out);
    notify_footprint(arena);
    return;
  }

  NodeId pending_count = 0;
  for (const NodeId v : targets) {
    if (!g.node_active(v)) {
      // A removed target can never be settled; counting it would keep
      // pending_count above zero forever, the radius limit infinite, and
      // silently degrade every scoped run to a full-graph Dijkstra.
      ++out.inactive_targets;
      continue;
    }
    if (v != source && !arena.pending(v)) {
      arena.mark_pending(v);
      ++pending_count;
    }
  }
  // With every target inactive (or coincident with the source) there is no
  // settle event to derive a radius from: run explicitly unbounded, exactly
  // like a plain dijkstra() call.

  arena.relax(source, 0, kInvalidNode, kInvalidEdge);

  Weight limit = kInfiniteWeight;  // becomes finite once all targets settle
  bool stopped_early = false;
  Weight stop_d = 0;
  NodeId stop_node = kInvalidNode;
  // Settle loop, generic over the adjacency backend. Both backends relax a
  // settled node's edges in ascending edge-id order (CSR slice order ==
  // incident-list order == tiled slot order), so the two produce
  // bit-identical trees.
  const auto run = [&](auto&& relax_neighbors) {
    while (!arena.heap_empty()) {
      const NodeId u = arena.heap_min();
      const Weight d = arena.heap_min_key();
      if (d > limit) {
        stopped_early = true;
        stop_d = d;
        stop_node = u;
        break;
      }
      if (budget != nullptr && !budget->charge()) {
        // Budget spent: u is NOT settled (its label may still be tentative).
        // (d, u) is the heap minimum, so the derived settled set is exactly
        // the nodes expanded before the abort — deterministic for a given
        // budget regardless of platform or thread count.
        stopped_early = true;
        out.budget_aborted = true;
        stop_d = d;
        stop_node = u;
        break;
      }
      arena.heap_pop_min();
      if (pending_count > 0 && arena.pending(u)) {
        arena.clear_pending(u);
        if (--pending_count == 0) {
          limit = radius_factor * d + slack;
        }
      }
      relax_neighbors(u, d);
    }
  };
  if (g.tiled()) {
    // Tiled backend: adjacency is synthesized arithmetically from the tile
    // template — no CSR snapshot is ever built, which is most of the tiled
    // representation's memory win. Usability is an explicit activity test
    // here (the materialized path folds it into an infinite weight).
    const Graph::TiledView tv = g.tiled_view();
    const TiledTopology* topo = tv.topo;
    run([&](NodeId u, Weight d) {
      topo->for_each_slot(u, [&](NodeId v, EdgeId e, const TiledSlot&) {
        if (tv.edge_active[static_cast<std::size_t>(e)] == 0 ||
            tv.node_active[static_cast<std::size_t>(v)] == 0) {
          return;
        }
        const Weight nd = d + tv.weight[static_cast<std::size_t>(e)];
        if (nd < arena.dist(v)) {
          arena.relax(v, nd, u, e);
        }
      });
    });
  } else {
    const CsrAdjacency& csr = g.csr();
    const EdgeId* offsets = csr.offsets.data();
    const NodeId* neighbor = csr.neighbor.data();
    const EdgeId* edge_id = csr.edge_id.data();
    const Weight* weight = csr.weight.data();
    run([&](NodeId u, Weight d) {
      const EdgeId begin = offsets[static_cast<std::size_t>(u)];
      const EdgeId end = offsets[static_cast<std::size_t>(u) + 1];
      for (EdgeId k = begin; k < end; ++k) {
        const NodeId v = neighbor[static_cast<std::size_t>(k)];
        // Unusable edges carry kInfiniteWeight here, so they can never pass
        // the strict-improvement test — no explicit usability branch needed.
        const Weight nd = d + weight[static_cast<std::size_t>(k)];
        if (nd < arena.dist(v)) {
          arena.relax(v, nd, u, edge_id[static_cast<std::size_t>(k)]);
        }
      }
    });
  }
  export_tree(arena, node_count, stopped_early, stop_d, stop_node, out);
  notify_footprint(arena);
}

}  // namespace

SearchFootprintObserver* set_search_footprint_observer(SearchFootprintObserver* observer) {
  SearchFootprintObserver* previous = t_footprint_observer;
  t_footprint_observer = observer;
  return previous;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  ShortestPathTree t;
  dijkstra_impl(g, source, {}, 0, 0, t, nullptr);
  return t;
}

void dijkstra(const Graph& g, NodeId source, ShortestPathTree& out, WorkBudget* budget) {
  dijkstra_impl(g, source, {}, 0, 0, out, budget);
}

ShortestPathTree dijkstra_within(const Graph& g, NodeId source, std::span<const NodeId> targets,
                                 double radius_factor, Weight slack) {
  ShortestPathTree t;
  dijkstra_impl(g, source, targets, radius_factor, slack, t, nullptr);
  return t;
}

void dijkstra_within(const Graph& g, NodeId source, std::span<const NodeId> targets,
                     ShortestPathTree& out, double radius_factor, Weight slack,
                     WorkBudget* budget) {
  dijkstra_impl(g, source, targets, radius_factor, slack, out, budget);
}

}  // namespace fpr
