#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace fpr {

/// Reusable scratch space for the Dijkstra engine: per-node labels
/// (dist/parent/parent_edge), a dirty list that makes resets cost
/// O(nodes actually touched) instead of O(graph), an epoch counter that
/// makes target-set setup/teardown O(1), and an indexed 4-ary min-heap with
/// decrease-key.
///
/// The distance array upholds one invariant between runs: every node not
/// touched by the current run holds kInfiniteWeight. begin_run() restores
/// it by rewriting only the previous run's dirty list, so the relaxation
/// test in the hot loop is a single array load (`nd < dist_[v]`) with no
/// validity branch, and a scoped run that touches 50 nodes of a 100k-node
/// graph pays for 50, not 100k. Target marks (dijkstra_within) use an
/// epoch-stamped array instead: marking and discarding the target set is
/// O(1) regardless of how many targets a caller passes. The arrays grow
/// monotonically to the largest graph seen and are never shrunk, making
/// repeated single-source runs allocation-free at steady state.
///
/// Heap entries carry their key inline, so sift comparisons stay within the
/// heap array instead of chasing dist_ at scattered indices; pos_ maps a
/// touched, unsettled node back to its entry for decrease-key, so each node
/// appears at most once. An entry packs (distance bits << 32 | node id)
/// into one 128-bit integer: distances are non-negative finite doubles,
/// whose IEEE-754 bit patterns order identically to their values, so a
/// single integer comparison reproduces the (dist, node) lexicographic
/// order — smaller node id first among equal distances — that the previous
/// std::priority_queue engine used. Settle order, and with it the parent
/// forest, is therefore bit-identical, and the tie-heavy comparisons of
/// uniform-weight graphs cost one predictable compare instead of a
/// FP-equality branch cascade.
///
/// One arena serves one thread. Use thread_local_instance() to get this
/// thread's pooled arena; that composes with the src/core/parallel pool
/// (each worker thread owns one arena for the pool's lifetime) and with
/// ad-hoc std::threads alike. Isolation is by construction (thread_local
/// storage), not by locking, so no member carries an FPR_GUARDED_BY from
/// core/annotations.hpp: an arena is never reachable from two threads.
class DijkstraArena {
 public:
  /// This thread's pooled arena.
  static DijkstraArena& thread_local_instance();

  /// Starts a new run over a graph of `node_count` nodes: grows the arrays
  /// if needed and invalidates every label from the previous run, paying
  /// only for the nodes that run actually touched.
  void begin_run(NodeId node_count);

  // ---- per-node labels (valid only when touched this run) ----

  bool touched(NodeId v) const { return dist_[static_cast<std::size_t>(v)] < kInfiniteWeight; }

  /// Current tentative distance; kInfiniteWeight when untouched — the
  /// invariant makes this an unconditional load.
  Weight dist(NodeId v) const { return dist_[static_cast<std::size_t>(v)]; }

  NodeId parent(NodeId v) const {
    return touched(v) ? origin_[static_cast<std::size_t>(v)].parent : kInvalidNode;
  }

  EdgeId parent_edge(NodeId v) const {
    return touched(v) ? origin_[static_cast<std::size_t>(v)].via : kInvalidEdge;
  }

  /// Records an improved label for v and inserts it into the heap (first
  /// touch this run) or sifts its entry up in place (decrease-key). Callers
  /// only invoke this after `d < dist(v)`, so `dist(v) == kInfiniteWeight`
  /// identifies the first touch.
  void relax(NodeId v, Weight d, NodeId par, EdgeId via) {
    const auto idx = static_cast<std::size_t>(v);
    const bool first_touch = dist_[idx] == kInfiniteWeight;
    dist_[idx] = d;
    origin_[idx] = {par, via};
    std::int32_t i;
    if (first_touch) {
      dirty_.push_back(v);
      i = static_cast<std::int32_t>(heap_.size());
      heap_.push_back(make_entry(d, v));
    } else {
      i = pos_[idx];
      heap_[static_cast<std::size_t>(i)] = make_entry(d, v);
    }
    sift_up(i);
  }

  // ---- heap ----

  bool heap_empty() const { return heap_.empty(); }
  NodeId heap_min() const { return entry_node(heap_.front()); }
  Weight heap_min_key() const { return entry_key(heap_.front()); }

  void heap_pop_min() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down_from_root(last);
  }

  // ---- pending-target bookkeeping (dijkstra_within) ----

  void mark_pending(NodeId v) { pending_stamp_[static_cast<std::size_t>(v)] = epoch_; }
  bool pending(NodeId v) const { return pending_stamp_[static_cast<std::size_t>(v)] == epoch_; }
  void clear_pending(NodeId v) { pending_stamp_[static_cast<std::size_t>(v)] = 0; }

  NodeId capacity() const { return static_cast<NodeId>(dist_.size()); }

  /// The nodes the current run has labeled so far (== the run's entire read
  /// frontier once it finishes). Valid until the next begin_run(); the
  /// engine hands this to the thread's SearchFootprintObserver (dijkstra.hpp)
  /// after every run.
  std::span<const NodeId> touched_nodes() const { return dirty_; }

  /// Copies this run's labels for nodes [0, node_count) into the output
  /// arrays (resized to fit; reuse keeps their capacity). dist_ already
  /// holds kInfiniteWeight for untouched nodes, so the distance column is a
  /// wholesale copy; parent columns mask untouched entries branchlessly.
  void export_labels(NodeId node_count, std::vector<Weight>& dist, std::vector<NodeId>& parent,
                     std::vector<EdgeId>& parent_edge) const;

 private:
  // (dist bits << 32) | node id. Heap keys are always finite non-negative
  // (an infinite tentative distance can never win the strict-improvement
  // test), and non-negative doubles order as their uint64 bit patterns, so
  // one unsigned comparison yields the lexicographic (dist, node) order.
  // __extension__ keeps -Wpedantic quiet about the non-ISO 128-bit type;
  // both GCC and clang honor it, and both targets guarantee __int128.
  __extension__ typedef unsigned __int128 HeapEntry;
  struct Origin {
    NodeId parent;
    EdgeId via;
  };

  static HeapEntry make_entry(Weight d, NodeId v) {
    return (static_cast<HeapEntry>(std::bit_cast<std::uint64_t>(d)) << 32) |
           static_cast<std::uint32_t>(v);
  }
  static NodeId entry_node(HeapEntry e) {
    return static_cast<NodeId>(static_cast<std::uint32_t>(e));
  }
  static Weight entry_key(HeapEntry e) {
    return std::bit_cast<Weight>(static_cast<std::uint64_t>(e >> 32));
  }

  static bool entry_less(HeapEntry a, HeapEntry b) { return a < b; }

  void sift_up(std::int32_t i) {
    const HeapEntry e = heap_[static_cast<std::size_t>(i)];
    while (i > 0) {
      const std::int32_t par = (i - 1) >> 2;
      const HeapEntry p = heap_[static_cast<std::size_t>(par)];
      if (!entry_less(e, p)) break;
      heap_[static_cast<std::size_t>(i)] = p;
      pos_[static_cast<std::size_t>(entry_node(p))] = i;
      i = par;
    }
    heap_[static_cast<std::size_t>(i)] = e;
    pos_[static_cast<std::size_t>(entry_node(e))] = i;
  }

  /// Re-seats `e` (the former last entry) after the root was popped, using
  /// Floyd's bottom-up variant: pull the min-child chain up into the root
  /// hole all the way to a leaf without comparing against `e` (as the
  /// just-removed tail of the array, `e` almost always belongs near the
  /// bottom), then sift `e` up from the leaf hole — usually zero moves.
  void sift_down_from_root(HeapEntry e) {
    const auto size = static_cast<std::int32_t>(heap_.size());
    const HeapEntry* h = heap_.data();
    std::int32_t i = 0;
    while (true) {
      const std::int32_t c0 = 4 * i + 1;
      if (c0 >= size) break;
      std::int32_t best;
      if (c0 + 3 < size) {
        // Full 4-child block: tournament min with independent comparisons
        // (selects compile to conditional moves), instead of a serial
        // data-dependent scan whose branches mispredict on tie-heavy heaps.
        const std::int32_t b01 = entry_less(h[c0 + 1], h[c0]) ? c0 + 1 : c0;
        const std::int32_t b23 = entry_less(h[c0 + 3], h[c0 + 2]) ? c0 + 3 : c0 + 2;
        best = entry_less(h[b23], h[b01]) ? b23 : b01;
      } else {
        best = c0;
        for (std::int32_t c = c0 + 1; c < size; ++c) {
          if (entry_less(h[c], h[best])) best = c;
        }
      }
      const HeapEntry b = h[best];
      heap_[static_cast<std::size_t>(i)] = b;
      pos_[static_cast<std::size_t>(entry_node(b))] = i;
      i = best;
    }
    // `i` is now a leaf hole; place `e` and restore the invariant upward.
    heap_[static_cast<std::size_t>(i)] = e;
    pos_[static_cast<std::size_t>(entry_node(e))] = i;
    sift_up(i);
  }

  std::uint32_t epoch_ = 0;               // validates pending_stamp_ marks
  std::vector<std::uint32_t> pending_stamp_;
  std::vector<Weight> dist_;    // invariant: kInfiniteWeight unless touched
  std::vector<Origin> origin_;  // {parent, parent_edge}, written as one record
  std::vector<NodeId> dirty_;      // nodes touched by the current run
  std::vector<std::int32_t> pos_;  // heap index of a touched, unsettled node
  std::vector<HeapEntry> heap_;    // 4-ary implicit heap, keys inline
};

}  // namespace fpr
