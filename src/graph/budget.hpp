#pragma once

namespace fpr {

/// Deterministic work budget, denominated in Dijkstra node expansions
/// (heap pops), NOT wall-clock time — so a budget-limited run settles the
/// exact same node set on every machine and thread count, and aborted
/// results stay bit-reproducible.
///
/// One budget object is threaded through a whole routing request: every
/// shortest-path run the request triggers (directly or via PathOracle)
/// charges its expansions here. When the budget runs out, searches stop
/// settling nodes and the layers above observe partial trees, fail the
/// in-flight net as NetStatus::kAbortedBudget, and return a usable partial
/// RoutingResult instead of spinning on a pathological instance (e.g. a
/// heavily faulted device with no short detours).
///
/// limit == 0 means unlimited; `used` keeps counting either way so callers
/// can report the work a run actually performed.
struct WorkBudget {
  long long limit = 0;  // max node expansions; 0 = unlimited
  long long used = 0;

  bool unlimited() const { return limit <= 0; }
  bool exhausted() const { return !unlimited() && used >= limit; }

  /// Charges one node expansion. Returns false when the expansion is NOT
  /// allowed (budget already spent); the caller must then stop expanding.
  bool charge() {
    if (!unlimited() && used >= limit) return false;
    ++used;
    return true;
  }
};

}  // namespace fpr
