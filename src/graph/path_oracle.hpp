#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace fpr {

/// Caches single-source shortest-path trees keyed by source node.
///
/// The paper notes that the naive iterated constructions can be sped up
/// substantially "by factoring out of H common computations, such as
/// computing shortest-paths" (Section 3); this oracle is that factoring.
/// IGMST/IDOM evaluate hundreds of Steiner candidates against the same
/// terminal set, and every distance they need is available from the
/// terminals' own SSSP trees.
///
/// The trees come from the CSR/arena Dijkstra engine (DESIGN.md §8), whose
/// deterministic tie-break makes every cached parent forest reproducible.
/// The cache self-invalidates when the underlying graph's total revision()
/// changes — weight bumps included, because distances depend on weights
/// (the structural_revision() split only spares the graph's CSR snapshot,
/// not these trees).
///
/// Cache effectiveness is observable: cache_hits() counts queries served
/// from an already-computed tree, cache_misses() counts the ones that had
/// to run Dijkstra (including bounded-tree upgrades). src/core/metrics
/// snapshots both for reporting.
///
/// Thread model: one oracle per thread, like the DijkstraArena it drives —
/// the parallel sweeps give every worker its own oracle over its own Device
/// copy, so the cache map is deliberately unsynchronized (no Mutex /
/// FPR_GUARDED_BY from core/annotations.hpp). Sharing one instance across
/// threads is a bug.
class PathOracle {
 public:
  explicit PathOracle(const Graph& g) : g_(&g), revision_(g.revision()) {}

  const Graph& graph() const { return *g_; }

  /// Restricts fresh Dijkstra runs to a radius-bounded search around the
  /// given target set (see dijkstra_within). distance()/path_between()
  /// transparently upgrade a bounded tree to a complete one when a query
  /// falls outside its settled region, so scoping is purely a performance
  /// hint — but algorithms that scan raw from() trees over ALL nodes
  /// (PFA's MaxDom, ZEL's triple medians) must run unscoped. The FPGA
  /// router sets the scope per net for the scan-free algorithms.
  void set_scope(std::vector<NodeId> targets) { scope_ = std::move(targets); }
  void clear_scope() { scope_.clear(); }

  /// Attaches a shared node-expansion budget (graph/budget.hpp): every
  /// Dijkstra run this oracle performs charges it. Once the budget is
  /// exhausted, fresh runs abort immediately and cached partial trees stop
  /// being upgraded, so queries may return tentative/infinite distances —
  /// the algorithms above degrade into "unreachable" answers and the
  /// router marks the in-flight net kAbortedBudget. Deterministic: a given
  /// budget always yields the same (partial) trees. The caller owns the
  /// budget; nullptr (the default) disables budgeting.
  void set_budget(WorkBudget* budget) { budget_ = budget; }
  WorkBudget* budget() const { return budget_; }

  /// True when the attached budget has run out (never true without one).
  bool budget_exhausted() const { return budget_ != nullptr && budget_->exhausted(); }

  /// The SSSP tree rooted at `source` (computed on first use; radius-bounded
  /// when a scope is set).
  const ShortestPathTree& from(NodeId source);

  /// A tree rooted at `source` that is guaranteed to know `probe`
  /// (recomputes completely if a bounded tree stopped short of it).
  const ShortestPathTree& from_knowing(NodeId source, NodeId probe);

  /// Shortest-path distance between two nodes (graph is undirected, so this
  /// is served from whichever endpoint is already cached, else from u).
  Weight distance(NodeId u, NodeId v);

  /// The cached SSSP tree for `source`, or nullptr if not computed yet.
  /// Lets callers choose the endpoint whose tree is already available
  /// instead of forcing a fresh Dijkstra.
  const ShortestPathTree* cached(NodeId source);

  /// Edges of a shortest a-b path, served from whichever endpoint's SSSP
  /// tree is already cached (computing from `a` only as a last resort).
  /// Empty when a == b or when they are disconnected.
  std::vector<EdgeId> path_between(NodeId a, NodeId b);

  void clear();

  /// Number of Dijkstra runs performed since construction/clear (for tests
  /// and the candidate-filtering ablation).
  std::size_t dijkstra_runs() const { return runs_; }

  /// Queries answered from an already-computed tree since construction/
  /// clear: repeat from() calls, and distance()/path_between() served by a
  /// cached endpoint. Revision-triggered invalidation does NOT reset these
  /// — they describe the oracle's whole lifetime, so a hot IGMST loop shows
  /// a high hit rate even though the router mutates the graph between nets.
  std::size_t cache_hits() const { return hits_; }

  /// Queries that had to run Dijkstra: cold from() calls and bounded-tree
  /// upgrades in from_knowing().
  std::size_t cache_misses() const { return misses_; }

  /// hits / (hits + misses); 0 when nothing was queried yet.
  double hit_rate() const {
    const std::size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  void refresh();

  const Graph* g_;
  std::uint64_t revision_;
  std::unordered_map<NodeId, std::unique_ptr<ShortestPathTree>> cache_;
  std::vector<NodeId> scope_;
  WorkBudget* budget_ = nullptr;
  std::size_t runs_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace fpr
