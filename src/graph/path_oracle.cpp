#include "graph/path_oracle.hpp"

#include "core/contract.hpp"

namespace fpr {

void PathOracle::refresh() {
  if (revision_ != g_->revision()) {
    cache_.clear();
    revision_ = g_->revision();
  }
}

const ShortestPathTree& PathOracle::from(NodeId source) {
  refresh();
  auto it = cache_.find(source);
  if (it == cache_.end()) {
    auto tree = std::make_unique<ShortestPathTree>();
    if (scope_.empty()) {
      dijkstra(*g_, source, *tree, budget_);
    } else {
      dijkstra_within(*g_, source, scope_, *tree, 1.3, 4.0, budget_);
    }
    it = cache_.emplace(source, std::move(tree)).first;
    ++runs_;
    ++misses_;
  } else {
    ++hits_;
  }
  return *it->second;
}

const ShortestPathTree& PathOracle::from_knowing(NodeId source, NodeId probe) {
  const ShortestPathTree& tree = from(source);
  if (tree.knows(probe)) return tree;
  // An exhausted budget cannot buy a better tree: the upgrade run would
  // abort before its first expansion, throwing away the partial labels we
  // already paid for. Return the partial tree; the caller sees a tentative
  // or infinite distance and degrades into an "unreachable" answer.
  if (budget_exhausted()) return tree;
  // The bounded tree stopped short of the probe: upgrade to a complete run.
  // Run INTO the cached object (not a pointer swap) so references handed
  // out by from() earlier stay valid — algorithms hold the source tree
  // across queries that may trigger upgrades.
  auto it = cache_.find(source);
  dijkstra(*g_, source, *it->second, budget_);
  ++runs_;
  ++misses_;
  return *it->second;
}

const ShortestPathTree* PathOracle::cached(NodeId source) {
  refresh();
  const auto it = cache_.find(source);
  return it == cache_.end() ? nullptr : it->second.get();
}

Weight PathOracle::distance(NodeId u, NodeId v) {
  refresh();
  if (auto it = cache_.find(u); it != cache_.end() && it->second->knows(v)) {
    ++hits_;
    return it->second->distance(v);
  }
  if (auto it = cache_.find(v); it != cache_.end() && it->second->knows(u)) {
    ++hits_;
    return it->second->distance(u);
  }
  return from_knowing(u, v).distance(v);
}

std::vector<EdgeId> PathOracle::path_between(NodeId a, NodeId b) {
  FPR_CHECK(a != kInvalidNode && b != kInvalidNode,
            "path_between(" << a << ", " << b << ") requires valid node ids");
  if (a == b) return {};
  if (const ShortestPathTree* spt = cached(a); spt != nullptr && spt->knows(b)) {
    ++hits_;
    return spt->reached(b) ? spt->path_edges_to(b) : std::vector<EdgeId>{};
  }
  if (const ShortestPathTree* spt = cached(b); spt != nullptr && spt->knows(a)) {
    ++hits_;
    return spt->reached(a) ? spt->path_edges_to(a) : std::vector<EdgeId>{};
  }
  const auto& spt = from_knowing(a, b);
  return spt.reached(b) ? spt.path_edges_to(b) : std::vector<EdgeId>{};
}

void PathOracle::clear() {
  cache_.clear();
  runs_ = 0;
  hits_ = 0;
  misses_ = 0;
  revision_ = g_->revision();
}

}  // namespace fpr
