#include "graph/grid.hpp"

#include "core/contract.hpp"

namespace fpr {

GridGraph::GridGraph(int width, int height, Weight edge_weight)
    : width_(width), height_(height), graph_(static_cast<NodeId>(width) * height) {
  FPR_CHECK(width >= 1 && height >= 1,
            "GridGraph dimensions " << width << "x" << height << " must be at least 1x1");
  // Edge ids are deterministic: all horizontal edges first (row-major),
  // then all vertical edges (row-major); the accessors below rely on this.
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x + 1 < width_; ++x) {
      graph_.add_edge(node_at(x, y), node_at(x + 1, y), edge_weight);
    }
  }
  for (int y = 0; y + 1 < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      graph_.add_edge(node_at(x, y), node_at(x, y + 1), edge_weight);
    }
  }
}

EdgeId GridGraph::horizontal_edge(int x, int y) const {
  FPR_CHECK(x >= 0 && x + 1 < width_ && y >= 0 && y < height_,
            "horizontal_edge (" << x << ", " << y << ") outside " << width_ << "x" << height_
                                 << " grid");
  return static_cast<EdgeId>(y * (width_ - 1) + x);
}

EdgeId GridGraph::vertical_edge(int x, int y) const {
  FPR_CHECK(x >= 0 && x < width_ && y >= 0 && y + 1 < height_,
            "vertical_edge (" << x << ", " << y << ") outside " << width_ << "x" << height_
                               << " grid");
  const EdgeId horizontal_count = static_cast<EdgeId>((width_ - 1) * height_);
  return horizontal_count + static_cast<EdgeId>(y * width_ + x);
}

}  // namespace fpr
