#pragma once

#include <algorithm>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

/// The pre-CSR Dijkstra engine, frozen verbatim: per-call vector
/// initialization, lazy-deletion binary priority_queue of (dist, node)
/// pairs, incident-list adjacency.
///
/// NOT used by production code. It exists so that
///  - the differential test (tests/graph/dijkstra_differential_test.cpp)
///    can assert the CSR/arena engine produces bit-identical
///    dist/parent/parent_edge forests, and
///  - bench/micro_dijkstra can report the speedup of the current engine
///    over this baseline into the BENCH_dijkstra.json perf trajectory.
///
/// Known quirk, preserved on purpose: when a radius-bounded run exhausts
/// the whole component, this engine may still report it as stopped-early
/// (settled flags populated) if a superseded heap entry above the radius
/// limit survived to the top. The production engine reports such runs as
/// complete — a strict semantic upgrade; the differential test pins down
/// exactly this relationship.
namespace fpr::reference {

inline ShortestPathTree dijkstra_impl(const Graph& g, NodeId source,
                                      std::span<const NodeId> targets, double radius_factor,
                                      Weight slack) {
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, kInfiniteWeight);
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, kInvalidEdge);
  if (!g.node_active(source)) return t;

  std::vector<char> pending(targets.empty() ? 0 : n, 0);
  NodeId pending_count = 0;
  for (const NodeId v : targets) {
    if (!g.node_active(v)) {
      ++t.inactive_targets;
      continue;
    }
    auto& flag = pending[static_cast<std::size_t>(v)];
    if (flag == 0 && v != source) {
      flag = 1;
      ++pending_count;
    }
  }

  using Entry = std::pair<Weight, NodeId>;  // (dist, node); node breaks ties
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  t.dist[static_cast<std::size_t>(source)] = 0;
  heap.emplace(0, source);

  std::vector<char> done(n, 0);
  Weight limit = kInfiniteWeight;  // becomes finite once all targets settle
  bool stopped_early = false;
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    if (d > limit) {
      stopped_early = true;
      break;
    }
    heap.pop();
    auto& du = done[static_cast<std::size_t>(u)];
    if (du) continue;
    du = 1;
    if (pending_count > 0 && pending[static_cast<std::size_t>(u)]) {
      pending[static_cast<std::size_t>(u)] = 0;
      if (--pending_count == 0) {
        limit = radius_factor * d + slack;
      }
    }
    for (const EdgeId e : g.incident_edges(u)) {
      if (!g.edge_usable(e)) continue;
      const NodeId v = g.other_end(e, u);
      const Weight nd = d + g.edge_weight(e);
      auto& dv = t.dist[static_cast<std::size_t>(v)];
      if (nd < dv) {
        dv = nd;
        t.parent[static_cast<std::size_t>(v)] = u;
        t.parent_edge[static_cast<std::size_t>(v)] = e;
        heap.emplace(nd, v);
      }
    }
  }
  if (stopped_early) {
    t.settled = std::move(done);
  }
  return t;
}

inline ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  return dijkstra_impl(g, source, {}, 0, 0);
}

inline ShortestPathTree dijkstra_within(const Graph& g, NodeId source,
                                        std::span<const NodeId> targets,
                                        double radius_factor = 1.3, Weight slack = 4.0) {
  return dijkstra_impl(g, source, targets, radius_factor, slack);
}

}  // namespace fpr::reference
