#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace fpr {

/// A routing solution for one net: a set of edges of the routing graph that
/// (when valid) forms a tree spanning the net's terminals.
///
/// The container dedupes its edge set and offers the metrics the paper
/// evaluates: total wirelength (cost), per-sink pathlength, maximum
/// source-sink pathlength, plus structural validation used by the tests
/// (is it a tree? does it span N? are all leaves terminals?).
class RoutingTree {
 public:
  RoutingTree(const Graph& g, std::vector<EdgeId> edges);

  const Graph& graph() const { return *g_; }
  const std::vector<EdgeId>& edges() const { return edges_; }
  bool empty() const { return edges_.empty(); }

  /// Sum of edge weights ("wirelength" in the paper's terminology).
  Weight cost() const;

  /// Every node touched by some edge, sorted ascending.
  std::vector<NodeId> nodes() const;

  bool contains_node(NodeId v) const { return adjacency_.count(v) > 0; }

  /// True iff the edge set is acyclic and connected over its touched nodes.
  bool is_tree() const;

  /// True iff every terminal is touched and they are mutually connected.
  /// A single-terminal net is spanned by an empty tree; a non-empty tree
  /// spans a lone terminal only if it actually touches it (a terminal left
  /// at degree 0 next to unrelated wiring is rejected).
  bool spans(std::span<const NodeId> terminals) const;

  /// Cost of the unique tree path between two touched nodes
  /// (kInfiniteWeight if either is absent or they are disconnected).
  Weight path_length(NodeId from, NodeId to) const;

  /// max over sinks of path_length(source, sink).
  Weight max_path_length(NodeId source, std::span<const NodeId> sinks) const;

  /// max over sinks of the tree-path EDGE COUNT from the source — the
  /// physical pathlength on unit-length wire models, independent of any
  /// congestion weighting layered onto the graph. Returns -1 if some sink
  /// is not connected to the source in the tree.
  int max_path_edge_count(NodeId source, std::span<const NodeId> sinks) const;

  /// Repeatedly removes degree-1 nodes that are not in `keep` (the KMB
  /// pendant-edge cleanup, and general Steiner-leaf pruning).
  void prune_leaves(std::span<const NodeId> keep);

 private:
  void rebuild_adjacency();

  const Graph* g_;
  std::vector<EdgeId> edges_;
  // node -> (incident tree edge, neighbor)
  std::unordered_map<NodeId, std::vector<std::pair<EdgeId, NodeId>>> adjacency_;
};

}  // namespace fpr
