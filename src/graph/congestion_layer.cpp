#include "graph/congestion_layer.hpp"

#include <algorithm>

#include "core/contract.hpp"

namespace fpr {

CongestionLayer::CongestionLayer(Graph& g, NodeId first_shared, int capacity)
    : g_(g), first_(first_shared), capacity_(capacity) {
  FPR_CHECK(first_shared >= 0 && first_shared <= g.node_count(),
            "CongestionLayer: first_shared " << first_shared << " outside [0, " << g.node_count()
                                             << "]");
  FPR_CHECK(capacity >= 1, "CongestionLayer: capacity " << capacity << " must be >= 1");
  const std::size_t edges = static_cast<std::size_t>(g.edge_count());
  base_.resize(edges);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    base_[static_cast<std::size_t>(e)] = g.edge_weight(e);
  }
  const std::size_t shared = static_cast<std::size_t>(g.node_count() - first_shared);
  occ_.assign(shared, 0);
  history_.assign(shared, 0.0);
}

void CongestionLayer::reprice(NodeId v) {
  const std::span<const EdgeId> span = g_.incident_edges(v);
  scratch_.assign(span.begin(), span.end());
  for (const EdgeId e : scratch_) {
    const Graph::Edge ed = g_.edge(e);
    const Weight w = base_[static_cast<std::size_t>(e)] + node_cost(ed.u) / 2 + node_cost(ed.v) / 2;
    if (w != g_.edge_weight(e)) g_.set_edge_weight(e, w);
  }
}

void CongestionLayer::set_present_factor(double f) {
  FPR_CHECK(f >= 0, "CongestionLayer: present factor " << f << " must be non-negative");
  FPR_CHECK(total_occ_ == 0,
            "CongestionLayer: set_present_factor with " << total_occ_
                                                        << " occupants priced in — begin_pass "
                                                           "first so no stale present term "
                                                           "remains at the old factor");
  present_factor_ = f;
}

void CongestionLayer::begin_pass() {
  std::sort(touched_.begin(), touched_.end());
  for (const NodeId v : touched_) {
    const std::size_t i = index(v);
    if (occ_[i] == 0) continue;
    occ_[i] = 0;
    reprice(v);
  }
  touched_.clear();
  total_occ_ = 0;
  overflow_ = 0;
}

void CongestionLayer::add_occupant(NodeId v) {
  const std::size_t i = index(v);
  if (occ_[i] == 0) touched_.push_back(v);
  ++occ_[i];
  ++total_occ_;
  if (occ_[i] > capacity_) ++overflow_;
  reprice(v);
}

void CongestionLayer::remove_occupant(NodeId v) {
  const std::size_t i = index(v);
  FPR_CHECK(occ_[i] > 0, "CongestionLayer: remove_occupant on unoccupied node " << v);
  if (occ_[i] > capacity_) --overflow_;
  --occ_[i];
  --total_occ_;
  reprice(v);
}

void CongestionLayer::accrue_history(NodeId v, double inc) {
  FPR_CHECK(inc >= 0, "CongestionLayer: history increment " << inc << " must be non-negative");
  history_[index(v)] += inc;
  reprice(v);
}

std::vector<NodeId> CongestionLayer::occupied() const {
  std::vector<NodeId> out;
  for (const NodeId v : touched_) {
    if (occ_[index(v)] > 0) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fpr
