#pragma once

#include <utility>

#include "graph/graph.hpp"

namespace fpr {

/// A width x height grid graph with 4-neighbor connectivity, the Table 1
/// experimental substrate ("random nets, uniformly distributed in 20x20
/// weighted grid graphs"). Node (x, y) has id y*width + x.
class GridGraph {
 public:
  GridGraph(int width, int height, Weight edge_weight = 1.0);

  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  int width() const { return width_; }
  int height() const { return height_; }

  NodeId node_at(int x, int y) const { return static_cast<NodeId>(y * width_ + x); }
  std::pair<int, int> coord(NodeId v) const { return {v % width_, v / width_}; }

  /// Edge from (x, y) to (x+1, y); x in [0, width-2].
  EdgeId horizontal_edge(int x, int y) const;
  /// Edge from (x, y) to (x, y+1); y in [0, height-2].
  EdgeId vertical_edge(int x, int y) const;

 private:
  int width_;
  int height_;
  Graph graph_;
};

}  // namespace fpr
