#pragma once

#include <span>
#include <vector>

#include "graph/path_oracle.hpp"
#include "graph/types.hpp"

namespace fpr {

/// The complete "distance graph" G' over a terminal set N: edge {i, j} is
/// weighted by the shortest-path distance in the underlying routing graph.
/// This is the shared first step of the KMB and ZEL heuristics (Appendix)
/// and of the DOM spanning-arborescence subroutine (Section 4.2).
class DistanceGraph {
 public:
  /// Builds the matrix from the oracle's cached SSSP trees (one Dijkstra per
  /// distinct terminal, shared with every other consumer of the oracle).
  DistanceGraph(std::span<const NodeId> terminals, PathOracle& oracle);

  /// Empty matrix over the given terminals; caller fills weights (used by
  /// ZEL's contraction, which mutates a copy).
  explicit DistanceGraph(std::vector<NodeId> terminals);

  int size() const { return static_cast<int>(terminals_.size()); }
  NodeId terminal(int i) const { return terminals_[static_cast<std::size_t>(i)]; }
  std::span<const NodeId> terminals() const { return terminals_; }

  Weight weight(int i, int j) const { return w_[index(i, j)]; }
  void set_weight(int i, int j, Weight w) {
    w_[index(i, j)] = w;
    w_[index(j, i)] = w;
  }

  /// True iff every pairwise distance is finite.
  bool connected() const;

  struct Mst {
    std::vector<std::pair<int, int>> edges;  // pairs of terminal indices
    Weight cost = 0;
    bool complete = false;  // false when the terminals are not all connected
  };

  /// Deterministic Prim MST over the complete matrix, O(k^2).
  Mst prim_mst() const;

 private:
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(i) * terminals_.size() + static_cast<std::size_t>(j);
  }

  std::vector<NodeId> terminals_;
  std::vector<Weight> w_;
};

}  // namespace fpr
