#pragma once

#include <cstdint>
#include <vector>

namespace fpr {

/// Disjoint-set forest with union by rank and path halving.
/// Used by Kruskal MST and by tree-validity checks.
class UnionFind {
 public:
  explicit UnionFind(std::int32_t n);

  std::int32_t find(std::int32_t x);

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::int32_t a, std::int32_t b);

  bool same(std::int32_t a, std::int32_t b) { return find(a) == find(b); }

  std::int32_t component_count() const { return components_; }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int8_t> rank_;
  std::int32_t components_;
};

}  // namespace fpr
