#include "graph/distance_graph.hpp"

#include <cassert>

namespace fpr {

DistanceGraph::DistanceGraph(std::vector<NodeId> terminals)
    : terminals_(std::move(terminals)),
      w_(terminals_.size() * terminals_.size(), kInfiniteWeight) {
  for (int i = 0; i < size(); ++i) set_weight(i, i, 0);
}

DistanceGraph::DistanceGraph(std::span<const NodeId> terminals, PathOracle& oracle)
    : DistanceGraph(std::vector<NodeId>(terminals.begin(), terminals.end())) {
  // oracle.distance() serves each pair from whichever endpoint's SSSP tree
  // already exists, so adding one new terminal to a cached set costs no
  // extra Dijkstra runs — the property IGMST's candidate loop relies on.
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      set_weight(i, j, oracle.distance(terminals_[static_cast<std::size_t>(i)],
                                       terminals_[static_cast<std::size_t>(j)]));
    }
  }
}

bool DistanceGraph::connected() const {
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      if (weight(i, j) >= kInfiniteWeight) return false;
    }
  }
  return true;
}

DistanceGraph::Mst DistanceGraph::prim_mst() const {
  Mst result;
  const int k = size();
  if (k == 0) {
    result.complete = true;
    return result;
  }
  std::vector<char> in_tree(static_cast<std::size_t>(k), 0);
  std::vector<Weight> best(static_cast<std::size_t>(k), kInfiniteWeight);
  std::vector<int> best_from(static_cast<std::size_t>(k), -1);
  best[0] = 0;
  for (int step = 0; step < k; ++step) {
    int pick = -1;
    for (int i = 0; i < k; ++i) {
      if (!in_tree[static_cast<std::size_t>(i)] &&
          (pick == -1 || best[static_cast<std::size_t>(i)] < best[static_cast<std::size_t>(pick)])) {
        pick = i;
      }
    }
    if (best[static_cast<std::size_t>(pick)] >= kInfiniteWeight) return result;  // disconnected
    in_tree[static_cast<std::size_t>(pick)] = 1;
    if (best_from[static_cast<std::size_t>(pick)] >= 0) {
      result.edges.emplace_back(best_from[static_cast<std::size_t>(pick)], pick);
      result.cost += best[static_cast<std::size_t>(pick)];
    }
    for (int j = 0; j < k; ++j) {
      if (!in_tree[static_cast<std::size_t>(j)] && weight(pick, j) < best[static_cast<std::size_t>(j)]) {
        best[static_cast<std::size_t>(j)] = weight(pick, j);
        best_from[static_cast<std::size_t>(j)] = pick;
      }
    }
  }
  result.complete = true;
  return result;
}

}  // namespace fpr
