#include "graph/routing_tree.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

namespace fpr {

RoutingTree::RoutingTree(const Graph& g, std::vector<EdgeId> edges) : g_(&g), edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  rebuild_adjacency();
}

void RoutingTree::rebuild_adjacency() {
  adjacency_.clear();
  for (const EdgeId e : edges_) {
    const auto& ed = g_->edge(e);
    adjacency_[ed.u].emplace_back(e, ed.v);
    adjacency_[ed.v].emplace_back(e, ed.u);
  }
}

Weight RoutingTree::cost() const {
  Weight sum = 0;
  for (const EdgeId e : edges_) sum += g_->edge_weight(e);
  return sum;
}

std::vector<NodeId> RoutingTree::nodes() const {
  std::vector<NodeId> result;
  result.reserve(adjacency_.size());
  for (const auto& [v, _] : adjacency_) result.push_back(v);
  std::sort(result.begin(), result.end());
  return result;
}

bool RoutingTree::is_tree() const {
  if (edges_.empty()) return true;
  // A connected graph with n nodes and n-1 edges is a tree.
  if (adjacency_.size() != edges_.size() + 1) return false;
  std::unordered_set<NodeId> seen;
  std::deque<NodeId> frontier{adjacency_.begin()->first};
  seen.insert(adjacency_.begin()->first);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& [e, v] : adjacency_.at(u)) {
      (void)e;
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return seen.size() == adjacency_.size();
}

bool RoutingTree::spans(std::span<const NodeId> terminals) const {
  if (terminals.empty()) return true;
  // A lone terminal needs no wiring, but a NON-empty tree must still touch
  // it: otherwise the terminal sits at degree 0 beside wiring that connects
  // nothing of the net, and the edge-level checks alone would accept it.
  if (terminals.size() == 1) return edges_.empty() || contains_node(terminals[0]);
  for (const NodeId t : terminals) {
    if (!contains_node(t)) return false;
  }
  // Connectivity among terminals: BFS from the first one.
  std::unordered_set<NodeId> seen{terminals[0]};
  std::deque<NodeId> frontier{terminals[0]};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& [e, v] : adjacency_.at(u)) {
      (void)e;
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return std::all_of(terminals.begin(), terminals.end(),
                     [&](NodeId t) { return seen.count(t) > 0; });
}

Weight RoutingTree::path_length(NodeId from, NodeId to) const {
  if (from == to) return 0;
  if (!contains_node(from) || !contains_node(to)) return kInfiniteWeight;
  // BFS with cost accumulation; tree paths are unique so first arrival wins.
  std::unordered_map<NodeId, Weight> dist{{from, 0}};
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (u == to) return dist[u];
    for (const auto& [e, v] : adjacency_.at(u)) {
      if (dist.emplace(v, dist[u] + g_->edge_weight(e)).second) frontier.push_back(v);
    }
  }
  return kInfiniteWeight;
}

Weight RoutingTree::max_path_length(NodeId source, std::span<const NodeId> sinks) const {
  if (sinks.empty()) return 0;
  if (!contains_node(source)) return kInfiniteWeight;
  // One traversal from the source covers every sink.
  std::unordered_map<NodeId, Weight> dist{{source, 0}};
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& [e, v] : adjacency_.at(u)) {
      if (dist.emplace(v, dist[u] + g_->edge_weight(e)).second) frontier.push_back(v);
    }
  }
  Weight worst = 0;
  for (const NodeId s : sinks) {
    const auto it = dist.find(s);
    if (it == dist.end()) return kInfiniteWeight;
    worst = std::max(worst, it->second);
  }
  return worst;
}

int RoutingTree::max_path_edge_count(NodeId source, std::span<const NodeId> sinks) const {
  if (sinks.empty()) return 0;
  if (!contains_node(source)) return -1;
  std::unordered_map<NodeId, int> hops{{source, 0}};
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& [e, v] : adjacency_.at(u)) {
      (void)e;
      if (hops.emplace(v, hops[u] + 1).second) frontier.push_back(v);
    }
  }
  int worst = 0;
  for (const NodeId s : sinks) {
    const auto it = hops.find(s);
    if (it == hops.end()) return -1;
    worst = std::max(worst, it->second);
  }
  return worst;
}

void RoutingTree::prune_leaves(std::span<const NodeId> keep) {
  const std::unordered_set<NodeId> keep_set(keep.begin(), keep.end());
  std::unordered_set<EdgeId> removed;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [v, inc] : adjacency_) {
      if (keep_set.count(v) > 0) continue;
      EdgeId live_edge = kInvalidEdge;
      int live_count = 0;
      for (const auto& [e, other] : inc) {
        (void)other;
        if (removed.count(e) == 0) {
          live_edge = e;
          ++live_count;
        }
      }
      if (live_count == 1) {
        removed.insert(live_edge);
        changed = true;
      }
    }
  }
  if (!removed.empty()) {
    std::erase_if(edges_, [&](EdgeId e) { return removed.count(e) > 0; });
    rebuild_adjacency();
  }
}

}  // namespace fpr
