#include "graph/tiled_topology.hpp"

namespace fpr {

void TiledTopology::validate() const {
  FPR_CHECK(!roles.empty(), "TiledTopology with no roles");
  FPR_CHECK(node_count > 0, "TiledTopology with node_count " << node_count);
  FPR_CHECK(edge_count >= 0, "TiledTopology with edge_count " << edge_count);
  NodeId next = 0;
  for (std::size_t r = 0; r < roles.size(); ++r) {
    const TiledRole& role = roles[r];
    FPR_CHECK(role.base == next, "role " << r << " base " << role.base
                                         << " leaves a gap (expected " << next << ")");
    FPR_CHECK(role.tracks >= 1 && role.xdim >= 1 && role.ydim >= 1,
              "role " << r << " has degenerate grid " << role.xdim << "x" << role.ydim << "x"
                      << role.tracks);
    FPR_CHECK(role.xperiod >= 1 && role.yperiod >= 1,
              "role " << r << " has invalid periods " << role.xperiod << "/" << role.yperiod);
    FPR_CHECK(role.xclasses == role.xlo + role.xperiod + role.xhi &&
                  role.yclasses == role.ylo + role.yperiod + role.yhi,
              "role " << r << " class counts do not match cuts + period");
    // Boundary cuts must not overlap: every x (resp. y) must classify
    // uniquely, which requires the interior span to be non-empty.
    FPR_CHECK(role.xdim >= role.xlo + role.xhi + role.xperiod,
              "role " << r << " xdim " << role.xdim << " too small for cuts " << role.xlo << "+"
                      << role.xhi << " and period " << role.xperiod);
    FPR_CHECK(role.ydim >= role.ylo + role.yhi + role.yperiod,
              "role " << r << " ydim " << role.ydim << " too small for cuts " << role.ylo << "+"
                      << role.yhi << " and period " << role.yperiod);
    const std::size_t patterns =
        static_cast<std::size_t>(role.xclasses) * static_cast<std::size_t>(role.yclasses) *
        static_cast<std::size_t>(role.tracks);
    FPR_CHECK(role.pattern_first.size() == patterns && role.pattern_count.size() == patterns,
              "role " << r << " pattern table sized " << role.pattern_first.size()
                      << ", expected " << patterns);
    for (std::size_t p = 0; p < patterns; ++p) {
      FPR_CHECK(static_cast<std::size_t>(role.pattern_first[p]) +
                        static_cast<std::size_t>(role.pattern_count[p]) <=
                    slots.size(),
                "role " << r << " pattern " << p << " range exceeds slot pool of "
                        << slots.size());
    }
    next += role.count();
  }
  FPR_CHECK(next == node_count, "roles tile " << next << " nodes, topology declares "
                                              << node_count);
}

}  // namespace fpr
