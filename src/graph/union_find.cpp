#include "graph/union_find.hpp"

#include <numeric>

namespace fpr {

UnionFind::UnionFind(std::int32_t n)
    : parent_(static_cast<std::size_t>(n)), rank_(static_cast<std::size_t>(n), 0), components_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

std::int32_t UnionFind::find(std::int32_t x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    auto& p = parent_[static_cast<std::size_t>(x)];
    p = parent_[static_cast<std::size_t>(p)];
    x = p;
  }
  return x;
}

bool UnionFind::unite(std::int32_t a, std::int32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  auto ra = rank_[static_cast<std::size_t>(a)];
  auto rb = rank_[static_cast<std::size_t>(b)];
  if (ra < rb) std::swap(a, b);
  parent_[static_cast<std::size_t>(b)] = a;
  if (ra == rb) ++rank_[static_cast<std::size_t>(a)];
  --components_;
  return true;
}

}  // namespace fpr
