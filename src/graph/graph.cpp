#include "graph/graph.hpp"

#include "core/contract.hpp"

namespace fpr {

Graph::Graph(NodeId node_count) { add_nodes(node_count); }

void Graph::copy_logical_state(const Graph& other) {
  edges_ = other.edges_;
  incident_ = other.incident_;
  node_active_ = other.node_active_;
  revision_ = other.revision_;
  structural_revision_ = other.structural_revision_;
  usable_edges_ = other.usable_edges_;
  usable_weight_sum_ = other.usable_weight_sum_;
  traversal_weight_ = other.traversal_weight_;
  csr_structural_.store(kCsrStale, std::memory_order_relaxed);
}

Graph::Graph(const Graph& other) { copy_logical_state(other); }

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) copy_logical_state(other);
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : edges_(std::move(other.edges_)),
      incident_(std::move(other.incident_)),
      node_active_(std::move(other.node_active_)),
      revision_(other.revision_),
      structural_revision_(other.structural_revision_),
      usable_edges_(other.usable_edges_),
      usable_weight_sum_(other.usable_weight_sum_),
      traversal_weight_(std::move(other.traversal_weight_)) {
  csr_structural_.store(kCsrStale, std::memory_order_relaxed);
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    edges_ = std::move(other.edges_);
    incident_ = std::move(other.incident_);
    node_active_ = std::move(other.node_active_);
    revision_ = other.revision_;
    structural_revision_ = other.structural_revision_;
    usable_edges_ = other.usable_edges_;
    usable_weight_sum_ = other.usable_weight_sum_;
    traversal_weight_ = std::move(other.traversal_weight_);
    csr_structural_.store(kCsrStale, std::memory_order_relaxed);
  }
  return *this;
}

NodeId Graph::add_nodes(NodeId count) {
  FPR_CHECK(count >= 0, "add_nodes count=" << count << " must be non-negative");
  const NodeId first = node_count();
  incident_.resize(incident_.size() + static_cast<std::size_t>(count));
  node_active_.resize(node_active_.size() + static_cast<std::size_t>(count), 1);
  ++revision_;
  ++structural_revision_;
  return first;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  FPR_CHECK(u >= 0 && u < node_count(),
            "add_edge endpoint u=" << u << " outside node range [0, " << node_count() << ")");
  FPR_CHECK(v >= 0 && v < node_count(),
            "add_edge endpoint v=" << v << " outside node range [0, " << node_count() << ")");
  FPR_CHECK(u != v, "add_edge self-loop at node " << u
                        << " — self-loops are never useful in a routing graph");
  FPR_CHECK(w >= 0, "add_edge {" << u << ", " << v << "} weight " << w
                        << " — routing costs are non-negative");
  const EdgeId id = edge_count();
  edges_.push_back(Edge{u, v, w, true});
  incident_[static_cast<std::size_t>(u)].push_back(id);
  incident_[static_cast<std::size_t>(v)].push_back(id);
  const bool usable = node_active(u) && node_active(v);
  traversal_weight_.push_back(usable ? w : kInfiniteWeight);
  if (usable) {
    ++usable_edges_;
    usable_weight_sum_ += w;
  }
  ++revision_;
  ++structural_revision_;
  return id;
}

void Graph::sync_csr_weight(EdgeId e, Weight w) {
  if (csr_structural_.load(std::memory_order_relaxed) != structural_revision_) return;
  const auto s = static_cast<std::size_t>(e) * 2;
  csr_.weight[static_cast<std::size_t>(csr_.slot[s])] = w;
  csr_.weight[static_cast<std::size_t>(csr_.slot[s + 1])] = w;
}

void Graph::sync_edge_usability(EdgeId e, bool usable_now) {
  const auto idx = static_cast<std::size_t>(e);
  const bool usable_before = traversal_weight_[idx] != kInfiniteWeight;
  if (usable_before == usable_now) return;
  const Weight w = edges_[idx].weight;
  if (usable_now) {
    ++usable_edges_;
    usable_weight_sum_ += w;
    traversal_weight_[idx] = w;
    sync_csr_weight(e, w);
  } else {
    --usable_edges_;
    usable_weight_sum_ -= w;
    traversal_weight_[idx] = kInfiniteWeight;
    sync_csr_weight(e, kInfiniteWeight);
  }
}

void Graph::set_edge_weight(EdgeId e, Weight w) {
  FPR_CHECK(e >= 0 && e < edge_count(),
            "set_edge_weight edge " << e << " outside edge range [0, " << edge_count() << ")");
  FPR_CHECK(w >= 0, "set_edge_weight edge " << e << " to " << w
                        << " — routing costs are non-negative");
  auto& ed = edges_[static_cast<std::size_t>(e)];
  if (traversal_weight_[static_cast<std::size_t>(e)] != kInfiniteWeight) {
    usable_weight_sum_ += w - ed.weight;
    traversal_weight_[static_cast<std::size_t>(e)] = w;
    sync_csr_weight(e, w);
  }
  ed.weight = w;
  ++revision_;
}

void Graph::add_edge_weight(EdgeId e, Weight delta) {
  FPR_CHECK(e >= 0 && e < edge_count(),
            "add_edge_weight edge " << e << " outside edge range [0, " << edge_count() << ")");
  auto& ed = edges_[static_cast<std::size_t>(e)];
  FPR_CHECK(ed.weight + delta >= 0, "add_edge_weight edge " << e << " (weight " << ed.weight
                                        << ") by " << delta
                                        << " would make the routing cost negative");
  ed.weight += delta;
  if (traversal_weight_[static_cast<std::size_t>(e)] != kInfiniteWeight) {
    usable_weight_sum_ += delta;
    traversal_weight_[static_cast<std::size_t>(e)] = ed.weight;
    sync_csr_weight(e, ed.weight);
  }
  ++revision_;
}

void Graph::remove_edge(EdgeId e) {
  edges_[static_cast<std::size_t>(e)].active = false;
  sync_edge_usability(e, false);
  ++revision_;
}

void Graph::restore_edge(EdgeId e) {
  auto& ed = edges_[static_cast<std::size_t>(e)];
  ed.active = true;
  sync_edge_usability(e, node_active(ed.u) && node_active(ed.v));
  ++revision_;
}

void Graph::remove_node(NodeId v) {
  if (node_active_[static_cast<std::size_t>(v)]) {
    node_active_[static_cast<std::size_t>(v)] = 0;
    for (const EdgeId e : incident_[static_cast<std::size_t>(v)]) {
      sync_edge_usability(e, false);
    }
  }
  ++revision_;
}

void Graph::restore_node(NodeId v) {
  if (!node_active_[static_cast<std::size_t>(v)]) {
    node_active_[static_cast<std::size_t>(v)] = 1;
    for (const EdgeId e : incident_[static_cast<std::size_t>(v)]) {
      sync_edge_usability(e, edge_usable(e));
    }
  }
  ++revision_;
}

const CsrAdjacency& Graph::csr() const {
  const std::uint64_t want = structural_revision_;
  if (csr_structural_.load(std::memory_order_acquire) != want) rebuild_csr(want);
  return published_csr();
}

void Graph::rebuild_csr(std::uint64_t want) const {
  MutexLock lock(csr_mu_);
  if (csr_structural_.load(std::memory_order_relaxed) != want) {
    const auto n = static_cast<std::size_t>(node_count());
    csr_.offsets.assign(n + 1, 0);
    std::size_t total = 0;
    for (std::size_t v = 0; v < n; ++v) {
      csr_.offsets[v] = static_cast<EdgeId>(total);
      total += incident_[v].size();
    }
    csr_.offsets[n] = static_cast<EdgeId>(total);
    csr_.neighbor.resize(total);
    csr_.edge_id.resize(total);
    csr_.weight.resize(total);
    csr_.slot.assign(static_cast<std::size_t>(edge_count()) * 2, kInvalidEdge);
    std::size_t k = 0;
    for (std::size_t v = 0; v < n; ++v) {
      // Insertion order is preserved, matching incident_edges() — the
      // deterministic-parent guarantee of dijkstra() relies on this.
      for (const EdgeId e : incident_[v]) {
        const Edge& ed = edges_[static_cast<std::size_t>(e)];
        csr_.neighbor[k] = ed.u == static_cast<NodeId>(v) ? ed.v : ed.u;
        csr_.edge_id[k] = e;
        csr_.weight[k] = traversal_weight_[static_cast<std::size_t>(e)];
        // Each edge occupies exactly two slots (no self-loops); remember
        // both so weight mutations can patch them in place.
        auto& first = csr_.slot[static_cast<std::size_t>(e) * 2];
        if (first == kInvalidEdge) {
          first = static_cast<EdgeId>(k);
        } else {
          csr_.slot[static_cast<std::size_t>(e) * 2 + 1] = static_cast<EdgeId>(k);
        }
        ++k;
      }
    }
    csr_structural_.store(want, std::memory_order_release);
  }
}

}  // namespace fpr
