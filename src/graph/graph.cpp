#include "graph/graph.hpp"

#include <utility>

#include "core/contract.hpp"

namespace fpr {

Graph::Graph(NodeId node_count) { add_nodes(node_count); }

void Graph::copy_logical_state(const Graph& other) {
  edges_ = other.edges_;
  incident_ = other.incident_;
  traversal_weight_ = other.traversal_weight_;
  topo_ = other.topo_;
  tiled_weight_ = other.tiled_weight_;
  tiled_edge_active_ = other.tiled_edge_active_;
  tiled_lower_end_ = other.tiled_lower_end_;
  node_active_ = other.node_active_;
  revision_ = other.revision_;
  structural_revision_ = other.structural_revision_;
  usable_edges_ = other.usable_edges_;
  usable_weight_sum_ = other.usable_weight_sum_;
  track_touched_ = other.track_touched_;
  node_dirty_ = other.node_dirty_;
  edge_dirty_ = other.edge_dirty_;
  touched_nodes_ = other.touched_nodes_;
  touched_edges_ = other.touched_edges_;
  csr_structural_.store(kCsrStale, std::memory_order_relaxed);
}

Graph::Graph(const Graph& other) { copy_logical_state(other); }

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) copy_logical_state(other);
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : edges_(std::move(other.edges_)),
      incident_(std::move(other.incident_)),
      traversal_weight_(std::move(other.traversal_weight_)),
      topo_(std::move(other.topo_)),
      tiled_weight_(std::move(other.tiled_weight_)),
      tiled_edge_active_(std::move(other.tiled_edge_active_)),
      tiled_lower_end_(std::move(other.tiled_lower_end_)),
      node_active_(std::move(other.node_active_)),
      revision_(other.revision_),
      structural_revision_(other.structural_revision_),
      usable_edges_(other.usable_edges_),
      usable_weight_sum_(other.usable_weight_sum_),
      track_touched_(other.track_touched_),
      node_dirty_(std::move(other.node_dirty_)),
      edge_dirty_(std::move(other.edge_dirty_)),
      touched_nodes_(std::move(other.touched_nodes_)),
      touched_edges_(std::move(other.touched_edges_)) {
  csr_structural_.store(kCsrStale, std::memory_order_relaxed);
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    edges_ = std::move(other.edges_);
    incident_ = std::move(other.incident_);
    traversal_weight_ = std::move(other.traversal_weight_);
    topo_ = std::move(other.topo_);
    tiled_weight_ = std::move(other.tiled_weight_);
    tiled_edge_active_ = std::move(other.tiled_edge_active_);
    tiled_lower_end_ = std::move(other.tiled_lower_end_);
    node_active_ = std::move(other.node_active_);
    revision_ = other.revision_;
    structural_revision_ = other.structural_revision_;
    usable_edges_ = other.usable_edges_;
    usable_weight_sum_ = other.usable_weight_sum_;
    track_touched_ = other.track_touched_;
    node_dirty_ = std::move(other.node_dirty_);
    edge_dirty_ = std::move(other.edge_dirty_);
    touched_nodes_ = std::move(other.touched_nodes_);
    touched_edges_ = std::move(other.touched_edges_);
    csr_structural_.store(kCsrStale, std::memory_order_relaxed);
  }
  return *this;
}

Graph Graph::from_tiled(std::shared_ptr<const TiledTopology> topo) {
  FPR_CHECK(topo != nullptr, "from_tiled(nullptr)");
  topo->validate();
  Graph g;
  const NodeId n = topo->node_count;
  const EdgeId m = topo->edge_count;
  g.node_active_.assign(static_cast<std::size_t>(n), 1);
  g.tiled_weight_.assign(static_cast<std::size_t>(m), 0);
  g.tiled_edge_active_.assign(static_cast<std::size_t>(m), 1);
  g.tiled_lower_end_.assign(static_cast<std::size_t>(m), kInvalidNode);

  // Stamping pass: one tile-row-at-a-time walk over every synthesized slot.
  // Each edge must be emitted by exactly two nodes — its smaller endpoint
  // first in node order — with matching base weights; together with the
  // range checks this proves the template's id arithmetic covers [0, m)
  // exactly, so the traversal backend can index state arrays unchecked.
  std::int64_t applied = 0;
  topo->for_each_node([&](NodeId v, const TiledTopology::Decoded& d) {
    topo->apply(d, [&](NodeId nbr, EdgeId e, const TiledSlot& slot) {
      FPR_CHECK(nbr >= 0 && nbr < n,
                "tiled template: node " << v << " synthesizes neighbor " << nbr
                                        << " outside [0, " << n << ")");
      FPR_CHECK(nbr != v, "tiled template: self-loop at node " << v);
      FPR_CHECK(e >= 0 && e < m, "tiled template: node " << v << " synthesizes edge " << e
                                                         << " outside [0, " << m << ")");
      NodeId& lower = g.tiled_lower_end_[static_cast<std::size_t>(e)];
      if (v < nbr) {
        FPR_CHECK(lower == kInvalidNode,
                  "tiled template: edge " << e << " emitted twice as a lower endpoint (nodes "
                                          << lower << " and " << v << ")");
        lower = v;
        g.tiled_weight_[static_cast<std::size_t>(e)] = slot.base_weight;
      } else {
        FPR_CHECK(lower == nbr, "tiled template: edge " << e << " endpoints disagree (" << v
                                                        << " expected lower end " << nbr
                                                        << ", recorded " << lower << ")");
        FPR_CHECK(g.tiled_weight_[static_cast<std::size_t>(e)] == slot.base_weight,
                  "tiled template: edge " << e << " base weight mismatch between endpoints");
      }
      ++applied;
    });
  });
  FPR_CHECK(applied == static_cast<std::int64_t>(m) * 2,
            "tiled template: " << applied << " slot applications for " << m
                               << " edges (expected exactly 2 per edge)");
  for (EdgeId e = 0; e < m; ++e) {
    FPR_CHECK(g.tiled_lower_end_[static_cast<std::size_t>(e)] != kInvalidNode,
              "tiled template: edge id " << e << " is never emitted");
  }

  g.usable_edges_ = m;
  g.usable_weight_sum_ = 0;
  for (EdgeId e = 0; e < m; ++e) {
    g.usable_weight_sum_ += g.tiled_weight_[static_cast<std::size_t>(e)];
  }
  g.topo_ = std::move(topo);
  g.revision_ = 1;
  g.structural_revision_ = 1;
  return g;
}

void Graph::materialize() {
  if (topo_ == nullptr) return;
  const std::shared_ptr<const TiledTopology> topo = std::move(topo_);
  topo_ = nullptr;
  const auto n = static_cast<std::size_t>(topo->node_count);
  const auto m = static_cast<std::size_t>(topo->edge_count);
  edges_.assign(m, Edge{});
  incident_.assign(n, {});
  traversal_weight_.assign(m, kInfiniteWeight);
  // Node-major walk reproduces the materialized invariants exactly:
  // incident lists in ascending edge order, each edge's `u` its smaller
  // (first-emitted) endpoint.
  topo->for_each_node([&](NodeId v, const TiledTopology::Decoded& d) {
    topo->apply(d, [&](NodeId nbr, EdgeId e, const TiledSlot&) {
      incident_[static_cast<std::size_t>(v)].push_back(e);
      if (v < nbr) {
        Edge& ed = edges_[static_cast<std::size_t>(e)];
        ed.u = v;
        ed.v = nbr;
        ed.weight = tiled_weight_[static_cast<std::size_t>(e)];
        ed.active = tiled_edge_active_[static_cast<std::size_t>(e)] != 0;
        if (ed.active && node_active(v) && node_active(nbr)) {
          traversal_weight_[static_cast<std::size_t>(e)] = ed.weight;
        }
      }
    });
  });
  tiled_weight_.clear();
  tiled_weight_.shrink_to_fit();
  tiled_edge_active_.clear();
  tiled_edge_active_.shrink_to_fit();
  tiled_lower_end_.clear();
  tiled_lower_end_.shrink_to_fit();
  // The logical graph is unchanged, so a published CSR snapshot (stamped
  // from the same template) remains valid; revisions stay put.
}

NodeId Graph::add_nodes(NodeId count) {
  FPR_CHECK(count >= 0, "add_nodes count=" << count << " must be non-negative");
  materialize();
  const NodeId first = node_count();
  incident_.resize(incident_.size() + static_cast<std::size_t>(count));
  node_active_.resize(node_active_.size() + static_cast<std::size_t>(count), 1);
  if (track_touched_) node_dirty_.resize(node_active_.size(), 0);
  ++revision_;
  ++structural_revision_;
  return first;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  FPR_CHECK(u >= 0 && u < node_count(),
            "add_edge endpoint u=" << u << " outside node range [0, " << node_count() << ")");
  FPR_CHECK(v >= 0 && v < node_count(),
            "add_edge endpoint v=" << v << " outside node range [0, " << node_count() << ")");
  FPR_CHECK(u != v, "add_edge self-loop at node " << u
                        << " — self-loops are never useful in a routing graph");
  FPR_CHECK(w >= 0, "add_edge {" << u << ", " << v << "} weight " << w
                        << " — routing costs are non-negative");
  materialize();
  const EdgeId id = edge_count();
  edges_.push_back(Edge{u, v, w, true});
  incident_[static_cast<std::size_t>(u)].push_back(id);
  incident_[static_cast<std::size_t>(v)].push_back(id);
  const bool usable = node_active(u) && node_active(v);
  traversal_weight_.push_back(usable ? w : kInfiniteWeight);
  if (usable) {
    ++usable_edges_;
    usable_weight_sum_ += w;
  }
  if (track_touched_) edge_dirty_.resize(edges_.size(), 0);
  ++revision_;
  ++structural_revision_;
  return id;
}

Graph::Edge Graph::tiled_edge(EdgeId e) const {
  FPR_CHECK(e >= 0 && e < edge_count(),
            "edge " << e << " outside edge range [0, " << edge_count() << ")");
  Edge ed;
  ed.u = tiled_lower_end_[static_cast<std::size_t>(e)];
  ed.v = tiled_upper_end(e);
  ed.weight = tiled_weight_[static_cast<std::size_t>(e)];
  ed.active = tiled_edge_active_[static_cast<std::size_t>(e)] != 0;
  return ed;
}

NodeId Graph::tiled_upper_end(EdgeId e) const {
  const NodeId u = tiled_lower_end_[static_cast<std::size_t>(e)];
  NodeId found = kInvalidNode;
  topo_->for_each_slot(u, [&](NodeId nbr, EdgeId slot_e, const TiledSlot&) {
    if (slot_e == e) found = nbr;
  });
  FPR_CHECK(found != kInvalidNode,
            "tiled edge " << e << ": recorded endpoint " << u << " does not emit it");
  return found;
}

bool Graph::tiled_edge_usable(EdgeId e) const {
  if (!tiled_edge_active_[static_cast<std::size_t>(e)]) return false;
  const NodeId u = tiled_lower_end_[static_cast<std::size_t>(e)];
  if (!node_active(u)) return false;
  return node_active(tiled_upper_end(e));
}

std::span<const EdgeId> Graph::tiled_incident_edges(NodeId v) const {
  // Thread-local scratch: concurrent speculative routes synthesize incident
  // lists on the shared device graph, each thread into its own buffer. The
  // span is valid until this thread's next call (documented in graph.hpp).
  // fpr-lint: allow(global-state) per-thread scratch buffer, overwritten on every call; lifetime contract documented in graph.hpp
  static thread_local std::vector<EdgeId> scratch;
  scratch.clear();
  topo_->for_each_slot(v, [&](NodeId, EdgeId e, const TiledSlot&) { scratch.push_back(e); });
  return scratch;
}

void Graph::sync_csr_weight(EdgeId e, Weight w) {
  if (csr_structural_.load(std::memory_order_relaxed) != structural_revision_) return;
  const auto s = static_cast<std::size_t>(e) * 2;
  csr_.weight[static_cast<std::size_t>(csr_.slot[s])] = w;
  csr_.weight[static_cast<std::size_t>(csr_.slot[s + 1])] = w;
}

void Graph::sync_edge_usability(EdgeId e, bool usable_now) {
  const auto idx = static_cast<std::size_t>(e);
  const bool usable_before = traversal_weight_[idx] != kInfiniteWeight;
  if (usable_before == usable_now) return;
  const Weight w = edges_[idx].weight;
  if (usable_now) {
    ++usable_edges_;
    usable_weight_sum_ += w;
    traversal_weight_[idx] = w;
    sync_csr_weight(e, w);
  } else {
    --usable_edges_;
    usable_weight_sum_ -= w;
    traversal_weight_[idx] = kInfiniteWeight;
    sync_csr_weight(e, kInfiniteWeight);
  }
}

void Graph::set_edge_weight(EdgeId e, Weight w) {
  FPR_CHECK(e >= 0 && e < edge_count(),
            "set_edge_weight edge " << e << " outside edge range [0, " << edge_count() << ")");
  FPR_CHECK(w >= 0, "set_edge_weight edge " << e << " to " << w
                        << " — routing costs are non-negative");
  mark_edge_touched(e);
  if (topo_ != nullptr) {
    Weight& cur = tiled_weight_[static_cast<std::size_t>(e)];
    if (tiled_edge_usable(e)) {
      usable_weight_sum_ += w - cur;
      sync_csr_weight(e, w);
    }
    cur = w;
    ++revision_;
    return;
  }
  auto& ed = edges_[static_cast<std::size_t>(e)];
  if (traversal_weight_[static_cast<std::size_t>(e)] != kInfiniteWeight) {
    usable_weight_sum_ += w - ed.weight;
    traversal_weight_[static_cast<std::size_t>(e)] = w;
    sync_csr_weight(e, w);
  }
  ed.weight = w;
  ++revision_;
}

void Graph::add_edge_weight(EdgeId e, Weight delta) {
  FPR_CHECK(e >= 0 && e < edge_count(),
            "add_edge_weight edge " << e << " outside edge range [0, " << edge_count() << ")");
  mark_edge_touched(e);
  if (topo_ != nullptr) {
    Weight& cur = tiled_weight_[static_cast<std::size_t>(e)];
    FPR_CHECK(cur + delta >= 0, "add_edge_weight edge " << e << " (weight " << cur << ") by "
                                    << delta << " would make the routing cost negative");
    cur += delta;
    if (tiled_edge_usable(e)) {
      usable_weight_sum_ += delta;
      sync_csr_weight(e, cur);
    }
    ++revision_;
    return;
  }
  auto& ed = edges_[static_cast<std::size_t>(e)];
  FPR_CHECK(ed.weight + delta >= 0, "add_edge_weight edge " << e << " (weight " << ed.weight
                                        << ") by " << delta
                                        << " would make the routing cost negative");
  ed.weight += delta;
  if (traversal_weight_[static_cast<std::size_t>(e)] != kInfiniteWeight) {
    usable_weight_sum_ += delta;
    traversal_weight_[static_cast<std::size_t>(e)] = ed.weight;
    sync_csr_weight(e, ed.weight);
  }
  ++revision_;
}

void Graph::remove_edge(EdgeId e) {
  mark_edge_touched(e);
  if (topo_ != nullptr) {
    char& act = tiled_edge_active_[static_cast<std::size_t>(e)];
    if (act != 0 && tiled_edge_usable(e)) {
      --usable_edges_;
      usable_weight_sum_ -= tiled_weight_[static_cast<std::size_t>(e)];
      sync_csr_weight(e, kInfiniteWeight);
    }
    act = 0;
    ++revision_;
    return;
  }
  edges_[static_cast<std::size_t>(e)].active = false;
  sync_edge_usability(e, false);
  ++revision_;
}

void Graph::restore_edge(EdgeId e) {
  mark_edge_touched(e);
  if (topo_ != nullptr) {
    char& act = tiled_edge_active_[static_cast<std::size_t>(e)];
    if (act == 0) {
      act = 1;
      if (tiled_edge_usable(e)) {
        ++usable_edges_;
        usable_weight_sum_ += tiled_weight_[static_cast<std::size_t>(e)];
        sync_csr_weight(e, tiled_weight_[static_cast<std::size_t>(e)]);
      }
    }
    ++revision_;
    return;
  }
  auto& ed = edges_[static_cast<std::size_t>(e)];
  ed.active = true;
  sync_edge_usability(e, node_active(ed.u) && node_active(ed.v));
  ++revision_;
}

void Graph::remove_node(NodeId v) {
  if (node_active_[static_cast<std::size_t>(v)]) {
    mark_node_touched(v);
    node_active_[static_cast<std::size_t>(v)] = 0;
    if (topo_ != nullptr) {
      // v was active, so each incident edge was usable iff it is active and
      // its far endpoint is; slot order is ascending edge id, matching the
      // materialized incident-list order (and its float-sum trajectory).
      topo_->for_each_slot(v, [&](NodeId nbr, EdgeId e, const TiledSlot&) {
        if (tiled_edge_active_[static_cast<std::size_t>(e)] != 0 && node_active(nbr)) {
          --usable_edges_;
          usable_weight_sum_ -= tiled_weight_[static_cast<std::size_t>(e)];
          sync_csr_weight(e, kInfiniteWeight);
        }
      });
    } else {
      for (const EdgeId e : incident_[static_cast<std::size_t>(v)]) {
        sync_edge_usability(e, false);
      }
    }
  }
  ++revision_;
}

void Graph::restore_node(NodeId v) {
  if (!node_active_[static_cast<std::size_t>(v)]) {
    mark_node_touched(v);
    node_active_[static_cast<std::size_t>(v)] = 1;
    if (topo_ != nullptr) {
      topo_->for_each_slot(v, [&](NodeId nbr, EdgeId e, const TiledSlot&) {
        if (tiled_edge_active_[static_cast<std::size_t>(e)] != 0 && node_active(nbr)) {
          ++usable_edges_;
          usable_weight_sum_ += tiled_weight_[static_cast<std::size_t>(e)];
          sync_csr_weight(e, tiled_weight_[static_cast<std::size_t>(e)]);
        }
      });
    } else {
      for (const EdgeId e : incident_[static_cast<std::size_t>(v)]) {
        sync_edge_usability(e, edge_usable(e));
      }
    }
  }
  ++revision_;
}

void Graph::enable_touch_tracking() {
  track_touched_ = true;
  node_dirty_.assign(static_cast<std::size_t>(node_count()), 0);
  edge_dirty_.assign(static_cast<std::size_t>(edge_count()), 0);
  touched_nodes_.clear();
  touched_edges_.clear();
}

void Graph::clear_touched() {
  for (const NodeId v : touched_nodes_) node_dirty_[static_cast<std::size_t>(v)] = 0;
  for (const EdgeId e : touched_edges_) edge_dirty_[static_cast<std::size_t>(e)] = 0;
  touched_nodes_.clear();
  touched_edges_.clear();
}

const CsrAdjacency& Graph::csr() const {
  const std::uint64_t want = structural_revision_;
  if (csr_structural_.load(std::memory_order_acquire) != want) rebuild_csr(want);
  return published_csr();
}

void Graph::rebuild_csr(std::uint64_t want) const {
  MutexLock lock(csr_mu_);
  if (csr_structural_.load(std::memory_order_relaxed) != want) {
    if (topo_ != nullptr) {
      rebuild_csr_tiled();
    } else {
      rebuild_csr_materialized();
    }
    csr_structural_.store(want, std::memory_order_release);
  }
}

void Graph::rebuild_csr_materialized() const {
  const auto n = static_cast<std::size_t>(node_count());
  csr_.offsets.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    csr_.offsets[v] = static_cast<EdgeId>(total);
    total += incident_[v].size();
  }
  csr_.offsets[n] = static_cast<EdgeId>(total);
  csr_.neighbor.resize(total);
  csr_.edge_id.resize(total);
  csr_.weight.resize(total);
  csr_.slot.assign(static_cast<std::size_t>(edge_count()) * 2, kInvalidEdge);
  std::size_t k = 0;
  for (std::size_t v = 0; v < n; ++v) {
    // Insertion order is preserved, matching incident_edges() — the
    // deterministic-parent guarantee of dijkstra() relies on this.
    for (const EdgeId e : incident_[v]) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      csr_.neighbor[k] = ed.u == static_cast<NodeId>(v) ? ed.v : ed.u;
      csr_.edge_id[k] = e;
      csr_.weight[k] = traversal_weight_[static_cast<std::size_t>(e)];
      // Each edge occupies exactly two slots (no self-loops); remember
      // both so weight mutations can patch them in place.
      auto& first = csr_.slot[static_cast<std::size_t>(e) * 2];
      if (first == kInvalidEdge) {
        first = static_cast<EdgeId>(k);
      } else {
        csr_.slot[static_cast<std::size_t>(e) * 2 + 1] = static_cast<EdgeId>(k);
      }
      ++k;
    }
  }
}

void Graph::rebuild_csr_tiled() const {
  // Stamped assembly: exact sizes up front, then one tile-row-at-a-time
  // fill in node order — no incremental growth, no per-node vectors. The
  // result is byte-identical to rebuild_csr_materialized() on the
  // materialized equivalent (the differential suite pins this).
  const auto n = static_cast<std::size_t>(node_count());
  const std::size_t total = static_cast<std::size_t>(edge_count()) * 2;
  csr_.offsets.assign(n + 1, 0);
  csr_.neighbor.resize(total);
  csr_.edge_id.resize(total);
  csr_.weight.resize(total);
  csr_.slot.assign(total, kInvalidEdge);
  std::size_t k = 0;
  topo_->for_each_node([&](NodeId v, const TiledTopology::Decoded& d) {
    csr_.offsets[static_cast<std::size_t>(v)] = static_cast<EdgeId>(k);
    const bool v_active = node_active_[static_cast<std::size_t>(v)] != 0;
    topo_->apply(d, [&](NodeId nbr, EdgeId e, const TiledSlot&) {
      csr_.neighbor[k] = nbr;
      csr_.edge_id[k] = e;
      const bool usable = v_active && tiled_edge_active_[static_cast<std::size_t>(e)] != 0 &&
                          node_active_[static_cast<std::size_t>(nbr)] != 0;
      csr_.weight[k] = usable ? tiled_weight_[static_cast<std::size_t>(e)] : kInfiniteWeight;
      auto& first = csr_.slot[static_cast<std::size_t>(e) * 2];
      if (first == kInvalidEdge) {
        first = static_cast<EdgeId>(k);
      } else {
        csr_.slot[static_cast<std::size_t>(e) * 2 + 1] = static_cast<EdgeId>(k);
      }
      ++k;
    });
  });
  FPR_CHECK(k == total, "tiled CSR stamp filled " << k << " of " << total << " slots");
  csr_.offsets[n] = static_cast<EdgeId>(total);
}

}  // namespace fpr
