#include "graph/graph.hpp"

namespace fpr {

Graph::Graph(NodeId node_count) { add_nodes(node_count); }

NodeId Graph::add_nodes(NodeId count) {
  assert(count >= 0);
  const NodeId first = node_count();
  incident_.resize(incident_.size() + static_cast<std::size_t>(count));
  node_active_.resize(node_active_.size() + static_cast<std::size_t>(count), 1);
  ++revision_;
  return first;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  assert(u >= 0 && u < node_count());
  assert(v >= 0 && v < node_count());
  assert(u != v && "self-loops are never useful in a routing graph");
  assert(w >= 0 && "routing costs are non-negative");
  const EdgeId id = edge_count();
  edges_.push_back(Edge{u, v, w, true});
  incident_[static_cast<std::size_t>(u)].push_back(id);
  incident_[static_cast<std::size_t>(v)].push_back(id);
  ++revision_;
  return id;
}

void Graph::set_edge_weight(EdgeId e, Weight w) {
  assert(w >= 0);
  edges_[static_cast<std::size_t>(e)].weight = w;
  ++revision_;
}

void Graph::add_edge_weight(EdgeId e, Weight delta) {
  auto& ed = edges_[static_cast<std::size_t>(e)];
  assert(ed.weight + delta >= 0);
  ed.weight += delta;
  ++revision_;
}

void Graph::remove_edge(EdgeId e) {
  edges_[static_cast<std::size_t>(e)].active = false;
  ++revision_;
}

void Graph::restore_edge(EdgeId e) {
  edges_[static_cast<std::size_t>(e)].active = true;
  ++revision_;
}

void Graph::remove_node(NodeId v) {
  node_active_[static_cast<std::size_t>(v)] = 0;
  ++revision_;
}

void Graph::restore_node(NodeId v) {
  node_active_[static_cast<std::size_t>(v)] = 1;
  ++revision_;
}

EdgeId Graph::active_edge_count() const {
  EdgeId n = 0;
  for (EdgeId e = 0; e < edge_count(); ++e) {
    if (edge_usable(e)) ++n;
  }
  return n;
}

Weight Graph::mean_active_edge_weight() const {
  Weight sum = 0;
  EdgeId n = 0;
  for (EdgeId e = 0; e < edge_count(); ++e) {
    if (edge_usable(e)) {
      sum += edge(e).weight;
      ++n;
    }
  }
  return n == 0 ? Weight{0} : sum / static_cast<Weight>(n);
}

}  // namespace fpr
