#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace fpr {

/// Minimum spanning tree of the subgraph of g induced by `edges`
/// (duplicates allowed; inactive edges skipped).
///
/// Returns the MST edge ids of the component structure: if the induced
/// subgraph is disconnected, a minimum spanning forest is returned.
/// Deterministic: ties broken by edge id (Kruskal on (weight, id)).
std::vector<EdgeId> kruskal_mst_subgraph(const Graph& g, std::span<const EdgeId> edges);

/// MST over all usable edges of g (convenience for tests).
std::vector<EdgeId> kruskal_mst(const Graph& g);

/// Sum of weights of the given edges.
Weight edge_set_cost(const Graph& g, std::span<const EdgeId> edges);

}  // namespace fpr
