#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/contract.hpp"
#include "graph/types.hpp"

namespace fpr {

/// Tile-template topology: a compressed description of a tile-periodic graph
/// from which adjacency is synthesized arithmetically instead of stored
/// (Kennings, "Simple FPGA routing graph compression", arXiv 1811.04749;
/// DESIGN.md §12).
///
/// Nodes are grouped into *roles* (e.g. logic blocks, horizontal wires,
/// vertical wires — one triple per layer for 3-D devices). A role occupies a
/// contiguous id range laid out as a (ydim × xdim × tracks) grid:
///
///   id = base + (y * xdim + x) * tracks + t
///
/// Every node's incident edge list is an instance of a per-(boundary class,
/// track) *pattern*: an ordered list of slots whose neighbor and edge ids are
/// affine in the node's period-reduced cell coordinates (ux, uy):
///
///   neighbor = nbr_base  + nbr_dx  * ux + nbr_dy  * uy
///   edge     = edge_base + edge_dx * ux + edge_dy * uy
///
/// Boundary classes capture the device perimeter (the first `xlo`/last `xhi`
/// columns and first `ylo`/last `yhi` rows get their own patterns); interior
/// cells share one pattern per residue class modulo `xperiod`/`yperiod`
/// (periods > 1 model sub-tile structure such as a 3-D device's via spacing).
///
/// Equivalence contract: a TiledTopology compiled for a device spec
/// synthesizes, for every node, the exact incident list — same edge ids, same
/// neighbor ids, same order, same base weights — that the legacy incremental
/// builder would have materialized. Slot order within a pattern is ascending
/// edge id (the legacy add_edge insertion order), which the deterministic-
/// parent guarantee of dijkstra() depends on. The fpga-layer template
/// compiler (fpga/tile_template.cpp) verifies this contract at a held-out
/// device size before a template is ever used.
struct TiledSlot {
  // int64 bases: an affine base is the extrapolation of the pattern to
  // ux = uy = 0, which can fall outside the id range (or below zero) even
  // though every *applied* value is in range. Applied values are validated
  // exhaustively by Graph::from_tiled's stamping pass.
  std::int64_t nbr_base = 0;
  std::int64_t nbr_dx = 0;
  std::int64_t nbr_dy = 0;
  std::int64_t edge_base = 0;
  std::int64_t edge_dx = 0;
  std::int64_t edge_dy = 0;
  Weight base_weight = 1.0;
};

struct TiledRole {
  NodeId base = 0;  // first node id of this role; roles tile [0, node_count)
  std::int32_t tracks = 1;
  std::int32_t xdim = 0;
  std::int32_t ydim = 0;
  // Boundary cut widths and interior periods (see class comment).
  std::int32_t xlo = 0;
  std::int32_t xhi = 0;
  std::int32_t ylo = 0;
  std::int32_t yhi = 0;
  std::int32_t xperiod = 1;
  std::int32_t yperiod = 1;
  std::int32_t xclasses = 0;  // xlo + xperiod + xhi
  std::int32_t yclasses = 0;  // ylo + yperiod + yhi
  // Pattern table, indexed ((yc * xclasses + xc) * tracks + t): slot-pool
  // range [pattern_first[i], pattern_first[i] + pattern_count[i]).
  std::vector<std::uint32_t> pattern_first;
  std::vector<std::uint32_t> pattern_count;

  NodeId count() const {
    return static_cast<NodeId>(static_cast<std::int64_t>(xdim) * ydim * tracks);
  }

  std::int32_t xclass(std::int32_t x) const {
    if (x < xlo) return x;
    if (x >= xdim - xhi) return xlo + xperiod + (x - (xdim - xhi));
    return xlo + x % xperiod;
  }

  std::int32_t yclass(std::int32_t y) const {
    if (y < ylo) return y;
    if (y >= ydim - yhi) return ylo + yperiod + (y - (ydim - yhi));
    return ylo + y % yperiod;
  }
};

class TiledTopology {
 public:
  std::vector<TiledRole> roles;  // ascending base
  std::vector<TiledSlot> slots;  // shared pattern pool
  NodeId node_count = 0;
  EdgeId edge_count = 0;

  struct Decoded {
    const TiledRole* role = nullptr;
    std::int32_t x = 0;
    std::int32_t y = 0;
    std::int32_t t = 0;
    std::int32_t ux = 0;  // x / role->xperiod — the coordinate patterns are affine in
    std::int32_t uy = 0;  // y / role->yperiod
    std::uint32_t first = 0;  // slot-pool range of this node's pattern
    std::uint32_t count = 0;
  };

  /// Locates `v`'s role, cell coordinates and pattern. Pure index
  /// arithmetic; no per-node storage is consulted.
  Decoded decode(NodeId v) const {
    FPR_CHECK(v >= 0 && v < node_count,
              "TiledTopology::decode node " << v << " outside [0, " << node_count << ")");
    // Roles are few (three per device layer); a linear scan beats a binary
    // search at these sizes and stays branch-predictable in the Dijkstra
    // inner loop.
    const TiledRole* role = roles.data();
    const TiledRole* last = roles.data() + (roles.size() - 1);
    while (role < last && v >= role[1].base) ++role;
    Decoded d;
    d.role = role;
    std::int32_t i = v - role->base;
    if (role->tracks > 1) {
      d.t = i % role->tracks;
      i /= role->tracks;
    }
    d.x = i % role->xdim;
    d.y = i / role->xdim;
    d.ux = d.x / role->xperiod;
    d.uy = d.y / role->yperiod;
    const std::size_t p = static_cast<std::size_t>(
        (role->yclass(d.y) * role->xclasses + role->xclass(d.x)) * role->tracks + d.t);
    d.first = role->pattern_first[p];
    d.count = role->pattern_count[p];
    return d;
  }

  /// Synthesizes `v`'s incident list in order, invoking
  /// `fn(neighbor, edge, slot)` per slot. Edge ids are ascending — the same
  /// order the legacy builder's insertion produced.
  template <typename Fn>
  void for_each_slot(NodeId v, Fn&& fn) const {
    const Decoded d = decode(v);
    apply(d, fn);
  }

  /// Same, from an already-decoded node (saves the decode when the caller
  /// also needs the coordinates).
  template <typename Fn>
  void apply(const Decoded& d, Fn&& fn) const {
    const TiledSlot* s = slots.data() + d.first;
    const TiledSlot* end = s + d.count;
    for (; s < end; ++s) {
      const auto nbr = static_cast<NodeId>(s->nbr_base + s->nbr_dx * d.ux + s->nbr_dy * d.uy);
      const auto e = static_cast<EdgeId>(s->edge_base + s->edge_dx * d.ux + s->edge_dy * d.uy);
      fn(nbr, e, *s);
    }
  }

  std::uint32_t degree(NodeId v) const { return decode(v).count; }

  /// Iterates every node in ascending id order, invoking
  /// `fn(v, decoded)` with the pattern lookup hoisted per (role, y, x) cell
  /// — the tile-row-at-a-time walk bulk construction (CSR stamping,
  /// Graph::from_tiled) is built on.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (const TiledRole& role : roles) {
      NodeId v = role.base;
      for (std::int32_t y = 0; y < role.ydim; ++y) {
        const std::int32_t yc = role.yclass(y);
        const std::int32_t uy = y / role.yperiod;
        for (std::int32_t x = 0; x < role.xdim; ++x) {
          const std::size_t p0 = static_cast<std::size_t>(
              (yc * role.xclasses + role.xclass(x)) * role.tracks);
          Decoded d;
          d.role = &role;
          d.x = x;
          d.y = y;
          d.ux = x / role.xperiod;
          d.uy = uy;
          for (std::int32_t t = 0; t < role.tracks; ++t, ++v) {
            d.t = t;
            d.first = role.pattern_first[p0 + static_cast<std::size_t>(t)];
            d.count = role.pattern_count[p0 + static_cast<std::size_t>(t)];
            fn(v, d);
          }
        }
      }
    }
  }

  /// Structural invariants: roles tile [0, node_count) contiguously in
  /// ascending order, class tables are fully populated, and every pattern
  /// range lies inside the slot pool. Id-level invariants (every synthesized
  /// neighbor/edge id in range, each edge with exactly two endpoints) are
  /// enforced by Graph::from_tiled's stamping pass.
  void validate() const;
};

}  // namespace fpr
