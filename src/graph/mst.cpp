#include "graph/mst.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/union_find.hpp"

namespace fpr {

namespace {

std::vector<EdgeId> kruskal_impl(const Graph& g, std::vector<EdgeId> pool) {
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::stable_sort(pool.begin(), pool.end(), [&](EdgeId a, EdgeId b) {
    const Weight wa = g.edge_weight(a);
    const Weight wb = g.edge_weight(b);
    return wa != wb ? wa < wb : a < b;
  });

  // Compact node ids so the union-find is sized to the subgraph, not |V|.
  std::unordered_map<NodeId, std::int32_t> compact;
  compact.reserve(pool.size() * 2);
  auto id_of = [&](NodeId v) {
    auto [it, inserted] = compact.emplace(v, static_cast<std::int32_t>(compact.size()));
    return it->second;
  };
  for (const EdgeId e : pool) {
    id_of(g.edge(e).u);
    id_of(g.edge(e).v);
  }

  UnionFind uf(static_cast<std::int32_t>(compact.size()));
  std::vector<EdgeId> mst;
  mst.reserve(compact.size());
  for (const EdgeId e : pool) {
    if (uf.unite(id_of(g.edge(e).u), id_of(g.edge(e).v))) mst.push_back(e);
  }
  return mst;
}

}  // namespace

std::vector<EdgeId> kruskal_mst_subgraph(const Graph& g, std::span<const EdgeId> edges) {
  std::vector<EdgeId> pool;
  pool.reserve(edges.size());
  for (const EdgeId e : edges) {
    if (g.edge_usable(e)) pool.push_back(e);
  }
  return kruskal_impl(g, std::move(pool));
}

std::vector<EdgeId> kruskal_mst(const Graph& g) {
  std::vector<EdgeId> pool;
  pool.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge_usable(e)) pool.push_back(e);
  }
  return kruskal_impl(g, std::move(pool));
}

Weight edge_set_cost(const Graph& g, std::span<const EdgeId> edges) {
  Weight sum = 0;
  for (const EdgeId e : edges) sum += g.edge_weight(e);
  return sum;
}

}  // namespace fpr
