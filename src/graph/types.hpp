#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

/// Fundamental scalar types shared by every fpr subsystem.
///
/// Node and edge identifiers are dense 32-bit indices assigned by the owning
/// Graph; weights are doubles (FPGA routing-graph weights combine wirelength
/// with congestion penalties, which need not be integral).
namespace fpr {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = double;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;
inline constexpr Weight kInfiniteWeight = std::numeric_limits<Weight>::infinity();

/// Tolerance used when comparing path costs (e.g. the dominance test of
/// Definition 4.1 checks d(n0,p) == d(n0,s) + d(s,p)). Workload weights are
/// integral so comparisons are exact in practice; the tolerance guards
/// user-supplied fractional weights.
inline constexpr Weight kWeightTolerance = 1e-9;

/// True when |a - b| is within tolerance, scaled by magnitude for large costs.
inline bool weight_eq(Weight a, Weight b, Weight tol = kWeightTolerance) {
  if (a == b) return true;  // covers infinities of the same sign
  if (std::isinf(a) || std::isinf(b)) return false;  // finite vs infinite never match
  const Weight scale = std::max({Weight{1}, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

/// True when a is strictly less than b beyond tolerance.
inline bool weight_lt(Weight a, Weight b, Weight tol = kWeightTolerance) {
  return a < b && !weight_eq(a, b, tol);
}

}  // namespace fpr
