#pragma once

#include <span>
#include <vector>

#include "graph/budget.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace fpr {

/// Single-source shortest paths from one node (Dijkstra [16]).
///
/// Distances to deactivated or unreachable nodes are kInfiniteWeight.
/// Ties are broken deterministically (smaller node id first), so the parent
/// forest — and every algorithm built on it — is reproducible.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Weight> dist;
  std::vector<NodeId> parent;       // predecessor node on a shortest path
  std::vector<EdgeId> parent_edge;  // edge to that predecessor

  /// Empty for a complete run. For a radius-bounded run (dijkstra_within),
  /// flags the nodes whose distances are final; everything else is unknown
  /// (not "unreachable").
  std::vector<char> settled;

  /// Targets dijkstra_within skipped because they were deactivated — they
  /// can never be settled, so they must not hold the radius limit open.
  /// Nonzero values make that (previously silent) degradation observable.
  int inactive_targets = 0;

  /// True when the run stopped because a WorkBudget ran out of node
  /// expansions (see graph/budget.hpp). The tree is partial: `settled`
  /// flags the nodes whose labels are final, exactly as for a
  /// radius-bounded early stop, and queries outside it must consult
  /// knows(). Budget-aborted runs are deterministic — the same budget
  /// always settles the same node set.
  bool budget_aborted = false;

  bool reached(NodeId v) const { return dist[static_cast<std::size_t>(v)] < kInfiniteWeight; }

  /// True when this tree can answer queries about v: either the run was
  /// complete, or v was settled before the early stop.
  bool knows(NodeId v) const {
    return settled.empty() || settled[static_cast<std::size_t>(v)] != 0;
  }

  bool complete() const { return settled.empty(); }

  Weight distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }

  /// Edges of the source -> v shortest path (empty when v == source).
  /// Returns an empty path when v is unreachable — previously that was
  /// undefined behavior in Release builds (the assert compiled out and the
  /// walk indexed with kInvalidNode).
  std::vector<EdgeId> path_edges_to(NodeId v) const;

  /// Nodes of the source -> v shortest path, source first. Empty when v is
  /// unreachable (same contract as path_edges_to).
  std::vector<NodeId> path_nodes_to(NodeId v) const;
};

/// Observer of the engine's per-run read footprint. When installed on a
/// thread (set_search_footprint_observer), every Dijkstra run that thread
/// performs reports the exact set of nodes it labeled — the run's whole
/// read frontier: every node whose distance, adjacency, or activity the run
/// consulted is either labeled or adjacent to a labeled node. The
/// net-parallel router (DESIGN.md §11) folds these into per-net footprint
/// rectangles to validate speculative routes; the hook costs one
/// thread-local load per run when no observer is installed.
class SearchFootprintObserver {
 public:
  virtual ~SearchFootprintObserver() = default;

  /// `labeled` is the arena's touched list for the run that just ended —
  /// valid only for the duration of the call.
  virtual void on_search(std::span<const NodeId> labeled) = 0;
};

/// Installs `observer` for the CALLING thread (nullptr uninstalls) and
/// returns the previously installed observer. Thread-local by design, like
/// the DijkstraArena itself: each pool worker observes only its own runs,
/// so no synchronization is needed.
SearchFootprintObserver* set_search_footprint_observer(SearchFootprintObserver* observer);

/// RAII installer for SearchFootprintObserver, restoring the previous
/// observer on scope exit (exception-safe across routing attempts).
class ScopedSearchFootprint {
 public:
  explicit ScopedSearchFootprint(SearchFootprintObserver* observer)
      : previous_(set_search_footprint_observer(observer)) {}
  ~ScopedSearchFootprint() { set_search_footprint_observer(previous_); }
  ScopedSearchFootprint(const ScopedSearchFootprint&) = delete;
  ScopedSearchFootprint& operator=(const ScopedSearchFootprint&) = delete;

 private:
  SearchFootprintObserver* previous_;
};

/// Runs Dijkstra over the usable part of g. O((V + E) log V).
///
/// The engine walks the graph's CSR adjacency snapshot (Graph::csr()) with
/// a thread-local epoch-stamped arena and an indexed 4-ary heap with
/// decrease-key — see DESIGN.md §8. Output is bit-identical to the
/// historical binary-heap engine (kept in graph/dijkstra_reference.hpp and
/// pinned by tests/graph/dijkstra_differential_test.cpp).
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Allocation-free variant: runs into `out`, reusing its vectors' capacity.
/// Repeated calls with the same tree object allocate nothing at steady
/// state (the router's two-pin baseline and the microbench use this).
///
/// `budget` (optional) charges one unit per node expansion and stops the
/// run — marking the tree budget_aborted, with `settled` flagging the
/// final labels — once the budget is spent. A null budget reproduces the
/// historical engine bit-for-bit.
void dijkstra(const Graph& g, NodeId source, ShortestPathTree& out, WorkBudget* budget = nullptr);

/// Radius-bounded Dijkstra: settles at least every reachable node in
/// `targets`, then keeps expanding until the frontier key exceeds
/// radius_factor * (max settled target distance) + slack, and marks what it
/// settled. On large FPGA routing graphs this prices a local net at the
/// cost of its neighborhood instead of the whole device; the generous
/// default radius covers the Steiner "corridor" (nodes on shortest paths
/// between targets plus their neighbors) from every target's viewpoint.
/// If the search exhausts the component anyway, the result is marked
/// complete. Queries outside the settled set must consult knows() —
/// PathOracle does this and transparently falls back to a full run.
/// Deactivated targets are skipped (counted in ShortestPathTree::
/// inactive_targets) rather than left pending forever; if every target is
/// inactive the run is unbounded, like dijkstra().
ShortestPathTree dijkstra_within(const Graph& g, NodeId source, std::span<const NodeId> targets,
                                 double radius_factor = 1.3, Weight slack = 4.0);

/// Reuse variant of dijkstra_within (see the dijkstra() overload above).
/// `budget` as in the dijkstra() reuse overload: node-expansion-bounded,
/// deterministic early abort.
void dijkstra_within(const Graph& g, NodeId source, std::span<const NodeId> targets,
                     ShortestPathTree& out, double radius_factor = 1.3, Weight slack = 4.0,
                     WorkBudget* budget = nullptr);

}  // namespace fpr
