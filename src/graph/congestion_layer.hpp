#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace fpr {

/// Negotiated-congestion cost layer over a routing graph (DESIGN.md §13).
///
/// PathFinder-style congestion resolution prices *sharing* instead of
/// forbidding it: every shared node charges a present-overflow term that
/// grows within a run, plus a history term that accrues across passes on
/// chronically contested nodes. This repo's routing graphs put capacity on
/// wire NODES (capacity 1 — a physical wire segment carries one signal), so
/// the layer keeps per-wire occupancy/history and folds the node costs into
/// the graph's per-EDGE weight arrays, the only cost stream the Dijkstra
/// backends read:
///
///     weight(e) = base(e) + cost(u)/2 + cost(v)/2
///     cost(v)   = present(v) + history(v)          (0 for block nodes)
///     present(v)= occupancy(v) >= capacity
///                   ? present_factor * (occupancy(v) + 1 - capacity) : 0
///
/// Splitting a node's cost across its incident edges charges any path
/// *through* the node the full cost (in one edge and out another), and a
/// path *terminating* there half — a harmless underestimate for sinks,
/// which are block pins and carry no cost anyway. All constants in this
/// repo are dyadic, so the repricing arithmetic is bit-exact on every
/// platform and identical on the materialized and tiled graph backends
/// (set_edge_weight keeps the CSR/tiled weight streams in sync and bumps
/// the revision, so PathOracle invalidation stays correct for free).
///
/// Thread-safety: const accessors are safe to read concurrently; every
/// mutator reprices through the graph and must be called from the owning
/// (serial commit) thread only — the same discipline the wave scheduler
/// already imposes on graph mutation.
class CongestionLayer {
 public:
  /// Snapshots the current weights of `g` as the base costs. Construct on
  /// the pristine (just-reset) graph; `first_shared` is the id of the first
  /// capacity-carrying node (Device::block_count() — blocks below it are
  /// shareable by design and never priced).
  CongestionLayer(Graph& g, NodeId first_shared, int capacity = 1);

  int capacity() const { return capacity_; }
  double present_factor() const { return present_factor_; }

  /// Sets the present-overflow factor for the coming pass. Only legal while
  /// no node is occupied (i.e. right after begin_pass()) so no stale
  /// present term is left priced into the weights at the old factor.
  void set_present_factor(double f);

  /// Clears all occupancy (history persists) and restores the affected edge
  /// weights, in ascending node-id order — the rip-up-everything start of a
  /// negotiation pass. O(previously occupied), not O(graph).
  void begin_pass();

  /// Occupancy bookkeeping for one wire node, repricing its incident edges
  /// in place. add_occupant is called as a net commits a wire (so later
  /// nets in the same pass see the updated present cost); remove_occupant
  /// as a net is ripped back out.
  void add_occupant(NodeId v);
  void remove_occupant(NodeId v);

  /// Adds `inc` to the node's history term and reprices. Called by the
  /// negotiation loop's end-of-pass sweep over overflowed wires; history
  /// never decays.
  void accrue_history(NodeId v, double inc);

  int occupancy(NodeId v) const { return occ_[index(v)]; }
  double history(NodeId v) const { return history_[index(v)]; }

  /// True when admitting one more occupant would push `v` over capacity —
  /// the pattern-probe prune and the end-of-run feasibility test.
  bool would_overflow(NodeId v) const { return occ_[index(v)] >= capacity_; }

  /// Sum over nodes of max(0, occupancy - capacity): the convergence
  /// measure. O(1) — maintained as a running counter.
  int total_overflow() const { return overflow_; }

  /// Currently occupied shared nodes, ascending. O(occupied log occupied).
  std::vector<NodeId> occupied() const;

  /// Present + history cost of node `v` (0 for ids below first_shared).
  double node_cost(NodeId v) const {
    if (v < first_) return 0;
    const std::size_t i = index(v);
    const int over = occ_[i] + 1 - capacity_;
    const double present = over > 0 ? present_factor_ * static_cast<double>(over) : 0.0;
    return present + history_[i];
  }

 private:
  std::size_t index(NodeId v) const {
    FPR_CHECK(v >= first_ && v < first_ + static_cast<NodeId>(occ_.size()),
              "CongestionLayer: node " << v << " outside the shared range [" << first_ << ", "
                                       << first_ + static_cast<NodeId>(occ_.size()) << ")");
    return static_cast<std::size_t>(v - first_);
  }

  /// Rewrites the weights of every edge incident to `v` from the current
  /// node costs. Copies the incident span first: on a tiled graph
  /// incident_edges() returns a thread-local scratch span that the next
  /// incident_edges() call (e.g. inside cost evaluation of the other
  /// endpoint) would clobber.
  void reprice(NodeId v);

  Graph& g_;
  NodeId first_ = 0;
  int capacity_ = 1;
  double present_factor_ = 0.5;

  std::vector<Weight> base_;    // per-edge base weight snapshot
  std::vector<int> occ_;        // per shared node
  std::vector<double> history_; // per shared node
  std::vector<NodeId> touched_; // occupied since last begin_pass (dedup by occ 0->1)
  std::vector<EdgeId> scratch_; // incident-span copy for reprice()
  long long total_occ_ = 0;
  int overflow_ = 0;
};

}  // namespace fpr
