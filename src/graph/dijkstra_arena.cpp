#include "graph/dijkstra_arena.hpp"

#include <algorithm>

namespace fpr {

DijkstraArena& DijkstraArena::thread_local_instance() {
  // fpr-lint: allow(global-state) per-thread scratch arena: epoch-versioned, fully reset per search, so reuse is observationally pure
  thread_local DijkstraArena arena;
  return arena;
}

void DijkstraArena::export_labels(NodeId node_count, std::vector<Weight>& dist,
                                  std::vector<NodeId>& parent,
                                  std::vector<EdgeId>& parent_edge) const {
  const auto n = static_cast<std::size_t>(node_count);
  dist.resize(n);
  parent.resize(n);
  parent_edge.resize(n);
  std::copy(dist_.begin(), dist_.begin() + static_cast<std::ptrdiff_t>(n), dist.begin());
  for (std::size_t v = 0; v < n; ++v) {
    const bool t = dist_[v] < kInfiniteWeight;
    parent[v] = t ? origin_[v].parent : kInvalidNode;
    parent_edge[v] = t ? origin_[v].via : kInvalidEdge;
  }
}

void DijkstraArena::begin_run(NodeId node_count) {
  const auto n = static_cast<std::size_t>(node_count);
  if (n > dist_.size()) {
    pending_stamp_.resize(n, 0);
    dist_.resize(n, kInfiniteWeight);  // establish the untouched invariant
    origin_.resize(n);
    pos_.resize(n);
  }
  // Restore the untouched invariant by rewriting exactly the nodes the
  // previous run dirtied — O(touched), not O(n).
  for (const NodeId v : dirty_) dist_[static_cast<std::size_t>(v)] = kInfiniteWeight;
  dirty_.clear();
  heap_.clear();
  if (++epoch_ == 0) {
    // Epoch counter wrapped (once per 2^32 runs): pending marks from 4
    // billion runs ago could collide, so pay one real reinitialization.
    std::fill(pending_stamp_.begin(), pending_stamp_.end(), 0u);
    epoch_ = 1;
  }
}

}  // namespace fpr
