#include "fpga/faults.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "core/contract.hpp"
#include "core/rng.hpp"
#include "fpga/device.hpp"

namespace fpr {
namespace {

/// Per-category hash salts. Separate streams per fault category keep each
/// knob independent: raising the switch rate never changes which wires die.
std::uint64_t wire_stream(std::uint64_t seed) { return mix64(seed ^ salt64("faults.wires")); }
std::uint64_t switch_stream(std::uint64_t seed) { return mix64(seed ^ salt64("faults.switches")); }
std::uint64_t pin_stream(std::uint64_t seed) { return mix64(seed ^ salt64("faults.pins")); }
std::uint64_t cluster_stream(std::uint64_t seed) { return mix64(seed ^ salt64("faults.clusters")); }

/// Element-local Bernoulli(permille/1000) draw: depends only on the stream
/// key and the element's id, so the sample is iteration-order independent.
bool hit(std::uint64_t stream, std::uint64_t id, int permille) {
  return static_cast<int>(mix64(stream, id) % 1000) < permille;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10) return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_int(const std::string& text, int& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value) || value > 1'000'000) return false;
  out = static_cast<int>(value);
  return true;
}

/// Canonical comma-joined id list ("12,40,77") for FaultEvent::describe().
std::string format_ids(const std::vector<std::int32_t>& ids) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) os << ',';
    os << ids[i];
  }
  return os.str();
}

/// Parses a non-empty comma-separated id list; every token must be a plain
/// decimal that fits an int32. Rejects empty tokens ("1,,2") so a mangled
/// journal line fails loudly instead of silently dropping elements.
bool parse_id_list(const std::string& text, std::vector<std::int32_t>& out) {
  out.clear();
  if (text.empty()) return false;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        comma == std::string::npos ? text.substr(pos) : text.substr(pos, comma - pos);
    std::uint64_t value = 0;
    if (!parse_u64(token, value)) return false;
    if (value > static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) {
      return false;
    }
    out.push_back(static_cast<std::int32_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

void sort_unique(std::vector<std::int32_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

void FaultEvent::normalize() {
  sort_unique(dead_wires);
  sort_unique(dead_edges);
}

bool FaultEvent::wire_faulted(NodeId v) const {
  return std::binary_search(dead_wires.begin(), dead_wires.end(), v);
}

bool FaultEvent::edge_faulted(EdgeId e) const {
  return std::binary_search(dead_edges.begin(), dead_edges.end(), e);
}

void FaultEvent::merge(const FaultEvent& other) {
  dead_wires.insert(dead_wires.end(), other.dead_wires.begin(), other.dead_wires.end());
  dead_edges.insert(dead_edges.end(), other.dead_edges.begin(), other.dead_edges.end());
  normalize();
}

std::string FaultEvent::describe() const {
  std::ostringstream os;
  os << "event";
  if (!dead_wires.empty()) os << " wires=" << format_ids(dead_wires);
  if (!dead_edges.empty()) os << " edges=" << format_ids(dead_edges);
  return os.str();
}

std::optional<FaultEvent> FaultEvent::parse(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != "event") return std::nullopt;
  FaultEvent event;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = false;
    if (key == "wires") {
      ok = parse_id_list(value, event.dead_wires);
    } else if (key == "edges") {
      ok = parse_id_list(value, event.dead_edges);
    } else {
      // Unknown keys are accepted (and ignored), same growth policy as
      // FaultSpec::parse.
      ok = true;
    }
    if (!ok) return std::nullopt;
  }
  event.normalize();
  return event;
}

bool FaultSpec::valid() const {
  const auto rate_ok = [](int permille) { return permille >= 0 && permille <= 1000; };
  return rate_ok(wire_permille) && rate_ok(switch_permille) && rate_ok(pin_permille) &&
         clusters >= 0 && cluster_radius >= 0;
}

std::string FaultSpec::describe() const {
  std::ostringstream os;
  os << "faults seed=" << seed << " wires=" << wire_permille << " switches=" << switch_permille
     << " pins=" << pin_permille << " clusters=" << clusters << " radius=" << cluster_radius;
  return os.str();
}

std::optional<FaultSpec> FaultSpec::parse(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != "faults") return std::nullopt;
  FaultSpec spec;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = false;
    if (key == "seed") {
      ok = parse_u64(value, spec.seed);
    } else if (key == "wires") {
      ok = parse_int(value, spec.wire_permille);
    } else if (key == "switches") {
      ok = parse_int(value, spec.switch_permille);
    } else if (key == "pins") {
      ok = parse_int(value, spec.pin_permille);
    } else if (key == "clusters") {
      ok = parse_int(value, spec.clusters);
    } else if (key == "radius") {
      ok = parse_int(value, spec.cluster_radius);
    } else {
      // Unknown keys are accepted (and ignored) so the format can grow
      // without breaking old replay tooling.
      ok = true;
    }
    if (!ok) return std::nullopt;
  }
  if (!spec.valid()) return std::nullopt;
  return spec;
}

FaultModel FaultModel::draw(const Device& device, const FaultSpec& spec) {
  FPR_CHECK(spec.valid(), "FaultModel::draw: invalid spec " << spec.describe());
  FaultModel model;
  model.spec_ = spec;

  const Graph& g = device.graph();
  const NodeId wire_base = device.block_count();

  // Stuck-open wire segments.
  if (spec.wire_permille > 0) {
    const std::uint64_t stream = wire_stream(spec.seed);
    for (NodeId v = wire_base; v < g.node_count(); ++v) {
      if (hit(stream, static_cast<std::uint64_t>(v), spec.wire_permille)) {
        model.dead_wires_.push_back(v);
      }
    }
  }

  // Dead connection-block pins and switchbox connections, split by the
  // device's edge-id boundary.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (device.is_connection_edge(e)) {
      if (spec.pin_permille > 0 &&
          hit(pin_stream(spec.seed), static_cast<std::uint64_t>(e), spec.pin_permille)) {
        model.dead_edges_.push_back(e);
      }
    } else if (spec.switch_permille > 0 &&
               hit(switch_stream(spec.seed), static_cast<std::uint64_t>(e),
                   spec.switch_permille)) {
      model.dead_edges_.push_back(e);
    }
  }

  // Clustered outages: each cluster kills every wire segment whose channel
  // tile lies within a Chebyshev ball around a hashed center — the
  // localized fabrication-defect case (a bad tile takes out its whole
  // neighborhood of channels, not scattered independent segments).
  if (spec.clusters > 0) {
    const std::uint64_t stream = cluster_stream(spec.seed);
    const int cols = device.spec().cols;
    const int rows = device.spec().rows;
    for (int k = 0; k < spec.clusters; ++k) {
      const auto id = static_cast<std::uint64_t>(k);
      const int cx = static_cast<int>(mix64(stream, id * 2) % static_cast<std::uint64_t>(cols));
      const int cy =
          static_cast<int>(mix64(stream, id * 2 + 1) % static_cast<std::uint64_t>(rows));
      for (NodeId v = wire_base; v < g.node_count(); ++v) {
        const Device::WireRef ref = device.wire_ref(v);
        const int dx = ref.x > cx ? ref.x - cx : cx - ref.x;
        const int dy = ref.y > cy ? ref.y - cy : cy - ref.y;
        if (std::max(dx, dy) <= spec.cluster_radius) model.dead_wires_.push_back(v);
      }
    }
  }

  const auto dedupe = [](auto& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };
  dedupe(model.dead_wires_);
  dedupe(model.dead_edges_);
  return model;
}

bool FaultModel::wire_faulted(NodeId v) const {
  return std::binary_search(dead_wires_.begin(), dead_wires_.end(), v);
}

bool FaultModel::edge_faulted(EdgeId e) const {
  return std::binary_search(dead_edges_.begin(), dead_edges_.end(), e);
}

}  // namespace fpr
