#pragma once

#include <vector>

#include "fpga/arch.hpp"
#include "fpga/device.hpp"
#include "graph/graph.hpp"

namespace fpr {

/// Three-dimensional FPGA device — the paper's Section 6 extension
/// ("all of our methods generalize to three-dimensional FPGAs [1, 2]").
///
/// `layers` identical symmetrical-array layers are stacked; horizontal wire
/// segments of vertically adjacent layers are joined by programmable vias
/// at every `via_spacing`-th channel tile (track-aligned). Because every
/// routing algorithm in this library operates on arbitrary weighted graphs,
/// they run on the 3-D routing graph unchanged — which is precisely the
/// point the paper makes.
struct Arch3dSpec {
  ArchSpec layer;       // per-layer architecture
  int layers = 2;
  int via_spacing = 1;  // vias every k-th tile (1 = everywhere)
  Weight via_weight = 1.0;

  bool valid() const { return layer.valid() && layers >= 1 && via_spacing >= 1; }
};

class Device3d {
 public:
  explicit Device3d(const Arch3dSpec& spec, DeviceBuild build = DeviceBuild::kAuto);

  const Arch3dSpec& spec() const { return spec_; }
  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  /// True when the graph was stamped from a tile template.
  bool tiled() const { return graph_.tiled(); }

  enum class Dir { kHorizontal, kVertical };

  NodeId block_node(int layer, int x, int y) const;
  NodeId wire_node(int layer, Dir dir, int x, int y, int track) const;

  bool is_block(NodeId v) const;
  bool is_wire(NodeId v) const { return !is_block(v) && v < graph_.node_count(); }

  int layer_of(NodeId v) const { return v / per_layer_nodes_; }

  int block_count() const { return spec_.layers * blocks_per_layer_; }
  int via_count() const { return via_count_; }

 private:
  void build_legacy();

  Arch3dSpec spec_;
  Graph graph_;
  NodeId per_layer_nodes_ = 0;
  NodeId blocks_per_layer_ = 0;
  NodeId hwire_base_ = 0;  // within-layer offsets
  NodeId vwire_base_ = 0;
  int via_count_ = 0;
};

}  // namespace fpr
