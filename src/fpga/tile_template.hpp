#pragma once

#include <cstdint>
#include <memory>

#include "fpga/arch.hpp"
#include "graph/tiled_topology.hpp"

namespace fpr {

struct Arch3dSpec;

/// Tile-template compiler (DESIGN.md §12): derives a TiledTopology for a
/// device spec by *learning* the template from the legacy builder instead of
/// hand-deriving closed forms.
///
/// For each architecture family (switch pattern, Fc rule, channel width,
/// layer/via parameters) the compiler builds five small legacy sample
/// devices, fits every boundary-class pattern's node/edge ids as affine
/// functions of the tile coordinates within each sample, fits those
/// coefficients bilinearly across sample sizes (exact integer differences —
/// no rounding anywhere), and then verifies the result by byte-comparing a
/// synthesized device against a held-out legacy build at a fifth size:
/// every node's incident list (edge ids, neighbor ids, order, weights) must
/// match exactly. Only a fully verified template is ever returned; any
/// mismatch, or a device too small to classify, falls back to the legacy
/// builder — which remains the specification (see the retention note in
/// DESIGN.md §12).
///
/// Templates are cached per family (sizes sharing a family reuse one
/// symbolic template; instantiation at concrete dimensions is cheap), so
/// the min-channel-width search pays one compile per probed width and the
/// wave scheduler's device copies pay none.
///
/// Returns nullptr when the spec is too small for the template's boundary
/// classification or when compilation/verification fails; callers must then
/// use the legacy builder.
std::shared_ptr<const TiledTopology> tiled_topology_for(const ArchSpec& spec);
std::shared_ptr<const TiledTopology> tiled_topology_for(const Arch3dSpec& spec);

/// Process-wide compiler counters (for tests and benches).
struct TileTemplateStats {
  std::int64_t compiles = 0;          // template compilations attempted
  std::int64_t compile_failures = 0;  // compilations that failed verification
  std::int64_t cache_hits = 0;        // requests served from the family cache
  std::int64_t instantiations = 0;    // topologies stamped from a template
  std::int64_t fallbacks = 0;         // requests answered "use the legacy builder"
};
TileTemplateStats tile_template_stats();

}  // namespace fpr
