#include "fpga/device3d.hpp"

#include "core/contract.hpp"

#include "fpga/switchbox.hpp"
#include "fpga/tile_template.hpp"

namespace fpr {

Device3d::Device3d(const Arch3dSpec& spec, DeviceBuild build) : spec_(spec) {
  FPR_CHECK(spec.valid(), "Device3D spec with " << spec.layers
                              << " layers — layers >= 1 and a valid per-layer spec required");
  const ArchSpec& a = spec_.layer;
  const int rows = a.rows, cols = a.cols, w = a.channel_width;

  blocks_per_layer_ = static_cast<NodeId>(rows * cols);
  const NodeId hwires = static_cast<NodeId>((rows + 1) * cols * w);
  const NodeId vwires = static_cast<NodeId>((cols + 1) * rows * w);
  hwire_base_ = blocks_per_layer_;
  vwire_base_ = blocks_per_layer_ + hwires;
  per_layer_nodes_ = blocks_per_layer_ + hwires + vwires;

  std::shared_ptr<const TiledTopology> topo;
  if (build == DeviceBuild::kAuto) topo = tiled_topology_for(spec_);
  if (topo != nullptr) {
    FPR_CHECK(topo->node_count == per_layer_nodes_ * spec_.layers,
              "3-D tile template synthesized " << topo->node_count << " nodes for a device of "
                                               << per_layer_nodes_ * spec_.layers);
    graph_ = Graph::from_tiled(std::move(topo));
    // The via pass emits one track-aligned via per w tracks, every
    // via_spacing-th horizontal channel tile, between adjacent layers.
    via_count_ = (spec_.layers - 1) * (rows + 1) *
                 ((cols + spec_.via_spacing - 1) / spec_.via_spacing) * w;
    return;
  }
  build_legacy();
}

void Device3d::build_legacy() {
  const ArchSpec& a = spec_.layer;
  const int rows = a.rows, cols = a.cols, w = a.channel_width;
  graph_.add_nodes(per_layer_nodes_ * spec_.layers);

  // Fc evenly spaced track indices.
  std::vector<int> tracks;
  for (int i = 0; i < a.fc(); ++i) tracks.push_back(i * w / a.fc());
  const auto pairs = switchbox_track_pairs(a.switch_pattern, w);

  for (int layer = 0; layer < spec_.layers; ++layer) {
    // Connection blocks (as in the 2-D Device).
    for (int y = 0; y < rows; ++y) {
      for (int x = 0; x < cols; ++x) {
        const NodeId b = block_node(layer, x, y);
        for (const int t : tracks) {
          graph_.add_edge(b, wire_node(layer, Dir::kHorizontal, x, y, t), 1.0);
          graph_.add_edge(b, wire_node(layer, Dir::kHorizontal, x, y + 1, t), 1.0);
          graph_.add_edge(b, wire_node(layer, Dir::kVertical, x, y, t), 1.0);
          graph_.add_edge(b, wire_node(layer, Dir::kVertical, x + 1, y, t), 1.0);
        }
      }
    }
    // Switch blocks.
    for (int y = 0; y <= rows; ++y) {
      for (int x = 0; x <= cols; ++x) {
        struct Side {
          bool present;
          Dir dir;
          int sx, sy;
        };
        const Side sides[4] = {
            {x >= 1, Dir::kHorizontal, x - 1, y},
            {x <= cols - 1, Dir::kHorizontal, x, y},
            {y >= 1, Dir::kVertical, x, y - 1},
            {y <= rows - 1, Dir::kVertical, x, y},
        };
        for (int s1 = 0; s1 < 4; ++s1) {
          if (!sides[s1].present) continue;
          for (int s2 = s1 + 1; s2 < 4; ++s2) {
            if (!sides[s2].present) continue;
            for (const auto& [ta, tb] : pairs) {
              graph_.add_edge(wire_node(layer, sides[s1].dir, sides[s1].sx, sides[s1].sy, ta),
                              wire_node(layer, sides[s2].dir, sides[s2].sx, sides[s2].sy, tb),
                              1.0);
            }
          }
        }
      }
    }
    // Vias to the layer above: track-aligned, on every via_spacing-th
    // horizontal channel tile.
    if (layer + 1 < spec_.layers) {
      for (int y = 0; y <= rows; ++y) {
        for (int x = 0; x < cols; x += spec_.via_spacing) {
          for (int t = 0; t < w; ++t) {
            graph_.add_edge(wire_node(layer, Dir::kHorizontal, x, y, t),
                            wire_node(layer + 1, Dir::kHorizontal, x, y, t),
                            spec_.via_weight);
            ++via_count_;
          }
        }
      }
    }
  }
}

NodeId Device3d::block_node(int layer, int x, int y) const {
  FPR_CHECK(layer >= 0 && layer < spec_.layers,
            "block_node layer " << layer << " outside [0, " << spec_.layers << ")");
  FPR_CHECK(x >= 0 && x < spec_.layer.cols && y >= 0 && y < spec_.layer.rows,
            "block_node (" << x << ", " << y << ") outside the " << spec_.layer.cols << "x"
                           << spec_.layer.rows << " layer");
  return static_cast<NodeId>(layer) * per_layer_nodes_ +
         static_cast<NodeId>(y * spec_.layer.cols + x);
}

NodeId Device3d::wire_node(int layer, Dir dir, int x, int y, int track) const {
  const int w = spec_.layer.channel_width;
  const NodeId base = static_cast<NodeId>(layer) * per_layer_nodes_;
  if (dir == Dir::kHorizontal) {
    FPR_CHECK(x >= 0 && x < spec_.layer.cols && y >= 0 && y <= spec_.layer.rows,
              "horizontal wire_node (" << x << ", " << y << ") outside the " << spec_.layer.cols
                                       << "x" << spec_.layer.rows << " layer");
    return base + hwire_base_ + static_cast<NodeId>((y * spec_.layer.cols + x) * w + track);
  }
  FPR_CHECK(x >= 0 && x <= spec_.layer.cols && y >= 0 && y < spec_.layer.rows,
            "vertical wire_node (" << x << ", " << y << ") outside the " << spec_.layer.cols
                                   << "x" << spec_.layer.rows << " layer");
  return base + vwire_base_ + static_cast<NodeId>((y * (spec_.layer.cols + 1) + x) * w + track);
}

bool Device3d::is_block(NodeId v) const {
  return v % per_layer_nodes_ < blocks_per_layer_;
}

}  // namespace fpr
