#pragma once

#include <vector>

#include "fpga/arch.hpp"
#include "graph/graph.hpp"

namespace fpr {

/// A concrete FPGA device: the routing graph induced by an ArchSpec
/// (Section 2, Figure 2), with the bookkeeping the router needs to commit
/// wire segments to nets and to track per-channel-tile occupancy.
///
/// Graph layout:
///  - one node per logic block (nets terminate on block nodes; a block node
///    stands for the cluster of physically distinct pins of that block, so
///    block nodes are shared between nets while wire nodes are exclusive);
///  - one node per wire segment: track t of the horizontal channel y
///    (y in [0, rows], i.e. channels below row 0 through above the top row)
///    at tile x, and symmetrically for vertical channels;
///  - connection-block edges from each block to Fc evenly-spaced tracks of
///    the four adjacent channel segments;
///  - switch-block edges between wire segments meeting at each channel
///    intersection, following the ArchSpec's SwitchPattern.
///
/// All base edge weights are 1.0 (one unit of wirelength per hop); the
/// router layers congestion on top and reset() restores this base state.
class Device {
 public:
  explicit Device(const ArchSpec& spec);

  const ArchSpec& spec() const { return spec_; }
  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  enum class Dir { kHorizontal, kVertical };

  struct WireRef {
    Dir dir = Dir::kHorizontal;
    int x = 0;      // tile column (horizontal) or channel index (vertical)
    int y = 0;      // channel index (horizontal) or tile row (vertical)
    int track = 0;
  };

  NodeId block_node(int x, int y) const;
  NodeId wire_node(Dir dir, int x, int y, int track) const;

  bool is_block(NodeId v) const { return v < block_count_; }
  bool is_wire(NodeId v) const { return v >= block_count_ && v < graph_.node_count(); }

  /// Decodes a wire node id; precondition is_wire(v).
  WireRef wire_ref(NodeId v) const;

  /// All wire nodes sharing a channel tile with `wire` (itself excluded);
  /// these are the segments competing for the same channel capacity, the
  /// ones the router's congestion model penalizes.
  std::vector<NodeId> tile_siblings(NodeId wire) const;

  int block_count() const { return block_count_; }
  int wire_count() const { return graph_.node_count() - block_count_; }

  /// Number of wire nodes currently consumed (inactive).
  int used_wire_count() const;

  /// Restores every node/edge to active and every weight to the base 1.0.
  void reset();

 private:
  ArchSpec spec_;
  Graph graph_;
  NodeId block_count_ = 0;
  NodeId hwire_base_ = 0;  // first horizontal wire node
  NodeId vwire_base_ = 0;  // first vertical wire node
};

}  // namespace fpr
