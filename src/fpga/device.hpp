#pragma once

#include <memory>
#include <vector>

#include "fpga/arch.hpp"
#include "fpga/faults.hpp"
#include "graph/graph.hpp"

namespace fpr {

/// Which routing-graph builder a Device (or Device3d) uses.
enum class DeviceBuild {
  /// Stamp the graph from a verified tile template when one is available
  /// for the spec (tile_template.hpp), else fall back to the legacy
  /// incremental builder. The resulting graph is bit-identical either way.
  kAuto,
  /// Force the legacy per-element builder. Retained as the executable
  /// specification the template compiler learns from and the differential
  /// suite compares against (same policy as dijkstra_reference.hpp).
  kLegacy,
};

/// A concrete FPGA device: the routing graph induced by an ArchSpec
/// (Section 2, Figure 2), with the bookkeeping the router needs to commit
/// wire segments to nets and to track per-channel-tile occupancy.
///
/// Graph layout:
///  - one node per logic block (nets terminate on block nodes; a block node
///    stands for the cluster of physically distinct pins of that block, so
///    block nodes are shared between nets while wire nodes are exclusive);
///  - one node per wire segment: track t of the horizontal channel y
///    (y in [0, rows], i.e. channels below row 0 through above the top row)
///    at tile x, and symmetrically for vertical channels;
///  - connection-block edges from each block to Fc evenly-spaced tracks of
///    the four adjacent channel segments;
///  - switch-block edges between wire segments meeting at each channel
///    intersection, following the ArchSpec's SwitchPattern.
///
/// All base edge weights are 1.0 (one unit of wirelength per hop); the
/// router layers congestion on top and reset() restores this base state.
class Device {
 public:
  explicit Device(const ArchSpec& spec, DeviceBuild build = DeviceBuild::kAuto);

  const ArchSpec& spec() const { return spec_; }
  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  /// True when the graph was stamped from a tile template (and still uses
  /// the tiled representation).
  bool tiled() const { return graph_.tiled(); }

  enum class Dir { kHorizontal, kVertical };

  struct WireRef {
    Dir dir = Dir::kHorizontal;
    int x = 0;      // tile column (horizontal) or channel index (vertical)
    int y = 0;      // channel index (horizontal) or tile row (vertical)
    int track = 0;
  };

  NodeId block_node(int x, int y) const;
  NodeId wire_node(Dir dir, int x, int y, int track) const;

  bool is_block(NodeId v) const { return v < block_count_; }
  bool is_wire(NodeId v) const { return v >= block_count_ && v < graph_.node_count(); }

  /// Decodes a wire node id; precondition is_wire(v).
  WireRef wire_ref(NodeId v) const;

  /// Position of a node on the unified half-tile grid that interleaves
  /// blocks and channels: block (x, y) sits at (2x+1, 2y+1), a horizontal
  /// channel-y wire at tile x sits at (2x+1, 2y), a vertical channel-x wire
  /// at tile y sits at (2x, 2y+1). The grid spans [0, 2*cols] x [0, 2*rows]
  /// and every edge of the routing graph (connection-block or switch-block)
  /// connects nodes within Chebyshev distance 2 — the locality bound the
  /// net-parallel router's footprint rectangles are built on (partition.hpp).
  struct TilePos {
    int x = 0;
    int y = 0;
  };
  TilePos node_tile(NodeId v) const;

  /// All wire nodes sharing a channel tile with `wire` (itself excluded);
  /// these are the segments competing for the same channel capacity, the
  /// ones the router's congestion model penalizes.
  std::vector<NodeId> tile_siblings(NodeId wire) const;

  /// Allocation-free form of tile_siblings() for hot paths: invokes
  /// `fn(sibling)` for each sibling in ascending id order. The W tracks of
  /// a channel tile occupy consecutive node ids, so this is pure index
  /// arithmetic — the vector overload above is kept for tests.
  template <typename Fn>
  void for_each_tile_sibling(NodeId wire, Fn&& fn) const {
    const WireRef ref = wire_ref(wire);  // FPR_CHECKs is_wire(wire)
    const NodeId first = wire - static_cast<NodeId>(ref.track);
    for (int t = 0; t < spec_.channel_width; ++t) {
      const NodeId v = first + static_cast<NodeId>(t);
      if (v != wire) fn(v);
    }
  }

  int block_count() const { return block_count_; }
  int wire_count() const { return graph_.node_count() - block_count_; }

  /// Edge-id classification: the constructor adds every connection-block
  /// edge before the first switch-block edge, so one boundary id splits
  /// the two categories. The fault model uses this to target dead
  /// connection-block pins vs dead switchbox connections separately.
  bool is_connection_edge(EdgeId e) const { return e >= 0 && e < connection_edge_count_; }
  bool is_switch_edge(EdgeId e) const {
    return e >= connection_edge_count_ && e < graph_.edge_count();
  }

  /// Number of wire nodes currently consumed by nets (inactive and NOT
  /// faulted — injected defects are permanent, not routing state).
  int used_wire_count() const;

  /// Draws the defect set `spec` induces on this device (FaultModel::draw)
  /// and applies it. Faults are persistent: every subsequent reset()
  /// restores the base state and then re-applies them, so rip-up passes
  /// never resurrect a dead wire. Replaces any previously installed fault
  /// set. FPR_CHECKs that the spec is valid.
  void install_faults(const FaultSpec& spec);

  /// Removes every injected fault and restores the pristine device.
  void clear_faults();

  /// The installed fault set, or nullptr for a pristine device.
  const FaultModel* faults() const { return faults_.get(); }
  bool has_faults() const { return faults_ != nullptr && !faults_->empty(); }

  /// Applies a live fault event on top of whatever is installed AND routed:
  /// the named elements join a cumulative overlay that — like installed
  /// FaultSpec defects — is re-applied by every subsequent reset(), so a
  /// later rip-up pass never resurrects an element that died mid-service.
  /// Unlike install_faults() this does NOT reset routing state: currently
  /// active elements are removed in place, already-inactive ones (consumed
  /// by a net, or already dead) are only recorded — committed routing on
  /// unrelated wires is byte-untouched, which is the precondition of the
  /// incremental repair engine (router/repair.hpp). FPR_CHECKs id ranges.
  void apply_fault_event(const FaultEvent& event);

  /// Cumulative union of every event applied since construction (or the
  /// last clear_fault_events()). Replaying this on a fresh device — probe
  /// devices, journal replay — reproduces the exact overlay.
  const FaultEvent& fault_event_overlay() const { return events_; }
  bool has_fault_events() const { return !events_.empty(); }
  bool event_wire_faulted(NodeId v) const { return events_.wire_faulted(v); }
  bool event_edge_faulted(EdgeId e) const { return events_.edge_faulted(e); }

  /// Drops the event overlay and restores the device (routing state
  /// included — same semantics as clear_faults()).
  void clear_fault_events();

  /// Restores every node/edge to active and every weight to the base 1.0,
  /// then re-applies the installed faults (if any). O(touched state), not
  /// O(V + E): the graph records which elements each pass mutated and only
  /// those are replayed — in the exact ascending-id order the historical
  /// full-scan reset used, so the resulting state (weights, activity,
  /// aggregate float trajectories) is bit-identical to it.
  void reset();

 private:
  void build_legacy();

  ArchSpec spec_;
  Graph graph_;
  NodeId block_count_ = 0;
  NodeId hwire_base_ = 0;  // first horizontal wire node
  NodeId vwire_base_ = 0;  // first vertical wire node
  EdgeId connection_edge_count_ = 0;  // edges below this id are CB edges
  // shared_ptr so Device copies (one per width probe) share the immutable
  // model instead of re-sampling it.
  std::shared_ptr<const FaultModel> faults_;
  FaultEvent events_;  // live-event overlay, re-applied by reset()
};

}  // namespace fpr
