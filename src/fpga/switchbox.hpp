#pragma once

#include <utility>
#include <vector>

#include "fpga/arch.hpp"

namespace fpr {

/// Track-to-track connections a switch block offers between two of its
/// sides, as (incoming track, outgoing track) pairs. The pattern is uniform
/// across the device; the Device builder instantiates it at every channel
/// intersection for every pair of present sides.
std::vector<std::pair<int, int>> switchbox_track_pairs(SwitchPattern pattern, int channel_width);

}  // namespace fpr
