#include "fpga/switchbox.hpp"

namespace fpr {

std::vector<std::pair<int, int>> switchbox_track_pairs(SwitchPattern pattern, int channel_width) {
  std::vector<std::pair<int, int>> pairs;
  switch (pattern) {
    case SwitchPattern::kDisjoint:
      pairs.reserve(static_cast<std::size_t>(channel_width));
      for (int t = 0; t < channel_width; ++t) pairs.emplace_back(t, t);
      break;
    case SwitchPattern::kAugmented:
      pairs.reserve(static_cast<std::size_t>(channel_width) * 2);
      for (int t = 0; t < channel_width; ++t) {
        pairs.emplace_back(t, t);
        const int shifted = (t + 1) % channel_width;
        if (shifted != t) pairs.emplace_back(t, shifted);  // W == 1 degenerates
      }
      break;
  }
  return pairs;
}

}  // namespace fpr
