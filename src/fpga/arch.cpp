#include "fpga/arch.hpp"

#include <cmath>
#include <sstream>

namespace fpr {

ArchSpec ArchSpec::xc3000(int rows, int cols, int channel_width) {
  ArchSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.channel_width = channel_width;
  spec.switch_pattern = SwitchPattern::kAugmented;
  spec.fc_rule = FcRule::kFraction60;
  return spec;
}

ArchSpec ArchSpec::xc4000(int rows, int cols, int channel_width) {
  ArchSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.channel_width = channel_width;
  spec.switch_pattern = SwitchPattern::kDisjoint;
  spec.fc_rule = FcRule::kFullWidth;
  return spec;
}

ArchSpec ArchSpec::with_width(int w) const {
  ArchSpec spec = *this;
  spec.channel_width = w;
  return spec;
}

int ArchSpec::fc() const {
  switch (fc_rule) {
    case FcRule::kFraction60:
      return static_cast<int>(std::ceil(0.6 * channel_width));
    case FcRule::kFullWidth:
      return channel_width;
  }
  return channel_width;
}

int ArchSpec::fs() const {
  switch (switch_pattern) {
    case SwitchPattern::kDisjoint:
      return 3;
    case SwitchPattern::kAugmented:
      return 6;
  }
  return 3;
}

std::string ArchSpec::describe() const {
  std::ostringstream out;
  out << rows << "x" << cols << " array, W=" << channel_width << ", Fs=" << fs()
      << ", Fc=" << fc();
  return out.str();
}

}  // namespace fpr
