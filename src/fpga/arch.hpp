#pragma once

#include <string>

namespace fpr {

/// Switch-block connection pattern, parameterizing the flexibility Fs —
/// "the pre-specified fanout of a channel edge inside a switch block" [12].
enum class SwitchPattern {
  /// Each track t connects to track t on every other side (Fs = 3) — the
  /// subset/disjoint pattern of the Xilinx 4000-series model of Table 3.
  kDisjoint,
  /// Each track t connects to tracks t and (t+1) mod W on every other side
  /// (Fs = 6) — the 3000-series model of Table 2.
  kAugmented,
};

/// How the connection-block flexibility Fc is derived from the channel
/// width W.
enum class FcRule {
  kFraction60,  // Fc = ceil(0.6 * W)  (3000-series, as in Table 2)
  kFullWidth,   // Fc = W              (4000-series, as in Table 3)
};

/// A symmetrical-array FPGA architecture (Section 2, Figure 1): a rows x
/// cols array of logic blocks, channels of W parallel tracks between every
/// adjacent pair of rows/columns (and around the perimeter), switch blocks
/// at channel intersections, and connection blocks tying logic-block pins to
/// Fc tracks of each adjacent channel.
struct ArchSpec {
  int rows = 0;
  int cols = 0;
  int channel_width = 0;  // W
  SwitchPattern switch_pattern = SwitchPattern::kDisjoint;
  FcRule fc_rule = FcRule::kFullWidth;

  /// Xilinx 3000-series model: Fs = 6, Fc = ceil(0.6 * W) (Table 2).
  static ArchSpec xc3000(int rows, int cols, int channel_width);

  /// Xilinx 4000-series model: Fs = 3, Fc = W (Table 3).
  static ArchSpec xc4000(int rows, int cols, int channel_width);

  /// Same architecture family at a different channel width (Fc re-derived);
  /// this is the knob the minimum-channel-width search turns.
  ArchSpec with_width(int w) const;

  /// Connection-block flexibility for the current width.
  int fc() const;

  /// Switch-block flexibility implied by the pattern (3 or 6).
  int fs() const;

  bool valid() const { return rows >= 1 && cols >= 1 && channel_width >= 1; }

  std::string describe() const;
};

}  // namespace fpr
