#include "fpga/device.hpp"

#include <algorithm>

#include "core/contract.hpp"
#include "fpga/switchbox.hpp"
#include "fpga/tile_template.hpp"

namespace fpr {

namespace {

/// Fc evenly spaced track indices in [0, W).
std::vector<int> fc_tracks(int fc, int channel_width) {
  std::vector<int> tracks;
  tracks.reserve(static_cast<std::size_t>(fc));
  for (int i = 0; i < fc; ++i) {
    tracks.push_back(i * channel_width / fc);
  }
  return tracks;
}

}  // namespace

Device::Device(const ArchSpec& spec, DeviceBuild build) : spec_(spec) {
  FPR_CHECK(spec.valid(), "Device spec " << spec.rows << "x" << spec.cols << " width "
                                         << spec.channel_width
                                         << " — rows/cols/channel_width must all be >= 1");
  const int rows = spec_.rows;
  const int cols = spec_.cols;
  const int w = spec_.channel_width;

  block_count_ = static_cast<NodeId>(rows * cols);
  const NodeId hwires = static_cast<NodeId>((rows + 1) * cols * w);
  const NodeId vwires = static_cast<NodeId>((cols + 1) * rows * w);
  hwire_base_ = block_count_;
  vwire_base_ = block_count_ + hwires;

  std::shared_ptr<const TiledTopology> topo;
  if (build == DeviceBuild::kAuto) topo = tiled_topology_for(spec_);
  if (topo != nullptr) {
    // Stamped path: node ids, edge ids, insertion order and weights all come
    // from the verified template; the id-layout invariants the accessors
    // below rely on are cross-checked here, and the legacy emission order
    // (every connection-block edge before the first switch-block edge) makes
    // the CB/SB boundary pure arithmetic.
    FPR_CHECK(topo->node_count == block_count_ + hwires + vwires,
              "tile template synthesized " << topo->node_count << " nodes for a device of "
                                           << block_count_ + hwires + vwires);
    connection_edge_count_ =
        static_cast<EdgeId>(static_cast<std::int64_t>(rows) * cols * spec_.fc() * 4);
    FPR_CHECK(topo->edge_count >= connection_edge_count_,
              "tile template synthesized " << topo->edge_count << " edges, fewer than the "
                                           << connection_edge_count_ << " connection-block edges");
    graph_ = Graph::from_tiled(std::move(topo));
  } else {
    build_legacy();
  }
  // Base state is in place; from here on every mutation is recorded so
  // reset() can undo a routing pass in O(touched).
  graph_.enable_touch_tracking();
}

void Device::build_legacy() {
  const int rows = spec_.rows;
  const int cols = spec_.cols;
  const int w = spec_.channel_width;
  const NodeId hwires = static_cast<NodeId>((rows + 1) * cols * w);
  const NodeId vwires = static_cast<NodeId>((cols + 1) * rows * w);
  graph_.add_nodes(block_count_ + hwires + vwires);

  // Connection blocks: each logic block reaches Fc tracks of the channel
  // segment on each of its four sides.
  const std::vector<int> tracks = fc_tracks(spec_.fc(), w);
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      const NodeId b = block_node(x, y);
      for (const int t : tracks) {
        graph_.add_edge(b, wire_node(Dir::kHorizontal, x, y, t), 1.0);      // south
        graph_.add_edge(b, wire_node(Dir::kHorizontal, x, y + 1, t), 1.0);  // north
        graph_.add_edge(b, wire_node(Dir::kVertical, x, y, t), 1.0);        // west
        graph_.add_edge(b, wire_node(Dir::kVertical, x + 1, y, t), 1.0);    // east
      }
    }
  }

  connection_edge_count_ = graph_.edge_count();
  FPR_CHECK(connection_edge_count_ ==
                static_cast<EdgeId>(static_cast<std::int64_t>(rows) * cols * spec_.fc() * 4),
            "legacy builder emitted " << connection_edge_count_
                                      << " connection-block edges; the arithmetic id scheme "
                                         "expects rows*cols*fc*4");

  // Switch blocks: at every channel intersection (x, y), x in [0, cols],
  // y in [0, rows], connect the wire segments of every pair of present
  // sides with the architecture's track pattern.
  const auto pairs = switchbox_track_pairs(spec_.switch_pattern, w);
  for (int y = 0; y <= rows; ++y) {
    for (int x = 0; x <= cols; ++x) {
      // The four wire groups meeting at this intersection (or -1 if absent
      // at the device perimeter).
      struct Side {
        bool present;
        Dir dir;
        int sx, sy;
      };
      const Side sides[4] = {
          {x >= 1, Dir::kHorizontal, x - 1, y},        // west
          {x <= cols - 1, Dir::kHorizontal, x, y},     // east
          {y >= 1, Dir::kVertical, x, y - 1},          // south
          {y <= rows - 1, Dir::kVertical, x, y},       // north
      };
      for (int a = 0; a < 4; ++a) {
        if (!sides[a].present) continue;
        for (int b = a + 1; b < 4; ++b) {
          if (!sides[b].present) continue;
          for (const auto& [ta, tb] : pairs) {
            graph_.add_edge(wire_node(sides[a].dir, sides[a].sx, sides[a].sy, ta),
                            wire_node(sides[b].dir, sides[b].sx, sides[b].sy, tb), 1.0);
          }
        }
      }
    }
  }
}

NodeId Device::block_node(int x, int y) const {
  FPR_CHECK(x >= 0 && x < spec_.cols && y >= 0 && y < spec_.rows,
            "block_node (" << x << ", " << y << ") outside the " << spec_.cols << "x"
                           << spec_.rows << " array");
  return static_cast<NodeId>(y * spec_.cols + x);
}

NodeId Device::wire_node(Dir dir, int x, int y, int track) const {
  const int w = spec_.channel_width;
  if (dir == Dir::kHorizontal) {
    FPR_CHECK(x >= 0 && x < spec_.cols && y >= 0 && y <= spec_.rows && track >= 0 && track < w,
              "horizontal wire_node (" << x << ", " << y << ") track " << track
                                       << " outside the " << spec_.cols << "x" << spec_.rows
                                       << " array at width " << w);
    return hwire_base_ + static_cast<NodeId>((y * spec_.cols + x) * w + track);
  }
  FPR_CHECK(x >= 0 && x <= spec_.cols && y >= 0 && y < spec_.rows && track >= 0 && track < w,
            "vertical wire_node (" << x << ", " << y << ") track " << track << " outside the "
                                   << spec_.cols << "x" << spec_.rows << " array at width "
                                   << w);
  return vwire_base_ + static_cast<NodeId>((y * (spec_.cols + 1) + x) * w + track);
}

Device::WireRef Device::wire_ref(NodeId v) const {
  FPR_CHECK(is_wire(v), "wire_ref(" << v << ") — node is not a wire (wires are ["
                                    << block_count_ << ", " << graph_.node_count() << "))");
  const int w = spec_.channel_width;
  WireRef ref;
  if (v < vwire_base_) {
    const int idx = v - hwire_base_;
    ref.dir = Dir::kHorizontal;
    ref.track = idx % w;
    ref.x = (idx / w) % spec_.cols;
    ref.y = (idx / w) / spec_.cols;
  } else {
    const int idx = v - vwire_base_;
    ref.dir = Dir::kVertical;
    ref.track = idx % w;
    ref.x = (idx / w) % (spec_.cols + 1);
    ref.y = (idx / w) / (spec_.cols + 1);
  }
  return ref;
}

Device::TilePos Device::node_tile(NodeId v) const {
  if (is_block(v)) {
    const int x = v % spec_.cols;
    const int y = v / spec_.cols;
    return TilePos{2 * x + 1, 2 * y + 1};
  }
  const WireRef ref = wire_ref(v);  // FPR_CHECKs the id range
  if (ref.dir == Dir::kHorizontal) {
    return TilePos{2 * ref.x + 1, 2 * ref.y};
  }
  return TilePos{2 * ref.x, 2 * ref.y + 1};
}

std::vector<NodeId> Device::tile_siblings(NodeId wire) const {
  const WireRef ref = wire_ref(wire);
  std::vector<NodeId> siblings;
  siblings.reserve(static_cast<std::size_t>(spec_.channel_width) - 1);
  for (int t = 0; t < spec_.channel_width; ++t) {
    const NodeId v = wire_node(ref.dir, ref.x, ref.y, t);
    if (v != wire) siblings.push_back(v);
  }
  return siblings;
}

int Device::used_wire_count() const {
  int used = 0;
  for (NodeId v = block_count_; v < graph_.node_count(); ++v) {
    if (!graph_.node_active(v)) ++used;
  }
  // Faulted wires are permanently inactive but were never consumed by a
  // net; reporting them as "used" would make degradation stats double-count
  // defects as routing demand. Event-dead wires likewise — minus any
  // overlap with the installed fault set, which was already subtracted.
  if (faults_ != nullptr) used -= static_cast<int>(faults_->dead_wires().size());
  for (const NodeId v : events_.dead_wires) {
    if (faults_ == nullptr || !faults_->wire_faulted(v)) --used;
  }
  return used;
}

void Device::install_faults(const FaultSpec& spec) {
  FPR_CHECK(spec.valid(), "install_faults: invalid spec " << spec.describe());
  faults_ = std::make_shared<const FaultModel>(FaultModel::draw(*this, spec));
  reset();
}

void Device::clear_faults() {
  faults_.reset();
  reset();
}

void Device::apply_fault_event(const FaultEvent& event) {
  for (const NodeId v : event.dead_wires) {
    FPR_CHECK(is_wire(v), "apply_fault_event: node " << v << " is not a wire (wires are ["
                                                     << block_count_ << ", "
                                                     << graph_.node_count() << "))");
    // Activity-guarded: a wire already consumed by a net (or already dead)
    // stays as-is; the overlay record below is what makes it permanent.
    if (graph_.node_active(v)) graph_.remove_node(v);
  }
  for (const EdgeId e : event.dead_edges) {
    FPR_CHECK(e >= 0 && e < graph_.edge_count(),
              "apply_fault_event: edge " << e << " outside [0, " << graph_.edge_count() << ")");
    if (graph_.edge_active(e)) graph_.remove_edge(e);
  }
  events_.merge(event);
}

void Device::clear_fault_events() {
  events_ = FaultEvent{};
  reset();
}

void Device::reset() {
  if (graph_.touch_tracking()) {
    // Replay only what this pass mutated, in ascending id order — the same
    // subsequence of operations the full scan below would perform (elements
    // it skips were never mutated), so the restored state is bit-identical.
    std::vector<NodeId> nodes(graph_.touched_nodes().begin(), graph_.touched_nodes().end());
    std::vector<EdgeId> edges(graph_.touched_edges().begin(), graph_.touched_edges().end());
    std::sort(nodes.begin(), nodes.end());
    std::sort(edges.begin(), edges.end());
    graph_.clear_touched();
    for (const NodeId v : nodes) {
      if (!graph_.node_active(v)) graph_.restore_node(v);
    }
    for (const EdgeId e : edges) {
      if (!graph_.edge_active(e)) graph_.restore_edge(e);
      if (graph_.edge_weight(e) != 1.0) graph_.set_edge_weight(e, 1.0);
    }
  } else {
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
      if (!graph_.node_active(v)) graph_.restore_node(v);
    }
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      if (!graph_.edge_active(e)) graph_.restore_edge(e);
      if (graph_.edge_weight(e) != 1.0) graph_.set_edge_weight(e, 1.0);
    }
  }
  if (faults_ != nullptr) {
    // Defects outlive routing state: every pass starts from the same
    // faulted-but-empty device.
    for (const NodeId v : faults_->dead_wires()) graph_.remove_node(v);
    for (const EdgeId e : faults_->dead_edges()) graph_.remove_edge(e);
  }
  // The live-event overlay outlives routing state the same way. Guarded
  // because an event may name an element the installed fault set already
  // killed above.
  for (const NodeId v : events_.dead_wires) {
    if (graph_.node_active(v)) graph_.remove_node(v);
  }
  for (const EdgeId e : events_.dead_edges) {
    if (graph_.edge_active(e)) graph_.remove_edge(e);
  }
}

}  // namespace fpr
