#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace fpr {

class Device;

/// Declarative description of a defect distribution for one device —
/// the knobs of the fault-injection layer (ISSUE 4; cf. VTR's per-resource
/// availability and the defect-tolerant 130nm FPGA of PAPERS.md).
///
/// All rates are integral per-mille (0..1000) rather than doubles so that
/// the one-line serialization below round-trips exactly and committed
/// sweep records stay byte-identical across platforms. Sampling is
/// per-element splitmix64 hashing (core/rng.hpp) keyed by (seed, salt,
/// element id): whether a given wire or switch is dead depends only on the
/// spec and the element's id, never on iteration order. That id-keying is
/// also what makes draws builder-independent: the tile-template stamper
/// (DESIGN.md §12) assigns every node and edge the same id the legacy
/// per-element builder did, so a spec induces the identical defect set on
/// a stamped device — pinned by the device differential suite.
struct FaultSpec {
  std::uint64_t seed = 1;
  int wire_permille = 0;    // stuck-open wire segments (per-mille of wire nodes)
  int switch_permille = 0;  // dead switchbox connections (per-mille of SB edges)
  int pin_permille = 0;     // dead connection-block pins (per-mille of CB edges)
  int clusters = 0;         // clustered tile/channel outages (fab defects)
  int cluster_radius = 1;   // Chebyshev radius of each cluster, in tiles

  /// True when this spec can inject at least one fault category.
  bool any() const {
    return wire_permille > 0 || switch_permille > 0 || pin_permille > 0 || clusters > 0;
  }

  /// True when every field is in its legal range (rates in [0, 1000],
  /// non-negative cluster geometry).
  bool valid() const;

  /// One-line `key=value` serialization, the replay format:
  ///   faults seed=7 wires=25 switches=10 pins=5 clusters=1 radius=2
  std::string describe() const;
  static std::optional<FaultSpec> parse(const std::string& line);

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// A live defect delta against an *already-routed* device — the unit the
/// incremental repair engine (router/repair.hpp) consumes. Where a
/// FaultSpec describes a defect *distribution* sampled before routing, a
/// FaultEvent names the concrete elements that just died mid-service
/// ("this wire broke, that switch fused"), so it can be applied to a
/// device without disturbing the routing state already committed on it
/// (Device::apply_fault_event).
///
/// Both lists are kept sorted and unique: normalize() enforces it after
/// hand-assembly, parse() returns normalized events, and the membership
/// tests below assume it. That also makes describe() canonical — equal
/// events serialize to equal lines, which the repair journal's replay
/// bit-identity contract relies on.
struct FaultEvent {
  std::vector<NodeId> dead_wires;  // sorted, unique wire-node ids
  std::vector<EdgeId> dead_edges;  // sorted, unique edge ids

  bool empty() const { return dead_wires.empty() && dead_edges.empty(); }
  int fault_count() const { return static_cast<int>(dead_wires.size() + dead_edges.size()); }

  /// Sorts and dedupes both lists (idempotent).
  void normalize();

  /// Binary-search membership; lists must be normalized.
  bool wire_faulted(NodeId v) const;
  bool edge_faulted(EdgeId e) const;

  /// Set-union of `other` into this event; both stay normalized.
  void merge(const FaultEvent& other);

  /// One-line serialization, the journal/replay format. Empty categories
  /// are omitted:
  ///   event wires=12,40 edges=7
  std::string describe() const;
  static std::optional<FaultEvent> parse(const std::string& line);

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// The concrete defect set a FaultSpec induces on one Device: the dead wire
/// nodes and dead edges, materialized once and then re-applied by every
/// Device::reset() so faults survive router passes.
///
/// Deterministic by construction: draw() depends only on (spec, device
/// topology), so the same seed yields the same fault set on every platform,
/// which is what makes fault repros replayable and the fault sweep's
/// committed JSON stable.
class FaultModel {
 public:
  FaultModel() = default;

  /// Samples the defect set `spec` induces on `device` (which must be in
  /// any state — only its topology is read).
  static FaultModel draw(const Device& device, const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }

  /// Stuck-open wire segments (sorted, unique wire-node ids).
  std::span<const NodeId> dead_wires() const { return dead_wires_; }

  /// Dead switchbox connections + dead connection-block pins (sorted,
  /// unique edge ids).
  std::span<const EdgeId> dead_edges() const { return dead_edges_; }

  bool wire_faulted(NodeId v) const;
  bool edge_faulted(EdgeId e) const;

  int fault_count() const {
    return static_cast<int>(dead_wires_.size() + dead_edges_.size());
  }
  bool empty() const { return dead_wires_.empty() && dead_edges_.empty(); }

 private:
  FaultSpec spec_;
  std::vector<NodeId> dead_wires_;  // sorted, unique
  std::vector<EdgeId> dead_edges_;  // sorted, unique
};

}  // namespace fpr
