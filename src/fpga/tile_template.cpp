#include "fpga/tile_template.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/contract.hpp"
#include "fpga/device.hpp"
#include "fpga/device3d.hpp"
#include "graph/graph.hpp"

namespace fpr {
namespace {

/// Boundary cut width per side on both axes: the outermost kCut rows/columns
/// of every role grid get their own patterns. One cell is what the device
/// perimeter actually perturbs; the second is margin. The full-sample and
/// held-out verification passes would catch a cut that is too narrow.
constexpr int kCut = 2;

/// Family-cache bound: cleared wholesale (deterministically) when full.
/// Sixteen families is far beyond any single run's working set — a width
/// search probes ~10 widths of one family.
constexpr std::size_t kCacheCap = 16;

struct RoleGeom {
  int tracks = 1;
  int xdim = 0;
  int ydim = 0;
  int xperiod = 1;
  int yperiod = 1;
};

/// Integer function of the sample-grid coordinates (nr, nc), bilinear:
/// g00 + gr*nr + gc*nc + grc*nr*nc. Fit from the four fit samples by plain
/// differences — exact in integers, no divisions, no rounding. nr/nc are
/// the target dims' offsets from the base sample in units of the sample
/// deltas, so congruent dims always evaluate exactly.
struct Lin {
  std::int64_t g00 = 0;
  std::int64_t gr = 0;
  std::int64_t gc = 0;
  std::int64_t grc = 0;

  std::int64_t at(std::int64_t nr, std::int64_t nc) const {
    return g00 + gr * nr + gc * nc + grc * nr * nc;
  }

  static Lin fit(std::int64_t f00, std::int64_t f10, std::int64_t f01, std::int64_t f11) {
    return Lin{f00, f10 - f00, f01 - f00, f11 - f10 - f01 + f00};
  }
};

/// One slot's concrete affine coefficients within a single sample device:
/// field(ux, uy) = a + dx*ux + dy*uy.
struct SlotFit {
  std::int64_t nbr_a = 0, nbr_dx = 0, nbr_dy = 0;
  std::int64_t edge_a = 0, edge_dx = 0, edge_dy = 0;
  Weight weight = 1.0;
};

/// The same slot with each coefficient promoted to a bilinear function of
/// the device size.
struct SlotSym {
  Lin nbr_a, nbr_dx, nbr_dy;
  Lin edge_a, edge_dx, edge_dy;
  Weight weight = 1.0;
};

// patterns[role][(yc * xclasses + xc) * tracks + t] -> ordered slot list
template <typename Slot>
using Patterns = std::vector<std::vector<std::vector<Slot>>>;

struct SampleFit {
  Patterns<SlotFit> roles;
  EdgeId edge_count = 0;
};

/// Representative cells of one axis class: c1 is the canonical cell; c2
/// (>= 0 only for interior classes) sits one period further in, providing
/// the second point the affine slope is fit from.
struct AxisRep {
  int c1 = 0;
  int c2 = -1;
};

AxisRep axis_rep(int dim, int period, int cls) {
  if (cls < kCut) return {cls, -1};
  if (cls >= kCut + period) return {dim - kCut + (cls - kCut - period), -1};
  const int rho = cls - kCut;  // interior classes are residues mod period
  const int c1 = kCut + (((rho - kCut) % period) + period) % period;
  return {c1, c1 + period};
}

struct Inc {
  NodeId nbr = 0;
  EdgeId e = 0;
  Weight w = 0;
};

void incident_of(const Graph& g, NodeId v, std::vector<Inc>& out) {
  out.clear();
  for (const EdgeId e : g.incident_edges(v)) {
    const Graph::Edge ed = g.edge(e);
    out.push_back({ed.u == v ? ed.v : ed.u, e, ed.weight});
  }
}

std::shared_ptr<const TiledTopology> build_topology(const std::vector<RoleGeom>& geom,
                                                    const Patterns<SlotFit>& fits,
                                                    EdgeId edge_count) {
  auto topo = std::make_shared<TiledTopology>();
  NodeId base = 0;
  for (std::size_t r = 0; r < geom.size(); ++r) {
    const RoleGeom& rg = geom[r];
    TiledRole role;
    role.base = base;
    role.tracks = rg.tracks;
    role.xdim = rg.xdim;
    role.ydim = rg.ydim;
    role.xlo = role.xhi = role.ylo = role.yhi = kCut;
    role.xperiod = rg.xperiod;
    role.yperiod = rg.yperiod;
    role.xclasses = 2 * kCut + rg.xperiod;
    role.yclasses = 2 * kCut + rg.yperiod;
    for (const auto& slots : fits[r]) {
      role.pattern_first.push_back(static_cast<std::uint32_t>(topo->slots.size()));
      role.pattern_count.push_back(static_cast<std::uint32_t>(slots.size()));
      for (const SlotFit& s : slots) {
        topo->slots.push_back(
            TiledSlot{s.nbr_a, s.nbr_dx, s.nbr_dy, s.edge_a, s.edge_dx, s.edge_dy, s.weight});
      }
    }
    base += role.count();
    topo->roles.push_back(std::move(role));
  }
  topo->node_count = base;
  topo->edge_count = edge_count;
  topo->validate();
  return topo;
}

/// The equivalence contract, checked exhaustively: every node's synthesized
/// incident list must equal the legacy graph's — same neighbor ids, same
/// edge ids, same order, same weights.
bool matches_legacy(const TiledTopology& topo, const Graph& g) {
  if (topo.node_count != g.node_count() || topo.edge_count != g.edge_count()) return false;
  bool ok = true;
  std::vector<Inc> legacy;
  topo.for_each_node([&](NodeId v, const TiledTopology::Decoded& d) {
    if (!ok) return;
    incident_of(g, v, legacy);
    std::size_t i = 0;
    topo.apply(d, [&](NodeId nbr, EdgeId e, const TiledSlot& s) {
      if (i >= legacy.size() || legacy[i].nbr != nbr || legacy[i].e != e ||
          legacy[i].w != s.base_weight) {
        ok = false;
      }
      ++i;
    });
    if (i != legacy.size()) ok = false;
  });
  return ok;
}

/// Legacy emission convention the tiled edge decode relies on: every edge's
/// first-emitted endpoint (u) is the smaller id.
bool lower_endpoint_first(const Graph& g) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Graph::Edge ed = g.edge(e);
    if (ed.u >= ed.v) return false;
  }
  return true;
}

/// Derives every class pattern of one sample device by affine fitting, then
/// verifies the fit over the *entire* sample grid (not just the reference
/// cells). Returns false — caller falls back to legacy — on any mismatch.
bool fit_sample(const std::vector<RoleGeom>& geom, const Graph& g, SampleFit& out) {
  if (!lower_endpoint_first(g)) return false;
  std::int64_t total = 0;
  for (const RoleGeom& rg : geom) {
    total += static_cast<std::int64_t>(rg.xdim) * rg.ydim * rg.tracks;
  }
  if (total != g.node_count()) return false;

  out.roles.assign(geom.size(), {});
  out.edge_count = g.edge_count();

  std::vector<Inc> l00, lx, ly;
  NodeId base = 0;
  for (std::size_t r = 0; r < geom.size(); ++r) {
    const RoleGeom& rg = geom[r];
    // Three period-cells of interior per axis: one to anchor, one for the
    // slope, and margin so the slope cell is not itself cut-adjacent.
    if (rg.xdim < 2 * kCut + 3 * rg.xperiod || rg.ydim < 2 * kCut + 3 * rg.yperiod) return false;
    const int xclasses = 2 * kCut + rg.xperiod;
    const int yclasses = 2 * kCut + rg.yperiod;
    auto node_at = [&](int x, int y, int t) {
      return base + static_cast<NodeId>(
                        (static_cast<std::int64_t>(y) * rg.xdim + x) * rg.tracks + t);
    };
    auto& classes = out.roles[r];
    classes.resize(static_cast<std::size_t>(xclasses) * yclasses * rg.tracks);
    std::size_t ci = 0;
    for (int yc = 0; yc < yclasses; ++yc) {
      const AxisRep ay = axis_rep(rg.ydim, rg.yperiod, yc);
      const int uy1 = ay.c1 / rg.yperiod;
      for (int xc = 0; xc < xclasses; ++xc) {
        const AxisRep ax = axis_rep(rg.xdim, rg.xperiod, xc);
        const int ux1 = ax.c1 / rg.xperiod;
        for (int t = 0; t < rg.tracks; ++t, ++ci) {
          incident_of(g, node_at(ax.c1, ay.c1, t), l00);
          const bool ix = ax.c2 >= 0;
          const bool iy = ay.c2 >= 0;
          if (ix) {
            incident_of(g, node_at(ax.c2, ay.c1, t), lx);
            if (lx.size() != l00.size()) return false;
          }
          if (iy) {
            incident_of(g, node_at(ax.c1, ay.c2, t), ly);
            if (ly.size() != l00.size()) return false;
          }
          auto& slots = classes[ci];
          slots.resize(l00.size());
          for (std::size_t i = 0; i < l00.size(); ++i) {
            SlotFit s;
            s.weight = l00[i].w;
            if ((ix && lx[i].w != s.weight) || (iy && ly[i].w != s.weight)) return false;
            s.nbr_dx = ix ? static_cast<std::int64_t>(lx[i].nbr) - l00[i].nbr : 0;
            s.nbr_dy = iy ? static_cast<std::int64_t>(ly[i].nbr) - l00[i].nbr : 0;
            s.edge_dx = ix ? static_cast<std::int64_t>(lx[i].e) - l00[i].e : 0;
            s.edge_dy = iy ? static_cast<std::int64_t>(ly[i].e) - l00[i].e : 0;
            s.nbr_a = static_cast<std::int64_t>(l00[i].nbr) - s.nbr_dx * ux1 - s.nbr_dy * uy1;
            s.edge_a = static_cast<std::int64_t>(l00[i].e) - s.edge_dx * ux1 - s.edge_dy * uy1;
            slots[i] = s;
          }
        }
      }
    }
    base += static_cast<NodeId>(static_cast<std::int64_t>(rg.xdim) * rg.ydim * rg.tracks);
  }
  return matches_legacy(*build_topology(geom, out.roles, out.edge_count), g);
}

/// A compiled family template: symbolic patterns plus the geometry needed to
/// stamp a TiledTopology at any congruent device size.
struct TileTemplateImpl {
  std::function<std::vector<RoleGeom>(int, int)> geometry;
  int rows0 = 0, cols0 = 0;  // base sample dims (instantiation floor)
  int dr = 1, dc = 1;        // sample deltas; target dims ≡ base (mod delta)
  Patterns<SlotSym> roles;
  Lin edge_count;

  std::shared_ptr<const TiledTopology> instantiate(int rows, int cols) const {
    FPR_CHECK(rows >= rows0 && (rows - rows0) % dr == 0 && cols >= cols0 &&
                  (cols - cols0) % dc == 0,
              "tile template instantiated at " << rows << "x" << cols << " — requires dims >= "
                                               << rows0 << "x" << cols0 << " congruent mod "
                                               << dr << "/" << dc);
    const std::int64_t nr = (rows - rows0) / dr;
    const std::int64_t nc = (cols - cols0) / dc;
    Patterns<SlotFit> fits(roles.size());
    for (std::size_t r = 0; r < roles.size(); ++r) {
      fits[r].resize(roles[r].size());
      for (std::size_t c = 0; c < roles[r].size(); ++c) {
        fits[r][c].resize(roles[r][c].size());
        for (std::size_t i = 0; i < roles[r][c].size(); ++i) {
          const SlotSym& sym = roles[r][c][i];
          fits[r][c][i] =
              SlotFit{sym.nbr_a.at(nr, nc),  sym.nbr_dx.at(nr, nc),  sym.nbr_dy.at(nr, nc),
                      sym.edge_a.at(nr, nc), sym.edge_dx.at(nr, nc), sym.edge_dy.at(nr, nc),
                      sym.weight};
        }
      }
    }
    return build_topology(geometry(rows, cols),
                          fits, static_cast<EdgeId>(edge_count.at(nr, nc)));
  }
};

/// Compiles a family template from five legacy sample builds: a 2x2 grid of
/// fit samples plus a held-out verify sample two deltas out on both axes
/// (where any dependence the bilinear fit could not represent would first
/// diverge). Returns nullptr on any fit or verification failure.
std::shared_ptr<const TileTemplateImpl> compile(
    std::function<std::vector<RoleGeom>(int, int)> geometry,
    const std::function<Graph(int, int)>& legacy, int rows0, int cols0, int dr, int dc) {
  SampleFit fit[2][2];
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const int rows = rows0 + a * dr;
      const int cols = cols0 + b * dc;
      const Graph g = legacy(rows, cols);
      if (!fit_sample(geometry(rows, cols), g, fit[a][b])) return nullptr;
    }
  }
  auto tmpl = std::make_shared<TileTemplateImpl>();
  tmpl->geometry = std::move(geometry);
  tmpl->rows0 = rows0;
  tmpl->cols0 = cols0;
  tmpl->dr = dr;
  tmpl->dc = dc;
  const SampleFit& f00 = fit[0][0];
  tmpl->roles.resize(f00.roles.size());
  for (std::size_t r = 0; r < f00.roles.size(); ++r) {
    const std::size_t nclasses = f00.roles[r].size();
    tmpl->roles[r].resize(nclasses);
    for (std::size_t c = 0; c < nclasses; ++c) {
      const auto& s00 = f00.roles[r][c];
      const auto& s10 = fit[1][0].roles[r][c];
      const auto& s01 = fit[0][1].roles[r][c];
      const auto& s11 = fit[1][1].roles[r][c];
      if (s10.size() != s00.size() || s01.size() != s00.size() || s11.size() != s00.size()) {
        return nullptr;  // class degree varies with size — not tile-periodic
      }
      auto& sym = tmpl->roles[r][c];
      sym.resize(s00.size());
      for (std::size_t i = 0; i < s00.size(); ++i) {
        if (s10[i].weight != s00[i].weight || s01[i].weight != s00[i].weight ||
            s11[i].weight != s00[i].weight) {
          return nullptr;
        }
        sym[i].weight = s00[i].weight;
        sym[i].nbr_a = Lin::fit(s00[i].nbr_a, s10[i].nbr_a, s01[i].nbr_a, s11[i].nbr_a);
        sym[i].nbr_dx = Lin::fit(s00[i].nbr_dx, s10[i].nbr_dx, s01[i].nbr_dx, s11[i].nbr_dx);
        sym[i].nbr_dy = Lin::fit(s00[i].nbr_dy, s10[i].nbr_dy, s01[i].nbr_dy, s11[i].nbr_dy);
        sym[i].edge_a = Lin::fit(s00[i].edge_a, s10[i].edge_a, s01[i].edge_a, s11[i].edge_a);
        sym[i].edge_dx =
            Lin::fit(s00[i].edge_dx, s10[i].edge_dx, s01[i].edge_dx, s11[i].edge_dx);
        sym[i].edge_dy =
            Lin::fit(s00[i].edge_dy, s10[i].edge_dy, s01[i].edge_dy, s11[i].edge_dy);
      }
    }
  }
  tmpl->edge_count = Lin::fit(f00.edge_count, fit[1][0].edge_count, fit[0][1].edge_count,
                              fit[1][1].edge_count);

  const int rv = rows0 + 2 * dr;
  const int cv = cols0 + 2 * dc;
  const Graph gv = legacy(rv, cv);
  if (!lower_endpoint_first(gv)) return nullptr;
  if (!matches_legacy(*tmpl->instantiate(rv, cv), gv)) return nullptr;
  return tmpl;
}

struct CacheKey {
  int kind = 0;  // 0: Device, 1: Device3d
  int width = 0;
  int pattern = 0;
  int fc_rule = 0;
  int layers = 1;
  int via_spacing = 1;
  Weight via_weight = 0;
  int cols_mod = 0;  // target cols modulo the x-period lcm

  bool operator<(const CacheKey& o) const {
    return std::tie(kind, width, pattern, fc_rule, layers, via_spacing, via_weight, cols_mod) <
           std::tie(o.kind, o.width, o.pattern, o.fc_rule, o.layers, o.via_spacing,
                    o.via_weight, o.cols_mod);
  }
};

// fpr-lint: allow(global-state) process-wide template cache: keyed by arch params only, immutable payloads, so hits are replay-neutral
Mutex g_cache_mu;
// fpr-lint: allow(global-state) guarded by g_cache_mu above; see tile_template.hpp cache contract
std::map<CacheKey, std::shared_ptr<const TileTemplateImpl>> g_cache FPR_GUARDED_BY(g_cache_mu);
// fpr-lint: allow(global-state) hit/miss counters read only by tile_template_stats(); never feed routing decisions
TileTemplateStats g_stats FPR_GUARDED_BY(g_cache_mu);

/// Cache lookup / compile-and-insert. Compilation runs under the lock:
/// it is deterministic, touches only small sample devices (built with
/// DeviceBuild::kLegacy, so no re-entry into this cache), and serializing it
/// means concurrent width probes of the same family compile exactly once.
std::shared_ptr<const TileTemplateImpl> template_for(
    const CacheKey& key,
    const std::function<std::shared_ptr<const TileTemplateImpl>()>& make) {
  MutexLock lock(g_cache_mu);
  const auto it = g_cache.find(key);
  if (it != g_cache.end()) {
    ++g_stats.cache_hits;
    return it->second;
  }
  ++g_stats.compiles;
  auto tmpl = make();
  if (tmpl == nullptr) ++g_stats.compile_failures;
  if (g_cache.size() >= kCacheCap) g_cache.clear();
  g_cache.emplace(key, tmpl);
  return tmpl;
}

void count_fallback() {
  MutexLock lock(g_cache_mu);
  ++g_stats.fallbacks;
}

void count_instantiation() {
  MutexLock lock(g_cache_mu);
  ++g_stats.instantiations;
}

}  // namespace

std::shared_ptr<const TiledTopology> tiled_topology_for(const ArchSpec& spec) {
  constexpr int kMinDim = 2 * kCut + 3;  // base sample dims; 2-D periods are all 1
  if (!spec.valid() || spec.rows < kMinDim || spec.cols < kMinDim) {
    count_fallback();
    return nullptr;
  }
  const CacheKey key{0,
                     spec.channel_width,
                     static_cast<int>(spec.switch_pattern),
                     static_cast<int>(spec.fc_rule),
                     1,
                     1,
                     0,
                     0};
  const ArchSpec family = spec;
  const auto tmpl = template_for(key, [&family] {
    return compile(
        [w = family.channel_width](int rows, int cols) {
          return std::vector<RoleGeom>{{1, cols, rows, 1, 1},
                                       {w, cols, rows + 1, 1, 1},
                                       {w, cols + 1, rows, 1, 1}};
        },
        [&family](int rows, int cols) {
          ArchSpec s = family;
          s.rows = rows;
          s.cols = cols;
          Device d(s, DeviceBuild::kLegacy);
          return std::move(d.graph());
        },
        kMinDim, kMinDim, 1, 1);
  });
  if (tmpl == nullptr) {
    count_fallback();
    return nullptr;
  }
  count_instantiation();
  return tmpl->instantiate(spec.rows, spec.cols);
}

std::shared_ptr<const TiledTopology> tiled_topology_for(const Arch3dSpec& spec) {
  if (!spec.valid()) {
    count_fallback();
    return nullptr;
  }
  // The via pass makes horizontal-wire patterns periodic in x with the via
  // spacing; sample cols must therefore be congruent with the target's.
  const int per = spec.layers > 1 ? spec.via_spacing : 1;
  const int rows0 = 2 * kCut + 3;
  const int cmin = 2 * kCut + 3 * per;
  const int cols0 = cmin + (((spec.layer.cols - cmin) % per) + per) % per;
  if (spec.layer.rows < rows0 || spec.layer.cols < cols0) {
    count_fallback();
    return nullptr;
  }
  const CacheKey key{1,
                     spec.layer.channel_width,
                     static_cast<int>(spec.layer.switch_pattern),
                     static_cast<int>(spec.layer.fc_rule),
                     spec.layers,
                     per,
                     spec.via_weight,
                     spec.layer.cols % per};
  const Arch3dSpec family = spec;
  const auto tmpl = template_for(key, [&family, per, rows0, cols0] {
    return compile(
        [w = family.layer.channel_width, layers = family.layers, per](int rows, int cols) {
          std::vector<RoleGeom> geom;
          geom.reserve(static_cast<std::size_t>(layers) * 3);
          for (int l = 0; l < layers; ++l) {
            geom.push_back({1, cols, rows, 1, 1});
            geom.push_back({w, cols, rows + 1, per, 1});
            geom.push_back({w, cols + 1, rows, 1, 1});
          }
          return geom;
        },
        [&family](int rows, int cols) {
          Arch3dSpec s = family;
          s.layer.rows = rows;
          s.layer.cols = cols;
          Device3d d(s, DeviceBuild::kLegacy);
          return std::move(d.graph());
        },
        rows0, cols0, 1, per);
  });
  if (tmpl == nullptr) {
    count_fallback();
    return nullptr;
  }
  count_instantiation();
  return tmpl->instantiate(spec.layer.rows, spec.layer.cols);
}

TileTemplateStats tile_template_stats() {
  MutexLock lock(g_cache_mu);
  return g_stats;
}

}  // namespace fpr
