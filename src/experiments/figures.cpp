#include "experiments/figures.hpp"

#include <random>

#include "analysis/table.hpp"
#include "arbor/exact_gsa.hpp"
#include "core/metrics.hpp"
#include "graph/grid.hpp"
#include "steiner/exact_gmst.hpp"
#include "workload/random_nets.hpp"
#include "workload/worstcase.hpp"

namespace fpr {

Fig4Result run_fig4() {
  // Deterministic search over random four-pin nets on a 6x6 grid for an
  // instance with the figure's structure: KMB loses wirelength to the
  // (optimal) iterated construction AND DJKA loses wirelength to the
  // (optimal) IDOM arborescence, while KMB's tree also has sub-optimal
  // maximum pathlength.
  std::mt19937_64 rng(4);
  GridGraph grid(6, 6);
  for (int trial = 0; trial < 10000; ++trial) {
    const Net net = random_grid_net(grid, 4, rng);
    PathOracle oracle(grid.graph());
    const auto kmb_tree = route(grid.graph(), net, Algorithm::kKmb, oracle);
    const auto ikmb_tree = route(grid.graph(), net, Algorithm::kIkmb, oracle);
    const auto djka_tree = route(grid.graph(), net, Algorithm::kDjka, oracle);
    const auto idom_tree = route(grid.graph(), net, Algorithm::kIdom, oracle);
    const auto opt_steiner = exact_gmst(grid.graph(), net.terminals(), oracle);
    const auto opt_arb = exact_gsa(grid.graph(), net.terminals(), oracle);
    if (!opt_steiner || !opt_arb) continue;

    const auto km = measure(grid.graph(), net, kmb_tree, oracle);
    const auto im = measure(grid.graph(), net, ikmb_tree, oracle);
    const auto dm = measure(grid.graph(), net, djka_tree, oracle);
    const auto om = measure(grid.graph(), net, idom_tree, oracle);

    const bool figure_shape = weight_lt(im.wirelength, km.wirelength) &&
                              weight_eq(im.wirelength, opt_steiner->cost()) &&
                              weight_eq(om.wirelength, opt_arb->cost()) &&
                              weight_lt(om.wirelength, dm.wirelength) &&
                              weight_lt(om.max_pathlength, km.max_pathlength);
    if (!figure_shape) continue;

    Fig4Result r;
    r.kmb_wire = km.wirelength;
    r.ikmb_wire = im.wirelength;
    r.opt_steiner_wire = opt_steiner->cost();
    r.djka_wire = dm.wirelength;
    r.idom_wire = om.wirelength;
    r.opt_arb_wire = opt_arb->cost();
    r.kmb_max_path = km.max_pathlength;
    r.ikmb_max_path = im.max_pathlength;
    r.djka_max_path = dm.max_pathlength;
    r.idom_max_path = om.max_pathlength;
    r.optimal_max_path = om.optimal_max_pathlength;
    r.kmb_wire_overhead_pct = percent_vs(km.wirelength, im.wirelength);
    r.ikmb_path_improvement_pct = -percent_vs(im.max_pathlength, km.max_pathlength);
    r.idom_path_improvement_pct = -percent_vs(om.max_pathlength, km.max_pathlength);
    return r;
  }
  return Fig4Result{};  // search space exhausted (does not happen in practice)
}

std::string render_fig4(const Fig4Result& r) {
  TextTable table({"Solution", "Wirelength", "Max pathlength"});
  table.add_row({"KMB (Steiner heuristic)", format_fixed(r.kmb_wire, 0),
                 format_fixed(r.kmb_max_path, 0)});
  table.add_row({"IGMST/IKMB (optimal Steiner here)", format_fixed(r.ikmb_wire, 0),
                 format_fixed(r.ikmb_max_path, 0)});
  table.add_row({"DJKA (arborescence baseline)", format_fixed(r.djka_wire, 0),
                 format_fixed(r.djka_max_path, 0)});
  table.add_row({"IDOM (optimal arborescence here)", format_fixed(r.idom_wire, 0),
                 format_fixed(r.idom_max_path, 0)});
  std::string out = table.render();
  out += "KMB wirelength overhead vs IGMST: +" + format_fixed(r.kmb_wire_overhead_pct, 1) +
         "% (paper example: +12.5%)\n";
  out += "Max-pathlength improvement IGMST vs KMB: " +
         format_fixed(r.ikmb_path_improvement_pct, 1) + "% (paper example: 25%)\n";
  out += "Max-pathlength improvement IDOM vs KMB: " +
         format_fixed(r.idom_path_improvement_pct, 1) + "% (paper example: 50%)\n";
  out += "IDOM wins on both metrics simultaneously, as in Fig. 4(d).\n";
  return out;
}

std::vector<RatioPoint> run_fig10(const std::vector<int>& sink_pairs) {
  std::vector<RatioPoint> points;
  for (const int pairs : sink_pairs) {
    auto inst = pfa_weighted_worst_case(pairs);
    PathOracle oracle(inst.graph);
    const auto tree = route(inst.graph, inst.net, Algorithm::kPfa, oracle);
    RatioPoint p;
    p.n = 2 * pairs;
    p.heuristic_cost = tree.cost();
    p.optimal_cost = inst.optimal_cost;
    p.ratio = p.heuristic_cost / p.optimal_cost;
    points.push_back(p);
  }
  return points;
}

std::vector<RatioPoint> run_fig11(const std::vector<int>& steps) {
  std::vector<RatioPoint> points;
  for (const int s : steps) {
    auto inst = pfa_staircase(s);
    PathOracle oracle(inst.grid.graph());
    const auto tree = route(inst.grid.graph(), inst.net, Algorithm::kPfa, oracle);
    const auto opt = exact_gsa(inst.grid.graph(), inst.net.terminals(), oracle);
    if (!opt) continue;
    RatioPoint p;
    p.n = s;
    p.heuristic_cost = tree.cost();
    p.optimal_cost = opt->cost();
    p.ratio = p.heuristic_cost / p.optimal_cost;
    points.push_back(p);
  }
  return points;
}

std::vector<RatioPoint> run_fig14(const std::vector<int>& levels) {
  std::vector<RatioPoint> points;
  for (const int l : levels) {
    auto inst = idom_set_cover_worst_case(l);
    PathOracle oracle(inst.graph);
    const auto tree = route(inst.graph, inst.net, Algorithm::kIdom, oracle);
    RatioPoint p;
    p.n = 1 << (l + 1);  // sinks
    p.heuristic_cost = tree.cost();
    p.optimal_cost = inst.optimal_cost;
    p.ratio = p.heuristic_cost / p.optimal_cost;
    points.push_back(p);
  }
  return points;
}

std::string render_ratio_sweep(const std::string& title, const std::vector<RatioPoint>& points) {
  std::string out = title + "\n";
  TextTable table({"n", "heuristic cost", "optimal cost", "ratio"});
  for (const RatioPoint& p : points) {
    table.add_row({std::to_string(p.n), format_fixed(p.heuristic_cost, 3),
                   format_fixed(p.optimal_cost, 3), format_fixed(p.ratio, 3)});
  }
  out += table.render();
  return out;
}

}  // namespace fpr
