#include "experiments/table45.hpp"

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/parallel.hpp"
#include "netlist/synth.hpp"

namespace fpr {

Table4Result run_table4(std::span<const CircuitProfile> profiles, const Table4Options& options) {
  Table4Result result;
  result.rows.resize(profiles.size());
  // Fan out over (circuit, algorithm) pairs — three independent width
  // searches per profile — and write each measurement to its slot.
  static constexpr Algorithm kAlgos[] = {Algorithm::kIkmb, Algorithm::kPfa, Algorithm::kIdom};
  for (std::size_t i = 0; i < profiles.size(); ++i) result.rows[i].profile = profiles[i];
  run_parallel(options.threads, profiles.size() * 3, [&](std::size_t task) {
    const std::size_t i = task / 3;
    const Algorithm algo = kAlgos[task % 3];
    const CircuitProfile& profile = profiles[i];
    const Circuit circuit = synthesize_circuit(profile, options.seed);
    const ArchSpec base = arch_for(profile, ArchFamily::kXc4000);
    WidthSearchOptions search;
    search.max_width = options.max_width;
    search.threads = options.threads == 1 ? 1 : 0;

    RouterOptions router;
    router.algorithm = algo;
    router.max_passes = options.max_passes;
    const int width = find_min_channel_width(base, circuit, router, search).min_width;
    Table4Row& row = result.rows[i];
    switch (task % 3) {
      case 0: row.ikmb = width; break;
      case 1: row.pfa = width; break;
      default: row.idom = width; break;
    }
  });
  return result;
}

std::string render_table4(const Table4Result& result) {
  TextTable table({"Circuit", "SEGA(paper)", "GBP(paper)", "IKMB(paper)", "PFA(paper)",
                   "IDOM(paper)", "IKMB(meas)", "PFA(meas)", "IDOM(meas)"});
  int tot_ik = 0, tot_pf = 0, tot_id = 0;
  bool valid = true;
  for (const Table4Row& row : result.rows) {
    const CircuitProfile& p = row.profile;
    table.add_row({p.name, std::to_string(p.paper_sega), std::to_string(p.paper_gbp),
                   std::to_string(p.paper_ikmb), std::to_string(p.paper_pfa),
                   std::to_string(p.paper_idom),
                   row.ikmb >= 0 ? std::to_string(row.ikmb) : "-",
                   row.pfa >= 0 ? std::to_string(row.pfa) : "-",
                   row.idom >= 0 ? std::to_string(row.idom) : "-"});
    if (row.ikmb < 0 || row.pfa < 0 || row.idom < 0) valid = false;
    tot_ik += std::max(row.ikmb, 0);
    tot_pf += std::max(row.pfa, 0);
    tot_id += std::max(row.idom, 0);
  }
  std::string out = table.render();
  if (valid && tot_ik > 0) {
    out += "Measured totals: IKMB " + std::to_string(tot_ik) + ", PFA " + std::to_string(tot_pf) +
           " (ratio " + format_fixed(static_cast<double>(tot_pf) / tot_ik) + "), IDOM " +
           std::to_string(tot_id) + " (ratio " +
           format_fixed(static_cast<double>(tot_id) / tot_ik) +
           "); paper ratios PFA 1.17, IDOM 1.13\n";
  }
  return out;
}

Table5Result run_table5(std::span<const CircuitProfile> profiles, const Table5Options& options) {
  Table5Result result;

  // Phase 1: route every circuit instance concurrently; rows land at their
  // profile's index. Skipped profiles (no usable width) stay width <= 0.
  std::vector<Table5Row> rows(profiles.size());
  std::vector<char> in_average(profiles.size(), 0);
  run_parallel(options.threads, profiles.size(), [&](std::size_t i) {
    const CircuitProfile& profile = profiles[i];
    Table5Row& row = rows[i];
    row.profile = profile;
    row.width = i < options.widths.size() ? options.widths[i] : profile.paper_table5_width;
    if (row.width <= 0) return;

    const Circuit circuit = synthesize_circuit(profile, options.seed);
    const ArchSpec arch = arch_for(profile, ArchFamily::kXc4000).with_width(row.width);

    struct Totals {
      bool success = false;
      Weight wire = 0, path = 0;
    };
    // Compare on PHYSICAL metrics (wire hops), not the congestion-weighted
    // routing metric: each algorithm's congestion evolves differently, and
    // signal delay is physical pathlength.
    const auto route_with = [&](Algorithm algo) {
      RouterOptions router;
      router.algorithm = algo;
      router.max_passes = options.max_passes;
      Device device(arch);
      const RoutingResult r = route_circuit(device, circuit, router);
      return Totals{r.success, static_cast<Weight>(r.total_physical_wirelength),
                    static_cast<Weight>(r.total_physical_max_path)};
    };
    const Totals ikmb = route_with(Algorithm::kIkmb);
    const Totals pfa = route_with(Algorithm::kPfa);
    const Totals idom = route_with(Algorithm::kIdom);
    row.all_routed = ikmb.success && pfa.success && idom.success;
    if (row.all_routed && ikmb.wire > 0 && ikmb.path > 0) {
      row.pfa_wire_pct = 100.0 * (pfa.wire - ikmb.wire) / ikmb.wire;
      row.idom_wire_pct = 100.0 * (idom.wire - ikmb.wire) / ikmb.wire;
      row.pfa_path_pct = 100.0 * (pfa.path - ikmb.path) / ikmb.path;
      row.idom_path_pct = 100.0 * (idom.path - ikmb.path) / ikmb.path;
      in_average[i] = 1;
    }
  });

  // Phase 2: collect rows and fold the averages serially, in profile order,
  // so the floating-point accumulation matches a serial run exactly.
  RunningStat pfa_wire, idom_wire, pfa_path, idom_path;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Table5Row& row = rows[i];
    if (row.width <= 0) continue;
    if (in_average[i]) {
      pfa_wire.add(row.pfa_wire_pct);
      idom_wire.add(row.idom_wire_pct);
      pfa_path.add(row.pfa_path_pct);
      idom_path.add(row.idom_path_pct);
    }
    result.rows.push_back(row);
  }
  result.avg_pfa_wire = pfa_wire.mean();
  result.avg_idom_wire = idom_wire.mean();
  result.avg_pfa_path = pfa_path.mean();
  result.avg_idom_path = idom_path.mean();
  return result;
}

std::string render_table5(const Table5Result& result) {
  TextTable table({"Circuit", "Width", "PFA Wire%", "IDOM Wire%", "PFA MaxPath%",
                   "IDOM MaxPath%"});
  for (const Table5Row& row : result.rows) {
    if (!row.all_routed) {
      table.add_row({row.profile.name, std::to_string(row.width), "-", "-", "-", "-"});
      continue;
    }
    table.add_row({row.profile.name, std::to_string(row.width),
                   format_fixed(row.pfa_wire_pct, 1), format_fixed(row.idom_wire_pct, 1),
                   format_fixed(row.pfa_path_pct, 1), format_fixed(row.idom_path_pct, 1)});
  }
  std::string out = table.render();
  out += "Measured averages: PFA wire +" + format_fixed(result.avg_pfa_wire, 1) +
         "%, IDOM wire +" + format_fixed(result.avg_idom_wire, 1) + "%, PFA maxpath " +
         format_fixed(result.avg_pfa_path, 1) + "%, IDOM maxpath " +
         format_fixed(result.avg_idom_path, 1) +
         "%; paper: +18.2, +12.8, -9.5, -10.2\n";
  return out;
}

}  // namespace fpr
