#include "experiments/tables23.hpp"

#include "analysis/table.hpp"
#include "core/parallel.hpp"
#include "netlist/synth.hpp"
#include "router/baseline.hpp"

namespace fpr {

ArchSpec arch_for(const CircuitProfile& profile, ArchFamily family) {
  switch (family) {
    case ArchFamily::kXc3000:
      return ArchSpec::xc3000(profile.rows, profile.cols, 1);
    case ArchFamily::kXc4000:
      return ArchSpec::xc4000(profile.rows, profile.cols, 1);
  }
  return ArchSpec::xc4000(profile.rows, profile.cols, 1);
}

WidthExperimentResult run_width_experiment(std::span<const CircuitProfile> profiles,
                                           ArchFamily family,
                                           const WidthExperimentOptions& options) {
  WidthExperimentResult result;
  result.family = family;
  result.rows.resize(profiles.size());
  // Circuit instances are independent (own synthesized circuit, own
  // devices), so the sweep fans out across the pool; rows land at their
  // profile's index, keeping the output order identical to a serial run.
  run_parallel(options.threads, profiles.size(), [&](std::size_t i) {
    const CircuitProfile& profile = profiles[i];
    WidthRow row;
    row.profile = profile;
    const Circuit circuit = synthesize_circuit(profile, options.seed);
    const ArchSpec base = arch_for(profile, family);
    WidthSearchOptions search;
    search.max_width = options.max_width;
    // Nested width-probe parallelism rides the shared pool (caller-helps
    // scheduling); a serial sweep stays serial all the way down.
    search.threads = options.threads == 1 ? 1 : 0;

    RouterOptions ours;
    ours.algorithm = options.algorithm;
    ours.max_passes = options.max_passes;
    ours.mode = options.mode;
    auto ours_result = find_min_channel_width(base, circuit, ours, search);
    row.ours = ours_result.min_width;
    row.ours_at_min = std::move(ours_result.at_min_width);

    if (options.run_baseline) {
      RouterOptions baseline = two_pin_baseline_options();
      baseline.max_passes = options.max_passes;
      row.baseline = find_min_channel_width(base, circuit, baseline, search).min_width;
    }
    result.rows[i] = std::move(row);
  });
  return result;
}

std::string render_width_experiment(const WidthExperimentResult& result) {
  const bool xc4000 = result.family == ArchFamily::kXc4000;
  std::vector<std::string> headers{"Circuit", "Size", "#nets", "2-3", "4-10", ">10"};
  if (xc4000) {
    headers.insert(headers.end(), {"SEGA(paper)", "GBP(paper)"});
  } else {
    headers.push_back("CGE(paper)");
  }
  headers.insert(headers.end(),
                 {"Ours(paper)", "Ours(measured)", "2-pin baseline(measured)"});

  TextTable table(headers);
  int total_paper_other = 0, total_paper_ours = 0, total_ours = 0, total_baseline = 0;
  bool totals_valid = true;
  for (const WidthRow& row : result.rows) {
    const CircuitProfile& p = row.profile;
    std::vector<std::string> cells{
        p.name,
        std::to_string(p.rows) + "x" + std::to_string(p.cols),
        std::to_string(p.total_nets()),
        std::to_string(p.nets_2_3),
        std::to_string(p.nets_4_10),
        std::to_string(p.nets_over_10),
    };
    if (xc4000) {
      cells.push_back(std::to_string(p.paper_sega));
      cells.push_back(std::to_string(p.paper_gbp));
      total_paper_other += p.paper_sega;
    } else {
      cells.push_back(std::to_string(p.paper_cge));
      total_paper_other += p.paper_cge;
    }
    cells.push_back(std::to_string(p.paper_ikmb));
    cells.push_back(row.ours >= 0 ? std::to_string(row.ours) : "unroutable");
    cells.push_back(row.baseline >= 0 ? std::to_string(row.baseline) : "-");
    table.add_row(std::move(cells));

    total_paper_ours += p.paper_ikmb;
    if (row.ours < 0 || row.baseline < 0) totals_valid = false;
    total_ours += std::max(row.ours, 0);
    total_baseline += std::max(row.baseline, 0);
  }

  std::string out = table.render();
  out += "Totals: paper other-router " + std::to_string(total_paper_other) +
         ", paper ours " + std::to_string(total_paper_ours) + " (ratio " +
         format_fixed(static_cast<double>(total_paper_other) / total_paper_ours) + ")";
  if (totals_valid && total_ours > 0) {
    out += "; measured ours " + std::to_string(total_ours) + ", measured 2-pin baseline " +
           std::to_string(total_baseline) + " (ratio " +
           format_fixed(static_cast<double>(total_baseline) / total_ours) + ")";
  }
  out += "\n";
  return out;
}

}  // namespace fpr
