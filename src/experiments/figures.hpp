#pragma once

#include <string>
#include <vector>

#include "core/route.hpp"

namespace fpr {

/// Figure 4: a four-pin net routed four ways — KMB (sub-optimal Steiner),
/// IGMST (optimal here), DJKA (sub-optimal arborescence), IDOM (optimal
/// arborescence) — with the wirelength/pathlength percentages the figure
/// calls out.
struct Fig4Result {
  Weight kmb_wire = 0, ikmb_wire = 0, opt_steiner_wire = 0;
  Weight djka_wire = 0, idom_wire = 0, opt_arb_wire = 0;
  Weight kmb_max_path = 0, ikmb_max_path = 0, djka_max_path = 0, idom_max_path = 0;
  Weight optimal_max_path = 0;
  double kmb_wire_overhead_pct = 0;       // paper example: 12.5%
  double ikmb_path_improvement_pct = 0;   // paper example: 25%
  double idom_path_improvement_pct = 0;   // paper example: 50%
};

/// Searches small grid instances (deterministically) for a four-pin net
/// exhibiting the figure's qualitative structure: KMB beaten by IGMST on
/// wirelength, DJKA beaten by IDOM, IGMST/IDOM optimal.
Fig4Result run_fig4();
std::string render_fig4(const Fig4Result& result);

/// One point of a worst-case ratio sweep (Figures 10, 11, 14).
struct RatioPoint {
  int n = 0;  // instance size parameter (sinks / steps / levels)
  double heuristic_cost = 0;
  double optimal_cost = 0;
  double ratio = 0;
};

/// Figure 10: PFA on the weighted-graph gadget — ratio grows linearly.
std::vector<RatioPoint> run_fig10(const std::vector<int>& sink_pairs);

/// Figure 11: PFA on the grid staircase — ratio approaches 2 (optimal via
/// the exact GSA solver, so steps is capped by the subset-DP limit).
std::vector<RatioPoint> run_fig11(const std::vector<int>& steps);

/// Figure 14: IDOM on the Set-Cover gadget — ratio grows logarithmically
/// in the number of sinks.
std::vector<RatioPoint> run_fig14(const std::vector<int>& levels);

std::string render_ratio_sweep(const std::string& title, const std::vector<RatioPoint>& points);

}  // namespace fpr
