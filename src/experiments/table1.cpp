#include "experiments/table1.hpp"

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/metrics.hpp"
#include "workload/random_nets.hpp"

namespace fpr {

Table1Result run_table1(const Table1Options& options) {
  Table1Result result;
  result.options = options;
  const auto algorithms = table1_algorithms();

  for (const CongestionLevel& level : options.levels) {
    Table1Block block;
    block.level = level;
    block.cells.assign(algorithms.size(),
                       std::vector<Table1Cell>(options.net_sizes.size()));
    RunningStat weight_stat;

    for (std::size_t size_idx = 0; size_idx < options.net_sizes.size(); ++size_idx) {
      const int pins = options.net_sizes[size_idx];
      // Per-config deterministic stream: seed mixes level and net size.
      std::mt19937_64 rng(options.seed * 7919u + level.pre_routed_nets * 131u +
                          static_cast<unsigned>(pins));
      std::vector<RunningStat> wire_pct(algorithms.size());
      std::vector<RunningStat> path_pct(algorithms.size());

      for (int trial = 0; trial < options.nets_per_config; ++trial) {
        // A freshly congested graph per net, per the paper.
        GridGraph grid = make_congested_grid(options.grid_width, options.grid_height,
                                             level.pre_routed_nets, rng);
        weight_stat.add(grid.graph().mean_active_edge_weight());
        const Net net = random_grid_net(grid, pins, rng);

        PathOracle oracle(grid.graph());
        // KMB is both a measured row and the wirelength normalizer.
        const RoutingTree kmb_tree = route(grid.graph(), net, Algorithm::kKmb, oracle,
                                           options.route_options);
        const TreeMetrics kmb_metrics = measure(grid.graph(), net, kmb_tree, oracle);

        for (std::size_t a = 0; a < algorithms.size(); ++a) {
          const Algorithm algo = algorithms[a];
          const RoutingTree tree =
              algo == Algorithm::kKmb
                  ? kmb_tree
                  : route(grid.graph(), net, algo, oracle, options.route_options);
          const TreeMetrics m = measure(grid.graph(), net, tree, oracle);
          wire_pct[a].add(percent_vs(m.wirelength, kmb_metrics.wirelength));
          path_pct[a].add(percent_vs(m.max_pathlength, m.optimal_max_pathlength));
        }
      }
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        block.cells[a][size_idx] =
            Table1Cell{wire_pct[a].mean(), path_pct[a].mean()};
      }
    }
    block.measured_mean_edge_weight = weight_stat.mean();
    result.blocks.push_back(std::move(block));
  }
  return result;
}

std::string render_table1(const Table1Result& result) {
  std::string out;
  const auto algorithms = table1_algorithms();
  for (const Table1Block& block : result.blocks) {
    out += "Congestion: " + std::string(block.level.label) + " (k=" +
           std::to_string(block.level.pre_routed_nets) +
           " pre-routed nets), measured mean edge weight " +
           format_fixed(block.measured_mean_edge_weight) + " (paper: " +
           format_fixed(block.level.paper_mean_weight) + ")\n";

    std::vector<std::string> headers{"Algorithm"};
    for (const int pins : result.options.net_sizes) {
      headers.push_back(std::to_string(pins) + "-pin Wire% (vs KMB)");
      headers.push_back(std::to_string(pins) + "-pin MaxPath% (vs OPT)");
    }
    TextTable table(headers);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      std::vector<std::string> row{std::string(algorithm_name(algorithms[a]))};
      for (std::size_t s = 0; s < result.options.net_sizes.size(); ++s) {
        row.push_back(format_fixed(block.cells[a][s].wirelength_pct));
        row.push_back(format_fixed(block.cells[a][s].max_path_pct));
      }
      table.add_row(std::move(row));
    }
    out += table.render();
    out += "\n";
  }
  return out;
}

const std::vector<std::vector<Table1PaperRow>>& table1_paper_values() {
  static const std::vector<std::vector<Table1PaperRow>> kPaper{
      // No congestion (w-bar = 1.00)
      {
          {"KMB", 0.00, 23.51, 0.00, 40.30},
          {"ZEL", -6.22, 11.07, -7.85, 23.42},
          {"IKMB", -6.47, 10.83, -8.19, 24.04},
          {"IZEL", -6.79, 8.85, -8.31, 21.47},
          {"DJKA", 29.23, 0.00, 30.53, 0.00},
          {"DOM", 17.51, 0.00, 18.48, 0.00},
          {"PFA", -5.59, 0.00, -5.02, 0.00},
          {"IDOM", -5.59, 0.00, -4.89, 0.00},
      },
      // Low congestion (k=10, w-bar = 1.28)
      {
          {"KMB", 0.00, 27.61, 0.00, 47.66},
          {"ZEL", -4.64, 19.14, -4.10, 34.17},
          {"IKMB", -5.68, 17.12, -4.50, 33.35},
          {"IZEL", -5.98, 14.56, -5.52, 22.29},
          {"DJKA", 26.64, 0.00, 32.48, 0.00},
          {"DOM", 22.27, 0.00, 28.09, 0.00},
          {"PFA", 8.95, 0.00, 13.91, 0.00},
          {"IDOM", 8.95, 0.00, 13.91, 0.00},
      },
      // Medium congestion (k=20, w-bar = 1.55)
      {
          {"KMB", 0.00, 30.67, 0.00, 52.67},
          {"ZEL", -4.37, 21.54, -3.35, 44.95},
          {"IKMB", -5.09, 17.77, -4.42, 42.42},
          {"IZEL", -5.57, 15.26, -4.97, 40.20},
          {"DJKA", 22.94, 0.00, 36.79, 0.00},
          {"DOM", 21.78, 0.00, 33.89, 0.00},
          {"PFA", 13.93, 0.00, 22.65, 0.00},
          {"IDOM", 13.93, 0.00, 22.59, 0.00},
      },
  };
  return kPaper;
}

}  // namespace fpr
