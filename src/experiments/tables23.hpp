#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/profiles.hpp"
#include "router/width_search.hpp"

namespace fpr {

/// Which Xilinx architecture family a width experiment models.
enum class ArchFamily { kXc3000, kXc4000 };

/// ArchSpec for a profile's array under the given family (channel width is
/// the search variable and starts at 1 here).
ArchSpec arch_for(const CircuitProfile& profile, ArchFamily family);

/// Configuration of the Table 2 / Table 3 experiments: minimum channel
/// width of our router (IKMB) vs the in-framework two-pin baseline standing
/// in for CGE/SEGA/GBP, on synthetic circuits with the paper profiles.
struct WidthExperimentOptions {
  unsigned seed = 1995;
  int max_passes = 20;          // the paper's feasibility threshold
  int max_width = 30;
  bool run_baseline = true;
  Algorithm algorithm = Algorithm::kIkmb;

  /// Congestion-resolution mode of the "ours" router column: the paper's
  /// Section 5 loop, or the negotiated-congestion loop (DESIGN.md §13) —
  /// bench/negotiate compares the two over the same Table 2/3 circuits.
  RouterMode mode = RouterMode::kPaper;

  /// Worker threads for the circuit sweep: 0 = shared pool (FPR_THREADS /
  /// hardware default), 1 = serial, >= 2 = dedicated pool. Rows are
  /// independent circuit instances, so the result is identical for every
  /// value; only wall-clock time changes.
  int threads = 0;
};

struct WidthRow {
  CircuitProfile profile;
  int ours = -1;      // measured min channel width, our router
  int baseline = -1;  // measured min channel width, two-pin baseline
  RoutingResult ours_at_min;
};

struct WidthExperimentResult {
  ArchFamily family = ArchFamily::kXc3000;
  std::vector<WidthRow> rows;
};

WidthExperimentResult run_width_experiment(std::span<const CircuitProfile> profiles,
                                           ArchFamily family,
                                           const WidthExperimentOptions& options = {});

/// Renders the result in the layout of Table 2 (3000-series) or Table 3
/// (4000-series), quoting the paper-reported router widths alongside the
/// measured ones.
std::string render_width_experiment(const WidthExperimentResult& result);

}  // namespace fpr
