#pragma once

#include <string>
#include <vector>

#include "core/route.hpp"
#include "workload/congestion_model.hpp"

namespace fpr {

/// Configuration of the Table 1 experiment: "For each of these three
/// congestion levels and net size (5 and 8 pins), 50 uniformly-distributed
/// nets were routed on a congested graph (newly-generated for each net),
/// using all eight algorithms."
struct Table1Options {
  int grid_width = 20;
  int grid_height = 20;
  int nets_per_config = 50;
  std::vector<int> net_sizes{5, 8};
  std::vector<CongestionLevel> levels{congestion_none(), congestion_low(),
                                      congestion_medium()};
  unsigned seed = 1995;
  /// Candidate strategy for the iterated constructions. The paper's
  /// template scans all of V - N; on a 20x20 grid that is affordable and is
  /// the default here.
  RouteOptions route_options{CandidateStrategy::kAllNodes, 0, 0};
};

/// One algorithm's averages at one (congestion level, net size): wirelength
/// percent w.r.t. KMB, max pathlength percent w.r.t. optimal.
struct Table1Cell {
  double wirelength_pct = 0;
  double max_path_pct = 0;
};

/// One congestion level's block of Table 1.
struct Table1Block {
  CongestionLevel level;
  double measured_mean_edge_weight = 0;  // averaged over the generated graphs
  /// cells[a][s]: algorithm a (table1_algorithms() order), net size index s.
  std::vector<std::vector<Table1Cell>> cells;
};

struct Table1Result {
  Table1Options options;
  std::vector<Table1Block> blocks;
};

Table1Result run_table1(const Table1Options& options = {});

/// Renders the result in the paper's layout.
std::string render_table1(const Table1Result& result);

/// The paper's reported Table 1 numbers (for the EXPERIMENTS.md
/// paper-vs-measured record): values[level][algorithm] with columns
/// (wire% 5-pin, path% 5-pin, wire% 8-pin, path% 8-pin).
struct Table1PaperRow {
  const char* algorithm;
  double wire5, path5, wire8, path8;
};
const std::vector<std::vector<Table1PaperRow>>& table1_paper_values();

}  // namespace fpr
