#include "experiments/fault_sweep.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/table.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "netlist/synth.hpp"

namespace fpr {

namespace {

/// The defect spec for one (circuit, rate) cell: seeded by circuit name and
/// rate so every cell's fault set is independent but reproducible, with
/// switches failing at the wire rate and connection-block pins at half.
FaultSpec cell_fault_spec(std::uint64_t base_seed, const std::string& circuit, int permille) {
  FaultSpec spec;
  spec.seed = mix64(base_seed ^ salt64(circuit), static_cast<std::uint64_t>(permille));
  spec.wire_permille = permille;
  spec.switch_permille = permille;
  spec.pin_permille = permille / 2;
  return spec;
}

}  // namespace

std::vector<CircuitProfile> smallest_profiles(std::span<const CircuitProfile> profiles,
                                              int count) {
  std::vector<CircuitProfile> out(profiles.begin(), profiles.end());
  std::stable_sort(out.begin(), out.end(), [](const CircuitProfile& a, const CircuitProfile& b) {
    return a.rows * a.cols < b.rows * b.cols;
  });
  if (count > 0 && static_cast<int>(out.size()) > count) {
    out.resize(static_cast<std::size_t>(count));
  }
  return out;
}

FaultSweepResult run_fault_sweep(std::span<const CircuitProfile> profiles, ArchFamily family,
                                 const FaultSweepOptions& options) {
  FaultSweepResult result;
  result.rows.resize(profiles.size());

  // Circuits are independent (own synthesized netlist, own devices), so the
  // sweep fans out across the pool; rows land at their profile's index, so
  // the output order matches a serial run.
  run_parallel(options.threads, profiles.size(), [&](std::size_t i) {
    const CircuitProfile& profile = profiles[i];
    FaultSweepRow row;
    row.profile = profile;
    row.family = family;
    const Circuit circuit = synthesize_circuit(profile, options.synth_seed);
    const ArchSpec base = arch_for(profile, family);

    WidthSearchOptions search;
    search.max_width = options.max_width;
    search.node_budget_per_probe = options.node_budget_per_probe;
    // Nested width-probe parallelism rides the shared pool; a serial sweep
    // stays serial all the way down.
    search.threads = options.threads == 1 ? 1 : 0;

    RouterOptions router;
    router.max_passes = options.max_passes;

    row.cells.reserve(options.fault_permilles.size());
    for (const int permille : options.fault_permilles) {
      FaultSweepCell cell;
      cell.permille = permille;
      cell.faults = cell_fault_spec(options.fault_seed, profile.name, permille);

      WidthSearchOptions cell_search = search;
      if (cell.faults.any()) cell_search.faults = cell.faults;
      const WidthSearchResult found =
          find_min_channel_width(base, circuit, router, cell_search);
      cell.status = found.status;
      cell.min_width = found.min_width;
      cell.probes = static_cast<int>(found.attempts.size());
      for (const WidthProbe& probe : found.attempts) {
        cell.probes_aborted += probe.budget_aborted ? 1 : 0;
      }
      if (permille == 0) row.fault_free_width = found.min_width;

      // Yield at the fault-free width: how much of the circuit still routes
      // if the channel was sized for a pristine die.
      if (row.fault_free_width > 0) {
        Device device(base.with_width(row.fault_free_width));
        if (cell.faults.any()) device.install_faults(cell.faults);
        RouterOptions degraded_router = router;
        degraded_router.node_budget = options.node_budget_per_probe;
        cell.degraded = route_circuit(device, circuit, degraded_router);
        cell.routed_fraction = cell.degraded.routed_fraction();
        cell.nets_blocked_by_fault = cell.degraded.nets_blocked_by_fault;
        cell.nets_rerouted_around_faults = cell.degraded.nets_rerouted_around_faults;
        cell.detour_wirelength_overhead = cell.degraded.detour_wirelength_overhead;
      }
      row.cells.push_back(std::move(cell));
    }
    result.rows[i] = std::move(row);
  });
  return result;
}

std::string render_fault_sweep(const FaultSweepResult& result) {
  TextTable table({"Circuit", "Size", "Fault rate", "Min width", "Search", "Routed frac",
                   "Blocked", "Rerouted", "Detour WL"});
  for (const FaultSweepRow& row : result.rows) {
    for (const FaultSweepCell& cell : row.cells) {
      std::ostringstream frac;
      frac.precision(3);
      frac << std::fixed << cell.routed_fraction;
      std::ostringstream rate;
      rate << cell.permille << "/1000";
      table.add_row({row.profile.name,
                     std::to_string(row.profile.rows) + "x" + std::to_string(row.profile.cols),
                     rate.str(),
                     cell.min_width > 0 ? std::to_string(cell.min_width) : "-",
                     std::string(width_search_status_name(cell.status)),
                     frac.str(),
                     std::to_string(cell.nets_blocked_by_fault),
                     std::to_string(cell.nets_rerouted_around_faults),
                     std::to_string(cell.detour_wirelength_overhead)});
    }
  }
  return table.render();
}

}  // namespace fpr
