#pragma once

#include <span>
#include <string>
#include <vector>

#include "experiments/tables23.hpp"

namespace fpr {

/// Table 4: minimum channel width per tree algorithm (IKMB vs PFA vs IDOM)
/// on the 4000-series circuits. Both arborescence algorithms buy optimal
/// source-sink pathlengths at some channel-width premium over IKMB.
struct Table4Options {
  unsigned seed = 1995;
  int max_passes = 20;
  int max_width = 30;

  /// Worker threads across (circuit, algorithm) width searches: 0 = shared
  /// pool, 1 = serial, >= 2 = dedicated pool. Identical results regardless.
  int threads = 0;
};

struct Table4Row {
  CircuitProfile profile;
  int ikmb = -1, pfa = -1, idom = -1;  // measured min widths
};

struct Table4Result {
  std::vector<Table4Row> rows;
};

Table4Result run_table4(std::span<const CircuitProfile> profiles,
                        const Table4Options& options = {});
std::string render_table4(const Table4Result& result);

/// Table 5: at a fixed per-circuit channel width (large enough for all
/// three algorithms), the % wirelength increase and % max-pathlength
/// decrease of PFA and IDOM relative to IKMB.
struct Table5Options {
  unsigned seed = 1995;
  int max_passes = 20;
  /// Per-circuit widths; empty = use the paper's Table 5 widths.
  std::vector<int> widths;

  /// Worker threads across circuit instances: 0 = shared pool, 1 = serial,
  /// >= 2 = dedicated pool. Identical results regardless.
  int threads = 0;
};

struct Table5Row {
  CircuitProfile profile;
  int width = 0;
  bool all_routed = false;
  double pfa_wire_pct = 0, idom_wire_pct = 0;      // vs IKMB (positive = more wire)
  double pfa_path_pct = 0, idom_path_pct = 0;      // vs IKMB (negative = shorter paths)
};

struct Table5Result {
  std::vector<Table5Row> rows;
  double avg_pfa_wire = 0, avg_idom_wire = 0, avg_pfa_path = 0, avg_idom_path = 0;
};

Table5Result run_table5(std::span<const CircuitProfile> profiles,
                        const Table5Options& options = {});
std::string render_table5(const Table5Result& result);

}  // namespace fpr
